// Benchmarks regenerating every table and figure of the HierKNEM paper at a
// bench-friendly scale (8 nodes instead of 32; cmd/hierbench runs the full
// 32-node, 768-process configurations).
//
// Wall-clock ns/op measures the simulator, not the modeled cluster; the
// paper's metric is reported via custom units:
//
//	virt-us/op  — virtual time of one collective operation
//	aggMB/s     — the paper's aggregate bandwidth for that operation
//
// Run with: go test -bench=. -benchmem
package hierknem_test

import (
	"fmt"
	"testing"

	"hierknem"
	"hierknem/internal/core"
	"hierknem/internal/imb"
)

const benchNodes = 8

func benchSpec(cluster string) hierknem.Spec {
	if cluster == "stremi" {
		return hierknem.Stremi(benchNodes)
	}
	return hierknem.Parapluie(benchNodes)
}

func fullNP(spec *hierknem.Spec) int { return spec.Nodes * spec.CoresPerNode() }

// report attaches the virtual-time metrics of the last measurement.
func report(b *testing.B, r imb.Result) {
	b.ReportMetric(r.AvgTime*1e6, "virt-us/op")
	b.ReportMetric(r.AggBW/1e6, "aggMB/s")
}

func benchBcast(b *testing.B, spec hierknem.Spec, mod hierknem.Module, binding string, size int64) {
	var last imb.Result
	for i := 0; i < b.N; i++ {
		w, err := hierknem.NewWorld(spec, binding, fullNP(&spec))
		if err != nil {
			b.Fatal(err)
		}
		last = hierknem.BenchBcast(w, mod, size, imb.Opts{Iterations: 1, Warmup: 1})
	}
	report(b, last)
}

func benchReduce(b *testing.B, spec hierknem.Spec, mod hierknem.Module, size int64) {
	var last imb.Result
	for i := 0; i < b.N; i++ {
		w, err := hierknem.NewWorld(spec, "bycore", fullNP(&spec))
		if err != nil {
			b.Fatal(err)
		}
		last = hierknem.BenchReduce(w, mod, size, imb.Opts{Iterations: 1, Warmup: 1})
	}
	report(b, last)
}

func benchAllgather(b *testing.B, spec hierknem.Spec, mod hierknem.Module, binding string, size int64) {
	var last imb.Result
	for i := 0; i < b.N; i++ {
		w, err := hierknem.NewWorld(spec, binding, fullNP(&spec))
		if err != nil {
			b.Fatal(err)
		}
		last = hierknem.BenchAllgather(w, mod, size, imb.Opts{Iterations: 1, Warmup: 1})
	}
	report(b, last)
}

// BenchmarkFig1PipelineSize sweeps the Broadcast pipeline size (Figure 1):
// the 64KB row should be the fastest on the InfiniBand personality.
func BenchmarkFig1PipelineSize(b *testing.B) {
	spec := benchSpec("parapluie")
	for _, pl := range []int64{16 << 10, 64 << 10, 256 << 10} {
		b.Run(fmt.Sprintf("pipeline=%dKB", pl>>10), func(b *testing.B) {
			mod := hierknem.New(core.Options{BcastPipeline: core.FixedPipeline(pl)})
			benchBcast(b, spec, mod, "bycore", 4<<20)
		})
	}
}

// BenchmarkFig2AllgatherSelection contrasts the two HierKNEM Allgather
// algorithms at low and high processes-per-node (Figure 2): leader-based is
// competitive at 2 ppn, the ring dominates at 24 ppn.
func BenchmarkFig2AllgatherSelection(b *testing.B) {
	spec := benchSpec("parapluie")
	for _, alg := range []string{"leader", "ring"} {
		for _, ppn := range []int{2, 24} {
			b.Run(fmt.Sprintf("%s/ppn=%d", alg, ppn), func(b *testing.B) {
				mod := hierknem.New(core.Options{ForceAllgather: alg})
				var last imb.Result
				for i := 0; i < b.N; i++ {
					w, err := hierknem.NewWorldPPN(spec, ppn)
					if err != nil {
						b.Fatal(err)
					}
					last = hierknem.BenchAllgather(w, mod, 512<<10, imb.Opts{Iterations: 1, Warmup: 1})
				}
				report(b, last)
			})
		}
	}
}

// BenchmarkFig3Broadcast reproduces the module comparison of Figure 3 on
// both clusters at a small and a large message size.
func BenchmarkFig3Broadcast(b *testing.B) {
	for _, cluster := range []string{"stremi", "parapluie"} {
		spec := benchSpec(cluster)
		for _, mod := range hierknem.Lineup(&spec) {
			for _, size := range []int64{64 << 10, 1 << 20} {
				b.Run(fmt.Sprintf("%s/%s/%dKB", cluster, mod.Name(), size>>10), func(b *testing.B) {
					benchBcast(b, spec, mod, "bycore", size)
				})
			}
		}
	}
}

// BenchmarkFig4Reduce reproduces Figure 4's Reduce comparison.
func BenchmarkFig4Reduce(b *testing.B) {
	for _, cluster := range []string{"stremi", "parapluie"} {
		spec := benchSpec(cluster)
		for _, mod := range hierknem.Lineup(&spec) {
			for _, size := range []int64{64 << 10, 1 << 20} {
				b.Run(fmt.Sprintf("%s/%s/%dKB", cluster, mod.Name(), size>>10), func(b *testing.B) {
					benchReduce(b, spec, mod, size)
				})
			}
		}
	}
}

// BenchmarkFig5Allgather reproduces Figure 5 (Hierarch excluded, as in the
// paper — Open MPI's hierarch has no Allgather).
func BenchmarkFig5Allgather(b *testing.B) {
	for _, cluster := range []string{"stremi", "parapluie"} {
		spec := benchSpec(cluster)
		mods := hierknem.Lineup(&spec)
		mods = append(mods[:2:2], mods[3:]...)
		for _, mod := range mods {
			b.Run(fmt.Sprintf("%s/%s/128KB", cluster, mod.Name()), func(b *testing.B) {
				benchAllgather(b, spec, mod, "bycore", 128<<10)
			})
		}
	}
}

// BenchmarkFig6Placement reproduces the binding study of Figure 6:
// HierKNEM's numbers should barely move between by-core and by-node while
// Tuned's Allgather collapses.
func BenchmarkFig6Placement(b *testing.B) {
	spec := benchSpec("parapluie")
	mods := []hierknem.Module{hierknem.ForCluster(&spec), hierknem.Tuned(hierknem.Quirks{})}
	for _, mod := range mods {
		for _, binding := range []string{"bycore", "bynode"} {
			b.Run(fmt.Sprintf("bcast/%s/%s", mod.Name(), binding), func(b *testing.B) {
				benchBcast(b, spec, mod, binding, 1<<20)
			})
			b.Run(fmt.Sprintf("allgather/%s/%s", mod.Name(), binding), func(b *testing.B) {
				benchAllgather(b, spec, mod, binding, 128<<10)
			})
		}
	}
}

// BenchmarkFig7CoreScaling reproduces Figure 7: 2MB broadcast with a growing
// number of processes per node at constant node count.
func BenchmarkFig7CoreScaling(b *testing.B) {
	for _, cluster := range []string{"stremi", "parapluie"} {
		spec := benchSpec(cluster)
		mod := hierknem.ForCluster(&spec)
		for _, ppn := range []int{2, 12, 24} {
			b.Run(fmt.Sprintf("%s/ppn=%d", cluster, ppn), func(b *testing.B) {
				var last imb.Result
				for i := 0; i < b.N; i++ {
					w, err := hierknem.NewWorldPPN(spec, ppn)
					if err != nil {
						b.Fatal(err)
					}
					last = hierknem.BenchBcast(w, mod, 2<<20, imb.Opts{Iterations: 1, Warmup: 1})
				}
				report(b, last)
			})
		}
	}
}

// BenchmarkTable1PipelineTuning sweeps Reduce pipeline sizes (Table I).
func BenchmarkTable1PipelineTuning(b *testing.B) {
	for _, cluster := range []string{"stremi", "parapluie"} {
		spec := benchSpec(cluster)
		for _, pl := range []int64{16 << 10, 64 << 10, 1 << 20} {
			b.Run(fmt.Sprintf("%s/reduce-pl=%dKB", cluster, pl>>10), func(b *testing.B) {
				mod := hierknem.New(core.Options{ReducePipeline: core.FixedPipeline(pl)})
				benchReduce(b, spec, mod, 4<<20)
			})
		}
	}
}

// BenchmarkTable2ASP reproduces the application study at a reduced matrix
// size (the full N=16384 run is cmd/hierbench -exp table2).
func BenchmarkTable2ASP(b *testing.B) {
	spec := hierknem.Stremi(4)
	np := spec.Nodes * spec.CoresPerNode()
	for _, mod := range hierknem.Lineup(&spec) {
		b.Run(mod.Name(), func(b *testing.B) {
			var res hierknem.ASPResult
			for i := 0; i < b.N; i++ {
				w, err := hierknem.NewWorld(spec, "bycore", np)
				if err != nil {
					b.Fatal(err)
				}
				res = hierknem.RunASP(w, mod, 512, 0)
			}
			b.ReportMetric(res.Total, "virt-total-s")
			b.ReportMetric(res.Bcast, "virt-bcast-s")
			b.ReportMetric(100*res.Bcast/res.Total, "comm%")
		})
	}
}

// BenchmarkExtensionCollectives covers the operations beyond the paper's
// three: Allreduce, Scatter and Gather, HierKNEM vs the flat Tuned module.
func BenchmarkExtensionCollectives(b *testing.B) {
	spec := benchSpec("parapluie")
	mods := []hierknem.Module{hierknem.ForCluster(&spec), hierknem.Tuned(hierknem.Quirks{})}
	for _, mod := range mods {
		b.Run("allreduce/"+mod.Name(), func(b *testing.B) {
			var last imb.Result
			for i := 0; i < b.N; i++ {
				w, err := hierknem.NewWorld(spec, "bycore", fullNP(&spec))
				if err != nil {
					b.Fatal(err)
				}
				last = imb.Allreduce(w, mod, 1<<20, imb.Opts{Iterations: 1, Warmup: 1})
			}
			report(b, last)
		})
		b.Run("scatter/"+mod.Name(), func(b *testing.B) {
			var last imb.Result
			for i := 0; i < b.N; i++ {
				w, err := hierknem.NewWorld(spec, "bycore", fullNP(&spec))
				if err != nil {
					b.Fatal(err)
				}
				last = imb.Scatter(w, mod, 64<<10, imb.Opts{Iterations: 1, Warmup: 1})
			}
			report(b, last)
		})
		b.Run("gather/"+mod.Name(), func(b *testing.B) {
			var last imb.Result
			for i := 0; i < b.N; i++ {
				w, err := hierknem.NewWorld(spec, "bycore", fullNP(&spec))
				if err != nil {
					b.Fatal(err)
				}
				last = imb.Gather(w, mod, 64<<10, imb.Opts{Iterations: 1, Warmup: 1})
			}
			report(b, last)
		})
	}
}

// BenchmarkTopologyCache quantifies the paper's future-work optimization:
// caching the topology map at communicator creation.
func BenchmarkTopologyCache(b *testing.B) {
	spec := benchSpec("parapluie")
	for _, cached := range []bool{false, true} {
		name := "detect-per-call"
		if cached {
			name = "cached"
		}
		b.Run(name, func(b *testing.B) {
			mod := hierknem.New(core.Options{CacheTopology: cached, TopoDetectCost: 4e-6})
			var last imb.Result
			for i := 0; i < b.N; i++ {
				w, err := hierknem.NewWorld(spec, "bycore", fullNP(&spec))
				if err != nil {
					b.Fatal(err)
				}
				last = hierknem.BenchBcast(w, mod, 16<<10, imb.Opts{Iterations: 4, Warmup: 1})
			}
			report(b, last)
		})
	}
}

// --- Ablations: the design choices DESIGN.md calls out. ---

// BenchmarkAblationOffload isolates KNEM offload + overlap: HierKNEM's
// broadcast against the same two-level structure without offload or
// pipelined overlap (the Hierarch module).
func BenchmarkAblationOffload(b *testing.B) {
	spec := benchSpec("stremi")
	for _, mod := range []hierknem.Module{
		hierknem.ForCluster(&spec),
		hierknem.Hierarch(hierknem.Quirks{SerializedRing: true}),
	} {
		b.Run(mod.Name(), func(b *testing.B) {
			benchBcast(b, spec, mod, "bycore", 1<<20)
		})
	}
}

// BenchmarkAblationPipeline isolates cross-level pipelining: segmented
// against whole-message forwarding in HierKNEM's own broadcast.
func BenchmarkAblationPipeline(b *testing.B) {
	spec := benchSpec("stremi")
	for _, cfg := range []struct {
		name string
		pl   core.PipelineFunc
	}{
		{"pipelined-32KB", core.FixedPipeline(32 << 10)},
		{"whole-message", core.FixedPipeline(16 << 20)},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			mod := hierknem.New(core.Options{BcastPipeline: cfg.pl})
			benchBcast(b, spec, mod, "bycore", 4<<20)
		})
	}
}

// BenchmarkAblationTopoRing isolates topology awareness: the physical-order
// Allgather ring against a rank-ordered one under by-node binding.
func BenchmarkAblationTopoRing(b *testing.B) {
	spec := benchSpec("parapluie")
	for _, cfg := range []struct {
		name string
		opt  core.Options
	}{
		{"physical-order", core.Options{ForceAllgather: "ring"}},
		{"rank-order", core.Options{ForceAllgather: "ring", RankOrderedRing: true}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			benchAllgather(b, spec, hierknem.New(cfg.opt), "bynode", 128<<10)
		})
	}
}

// BenchmarkAblationDoubleLeader isolates the double-leader Reduce: the
// new_comm scheme that frees the 1st leader against the single-leader
// shared-memory reduction (MVAPICH2 structure, quirk-free).
func BenchmarkAblationDoubleLeader(b *testing.B) {
	spec := benchSpec("parapluie")
	hk := hierknem.New(core.Options{}) // quirk-free for a like-for-like CPU model
	for _, mod := range []hierknem.Module{hk, hierknem.MVAPICH2()} {
		b.Run(mod.Name(), func(b *testing.B) {
			benchReduce(b, spec, mod, 4<<20)
		})
	}
}
