// Package hierknem is a simulation-backed reproduction of "HierKNEM: An
// Adaptive Framework for Kernel-Assisted and Topology-Aware Collective
// Communications on Many-core Clusters" (Ma, Bosilca, Bouteiller, Dongarra —
// IPDPS 2012).
//
// It provides:
//
//   - a deterministic virtual-time simulator of many-core clusters (cores,
//     NUMA sockets, L3 caches, NICs, networks) with max-min fair bandwidth
//     sharing;
//   - a simulated MPI runtime (communicators, non-blocking p2p with eager
//     and rendezvous protocols, barriers) and a KNEM kernel-module
//     simulator (cookie-based one-sided intra-node copies);
//   - the HierKNEM collective algorithms (the paper's Algorithms 1 and 2
//     plus the dual Allgather) and the baseline "personalities" they are
//     evaluated against: Open MPI Tuned, Open MPI Hierarch, MPICH2 and
//     MVAPICH2;
//   - an IMB-style measurement harness and the ASP (parallel
//     Floyd–Warshall) application used in the paper's evaluation.
//
// This package is a facade over the implementation packages; see
// cmd/hierbench for the drivers that regenerate every figure and table of
// the paper, and the examples/ directory for runnable walkthroughs.
package hierknem

import (
	"hierknem/internal/asp"
	"hierknem/internal/clusters"
	"hierknem/internal/coll"
	"hierknem/internal/core"
	"hierknem/internal/des"
	"hierknem/internal/imb"
	"hierknem/internal/modules"
	"hierknem/internal/mpi"
	"hierknem/internal/topology"
)

// Core simulation types.
type (
	// Spec declares a cluster's hardware parameters.
	Spec = topology.Spec
	// Machine is a built cluster.
	Machine = topology.Machine
	// Binding maps MPI ranks to cores.
	Binding = topology.Binding
	// World is a simulated MPI job.
	World = mpi.World
	// Proc is one simulated MPI process.
	Proc = mpi.Proc
	// Comm is a communicator.
	Comm = mpi.Comm
	// Module is a collective component (HierKNEM or a baseline).
	Module = modules.Module
	// Options configure the HierKNEM module.
	Options = core.Options
	// Quirks model measured software artifacts of baseline stacks.
	Quirks = modules.Quirks
	// BenchOpts configure an IMB-style measurement.
	BenchOpts = imb.Opts
	// BenchResult is one IMB-style measurement.
	BenchResult = imb.Result
	// ASPResult is an ASP application run's timing breakdown.
	ASPResult = asp.Result
	// ReduceArgs bundle the reduction operator and datatype.
	ReduceArgs = coll.ReduceArgs
	// EngineMode selects the DES engine organization (see World.SetEngineMode).
	EngineMode = des.EngineMode
	// GuardMode selects whether per-message confinement guards run inside
	// statically proved node-phase regions (see World.SetGuardMode).
	GuardMode = mpi.GuardMode
)

// Engine modes: the serial reference, and the conservative parallel mode
// that stages per-node event queues inside bounded virtual-time windows —
// and, when a window's runnable events are all node-confined, executes the
// nodes on concurrent workers — while keeping the event log bit-identical
// to serial. The worker count is tuned with World.SetEngineWorkers or the
// HIERKNEM_WORKERS environment variable; 1 selects a degenerate engine with
// no window machinery at all (the small-host fast path).
const (
	EngineSerial   = des.ModeSerial
	EngineParallel = des.ModeParallel
)

// Guard modes: every confinement guard live (the default), or the
// per-message guards skipped inside regions a valid phasesafe manifest
// proves node-confined (hierlint -manifest emits it; HIERKNEM_GUARDS=elide
// opts in). Elision is fail-closed — stale or missing proofs refuse — and
// cannot change the event log: the guards are pure assertions.
const (
	GuardChecked = mpi.GuardChecked
	GuardElided  = mpi.GuardElided
)

// Cluster presets from the paper's evaluation (Grid'5000).
var (
	// Stremi returns the 24-core Gigabit-Ethernet cluster spec.
	Stremi = clusters.Stremi
	// Parapluie returns the 24-core InfiniBand-20G cluster spec.
	Parapluie = clusters.Parapluie
)

// Build constructs a machine from a spec.
func Build(spec Spec) (*Machine, error) { return topology.Build(spec) }

// NewWorld builds a simulated MPI job on spec with np ranks bound by
// binding ("bycore" or "bynode").
func NewWorld(spec Spec, binding string, np int) (*World, error) {
	return clusters.NewWorld(spec, binding, np)
}

// NewWorldPPN builds a job with exactly ppn ranks on each node.
func NewWorldPPN(spec Spec, ppn int) (*World, error) {
	m, err := topology.Build(spec)
	if err != nil {
		return nil, err
	}
	b, err := topology.ByCorePPN(m, ppn*spec.Nodes, ppn)
	if err != nil {
		return nil, err
	}
	return mpi.NewWorld(m, b, clusters.Config(&spec))
}

// New creates the HierKNEM collective module.
func New(opt Options) *core.Module { return core.New(opt) }

// ForCluster creates the HierKNEM module with the cluster's tuned pipeline
// sizes (Table I) and stack quirks.
func ForCluster(spec *Spec) *core.Module { return clusters.HierKNEM(spec) }

// Baseline module constructors (see internal/modules for the quirk model).
var (
	Tuned    = modules.Tuned
	Hierarch = modules.Hierarch
	MPICH2   = modules.MPICH2
	MVAPICH2 = modules.MVAPICH2
)

// Lineup returns the modules a cluster's figures compare, HierKNEM first.
func Lineup(spec *Spec) []Module { return clusters.Lineup(spec) }

// IMB-style benchmark runners.
var (
	BenchBcast     = imb.Bcast
	BenchReduce    = imb.Reduce
	BenchAllgather = imb.Allgather
)

// RunASP executes the ASP timing skeleton (phantom payloads) for n vertices.
func RunASP(w *World, mod Module, n int, cellCost float64) ASPResult {
	return asp.Run(w, mod, n, cellCost)
}

// SolveASP runs ASP with real data and returns the solved distance matrix.
func SolveASP(w *World, mod Module, dist [][]float64) [][]float64 {
	return asp.Solve(w, mod, dist)
}
