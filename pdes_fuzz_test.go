// FuzzPDESDiff is the differential fuzz gate for the conservative parallel
// engine: every input decodes into a random (topology, personality, worker
// count, program) tuple, runs once on the serial reference engine and once
// in ModeParallel with the decoded in-window worker count, and fails on any
// event-log divergence — a hex-exact time, a rank's completion order, the
// final clock or the processed-event count. The seed corpus covers the
// Table II mixed-collective scenario (merge/split churn through the fabric),
// bracketed node-phase rounds that execute on concurrent workers,
// cross-domain Timer.Cancel during phase execution — the deferred-cancel
// path the coordinator applies at the window barrier — and mixed-window
// populations where one node's bracketed phase set shares windows with
// unconfined residue traffic from the other nodes. The personality byte
// swaps the collective module between HierKNEM and the bracketed baselines
// (hierarch, MVAPICH2), so the real modules' EnterNodePhase/ExitNodePhase
// placements are fuzzed, not just hand-written phase shapes.
package hierknem_test

import (
	"fmt"
	"testing"

	"hierknem"
	"hierknem/internal/buffer"
	"hierknem/internal/coll"
	"hierknem/internal/des"
	"hierknem/internal/modules"
	"hierknem/internal/mpi"
)

const (
	fuzzMaxOps = 6
)

// fuzzOp is one step of a fuzzed program.
type fuzzOp struct {
	kind int // 0 bcast, 1 reduce, 2 allgather, 3 barrier, 4 node-phase rounds, 5 cross-domain timer cancel, 6 mixed-window population
	size int64
	root int
}

// decodePDESPlan turns fuzz bytes into a cluster shape, a collective
// personality, a phase worker count, a guard mode and a program. Every
// decoded plan is valid by construction, so a divergence is an engine bug,
// not an ill-formed input. The worker byte's low bits pick the count, its
// middle bits the personality (0 hierknem, 1 hierarch, 2 mvapich2) — all
// three bracket their node-confined stretches, with different leader
// topologies — and its high bit the guard mode, so the parallel run
// executes with the per-message confinement guards elided under the fresh
// phasesafe manifest while the serial reference stays fully checked: log
// identity then covers both the engine and the elision machinery.
func decodePDESPlan(data []byte) (nodes, ppn, workers, pers int, elide bool, ops []fuzzOp) {
	nodes, ppn = 2, 2
	if len(data) > 0 {
		nodes = 2 + int(data[0])%3 // 2..4
	}
	if len(data) > 1 {
		ppn = 2 + int(data[1])%3 // 2..4
	}
	if len(data) > 2 {
		workers = 1 + int(data[2])%8 // 1..8; 0 (short input) = engine default
		pers = int(data[2]) / 8 % 3
		elide = int(data[2])/24%2 == 1
	}
	np := nodes * ppn
	for i := 3; i+1 < len(data) && len(ops) < fuzzMaxOps; i += 2 {
		ops = append(ops, fuzzOp{
			kind: int(data[i]) % 7,
			// 64B .. 128KB: spans the eager threshold and the pipeline
			// chunk sizes, so flows merge and split mid-collective.
			size: int64(1) << (6 + int(data[i+1])%12),
			root: int(data[i+1]) % np,
		})
	}
	return nodes, ppn, workers, pers, elide, ops
}

// runPDESPlan executes the program on a fresh world in the given mode (and,
// when workers > 0, worker count; with confinement guards elided when elide
// is set) and returns its event log (per-rank hex completion times per op,
// final clock, processed count).
func runPDESPlan(t *testing.T, nodes, ppn, workers, pers int, elide bool, ops []fuzzOp, mode hierknem.EngineMode) []string {
	t.Helper()
	spec := hierknem.Stremi(nodes)
	w, err := hierknem.NewWorldPPN(spec, ppn)
	if err != nil {
		t.Fatal(err)
	}
	w.SetEngineMode(mode)
	if workers > 0 {
		w.SetEngineWorkers(workers)
	}
	if elide {
		if err := w.SetGuardMode(hierknem.GuardElided); err != nil {
			t.Fatal(err)
		}
	}
	var mod hierknem.Module
	switch pers {
	case 1:
		mod = modules.Hierarch(modules.Quirks{})
	case 2:
		mod = modules.MVAPICH2()
	default:
		mod = hierknem.ForCluster(&spec)
	}
	np := w.Size()
	lat := spec.NetLatency

	// Per-(op, rank) buffers and timer tables, allocated identically for
	// both runs.
	bufs := make([][]*buffer.Buffer, len(ops))
	rbufs := make([][]*buffer.Buffer, len(ops))
	timers := make([][]des.Timer, len(ops))
	for k, op := range ops {
		switch op.kind {
		case 0:
			bufs[k] = phantomPerRank(np, int(op.size))
		case 1:
			bufs[k] = phantomPerRank(np, int(op.size))
			rbufs[k] = phantomPerRank(np, int(op.size))
		case 2:
			bufs[k] = phantomPerRank(np, int(op.size))
			rbufs[k] = phantomPerRank(np, np*int(op.size))
		case 4, 6:
			// Node-confined traffic must stay under the eager threshold.
			bufs[k] = phantomPerRank(np, 512)
			rbufs[k] = phantomPerRank(np, 512)
		case 5:
			timers[k] = make([]des.Timer, np)
		}
	}

	log := make([]string, 0, (len(ops)+1)*np+1)
	err = w.Run(func(p *mpi.Proc) {
		c := w.WorldComm()
		me := c.Rank(p)
		for k, op := range ops {
			switch op.kind {
			case 0:
				mod.Bcast(p, c, bufs[k][me], op.root)
			case 1:
				a := coll.ReduceArgs{Op: buffer.OpSum, Dtype: buffer.Float64}
				mod.Reduce(p, c, a, bufs[k][me], rbufs[k][me], op.root)
			case 2:
				mod.Allgather(p, c, bufs[k][me], rbufs[k][me])
			case 3:
				c.Barrier(p)
			case 4:
				// Bracketed node-local rounds; the compute stretch walks the
				// bracket across window boundaries so confined windows form.
				nc := p.NodeComm()
				nme, n := nc.Rank(p), nc.Size()
				for r := 0; r < 2+op.root%3; r++ {
					if r == 0 {
						p.EnterNodePhase()
					}
					if n > 1 {
						p.SendRecv(nc, bufs[k][me], (nme+1)%n, 300+r, rbufs[k][me], (nme-1+n)%n, 300+r)
					}
					nc.Barrier(p)
					p.Compute(0.4 * lat)
				}
				p.ExitNodePhase()
			case 5:
				// Cross-domain Timer.Cancel during phase execution: every
				// rank arms an unconfined no-op timer far in the future,
				// then — inside a node phase, past a window boundary —
				// cancels the timer of a rank half the world away (usually
				// another node). In parallel mode the cancel lands in a
				// staged event of a foreign domain and takes the deferred
				// path; the committed log must not notice.
				c.Barrier(p)
				timers[k][me] = p.DES().After(20*lat, func() {})
				c.Barrier(p)
				p.EnterNodePhase()
				p.Compute(0.6 * lat)
				timers[k][(me+np/2)%np].Cancel()
				p.Compute(0.8 * lat)
				p.ExitNodePhase()
			case 6:
				// Mixed-window population: node 0's ranks run bracketed
				// node-confined rounds while every other rank keeps trading
				// unconfined traffic in the same windows — cross-node slot
				// pairs over a ring of the non-zero nodes when there are at
				// least two of them, plain unbracketed node-local exchanges
				// otherwise. The census must split each window into node 0's
				// phase set plus a coordinator-run residue, and the committed
				// interleaving must still be the serial one.
				c.Barrier(p)
				node, slot := me/ppn, me%ppn
				if node == 0 {
					nc := p.NodeComm()
					nme, n := nc.Rank(p), nc.Size()
					p.EnterNodePhase()
					for r := 0; r < 2; r++ {
						if n > 1 {
							p.SendRecv(nc, bufs[k][me], (nme+1)%n, 400+r, rbufs[k][me], (nme-1+n)%n, 400+r)
						}
						p.Compute(0.3 * lat)
					}
					p.ExitNodePhase()
				} else if nodes > 2 {
					m := nodes - 1 // ring over nodes 1..nodes-1
					next := 1 + (node-1+1)%m
					prev := 1 + (node-1-1+m)%m
					p.SendRecv(c, bufs[k][me], next*ppn+slot, 450, rbufs[k][me], prev*ppn+slot, 450)
				} else {
					nc := p.NodeComm()
					nme, n := nc.Rank(p), nc.Size()
					if n > 1 {
						p.SendRecv(nc, bufs[k][me], (nme+1)%n, 450, rbufs[k][me], (nme-1+n)%n, 450)
					}
				}
			}
			log = append(log, fmt.Sprintf("op%d r%d %s", k, me, hexTime(p.Now())))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	log = append(log, fmt.Sprintf("final %s %d", hexTime(w.Now()), w.Machine.Eng.Processed()))
	return log
}

func FuzzPDESDiff(f *testing.F) {
	// Seeds: degenerate shapes, then Table II-style mixed-collective churn
	// (bcast/allgather/reduce alternating across the eager threshold and
	// pipeline sizes, varying roots) on 2-4 nodes, then the parallel-phase
	// stressors: node-phase rounds at several worker counts, the
	// cross-domain cancel-during-execution case, mixed-window populations
	// (one node phased, the rest residue), and the bracketed baseline
	// personalities at bracket-eligible sizes.
	f.Add([]byte{})
	f.Add([]byte{0, 0, 1, 0, 10})                         // 2x2, one worker (degenerate engine), one 64KB bcast
	f.Add([]byte{1, 1, 3, 3, 0})                          // 3x3, 4 workers, lone barrier
	f.Add([]byte{2, 2, 7, 0, 11, 2, 5, 1, 8, 3, 0, 0, 1}) // 4x4 Table II churn: big bcast, allgather, reduce, barrier, tiny bcast
	f.Add([]byte{1, 0, 2, 2, 9, 1, 9, 2, 3, 0, 7})        // 3x2, 3 workers: allgather/reduce/allgather/bcast merge-split churn
	f.Add([]byte{0, 2, 0, 1, 0, 1, 11, 0, 4, 2, 2})       // 2x4, default workers: small reduce, huge reduce, bcast, allgather
	f.Add([]byte{2, 1, 1, 4, 5, 4, 0, 3, 0})              // 4x3, 2 workers: node-phase rounds, more rounds, barrier
	f.Add([]byte{1, 2, 3, 5, 0, 4, 2, 5, 7, 0, 6})        // 3x4, 4 workers: timer cancel in phase, node phase, cancel again, bcast
	f.Add([]byte{2, 2, 5, 5, 9, 5, 3})                    // 4x4, 6 workers: back-to-back cross-domain cancels
	f.Add([]byte{2, 1, 1, 6, 0, 6, 4, 3, 0})              // 4x3, 2 workers: mixed windows (node 0 phased, ring residue), twice, barrier
	f.Add([]byte{0, 0, 9, 6, 1, 0, 2, 6, 0})              // 2x2, 2 workers, hierarch: mixed window (node-local residue), small bcast, mixed again
	f.Add([]byte{1, 1, 10, 0, 3, 1, 4, 2, 2})             // 3x3, 3 workers, hierarch: bracketed small bcast/reduce/allgather
	f.Add([]byte{0, 2, 19, 0, 2, 4, 1, 0, 5})             // 2x4, 4 workers, mvapich2: small bcast, node-phase rounds, 2KB bcast
	f.Add([]byte{2, 2, 12, 0, 1, 6, 0, 1, 2, 3, 0})       // 4x4, 5 workers, hierarch: small bcast, mixed window, reduce, barrier
	// Guard-elision seeds (worker byte >= 24): the parallel run elides the
	// proved regions' guards under a fresh manifest, at payloads adjacent to
	// both cutoffs — 2KB rides the bracketed path, 4KB sits exactly at the
	// eager/fabric cutoff so its collectives must stay unbracketed.
	f.Add([]byte{0, 0, 25, 0, 5, 1, 5, 4, 2}) // 2x2, 2 workers, hierknem elided: 2KB bcast, 2KB reduce, node-phase rounds
	f.Add([]byte{1, 1, 33, 0, 6, 6, 1, 1, 5}) // 3x3, 2 workers, hierarch elided: 4KB bcast (at cutoff), mixed window, 2KB reduce
	f.Add([]byte{2, 0, 43, 0, 5, 4, 6, 0, 6}) // 4x2, 4 workers, mvapich2 elided: 2KB bcast, node rounds, 4KB bcast

	f.Fuzz(func(t *testing.T, data []byte) {
		nodes, ppn, workers, pers, elide, ops := decodePDESPlan(data)
		if elide {
			ensureManifest(t)
		}
		want := runPDESPlan(t, nodes, ppn, 0, pers, false, ops, hierknem.EngineSerial)
		got := runPDESPlan(t, nodes, ppn, workers, pers, elide, ops, hierknem.EngineParallel)
		diffLogs(t, fmt.Sprintf("pdes diff %dx%d w%d p%d elide=%v %v", nodes, ppn, workers, pers, elide, ops), want, got)
	})
}
