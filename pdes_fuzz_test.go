// FuzzPDESDiff is the differential fuzz gate for the conservative parallel
// engine: every input decodes into a random (topology, collective program)
// pair, runs once on the serial reference engine and once in ModeParallel,
// and fails on any event-log divergence — a hex-exact time, a rank's
// completion order, the final clock or the processed-event count. The seed
// corpus covers the Table II mixed-collective scenario, whose alternating
// message sizes drive pipeline-chunk flows through repeated fabric
// component merges and splits — the churn that stresses the per-node window
// partition hardest.
package hierknem_test

import (
	"fmt"
	"testing"

	"hierknem"
	"hierknem/internal/buffer"
	"hierknem/internal/coll"
	"hierknem/internal/mpi"
)

const (
	fuzzMaxOps = 6
)

// fuzzOp is one collective in a fuzzed program.
type fuzzOp struct {
	kind int // 0 bcast, 1 reduce, 2 allgather, 3 barrier
	size int64
	root int
}

// decodePDESPlan turns fuzz bytes into a cluster shape and a collective
// program. Every decoded plan is valid by construction, so a divergence is
// an engine bug, not an ill-formed input.
func decodePDESPlan(data []byte) (nodes, ppn int, ops []fuzzOp) {
	nodes, ppn = 2, 2
	if len(data) > 0 {
		nodes = 2 + int(data[0])%3 // 2..4
	}
	if len(data) > 1 {
		ppn = 2 + int(data[1])%3 // 2..4
	}
	np := nodes * ppn
	for i := 2; i+1 < len(data) && len(ops) < fuzzMaxOps; i += 2 {
		ops = append(ops, fuzzOp{
			kind: int(data[i]) % 4,
			// 64B .. 128KB: spans the eager threshold and the pipeline
			// chunk sizes, so flows merge and split mid-collective.
			size: int64(1) << (6 + int(data[i+1])%12),
			root: int(data[i+1]) % np,
		})
	}
	return nodes, ppn, ops
}

// runPDESPlan executes the program on a fresh world in the given mode and
// returns its event log (per-rank hex completion times per op, final clock,
// processed count).
func runPDESPlan(t *testing.T, nodes, ppn int, ops []fuzzOp, mode hierknem.EngineMode) []string {
	t.Helper()
	spec := hierknem.Stremi(nodes)
	w, err := hierknem.NewWorldPPN(spec, ppn)
	if err != nil {
		t.Fatal(err)
	}
	w.SetEngineMode(mode)
	mod := hierknem.ForCluster(&spec)
	np := w.Size()

	// Per-(op, rank) buffers, allocated identically for both runs.
	bufs := make([][]*buffer.Buffer, len(ops))
	rbufs := make([][]*buffer.Buffer, len(ops))
	for k, op := range ops {
		switch op.kind {
		case 0:
			bufs[k] = phantomPerRank(np, int(op.size))
		case 1:
			bufs[k] = phantomPerRank(np, int(op.size))
			rbufs[k] = phantomPerRank(np, int(op.size))
		case 2:
			bufs[k] = phantomPerRank(np, int(op.size))
			rbufs[k] = phantomPerRank(np, np*int(op.size))
		}
	}

	log := make([]string, 0, (len(ops)+1)*np+1)
	err = w.Run(func(p *mpi.Proc) {
		c := w.WorldComm()
		me := c.Rank(p)
		for k, op := range ops {
			switch op.kind {
			case 0:
				mod.Bcast(p, c, bufs[k][me], op.root)
			case 1:
				a := coll.ReduceArgs{Op: buffer.OpSum, Dtype: buffer.Float64}
				mod.Reduce(p, c, a, bufs[k][me], rbufs[k][me], op.root)
			case 2:
				mod.Allgather(p, c, bufs[k][me], rbufs[k][me])
			case 3:
				c.Barrier(p)
			}
			log = append(log, fmt.Sprintf("op%d r%d %s", k, me, hexTime(p.Now())))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	log = append(log, fmt.Sprintf("final %s %d", hexTime(w.Now()), w.Machine.Eng.Processed()))
	return log
}

func FuzzPDESDiff(f *testing.F) {
	// Seeds: degenerate shapes, then Table II-style mixed-collective churn
	// (bcast/allgather/reduce alternating across the eager threshold and
	// pipeline sizes, varying roots) on 2-4 nodes.
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 10})             // 2x2, one 64KB bcast
	f.Add([]byte{1, 1, 3, 0})              // 3x3, lone barrier
	f.Add([]byte{2, 2, 0, 11, 2, 5, 1, 8, 3, 0, 0, 1}) // 4x4 Table II churn: big bcast, allgather, reduce, barrier, tiny bcast
	f.Add([]byte{1, 0, 2, 9, 1, 9, 2, 3, 0, 7})        // 3x2: allgather/reduce/allgather/bcast merge-split churn
	f.Add([]byte{0, 2, 1, 0, 1, 11, 0, 4, 2, 2})       // 2x4: small reduce, huge reduce, bcast, allgather

	f.Fuzz(func(t *testing.T, data []byte) {
		nodes, ppn, ops := decodePDESPlan(data)
		want := runPDESPlan(t, nodes, ppn, ops, hierknem.EngineSerial)
		got := runPDESPlan(t, nodes, ppn, ops, hierknem.EngineParallel)
		diffLogs(t, fmt.Sprintf("pdes diff %dx%d %v", nodes, ppn, ops), want, got)
	})
}
