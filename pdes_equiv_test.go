// Engine-mode equivalence: the conservative parallel DES mode must produce
// a hex-identical event log to the serial reference engine on every
// workload — same completion instants, same final clock, same processed
// count. These tests run full-stack simulations (topology + fabric + MPI +
// collectives) in both modes and diff the logs entry by entry; they are the
// root-level gate behind which the window protocol (DESIGN.md §5.4) hides.
package hierknem_test

import (
	"fmt"
	"os"
	"testing"

	"hierknem"
	"hierknem/internal/buffer"
	"hierknem/internal/coll"
	"hierknem/internal/mpi"
)

// pdesWorkloads are the collective programs the equivalence tests replay in
// both engine modes. "churn" mirrors the Table II mixed-collective scenario:
// alternating collectives at different sizes drive pipeline-chunk flows
// through repeated fabric component merges and splits, the hardest case for
// the per-node window partition (every inter-node chunk collapses its
// component to the global domain and back).
var pdesWorkloads = []struct {
	name string
	prog func(w *hierknem.World, mod hierknem.Module, log *[]string)
}{
	{"bcast", func(w *hierknem.World, mod hierknem.Module, log *[]string) {
		bufs := phantomPerRank(w.Size(), 64<<10)
		runCollectives(w, log, func(p *mpi.Proc, c *mpi.Comm, me int) {
			mod.Bcast(p, c, bufs[me], 0)
		})
	}},
	{"reduce", func(w *hierknem.World, mod hierknem.Module, log *[]string) {
		sbufs := phantomPerRank(w.Size(), 32<<10)
		rbufs := phantomPerRank(w.Size(), 32<<10)
		runCollectives(w, log, func(p *mpi.Proc, c *mpi.Comm, me int) {
			a := coll.ReduceArgs{Op: buffer.OpSum, Dtype: buffer.Float64}
			mod.Reduce(p, c, a, sbufs[me], rbufs[me], 0)
		})
	}},
	{"allgather", func(w *hierknem.World, mod hierknem.Module, log *[]string) {
		np := w.Size()
		sbufs := phantomPerRank(np, 4<<10)
		rbufs := phantomPerRank(np, np*4<<10)
		runCollectives(w, log, func(p *mpi.Proc, c *mpi.Comm, me int) {
			mod.Allgather(p, c, sbufs[me], rbufs[me])
		})
	}},
	{"churn", func(w *hierknem.World, mod hierknem.Module, log *[]string) {
		np := w.Size()
		big := phantomPerRank(np, 96<<10)
		small := phantomPerRank(np, 512)
		sbufs := phantomPerRank(np, 8<<10)
		rbufs := phantomPerRank(np, np*8<<10)
		redIn := phantomPerRank(np, 16<<10)
		redOut := phantomPerRank(np, 16<<10)
		runCollectives(w, log, func(p *mpi.Proc, c *mpi.Comm, me int) {
			mod.Bcast(p, c, big[me], 0)
			c.Barrier(p)
			mod.Allgather(p, c, sbufs[me], rbufs[me])
			a := coll.ReduceArgs{Op: buffer.OpMax, Dtype: buffer.Float64}
			mod.Reduce(p, c, a, redIn[me], redOut[me], np-1)
			mod.Bcast(p, c, small[me], 1)
		})
	}},
	// nodephase alternates a global collective with a bracketed node-local
	// stretch (the workload parallel windows actually execute concurrently),
	// so one program exercises serial windows, phased windows and the
	// transitions between them.
	{"nodephase", func(w *hierknem.World, mod hierknem.Module, log *[]string) {
		np := w.Size()
		lat := w.Machine.Spec.NetLatency
		small := phantomPerRank(np, 2<<10)
		sb := phantomPerRank(np, 512)
		rb := phantomPerRank(np, 512)
		runCollectives(w, log, func(p *mpi.Proc, c *mpi.Comm, me int) {
			mod.Bcast(p, c, small[me], 0)
			nc := p.NodeComm()
			nme, n := nc.Rank(p), nc.Size()
			p.EnterNodePhase()
			for r := 0; r < 8; r++ {
				if n > 1 {
					p.SendRecv(nc, sb[me], (nme+1)%n, 400+r, rb[me], (nme-1+n)%n, 400+r)
				}
				nc.Barrier(p)
				p.Compute(0.4 * lat)
			}
			p.ExitNodePhase()
			c.Barrier(p)
		})
	}},
}

func phantomPerRank(np, size int) []*buffer.Buffer {
	bufs := make([]*buffer.Buffer, np)
	for i := range bufs {
		bufs[i] = buffer.NewPhantom(int64(size))
	}
	return bufs
}

// runCollectives runs body on every rank and appends each rank's hex-exact
// completion instant plus the engine's final clock and processed count.
func runCollectives(w *hierknem.World, log *[]string, body func(p *mpi.Proc, c *mpi.Comm, me int)) {
	err := w.Run(func(p *mpi.Proc) {
		c := w.WorldComm()
		me := c.Rank(p)
		body(p, c, me)
		*log = append(*log, fmt.Sprintf("r%d done %s", me, hexTime(p.Now())))
	})
	if err != nil {
		panic(err)
	}
	*log = append(*log, fmt.Sprintf("final %s %d", hexTime(w.Now()), w.Machine.Eng.Processed()))
}

// pdesModeLog builds a fresh world, switches it to mode, runs workload wi
// under the HierKNEM module and returns the event log.
func pdesModeLog(t testing.TB, wi int, mode hierknem.EngineMode) []string {
	t.Helper()
	spec := isoSpec()
	w, err := hierknem.NewWorldPPN(spec, isoPPN)
	if err != nil {
		t.Fatal(err)
	}
	w.SetEngineMode(mode)
	if got := w.EngineMode(); got != mode {
		t.Fatalf("EngineMode() = %v after SetEngineMode(%v)", got, mode)
	}
	mod := hierknem.ForCluster(&spec)
	var log []string
	pdesWorkloads[wi].prog(w, mod, &log)
	if mode == hierknem.EngineParallel {
		ws := w.Machine.Eng.WindowStats()
		if ws.Windows == 0 {
			t.Fatalf("parallel mode never advanced a window (stats %+v) — the test is not exercising the PDES path", ws)
		}
		if pdesWorkloads[wi].name == "nodephase" && ws.Phases == 0 {
			t.Fatalf("nodephase workload executed no parallel phases (stats %+v) — its windows are not phase-eligible", ws)
		}
	}
	return log
}

// TestEngineModeHexIdenticalLogs is the tentpole gate: for every workload,
// the parallel engine's event log must equal the serial reference log
// string-for-string (hex-exact times, identical processed counts).
func TestEngineModeHexIdenticalLogs(t *testing.T) {
	for wi, wl := range pdesWorkloads {
		t.Run(wl.name, func(t *testing.T) {
			want := pdesModeLog(t, wi, hierknem.EngineSerial)
			got := pdesModeLog(t, wi, hierknem.EngineParallel)
			diffLogs(t, wl.name, want, got)
		})
	}
}

// TestEngineModeEnvSelectsParallel pins the HIERKNEM_ENGINE hook the
// verify script uses to run the whole conformance suite in parallel mode
// without touching any call site.
func TestEngineModeEnvSelectsParallel(t *testing.T) {
	t.Setenv("HIERKNEM_ENGINE", "parallel")
	w := isoWorld(t)
	if got := w.EngineMode(); got != hierknem.EngineParallel {
		t.Fatalf("HIERKNEM_ENGINE=parallel built a %v world", got)
	}
	os.Unsetenv("HIERKNEM_ENGINE")
	w2 := isoWorld(t)
	if got := w2.EngineMode(); got != hierknem.EngineSerial {
		t.Fatalf("unset HIERKNEM_ENGINE built a %v world", got)
	}
}
