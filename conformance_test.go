// Differential conformance: every collective of every module personality,
// run on a small cluster with real payloads, must deliver byte-identical
// results to the naive sequential references in internal/coll/reference.go.
// The personalities differ in timing, segmentation and topology use —
// never in the bytes they deliver.
package hierknem_test

import (
	"bytes"
	"fmt"
	"testing"

	"hierknem"
	"hierknem/internal/buffer"
	"hierknem/internal/coll"
	"hierknem/internal/mpi"
)

const (
	confPPN = 4 // ranks per node: leaders and non-leaders on every node
	confNP  = 3 * confPPN
)

// confWorld builds the conformance cluster: 3 Stremi nodes, 4 ranks each,
// so every collective crosses both shared memory and the network.
func confWorld(t *testing.T) *hierknem.World {
	t.Helper()
	spec := hierknem.Stremi(3)
	w, err := hierknem.NewWorldPPN(spec, confPPN)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func confModules() []hierknem.Module {
	spec := hierknem.Stremi(3)
	return hierknem.Lineup(&spec)
}

// confPattern is deterministic per-rank payload; distinct from any module's
// internal scratch contents.
func confPattern(rank, n int) []byte {
	d := make([]byte, n)
	for i := range d {
		d[i] = byte((rank*151 + i*11 + 5) % 249)
	}
	return d
}

// confInts is the integer payload for reductions: Int64 with OpSum/OpMax is
// associative and commutative, so the reference's fold order is canonical
// (float64 sums would differ across reduction trees).
func confInts(rank, elems int) []int64 {
	v := make([]int64, elems)
	for i := range v {
		v[i] = int64(rank*1_000_003 + i*7 - 500)
	}
	return v
}

func TestConformanceBcast(t *testing.T) {
	for _, mod := range confModules() {
		for _, size := range []int{2000, 96 << 10} { // eager and rendezvous
			for _, root := range []int{0, confNP - 1} {
				mod := mod
				t.Run(fmt.Sprintf("%s/%dB/root%d", mod.Name(), size, root), func(t *testing.T) {
					inputs := make([][]byte, confNP)
					for r := range inputs {
						inputs[r] = confPattern(r, size)
					}
					want := coll.RefBcast(inputs, root)
					w := confWorld(t)
					var bad []int
					err := w.Run(func(p *mpi.Proc) {
						c := w.WorldComm()
						me := c.Rank(p)
						var buf *buffer.Buffer
						if me == root {
							buf = buffer.NewReal(append([]byte(nil), inputs[root]...))
						} else {
							buf = buffer.NewReal(make([]byte, size))
						}
						mod.Bcast(p, c, buf, root)
						if !bytes.Equal(buf.Data(), want[me]) {
							bad = append(bad, me)
						}
					})
					if err != nil {
						t.Fatal(err)
					}
					if len(bad) != 0 {
						t.Fatalf("ranks %v diverge from the sequential reference", bad)
					}
				})
			}
		}
	}
}

func TestConformanceReduce(t *testing.T) {
	for _, mod := range confModules() {
		for _, op := range []buffer.Op{buffer.OpSum, buffer.OpMax} {
			for _, elems := range []int{256, 8192} {
				for _, root := range []int{0, confNP / 2} {
					mod, op := mod, op
					t.Run(fmt.Sprintf("%s/%v/%delems/root%d", mod.Name(), op, elems, root), func(t *testing.T) {
						args := hierknem.ReduceArgs{Op: op, Dtype: buffer.Int64}
						inputs := make([][]byte, confNP)
						for r := range inputs {
							inputs[r] = append([]byte(nil), buffer.Int64s(confInts(r, elems)).Data()...)
						}
						want := coll.RefReduce(args, inputs)
						w := confWorld(t)
						var got []byte
						err := w.Run(func(p *mpi.Proc) {
							c := w.WorldComm()
							me := c.Rank(p)
							sbuf := buffer.NewReal(append([]byte(nil), inputs[me]...))
							var rbuf *buffer.Buffer
							if me == root {
								rbuf = buffer.NewReal(make([]byte, len(inputs[me])))
							}
							mod.Reduce(p, c, args, sbuf, rbuf, root)
							if me == root {
								got = append([]byte(nil), rbuf.Data()...)
							}
						})
						if err != nil {
							t.Fatal(err)
						}
						if !bytes.Equal(got, want) {
							t.Fatal("root's reduction diverges from the sequential reference")
						}
					})
				}
			}
		}
	}
}

func TestConformanceAllgather(t *testing.T) {
	for _, mod := range confModules() {
		for _, block := range []int{1500, 48 << 10} {
			mod := mod
			t.Run(fmt.Sprintf("%s/%dB", mod.Name(), block), func(t *testing.T) {
				inputs := make([][]byte, confNP)
				for r := range inputs {
					inputs[r] = confPattern(r, block)
				}
				want := coll.RefAllgather(inputs)
				w := confWorld(t)
				var bad []int
				err := w.Run(func(p *mpi.Proc) {
					c := w.WorldComm()
					me := c.Rank(p)
					sbuf := buffer.NewReal(append([]byte(nil), inputs[me]...))
					rbuf := buffer.NewReal(make([]byte, block*confNP))
					mod.Allgather(p, c, sbuf, rbuf)
					if !bytes.Equal(rbuf.Data(), want) {
						bad = append(bad, me)
					}
				})
				if err != nil {
					t.Fatal(err)
				}
				if len(bad) != 0 {
					t.Fatalf("ranks %v diverge from the sequential reference", bad)
				}
			})
		}
	}
}

func TestConformanceScatter(t *testing.T) {
	for _, mod := range confModules() {
		for _, block := range []int{900, 24 << 10} {
			for _, root := range []int{0, 3} {
				mod := mod
				t.Run(fmt.Sprintf("%s/%dB/root%d", mod.Name(), block, root), func(t *testing.T) {
					rootData := make([]byte, 0, block*confNP)
					for r := 0; r < confNP; r++ {
						rootData = append(rootData, confPattern(r, block)...)
					}
					want := coll.RefScatter(rootData, confNP)
					w := confWorld(t)
					var bad []int
					err := w.Run(func(p *mpi.Proc) {
						c := w.WorldComm()
						me := c.Rank(p)
						var sbuf *buffer.Buffer
						if me == root {
							sbuf = buffer.NewReal(append([]byte(nil), rootData...))
						}
						rbuf := buffer.NewReal(make([]byte, block))
						mod.Scatter(p, c, sbuf, rbuf, root)
						if !bytes.Equal(rbuf.Data(), want[me]) {
							bad = append(bad, me)
						}
					})
					if err != nil {
						t.Fatal(err)
					}
					if len(bad) != 0 {
						t.Fatalf("ranks %v diverge from the sequential reference", bad)
					}
				})
			}
		}
	}
}

func TestConformanceGather(t *testing.T) {
	for _, mod := range confModules() {
		for _, block := range []int{900, 24 << 10} {
			for _, root := range []int{0, confNP - 1} {
				mod := mod
				t.Run(fmt.Sprintf("%s/%dB/root%d", mod.Name(), block, root), func(t *testing.T) {
					inputs := make([][]byte, confNP)
					for r := range inputs {
						inputs[r] = confPattern(r, block)
					}
					want := coll.RefGather(inputs)
					w := confWorld(t)
					var got []byte
					err := w.Run(func(p *mpi.Proc) {
						c := w.WorldComm()
						me := c.Rank(p)
						sbuf := buffer.NewReal(append([]byte(nil), inputs[me]...))
						var rbuf *buffer.Buffer
						if me == root {
							rbuf = buffer.NewReal(make([]byte, block*confNP))
						}
						mod.Gather(p, c, sbuf, rbuf, root)
						if me == root {
							got = append([]byte(nil), rbuf.Data()...)
						}
					})
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(got, want) {
						t.Fatal("root's gather diverges from the sequential reference")
					}
				})
			}
		}
	}
}
