// Guard-elision gates: HIERKNEM_GUARDS=elide must (a) engage only under a
// fresh phasesafe manifest, (b) actually skip guards inside proved regions
// (ElidedPhases > 0), (c) commit event logs hex-identical to the guarded
// serial reference across the full bracketed-personality surface and every
// worker count — elision removes assertions, not effects — and (d) refuse
// loudly on a stale, corrupt or missing manifest, on configurations outside
// the proof's bounds, and defer to HIERSAN. See docs/STATIC_ANALYSIS.md
// (phasesafe) and DESIGN.md §5.7.
package hierknem_test

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"hierknem"
	"hierknem/internal/lint"
	"hierknem/internal/phasesafe"
)

var (
	manifestOnce sync.Once
	manifestErr  error
)

// ensureManifest guarantees a fresh, valid phasesafe manifest at the
// default path (reusing one a prior bench.sh/CI step emitted when its
// source hashes still match; re-running the analysis suite otherwise).
// Shared by the elision tests, the fuzz target's guard dimension and the
// guards=elided bench variant.
func ensureManifest(tb testing.TB) {
	tb.Helper()
	manifestOnce.Do(func() {
		root, err := phasesafe.ModuleRoot("")
		if err != nil {
			manifestErr = err
			return
		}
		path := phasesafe.DefaultPath(root)
		if m, err := phasesafe.Load(path); err == nil && m.Validate(root) == nil {
			return
		}
		if _, _, err := lint.Analyze(lint.Options{
			Dir:          root,
			CacheDir:     lint.DefaultCacheDir(root),
			ManifestPath: path,
		}); err != nil {
			manifestErr = fmt.Errorf("regenerating phasesafe manifest: %v", err)
			return
		}
		m, err := phasesafe.Load(path)
		if err == nil {
			err = m.Validate(root)
		}
		if err != nil {
			manifestErr = fmt.Errorf("phasesafe manifest invalid after regeneration (does the tree have confinement findings?): %v", err)
		}
	})
	if manifestErr != nil {
		tb.Fatalf("ensureManifest: %v", manifestErr)
	}
}

// elidedPersonalityLog mirrors personalityLog with guard elision switched
// on through the environment (the path CI and operators use), asserting
// the world really elided proved regions rather than silently running
// checked.
func elidedPersonalityLog(t *testing.T, mod hierknem.Module, workers int) []string {
	t.Helper()
	t.Setenv("HIERKNEM_GUARDS", "elide")
	w, err := hierknem.NewWorldPPN(isoSpec(), isoPPN)
	if err != nil {
		t.Fatal(err)
	}
	if got := w.GuardMode(); got != hierknem.GuardElided {
		t.Fatalf("HIERKNEM_GUARDS=elide built a %v world", got)
	}
	w.SetEngineMode(hierknem.EngineParallel)
	if workers > 0 {
		w.SetEngineWorkers(workers)
	}
	var log []string
	smallCollectiveProg(w, mod, &log)
	if w.ElidedPhases() == 0 {
		t.Fatalf("%s at workers=%d elided no node phases — the manifest region names no longer match the runtime call sites", mod.Name(), workers)
	}
	return log
}

// TestGuardElisionHexIdentical is the elision soundness gate: for every
// bracketed personality, the elided parallel engine must commit a log
// hex-identical to the guarded serial reference at workers 1, 2, 4 and 8.
func TestGuardElisionHexIdentical(t *testing.T) {
	ensureManifest(t)
	for _, mod := range phasedPersonalities() {
		mod := mod
		t.Run(mod.Name(), func(t *testing.T) {
			want := personalityLog(t, mod, hierknem.EngineSerial, 0)
			for _, workers := range []int{1, 2, 4, 8} {
				got := elidedPersonalityLog(t, mod, workers)
				diffLogs(t, fmt.Sprintf("%s/elided/workers=%d", mod.Name(), workers), want, got)
			}
		})
	}
}

// TestGuardElideRefusals pins the fail-closed contract: every way the
// proof can be invalid refuses elision with a loud error naming the cause,
// and never silently downgrades to an unguarded run.
func TestGuardElideRefusals(t *testing.T) {
	ensureManifest(t)
	root, err := phasesafe.ModuleRoot("")
	if err != nil {
		t.Fatal(err)
	}

	newWorld := func(t *testing.T) (*hierknem.World, error) {
		t.Helper()
		return hierknem.NewWorldPPN(isoSpec(), isoPPN)
	}

	t.Run("stale manifest", func(t *testing.T) {
		// Tamper a recorded source hash and re-stamp the self-hash: the
		// manifest loads cleanly but Validate sees the drift.
		m, err := phasesafe.Load(phasesafe.DefaultPath(root))
		if err != nil {
			t.Fatal(err)
		}
		m.Sources["internal/mpi/confine.go"] = strings.Repeat("0", 64)
		path := filepath.Join(t.TempDir(), "stale.manifest")
		if err := m.Write(path); err != nil {
			t.Fatal(err)
		}
		t.Setenv("HIERKNEM_GUARD_MANIFEST", path)
		t.Setenv("HIERKNEM_GUARDS", "elide")
		if _, err := newWorld(t); err == nil || !strings.Contains(err.Error(), "stale") {
			t.Fatalf("stale manifest: got %v, want a stale-manifest refusal", err)
		}
	})

	t.Run("corrupt manifest", func(t *testing.T) {
		// Edit the serialized bytes without re-stamping: the self-hash
		// check must reject before any region is trusted.
		b, err := os.ReadFile(phasesafe.DefaultPath(root))
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(t.TempDir(), "corrupt.manifest")
		if err := os.WriteFile(path, []byte(strings.Replace(string(b), "regions", "regionz", 1)), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Setenv("HIERKNEM_GUARD_MANIFEST", path)
		t.Setenv("HIERKNEM_GUARDS", "elide")
		if _, err := newWorld(t); err == nil || !strings.Contains(err.Error(), "self-hash") {
			t.Fatalf("corrupt manifest: got %v, want a self-hash refusal", err)
		}
	})

	t.Run("missing manifest", func(t *testing.T) {
		t.Setenv("HIERKNEM_GUARD_MANIFEST", filepath.Join(t.TempDir(), "nope.manifest"))
		t.Setenv("HIERKNEM_GUARDS", "elide")
		if _, err := newWorld(t); err == nil {
			t.Fatal("missing manifest did not refuse elision")
		}
	})

	t.Run("bad mode value", func(t *testing.T) {
		t.Setenv("HIERKNEM_GUARDS", "fast")
		if _, err := newWorld(t); err == nil || !strings.Contains(err.Error(), "HIERKNEM_GUARDS") {
			t.Fatalf("HIERKNEM_GUARDS=fast: got %v, want a loud mode error", err)
		}
	})

	t.Run("hiersan forces checked", func(t *testing.T) {
		// The combination is legitimate (CI matrices): the sanitizer wins
		// silently — a world, not an error, but with every guard live.
		t.Setenv("HIERSAN", "1")
		t.Setenv("HIERKNEM_GUARDS", "elide")
		w, err := newWorld(t)
		if err != nil {
			t.Fatal(err)
		}
		if w.GuardMode() != hierknem.GuardChecked {
			t.Fatalf("HIERSAN=1 world runs guard mode %v, want checked", w.GuardMode())
		}
		if w.Sanitizer() == nil {
			t.Fatal("HIERSAN=1 world has no sanitizer attached")
		}
	})

	t.Run("checked is the default", func(t *testing.T) {
		w, err := newWorld(t)
		if err != nil {
			t.Fatal(err)
		}
		if w.GuardMode() != hierknem.GuardChecked {
			t.Fatalf("default guard mode is %v, want checked", w.GuardMode())
		}
		if n := w.ElidedPhases(); n != 0 {
			t.Fatalf("checked world reports %d elided phases", n)
		}
	})
}
