// Run isolation: a simulation must behave bit-identically no matter how
// many sibling simulations run on other goroutines and no matter whether
// its world is freshly built or reused through World.Reset. These are the
// invariants the parallel sweep runner (internal/sweep) rests on; under
// `go test -race` the parallel test doubles as a data-race probe over the
// whole engine/mpi/fabric stack.
package hierknem_test

import (
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"testing"

	"hierknem"
	"hierknem/internal/buffer"
	"hierknem/internal/coll"
	"hierknem/internal/des"
	"hierknem/internal/mpi"
)

// hexTime renders a virtual time exactly (hex mantissa), so string equality
// of logs is bit equality of the times.
func hexTime(x float64) string { return strconv.FormatFloat(x, 'x', -1, 64) }

const isoPPN = 4

func isoSpec() hierknem.Spec { return hierknem.Stremi(3) }

func isoWorld(t testing.TB) *hierknem.World {
	t.Helper()
	w, err := hierknem.NewWorldPPN(isoSpec(), isoPPN)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// runLogged executes a bcast + barrier + reduce program on w and returns
// the event log: each rank's hex-exact completion instant of both phases,
// plus the engine's final clock and processed-event count. Appends happen
// from rank bodies of one engine — cooperatively scheduled, never
// concurrent.
func runLogged(t testing.TB, w *hierknem.World) []string {
	t.Helper()
	spec := isoSpec()
	mod := hierknem.ForCluster(&spec)
	np := w.Size()
	bufs := make([]*buffer.Buffer, np)
	sbufs := make([]*buffer.Buffer, np)
	rbufs := make([]*buffer.Buffer, np)
	for i := range bufs {
		bufs[i] = buffer.NewPhantom(96 << 10)
		sbufs[i] = buffer.NewPhantom(32 << 10)
		rbufs[i] = buffer.NewPhantom(32 << 10)
	}
	log := make([]string, 0, 2*np+1)
	err := w.Run(func(p *mpi.Proc) {
		c := w.WorldComm()
		me := c.Rank(p)
		mod.Bcast(p, c, bufs[me], 0)
		log = append(log, fmt.Sprintf("bcast r%d %s", me, hexTime(p.Now())))
		c.Barrier(p)
		a := coll.ReduceArgs{Op: buffer.OpSum, Dtype: buffer.Float64}
		mod.Reduce(p, c, a, sbufs[me], rbufs[me], 0)
		log = append(log, fmt.Sprintf("reduce r%d %s", me, hexTime(p.Now())))
	})
	if err != nil {
		t.Fatal(err)
	}
	log = append(log, fmt.Sprintf("final %s %d", hexTime(w.Now()), w.Machine.Eng.Processed()))
	return log
}

func diffLogs(t *testing.T, label string, want, got []string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: log length %d, want %d", label, len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: log entry %d differs:\n  want %s\n  got  %s", label, i, want[i], got[i])
		}
	}
}

// TestParallelRunsBitIdentical runs the same simulation on 8 concurrent
// goroutines — each with its own world, as sweep workers do — and requires
// every event log to match the serial reference bit for bit. Engine host
// pinning is suspended exactly as the sweep runner suspends it.
func TestParallelRunsBitIdentical(t *testing.T) {
	want := runLogged(t, isoWorld(t))

	const runs = 8
	defer des.SetHostPinning(des.SetHostPinning(false))
	logs := make([][]string, runs)
	var wg sync.WaitGroup
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			logs[i] = runLogged(t, isoWorld(t))
		}(i)
	}
	wg.Wait()
	for i, got := range logs {
		diffLogs(t, fmt.Sprintf("parallel run %d", i), want, got)
	}
}

// TestWorldResetReplaysBitIdentical reruns the program on a Reset world and
// requires the hex-exact log of the fresh run — the invariant that lets
// sweep workers substitute a reused arena for a fresh build.
func TestWorldResetReplaysBitIdentical(t *testing.T) {
	w := isoWorld(t)
	want := runLogged(t, w)
	for i := 0; i < 3; i++ {
		w.Reset()
		diffLogs(t, fmt.Sprintf("reset replay %d", i), want, runLogged(t, w))
	}
}

// TestEngineModeParallelRunsBitIdentical is the parallel-engine variant of
// TestParallelRunsBitIdentical: 8 concurrent simulations, each running its
// own conservative-window (ModeParallel) engine, must all reproduce the
// serial reference log bit for bit. Under `go test -race` this doubles as a
// data-race probe over the window-promotion and parallel-fill goroutines.
func TestEngineModeParallelRunsBitIdentical(t *testing.T) {
	want := runLogged(t, isoWorld(t))

	parWorld := func() *hierknem.World {
		w := isoWorld(t)
		w.SetEngineMode(hierknem.EngineParallel)
		return w
	}
	// Solo parallel run first: it must already match serial, and it must
	// actually exercise the window machinery.
	solo := parWorld()
	diffLogs(t, "solo parallel-engine run", want, runLogged(t, solo))
	if ws := solo.Machine.Eng.WindowStats(); ws.Windows == 0 {
		t.Fatalf("parallel engine never advanced a window (stats %+v)", ws)
	}

	const runs = 8
	defer des.SetHostPinning(des.SetHostPinning(false))
	logs := make([][]string, runs)
	var wg sync.WaitGroup
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			logs[i] = runLogged(t, parWorld())
		}(i)
	}
	wg.Wait()
	for i, got := range logs {
		diffLogs(t, fmt.Sprintf("concurrent parallel-engine run %d", i), want, got)
	}
}

// TestEngineModeFlipResetReplays flips one world Serial → Parallel → Serial
// across World.Reset boundaries and requires every replay to reproduce the
// original hex-exact log: the mode switch must leave no residue in the
// event pool, the staging heaps or the fabric (HIERSAN=1 runs of this test
// additionally assert pool balance at each Reset).
func TestEngineModeFlipResetReplays(t *testing.T) {
	w := isoWorld(t)
	want := runLogged(t, w)
	for i, mode := range []hierknem.EngineMode{
		hierknem.EngineParallel, hierknem.EngineSerial,
		hierknem.EngineParallel, hierknem.EngineSerial,
	} {
		w.Reset()
		w.SetEngineMode(mode)
		diffLogs(t, fmt.Sprintf("flip %d (%v)", i, mode), want, runLogged(t, w))
	}
}

// TestWorldResetAllocsLessThanRebuild pins the point of reuse: a Reset+run
// must allocate strictly less than a rebuild+run, because the engine event
// pool, fabric flow pool, matching FIFOs and envelope pools all stay warm.
func TestWorldResetAllocsLessThanRebuild(t *testing.T) {
	mallocs := func() uint64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return ms.Mallocs
	}
	// Warm both paths once so one-time lazy initialization is excluded.
	w := isoWorld(t)
	runLogged(t, w)
	w.Reset()
	runLogged(t, w)

	start := mallocs()
	fresh := isoWorld(t)
	runLogged(t, fresh)
	rebuild := mallocs() - start

	start = mallocs()
	w.Reset()
	runLogged(t, w)
	reused := mallocs() - start

	if reused >= rebuild {
		t.Fatalf("reset+run allocated %d objects, rebuild+run %d; reuse must be strictly cheaper", reused, rebuild)
	}
	t.Logf("allocs: rebuild+run %d, reset+run %d (%.1fx fewer)", rebuild, reused, float64(rebuild)/float64(reused))
}
