// Root-level gate for the phase-bracketed real collective personalities:
// with small messages the HierKNEM, Hierarch and MVAPICH2 modules bracket
// their node-confined stretches (internal/core's bcastSmall and friends, the
// sm* helpers the classic two-level personalities share), so the parallel
// engine executes each node's intra-node work on its own worker — and the
// committed event log must still be hex-identical to the serial reference,
// across every worker count. These tests are the real-workload counterpart
// of internal/des's synthetic mixed-window tests.
package hierknem_test

import (
	"fmt"
	"strconv"
	"testing"

	"hierknem"
	"hierknem/internal/buffer"
	"hierknem/internal/coll"
	"hierknem/internal/imb"
	"hierknem/internal/modules"
	"hierknem/internal/mpi"
)

// phasedPersonalities are the collective modules whose intra-node stretches
// bracket as node phases: HierKNEM itself plus the two-level personalities
// that funnel through the shared sm* helpers. Tuned and MPICH2 stay flat
// (no leader hierarchy, nothing node-confined to bracket), so they are
// covered by the conformance suite's env-selected parallel runs instead.
func phasedPersonalities() []hierknem.Module {
	spec := isoSpec()
	return []hierknem.Module{
		hierknem.ForCluster(&spec),
		modules.Hierarch(modules.Quirks{}),
		modules.MVAPICH2(),
	}
}

// smallCollectiveProg drives one personality through its whole operation
// surface at bracket-eligible sizes (under the 4 KiB fabric-bypass cutoff),
// so every operation's node-phase placement is exercised in one program.
func smallCollectiveProg(w *hierknem.World, mod hierknem.Module, log *[]string) {
	np := w.Size()
	a := coll.ReduceArgs{Op: buffer.OpSum, Dtype: buffer.Float64}
	small := phantomPerRank(np, 2<<10)
	redIn := phantomPerRank(np, 1<<10)
	redOut := phantomPerRank(np, 1<<10)
	arIn := phantomPerRank(np, 1<<10)
	arOut := phantomPerRank(np, 1<<10)
	blkIn := phantomPerRank(np, 512)
	blkOut := phantomPerRank(np, np*512)
	scIn := phantomPerRank(np, np*512)
	scOut := phantomPerRank(np, 512)
	runCollectives(w, log, func(p *mpi.Proc, c *mpi.Comm, me int) {
		mod.Bcast(p, c, small[me], 0)
		mod.Reduce(p, c, a, redIn[me], redOut[me], 0)
		mod.Allgather(p, c, blkIn[me], blkOut[me])
		mod.Scatter(p, c, scIn[me], scOut[me], 0)
		mod.Gather(p, c, blkIn[me], blkOut[me], 0)
		mod.Allreduce(p, c, a, arIn[me], arOut[me])
	})
}

// personalityLog runs smallCollectiveProg under one engine configuration on
// a fresh world and returns the event log. workers <= 0 keeps the engine
// default. For parallel runs with explicit workers >= 2 it asserts that the
// bracketed collectives actually produced phased windows — the perf claim
// behind the brackets, checked structurally so it holds on any host.
func personalityLog(t *testing.T, mod hierknem.Module, mode hierknem.EngineMode, workers int) []string {
	t.Helper()
	w, err := hierknem.NewWorldPPN(isoSpec(), isoPPN)
	if err != nil {
		t.Fatal(err)
	}
	w.SetEngineMode(mode)
	if workers > 0 {
		w.SetEngineWorkers(workers)
	}
	var log []string
	smallCollectiveProg(w, mod, &log)
	if mode == hierknem.EngineParallel && workers >= 2 {
		// (workers=1 is the degenerate engine: no window machinery at all,
		// so there is nothing to assert beyond log identity.)
		ws := w.Machine.Eng.WindowStats()
		if ws.Windows == 0 {
			t.Fatalf("parallel mode never advanced a window (stats %+v)", ws)
		}
		if ws.Phases == 0 || ws.PhasedWindows == 0 {
			t.Fatalf("%s executed no parallel phases at workers=%d (stats %+v) — the collective brackets are not engaging",
				mod.Name(), workers, ws)
		}
		if ws.PhasedWindows > ws.Windows {
			t.Fatalf("phased windows %d > windows %d", ws.PhasedWindows, ws.Windows)
		}
	}
	return log
}

// TestNodePhaseCollectiveHexIdentical is the Tentpole-B gate: for every
// bracketed personality, the parallel engine must commit a log
// hex-identical to the serial reference at every worker count, while
// workers >= 2 actually execute phased windows.
func TestNodePhaseCollectiveHexIdentical(t *testing.T) {
	for _, mod := range phasedPersonalities() {
		mod := mod
		t.Run(mod.Name(), func(t *testing.T) {
			want := personalityLog(t, mod, hierknem.EngineSerial, 0)
			for _, workers := range []int{1, 2, 4, 8} {
				got := personalityLog(t, mod, hierknem.EngineParallel, workers)
				diffLogs(t, fmt.Sprintf("%s/workers=%d", mod.Name(), workers), want, got)
			}
		})
	}
}

// TestNodePhaseFig3aPhasedFraction pins the Fig3a acceptance shape: a
// small-message HierKNEM broadcast sweep at cluster scale must execute more
// than half of its windows as phased windows under the parallel engine.
// The fraction is structural — it counts the window schedule, not wall
// clock — so the bar binds on any host; the companion wall-clock bars live
// in scripts/bench.sh, waived below 4 cores.
func TestNodePhaseFig3aPhasedFraction(t *testing.T) {
	spec := hierknem.Stremi(8)
	mod := hierknem.ForCluster(&spec)
	mod.Opt.CacheTopology = true
	np := spec.Nodes * spec.CoresPerNode()
	w, err := hierknem.NewWorld(spec, "bycore", np)
	if err != nil {
		t.Fatal(err)
	}
	w.SetEngineMode(hierknem.EngineParallel)
	w.SetEngineWorkers(4)
	hierknem.BenchBcast(w, mod, 2<<10, imb.Opts{Iterations: 8, Warmup: 1})
	ws := w.Machine.Eng.WindowStats()
	if ws.Windows == 0 {
		t.Fatalf("no windows advanced (stats %+v)", ws)
	}
	frac := float64(ws.PhasedWindows) / float64(ws.Windows)
	if frac <= 0.5 {
		t.Fatalf("phased-window fraction %.3f (= %d/%d) is not above 0.5 — the small-bcast brackets regressed",
			frac, ws.PhasedWindows, ws.Windows)
	}
}

// TestConformanceParallelEnvWorkers replays the bracketed-personality
// program under the environment hooks CI uses (HIERKNEM_ENGINE=parallel plus
// an explicit HIERKNEM_WORKERS), pinning that the env path reaches the same
// hex-identical logs and phased windows as the programmatic setters, and
// that malformed worker counts fail world construction loudly instead of
// being silently clamped.
func TestConformanceParallelEnvWorkers(t *testing.T) {
	spec := isoSpec()
	mod := hierknem.ForCluster(&spec)
	want := personalityLog(t, mod, hierknem.EngineSerial, 0)

	for _, workers := range []int{2, 8} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			t.Setenv("HIERKNEM_ENGINE", "parallel")
			t.Setenv("HIERKNEM_WORKERS", strconv.Itoa(workers))
			w, err := hierknem.NewWorldPPN(isoSpec(), isoPPN)
			if err != nil {
				t.Fatal(err)
			}
			if got := w.EngineMode(); got != hierknem.EngineParallel {
				t.Fatalf("HIERKNEM_ENGINE=parallel built a %v world", got)
			}
			var log []string
			smallCollectiveProg(w, mod, &log)
			ws := w.Machine.Eng.WindowStats()
			if ws.Workers != workers {
				t.Fatalf("HIERKNEM_WORKERS=%d resolved to %d workers", workers, ws.Workers)
			}
			if ws.Phases == 0 || ws.PhasedWindows == 0 {
				t.Fatalf("no phased windows at workers=%d (stats %+v)", workers, ws)
			}
			diffLogs(t, fmt.Sprintf("env/workers=%d", workers), want, log)
		})
	}

	for _, bad := range []string{"0", "-3", "abc"} {
		bad := bad
		t.Run("bad="+bad, func(t *testing.T) {
			t.Setenv("HIERKNEM_WORKERS", bad)
			if _, err := hierknem.NewWorldPPN(isoSpec(), isoPPN); err == nil {
				t.Fatalf("HIERKNEM_WORKERS=%q did not fail world construction", bad)
			}
		})
	}
}
