// Quickstart: build a simulated cluster, broadcast real data with HierKNEM,
// verify delivery, and compare its virtual-time cost against Open MPI's
// Tuned module — the core of what the HierKNEM paper is about, in ~60 lines.
package main

import (
	"bytes"
	"fmt"
	"log"

	"hierknem"
	"hierknem/internal/buffer"
	"hierknem/internal/imb"
)

func main() {
	// A 4-node slice of the paper's InfiniBand cluster (Parapluie):
	// 2 sockets x 12 cores per node, IB 20G between nodes.
	spec := hierknem.Parapluie(4)
	np := spec.Nodes * spec.CoresPerNode() // 96 ranks, one per core

	// --- 1. Correctness: broadcast real bytes and check every rank. ---
	w, err := hierknem.NewWorld(spec, "bycore", np)
	if err != nil {
		log.Fatal(err)
	}
	mod := hierknem.ForCluster(&spec) // HierKNEM with Table-I pipeline sizes

	payload := []byte("kernel-assisted, topology-aware, overlapped")
	wrong := 0
	err = w.Run(func(p *hierknem.Proc) {
		c := w.WorldComm()
		buf := buffer.NewReal(make([]byte, len(payload)))
		if c.Rank(p) == 0 {
			copy(buf.Data(), payload)
		}
		mod.Bcast(p, c, buf, 0)
		if !bytes.Equal(buf.Data(), payload) {
			wrong++
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("broadcast to %d ranks across %d nodes: %d wrong payloads, finished at t=%.1f us\n",
		np, spec.Nodes, wrong, w.Now()*1e6)

	// --- 2. Performance: HierKNEM vs Open MPI Tuned at 1 MB. ---
	const size = 1 << 20
	wHK, _ := hierknem.NewWorld(spec, "bycore", np)
	rHK := hierknem.BenchBcast(wHK, mod, size, imb.Opts{Iterations: 3, Warmup: 1})

	wT, _ := hierknem.NewWorld(spec, "bycore", np)
	rT := hierknem.BenchBcast(wT, hierknem.Tuned(hierknem.Quirks{}), size, imb.Opts{Iterations: 3, Warmup: 1})

	fmt.Printf("1MB bcast:  hierknem %8.1f us   tuned %8.1f us   speedup %.1fx\n",
		rHK.AvgTime*1e6, rT.AvgTime*1e6, rT.AvgTime/rHK.AvgTime)
}
