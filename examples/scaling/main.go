// Scaling: the paper's Figure 7 in miniature. On a slow network (Gigabit
// Ethernet) HierKNEM's broadcast time is bounded by inter-node forwarding:
// intra-node distribution is offloaded to non-leader cores and fully
// overlapped, so adding cores per node adds aggregate bandwidth for free —
// until the intra-node pipe itself becomes the bottleneck on fast networks.
package main

import (
	"fmt"
	"log"

	"hierknem"
	"hierknem/internal/imb"
)

func main() {
	const size = 2 << 20 // 2MB broadcast, as in Figure 7
	for _, cluster := range []string{"stremi (GigE)", "parapluie (IB 20G)"} {
		var spec hierknem.Spec
		if cluster[0] == 's' {
			spec = hierknem.Stremi(8)
		} else {
			spec = hierknem.Parapluie(8)
		}
		mod := hierknem.ForCluster(&spec)
		fmt.Printf("%s — 2MB HierKNEM broadcast, %d nodes:\n", cluster, spec.Nodes)
		fmt.Printf("  %6s %14s %18s\n", "ppn", "time (ms)", "agg BW (MB/s)")
		var base float64
		for _, ppn := range []int{1, 2, 4, 8, 12, 16, 24} {
			w, err := hierknem.NewWorldPPN(spec, ppn)
			if err != nil {
				log.Fatal(err)
			}
			r := hierknem.BenchBcast(w, mod, size, imb.Opts{Iterations: 3, Warmup: 1})
			if ppn == 1 {
				base = r.AvgTime
			}
			fmt.Printf("  %6d %14.2f %18.0f   (time vs 1 ppn: %.2fx)\n",
				ppn, r.AvgTime*1e3, r.AggBW/1e6, r.AvgTime/base)
		}
		fmt.Println()
	}
}
