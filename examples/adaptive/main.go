// Adaptive: the "framework" part of HierKNEM. One module, no
// reconfiguration — and it morphs per the paper's section III:
//
//   - all ranks on one node      -> the KNEM-collective linear broadcast
//   - one rank per node          -> a pure inter-node pipelined tree
//   - small nodes (<=6 ranks)    -> leader-based Allgather
//   - large NUMA nodes           -> topology-aware ring Allgather
//   - few pipeline segments      -> binomial inter-node spanning tree
//   - deep pipelines             -> chain spanning tree
//
// This program exercises each regime on appropriately shaped clusters and
// prints what the module did and what it cost.
package main

import (
	"fmt"
	"log"

	"hierknem"
	"hierknem/internal/buffer"
	"hierknem/internal/imb"
)

func run(title string, spec hierknem.Spec, ppn int, body func(w *hierknem.World, mod hierknem.Module) string) {
	w, err := hierknem.NewWorldPPN(spec, ppn)
	if err != nil {
		log.Fatal(err)
	}
	mod := hierknem.ForCluster(&spec)
	fmt.Printf("%-34s %s\n", title, body(w, mod))
}

func main() {
	fmt.Println("One module, five hardware shapes — no tuning knobs touched.")
	fmt.Println()

	single := hierknem.Parapluie(1) // everything on one 24-core node
	run("single node (KNEM linear):", single, 24, func(w *hierknem.World, mod hierknem.Module) string {
		r := hierknem.BenchBcast(w, mod, 1<<20, imb.Opts{Iterations: 3, Warmup: 1})
		return fmt.Sprintf("1MB bcast %8.1f us", r.AvgTime*1e6)
	})

	wide := hierknem.Parapluie(16) // one rank per node: pure inter-node
	run("one rank/node (inter-node tree):", wide, 1, func(w *hierknem.World, mod hierknem.Module) string {
		r := hierknem.BenchBcast(w, mod, 1<<20, imb.Opts{Iterations: 3, Warmup: 1})
		return fmt.Sprintf("1MB bcast %8.1f us", r.AvgTime*1e6)
	})

	smallNodes := hierknem.Parapluie(8)
	run("4 ranks/node (leader allgather):", smallNodes, 4, func(w *hierknem.World, mod hierknem.Module) string {
		r := hierknem.BenchAllgather(w, mod, 256<<10, imb.Opts{Iterations: 3, Warmup: 1})
		return fmt.Sprintf("256KB allgather %8.1f us", r.AvgTime*1e6)
	})

	bigNodes := hierknem.Parapluie(8)
	run("24 ranks/node (ring allgather):", bigNodes, 24, func(w *hierknem.World, mod hierknem.Module) string {
		r := hierknem.BenchAllgather(w, mod, 256<<10, imb.Opts{Iterations: 3, Warmup: 1})
		return fmt.Sprintf("256KB allgather %8.1f us", r.AvgTime*1e6)
	})

	deep := hierknem.Stremi(8)
	run("slow net (chain pipeline):", deep, 24, func(w *hierknem.World, mod hierknem.Module) string {
		r := hierknem.BenchBcast(w, mod, 4<<20, imb.Opts{Iterations: 2, Warmup: 1})
		return fmt.Sprintf("4MB bcast %8.1f ms", r.AvgTime*1e3)
	})

	// Correctness is identical in every regime: same data, same API.
	fmt.Println()
	for _, nodes := range []int{1, 4} {
		spec := hierknem.Parapluie(nodes)
		w, err := hierknem.NewWorldPPN(spec, 6)
		if err != nil {
			log.Fatal(err)
		}
		mod := hierknem.ForCluster(&spec)
		want := []byte("same bytes in every regime")
		bad := 0
		err = w.Run(func(p *hierknem.Proc) {
			c := w.WorldComm()
			buf := buffer.NewReal(make([]byte, len(want)))
			if c.Rank(p) == 0 {
				copy(buf.Data(), want)
			}
			mod.Bcast(p, c, buf, 0)
			if string(buf.Data()) != string(want) {
				bad++
			}
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("verified on %d node(s): %d wrong payloads\n", nodes, bad)
	}
}
