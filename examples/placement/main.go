// Placement: the paper's Figure 6 in miniature. Process placement (by-core
// vs by-node) devastates topology-unaware collectives — a rank-ordered ring
// under by-node binding pushes every edge across the network — while
// HierKNEM rebuilds its logical topology from physical positions and barely
// notices.
package main

import (
	"fmt"
	"log"

	"hierknem"
	"hierknem/internal/imb"
)

func main() {
	spec := hierknem.Parapluie(8)
	np := spec.Nodes * spec.CoresPerNode()
	const block = 256 << 10 // per-rank allgather contribution

	mods := []hierknem.Module{
		hierknem.ForCluster(&spec),
		hierknem.Tuned(hierknem.Quirks{}),
	}

	fmt.Printf("Allgather of %d KB per rank, %d ranks on %d nodes\n\n", block>>10, np, spec.Nodes)
	fmt.Printf("%-10s %14s %14s %10s\n", "module", "bycore (us)", "bynode (us)", "penalty")
	for _, mod := range mods {
		times := map[string]float64{}
		for _, binding := range []string{"bycore", "bynode"} {
			w, err := hierknem.NewWorld(spec, binding, np)
			if err != nil {
				log.Fatal(err)
			}
			r := hierknem.BenchAllgather(w, mod, block, imb.Opts{Iterations: 3, Warmup: 1})
			times[binding] = r.AvgTime
		}
		fmt.Printf("%-10s %14.1f %14.1f %9.2fx\n",
			mod.Name(), times["bycore"]*1e6, times["bynode"]*1e6, times["bynode"]/times["bycore"])
	}
	fmt.Println("\nHierKNEM's ring follows physical distance, so only one edge per node")
	fmt.Println("crosses the network under either binding; the rank-ordered ring sends")
	fmt.Println("every block across the wire when ranks are interleaved by node.")
}
