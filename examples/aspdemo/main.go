// ASP demo: the paper's application study (Table II) on a small instance.
// The parallel Floyd–Warshall solver broadcasts one matrix row per
// iteration; with a slow broadcast the application spends most of its time
// communicating, and swapping in HierKNEM reclaims it without touching a
// line of application code — the portability argument of the paper's
// introduction.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"hierknem"
	"hierknem/internal/asp"
)

func main() {
	spec := hierknem.Stremi(8) // Ethernet: where collectives hurt the most
	np := spec.Nodes * spec.CoresPerNode()
	const n = 1024

	fmt.Printf("ASP (all-pairs shortest path), N=%d, %d ranks on %d Ethernet nodes\n\n", n, np, spec.Nodes)
	fmt.Printf("%-10s %12s %12s %8s\n", "module", "bcast (s)", "total (s)", "comm")
	for _, mod := range hierknem.Lineup(&spec) {
		w, err := hierknem.NewWorld(spec, "bycore", np)
		if err != nil {
			log.Fatal(err)
		}
		res := hierknem.RunASP(w, mod, n, 0)
		fmt.Printf("%-10s %12.3f %12.3f %7.1f%%\n",
			mod.Name(), res.Bcast, res.Total, 100*res.Bcast/res.Total)
	}

	// And a correctness spot check with real data on a tiny instance.
	const small = 48
	rng := rand.New(rand.NewSource(7))
	d := make([][]float64, small)
	for i := range d {
		d[i] = make([]float64, small)
		for j := range d[i] {
			switch {
			case i == j:
				d[i][j] = 0
			case rng.Float64() < 0.3:
				d[i][j] = float64(1 + rng.Intn(20))
			default:
				d[i][j] = asp.Inf
			}
		}
	}
	ref := make([][]float64, small)
	for i := range ref {
		ref[i] = append([]float64(nil), d[i]...)
	}
	asp.Sequential(ref)
	w, _ := hierknem.NewWorld(spec, "bycore", np)
	got := hierknem.SolveASP(w, hierknem.ForCluster(&spec), d)
	for i := range ref {
		for j := range ref[i] {
			if got[i][j] != ref[i][j] {
				log.Fatalf("mismatch at (%d,%d)", i, j)
			}
		}
	}
	fmt.Printf("\nreal-data check: %dx%d instance matches the sequential solver\n", small, small)
}
