// Package asp implements the ASP benchmark the paper uses for its
// application study (Table II): the all-pairs shortest path problem solved
// with a parallel Floyd–Warshall algorithm.
//
// The N×N distance matrix is distributed over ranks in contiguous row
// blocks. Iteration k broadcasts row k from its owner to every rank (a
// message of N×8 bytes), after which each rank relaxes its own rows through
// vertex k. MPI_Bcast therefore dominates the application's communication
// time, which is why the paper uses ASP to show how collective improvements
// translate to applications.
package asp

import (
	"fmt"
	"math"

	"hierknem/internal/buffer"
	"hierknem/internal/modules"
	"hierknem/internal/mpi"
)

// Result is one ASP run's timing breakdown (virtual seconds).
type Result struct {
	N      int
	NP     int
	Module string
	Bcast  float64 // max over ranks of time spent in MPI_Bcast
	Total  float64 // max over ranks of total runtime
}

func (r Result) String() string {
	return fmt.Sprintf("ASP %dx%d np=%d %-9s bcast=%8.2fs total=%8.2fs (comm %4.1f%%)",
		r.N, r.N, r.NP, r.Module, r.Bcast, r.Total, 100*r.Bcast/r.Total)
}

// DefaultCellCost is the calibrated per-cell relaxation cost (seconds): one
// min(d[i][j], d[i][k]+d[k][j]) update including memory traffic, matched to
// the paper's compute-time residual (~77 s for the 16K problem on 768
// cores).
const DefaultCellCost = 13.7e-9

// rowRange returns the rows owned by rank r in a balanced block
// distribution.
func rowRange(n, np, r int) (lo, hi int) {
	base := n / np
	rem := n % np
	lo = r*base + min(r, rem)
	hi = lo + base
	if r < rem {
		hi++
	}
	return lo, hi
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// rowOwner returns the rank owning row k.
func rowOwner(n, np, k int) int {
	for r := 0; r < np; r++ {
		lo, hi := rowRange(n, np, r)
		if k >= lo && k < hi {
			return r
		}
	}
	panic("asp: row out of range")
}

// Run executes the ASP communication/computation skeleton with phantom
// payloads: the timing model of the real algorithm without allocating N²
// floats. cellCost is the per-cell relaxation cost (0 = DefaultCellCost).
func Run(w *mpi.World, mod modules.Module, n int, cellCost float64) Result {
	if cellCost == 0 {
		cellCost = DefaultCellCost
	}
	np := w.Size()
	var maxBcast, maxTotal float64
	err := w.Run(func(p *mpi.Proc) {
		c := w.WorldComm()
		me := c.Rank(p)
		lo, hi := rowRange(n, np, me)
		myRows := hi - lo
		row := buffer.NewPhantom(int64(n) * 8)
		start := p.Now()
		bcast := 0.0
		for k := 0; k < n; k++ {
			owner := rowOwner(n, np, k)
			t0 := p.Now()
			mod.Bcast(p, c, row, owner)
			bcast += p.Now() - t0
			p.Compute(float64(myRows) * float64(n) * cellCost)
		}
		total := p.Now() - start
		if bcast > maxBcast {
			maxBcast = bcast
		}
		if total > maxTotal {
			maxTotal = total
		}
	})
	if err != nil {
		panic(fmt.Sprintf("asp: run failed: %v", err))
	}
	return Result{N: n, NP: np, Module: mod.Name(), Bcast: maxBcast, Total: maxTotal}
}

// Inf is the "no edge" distance.
var Inf = math.Inf(1)

// Sequential solves all-pairs shortest paths in place with the classic
// Floyd–Warshall triple loop — the reference for correctness tests.
func Sequential(d [][]float64) {
	n := len(d)
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			dik := d[i][k]
			if math.IsInf(dik, 1) {
				continue
			}
			for j := 0; j < n; j++ {
				if v := dik + d[k][j]; v < d[i][j] {
					d[i][j] = v
				}
			}
		}
	}
}

// Solve runs the parallel algorithm with real data over the simulated
// cluster and returns the solved matrix (gathered at rank 0's block order).
// It verifies the distributed algorithm end to end: every rank relaxes its
// own block using the broadcast rows.
func Solve(w *mpi.World, mod modules.Module, dist [][]float64) [][]float64 {
	n := len(dist)
	np := w.Size()
	out := make([][]float64, n)

	// Per-rank row blocks (simulation shares an address space; each rank
	// only touches its own block plus the broadcast row, as real MPI
	// ranks would).
	blocks := make([][][]float64, np)
	for r := 0; r < np; r++ {
		lo, hi := rowRange(n, np, r)
		blocks[r] = make([][]float64, hi-lo)
		for i := lo; i < hi; i++ {
			blocks[r][i-lo] = append([]float64(nil), dist[i]...)
		}
	}

	err := w.Run(func(p *mpi.Proc) {
		c := w.WorldComm()
		me := c.Rank(p)
		lo, _ := rowRange(n, np, me)
		mine := blocks[me]
		for k := 0; k < n; k++ {
			owner := rowOwner(n, np, k)
			var rowBuf *buffer.Buffer
			if me == owner {
				rowBuf = buffer.Float64s(mine[k-lo])
			} else {
				rowBuf = buffer.Float64s(make([]float64, n))
			}
			mod.Bcast(p, c, rowBuf, owner)
			rowK := buffer.AsFloat64s(rowBuf)
			for i := range mine {
				dik := mine[i][k]
				if math.IsInf(dik, 1) {
					continue
				}
				for j := 0; j < n; j++ {
					if v := dik + rowK[j]; v < mine[i][j] {
						mine[i][j] = v
					}
				}
			}
		}
	})
	if err != nil {
		panic(fmt.Sprintf("asp: solve failed: %v", err))
	}
	for r := 0; r < np; r++ {
		lo, hi := rowRange(n, np, r)
		for i := lo; i < hi; i++ {
			out[i] = blocks[r][i-lo]
		}
	}
	return out
}
