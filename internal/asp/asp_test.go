package asp

import (
	"math"
	"math/rand"
	"testing"

	"hierknem/internal/core"
	"hierknem/internal/modules"
	"hierknem/internal/mpi"
	"hierknem/internal/topology"
)

func testWorld(t *testing.T, nodes, cores, np int) *mpi.World {
	t.Helper()
	m, err := topology.Build(topology.Spec{
		Name: "asptest", Nodes: nodes, SocketsPerNode: 1, CoresPerSocket: cores,
		MemBandwidth: 10e9, CoreCopyBandwidth: 3e9, L3Bandwidth: 6e9,
		L3Size: 12 << 20, ShmLatency: 1e-6,
		NetBandwidth: 1e9, NetLatency: 10e-6, NetFullDuplex: true,
		EagerThreshold: 4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := topology.ByCore(m, np)
	if err != nil {
		t.Fatal(err)
	}
	w, err := mpi.NewWorld(m, b, mpi.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func randomGraph(n int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
		for j := range d[i] {
			switch {
			case i == j:
				d[i][j] = 0
			case rng.Float64() < 0.4:
				d[i][j] = float64(1 + rng.Intn(100))
			default:
				d[i][j] = Inf
			}
		}
	}
	return d
}

func TestRowRangePartition(t *testing.T) {
	for _, c := range []struct{ n, np int }{{10, 3}, {16, 4}, {7, 7}, {5, 8}, {100, 7}} {
		covered := 0
		prevHi := 0
		for r := 0; r < c.np; r++ {
			lo, hi := rowRange(c.n, c.np, r)
			if lo != prevHi {
				t.Fatalf("n=%d np=%d rank %d: lo=%d, want %d", c.n, c.np, r, lo, prevHi)
			}
			covered += hi - lo
			prevHi = hi
		}
		if covered != c.n {
			t.Fatalf("n=%d np=%d: covered %d rows", c.n, c.np, covered)
		}
	}
}

func TestRowOwnerConsistent(t *testing.T) {
	n, np := 23, 5
	for k := 0; k < n; k++ {
		r := rowOwner(n, np, k)
		lo, hi := rowRange(n, np, r)
		if k < lo || k >= hi {
			t.Fatalf("row %d assigned to rank %d owning [%d,%d)", k, r, lo, hi)
		}
	}
}

func TestSequentialKnownGraph(t *testing.T) {
	d := [][]float64{
		{0, 5, Inf, 10},
		{Inf, 0, 3, Inf},
		{Inf, Inf, 0, 1},
		{Inf, Inf, Inf, 0},
	}
	Sequential(d)
	want := [][]float64{
		{0, 5, 8, 9},
		{Inf, 0, 3, 4},
		{Inf, Inf, 0, 1},
		{Inf, Inf, Inf, 0},
	}
	for i := range want {
		for j := range want[i] {
			if d[i][j] != want[i][j] {
				t.Fatalf("d[%d][%d] = %v, want %v", i, j, d[i][j], want[i][j])
			}
		}
	}
}

func TestSolveMatchesSequential(t *testing.T) {
	for _, mod := range []modules.Module{
		modules.Tuned(modules.Quirks{}),
		modules.Hierarch(modules.Quirks{}),
		core.New(core.Options{}),
	} {
		t.Run(mod.Name(), func(t *testing.T) {
			const n = 40
			g := randomGraph(n, 7)
			ref := make([][]float64, n)
			for i := range ref {
				ref[i] = append([]float64(nil), g[i]...)
			}
			Sequential(ref)

			w := testWorld(t, 2, 4, 8)
			got := Solve(w, mod, g)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					a, b := got[i][j], ref[i][j]
					if math.IsInf(a, 1) != math.IsInf(b, 1) || (!math.IsInf(a, 1) && math.Abs(a-b) > 1e-9) {
						t.Fatalf("d[%d][%d] = %v, want %v", i, j, a, b)
					}
				}
			}
		})
	}
}

func TestRunBreakdownSane(t *testing.T) {
	w := testWorld(t, 2, 4, 8)
	mod := core.New(core.Options{})
	res := Run(w, mod, 256, 0)
	if res.Total <= 0 || res.Bcast <= 0 {
		t.Fatalf("non-positive times: %+v", res)
	}
	if res.Bcast > res.Total {
		t.Fatalf("bcast time %g exceeds total %g", res.Bcast, res.Total)
	}
	// Compute residual should roughly match the model: N iterations of
	// myRows*N*cellCost with myRows = 256/8 = 32.
	wantCompute := 256.0 * 32 * 256 * DefaultCellCost
	residual := res.Total - res.Bcast
	if residual < wantCompute*0.9 || residual > wantCompute*1.5 {
		t.Fatalf("compute residual %g, want ~%g", residual, wantCompute)
	}
}

// The application-level claim of Table II: a faster broadcast module lowers
// ASP total runtime, with compute unchanged.
func TestModuleChangesOnlyCommTime(t *testing.T) {
	resFast := Run(testWorld(t, 4, 6, 24), core.New(core.Options{}), 384, 0)
	resSlow := Run(testWorld(t, 4, 6, 24), modules.Tuned(modules.Quirks{}), 384, 0)
	computeFast := resFast.Total - resFast.Bcast
	computeSlow := resSlow.Total - resSlow.Bcast
	if math.Abs(computeFast-computeSlow) > 0.2*computeFast {
		t.Fatalf("compute residual should be module-independent: %g vs %g", computeFast, computeSlow)
	}
}
