package mpi

import (
	"fmt"
	"sort"

	"hierknem/internal/des"
)

// Comm is a communicator: an ordered group of world ranks with a private
// matching context. One Comm object is shared by all member processes (the
// simulation lives in one address space); per-process state such as "my
// rank" is derived from the calling Proc.
type Comm struct {
	world *World
	ctx   int
	ranks []int       // comm rank -> world rank
	index map[int]int // world rank -> comm rank

	barrier  *barrierState
	splitOp  *splitState
	nodeSpan int // number of distinct nodes, computed at creation

	bb   map[string]*bbEntry
	seqs map[int]int
}

func (w *World) newComm(ranks []int) *Comm {
	c := &Comm{world: w, ctx: w.nextCtx, ranks: ranks, index: make(map[int]int, len(ranks))}
	w.nextCtx++
	nodes := map[int]bool{}
	for i, r := range ranks {
		c.index[r] = i
		nodes[w.procs[r].core.NodeID] = true
	}
	c.nodeSpan = len(nodes)
	return c
}

// WorldComm returns the communicator containing every rank, creating it on
// first use.
func (w *World) WorldComm() *Comm {
	if len(w.procs) == 0 {
		panic("mpi: empty world")
	}
	if w.worldComm == nil {
		ranks := make([]int, len(w.procs))
		for i := range ranks {
			ranks[i] = i
		}
		w.worldComm = w.newComm(ranks)
	}
	return w.worldComm
}

// Size returns the number of ranks in the communicator.
func (c *Comm) Size() int { return len(c.ranks) }

// Rank returns p's rank within c, or panics if p is not a member.
func (c *Comm) Rank(p *Proc) int {
	r, ok := c.index[p.rank]
	if !ok {
		panic(fmt.Sprintf("mpi: world rank %d not in communicator", p.rank))
	}
	return r
}

// Member reports whether p belongs to c.
func (c *Comm) Member(p *Proc) bool {
	_, ok := c.index[p.rank]
	return ok
}

// WorldRank translates a comm rank to a world rank.
func (c *Comm) WorldRank(rank int) int {
	if rank < 0 || rank >= len(c.ranks) {
		panic(fmt.Sprintf("mpi: rank %d out of range for communicator of size %d", rank, len(c.ranks)))
	}
	return c.ranks[rank]
}

// Proc returns the process at a comm rank.
func (c *Comm) Proc(rank int) *Proc { return c.world.procs[c.WorldRank(rank)] }

// IntraNode reports whether all members live on one node.
func (c *Comm) IntraNode() bool { return c.nodeSpan <= 1 }

// NodeSpan returns the number of distinct nodes hosting members.
func (c *Comm) NodeSpan() int { return c.nodeSpan }

// splitState stages a collective Comm.Split.
type splitState struct {
	entries map[int]splitEntry // comm rank -> (color, key)
	result  map[int]*Comm      // comm rank -> new comm (nil for undefined color)
	waiters []*Proc
}

type splitEntry struct{ color, key int }

// Undefined is the color that opts a rank out of Split (it receives nil).
const Undefined = -32766

// Split partitions the communicator by color; within a color, ranks are
// ordered by key, ties broken by original rank (MPI semantics). Collective:
// all members must call it. Ranks passing Undefined receive nil.
func (c *Comm) Split(p *Proc, color, key int) *Comm {
	if p.dp.Confined() {
		// Split mints a context id from the world-global counter and parks
		// ranks across nodes — both global-domain state. Node phases use the
		// prebuilt NodeComm instead.
		panic(&des.CausalityError{Op: des.OpConfine, Domain: 0, At: p.dp.Now()})
	}
	me := c.Rank(p)
	if c.splitOp == nil {
		c.splitOp = &splitState{entries: make(map[int]splitEntry)}
	}
	op := c.splitOp
	op.entries[me] = splitEntry{color, key}
	if len(op.entries) < c.Size() {
		op.waiters = append(op.waiters, p)
		for op.result == nil {
			p.dp.Park()
		}
		return op.result[me]
	}

	// Last arriver builds the result and releases everyone.
	colors := make(map[int][]int) // color -> comm ranks
	for r, e := range op.entries {
		if e.color != Undefined {
			colors[e.color] = append(colors[e.color], r)
		}
	}
	op.result = make(map[int]*Comm, c.Size())
	sortedColors := make([]int, 0, len(colors))
	for col := range colors {
		sortedColors = append(sortedColors, col)
	}
	sort.Ints(sortedColors)
	for _, col := range sortedColors {
		members := colors[col]
		sort.Slice(members, func(i, j int) bool {
			a, b := members[i], members[j]
			if op.entries[a].key != op.entries[b].key {
				return op.entries[a].key < op.entries[b].key
			}
			return a < b
		})
		worldRanks := make([]int, len(members))
		for i, r := range members {
			worldRanks[i] = c.WorldRank(r)
		}
		sub := c.world.newComm(worldRanks)
		for _, r := range members {
			op.result[r] = sub
		}
	}
	c.splitOp = nil
	for _, w := range op.waiters {
		w.dp.Wake()
	}
	return op.result[me]
}

// barrierState implements a sense-reversing centralized barrier for
// intra-node comms and stages the dissemination barrier's tag space.
type barrierState struct {
	count   int
	gen     int
	waiters []*Proc
}

// Barrier blocks until every member has entered. Intra-node communicators
// use a flag-based shared-memory barrier costing one shm latency per
// process; communicators spanning nodes use a dissemination barrier with
// zero-byte messages.
func (c *Comm) Barrier(p *Proc) {
	if c.Size() == 1 {
		return
	}
	if c.IntraNode() {
		p.dp.Sleep(c.world.Machine.Spec.ShmLatency)
		if c.barrier == nil {
			c.barrier = &barrierState{}
		}
		b := c.barrier
		b.count++
		if b.count == c.Size() {
			b.count = 0
			b.gen++
			for _, w := range b.waiters {
				w.dp.Wake()
			}
			b.waiters = nil
			return
		}
		myGen := b.gen
		b.waiters = append(b.waiters, p)
		for b.gen == myGen {
			p.dp.Park()
		}
		return
	}
	c.disseminationBarrier(p)
}

// reserved internal tag space (user tags must be non-negative and modest).
const internalTagBase = 1 << 24

func (c *Comm) disseminationBarrier(p *Proc) {
	me := c.Rank(p)
	n := c.Size()
	empty := c.world.empty
	for round, dist := 0, 1; dist < n; round, dist = round+1, dist*2 {
		to := (me + dist) % n
		from := (me - dist + n) % n
		tag := internalTagBase + round
		r := p.Irecv(c, empty, from, tag)
		s := p.Isend(c, empty, to, tag)
		p.Wait(r)
		p.Wait(s)
	}
}
