package mpi

import (
	"fmt"
	"os"
	"runtime"
	"sync"

	"hierknem/internal/phasesafe"
	"hierknem/internal/shm"
)

// Guard elision.
//
// The per-message confinement guards (confineCheckSend/confineCheckRecv)
// are pure assertions: they never advance virtual time, never schedule an
// event, and never touch simulation state — they only turn a broken
// bracket promise into an immediate panic. That makes them safe to skip
// exactly where a static proof already discharges them: the phasesafe
// analyzer (internal/lint) proves, per EnterNodePhase region, that every
// reachable message stays on-node and under the fabric-bypass cutoff, and
// hierlint -manifest serializes the proved regions with content hashes of
// everything the proof read (see internal/phasesafe).
//
// GuardElided is opt-in (HIERKNEM_GUARDS=elide or SetGuardMode) and
// fail-closed: a missing, corrupt or stale manifest refuses elision with a
// loud error rather than quietly running unguarded, the sanitizer
// (HIERSAN=1) forces checked mode because it wants every assertion live,
// and regions the manifest does not name keep their guards even under
// elide. Elision is therefore unobservable in the event log by
// construction — it removes assertions, not effects.

// GuardMode selects whether the per-message confinement guards run inside
// statically proved node-phase regions.
type GuardMode int

const (
	// GuardChecked runs every confinement guard (the default).
	GuardChecked GuardMode = iota
	// GuardElided skips the per-message guards inside regions named by a
	// valid phasesafe manifest; everywhere else guards stay live.
	GuardElided
)

func (m GuardMode) String() string {
	if m == GuardElided {
		return "elided"
	}
	return "checked"
}

// guardsEnv reads the HIERKNEM_GUARDS mode toggle. Unset and "checked"
// keep the default; "elide" requests elision (NewWorld then insists on a
// valid manifest). Anything else errors loudly, mirroring workersEnv.
func guardsEnv() (GuardMode, error) {
	switch s := os.Getenv("HIERKNEM_GUARDS"); s {
	case "", "checked":
		return GuardChecked, nil
	case "elide":
		return GuardElided, nil
	default:
		return GuardChecked, fmt.Errorf("mpi: HIERKNEM_GUARDS=%q is not a guard mode (use \"checked\" or \"elide\")", s)
	}
}

// guardManifests caches successfully validated manifests per path for the
// life of the process (every NewWorld would otherwise re-hash the source
// tree). Failures are never cached: a test or operator can fix the
// manifest and retry without restarting.
//
//lint:ignore runisolation mutex-guarded content-addressed cache of immutable validated manifests; deliberately process-wide, like an environment read, so concurrent worlds share the one proof
var guardManifests struct {
	mu sync.Mutex
	m  map[string]*phasesafe.Manifest
}

// loadGuardManifest resolves, loads and freshness-checks the phasesafe
// manifest for the current module.
func loadGuardManifest() (*phasesafe.Manifest, error) {
	root, err := phasesafe.ModuleRoot("")
	if err != nil {
		return nil, err
	}
	path := phasesafe.Path(root)
	guardManifests.mu.Lock()
	defer guardManifests.mu.Unlock()
	if man, ok := guardManifests.m[path]; ok {
		return man, nil
	}
	man, err := phasesafe.Load(path)
	if err != nil {
		return nil, err
	}
	if err := man.Validate(root); err != nil {
		return nil, err
	}
	if guardManifests.m == nil {
		guardManifests.m = map[string]*phasesafe.Manifest{}
	}
	guardManifests.m[path] = man
	return man, nil
}

// SetGuardMode switches the world's guard mode. Requesting GuardElided
// loads and validates the phasesafe manifest and refuses — with an error,
// never a silent downgrade of the proof — when the manifest is missing,
// corrupt or stale, or when the world's configuration falls outside the
// proof's bounds (an eager threshold below the proof's size bound would
// let a checked run panic where an elided run sails on). With the
// sanitizer attached the world stays in checked mode: HIERSAN exists to
// run every assertion, so it overrides elision silently rather than
// erroring (the combination is legitimate in CI matrices).
func (w *World) SetGuardMode(m GuardMode) error {
	if m != GuardElided {
		w.guardMode = GuardChecked
		w.guardRegions = nil
		return nil
	}
	if w.san != nil {
		w.guardMode = GuardChecked
		w.guardRegions = nil
		return nil
	}
	man, err := loadGuardManifest()
	if err != nil {
		return fmt.Errorf("mpi: cannot elide confinement guards: %w", err)
	}
	if man.Cutoff != shm.SmallCopyCutoff {
		return fmt.Errorf("mpi: cannot elide confinement guards: manifest proved cutoff %d, runtime uses %d",
			man.Cutoff, int64(shm.SmallCopyCutoff))
	}
	if w.Conf.EagerThreshold < man.MinEager {
		return fmt.Errorf("mpi: cannot elide confinement guards: eager threshold %d is below the proof's bound %d",
			w.Conf.EagerThreshold, man.MinEager)
	}
	regions := make(map[string]bool, len(man.Regions))
	for _, r := range man.Regions {
		regions[r.Func] = true
	}
	w.guardMode = GuardElided
	w.guardRegions = regions
	return nil
}

// GuardMode returns the world's guard mode.
func (w *World) GuardMode() GuardMode { return w.guardMode }

// ElidedPhases returns how many node-phase entries actually skipped their
// guards — the observability hook tests use to prove elision engaged (a
// world that "elides" zero regions is just checked mode with extra steps).
func (w *World) ElidedPhases() int64 { return w.elidedPhases.Load() }

// pcFuncs memoizes return-PC -> runtime function name, process-wide: the
// mapping is a property of the loaded binary (one PC is one call site,
// inlining resolved by CallersFrames), independent of any world or guard
// mode, and resolving it fresh allocates. RWMutex with uintptr keys keeps
// the hot read path box-free; writes happen once per distinct
// EnterNodePhase call site per process.
//
//lint:ignore runisolation memoized PC->symbol-name table derived from the immutable loaded binary; identical for every concurrently running simulation
var pcFuncs struct {
	sync.RWMutex
	m map[uintptr]string
}

// callerFunc resolves the runtime name of the function that called the
// exported runtime entry point two frames above this call.
func callerFunc() string {
	var pcs [1]uintptr
	if runtime.Callers(4, pcs[:]) < 1 {
		return ""
	}
	pc := pcs[0]
	pcFuncs.RLock()
	name, ok := pcFuncs.m[pc]
	pcFuncs.RUnlock()
	if ok {
		return name
	}
	// Miss path only: CallersFrames retains its slice, so hand it a fresh
	// one rather than pcs (which would push pcs — and an allocation — onto
	// every hit).
	frames := runtime.CallersFrames([]uintptr{pc})
	frame, _ := frames.Next()
	pcFuncs.Lock()
	if pcFuncs.m == nil {
		pcFuncs.m = map[uintptr]string{}
	}
	pcFuncs.m[pc] = frame.Function
	pcFuncs.Unlock()
	return frame.Function
}

// elideRegion reports whether the EnterNodePhase call two frames up sits
// in a manifest-proved function — the manifest records exactly the runtime
// name callerFunc resolves.
func (w *World) elideRegion() bool {
	if w.guardMode != GuardElided {
		return false
	}
	return w.guardRegions[callerFunc()]
}
