package mpi

import (
	"fmt"

	"hierknem/internal/buffer"
	"hierknem/internal/des"
	"hierknem/internal/fabric"
	"hierknem/internal/san"
	"hierknem/internal/shm"
	"hierknem/internal/topology"
)

// Wildcards for Recv matching.
const (
	AnySource = -1
	AnyTag    = -1
)

// Request tracks a pending non-blocking operation. A Request is single-use:
// it must not be waited on or read after Wait has returned for it (the
// containing record is recycled).
type Request struct {
	done bool
	// waiter is the single inline waiter slot — almost every request is
	// waited on by exactly one process, and the inline slot keeps that
	// common case allocation-free. waiters is the overflow.
	waiter  *des.Proc
	waiters []*des.Proc
	// overhead is per-message protocol CPU charged to the waiter once,
	// when it collects the completed request (LogGP's receiver "o").
	overhead float64
	// owner is the pooled record (envelope or posting) this request is
	// embedded in. Wait drops the caller's reference through it once the
	// completion has been collected.
	owner releaser
}

// releaser is a pooled record that counts outstanding references.
type releaser interface{ release() }

// Done reports completion (for Test-style polling).
func (r *Request) Done() bool { return r.done }

func (r *Request) complete() {
	if r.done {
		return
	}
	r.done = true
	if r.waiter != nil {
		r.waiter.Wake()
		r.waiter = nil
	}
	for _, w := range r.waiters {
		w.Wake()
	}
	r.waiters = nil
}

// Wait blocks until the request completes, then absorbs any per-message
// protocol CPU attached to it. The waiter registers once: a spurious wake
// (a latched Wake for some other request) must not append a duplicate
// entry, which would both leak memory and issue redundant wakes on
// completion.
func (p *Proc) Wait(r *Request) {
	registered := false
	for !r.done {
		if !registered {
			if r.waiter == nil {
				r.waiter = p.dp
			} else {
				r.waiters = append(r.waiters, p.dp)
			}
			registered = true
		}
		p.dp.Park()
	}
	if r.overhead > 0 {
		o := r.overhead
		r.overhead = 0
		p.dp.Sleep(o)
	}
	if o := r.owner; o != nil {
		r.owner = nil
		if s := p.world.san; s != nil {
			// Catches a Request waited on after its record was recycled
			// (e.g. a request handle reused across WaitAll rounds).
			s.PoolUse(o, p.name)
		}
		o.release()
	}
}

// WaitAll blocks until every request completes.
func (p *Proc) WaitAll(rs ...*Request) {
	for _, r := range rs {
		if r != nil {
			p.Wait(r)
		}
	}
}

// envelope is a message announced to (or arrived at) the destination.
// Envelopes are refcounted and recycled through the sender's free list: one
// reference belongs to the *Request handed to the caller (dropped when Wait
// collects it), one to the transfer protocol (dropped by finishTransfer),
// and a transient one to an in-flight eager arrival marker.
type envelope struct {
	srcWorld  int
	tag       int
	ctx       int
	bufv      buffer.Buffer // sender's payload view (header copy; data shared)
	size      int64
	eager     bool
	arrived   bool    // eager inter-node payload landed before a recv was posted
	preposted bool    // the receive was already posted when the send started
	sendReq   Request // embedded: no per-message Request allocation
	sender    *Proc
	po        *posting // matched receive, set for the duration of the transfer

	refs     int32  // outstanding references; at 0 the record recycles
	finishFn func() // cached across reuses: finishTransfer(env)
	arriveFn func() // cached across reuses: eager arrival marker

	// sentAt is the virtual time Isend was called (stall autopsy); sanRead
	// is the sanitizer's open read window on the payload, -1 when none.
	sentAt  float64
	sanRead int

	// intrusive links in the destination's unexpected arrival-order list
	// (see envIndex).
	prev, next *envelope
}

func (env *envelope) release() {
	if env.refs--; env.refs > 0 {
		return
	}
	p := env.sender
	if s := p.world.san; s != nil {
		s.PoolRelease(san.KindEnvelope, env, p.name)
	}
	// sendReq.done is deliberately left set (callers may poll Done after
	// WaitAll); allocEnv resets the request on reuse.
	env.bufv = buffer.Buffer{}
	env.po = nil
	env.prev, env.next = nil, nil
	p.envPool = append(p.envPool, env)
}

// allocEnv pops a recycled envelope or mints one. The finish and arrival
// closures are built once per record lifetime, so steady-state messaging
// between established partners allocates only the envelope itself — and not
// even that once the pool is warm.
func (p *Proc) allocEnv() *envelope {
	var env *envelope
	if k := len(p.envPool) - 1; k >= 0 {
		env = p.envPool[k]
		p.envPool[k] = nil
		p.envPool = p.envPool[:k]
		env.sendReq = Request{owner: env}
		env.arrived = false
		env.preposted = false
	} else {
		env = &envelope{sender: p}
		env.sendReq.owner = env
		env.finishFn = func() { p.world.finishTransfer(env) }
		env.arriveFn = func() { env.arrived = true; env.release() }
	}
	env.refs = 2 // the caller's *Request + the transfer's finish
	env.sanRead = -1
	if s := p.world.san; s != nil {
		s.PoolAlloc(san.KindEnvelope, env, p.name)
	}
	return env
}

// posting is a posted receive awaiting a match. Postings are refcounted and
// recycled through the receiver's free list, like envelopes.
type posting struct {
	srcWorld int // world rank or AnySource
	tag      int
	ctx      int
	bufv     buffer.Buffer // header copy; data shared with the caller's buffer
	req      Request       // embedded: no per-posting Request allocation
	receiver *Proc
	seq      uint64 // posting order within the receiver (see postIndex)
	refs     int32  // outstanding references; at 0 the record recycles

	// postedAt is the virtual time Irecv was called (stall autopsy);
	// sanWrite is the sanitizer's open write window on the receive buffer,
	// -1 when none.
	postedAt float64
	sanWrite int
}

func (po *posting) release() {
	if po.refs--; po.refs > 0 {
		return
	}
	p := po.receiver
	if s := p.world.san; s != nil {
		s.PoolRelease(san.KindPosting, po, p.name)
	}
	po.bufv = buffer.Buffer{}
	p.poPool = append(p.poPool, po)
}

func (p *Proc) allocPosting() *posting {
	var po *posting
	if k := len(p.poPool) - 1; k >= 0 {
		po = p.poPool[k]
		p.poPool[k] = nil
		p.poPool = p.poPool[:k]
		po.req = Request{owner: po}
	} else {
		po = &posting{receiver: p}
		po.req.owner = po
	}
	po.refs = 2 // the caller's *Request + the transfer's finish
	po.sanWrite = -1
	if s := p.world.san; s != nil {
		s.PoolAlloc(san.KindPosting, po, p.name)
	}
	return po
}

func (env *envelope) matches(po *posting) bool {
	return env.ctx == po.ctx &&
		(po.srcWorld == AnySource || po.srcWorld == env.srcWorld) &&
		(po.tag == AnyTag || po.tag == env.tag)
}

// Isend starts a non-blocking send of buf to dst (a rank of c) with tag.
func (p *Proc) Isend(c *Comm, buf *buffer.Buffer, dst, tag int) *Request {
	dstWorld := c.WorldRank(dst)
	target := p.world.procs[dstWorld]
	p.confineCheckSend(target, buf.Len())
	env := p.allocEnv()
	env.srcWorld = p.rank
	env.tag = tag
	env.ctx = c.ctx
	env.bufv = *buf
	env.size = buf.Len()
	env.eager = env.size < p.world.Conf.EagerThreshold
	env.sentAt = p.dp.Now()
	if s := p.world.san; s != nil {
		// The payload is read from Isend until the sender is free: end of
		// Isend for eager (buffered), transfer completion for rendezvous.
		env.sanRead = s.BeginAccess(p.dp.ID(), p.name, buf.ID(), buf.Off(), env.size, false)
	}

	interNode := p.core.NodeID != target.core.NodeID
	if interNode {
		// Sender-side per-message CPU overhead (LogGP "o"); rendezvous
		// messages additionally pay protocol processing.
		o := p.world.Conf.SendOverhead
		if !env.eager {
			o += p.world.Conf.RendezvousCPU
		}
		p.dp.Sleep(o)
		p.world.BytesCross += env.size
	}

	if env.eager {
		if !interNode {
			// copy-in to the shared segment by the sender core.
			p.shmCopy(p.core, p.core.Socket, p.core.Socket, env.size, env.bufv.ID())
		}
		if s := p.world.san; s != nil && env.sanRead >= 0 {
			s.EndAccess(env.sanRead) // buffered: the payload is captured
			env.sanRead = -1
		}
		env.sendReq.complete() // buffered: sender is free
	}

	if po := target.posted.match(env); po != nil {
		// The receive was preposted: a rendezvous can start immediately
		// (the RTS finds a waiting match), so no handshake round trip.
		env.preposted = true
		p.world.startTransfer(env, po)
	} else {
		if env.eager && interNode {
			// The payload crosses the wire immediately; mark arrival so a
			// late receive only pays the unload, not the flight. The marker
			// holds its own reference: it may fire after the transfer is
			// done and must not touch a recycled record.
			env.refs++
			p.world.eagerFlight(env, target, env.arriveFn)
		}
		target.unexpected.add(env)
	}
	return &env.sendReq
}

// Send is the blocking form of Isend.
func (p *Proc) Send(c *Comm, buf *buffer.Buffer, dst, tag int) {
	p.Wait(p.Isend(c, buf, dst, tag))
}

// Irecv starts a non-blocking receive into buf from src (rank of c, or
// AnySource) with tag (or AnyTag).
func (p *Proc) Irecv(c *Comm, buf *buffer.Buffer, src, tag int) *Request {
	srcWorld := src
	if src != AnySource {
		srcWorld = c.WorldRank(src)
	}
	p.confineCheckRecv(c, srcWorld)
	po := p.allocPosting()
	po.srcWorld = srcWorld
	po.tag = tag
	po.ctx = c.ctx
	po.bufv = *buf
	po.postedAt = p.dp.Now()
	if env := p.unexpected.match(po); env != nil {
		p.world.startTransfer(env, po)
	} else {
		p.posted.add(po)
	}
	return &po.req
}

// Recv is the blocking form of Irecv.
func (p *Proc) Recv(c *Comm, buf *buffer.Buffer, src, tag int) {
	p.Wait(p.Irecv(c, buf, src, tag))
}

// SendRecv posts the receive, sends, then waits on both — full-duplex when
// the transports allow it.
func (p *Proc) SendRecv(c *Comm, sendBuf *buffer.Buffer, dst, sendTag int, recvBuf *buffer.Buffer, src, recvTag int) {
	r := p.Irecv(c, recvBuf, src, recvTag)
	s := p.Isend(c, sendBuf, dst, sendTag)
	p.Wait(r)
	p.Wait(s)
}

// smallCopyCutoff is the size below which intra-node copies bypass the
// fabric: a sub-4 KiB copy lasts ~1 µs and contributes negligible bus load,
// while installing a flow for it costs a full max-min recomputation. Fine-
// grained workloads (ring exchanges of tiny blocks across hundreds of ranks)
// would otherwise spend almost all simulation wall time in the fabric. The
// canonical constant lives in shm so the transports and the node-phase
// bracket placement rule agree.
const smallCopyCutoff = shm.SmallCopyCutoff

// shmCopy charges one intra-node memory copy to core (blocking p) without
// moving payload bytes; callers move data separately.
func (p *Proc) shmCopy(core *topology.Core, srcSock, dstSock *topology.Socket, n int64, srcID uint64) {
	spec := &p.world.Machine.Spec
	if n <= 0 {
		p.dp.Sleep(spec.ShmLatency)
		return
	}
	srcRes, rate := srcSock.ReadSide(spec, srcID, n, core.Socket == srcSock)
	if n < smallCopyCutoff {
		p.dp.Sleep(spec.ShmLatency + float64(n)/rate)
		return
	}
	done := des.AwaitBegin(p.dp, 1)
	p.world.Machine.Fab.StartAfterPath2("copy", spec.ShmLatency, float64(n), rate, srcRes, dstSock.MemBus, done)
	des.AwaitEnd(p.dp)
}

// startTransfer moves the payload for a matched (envelope, posting) pair and
// completes the requests. Runs in engine context.
func (w *World) startTransfer(env *envelope, po *posting) {
	if env.size != po.bufv.Len() {
		panic(fmt.Sprintf("mpi: send size %d != recv size %d (src %d tag %d)",
			env.size, po.bufv.Len(), env.srcWorld, env.tag))
	}
	env.po = po
	if s := w.san; s != nil {
		// The receive buffer is written for the duration of the transfer.
		// The window belongs to the *receiver*: completion wakes the
		// receiver, so its later accesses are ordered by the edge
		// finishTransfer records, and so are accesses of any rank the
		// receiver subsequently synchronizes with.
		po.sanWrite = s.BeginAccess(po.receiver.dp.ID(), po.receiver.name,
			po.bufv.ID(), po.bufv.Off(), po.bufv.Len(), true)
	}
	src := env.sender.core
	dst := po.receiver.core
	spec := &w.Machine.Spec
	finish := env.finishFn

	if src.NodeID == dst.NodeID {
		if env.eager {
			// copy-out from the shared segment by the receiver core; the
			// copy-in already happened at Isend time (bounce buffers are
			// not tracked for residency). Small copies bypass the fabric
			// (see smallCopyCutoff).
			rate := spec.CoreCopyBandwidth
			if env.size < smallCopyCutoff {
				// The finish event rides the receiver's process handle, not
				// the engine: inside a node phase it must land on the
				// receiver's own domain queue (sender and receiver share the
				// node here, so the two routes tag the same domain).
				po.receiver.dp.After(spec.ShmLatency+float64(env.size)/rate, finish)
				return
			}
			w.Machine.Fab.StartAfterPath2("copy", spec.ShmLatency, float64(env.size), rate,
				src.Socket.MemBus, dst.Socket.MemBus, finish)
			return
		}
		// KNEM LMT single copy, executed by the receiver core.
		srcRes, rate := src.Socket.ReadSide(spec, env.bufv.ID(), env.size, src.Socket == dst.Socket)
		w.Machine.Fab.StartAfterPath2("copy", spec.ShmLatency, float64(env.size), rate,
			srcRes, dst.Socket.MemBus, finish)
		return
	}

	if env.eager {
		if env.arrived {
			// Payload already landed; unloading is effectively free. Shared:
			// the finish releases the sender's envelope record from receiver
			// context, a cross-domain store only the coordinator may run.
			w.Machine.Eng.AtShared(w.Machine.Eng.Now(), finish)
			return
		}
		w.eagerFlight(env, po.receiver, finish)
		return
	}
	// Rendezvous: the data flow, preceded by a handshake round trip when
	// the receive was not preposted (the sender's RTS had to wait for the
	// match before the CTS could be issued). The receiver pays protocol
	// CPU when it collects the completion.
	po.req.overhead = w.Conf.RendezvousCPU
	delay := spec.NetLatency
	if !env.preposted {
		delay += w.Conf.RendezvousHandshake
	}
	w.Machine.Fab.StartAfterClassed("net", delay, float64(env.size), 0, w.netPath(env.sender, po.receiver), finish)
}

// finishTransfer delivers a matched transfer's payload, completes both
// requests, and drops the protocol references so the records can recycle.
func (w *World) finishTransfer(env *envelope) {
	po := env.po
	po.bufv.CopyFrom(&env.bufv)
	po.receiver.core.Socket.Touch(po.bufv.ID(), po.bufv.Len())
	if s := w.san; s != nil {
		if po.sanWrite >= 0 {
			s.EndAccess(po.sanWrite)
			po.sanWrite = -1
		}
		if env.sanRead >= 0 {
			s.EndAccess(env.sanRead)
			env.sanRead = -1
		}
		// Message completion is a sync edge: whatever the receiver (or a
		// rank it transitively synchronizes with at this instant) does
		// next is ordered after this transfer's windows.
		s.SyncEdge(env.sender.dp.ID(), po.receiver.dp.ID())
	}
	env.sendReq.complete()
	po.req.complete()
	po.release()
	env.release()
}

// eagerFlight launches the wire transfer of an eager inter-node message.
func (w *World) eagerFlight(env *envelope, target *Proc, onArrive func()) {
	spec := &w.Machine.Spec
	w.Machine.Fab.StartAfterClassed("net", spec.NetLatency, float64(env.size), 0,
		w.netPath(env.sender, target), onArrive)
}

// netPath is the resource chain of an inter-node transfer: source memory
// bus, source NIC TX, optional backplane, destination NIC RX, destination
// memory bus. Every resource on it is a property of the endpoints' sockets
// (the bus) and nodes (the NICs), so paths are cached per (source socket,
// destination socket) pair — O(sockets²) entries where a rank-pair key
// would hold O(ranks²). The fabric only reads Flow.Path, so concurrent
// flows can share one slice, and steady-state messaging allocates no path.
func (w *World) netPath(src, dst *Proc) []*fabric.Resource {
	// Flat integer keys hit the runtime's fast map path, where a struct
	// key would go through generic key hashing.
	ss, ds := src.core.Socket, dst.core.Socket
	perNode := uint64(len(w.Machine.Nodes[0].Sockets))
	nsock := uint64(len(w.Machine.Nodes)) * perNode
	key := (uint64(ss.NodeID)*perNode+uint64(ss.ID))*nsock +
		uint64(ds.NodeID)*perNode + uint64(ds.ID)
	if path, ok := w.netPaths[key]; ok {
		return path
	}
	sn := w.Machine.Nodes[src.core.NodeID]
	dn := w.Machine.Nodes[dst.core.NodeID]
	path := []*fabric.Resource{src.core.Socket.MemBus, sn.NicTx}
	if w.Machine.Backplane != nil {
		path = append(path, w.Machine.Backplane)
	}
	path = append(path, dn.NicRx, dst.core.Socket.MemBus)
	if w.netPaths == nil {
		w.netPaths = make(map[uint64][]*fabric.Resource)
	}
	w.netPaths[key] = path
	return path
}
