package mpi

import (
	"fmt"

	"hierknem/internal/buffer"
	"hierknem/internal/des"
	"hierknem/internal/fabric"
	"hierknem/internal/topology"
)

// Wildcards for Recv matching.
const (
	AnySource = -1
	AnyTag    = -1
)

// Request tracks a pending non-blocking operation.
type Request struct {
	done    bool
	waiters []*des.Proc
	// overhead is per-message protocol CPU charged to the waiter once,
	// when it collects the completed request (LogGP's receiver "o").
	overhead float64
}

// Done reports completion (for Test-style polling).
func (r *Request) Done() bool { return r.done }

func (r *Request) complete() {
	if r.done {
		return
	}
	r.done = true
	for _, w := range r.waiters {
		w.Wake()
	}
	r.waiters = nil
}

// Wait blocks until the request completes, then absorbs any per-message
// protocol CPU attached to it.
func (p *Proc) Wait(r *Request) {
	for !r.done {
		r.waiters = append(r.waiters, p.dp)
		p.dp.Park()
	}
	if r.overhead > 0 {
		o := r.overhead
		r.overhead = 0
		p.dp.Sleep(o)
	}
}

// WaitAll blocks until every request completes.
func (p *Proc) WaitAll(rs ...*Request) {
	for _, r := range rs {
		if r != nil {
			p.Wait(r)
		}
	}
}

// envelope is a message announced to (or arrived at) the destination.
type envelope struct {
	srcWorld  int
	tag       int
	ctx       int
	buf       *buffer.Buffer // sender's payload view
	size      int64
	eager     bool
	arrived   bool // eager inter-node payload landed before a recv was posted
	preposted bool // the receive was already posted when the send started
	sendReq   *Request
	sender    *Proc
}

// posting is a posted receive awaiting a match.
type posting struct {
	srcWorld int // world rank or AnySource
	tag      int
	ctx      int
	buf      *buffer.Buffer
	req      *Request
	receiver *Proc
}

func (env *envelope) matches(po *posting) bool {
	return env.ctx == po.ctx &&
		(po.srcWorld == AnySource || po.srcWorld == env.srcWorld) &&
		(po.tag == AnyTag || po.tag == env.tag)
}

// Isend starts a non-blocking send of buf to dst (a rank of c) with tag.
func (p *Proc) Isend(c *Comm, buf *buffer.Buffer, dst, tag int) *Request {
	dstWorld := c.WorldRank(dst)
	target := p.world.procs[dstWorld]
	env := &envelope{
		srcWorld: p.rank,
		tag:      tag,
		ctx:      c.ctx,
		buf:      buf,
		size:     buf.Len(),
		sendReq:  &Request{},
		sender:   p,
	}
	env.eager = env.size < p.world.Conf.EagerThreshold

	interNode := p.core.NodeID != target.core.NodeID
	if interNode {
		// Sender-side per-message CPU overhead (LogGP "o"); rendezvous
		// messages additionally pay protocol processing.
		o := p.world.Conf.SendOverhead
		if !env.eager {
			o += p.world.Conf.RendezvousCPU
		}
		p.dp.Sleep(o)
		p.world.BytesCross += env.size
	}

	if env.eager {
		if !interNode {
			// copy-in to the shared segment by the sender core.
			p.shmCopy(p.core, p.core.Socket, p.core.Socket, env.size, env.buf.ID())
		}
		env.sendReq.complete() // buffered: sender is free
	}

	if po := target.matchPosting(env); po != nil {
		// The receive was preposted: a rendezvous can start immediately
		// (the RTS finds a waiting match), so no handshake round trip.
		env.preposted = true
		p.world.startTransfer(env, po)
	} else {
		if env.eager && interNode {
			// The payload crosses the wire immediately; mark arrival so a
			// late receive only pays the unload, not the flight.
			p.world.eagerFlight(env, target, func() { env.arrived = true })
		}
		target.unexpected = append(target.unexpected, env)
	}
	return env.sendReq
}

// Send is the blocking form of Isend.
func (p *Proc) Send(c *Comm, buf *buffer.Buffer, dst, tag int) {
	p.Wait(p.Isend(c, buf, dst, tag))
}

// Irecv starts a non-blocking receive into buf from src (rank of c, or
// AnySource) with tag (or AnyTag).
func (p *Proc) Irecv(c *Comm, buf *buffer.Buffer, src, tag int) *Request {
	srcWorld := src
	if src != AnySource {
		srcWorld = c.WorldRank(src)
	}
	po := &posting{srcWorld: srcWorld, tag: tag, ctx: c.ctx, buf: buf, req: &Request{}, receiver: p}
	if env := p.matchUnexpected(po); env != nil {
		p.world.startTransfer(env, po)
	} else {
		p.posted = append(p.posted, po)
	}
	return po.req
}

// Recv is the blocking form of Irecv.
func (p *Proc) Recv(c *Comm, buf *buffer.Buffer, src, tag int) {
	p.Wait(p.Irecv(c, buf, src, tag))
}

// SendRecv posts the receive, sends, then waits on both — full-duplex when
// the transports allow it.
func (p *Proc) SendRecv(c *Comm, sendBuf *buffer.Buffer, dst, sendTag int, recvBuf *buffer.Buffer, src, recvTag int) {
	r := p.Irecv(c, recvBuf, src, recvTag)
	s := p.Isend(c, sendBuf, dst, sendTag)
	p.Wait(r)
	p.Wait(s)
}

func (p *Proc) matchPosting(env *envelope) *posting {
	for i, po := range p.posted {
		if env.matches(po) {
			p.posted = append(p.posted[:i], p.posted[i+1:]...)
			return po
		}
	}
	return nil
}

func (p *Proc) matchUnexpected(po *posting) *envelope {
	for i, env := range p.unexpected {
		if env.matches(po) {
			p.unexpected = append(p.unexpected[:i], p.unexpected[i+1:]...)
			return env
		}
	}
	return nil
}

// smallCopyCutoff is the size below which intra-node copies bypass the
// fabric: a sub-4 KiB copy lasts ~1 µs and contributes negligible bus load,
// while installing a flow for it costs a full max-min recomputation. Fine-
// grained workloads (ring exchanges of tiny blocks across hundreds of ranks)
// would otherwise spend almost all simulation wall time in the fabric.
const smallCopyCutoff = 4096

// shmCopy charges one intra-node memory copy to core (blocking p) without
// moving payload bytes; callers move data separately.
func (p *Proc) shmCopy(core *topology.Core, srcSock, dstSock *topology.Socket, n int64, srcID uint64) {
	spec := &p.world.Machine.Spec
	if n <= 0 {
		p.dp.Sleep(spec.ShmLatency)
		return
	}
	srcRes, rate := srcSock.ReadSide(spec, srcID, n, core.Socket == srcSock)
	if n < smallCopyCutoff {
		p.dp.Sleep(spec.ShmLatency + float64(n)/rate)
		return
	}
	path := []*fabric.Resource{srcRes, dstSock.MemBus}
	des.Await(p.dp, func(done func()) {
		p.world.Machine.Fab.StartAfterClassed("copy", spec.ShmLatency, float64(n), rate, path, done)
	})
}

// startTransfer moves the payload for a matched (envelope, posting) pair and
// completes the requests. Runs in engine context.
func (w *World) startTransfer(env *envelope, po *posting) {
	if env.size != po.buf.Len() {
		panic(fmt.Sprintf("mpi: send size %d != recv size %d (src %d tag %d)",
			env.size, po.buf.Len(), env.srcWorld, env.tag))
	}
	src := env.sender.core
	dst := po.receiver.core
	spec := &w.Machine.Spec
	finish := func() {
		po.buf.CopyFrom(env.buf)
		dst.Socket.Touch(po.buf.ID(), po.buf.Len())
		env.sendReq.complete()
		po.req.complete()
	}

	if src.NodeID == dst.NodeID {
		if env.eager {
			// copy-out from the shared segment by the receiver core; the
			// copy-in already happened at Isend time (bounce buffers are
			// not tracked for residency). Small copies bypass the fabric
			// (see smallCopyCutoff).
			rate := spec.CoreCopyBandwidth
			if env.size < smallCopyCutoff {
				w.Machine.Eng.After(spec.ShmLatency+float64(env.size)/rate, finish)
				return
			}
			path := []*fabric.Resource{src.Socket.MemBus, dst.Socket.MemBus}
			w.Machine.Fab.StartAfterClassed("copy", spec.ShmLatency, float64(env.size), rate, path, finish)
			return
		}
		// KNEM LMT single copy, executed by the receiver core.
		srcRes, rate := src.Socket.ReadSide(spec, env.buf.ID(), env.size, src.Socket == dst.Socket)
		path := []*fabric.Resource{srcRes, dst.Socket.MemBus}
		w.Machine.Fab.StartAfterClassed("copy", spec.ShmLatency, float64(env.size), rate, path, finish)
		return
	}

	if env.eager {
		if env.arrived {
			// Payload already landed; unloading is effectively free.
			w.Machine.Eng.At(w.Machine.Eng.Now(), finish)
			return
		}
		w.eagerFlight(env, po.receiver, finish)
		return
	}
	// Rendezvous: the data flow, preceded by a handshake round trip when
	// the receive was not preposted (the sender's RTS had to wait for the
	// match before the CTS could be issued). The receiver pays protocol
	// CPU when it collects the completion.
	po.req.overhead = w.Conf.RendezvousCPU
	delay := spec.NetLatency
	if !env.preposted {
		delay += w.Conf.RendezvousHandshake
	}
	w.Machine.Fab.StartAfterClassed("net", delay, float64(env.size), 0, w.netPath(env.sender, po.receiver), finish)
}

// eagerFlight launches the wire transfer of an eager inter-node message.
func (w *World) eagerFlight(env *envelope, target *Proc, onArrive func()) {
	spec := &w.Machine.Spec
	w.Machine.Fab.StartAfterClassed("net", spec.NetLatency, float64(env.size), 0,
		w.netPath(env.sender, target), onArrive)
}

// netPath is the resource chain of an inter-node transfer: source memory
// bus, source NIC TX, optional backplane, destination NIC RX, destination
// memory bus.
func (w *World) netPath(src, dst *Proc) []*fabric.Resource {
	sn := w.Machine.Nodes[src.core.NodeID]
	dn := w.Machine.Nodes[dst.core.NodeID]
	path := []*fabric.Resource{src.core.Socket.MemBus, sn.NicTx}
	if w.Machine.Backplane != nil {
		path = append(path, w.Machine.Backplane)
	}
	path = append(path, dn.NicRx, dst.core.Socket.MemBus)
	return path
}
