package mpi

import (
	"bytes"
	"fmt"
	"math"
	"testing"

	"hierknem/internal/buffer"
	"hierknem/internal/topology"
)

// toy spec with round numbers for exact timing arithmetic:
// shm latency 0.5s, net latency 1s, core copy 40 B/s, mem bus 100 B/s,
// NIC 10 B/s half duplex, eager threshold 8 bytes.
func toySpec(nodes, sockets, cores int) topology.Spec {
	return topology.Spec{
		Name:              "toy",
		Nodes:             nodes,
		SocketsPerNode:    sockets,
		CoresPerSocket:    cores,
		MemBandwidth:      100,
		CoreCopyBandwidth: 40,
		L3Bandwidth:       80,
		L3Size:            1 << 20,
		ShmLatency:        0.5,
		NetBandwidth:      10,
		NetLatency:        1,
		NetFullDuplex:     false,
		EagerThreshold:    8,
	}
}

func toyConf() Config {
	return Config{
		EagerThreshold:      8,
		SendOverhead:        0.25,
		RendezvousHandshake: 1,
	}
}

func newToyWorld(t *testing.T, nodes, sockets, cores, np int) *World {
	t.Helper()
	m, err := topology.Build(toySpec(nodes, sockets, cores))
	if err != nil {
		t.Fatal(err)
	}
	b, err := ByCoreBinding(m, np)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorld(m, b, toyConf())
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// ByCoreBinding re-exports topology.ByCore for test brevity.
func ByCoreBinding(m *topology.Machine, np int) (*topology.Binding, error) {
	return topology.ByCore(m, np)
}

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestIntraNodeEagerDeliversData(t *testing.T) {
	w := newToyWorld(t, 1, 1, 2, 2)
	var got []byte
	err := w.Run(func(p *Proc) {
		c := w.WorldComm()
		if p.Rank() == 0 {
			p.Send(c, buffer.NewReal([]byte{1, 2, 3}), 1, 7)
		} else {
			dst := buffer.NewReal(make([]byte, 3))
			p.Recv(c, dst, 0, 7)
			got = append([]byte(nil), dst.Data()...)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("got %v", got)
	}
}

func TestIntraNodeRendezvousDeliversData(t *testing.T) {
	w := newToyWorld(t, 1, 1, 2, 2)
	payload := make([]byte, 100) // >= threshold 8
	for i := range payload {
		payload[i] = byte(i)
	}
	var got []byte
	err := w.Run(func(p *Proc) {
		c := w.WorldComm()
		if p.Rank() == 0 {
			p.Send(c, buffer.NewReal(payload), 1, 0)
		} else {
			dst := buffer.NewReal(make([]byte, 100))
			p.Recv(c, dst, 0, 0)
			got = append([]byte(nil), dst.Data()...)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("rendezvous payload corrupted")
	}
}

func TestInterNodeTransferTiming(t *testing.T) {
	w := newToyWorld(t, 2, 1, 1, 2)
	var recvDone float64
	err := w.Run(func(p *Proc) {
		c := w.WorldComm()
		if p.Rank() == 0 {
			p.Send(c, buffer.NewPhantom(100), 1, 0)
		} else {
			p.Recv(c, buffer.NewPhantom(100), 0, 0)
			recvDone = p.Now()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// rendezvous with a preposted receive: sender overhead 0.25 +
	// latency 1 + 100 bytes at NIC 10 B/s = 10 -> 11.25 (no handshake
	// round trip, the RTS finds the posted match).
	if !almost(recvDone, 11.25) {
		t.Fatalf("recv completed at %g, want 11.25", recvDone)
	}
}

func TestInterNodeEagerBuffersSender(t *testing.T) {
	w := newToyWorld(t, 2, 1, 1, 2)
	var sendDone, recvDone float64
	err := w.Run(func(p *Proc) {
		c := w.WorldComm()
		if p.Rank() == 0 {
			p.Send(c, buffer.NewPhantom(5), 1, 0) // < threshold: eager
			sendDone = p.Now()
		} else {
			p.Compute(100) // receiver arrives very late
			p.Recv(c, buffer.NewPhantom(5), 0, 0)
			recvDone = p.Now()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(sendDone, 0.25) {
		t.Fatalf("eager send completed at %g, want 0.25 (buffered)", sendDone)
	}
	// Payload arrived long before the recv; late recv pays no flight time.
	if !almost(recvDone, 100) {
		t.Fatalf("late recv completed at %g, want 100", recvDone)
	}
}

func TestUnexpectedMessageMatchedLater(t *testing.T) {
	w := newToyWorld(t, 1, 1, 2, 2)
	var got byte
	err := w.Run(func(p *Proc) {
		c := w.WorldComm()
		if p.Rank() == 0 {
			p.Send(c, buffer.NewReal([]byte{42}), 1, 3)
		} else {
			p.Compute(10)
			dst := buffer.NewReal(make([]byte, 1))
			p.Recv(c, dst, 0, 3)
			got = dst.Data()[0]
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Fatalf("got %d", got)
	}
}

func TestTagAndSourceMatching(t *testing.T) {
	w := newToyWorld(t, 1, 1, 3, 3)
	var first, second byte
	err := w.Run(func(p *Proc) {
		c := w.WorldComm()
		switch p.Rank() {
		case 0:
			p.Send(c, buffer.NewReal([]byte{10}), 2, 1)
		case 1:
			p.Send(c, buffer.NewReal([]byte{20}), 2, 2)
		case 2:
			b2 := buffer.NewReal(make([]byte, 1))
			p.Recv(c, b2, 1, 2) // match on (src=1, tag=2) first
			first = b2.Data()[0]
			b1 := buffer.NewReal(make([]byte, 1))
			p.Recv(c, b1, AnySource, AnyTag)
			second = b1.Data()[0]
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if first != 20 || second != 10 {
		t.Fatalf("first=%d second=%d, want 20, 10", first, second)
	}
}

func TestMessageOrderingSameSourceTag(t *testing.T) {
	w := newToyWorld(t, 1, 1, 2, 2)
	var got []byte
	err := w.Run(func(p *Proc) {
		c := w.WorldComm()
		if p.Rank() == 0 {
			for i := byte(1); i <= 3; i++ {
				p.Send(c, buffer.NewReal([]byte{i}), 1, 0)
			}
		} else {
			for i := 0; i < 3; i++ {
				dst := buffer.NewReal(make([]byte, 1))
				p.Recv(c, dst, 0, 0)
				got = append(got, dst.Data()[0])
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("order = %v, want [1 2 3] (MPI non-overtaking)", got)
	}
}

func TestSendRecvNoDeadlock(t *testing.T) {
	w := newToyWorld(t, 2, 1, 1, 2)
	err := w.Run(func(p *Proc) {
		c := w.WorldComm()
		other := 1 - p.Rank()
		sb := buffer.NewPhantom(50)
		rb := buffer.NewPhantom(50)
		p.SendRecv(c, sb, other, 0, rb, other, 0)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIntraNodeBarrierCost(t *testing.T) {
	w := newToyWorld(t, 1, 1, 4, 4)
	var end float64
	err := w.Run(func(p *Proc) {
		c := w.WorldComm()
		c.Barrier(p)
		end = p.Now()
	})
	if err != nil {
		t.Fatal(err)
	}
	// shared-memory barrier: one shm latency per proc, concurrent -> 0.5
	if !almost(end, 0.5) {
		t.Fatalf("barrier exit at %g, want 0.5", end)
	}
}

func TestInterNodeBarrierSynchronizes(t *testing.T) {
	w := newToyWorld(t, 4, 1, 1, 4)
	var minExit = math.Inf(1)
	var slowest float64
	err := w.Run(func(p *Proc) {
		c := w.WorldComm()
		delay := float64(p.Rank()) * 3
		p.Compute(delay)
		if delay > slowest {
			slowest = delay
		}
		c.Barrier(p)
		if p.Now() < minExit {
			minExit = p.Now()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if minExit < slowest {
		t.Fatalf("a rank left the barrier at %g before the slowest entered at %g", minExit, slowest)
	}
}

func TestSplitByNodeBuildsSubComms(t *testing.T) {
	w := newToyWorld(t, 2, 1, 2, 4) // ranks 0,1 node0; 2,3 node1
	type result struct{ size, rank, span int }
	results := make([]result, 4)
	err := w.Run(func(p *Proc) {
		c := w.WorldComm()
		sub := c.Split(p, p.Core().NodeID, p.Rank())
		results[p.Rank()] = result{sub.Size(), sub.Rank(p), sub.NodeSpan()}
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, res := range results {
		if res.size != 2 || res.span != 1 {
			t.Fatalf("rank %d: %+v", r, res)
		}
		if res.rank != r%2 {
			t.Fatalf("rank %d got sub-rank %d, want %d", r, res.rank, r%2)
		}
	}
}

func TestSplitUndefinedExcluded(t *testing.T) {
	w := newToyWorld(t, 1, 1, 3, 3)
	var nilCount, memberCount int
	err := w.Run(func(p *Proc) {
		c := w.WorldComm()
		color := 0
		if p.Rank() == 1 {
			color = Undefined
		}
		sub := c.Split(p, color, p.Rank())
		if sub == nil {
			nilCount++
		} else {
			memberCount = sub.Size()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if nilCount != 1 || memberCount != 2 {
		t.Fatalf("nil=%d size=%d, want 1, 2", nilCount, memberCount)
	}
}

func TestSplitKeyOrdersRanks(t *testing.T) {
	w := newToyWorld(t, 1, 1, 3, 3)
	ranks := make([]int, 3)
	err := w.Run(func(p *Proc) {
		c := w.WorldComm()
		// reverse order keys: world rank 2 -> key 0 etc.
		sub := c.Split(p, 0, 2-p.Rank())
		ranks[p.Rank()] = sub.Rank(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	if ranks[0] != 2 || ranks[1] != 1 || ranks[2] != 0 {
		t.Fatalf("sub ranks = %v, want [2 1 0]", ranks)
	}
}

func TestReduceLocalComputesAndCharges(t *testing.T) {
	w := newToyWorld(t, 1, 1, 2, 2)
	var end float64
	var got []int64
	err := w.Run(func(p *Proc) {
		if p.Rank() != 0 {
			return
		}
		dst := buffer.Int64s([]int64{1, 2})
		src := buffer.Int64s([]int64{10, 20})
		p.ReduceLocal(buffer.OpSum, buffer.Int64, dst, src)
		got = buffer.AsInt64s(dst)
		end = p.Now()
	})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 11 || got[1] != 22 {
		t.Fatalf("reduce = %v", got)
	}
	// 16 bytes; rate = min(reduce bw 40, bus 100 / 3 streams) = 33.33 B/s
	if !almost(end, 0.48) {
		t.Fatalf("reduce finished at %g, want 0.48", end)
	}
}

func TestWaitAllMultipleRequests(t *testing.T) {
	w := newToyWorld(t, 1, 1, 4, 4)
	var sum int
	err := w.Run(func(p *Proc) {
		c := w.WorldComm()
		if p.Rank() == 0 {
			var reqs []*Request
			bufs := make([]*buffer.Buffer, 3)
			for i := 1; i < 4; i++ {
				bufs[i-1] = buffer.NewReal(make([]byte, 1))
				reqs = append(reqs, p.Irecv(c, bufs[i-1], i, 0))
			}
			p.WaitAll(reqs...)
			for _, b := range bufs {
				sum += int(b.Data()[0])
			}
		} else {
			p.Compute(float64(p.Rank()))
			p.Send(c, buffer.NewReal([]byte{byte(p.Rank())}), 0, 0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum != 6 {
		t.Fatalf("sum = %d, want 6", sum)
	}
}

func TestHalfDuplexNICSharesBandwidth(t *testing.T) {
	// Two simultaneous opposite-direction transfers between two nodes on a
	// half-duplex NIC take twice as long as one.
	w := newToyWorld(t, 2, 1, 1, 2)
	var end float64
	err := w.Run(func(p *Proc) {
		c := w.WorldComm()
		other := 1 - p.Rank()
		rb := buffer.NewPhantom(100)
		sb := buffer.NewPhantom(100)
		p.SendRecv(c, sb, other, 0, rb, other, 0)
		end = p.Now()
	})
	if err != nil {
		t.Fatal(err)
	}
	// each direction crosses both NICs (tx + rx on the same half-duplex
	// resource): each NIC carries 2 flows -> 5 B/s each -> 20 s + 1.25
	// (preposted receives skip the handshake)
	if !almost(end, 21.25) {
		t.Fatalf("duplex exchange finished at %g, want 21.25", end)
	}
}

func TestFullDuplexNICDoublesThroughput(t *testing.T) {
	spec := toySpec(2, 1, 1)
	spec.NetFullDuplex = true
	m, err := topology.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := topology.ByCore(m, 2)
	w, err := NewWorld(m, b, toyConf())
	if err != nil {
		t.Fatal(err)
	}
	var end float64
	err = w.Run(func(p *Proc) {
		c := w.WorldComm()
		other := 1 - p.Rank()
		p.SendRecv(c, buffer.NewPhantom(100), other, 0, buffer.NewPhantom(100), other, 0)
		end = p.Now()
	})
	if err != nil {
		t.Fatal(err)
	}
	// full duplex: each direction gets its own 10 B/s -> 10 s + 1.25
	if !almost(end, 11.25) {
		t.Fatalf("duplex exchange finished at %g, want 11.25", end)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() float64 {
		w := newToyWorld(t, 2, 2, 2, 8)
		err := w.Run(func(p *Proc) {
			c := w.WorldComm()
			next := (p.Rank() + 1) % c.Size()
			prev := (p.Rank() + c.Size() - 1) % c.Size()
			for i := 0; i < 3; i++ {
				p.SendRecv(c, buffer.NewPhantom(64), next, i, buffer.NewPhantom(64), prev, i)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return w.Now()
	}
	first := run()
	for i := 0; i < 5; i++ {
		if got := run(); got != first {
			t.Fatalf("run %d finished at %g, first at %g", i, got, first)
		}
	}
}

func TestCrossBytesAccounting(t *testing.T) {
	w := newToyWorld(t, 2, 1, 2, 4)
	err := w.Run(func(p *Proc) {
		c := w.WorldComm()
		if p.Rank() == 0 {
			p.Send(c, buffer.NewPhantom(100), 1, 0) // intra-node
			p.Send(c, buffer.NewPhantom(100), 2, 0) // inter-node
		} else if p.Rank() <= 2 {
			p.Recv(c, buffer.NewPhantom(100), 0, 0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if w.BytesCross != 100 {
		t.Fatalf("BytesCross = %d, want 100", w.BytesCross)
	}
}

func TestManyRanksPipelineStress(t *testing.T) {
	// 2 nodes x 8 ranks relay segments down a chain; checks no deadlock
	// and payload integrity through mixed intra/inter-node hops.
	w := newToyWorld(t, 2, 2, 4, 16)
	const segs = 5
	var final []byte
	err := w.Run(func(p *Proc) {
		c := w.WorldComm()
		n := c.Size()
		me := p.Rank()
		for s := 0; s < segs; s++ {
			b := buffer.NewReal(make([]byte, 4))
			if me == 0 {
				copy(b.Data(), []byte{byte(s), 1, 2, 3})
			} else {
				p.Recv(c, b, me-1, s)
			}
			if me < n-1 {
				p.Send(c, b, me+1, s)
			} else if s == segs-1 {
				final = append([]byte(nil), b.Data()...)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(final, []byte{segs - 1, 1, 2, 3}) {
		t.Fatalf("final = %v", final)
	}
}

func TestRunTwicePhasesAccumulateTime(t *testing.T) {
	w := newToyWorld(t, 1, 1, 2, 2)
	body := func(p *Proc) {
		c := w.WorldComm()
		if p.Rank() == 0 {
			p.Send(c, buffer.NewPhantom(4), 1, 0)
		} else {
			p.Recv(c, buffer.NewPhantom(4), 0, 0)
		}
	}
	if err := w.Run(body); err != nil {
		t.Fatal(err)
	}
	t1 := w.Now()
	if err := w.Run(body); err != nil {
		t.Fatal(err)
	}
	if w.Now() <= t1 {
		t.Fatalf("second phase did not advance time: %g then %g", t1, w.Now())
	}
}

func TestMismatchedSizePanics(t *testing.T) {
	w := newToyWorld(t, 1, 1, 2, 2)
	panicked := false
	// The panic fires on the receiving rank's goroutine; recover there.
	// The sender is then stuck forever, which Run reports as a deadlock.
	err := w.Run(func(p *Proc) {
		c := w.WorldComm()
		if p.Rank() == 0 {
			p.Send(c, buffer.NewPhantom(10), 1, 0)
			return
		}
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		p.Recv(c, buffer.NewPhantom(20), 0, 0)
	})
	if !panicked {
		t.Fatal("mismatched sizes did not panic")
	}
	if err == nil {
		t.Fatal("expected deadlock error for the orphaned sender")
	}
}

func TestNonMemberRankPanics(t *testing.T) {
	w := newToyWorld(t, 1, 1, 4, 4)
	caught := 0
	err := w.Run(func(p *Proc) {
		c := w.WorldComm()
		sub := c.Split(p, p.Rank()%2, p.Rank())
		if p.Rank()%2 == 0 {
			return
		}
		func() {
			defer func() {
				if recover() != nil {
					caught++
				}
			}()
			// sub contains odd ranks only; asking for even rank's comm
			// rank must panic.
			_ = sub.Rank(w.Proc(0))
		}()
	})
	if err != nil {
		t.Fatal(err)
	}
	if caught != 2 {
		t.Fatalf("caught = %d, want 2", caught)
	}
}

func TestSegmentBounds(t *testing.T) {
	cases := []struct {
		total, seg, i, off, n int64
	}{
		{100, 30, 0, 0, 30},
		{100, 30, 3, 90, 10},
		{100, 30, 4, 100, 0},
		{100, 100, 0, 0, 100},
		{5, 10, 0, 0, 5},
	}
	for _, c := range cases {
		off, n := SegmentBounds(c.total, c.seg, c.i)
		if off != c.off || n != c.n {
			t.Errorf("SegmentBounds(%d,%d,%d) = (%d,%d), want (%d,%d)",
				c.total, c.seg, c.i, off, n, c.off, c.n)
		}
	}
	if CeilDiv(100, 30) != 4 || CeilDiv(90, 30) != 3 {
		t.Error("CeilDiv wrong")
	}
}

func TestIsendOverheadSerializesAtSender(t *testing.T) {
	// A leader posting k inter-node Isends pays k*SendOverhead before the
	// last is injected — the per-message CPU cost the paper's pipelining
	// must amortize.
	w := newToyWorld(t, 3, 1, 1, 3)
	var lastInjected float64
	err := w.Run(func(p *Proc) {
		c := w.WorldComm()
		if p.Rank() == 0 {
			r1 := p.Isend(c, buffer.NewPhantom(4), 1, 0)
			r2 := p.Isend(c, buffer.NewPhantom(4), 2, 0)
			lastInjected = p.Now()
			p.WaitAll(r1, r2)
		} else {
			p.Recv(c, buffer.NewPhantom(4), 0, 0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(lastInjected, 0.5) {
		t.Fatalf("two Isends injected by %g, want 0.5 (2 x 0.25 overhead)", lastInjected)
	}
}

func TestWorldValidatesBinding(t *testing.T) {
	m, _ := topology.Build(toySpec(1, 1, 2))
	bad := topology.Custom("dup", []int{0, 0})
	if _, err := NewWorld(m, bad, Config{}); err == nil {
		t.Fatal("NewWorld accepted invalid binding")
	}
}

func TestBigFanInDoesNotDeadlock(t *testing.T) {
	w := newToyWorld(t, 4, 2, 4, 32)
	err := w.Run(func(p *Proc) {
		c := w.WorldComm()
		if p.Rank() == 0 {
			for i := 1; i < c.Size(); i++ {
				p.Recv(c, buffer.NewPhantom(16), AnySource, 0)
			}
		} else {
			p.Send(c, buffer.NewPhantom(16), 0, 0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if w.Now() <= 0 {
		t.Fatal("no time elapsed")
	}
}

func TestCommProcAndWorldRank(t *testing.T) {
	w := newToyWorld(t, 2, 1, 2, 4)
	err := w.Run(func(p *Proc) {
		c := w.WorldComm()
		sub := c.Split(p, p.Core().NodeID, p.Rank())
		for i := 0; i < sub.Size(); i++ {
			wp := sub.Proc(i)
			if sub.Rank(wp) != i {
				t.Errorf("round trip rank %d failed", i)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func ExampleWorld() {
	m, _ := topology.Build(topology.Spec{
		Name: "example", Nodes: 2, SocketsPerNode: 1, CoresPerSocket: 2,
		MemBandwidth: 10e9, CoreCopyBandwidth: 3e9, NetBandwidth: 125e6,
		NetLatency: 50e-6, ShmLatency: 1e-6, EagerThreshold: 4096,
	})
	b, _ := topology.ByCore(m, 4)
	w, _ := NewWorld(m, b, Config{})
	_ = w.Run(func(p *Proc) {
		c := w.WorldComm()
		if p.Rank() == 0 {
			p.Send(c, buffer.NewReal([]byte("hi")), 3, 0)
		}
		if p.Rank() == 3 {
			msg := buffer.NewReal(make([]byte, 2))
			p.Recv(c, msg, 0, 0)
			fmt.Printf("rank 3 got %q\n", msg.Data())
		}
	})
	// Output: rank 3 got "hi"
}
