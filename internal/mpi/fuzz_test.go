package mpi

import (
	"bytes"
	"fmt"
	"sort"
	"testing"

	"hierknem/internal/buffer"
	"hierknem/internal/topology"
)

// FuzzMatch drives randomized Isend/Irecv/WaitAll schedules through the
// point-to-point matching machinery — eager and rendezvous, preposted and
// unexpected arrivals, specific and wildcard receives — and asserts the
// runtime's hard invariants on every schedule:
//
//   - no deadlock and no time-horizon blowup;
//   - every request completes;
//   - no message is lost or duplicated (payload bytes are verified);
//   - request hygiene: the posted-receive and unexpected-message queues of
//     every rank drain to empty.
//
// The input bytes are decoded into a *matched* plan (every send has exactly
// one matching receive), so any hang the fuzzer finds is a runtime bug, not
// an ill-formed program. Two global modes keep matching unambiguous:
// mode A uses a unique tag and size per pair (received bytes are compared
// against the exact sender pattern); mode B posts fully wildcard receives,
// where arrival order is schedule-dependent, so all payloads share one size
// (the transfer layer rejects size mismatches) and the received payloads
// are compared as a multiset.

const (
	fuzzNP       = 4
	fuzzMaxPairs = 48
	wildSize     = 64
)

func fuzzWorld(t testing.TB) *World {
	m, err := topology.Build(topology.Spec{
		Name:              "fuzz",
		Nodes:             2,
		SocketsPerNode:    1,
		CoresPerSocket:    2,
		MemBandwidth:      10e9,
		CoreCopyBandwidth: 3e9,
		L3Bandwidth:       6e9,
		L3Size:            12 << 20,
		ShmLatency:        1e-6,
		NetBandwidth:      1e9,
		NetLatency:        10e-6,
		NetFullDuplex:     true,
		EagerThreshold:    4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := topology.ByCore(m, fuzzNP)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorld(m, b, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// A matched plan must terminate; a runaway virtual clock is a livelock.
	w.Machine.Eng.MaxTime = 1e6
	return w
}

// fuzzPair is one matched send/receive.
type fuzzPair struct {
	src, dst  int
	tag       int
	size      int64
	deferRecv bool // receiver posts this Irecv after its Isends
}

// decodePlan turns fuzz bytes into a matched plan. Byte 0 selects the mode;
// each subsequent 3-byte group describes one pair.
func decodePlan(data []byte) (wild bool, pairs []fuzzPair) {
	if len(data) == 0 {
		return false, nil
	}
	wild = data[0]&1 == 1
	data = data[1:]
	for i := 0; i+2 < len(data) && len(pairs) < fuzzMaxPairs; i += 3 {
		src := int(data[i]) % fuzzNP
		dst := int(data[i+1]) % fuzzNP
		if dst == src {
			dst = (src + 1) % fuzzNP
		}
		p := fuzzPair{
			src:       src,
			dst:       dst,
			tag:       len(pairs), // unique per pair in mode A
			deferRecv: data[i+2]&2 != 0,
			// Sizes straddle the 4096B eager threshold: both protocols.
			size: int64(data[i+2])*37 + 1,
		}
		if wild {
			p.size = wildSize
		}
		pairs = append(pairs, p)
	}
	return wild, pairs
}

// fuzzPattern is the payload for pair k: a function of the pair, never of
// the schedule, so delivery can be verified byte for byte.
func fuzzPattern(k int, size int64) []byte {
	d := make([]byte, size)
	for i := range d {
		d[i] = byte((k*131 + i*29 + 17) % 251)
	}
	return d
}

func FuzzMatch(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("0ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghij")) // mode A, small sizes
	f.Add([]byte("1zyxwvutsrqponmlkjihgfedcba9876543210")) // mode B, wildcards
	f.Add([]byte{0, 1, 2, 0xff, 3, 0, 0xfe, 1, 3, 0xfd})   // mode A, rendezvous sizes
	f.Add([]byte{1, 0, 1, 3, 1, 2, 3, 2, 3, 1, 3, 0, 2})   // mode B, fan-in to one rank

	f.Fuzz(func(t *testing.T, data []byte) {
		wild, pairs := decodePlan(data)
		w := fuzzWorld(t)

		var reqs [][]*Request // per rank, under the cooperative scheduler
		reqs = make([][]*Request, fuzzNP)
		recvBufs := make([]*buffer.Buffer, len(pairs))
		err := w.Run(func(p *Proc) {
			c := w.WorldComm()
			me := c.Rank(p)
			post := func(k int, pair fuzzPair) {
				buf := buffer.NewReal(make([]byte, pair.size))
				recvBufs[k] = buf
				if wild {
					reqs[me] = append(reqs[me], p.Irecv(c, buf, AnySource, AnyTag))
				} else {
					reqs[me] = append(reqs[me], p.Irecv(c, buf, pair.src, pair.tag))
				}
			}
			var deferred []int
			for k, pair := range pairs {
				if pair.dst == me && !pair.deferRecv {
					post(k, pair)
				}
				if pair.src == me {
					sbuf := buffer.NewReal(fuzzPattern(k, pair.size))
					reqs[me] = append(reqs[me], p.Isend(c, sbuf, pair.dst, pair.tag))
				}
				if pair.dst == me && pair.deferRecv {
					deferred = append(deferred, k)
				}
			}
			for _, k := range deferred {
				post(k, pairs[k])
			}
			p.WaitAll(reqs[me]...)
		})
		if err != nil {
			t.Fatalf("runtime stalled on a matched plan: %v", err)
		}

		for rank, rs := range reqs {
			for _, r := range rs {
				if !r.Done() {
					t.Fatalf("rank %d: WaitAll returned with an incomplete request", rank)
				}
			}
		}
		for rank := 0; rank < fuzzNP; rank++ {
			p := w.Proc(rank)
			if p.posted.count != 0 {
				t.Fatalf("rank %d: %d posted receives leaked", rank, p.posted.count)
			}
			if len(p.posted.wild) != 0 {
				t.Fatalf("rank %d: %d wildcard postings leaked", rank, len(p.posted.wild))
			}
			if p.unexpected.count != 0 {
				t.Fatalf("rank %d: %d unexpected messages leaked", rank, p.unexpected.count)
			}
			if p.unexpected.head != nil || p.unexpected.tail != nil {
				t.Fatalf("rank %d: unexpected arrival list retains entries after drain", rank)
			}
		}

		if wild {
			// Arrival order is schedule-dependent: verify the multiset.
			var got, want []string
			for k, pair := range pairs {
				got = append(got, fmt.Sprintf("%d:%x", pair.dst, recvBufs[k].Data()))
				want = append(want, fmt.Sprintf("%d:%x", pair.dst, fuzzPattern(k, pair.size)))
			}
			sort.Strings(got)
			sort.Strings(want)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("wildcard delivery lost or corrupted a payload (entry %d)", i)
				}
			}
		} else {
			for k, pair := range pairs {
				if !bytes.Equal(recvBufs[k].Data(), fuzzPattern(k, pair.size)) {
					t.Fatalf("pair %d (%d->%d, tag %d, %dB): payload corrupted",
						k, pair.src, pair.dst, pair.tag, pair.size)
				}
			}
		}
	})
}
