package mpi

// CeilDiv returns ceil(a/b) for positive b.
func CeilDiv(a, b int64) int64 {
	if b <= 0 {
		panic("mpi: CeilDiv by non-positive divisor")
	}
	return (a + b - 1) / b
}

// SegmentBounds returns the byte offset and length of segment i when a
// message of total bytes is split into segments of segSize (the last segment
// may be short).
func SegmentBounds(total, segSize int64, i int64) (off, n int64) {
	off = i * segSize
	if off >= total {
		return total, 0
	}
	n = segSize
	if off+n > total {
		n = total - off
	}
	return off, n
}
