package mpi

// Seeded-fault fixtures for hiersan at the MPI layer: planted envelope and
// posting pool faults must fire with rank diagnostics, an unsynchronized
// overlapping single-copy must trip the virtual-time conflict checker with
// rank/vtime detail, and a drained queue with outstanding operations must
// produce a stall autopsy naming the pending receive and the unmatched send.

import (
	"errors"
	"strings"
	"testing"

	"hierknem/internal/buffer"
	"hierknem/internal/des"
	"hierknem/internal/knem"
)

func collectViolations(w *World) *[]string {
	var got []string
	w.EnableSanitizer().SetOnViolation(func(msg string) { got = append(got, msg) })
	return &got
}

func TestSanitizerEnvelopeDoubleRelease(t *testing.T) {
	w := newToyWorld(t, 1, 1, 2, 2)
	got := collectViolations(w)
	p := w.Proc(0)
	env := p.allocEnv()
	env.refs = 1
	env.release()
	//lint:ignore poolreturn planted fault: the reuse after release is exactly what the sanitizer must catch
	env.refs = 1
	env.release() // planted fault: second recycle of the same record
	if len(*got) != 1 || !strings.Contains((*got)[0], "double release of mpi.envelope") {
		t.Fatalf("violations = %q, want one double release of mpi.envelope", *got)
	}
	if !strings.Contains((*got)[0], "rank0") {
		t.Fatalf("violation %q does not name the rank", (*got)[0])
	}
}

func TestSanitizerPostingUseAfterRelease(t *testing.T) {
	w := newToyWorld(t, 1, 1, 2, 2)
	got := collectViolations(w)
	p := w.Proc(0)
	po := p.allocPosting()
	po.refs = 1
	po.release()
	//lint:ignore poolreturn planted fault: the touch after recycle is exactly what the sanitizer must catch
	w.Sanitizer().PoolUse(po, p.name) // planted fault: touch after recycle
	if len(*got) != 1 || !strings.Contains((*got)[0], "use after release of mpi.posting") {
		t.Fatalf("violations = %q, want one use-after-release of mpi.posting", *got)
	}
}

// TestSanitizerDetectsOverlappingCopy plants the bug class the conflict
// checker exists for: two ranks Put into the same registered region at the
// same virtual time with no ordering sync edge between them.
func TestSanitizerDetectsOverlappingCopy(t *testing.T) {
	w := newToyWorld(t, 1, 1, 3, 3)
	got := collectViolations(w)
	target := buffer.NewReal(make([]byte, 64))
	err := w.Run(func(p *Proc) {
		c := w.WorldComm()
		if p.Rank() == 0 {
			ck := p.Knem().Register(target, p.Core(), knem.RightWrite)
			c.BBPost(p, "ck", ck)
			return
		}
		ck := c.BBWait(p, "ck").(knem.Cookie)
		src := buffer.NewReal(make([]byte, 32))
		if err := p.Knem().Put(p.DES(), p.Core(), ck, 0, src); err != nil {
			t.Error(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(*got) == 0 {
		t.Fatal("overlapping unsynchronized Puts produced no conflict violation")
	}
	v := (*got)[0]
	for _, want := range []string{"conflicting buffer access", "write", "t="} {
		if !strings.Contains(v, want) {
			t.Errorf("violation %q missing %q", v, want)
		}
	}
	if !strings.Contains(v, "rank1") && !strings.Contains(v, "rank2") {
		t.Errorf("violation %q does not name a rank", v)
	}
}

// TestStallAutopsyNamesPendingOps: with the sanitizer attached, a drained
// queue surfaces as a StallError whose report lists the pending receive
// (rank, tag, posting time) and the unmatched send sitting in the
// unexpected queue.
func TestStallAutopsyNamesPendingOps(t *testing.T) {
	w := newToyWorld(t, 1, 1, 2, 2)
	collectViolations(w)
	err := w.Run(func(p *Proc) {
		c := w.WorldComm()
		if p.Rank() == 0 {
			p.Recv(c, buffer.NewReal(make([]byte, 4)), 1, 42) // never matched
		} else {
			p.Send(c, buffer.NewReal([]byte{1, 2, 3}), 0, 7) // eager: completes, never received
		}
	})
	if err == nil {
		t.Fatal("expected a stall error")
	}
	var se *StallError
	if !errors.As(err, &se) {
		t.Fatalf("error is %T, want *StallError: %v", err, err)
	}
	var dl *des.DeadlockError
	if !errors.As(err, &dl) {
		t.Error("StallError must unwrap to *des.DeadlockError")
	}
	msg := err.Error()
	for _, want := range []string{
		"stall autopsy:",
		"rank0: recv pending",
		"tag=42",
		"posted at t=",
		"unmatched send from rank1",
		"tag=7",
	} {
		if !strings.Contains(msg, want) {
			t.Errorf("stall report missing %q:\n%s", want, msg)
		}
	}
}

// TestStallAutopsyEmptyCase: ranks parked outside point-to-point still get
// a report, with the explicit no-pending note.
func TestStallAutopsyEmptyCase(t *testing.T) {
	w := newToyWorld(t, 1, 1, 2, 2)
	collectViolations(w)
	err := w.Run(func(p *Proc) {
		if p.Rank() == 0 {
			p.DES().Park() // parked forever, no p2p posted
		}
	})
	var se *StallError
	if !errors.As(err, &se) {
		t.Fatalf("error is %T, want *StallError: %v", err, err)
	}
	if !strings.Contains(se.Report, "no pending point-to-point operations") {
		t.Errorf("empty-case report = %q", se.Report)
	}
}
