// Package mpi is a simulated MPI runtime: ranks, communicators, non-blocking
// point-to-point messaging with eager and rendezvous protocols, barriers and
// reduction arithmetic — all executing in virtual time on the des engine of
// a topology.Machine.
//
// Each rank is a des process bound to a core by a topology.Binding. Message
// transport is chosen by peer locality, mirroring the configuration in the
// HierKNEM paper: intra-node messages use the SM/KNEM byte-transfer layer
// (copy-in/copy-out under the eager threshold, single-copy above it) and
// inter-node messages use the network (TCP or IB verbs personality), loading
// NIC and memory-bus fabric resources so collectives experience realistic
// contention.
package mpi

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"sync/atomic"

	"hierknem/internal/buffer"
	"hierknem/internal/des"
	"hierknem/internal/fabric"
	"hierknem/internal/knem"
	"hierknem/internal/san"
	"hierknem/internal/topology"
)

// Config tunes the software stack (as opposed to topology.Spec, which is
// hardware). Zero values select defaults.
type Config struct {
	// EagerThreshold switches p2p from eager to rendezvous. Default: the
	// machine spec's threshold, or 4 KiB.
	EagerThreshold int64
	// SendOverhead is the per-message sender CPU cost for inter-node
	// messages (the "o" of LogGP). Default 1 µs.
	SendOverhead float64
	// ReduceBandwidth is the per-core streaming rate of reduction
	// arithmetic. Default: the core copy bandwidth.
	ReduceBandwidth float64
	// RendezvousHandshake is the extra latency before a matched
	// rendezvous transfer starts. Default: one network latency.
	RendezvousHandshake float64
	// RendezvousCPU is the per-message protocol-processing cost a
	// rendezvous (large) inter-node message charges to each endpoint's
	// core: RTS/CTS handling, registration, progress-engine work. It is
	// what makes too-small pipeline segments expensive (the left side of
	// the paper's Figure 1 U-curve). Default 0; cluster personalities
	// calibrate it (see internal/clusters).
	RendezvousCPU float64
}

func (c Config) withDefaults(spec *topology.Spec) Config {
	if c.EagerThreshold == 0 {
		c.EagerThreshold = spec.EagerThreshold
		if c.EagerThreshold == 0 {
			c.EagerThreshold = 4096
		}
	}
	if c.SendOverhead == 0 {
		c.SendOverhead = 1e-6
	}
	if c.ReduceBandwidth == 0 {
		c.ReduceBandwidth = spec.CoreCopyBandwidth
	}
	if c.RendezvousHandshake == 0 {
		c.RendezvousHandshake = spec.NetLatency
	}
	return c
}

// World is one simulated MPI job.
type World struct {
	Machine *topology.Machine
	Binding *topology.Binding
	Conf    Config
	Knem    []*knem.Device

	procs     []*Proc
	nextCtx   int
	worldComm *Comm
	nodeComms []*Comm                       // per-node communicators, built eagerly (see NodeComm)
	netPaths  map[uint64][]*fabric.Resource // shared read-only inter-node paths, keyed src*np+dst

	// empty is this world's zero-byte phantom for control messages. One
	// buffer (one identity) per world suffices: zero-byte transfers never
	// read data, their CopyFrom is a no-op, and a zero-byte Touch neither
	// uses cache capacity nor perturbs the eviction order of real entries.
	// Barriers issue one such buffer per rank per round, so minting fresh
	// identities was a measurable allocation source. Per-world rather than
	// package-level so concurrently running worlds share no pointers.
	empty *buffer.Buffer

	// BytesCross counts payload bytes sent over inter-node links, a
	// cheap cross-check for algorithm traffic volume.
	BytesCross int64

	// san is the attached hiersan runtime (nil when disabled — the
	// default). See EnableSanitizer.
	san *san.Sanitizer

	// Guard elision (see guards.go): the mode, the set of manifest-proved
	// region functions keyed by runtime name, and a count of node-phase
	// entries that actually ran guard-free (atomic: bracketed ranks enter
	// phases from parallel workers; the counter is observability only and
	// never feeds simulation state).
	guardMode    GuardMode
	guardRegions map[string]bool
	elidedPhases atomic.Int64
}

// Proc is one simulated MPI process. Collective and application code runs in
// its body function and calls methods on Proc.
type Proc struct {
	world *World
	rank  int
	name  string // des process name, built once (Run may be called repeatedly)
	core  *topology.Core
	dp    *des.Proc

	posted     postIndex // posted receives, indexed, posting order preserved
	unexpected envIndex  // unexpected envelopes, indexed, arrival order preserved

	// envPool and poPool are the recycled send/receive records (see
	// envelope.refs, posting.refs). Per-rank heads are the pool sharding the
	// parallel windows rely on: strictly finer than per-domain, each head in
	// its own heap-allocated Proc (no two heads share a cache line), and the
	// confinement discipline guarantees every alloc/release runs either on
	// the owning node's worker or under the serial coordinator.
	envPool []*envelope // recycled send records (see envelope.refs)
	poPool  []*posting  // recycled receive records (see posting.refs)

	// elide is set between node-phase brackets whose enclosing function the
	// phasesafe manifest proves confined: the per-message guards early-out
	// on it. Written only by the rank's own event context (worker or
	// coordinator), like the pools above.
	elide bool
}

// NewWorld creates a world over machine m with np = binding.NP() ranks.
func NewWorld(m *topology.Machine, b *topology.Binding, conf Config) (*World, error) {
	if err := b.Validate(m); err != nil {
		return nil, err
	}
	w := &World{
		Machine: m,
		Binding: b,
		Conf:    conf.withDefaults(&m.Spec),
		Knem:    knem.Devices(m),
		empty:   buffer.NewPhantom(0),
	}
	w.procs = make([]*Proc, b.NP())
	for r := range w.procs {
		w.procs[r] = &Proc{world: w, rank: r, name: fmt.Sprintf("rank%d", r), core: b.Core(m, r)}
	}
	w.buildNodeComms()
	if san.EnvEnabled() {
		w.EnableSanitizer()
	}
	if engineModeEnv() == des.ModeParallel {
		w.SetEngineMode(des.ModeParallel)
	}
	n, err := workersEnv()
	if err != nil {
		return nil, err
	}
	if n > 0 {
		w.SetEngineWorkers(n)
	}
	gm, err := guardsEnv()
	if err != nil {
		return nil, err
	}
	if gm == GuardElided {
		// Runs after EnableSanitizer above, so HIERSAN=1 silently keeps
		// the world checked even under HIERKNEM_GUARDS=elide.
		if err := w.SetGuardMode(GuardElided); err != nil {
			return nil, err
		}
	}
	return w, nil
}

// buildNodeComms creates one communicator per node holding that node's ranks
// (in world-rank order), eagerly: confined node phases read them without
// touching the world-global context counter, so no Split-style collective is
// needed inside a parallel window. Nodes hosting no rank get a nil entry.
// Runs at NewWorld and again after Reset, in the same order both times, so
// context ids replay identically.
func (w *World) buildNodeComms() {
	nodes := len(w.Machine.Nodes)
	if cap(w.nodeComms) < nodes {
		w.nodeComms = make([]*Comm, nodes)
	}
	w.nodeComms = w.nodeComms[:nodes]
	perNode := make([][]int, nodes)
	for r, p := range w.procs {
		perNode[p.core.NodeID] = append(perNode[p.core.NodeID], r)
	}
	for n, ranks := range perNode {
		if len(ranks) == 0 {
			w.nodeComms[n] = nil
			continue
		}
		w.nodeComms[n] = w.newComm(ranks)
	}
}

// NodeComm returns the prebuilt communicator of every rank on p's node. It
// is the communicator node phases run their intra-node collectives on.
func (p *Proc) NodeComm() *Comm { return p.world.nodeComms[p.core.NodeID] }

// engineModeEnv reads the HIERKNEM_ENGINE environment toggle ("parallel"
// selects conservative parallel mode for every new world). Like HIERSAN, an
// environment read is deterministic for the life of the process.
func engineModeEnv() des.EngineMode {
	if os.Getenv("HIERKNEM_ENGINE") == "parallel" {
		return des.ModeParallel
	}
	return des.ModeSerial
}

// workersEnv reads the HIERKNEM_WORKERS override for the phase worker count.
// Unset (or empty) keeps the engine's GOMAXPROCS-derived default; anything
// else must be a positive integer. Rejecting zero, negative and non-numeric
// values loudly — instead of silently falling back to the default — is
// deliberate: a typo'd worker count that quietly ran the default pool once
// cost a day of confused benchmarking.
func workersEnv() (int, error) {
	s := os.Getenv("HIERKNEM_WORKERS")
	if s == "" {
		return 0, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("mpi: HIERKNEM_WORKERS=%q is not an integer", s)
	}
	if n < 1 {
		return 0, fmt.Errorf("mpi: HIERKNEM_WORKERS=%d must be at least 1 (unset it for the engine default)", n)
	}
	return n, nil
}

// SetEngineWorkers fixes the number of workers parallel windows execute on.
// n=1 selects the degenerate one-worker engine — no staging, no windows, no
// outboxes — whose overhead over serial is bounded by a bench gate. Worker
// count never shows in the event log; it only decides how a window's domains
// are spread over host cores.
func (w *World) SetEngineWorkers(n int) { w.Machine.Eng.SetWorkers(n) }

// SetEngineMode switches the world's engine between the serial reference
// and conservative parallel mode (installing the machine's node partition).
// Must not be called mid-Run; the mode survives Reset, so a reset world
// replays in the mode it was left in.
func (w *World) SetEngineMode(m des.EngineMode) {
	eng := w.Machine.Eng
	if m == des.ModeParallel {
		eng.SetPartition(w.Machine.Partition())
	}
	eng.SetMode(m)
}

// EngineMode returns the engine mode the world runs under.
func (w *World) EngineMode() des.EngineMode { return w.Machine.Eng.Mode() }

// EnableSanitizer attaches a hiersan runtime to the world and every layer
// under it (engine, fabric, KNEM devices), returning it so tests can install
// a violation collector. Idempotent. NewWorld calls it automatically when
// HIERSAN=1 is set in the environment. The sanitizer schedules no events
// and never advances the clock, so an instrumented run is event-for-event
// identical to a bare one; it only turns virtual-time hazards — double
// release, use after release, unsynchronized overlapping buffer accesses —
// into immediate, diagnosable violations.
func (w *World) EnableSanitizer() *san.Sanitizer {
	if w.san != nil {
		return w.san
	}
	s := san.New(w.Machine.Eng.Now)
	w.san = s
	// The sanitizer exists to run every assertion: revoke guard elision.
	w.guardMode = GuardChecked
	w.guardRegions = nil
	w.Machine.Eng.SetSanitizer(s)
	w.Machine.Fab.SetSanitizer(s)
	for _, d := range w.Knem {
		d.SetSanitizer(s)
	}
	return s
}

// Sanitizer returns the attached hiersan runtime, or nil when disabled.
func (w *World) Sanitizer() *san.Sanitizer { return w.san }

// Reset returns the world to its pristine post-NewWorld state so a
// consecutive same-spec run can reuse the whole arena: the machine (engine
// event pool, fabric resources and flow pool, L3 trackers), the KNEM
// devices, the per-rank envelope/posting pools and matching-index FIFOs,
// and the inter-node path cache (pure topology, unchanged by runs) all stay
// warm. Everything observable restarts from zero — virtual clock, event
// sequence numbers, context ids, matching order counters, traffic integrals
// — so a reset world replays a program bit-identically to a fresh world on
// a fresh machine. Reset panics (via the engine and fabric) if a run is
// still in progress.
func (w *World) Reset() {
	w.Machine.Reset()
	for _, d := range w.Knem {
		d.Reset()
	}
	for _, p := range w.procs {
		p.dp = nil
		p.posted.reset()
		p.unexpected.reset()
		p.elide = false // a run that panicked mid-phase must not leak elision
	}
	w.nextCtx = 0
	w.worldComm = nil
	w.buildNodeComms()
	w.BytesCross = 0
	if w.san != nil {
		// After Machine.Reset: the engine's drain has already routed
		// leftover events through release, under the sanitizer's eyes.
		w.san.Reset()
	}
}

// Run executes body as an SPMD program on every rank and drives the engine
// until completion. It may be called repeatedly on the same world (e.g. one
// benchmark phase per call); virtual time keeps advancing.
func (w *World) Run(body func(p *Proc)) error {
	for _, p := range w.procs {
		p := p
		p.dp = w.Machine.Eng.Spawn(p.name, func(dp *des.Proc) {
			body(p)
		})
		// The rank's home domain is its node: its resume events stage
		// under that node's queue in parallel mode.
		p.dp.SetDomain(int32(p.core.NodeID) + 1)
	}
	err := w.Machine.Eng.Run()
	if w.san != nil && err != nil {
		var dl *des.DeadlockError
		if errors.As(err, &dl) {
			// Stall autopsy: the queue drained with ranks still parked.
			// Attach every pending point-to-point operation so the report
			// names the missing message, not just the stuck ranks.
			return &StallError{Deadlock: dl, Report: w.stallReport()}
		}
	}
	return err
}

// Size returns the number of ranks.
func (w *World) Size() int { return len(w.procs) }

// Proc returns the process for a world rank.
func (w *World) Proc(rank int) *Proc { return w.procs[rank] }

// Now returns the current virtual time.
func (w *World) Now() float64 { return w.Machine.Eng.Now() }

// Rank returns the world rank.
func (p *Proc) Rank() int { return p.rank }

// Core returns the core this rank is bound to.
func (p *Proc) Core() *topology.Core { return p.core }

// World returns the owning world.
func (p *Proc) World() *World { return p.world }

// Now returns the current virtual time.
func (p *Proc) Now() float64 { return p.dp.Now() }

// Compute blocks the rank for d seconds of CPU work.
func (p *Proc) Compute(d float64) { p.dp.Sleep(d) }

// Knem returns the KNEM device of this rank's node.
func (p *Proc) Knem() *knem.Device { return p.world.Knem[p.core.NodeID] }

// DES exposes the underlying des process for advanced composition.
func (p *Proc) DES() *des.Proc { return p.dp }

// ReduceLocal applies dst = op(dst, src), charging reduction arithmetic to
// this rank's core: the flow reads two streams and writes one through the
// local memory bus at the configured reduction bandwidth. Inside a node
// phase the arithmetic may not install a fabric flow, so it charges the
// unloaded reduction rate directly — same virtual cost in both engine
// modes; a confined reduction at or above the fabric bypass cutoff panics,
// mirroring the shm.Copy bracket rule.
func (p *Proc) ReduceLocal(op buffer.Op, dtype buffer.Datatype, dst, src *buffer.Buffer) {
	n := dst.Len()
	if n > 0 {
		if p.dp.Confined() {
			if n >= smallCopyCutoff {
				panic(fmt.Sprintf("mpi: rank %d reduced %d bytes inside a node phase; confined reductions must stay under the fabric bypass cutoff (%d)",
					p.rank, n, smallCopyCutoff))
			}
			p.dp.Sleep(float64(n) / p.world.Conf.ReduceBandwidth)
		} else {
			bus := p.core.Socket.MemBus
			path := []*fabric.Resource{bus, bus, bus}
			des.Await(p.dp, func(done func()) {
				p.world.Machine.Fab.StartAfterClassed("compute", 0, float64(n), p.world.Conf.ReduceBandwidth, path, done)
			})
		}
	}
	buffer.Reduce(op, dtype, dst, src)
}
