package mpi

import (
	"hierknem/internal/des"
)

// Node-phase confinement.
//
// A rank that is about to run a node-local stretch of a hierarchical
// collective (the intra-node leader/shadow phases of the paper's Figures 3-5)
// can declare it with EnterNodePhase. Between the brackets the rank promises
// to touch only state of its own node: sub-eager-threshold messages to ranks
// of the same node, node-local barriers and blackboards, Compute, and
// nothing that loads fabric resources (which fold into the global domain).
// Under the parallel engine, windows whose runnable events all belong to
// bracketed ranks execute their nodes on separate workers — this is where
// conservative PDES actually pays — while the serial engine treats the
// brackets as pure annotation plus the exit latency, so the two modes stay
// hex-identical by construction.
//
// The promise is checked, not trusted: a bracketed rank that sends across
// nodes, posts a wildcard receive on a multi-node communicator, calls Split,
// or moves a message big enough to need the fabric gets a CausalityError
// naming the operation, never a silent divergence. The per-rank envelope and
// posting free lists need no extra locking under this discipline — they are
// per-rank heads (a sharding strictly finer than per-domain, each head in
// its own heap-allocated Proc), and every alloc/release runs either on the
// owning node's worker or under the serial coordinator.

// EnterNodePhase declares that this rank, until ExitNodePhase, communicates
// only within its own node. Node phases may not nest.
//
// Under GuardElided the entry resolves its caller against the phasesafe
// manifest's proved regions: a proved caller runs the phase with the
// per-message guards off (see guards.go), any other caller keeps them.
func (p *Proc) EnterNodePhase() {
	if p.world.elideRegion() {
		p.elide = true
		p.world.elidedPhases.Add(1)
	}
	p.dp.EnterConfined(int32(p.core.NodeID) + 1)
}

// ExitNodePhase ends the node phase. Leaving costs one network latency of
// virtual time — the engine's lookahead — in both engine modes, which is
// what lets a parallel window retire completely before the rank rejoins
// global-domain traffic.
func (p *Proc) ExitNodePhase() {
	p.elide = false
	p.dp.ExitConfined(p.world.Machine.Spec.NetLatency)
}

// InNodePhase reports whether the rank is between node-phase brackets.
func (p *Proc) InNodePhase() bool { return p.dp.Confined() }

// PhaseEligible is the bracket placement rule the collective personalities
// consult before wrapping an intra-node stretch in EnterNodePhase/
// ExitNodePhase: every member of c must live on one node (and there must be
// at least two — a singleton has nothing to confine), and messages of n
// bytes must stay under both the eager threshold (rendezvous transfers park
// the sender on global-domain fabric state) and the fabric bypass cutoff
// (larger copies install fabric flows). The rule is necessarily collective:
// a stretch may only be bracketed when every member of c — the leader
// included — brackets it, because a confined rank waking an unconfined one
// mid-phase is a causality violation the engine refuses.
func (p *Proc) PhaseEligible(c *Comm, n int64) bool {
	return c.IntraNode() && c.Size() > 1 &&
		n < p.world.Conf.EagerThreshold && n < smallCopyCutoff
}

// confineCheckSend validates an Isend issued inside a node phase: the
// destination must share the sender's node and the payload must stay under
// both the eager threshold and the fabric bypass cutoff (larger copies
// install fabric flows, which are global-domain state).
// Inside a manifest-proved region (p.elide) both checks return
// immediately: the static proof already discharged them, and they are pure
// assertions with no virtual-time effect, so skipping them cannot change
// the event log.
func (p *Proc) confineCheckSend(target *Proc, size int64) {
	if p.elide || !p.dp.Confined() {
		return
	}
	if target.core.NodeID != p.core.NodeID {
		panic(&des.CausalityError{Op: des.OpConfine, Domain: int32(target.core.NodeID) + 1, At: p.dp.Now()})
	}
	if size >= p.world.Conf.EagerThreshold || size >= smallCopyCutoff {
		// Same typed error as the cross-node case: an oversized confined
		// send couples the rank to global-domain fabric state, and callers
		// (tests, the PDES harness) key on Op rather than message text.
		panic(&des.CausalityError{Op: des.OpConfine, Domain: int32(p.core.NodeID) + 1, At: p.dp.Now()})
	}
}

// confineCheckRecv validates an Irecv issued inside a node phase: the source
// must be a rank of the sender's node, or a wildcard on a communicator
// confined to this node.
func (p *Proc) confineCheckRecv(c *Comm, srcWorld int) {
	if p.elide || !p.dp.Confined() {
		return
	}
	if srcWorld == AnySource {
		if !c.IntraNode() {
			panic(&des.CausalityError{Op: des.OpConfine, Domain: 0, At: p.dp.Now()})
		}
		return
	}
	if src := p.world.procs[srcWorld]; src.core.NodeID != p.core.NodeID {
		panic(&des.CausalityError{Op: des.OpConfine, Domain: int32(src.core.NodeID) + 1, At: p.dp.Now()})
	}
}
