package mpi

import (
	"testing"

	"hierknem/internal/topology"
)

func bbWorld(t *testing.T) *World {
	t.Helper()
	m, err := topology.Build(toySpec(1, 1, 4))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := topology.ByCore(m, 4)
	w, err := NewWorld(m, b, toyConf())
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestBBPostThenWait(t *testing.T) {
	w := bbWorld(t)
	var got any
	err := w.Run(func(p *Proc) {
		c := w.WorldComm()
		if p.Rank() == 0 {
			c.BBPost(p, "k", 42)
		} else if p.Rank() == 1 {
			got = c.BBWait(p, "k")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Fatalf("got %v", got)
	}
}

func TestBBWaitBlocksUntilPost(t *testing.T) {
	w := bbWorld(t)
	var gotAt float64
	err := w.Run(func(p *Proc) {
		c := w.WorldComm()
		switch p.Rank() {
		case 0:
			p.Compute(5)
			c.BBPost(p, "late", "v")
		case 1:
			_ = c.BBWait(p, "late")
			gotAt = p.Now()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if gotAt != 5 {
		t.Fatalf("waiter resumed at %g, want 5", gotAt)
	}
}

func TestBBMultipleWaiters(t *testing.T) {
	w := bbWorld(t)
	count := 0
	err := w.Run(func(p *Proc) {
		c := w.WorldComm()
		if p.Rank() == 0 {
			p.Compute(1)
			c.BBPost(p, "x", 7)
			return
		}
		if c.BBWait(p, "x") == 7 {
			count++
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
}

func TestBBClearRemovesKey(t *testing.T) {
	w := bbWorld(t)
	var resumed bool
	err := w.Run(func(p *Proc) {
		c := w.WorldComm()
		switch p.Rank() {
		case 0:
			c.BBPost(p, "tmp", 1)
			c.BBClear("tmp")
			// Re-post under the same key: a fresh value.
			p.Compute(2)
			c.BBPost(p, "tmp", 2)
		case 1:
			p.Compute(1) // after the clear
			if c.BBWait(p, "tmp") == 2 {
				resumed = true
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !resumed {
		t.Fatal("waiter did not see the re-posted value")
	}
}

func TestSeqAlignsAcrossRanks(t *testing.T) {
	w := bbWorld(t)
	seqs := make([][]int, 4)
	err := w.Run(func(p *Proc) {
		c := w.WorldComm()
		me := c.Rank(p)
		for i := 0; i < 3; i++ {
			seqs[me] = append(seqs[me], c.Seq(p))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 4; r++ {
		for i := 0; i < 3; i++ {
			if seqs[r][i] != i {
				t.Fatalf("rank %d call %d got seq %d", r, i, seqs[r][i])
			}
		}
	}
}

func TestSeqIndependentPerComm(t *testing.T) {
	w := bbWorld(t)
	err := w.Run(func(p *Proc) {
		c := w.WorldComm()
		sub := c.Split(p, 0, c.Rank(p))
		if c.Seq(p) != 0 || sub.Seq(p) != 0 {
			t.Error("fresh comms should start at seq 0")
		}
		if c.Seq(p) != 1 {
			t.Error("world comm seq should advance independently")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
