package mpi

// Indexed p2p matching. MPI matching semantics are posting-order FIFO: an
// arriving envelope matches the OLDEST posted receive it satisfies, and a
// posted receive matches the OLDEST unexpected envelope it satisfies. The
// seed implementation kept one flat slice per side and scanned it linearly,
// which is quadratic under fan-in (hundreds of senders targeting one rank).
//
// Both sides are now indexed by the fully-specific matching key
// (ctx, src, tag):
//
//   - posted receives live in a per-key FIFO when fully specific, plus a
//     posting-order wildcard list for receives using AnySource/AnyTag. An
//     envelope (always concrete) can match at most one specific key, so
//     matching compares the head of that key's FIFO with the first matching
//     wildcard and takes the older posting — exact posting order at O(1) +
//     O(wildcards).
//
//   - unexpected envelopes live in a per-key FIFO plus an intrusive
//     arrival-order list threaded through the envelopes themselves. A fully
//     specific receive pops its key FIFO in O(1); a wildcard receive walks
//     the arrival list, and the envelope it finds is by construction also
//     the head of its key FIFO, so both structures stay consistent without
//     lazy deletion.
//
// Determinism: the index maps are only ever accessed by key — dispatch
// order never depends on map iteration order. hierlint's determinism
// analyzer enforces this (it flags any range over a matchKey-keyed map).

// matchKey identifies one fully-specific matching class.
type matchKey struct{ ctx, src, tag int }

// fifo is a slice-backed FIFO that nils vacated slots as it pops (no stale
// tail pointers retaining matched envelopes or postings) and reuses its
// backing array once drained. Drained FIFOs stay in the index maps — keys
// recur (the same (peer, tag) classes are matched over and over in
// collectives), and retaining the empty queue makes the steady state
// allocation-free. Retention is bounded by the number of distinct keys ever
// matched.
type fifo[T any] struct {
	items []T
	head  int
}

func (q *fifo[T]) push(v T) { q.items = append(q.items, v) }

func (q *fifo[T]) pop() T {
	var zero T
	v := q.items[q.head]
	q.items[q.head] = zero
	q.head++
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
	return v
}

func (q *fifo[T]) peek() (T, bool) {
	if q.head == len(q.items) {
		var zero T
		return zero, false
	}
	return q.items[q.head], true
}

func (q *fifo[T]) len() int { return len(q.items) - q.head }

// drop empties the queue without popping each element, nilling retained
// slots so nothing is pinned; the backing array is kept for reuse.
func (q *fifo[T]) drop() {
	var zero T
	for i := q.head; i < len(q.items); i++ {
		q.items[i] = zero
	}
	q.items = q.items[:0]
	q.head = 0
}

// postIndex holds one rank's posted receives awaiting a match.
type postIndex struct {
	specific map[matchKey]*fifo[*posting] // fully-specific receives, FIFO per key
	wild     []*posting                   // receives with AnySource and/or AnyTag, posting order
	nextSeq  uint64                       // global posting order, compared across the two tiers
	count    int
}

func (ix *postIndex) add(po *posting) {
	po.seq = ix.nextSeq
	ix.nextSeq++
	ix.count++
	if po.srcWorld == AnySource || po.tag == AnyTag {
		ix.wild = append(ix.wild, po)
		return
	}
	key := matchKey{po.ctx, po.srcWorld, po.tag}
	if ix.specific == nil {
		ix.specific = make(map[matchKey]*fifo[*posting])
	}
	q := ix.specific[key]
	if q == nil {
		q = &fifo[*posting]{}
		ix.specific[key] = q
	}
	q.push(po)
}

// reset clears the index for world reuse. Drained per-key FIFOs stay in the
// map (warm for the next run) and the posting-order counter restarts at
// zero, so a reused index assigns the same seq values — hence the same
// specific-vs-wildcard tie-breaks — as a fresh one. Clearing is
// order-insensitive, so iterating the map here cannot perturb a run.
func (ix *postIndex) reset() {
	//lint:ignore determinism clearing every queue is order-insensitive
	for _, q := range ix.specific {
		q.drop()
	}
	for i := range ix.wild {
		ix.wild[i] = nil
	}
	ix.wild = ix.wild[:0]
	ix.nextSeq = 0
	ix.count = 0
}

// match removes and returns the oldest posted receive env satisfies, or nil.
func (ix *postIndex) match(env *envelope) *posting {
	var sp *posting
	var q *fifo[*posting]
	key := matchKey{env.ctx, env.srcWorld, env.tag}
	if qq := ix.specific[key]; qq != nil {
		if head, ok := qq.peek(); ok {
			sp, q = head, qq
		}
	}
	wi := -1
	for i, po := range ix.wild {
		if env.matches(po) {
			wi = i
			break
		}
	}
	switch {
	case sp == nil && wi < 0:
		return nil
	case sp != nil && (wi < 0 || sp.seq < ix.wild[wi].seq):
		q.pop()
		ix.count--
		return sp
	default:
		po := ix.wild[wi]
		copy(ix.wild[wi:], ix.wild[wi+1:])
		ix.wild[len(ix.wild)-1] = nil // no stale tail pointer
		ix.wild = ix.wild[:len(ix.wild)-1]
		ix.count--
		return po
	}
}

// envIndex holds one rank's unexpected envelopes (arrived or announced
// before a matching receive was posted).
type envIndex struct {
	specific   map[matchKey]*fifo[*envelope] // FIFO per key
	head, tail *envelope                     // intrusive arrival-order list
	count      int
}

func (ix *envIndex) add(env *envelope) {
	key := matchKey{env.ctx, env.srcWorld, env.tag}
	if ix.specific == nil {
		ix.specific = make(map[matchKey]*fifo[*envelope])
	}
	q := ix.specific[key]
	if q == nil {
		q = &fifo[*envelope]{}
		ix.specific[key] = q
	}
	q.push(env)
	env.prev = ix.tail
	env.next = nil
	if ix.tail != nil {
		ix.tail.next = env
	} else {
		ix.head = env
	}
	ix.tail = env
	ix.count++
}

// reset clears the index for world reuse, keeping drained per-key FIFOs
// warm. Entries still linked (sends never received) are dropped; their
// records are surrendered to the garbage collector rather than a pool, as a
// reset between runs is far off any hot path.
func (ix *envIndex) reset() {
	//lint:ignore determinism clearing every queue is order-insensitive
	for _, q := range ix.specific {
		q.drop()
	}
	// Unlink the arrival list so dropped envelopes do not chain to each
	// other (next/prev are reused when a record is pooled).
	for env := ix.head; env != nil; {
		next := env.next
		env.prev, env.next = nil, nil
		env = next
	}
	ix.head, ix.tail = nil, nil
	ix.count = 0
}

// match removes and returns the oldest unexpected envelope po satisfies, or
// nil.
func (ix *envIndex) match(po *posting) *envelope {
	if po.srcWorld != AnySource && po.tag != AnyTag {
		key := matchKey{po.ctx, po.srcWorld, po.tag}
		q := ix.specific[key]
		if q == nil {
			return nil
		}
		env, ok := q.peek()
		if !ok {
			return nil
		}
		ix.remove(env, q)
		return env
	}
	for env := ix.head; env != nil; env = env.next {
		if env.matches(po) {
			q := ix.specific[matchKey{env.ctx, env.srcWorld, env.tag}]
			if head, ok := q.peek(); !ok || head != env {
				panic("mpi: matching index out of sync: arrival-list envelope is not its key FIFO head")
			}
			ix.remove(env, q)
			return env
		}
	}
	return nil
}

// remove unlinks env — the head of its key FIFO — from both structures.
func (ix *envIndex) remove(env *envelope, q *fifo[*envelope]) {
	q.pop()
	if env.prev != nil {
		env.prev.next = env.next
	} else {
		ix.head = env.next
	}
	if env.next != nil {
		env.next.prev = env.prev
	} else {
		ix.tail = env.prev
	}
	env.prev, env.next = nil, nil
	ix.count--
}
