package mpi

// Stall autopsy (hiersan checker 3): when the event queue drains while
// ranks are still parked, the bare engine can only name the stuck
// processes. With the sanitizer enabled, World.Run wraps the deadlock in a
// StallError carrying every pending point-to-point operation — which rank
// waits on which (comm, peer, tag) and when it posted — so a mismatched tag
// or a missing send reads straight off the failure instead of requiring a
// debugger session against recycled records.

import (
	"fmt"
	"sort"
	"strings"

	"hierknem/internal/des"
)

// StallError is a des.DeadlockError augmented with the pending-operation
// report. errors.As(err, **des.DeadlockError) still matches through Unwrap,
// so existing deadlock handling keeps working.
type StallError struct {
	Deadlock *des.DeadlockError
	Report   string
}

func (e *StallError) Error() string {
	return e.Deadlock.Error() + "\nstall autopsy:\n" + e.Report
}

func (e *StallError) Unwrap() error { return e.Deadlock }

// stallReport lists every rank's pending receives (posting order) and
// unmatched sends (arrival order), with the virtual time each was issued.
func (w *World) stallReport() string {
	var b strings.Builder
	total := 0
	for _, p := range w.procs {
		for _, po := range p.posted.pending() {
			src := "any"
			if po.srcWorld != AnySource {
				src = fmt.Sprintf("rank%d", po.srcWorld)
			}
			tag := "any"
			if po.tag != AnyTag {
				tag = fmt.Sprintf("%d", po.tag)
			}
			fmt.Fprintf(&b, "  %s: recv pending ctx=%d src=%s tag=%s posted at t=%g\n",
				p.name, po.ctx, src, tag, po.postedAt)
			total++
		}
		for env := p.unexpected.head; env != nil; env = env.next {
			fmt.Fprintf(&b, "  %s: unmatched send from rank%d ctx=%d tag=%d size=%d sent at t=%g\n",
				p.name, env.srcWorld, env.ctx, env.tag, env.size, env.sentAt)
			total++
		}
	}
	if total == 0 {
		b.WriteString("  no pending point-to-point operations (ranks parked outside p2p)\n")
	}
	return strings.TrimRight(b.String(), "\n")
}

// pending returns the index's still-unmatched postings in posting order.
func (ix *postIndex) pending() []*posting {
	if ix.count == 0 {
		return nil
	}
	out := make([]*posting, 0, ix.count)
	//lint:ignore determinism the result is sorted by posting seq below
	for _, q := range ix.specific {
		for i := q.head; i < len(q.items); i++ {
			out = append(out, q.items[i])
		}
	}
	out = append(out, ix.wild...)
	sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	return out
}
