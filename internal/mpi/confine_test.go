package mpi

import (
	"fmt"
	"testing"

	"hierknem/internal/topology"
)

// confineWorld builds a toy world with cores ranks per node over nodes
// nodes and an explicit eager threshold, for exercising the bracket
// placement rule in isolation.
func confineWorld(t *testing.T, nodes, cores int, eager int64) *World {
	t.Helper()
	m, err := topology.Build(toySpec(nodes, 1, cores))
	if err != nil {
		t.Fatal(err)
	}
	b, err := ByCoreBinding(m, nodes*cores)
	if err != nil {
		t.Fatal(err)
	}
	conf := toyConf()
	conf.EagerThreshold = eager
	w, err := NewWorld(m, b, conf)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestPhaseEligibleBounds is the boundary-value table for PhaseEligible:
// both size guards are strict (`<`), so a message exactly at the eager
// threshold or exactly at the fabric-bypass cutoff is already ineligible —
// at those sizes the transport installs rendezvous or fabric state, which
// is global-domain. Singleton and cross-node communicators are excluded
// regardless of size. The thresholds are picked to isolate each bound:
// with eager at 8192 only the cutoff can exclude, with eager at 2048 only
// the threshold can.
func TestPhaseEligibleBounds(t *testing.T) {
	cases := []struct {
		name  string
		eager int64
		n     int64
		want  bool
	}{
		// eager 8192 > cutoff: the cutoff is the binding bound.
		{"under both", 8192, smallCopyCutoff - 1, true},
		{"at cutoff", 8192, smallCopyCutoff, false},
		{"over cutoff", 8192, smallCopyCutoff + 1, false},
		// eager 2048 < cutoff: the threshold is the binding bound.
		{"under eager", 2048, 2047, true},
		{"at eager", 2048, 2048, false},
		{"between eager and cutoff", 2048, smallCopyCutoff - 1, false},
		// eager == cutoff (the shipped default): both bounds coincide.
		{"default under", smallCopyCutoff, smallCopyCutoff - 1, true},
		{"default at", smallCopyCutoff, smallCopyCutoff, false},
		// tiny messages are always in.
		{"zero bytes", 8192, 0, true},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("%s/n=%d", tc.name, tc.n), func(t *testing.T) {
			w := confineWorld(t, 1, 2, tc.eager)
			p := w.Proc(0)
			if got := p.PhaseEligible(p.NodeComm(), tc.n); got != tc.want {
				t.Errorf("PhaseEligible(node comm, %d) with eager %d = %v, want %v",
					tc.n, tc.eager, got, tc.want)
			}
		})
	}

	t.Run("singleton comm", func(t *testing.T) {
		// One rank per node: the node comm is a singleton — nothing to
		// confine, so even a 1-byte message is ineligible.
		w := confineWorld(t, 2, 1, 8192)
		p := w.Proc(0)
		if p.PhaseEligible(p.NodeComm(), 1) {
			t.Error("PhaseEligible(singleton comm, 1) = true, want false")
		}
	})

	t.Run("cross-node comm", func(t *testing.T) {
		w := confineWorld(t, 2, 2, 8192)
		p := w.Proc(0)
		if p.PhaseEligible(w.WorldComm(), 1) {
			t.Error("PhaseEligible(multi-node comm, 1) = true, want false")
		}
	})
}
