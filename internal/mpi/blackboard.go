package mpi

// Blackboard support: collective implementations on shared-memory nodes
// exchange control values (buffer addresses, KNEM cookies) through a shared
// segment whose address is known to every local process. BBPost/BBWait model
// exactly that: a zero-copy control channel. They carry no data-movement
// cost — callers charge whatever latency their protocol implies (HierKNEM,
// for instance, pays a cookie-broadcast on lcomm).
//
// Seq provides per-process per-communicator operation counters so SPMD code
// can derive matching blackboard keys without communicating: every member
// executes the same sequence of collectives on a communicator, so the n-th
// call at one rank pairs with the n-th call at every other rank.

type bbEntry struct {
	val     any
	present bool
	poster  *Proc // last poster, for the sanitizer's sync edge
	waiters []*Proc
}

// BBPost publishes v under key on the communicator's blackboard, waking any
// BBWait-ers. Posting an existing key overwrites it.
func (c *Comm) BBPost(p *Proc, key string, v any) {
	if c.bb == nil {
		c.bb = make(map[string]*bbEntry)
	}
	e := c.bb[key]
	if e == nil {
		e = &bbEntry{}
		c.bb[key] = e
	}
	e.val = v
	e.present = true
	e.poster = p
	for _, w := range e.waiters {
		w.dp.Wake()
	}
	e.waiters = nil
}

// BBWait blocks until key is posted and returns its value.
func (c *Comm) BBWait(p *Proc, key string) any {
	if c.bb == nil {
		c.bb = make(map[string]*bbEntry)
	}
	e := c.bb[key]
	if e == nil {
		e = &bbEntry{}
		c.bb[key] = e
	}
	for !e.present {
		e.waiters = append(e.waiters, p)
		p.dp.Park()
	}
	if s := c.world.san; s != nil && e.poster != nil {
		// A blackboard read is a sync edge from the poster: the value
		// (typically a KNEM cookie) publishes the buffer it names. The
		// parked path is already covered by the poster's Wake; this also
		// covers a BBWait that finds the key present.
		s.SyncEdge(e.poster.dp.ID(), p.dp.ID())
	}
	return e.val
}

// BBClear removes a key (typically by the last reader, after a barrier).
func (c *Comm) BBClear(key string) {
	delete(c.bb, key)
}

// Seq returns an increasing per-(process, communicator) call counter,
// aligned across ranks by SPMD execution order.
func (c *Comm) Seq(p *Proc) int {
	if c.seqs == nil {
		c.seqs = make(map[int]int)
	}
	n := c.seqs[p.rank]
	c.seqs[p.rank] = n + 1
	return n
}
