package mpi

import (
	"testing"

	"hierknem/internal/buffer"
)

// These tables pin the MPI matching-order semantics the indexed queues must
// preserve: among all satisfying candidates, the OLDEST posting (for an
// arriving send) or the OLDEST arrival (for a new receive) wins — regardless
// of whether the candidate sits in a specific per-(ctx,src,tag) queue or on
// the wildcard list. Every case uses equal-size eager messages so a wildcard
// may legally match any send, and payload bytes identify which send landed
// in which posting.

// orderRecv is one posted receive: src/tag may be AnySource/AnyTag.
type orderRecv struct {
	src, tag int
}

// orderSend is one send issued by rank `from`, in table order.
type orderSend struct {
	from, tag int
}

const orderMsgSize = 64 // eager everywhere; all sends the same size

func orderPayload(id int) []byte {
	d := make([]byte, orderMsgSize)
	for i := range d {
		d[i] = byte(id)
	}
	return d
}

// runOrderCase executes the scenario on a fresh fuzz world. When preposted
// is true rank 0 posts all receives before any send is issued; otherwise
// every send is parked in the unexpected queue before the first post.
// want[i] is the send index whose payload posting i must receive.
func runOrderCase(t *testing.T, preposted bool, recvs []orderRecv, sends []orderSend, want []int) {
	t.Helper()
	if len(want) != len(recvs) {
		t.Fatalf("bad table: %d recvs but %d expectations", len(recvs), len(want))
	}
	w := fuzzWorld(t)
	bufs := make([]*buffer.Buffer, len(recvs))
	err := w.Run(func(p *Proc) {
		c := w.WorldComm()
		me := c.Rank(p)
		post := func() {
			reqs := make([]*Request, len(recvs))
			for i, r := range recvs {
				bufs[i] = buffer.NewReal(make([]byte, orderMsgSize))
				reqs[i] = p.Irecv(c, bufs[i], r.src, r.tag)
			}
			p.WaitAll(reqs...)
		}
		send := func() {
			// Sends stagger by table order so multi-sender arrival order
			// is fixed by the table, not by scheduler happenstance.
			for k, s := range sends {
				if s.from != me {
					continue
				}
				p.Compute(float64(k) * 1e-6)
				p.Send(c, buffer.NewReal(orderPayload(k)), 0, s.tag)
			}
		}
		if preposted {
			if me == 0 {
				post()
			} else {
				p.Compute(1e-3) // receives are in place before any send
				send()
			}
		} else {
			if me == 0 {
				p.Compute(1e-3) // every send arrives unexpected
				post()
			} else {
				send()
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range want {
		got := bufs[i].Data()[0]
		if got != byte(k) {
			t.Errorf("posting %d received payload %d, want send %d", i, got, k)
		}
	}
}

func TestMatchingOrder(t *testing.T) {
	cases := []struct {
		name  string
		recvs []orderRecv
		sends []orderSend
		want  []int
	}{
		{
			// The specific posting is older: an arriving send it satisfies
			// must pick it over the younger wildcard.
			name:  "specific_before_wildcard",
			recvs: []orderRecv{{1, 5}, {AnySource, AnyTag}},
			sends: []orderSend{{1, 5}, {1, 9}},
			want:  []int{0, 1},
		},
		{
			// The wildcard is older: it wins even though a specific posting
			// for exactly (src,tag) exists.
			name:  "wildcard_before_specific",
			recvs: []orderRecv{{AnySource, AnyTag}, {1, 5}},
			sends: []orderSend{{1, 5}, {1, 5}},
			want:  []int{0, 1},
		},
		{
			// Two wildcards drain sends in posting order.
			name:  "wildcards_fifo",
			recvs: []orderRecv{{AnySource, AnyTag}, {AnySource, AnyTag}},
			sends: []orderSend{{1, 3}, {1, 7}},
			want:  []int{0, 1},
		},
		{
			// Half-wild postings (AnySource with a tag, a source with
			// AnyTag) live on the wildcard list too; seniority still
			// decides against a fully specific posting.
			name:  "half_wild_seniority",
			recvs: []orderRecv{{AnySource, 5}, {1, AnyTag}, {1, 5}},
			sends: []orderSend{{1, 5}, {1, 5}, {1, 5}},
			want:  []int{0, 1, 2},
		},
		{
			// Specific postings for distinct tags are independent queues;
			// sends route by tag, not posting order.
			name:  "specific_queues_independent",
			recvs: []orderRecv{{1, 7}, {1, 3}},
			sends: []orderSend{{1, 3}, {1, 7}},
			want:  []int{1, 0},
		},
		{
			// AnySource race: two senders staggered in time; each wildcard
			// takes the oldest arrival.
			name:  "anysource_race",
			recvs: []orderRecv{{AnySource, AnyTag}, {AnySource, AnyTag}},
			sends: []orderSend{{1, 0}, {2, 1}},
			want:  []int{0, 1},
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name+"/preposted", func(t *testing.T) {
			runOrderCase(t, true, tc.recvs, tc.sends, tc.want)
		})
	}

	// The unexpected-queue mirror: sends arrive first, postings then drain
	// the arrival-ordered queue. A wildcard posting takes the oldest
	// arrival; a specific posting takes the oldest arrival of its key.
	unexpected := []struct {
		name  string
		recvs []orderRecv
		sends []orderSend
		want  []int
	}{
		{
			name:  "wildcard_takes_oldest_arrival",
			recvs: []orderRecv{{AnySource, AnyTag}, {AnySource, AnyTag}},
			sends: []orderSend{{1, 4}, {1, 6}},
			want:  []int{0, 1},
		},
		{
			name:  "specific_skips_other_keys",
			recvs: []orderRecv{{1, 6}, {1, 4}},
			sends: []orderSend{{1, 4}, {1, 6}},
			want:  []int{1, 0},
		},
		{
			name:  "wildcard_then_specific_drain",
			recvs: []orderRecv{{AnySource, AnyTag}, {1, 4}},
			sends: []orderSend{{1, 4}, {1, 4}},
			want:  []int{0, 1},
		},
		{
			name:  "anysource_arrival_race",
			recvs: []orderRecv{{AnySource, AnyTag}, {AnySource, AnyTag}},
			sends: []orderSend{{1, 0}, {2, 0}},
			want:  []int{0, 1},
		},
	}
	for _, tc := range unexpected {
		tc := tc
		t.Run(tc.name+"/unexpected", func(t *testing.T) {
			runOrderCase(t, false, tc.recvs, tc.sends, tc.want)
		})
	}
}
