package mpi

import (
	"strings"
	"testing"
)

// TestWorkersEnv pins the HIERKNEM_WORKERS contract: unset means "engine
// default", a positive integer is taken verbatim, and everything else —
// zero, negative, non-numeric — is a loud error rather than a silent clamp.
// A clamped worker count would change which hosts run phased windows without
// any trace in the configuration, so misconfiguration must fail world
// construction instead.
func TestWorkersEnv(t *testing.T) {
	cases := []struct {
		env     string
		want    int
		wantErr string // substring of the error, "" for success
	}{
		{env: "", want: 0},
		{env: "1", want: 1},
		{env: "8", want: 8},
		{env: "0", wantErr: "must be at least 1"},
		{env: "-3", wantErr: "must be at least 1"},
		{env: "abc", wantErr: "is not an integer"},
		{env: "2.5", wantErr: "is not an integer"},
		{env: " 4", wantErr: "is not an integer"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run("env="+tc.env, func(t *testing.T) {
			t.Setenv("HIERKNEM_WORKERS", tc.env)
			n, err := workersEnv()
			if tc.wantErr != "" {
				if err == nil {
					t.Fatalf("workersEnv() = %d, want error containing %q", n, tc.wantErr)
				}
				if !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("workersEnv() error %q does not contain %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("workersEnv() unexpected error: %v", err)
			}
			if n != tc.want {
				t.Fatalf("workersEnv() = %d, want %d", n, tc.want)
			}
		})
	}
}
