package hier

import (
	"testing"

	"hierknem/internal/mpi"
	"hierknem/internal/topology"
)

func testWorld(t *testing.T, nodes, cores, np int, bynode bool) *mpi.World {
	t.Helper()
	m, err := topology.Build(topology.Spec{
		Name: "hiertest", Nodes: nodes, SocketsPerNode: 1, CoresPerSocket: cores,
		MemBandwidth: 10e9, CoreCopyBandwidth: 3e9, L3Bandwidth: 6e9,
		L3Size: 12 << 20, ShmLatency: 1e-6,
		NetBandwidth: 1e9, NetLatency: 10e-6, NetFullDuplex: true,
		EagerThreshold: 4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	var b *topology.Binding
	if bynode {
		b, err = topology.ByNode(m, np)
	} else {
		b, err = topology.ByCore(m, np)
	}
	if err != nil {
		t.Fatal(err)
	}
	w, err := mpi.NewWorld(m, b, mpi.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestBuildStructure(t *testing.T) {
	w := testWorld(t, 3, 4, 12, false)
	err := w.Run(func(p *mpi.Proc) {
		c := w.WorldComm()
		h := Build(p, c, 0)
		if h.LComm.Size() != 4 {
			t.Errorf("rank %d: lcomm size %d, want 4", c.Rank(p), h.LComm.Size())
		}
		if !h.LComm.IntraNode() {
			t.Errorf("rank %d: lcomm spans nodes", c.Rank(p))
		}
		if h.NodeCount != 3 {
			t.Errorf("NodeCount = %d", h.NodeCount)
		}
		if h.IsLeader {
			if h.LLComm == nil || h.LLComm.Size() != 3 {
				t.Errorf("leader rank %d: bad llcomm", c.Rank(p))
			}
		} else if h.LLComm != nil {
			t.Errorf("non-leader rank %d has llcomm", c.Rank(p))
		}
		// Leader of node i under by-core is rank 4i.
		if h.LeaderRank != (c.Rank(p)/4)*4 {
			t.Errorf("rank %d: leader %d", c.Rank(p), h.LeaderRank)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRootPromotedToLeader(t *testing.T) {
	w := testWorld(t, 2, 4, 8, false)
	const root = 6 // node 1, not its lowest rank
	err := w.Run(func(p *mpi.Proc) {
		c := w.WorldComm()
		h := Build(p, c, root)
		if c.Rank(p) == root && !h.IsLeader {
			t.Error("root was not promoted to leader")
		}
		if c.Rank(p) == 4 && h.IsLeader {
			t.Error("rank 4 should have been displaced by the promoted root")
		}
		if p.Core().NodeID == 1 && h.LeaderRank != root {
			t.Errorf("node 1 leader = %d, want %d", h.LeaderRank, root)
		}
		if h.RootNodeIndex != 1 {
			t.Errorf("RootNodeIndex = %d, want 1", h.RootNodeIndex)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLLCommOrderedByNode(t *testing.T) {
	w := testWorld(t, 4, 2, 8, true) // bynode: leaders are ranks 0..3
	err := w.Run(func(p *mpi.Proc) {
		c := w.WorldComm()
		h := Build(p, c, 0)
		if !h.IsLeader {
			return
		}
		// llcomm rank must equal the dense node index.
		if h.LLComm.Rank(p) != h.NodeIndex {
			t.Errorf("leader on node %d has llcomm rank %d, node index %d",
				p.Core().NodeID, h.LLComm.Rank(p), h.NodeIndex)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNewCommExcludesFirstLeader(t *testing.T) {
	w := testWorld(t, 2, 4, 8, false)
	err := w.Run(func(p *mpi.Proc) {
		c := w.WorldComm()
		h := Build(p, c, 0)
		nc := h.NewComm(p)
		lrank := h.LComm.Rank(p)
		if lrank == 0 {
			if nc != nil {
				t.Errorf("1st leader got a new_comm")
			}
			return
		}
		if nc == nil {
			t.Errorf("rank %d (lrank %d) got nil new_comm", c.Rank(p), lrank)
			return
		}
		if nc.Size() != 3 {
			t.Errorf("new_comm size %d, want 3", nc.Size())
		}
		// 2nd leader (lrank 1) must be new_comm rank 0.
		if lrank == 1 && nc.Rank(p) != 0 {
			t.Errorf("2nd leader has new_comm rank %d", nc.Rank(p))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSingleRankNodes(t *testing.T) {
	w := testWorld(t, 4, 2, 4, true) // one rank per node
	err := w.Run(func(p *mpi.Proc) {
		c := w.WorldComm()
		h := Build(p, c, 0)
		if h.LComm.Size() != 1 || !h.IsLeader {
			t.Errorf("rank %d: lcomm %d leader %v", c.Rank(p), h.LComm.Size(), h.IsLeader)
		}
		if h.NewComm(p) != nil {
			t.Errorf("new_comm on single-rank node")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
