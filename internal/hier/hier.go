// Package hier builds the two-level communicator structure shared by every
// leader-based hierarchical collective in this repository: an intra-node
// communicator (lcomm) grouping the ranks of each physical node, and an
// inter-node communicator (llcomm) containing one leader per node.
//
// The leader of a node is its lowest comm rank, except on the node hosting a
// designated root rank, where the root itself is promoted to leader so
// rooted collectives (Bcast, Reduce) need no extra intra-node hop.
package hier

import (
	"hierknem/internal/mpi"
)

// Hierarchy is one process's view of the two-level structure. The Comm
// pointers are shared across member processes; the scalar fields are
// per-process.
type Hierarchy struct {
	Comm   *mpi.Comm // the original communicator
	LComm  *mpi.Comm // ranks of my node (always non-nil, may be size 1)
	LLComm *mpi.Comm // leaders; nil on non-leader processes

	IsLeader   bool
	LeaderRank int // comm rank of my node's leader
	NodeIndex  int // dense index of my node among occupied nodes
	NodeCount  int // number of occupied nodes

	// RootNodeIndex is the dense node index of the root passed to Build —
	// also the root's rank within LLComm, since Build promotes the root
	// to leader and LLComm is ordered by node id.
	RootNodeIndex int

	newComm    *mpi.Comm
	newCommSet bool
}

// Build creates the hierarchy for p on comm c, promoting root's node leader
// to root. All members of c must call Build with the same root (it is a
// collective operation: it performs two Splits). Pass root = 0 for unrooted
// collectives (Allgather).
func Build(p *mpi.Proc, c *mpi.Comm, root int) *Hierarchy {
	me := c.Rank(p)
	myNode := p.Core().NodeID

	// Intra-node communicator: color by node id. Key orders members by
	// comm rank, except the root which is forced to the front of its node.
	key := me + 1
	if me == root {
		key = 0
	}
	lcomm := c.Split(p, myNode, key)

	leader := lcomm.Rank(p) == 0
	// Leaders' communicator, ordered by node id (color 0, key = node id
	// keeps determinism; mpi.Split orders by key then rank).
	color := mpi.Undefined
	if leader {
		color = 0
	}
	llcomm := c.Split(p, color, myNode)

	h := &Hierarchy{
		Comm:     c,
		LComm:    lcomm,
		LLComm:   llcomm,
		IsLeader: leader,
	}
	h.LeaderRank = c.Rank(lcomm.Proc(0))
	// Node indexing: count occupied nodes and find mine, derived from
	// binding metadata (identical at all ranks, no communication needed).
	occupied := map[int]bool{}
	for r := 0; r < c.Size(); r++ {
		occupied[c.Proc(r).Core().NodeID] = true
	}
	h.NodeCount = len(occupied)
	denseIndex := func(node int) int {
		idx := 0
		for n := 0; n < node; n++ {
			if occupied[n] {
				idx++
			}
		}
		return idx
	}
	h.NodeIndex = denseIndex(myNode)
	h.RootNodeIndex = denseIndex(c.Proc(root).Core().NodeID)
	return h
}

// NewComm returns the communicator of all non-leader ranks on this node plus
// the second leader — the "new_comm" of the HierKNEM Reduce (Algorithm 2).
// Collective over lcomm on first use; cached on the (per-process) Hierarchy
// afterwards, so cached hierarchies split only once. On nodes with fewer
// than two ranks it returns nil for every caller.
func (h *Hierarchy) NewComm(p *mpi.Proc) *mpi.Comm {
	if h.newCommSet {
		return h.newComm
	}
	lrank := h.LComm.Rank(p)
	color := 0
	if lrank == 0 || h.LComm.Size() < 2 {
		color = mpi.Undefined
	}
	h.newComm = h.LComm.Split(p, color, lrank)
	h.newCommSet = true
	return h.newComm
}
