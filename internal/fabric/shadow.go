package fabric

import "math"

// shadowRelTol bounds the divergence allowed between per-component filling
// and the seed's one-pass global filling. The two are equal in exact
// arithmetic but accumulate `level` through different delta sequences, so
// they may differ by a few ulps.
const shadowRelTol = 1e-9

// runShadow cross-checks the incrementally maintained state after a sync:
//
//   - structural invariants (back-pointers, flow counts, class counts);
//   - the component partition against a from-scratch union-find;
//   - every flow's rate against a from-scratch refill of its component
//     (exact equality — fill is a pure function of membership, so any
//     missed-dirty bug shows up as a bit difference here);
//   - every resource's load against the sum of its flows' rates (exact);
//   - every flow's deadline against its closed-form progress (exact);
//   - all rates against the seed's one-pass global filling (within
//     shadowRelTol).
//
// It is meant to run under tests and costs O(flows × resources) per sync.
func (n *Net) runShadow() {
	// Structural invariants.
	nf := 0
	for ci, c := range n.comps {
		if c.dead {
			n.shadow("component %d is dead but listed", c.id)
			return
		}
		if c.cpos != ci {
			n.shadow("component %d cpos=%d, listed at %d", c.id, c.cpos, ci)
			return
		}
		if len(c.flows) == 0 {
			n.shadow("component %d has no flows after sync", c.id)
			return
		}
		for i, f := range c.flows {
			if f.comp != c || f.cidx != i {
				n.shadow("flow %d back-pointer broken in component %d", f.ID, c.id)
				return
			}
			for _, r := range f.Path {
				if r.comp != c {
					n.shadow("flow %d (component %d) crosses resource %q owned elsewhere", f.ID, c.id, r.Name)
					return
				}
			}
		}
		for i, r := range c.res {
			if r.comp != c || r.ridx != i {
				n.shadow("resource %q back-pointer broken in component %d", r.Name, c.id)
				return
			}
		}
		if c.timer.Stopped() {
			n.shadow("component %d has flows but no armed completion timer", c.id)
			return
		}
		nf += len(c.flows)
	}
	if nf != n.nFlows {
		n.shadow("flow count %d, components hold %d", n.nFlows, nf)
		return
	}
	counts := make(map[string]int)
	for _, c := range n.comps {
		for _, f := range c.flows {
			if f.Class != "" {
				counts[f.Class]++
			}
		}
	}
	for class, cnt := range n.classCount {
		if cnt != counts[class] {
			n.shadow("class %q count %d, flows say %d", class, cnt, counts[class])
			return
		}
	}
	for class, cnt := range counts {
		if cnt != n.classCount[class] {
			n.shadow("class %q count %d missing from bookkeeping", class, cnt)
			return
		}
	}

	// The partition, from scratch.
	idx := make(map[*Resource]int)
	var all []*Resource
	for _, c := range n.comps {
		for _, r := range c.res {
			idx[r] = len(all)
			all = append(all, r)
		}
	}
	parent := make([]int, len(all))
	for i := range parent {
		parent[i] = i
	}
	find := func(i int) int {
		for parent[i] != i {
			parent[i] = parent[parent[i]]
			i = parent[i]
		}
		return i
	}
	for _, c := range n.comps {
		for _, f := range c.flows {
			if len(f.Path) == 0 {
				continue
			}
			i0, ok := idx[f.Path[0]]
			if !ok {
				n.shadow("flow %d path resource %q not owned by any component", f.ID, f.Path[0].Name)
				return
			}
			r0 := find(i0)
			for _, r := range f.Path[1:] {
				ri, ok := idx[r]
				if !ok {
					n.shadow("flow %d path resource %q not owned by any component", f.ID, r.Name)
					return
				}
				if r1 := find(ri); r1 != r0 {
					parent[r1] = r0
				}
			}
		}
	}
	rootOwner := make(map[int]*component)
	for _, c := range n.comps {
		rooted := false
		root := -1
		for _, f := range c.flows {
			if len(f.Path) == 0 {
				continue
			}
			r := find(idx[f.Path[0]])
			if !rooted {
				rooted, root = true, r
			} else if r != root {
				n.shadow("component %d holds two disconnected flow groups", c.id)
				return
			}
		}
		if !rooted {
			if len(c.flows) != 1 || len(c.res) != 0 {
				n.shadow("pathless component %d has %d flows, %d resources", c.id, len(c.flows), len(c.res))
				return
			}
			continue
		}
		if o := rootOwner[root]; o != nil {
			n.shadow("components %d and %d share a resource and should be one", o.id, c.id)
			return
		}
		rootOwner[root] = c
		for _, r := range c.res {
			if find(idx[r]) != root {
				n.shadow("resource %q in component %d is disconnected from its flows", r.Name, c.id)
				return
			}
		}
	}

	// Exact refill per component, loads, and deadline consistency.
	for _, c := range n.comps {
		rates := shadowFill(c.flows)
		for _, f := range c.flows {
			if rates[f] != f.rate {
				n.shadow("flow %d rate %g, fresh component refill says %g", f.ID, f.rate, rates[f])
				return
			}
			if f.rate > 0 {
				if want := f.since + (f.Size-f.done0)/f.rate; f.deadline != want {
					n.shadow("flow %d deadline %g, closed form says %g", f.ID, f.deadline, want)
					return
				}
			}
		}
		loads := make(map[*Resource]float64)
		for _, f := range c.flows {
			for _, r := range f.Path {
				loads[r] += f.rate
			}
		}
		for _, r := range c.res {
			if loads[r] != r.load {
				n.shadow("resource %q load %g, flow rates sum to %g", r.Name, r.load, loads[r])
				return
			}
		}
	}

	// The seed's algorithm: one global filling pass over everything.
	var flows []*Flow
	for _, c := range n.comps {
		flows = append(flows, c.flows...)
	}
	legacy := shadowFill(flows)
	for _, f := range flows {
		if !withinRel(legacy[f], f.rate, shadowRelTol) {
			n.shadow("flow %d rate %g, legacy global filling says %g", f.ID, f.rate, legacy[f])
			return
		}
	}
}

func withinRel(a, b, tol float64) bool {
	d := math.Abs(a - b)
	if d == 0 {
		return true
	}
	m := math.Max(math.Abs(a), math.Abs(b))
	return d <= m*tol
}

// shadowFill runs progressive filling over an arbitrary flow set without
// touching any simulator state. Applied to one component's flows it mirrors
// fill bit-for-bit; applied to all active flows it reproduces the seed's
// global one-pass algorithm.
func shadowFill(flows []*Flow) map[*Flow]float64 {
	rates := make(map[*Flow]float64, len(flows))
	if len(flows) == 0 {
		return rates
	}
	type scr struct{ resid, wsum float64 }
	st := make(map[*Resource]*scr)
	var res []*Resource
	for _, f := range flows {
		for _, r := range f.Path {
			s := st[r]
			if s == nil {
				s = &scr{resid: r.Capacity}
				st[r] = s
				res = append(res, r)
			}
			s.wsum++
		}
	}
	frozen := make(map[*Flow]bool, len(flows))
	unfrozen := len(flows)
	level := 0.0
	const relEps = 1e-9
	for unfrozen > 0 {
		delta := math.Inf(1)
		for _, r := range res {
			if s := st[r]; s.wsum > relEps {
				if d := s.resid / s.wsum; d < delta {
					delta = d
				}
			}
		}
		for _, f := range flows {
			if !frozen[f] && f.RateCap > 0 {
				if d := f.RateCap - level; d < delta {
					delta = d
				}
			}
		}
		if math.IsInf(delta, 1) {
			for _, f := range flows {
				if !frozen[f] {
					frozen[f] = true
					rates[f] = level
				}
			}
			break
		}
		if delta < 0 {
			delta = 0
		}
		level += delta
		for _, r := range res {
			s := st[r]
			s.resid -= delta * s.wsum
		}
		frozeAny := false
		for _, f := range flows {
			if frozen[f] {
				continue
			}
			capped := f.RateCap > 0 && level >= f.RateCap*(1-relEps)
			saturated := false
			if !capped {
				for _, r := range f.Path {
					if st[r].resid <= r.Capacity*relEps {
						saturated = true
						break
					}
				}
			}
			if capped || saturated {
				frozen[f] = true
				rates[f] = level
				unfrozen--
				for _, r := range f.Path {
					st[r].wsum--
				}
				frozeAny = true
			}
		}
		if !frozeAny {
			for _, f := range flows {
				if !frozen[f] {
					frozen[f] = true
					rates[f] = level
					unfrozen--
				}
			}
		}
	}
	return rates
}
