package fabric

import (
	"testing"

	"hierknem/internal/des"
)

// BenchmarkManyFlowsOneLink measures the simulator's cost for the classic
// contention scenario: many flows arriving on one shared link.
func BenchmarkManyFlowsOneLink(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := des.New()
		n := NewNet(e)
		link := n.NewResource("link", 1e9)
		for f := 0; f < 256; f++ {
			n.StartAfter(float64(f)*1e-6, 1e6, 0, []*Resource{link}, nil)
		}
		if err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCrossTrafficMesh measures progressive filling with flows crossing
// multiple shared resources (the collective-benchmark hot path).
func BenchmarkCrossTrafficMesh(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := des.New()
		n := NewNet(e)
		const nodes = 32
		buses := make([]*Resource, nodes)
		nics := make([]*Resource, nodes)
		for j := range buses {
			buses[j] = n.NewResource("bus", 10e9)
			nics[j] = n.NewResource("nic", 1e9)
		}
		for f := 0; f < 512; f++ {
			src, dst := f%nodes, (f+7)%nodes
			path := []*Resource{buses[src], nics[src], nics[dst], buses[dst]}
			n.StartAfter(float64(f%16)*1e-6, 5e5, 3e9, path, nil)
		}
		if err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineEventThroughput measures raw event dispatch.
func BenchmarkEngineEventThroughput(b *testing.B) {
	e := des.New()
	count := 0
	var schedule func()
	schedule = func() {
		count++
		if count < b.N {
			e.After(1e-9, schedule)
		}
	}
	e.After(1e-9, schedule)
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkProcessHandoff measures the goroutine handoff cost per simulated
// process step — the dominant cost of large-rank-count simulations.
func BenchmarkProcessHandoff(b *testing.B) {
	e := des.New()
	e.Spawn("walker", func(p *des.Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(1e-9)
		}
	})
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}
