package fabric

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hierknem/internal/des"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSingleFlowFullBandwidth(t *testing.T) {
	e := des.New()
	n := NewNet(e)
	link := n.NewResource("link", 100) // 100 B/s
	var doneAt float64 = -1
	n.Start(1000, 0, []*Resource{link}, func() { doneAt = e.Now() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !almost(doneAt, 10, 1e-9) {
		t.Fatalf("flow completed at %g, want 10", doneAt)
	}
}

func TestTwoFlowsShareFairly(t *testing.T) {
	e := des.New()
	n := NewNet(e)
	link := n.NewResource("link", 100)
	var t1, t2 float64 = -1, -1
	n.Start(500, 0, []*Resource{link}, func() { t1 = e.Now() })
	n.Start(500, 0, []*Resource{link}, func() { t2 = e.Now() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Each gets 50 B/s: both finish at t=10.
	if !almost(t1, 10, 1e-9) || !almost(t2, 10, 1e-9) {
		t.Fatalf("completions at %g, %g; want 10, 10", t1, t2)
	}
}

func TestShortFlowReleasesBandwidth(t *testing.T) {
	e := des.New()
	n := NewNet(e)
	link := n.NewResource("link", 100)
	var tShort, tLong float64 = -1, -1
	n.Start(1000, 0, []*Resource{link}, func() { tLong = e.Now() })
	n.Start(200, 0, []*Resource{link}, func() { tShort = e.Now() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Both at 50 B/s until short finishes at t=4 with long at 200 done;
	// long then runs at 100 B/s: 800 remaining -> 8 s more -> t=12.
	if !almost(tShort, 4, 1e-9) {
		t.Fatalf("short done at %g, want 4", tShort)
	}
	if !almost(tLong, 12, 1e-9) {
		t.Fatalf("long done at %g, want 12", tLong)
	}
}

func TestRateCapHonored(t *testing.T) {
	e := des.New()
	n := NewNet(e)
	link := n.NewResource("link", 100)
	var done float64 = -1
	n.Start(100, 10, []*Resource{link}, func() { done = e.Now() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !almost(done, 10, 1e-9) {
		t.Fatalf("capped flow done at %g, want 10", done)
	}
}

func TestCappedFlowLeavesHeadroomForOthers(t *testing.T) {
	e := des.New()
	n := NewNet(e)
	link := n.NewResource("link", 100)
	var tCapped, tFree float64 = -1, -1
	n.Start(100, 20, []*Resource{link}, func() { tCapped = e.Now() }) // 20 B/s
	n.Start(400, 0, []*Resource{link}, func() { tFree = e.Now() })    // gets 80 B/s
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !almost(tCapped, 5, 1e-9) {
		t.Fatalf("capped done at %g, want 5", tCapped)
	}
	if !almost(tFree, 5, 1e-9) {
		t.Fatalf("free done at %g, want 5 (80 B/s while capped peer runs)", tFree)
	}
}

func TestMultiResourcePathBottleneck(t *testing.T) {
	e := des.New()
	n := NewNet(e)
	fast := n.NewResource("fast", 1000)
	slow := n.NewResource("slow", 10)
	var done float64 = -1
	n.Start(100, 0, []*Resource{fast, slow}, func() { done = e.Now() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !almost(done, 10, 1e-9) {
		t.Fatalf("done at %g, want 10 (limited by slow resource)", done)
	}
}

func TestPathMultiplicityDoublesConsumption(t *testing.T) {
	// A local copy that reads and writes the same memory bus appears twice
	// in the path and should run at half the bus bandwidth.
	e := des.New()
	n := NewNet(e)
	bus := n.NewResource("bus", 100)
	var done float64 = -1
	n.Start(100, 0, []*Resource{bus, bus}, func() { done = e.Now() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !almost(done, 2, 1e-9) {
		t.Fatalf("done at %g, want 2 (50 B/s effective)", done)
	}
}

func TestCrossTrafficOnSharedMiddleHop(t *testing.T) {
	e := des.New()
	n := NewNet(e)
	a := n.NewResource("a", 1000)
	b := n.NewResource("b", 1000)
	shared := n.NewResource("shared", 100)
	var ta, tb float64 = -1, -1
	n.Start(500, 0, []*Resource{a, shared}, func() { ta = e.Now() })
	n.Start(500, 0, []*Resource{b, shared}, func() { tb = e.Now() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !almost(ta, 10, 1e-9) || !almost(tb, 10, 1e-9) {
		t.Fatalf("done at %g,%g, want 10,10 (50 B/s each on shared hop)", ta, tb)
	}
}

func TestMaxMinUncongestionedFlowUnaffected(t *testing.T) {
	// Flow 1 crosses a congested resource; flow 2 is alone on another.
	e := des.New()
	n := NewNet(e)
	busy := n.NewResource("busy", 100)
	idle := n.NewResource("idle", 100)
	var tIdle float64 = -1
	for i := 0; i < 4; i++ {
		n.Start(1000, 0, []*Resource{busy}, nil)
	}
	n.Start(100, 0, []*Resource{idle}, func() { tIdle = e.Now() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !almost(tIdle, 1, 1e-9) {
		t.Fatalf("idle-path flow done at %g, want 1 (unaffected by congestion elsewhere)", tIdle)
	}
}

func TestZeroSizeFlowCompletesImmediately(t *testing.T) {
	e := des.New()
	n := NewNet(e)
	link := n.NewResource("link", 100)
	var done float64 = -1
	n.Start(0, 0, []*Resource{link}, func() { done = e.Now() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if done != 0 {
		t.Fatalf("zero-size flow done at %g, want 0", done)
	}
}

func TestStartAfterDelaysFlow(t *testing.T) {
	e := des.New()
	n := NewNet(e)
	link := n.NewResource("link", 100)
	var done float64 = -1
	n.StartAfter(5, 100, 0, []*Resource{link}, func() { done = e.Now() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !almost(done, 6, 1e-9) {
		t.Fatalf("done at %g, want 6 (5 latency + 1 transfer)", done)
	}
}

func TestAbortStopsFlow(t *testing.T) {
	e := des.New()
	n := NewNet(e)
	link := n.NewResource("link", 100)
	fired := false
	f := n.Start(1000, 0, []*Resource{link}, func() { fired = true })
	var other float64 = -1
	e.After(1, func() { f.Abort() })
	e.After(1, func() { n.Start(450, 0, []*Resource{link}, func() { other = e.Now() }) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("aborted flow fired OnComplete")
	}
	if !almost(other, 5.5, 1e-9) {
		t.Fatalf("other done at %g, want 5.5 (full bandwidth after abort)", other)
	}
}

func TestLeaderHotSpotVsDistributed(t *testing.T) {
	// The Figure-2 mechanism: K readers pulling from one leader's memory
	// bus take K times longer than K transfers spread over K buses.
	e := des.New()
	n := NewNet(e)
	leaderBus := n.NewResource("leader-bus", 100)
	const k = 8
	var lastHot float64
	for i := 0; i < k; i++ {
		n.Start(100, 0, []*Resource{leaderBus}, func() { lastHot = e.Now() })
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !almost(lastHot, k, 1e-9) {
		t.Fatalf("hot-spot completion %g, want %d", lastHot, k)
	}

	e2 := des.New()
	n2 := NewNet(e2)
	var lastCold float64
	for i := 0; i < k; i++ {
		bus := n2.NewResource("bus", 100)
		n2.Start(100, 0, []*Resource{bus}, func() { lastCold = e2.Now() })
	}
	if err := e2.Run(); err != nil {
		t.Fatal(err)
	}
	if !almost(lastCold, 1, 1e-9) {
		t.Fatalf("distributed completion %g, want 1", lastCold)
	}
}

func TestBytesServedAccounting(t *testing.T) {
	e := des.New()
	n := NewNet(e)
	link := n.NewResource("link", 100)
	n.Start(300, 0, []*Resource{link}, nil)
	n.Start(200, 0, []*Resource{link}, nil)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !almost(link.BytesServed, 500, 1e-6) {
		t.Fatalf("BytesServed = %g, want 500", link.BytesServed)
	}
	if link.Utilization(e.Now()) < 0.99 {
		t.Fatalf("utilization %g, want ~1 (link saturated throughout)", link.Utilization(e.Now()))
	}
}

func TestSequentialFlowsChainViaCallback(t *testing.T) {
	// copy-in/copy-out: second copy starts when the first completes.
	e := des.New()
	n := NewNet(e)
	bus := n.NewResource("bus", 100)
	var done float64 = -1
	n.Start(100, 0, []*Resource{bus}, func() {
		n.Start(100, 0, []*Resource{bus}, func() { done = e.Now() })
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !almost(done, 2, 1e-9) {
		t.Fatalf("chained copies done at %g, want 2", done)
	}
}

// Property: with F equal flows on one link, each finishes at F*size/cap and
// total served bytes equals F*size.
func TestQuickEqualSharing(t *testing.T) {
	f := func(nf uint8, size16 uint16) bool {
		nFlows := int(nf%16) + 1
		size := float64(size16%1000) + 1
		e := des.New()
		n := NewNet(e)
		link := n.NewResource("link", 50)
		var last float64
		for i := 0; i < nFlows; i++ {
			n.Start(size, 0, []*Resource{link}, func() { last = e.Now() })
		}
		if err := e.Run(); err != nil {
			return false
		}
		want := float64(nFlows) * size / 50
		return almost(last, want, want*1e-6) &&
			almost(link.BytesServed, float64(nFlows)*size, 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: max-min invariants on random topologies — no resource
// oversubscribed, and every flow is either capped or crosses at least one
// saturated resource (Pareto optimality of progressive filling).
func TestQuickMaxMinInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := des.New()
		n := NewNet(e)
		nRes := 2 + rng.Intn(5)
		res := make([]*Resource, nRes)
		for i := range res {
			res[i] = n.NewResource("r", 10+float64(rng.Intn(90)))
		}
		nFlows := 1 + rng.Intn(12)
		flows := make([]*Flow, nFlows)
		for i := range flows {
			pathLen := 1 + rng.Intn(3)
			path := make([]*Resource, pathLen)
			for j := range path {
				path[j] = res[rng.Intn(nRes)]
			}
			var capr float64
			if rng.Intn(3) == 0 {
				capr = 1 + float64(rng.Intn(50))
			}
			flows[i] = n.Start(1e6, capr, path, nil)
		}
		// Run one sync step only: pump the engine until rates assigned.
		// recompute happens via the coalesced event at t=0; fire it by
		// aborting all flows after checking — simplest is to inspect after
		// a tiny event.
		ok := true
		e.After(0, func() {
			const tol = 1e-6
			// Independently recompute per-resource load from the flows.
			load := make(map[*Resource]float64)
			for _, f := range flows {
				if f.Completed() {
					continue
				}
				for _, r := range f.Path {
					load[r] += f.rate
				}
			}
			for _, r := range res {
				if load[r] > r.Capacity*(1+tol) {
					ok = false
				}
			}
			for _, f := range flows {
				if f.Completed() {
					continue
				}
				if f.rate <= 0 {
					ok = false
					continue
				}
				if f.RateCap > 0 && f.rate >= f.RateCap*(1-tol) {
					continue // capped: fine
				}
				saturated := false
				for _, r := range f.Path {
					if load[r] >= r.Capacity*(1-tol) {
						saturated = true
						break
					}
				}
				if !saturated {
					ok = false
				}
			}
			for _, f := range flows {
				f.Abort()
			}
		})
		if err := e.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: conservation — total BytesServed on a single shared link equals
// the sum of all flow sizes regardless of arrival pattern.
func TestQuickConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := des.New()
		n := NewNet(e)
		link := n.NewResource("link", 100)
		total := 0.0
		nFlows := 1 + rng.Intn(10)
		for i := 0; i < nFlows; i++ {
			size := float64(1 + rng.Intn(500))
			delay := float64(rng.Intn(10))
			total += size
			n.StartAfter(delay, size, 0, []*Resource{link}, nil)
		}
		if err := e.Run(); err != nil {
			return false
		}
		return almost(link.BytesServed, total, 1e-3*total+1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
