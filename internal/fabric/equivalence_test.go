package fabric

import (
	"fmt"
	"math/rand"
	"strconv"
	"testing"

	"hierknem/internal/des"
)

// These tests drive the fabric with collective-shaped workloads (the tree
// broadcast of Figure 3, the ring pipeline of Figure 5, and a Table II-style
// random churn) under ModeIncremental and ModeGlobal and require the two
// runs to be indistinguishable in virtual time: every completion fires at
// the bit-identical instant, in the same order, with the same rates. The
// shadow checker is armed in both runs, so every sync is also cross-checked
// against a from-scratch partition and refill.

// ts renders a float64 exactly (hex mantissa), so string comparison of the
// event logs is bit comparison of the times.
func ts(x float64) string { return strconv.FormatFloat(x, 'x', -1, 64) }

// testCluster is a hand-built fabric shaped like the simulator's clusters:
// per node a memory bus and a full-duplex NIC, plus an optional shared
// backplane (Stremi and Parapluie have none, which is what makes distinct
// node pairs distinct components).
type testCluster struct {
	eng         *des.Engine
	net         *Net
	mem, tx, rx []*Resource
	bp          *Resource
}

func newTestCluster(t testing.TB, mode Mode, nodes int, backplane bool) *testCluster {
	eng := des.New()
	net := NewNet(eng)
	net.SetMode(mode)
	net.EnableShadow(func(format string, args ...any) {
		t.Fatalf("shadow mismatch in %v mode: %s", mode, fmt.Sprintf(format, args...))
	})
	c := &testCluster{eng: eng, net: net}
	for i := 0; i < nodes; i++ {
		c.mem = append(c.mem, net.NewResource(fmt.Sprintf("n%d/mem", i), 8e9))
		c.tx = append(c.tx, net.NewResource(fmt.Sprintf("n%d/nic-tx", i), 1.25e9))
		c.rx = append(c.rx, net.NewResource(fmt.Sprintf("n%d/nic-rx", i), 1.25e9))
	}
	if backplane {
		c.bp = net.NewResource("backplane", 5e9)
	}
	return c
}

func (c *testCluster) netPath(src, dst int) []*Resource {
	if c.bp != nil {
		return []*Resource{c.tx[src], c.bp, c.rx[dst]}
	}
	return []*Resource{c.tx[src], c.rx[dst]}
}

type recorder func(format string, args ...any)

// runWorkload builds a cluster in the given mode, lets body schedule its
// flows, runs to completion and returns the event log and allocator stats.
func runWorkload(t *testing.T, mode Mode, nodes int, backplane bool,
	body func(c *testCluster, rec recorder)) ([]string, RecomputeStats, *testCluster) {
	t.Helper()
	c := newTestCluster(t, mode, nodes, backplane)
	var events []string
	rec := func(format string, args ...any) {
		events = append(events, fmt.Sprintf(format, args...))
	}
	body(c, rec)
	if err := c.eng.Run(); err != nil {
		t.Fatalf("%v mode: %v", mode, err)
	}
	return events, c.net.Stats(), c
}

// requireEquivalent runs body under both modes and asserts bit-identical
// virtual behavior plus tolerance-checked byte integrals.
func requireEquivalent(t *testing.T, nodes int, backplane bool,
	body func(c *testCluster, rec recorder)) (inc, glob RecomputeStats) {
	t.Helper()
	evInc, stInc, cInc := runWorkload(t, ModeIncremental, nodes, backplane, body)
	evGlob, stGlob, cGlob := runWorkload(t, ModeGlobal, nodes, backplane, body)

	if len(evInc) == 0 {
		t.Fatal("workload recorded no events")
	}
	if len(evInc) != len(evGlob) {
		t.Fatalf("event count differs: incremental %d, global %d", len(evInc), len(evGlob))
	}
	for i := range evInc {
		if evInc[i] != evGlob[i] {
			t.Fatalf("event %d differs:\n  incremental: %s\n  global:      %s", i, evInc[i], evGlob[i])
		}
	}
	if a, b := cInc.eng.Now(), cGlob.eng.Now(); a != b {
		t.Fatalf("finish time differs: incremental %s, global %s", ts(a), ts(b))
	}
	if a, b := cInc.eng.Processed(), cGlob.eng.Processed(); a != b {
		t.Fatalf("processed event count differs: incremental %d, global %d", a, b)
	}
	if stInc.Completions != stGlob.Completions {
		t.Fatalf("completions differ: incremental %d, global %d", stInc.Completions, stGlob.Completions)
	}

	// Class-activity integrals advance at attach/detach instants, which are
	// identical between modes, so they must match bit-for-bit.
	for _, class := range []string{"net", "copy"} {
		if a, b := cInc.net.ClassBusyTime(class), cGlob.net.ClassBusyTime(class); a != b {
			t.Fatalf("class %q busy time differs: incremental %s, global %s", class, ts(a), ts(b))
		}
	}
	if a, b := cInc.net.OverlapTime("net", "copy"), cGlob.net.OverlapTime("net", "copy"); a != b {
		t.Fatalf("overlap time differs: incremental %s, global %s", ts(a), ts(b))
	}

	// Byte and busy-time integrals telescope over different sub-intervals
	// (ModeGlobal integrates every resource at every sync), so they agree
	// only up to rounding.
	ri, rg := cInc.net.Resources(), cGlob.net.Resources()
	if len(ri) != len(rg) {
		t.Fatalf("resource count differs: %d vs %d", len(ri), len(rg))
	}
	for i := range ri {
		if ri[i].Name != rg[i].Name {
			t.Fatalf("resource order differs at %d: %q vs %q", i, ri[i].Name, rg[i].Name)
		}
		if !withinRel(ri[i].BytesServed, rg[i].BytesServed, 1e-9) {
			t.Fatalf("resource %q bytes served differ: incremental %g, global %g",
				ri[i].Name, ri[i].BytesServed, rg[i].BytesServed)
		}
		if !withinRel(ri[i].BusyTime, rg[i].BusyTime, 1e-9) {
			t.Fatalf("resource %q busy time differs: incremental %g, global %g",
				ri[i].Name, ri[i].BusyTime, rg[i].BusyTime)
		}
	}

	if stInc.Syncs == 0 || stGlob.Syncs == 0 {
		t.Fatal("shadow never ran: no syncs recorded")
	}
	if stInc.ResourceVisits > stGlob.ResourceVisits {
		t.Fatalf("incremental mode visited more resources (%d) than global (%d)",
			stInc.ResourceVisits, stGlob.ResourceVisits)
	}
	return stInc, stGlob
}

// binomialChildren returns r's children in a binomial broadcast tree rooted
// at 0: r + 2^j for every 2^j above r's highest set bit.
func binomialChildren(r, n int) []int {
	hsb := 0
	for m := 1; m <= r; m <<= 1 {
		if r&m != 0 {
			hsb = m
		}
	}
	start := 1
	if hsb > 0 {
		start = hsb << 1
	}
	var ch []int
	for m := start; r+m < n; m <<= 1 {
		ch = append(ch, r+m)
	}
	return ch
}

// treeBcast is the Figure 3 shape: a segmented binomial-tree broadcast where
// every received segment is unpacked through the receiver's memory bus while
// the NIC forwards the next one.
func treeBcast(nsegs int, segSize float64) func(c *testCluster, rec recorder) {
	return func(c *testCluster, rec recorder) {
		n := len(c.mem)
		have := make([]int, n) // prefix count of segments held
		have[0] = nsegs
		type link struct {
			next int
			busy bool
		}
		links := map[[2]int]*link{}
		var try func(p, ch int)
		try = func(p, ch int) {
			key := [2]int{p, ch}
			lk := links[key]
			if lk == nil {
				lk = &link{}
				links[key] = lk
			}
			if lk.busy || lk.next >= nsegs || lk.next >= have[p] {
				return
			}
			s := lk.next
			lk.busy = true
			c.net.StartClassed("net", segSize, 0, c.netPath(p, ch), func() {
				lk.busy = false
				lk.next++
				rec("net %d->%d seg=%d t=%s", p, ch, s, ts(c.eng.Now()))
				c.net.StartClassed("copy", segSize, 0, []*Resource{c.mem[ch]}, func() {
					rec("copy node=%d seg=%d t=%s", ch, s, ts(c.eng.Now()))
					have[ch]++
					for _, g := range binomialChildren(ch, n) {
						try(ch, g)
					}
				})
				try(p, ch)
			})
		}
		for _, ch := range binomialChildren(0, n) {
			try(0, ch)
		}
	}
}

// ringPipeline is the Figure 5 shape: segments stream down a node chain,
// each hop's NIC transfer chased by a local unpack copy.
func ringPipeline(nsegs int, segSize float64) func(c *testCluster, rec recorder) {
	return func(c *testCluster, rec recorder) {
		n := len(c.mem)
		have := make([]int, n)
		have[0] = nsegs
		sending := make([]bool, n)
		sent := make([]int, n)
		var pump func(i int)
		pump = func(i int) {
			if i >= n-1 || sending[i] || sent[i] >= nsegs || sent[i] >= have[i] {
				return
			}
			s := sent[i]
			sending[i] = true
			sent[i]++
			c.net.StartClassed("net", segSize, 0, c.netPath(i, i+1), func() {
				rec("net %d->%d seg=%d t=%s", i, i+1, s, ts(c.eng.Now()))
				sending[i] = false
				c.net.StartClassed("copy", segSize, 0, []*Resource{c.mem[i+1]}, func() {
					rec("copy node=%d seg=%d t=%s", i+1, s, ts(c.eng.Now()))
					have[i+1]++
					pump(i + 1)
				})
				pump(i)
			})
		}
		pump(0)
	}
}

// randomChurn is the Table II shape: an application-like mix of intra-node
// copies and inter-node transfers with staggered starts and a few aborts.
func randomChurn(seed int64, flows int) func(c *testCluster, rec recorder) {
	return func(c *testCluster, rec recorder) {
		rng := rand.New(rand.NewSource(seed))
		n := len(c.mem)
		for k := 0; k < flows; k++ {
			k := k
			at := rng.Float64() * 0.02
			size := float64(1<<10 + rng.Intn(1<<20))
			var path []*Resource
			class := "net"
			if rng.Intn(3) == 0 {
				class = "copy"
				path = []*Resource{c.mem[rng.Intn(n)]}
			} else {
				i := rng.Intn(n)
				j := rng.Intn(n - 1)
				if j >= i {
					j++
				}
				path = c.netPath(i, j)
			}
			abort := k%17 == 0
			c.eng.At(at, func() {
				f := c.net.StartClassed(class, size, 0, path, func() {
					rec("done k=%d t=%s", k, ts(c.eng.Now()))
				})
				if abort {
					c.eng.After(0.0004, func() {
						f.Abort()
						rec("abort k=%d done=%s t=%s", k, ts(f.Done()), ts(c.eng.Now()))
					})
				}
			})
		}
	}
}

func TestEquivalenceFig3TreeBcast(t *testing.T) {
	// No backplane (the paper's clusters have none): distinct branches of
	// the tree are distinct components, the incremental win's source.
	inc, glob := requireEquivalent(t, 16, false, treeBcast(4, 512<<10))
	t.Logf("incremental: %v", inc)
	t.Logf("global:      %v", glob)
}

func TestEquivalenceFig3TreeBcastBackplane(t *testing.T) {
	// With a shared backplane every transfer couples: the incremental mode
	// degenerates to one big component but must still match exactly.
	requireEquivalent(t, 8, true, treeBcast(3, 256<<10))
}

func TestEquivalenceFig5RingPipeline(t *testing.T) {
	inc, glob := requireEquivalent(t, 12, false, ringPipeline(6, 256<<10))
	if glob.ResourceVisits < 2*inc.ResourceVisits {
		t.Errorf("expected >=2x resource-visit savings on the ring: incremental %d, global %d",
			inc.ResourceVisits, glob.ResourceVisits)
	}
}

func TestEquivalenceTable2Churn(t *testing.T) {
	for _, seed := range []int64{1, 42, 20120521} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			inc, glob := requireEquivalent(t, 8, false, randomChurn(seed, 240))
			if glob.ResourceVisits < 2*inc.ResourceVisits {
				t.Errorf("expected >=2x resource-visit savings on churn: incremental %d, global %d",
					inc.ResourceVisits, glob.ResourceVisits)
			}
		})
	}
}

// TestShadowCatchesCorruption makes sure the shadow checker is not
// vacuously green: corrupt a live rate behind the allocator's back and the
// next sync must report it.
func TestShadowCatchesCorruption(t *testing.T) {
	eng := des.New()
	net := NewNet(eng)
	caught := 0
	net.EnableShadow(func(format string, args ...any) { caught++ })
	r := net.NewResource("wire", 1e9)
	other := net.NewResource("other-wire", 1e9)
	var f *Flow
	f = net.Start(1e6, 0, []*Resource{r}, nil)
	eng.After(1e-4, func() {
		f.rate *= 2 // simulated missed-dirty bug
		// Trigger the next sync from a disjoint component, so nothing
		// legitimately refills (and thereby repairs) the corrupted one.
		net.Start(1e6, 0, []*Resource{other}, nil)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if caught == 0 {
		t.Fatal("shadow checker missed a corrupted rate")
	}
}

// TestModeString pins the mode names used in benchmark output.
func TestModeString(t *testing.T) {
	if ModeIncremental.String() != "incremental" || ModeGlobal.String() != "global" {
		t.Fatalf("mode names changed: %v, %v", ModeIncremental, ModeGlobal)
	}
	if got := Mode(99).String(); got == "" {
		t.Fatal("unknown mode must still render")
	}
}
