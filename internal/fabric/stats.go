package fabric

import "fmt"

// RecomputeStats counts the work the allocator performed. The headline
// number for the incremental-vs-global comparison is ResourceVisits: every
// time the allocator reads or writes one resource during progressive
// filling or re-partitioning. ModeGlobal revisits every resource on every
// sync; ModeIncremental only visits the component(s) an event touched.
type RecomputeStats struct {
	Syncs          uint64 // coalesced recompute passes
	Fills          uint64 // per-component progressive-filling runs
	Rounds         uint64 // filling iterations (freeze rounds) across fills
	ResourceVisits uint64 // resource touches during fill + repartition
	FlowVisits     uint64 // flow touches during fill
	Merges         uint64 // component merges (flow bridged components)
	Splits         uint64 // component splits (removal fragmented one)
	Repartitions   uint64 // union-find passes over a dirty component
	Completions    uint64 // flows that finished normally
	Components     int    // current component count (filled in by Stats)
	PeakComponents int    // high-water mark of concurrent components
}

// addFill merges the fill-phase counters a worker accumulated privately
// during a parallel fill. Only the counters fillInto touches are summed.
func (s *RecomputeStats) addFill(o *RecomputeStats) {
	s.Fills += o.Fills
	s.Rounds += o.Rounds
	s.ResourceVisits += o.ResourceVisits
	s.FlowVisits += o.FlowVisits
}

func (s RecomputeStats) String() string {
	return fmt.Sprintf(
		"syncs=%d fills=%d rounds=%d res-visits=%d flow-visits=%d merges=%d splits=%d repartitions=%d completions=%d comps=%d peak=%d",
		s.Syncs, s.Fills, s.Rounds, s.ResourceVisits, s.FlowVisits,
		s.Merges, s.Splits, s.Repartitions, s.Completions,
		s.Components, s.PeakComponents)
}
