package fabric

import (
	"sync/atomic"

	"hierknem/internal/des"
)

// parFillMin is the minimum number of refill-pending components before the
// phased sync fans progressive filling out to worker goroutines; below it
// the goroutine round-trips cost more than the fills.
const parFillMin = 4

// parFillMaxProcs caps the fill worker count: beyond a handful of workers
// the pass is memory-bound on the shared flow/resource arrays.
const parFillMaxProcs = 8

// fillParallel runs progressive filling over the collected components on the
// engine's shared worker fan-out (des.RunOnWorkers — the same primitive that
// executes in-window phases, so the fill barrier is the one barrier
// discipline the engine has). Each component is filled by exactly one worker
// (claimed via the atomic cursor), filling touches only that component's
// flows and resources (the confinement the confine analyzer proves), and
// each worker accumulates its counters into a private RecomputeStats merged
// after the barrier — the counters are commutative sums, so the totals are
// identical to a serial pass, and rates are identical because filling is a
// pure per-component function.
func (n *Net) fillParallel(comps []*component) {
	workers := n.eng.Workers()
	if workers > parFillMaxProcs {
		workers = parFillMaxProcs
	}
	if workers > len(comps) {
		workers = len(comps)
	}
	if workers < 1 {
		workers = 1
	}
	stats := n.fillStatScr
	if cap(stats) < workers {
		stats = make([]RecomputeStats, workers)
		n.fillStatScr = stats
	}
	stats = stats[:workers]
	var cursor atomic.Int64
	des.RunOnWorkers(workers, func(w int) {
		st := &stats[w]
		*st = RecomputeStats{}
		for {
			i := int(cursor.Add(1)) - 1
			if i >= len(comps) {
				return
			}
			n.fillInto(comps[i], st)
		}
	})
	for w := range stats {
		n.stats.addFill(&stats[w])
	}
}
