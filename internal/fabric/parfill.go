package fabric

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// parFillMin is the minimum number of refill-pending components before the
// phased sync fans progressive filling out to worker goroutines; below it
// the goroutine round-trips cost more than the fills.
const parFillMin = 4

// parFillMaxProcs caps the fill worker count: beyond a handful of workers
// the pass is memory-bound on the shared flow/resource arrays.
const parFillMaxProcs = 8

// fillParallel runs progressive filling over the collected components on
// worker goroutines. Each component is filled by exactly one worker
// (claimed via the atomic cursor), filling touches only that component's
// flows and resources (the confinement the confine analyzer proves), and
// each worker accumulates its counters into a private RecomputeStats merged
// after the barrier — the counters are commutative sums, so the totals are
// identical to a serial pass, and rates are identical because filling is a
// pure per-component function.
func (n *Net) fillParallel(comps []*component) {
	workers := runtime.GOMAXPROCS(0)
	if workers < 2 {
		workers = 2
	}
	if workers > parFillMaxProcs {
		workers = parFillMaxProcs
	}
	if workers > len(comps) {
		workers = len(comps)
	}
	stats := n.fillStatScr
	if cap(stats) < workers {
		stats = make([]RecomputeStats, workers)
		n.fillStatScr = stats
	}
	stats = stats[:workers]
	var (
		cursor atomic.Int64
		wg     sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		st := &stats[w]
		*st = RecomputeStats{}
		//hierflow:serial fill workers own disjoint components (claimed via the atomic cursor) and private stats slots; the spawner only resumes after wg.Wait, so no flow or resource is shared between contexts
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(comps) {
					return
				}
				n.fillInto(comps[i], st)
			}
		}()
	}
	wg.Wait()
	for w := range stats {
		n.stats.addFill(&stats[w])
	}
}
