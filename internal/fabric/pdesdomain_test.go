package fabric

import (
	"testing"

	"hierknem/internal/des"
)

// TestComponentDomainFolding pins the PDES domain algebra: a component
// entirely inside one domain carries that domain, a flow bridging domains
// collapses the merged component to the global domain 0, and a split
// re-folds each part's domain from its surviving resources.
func TestComponentDomainFolding(t *testing.T) {
	e := des.New()
	n := NewNet(e)
	a1 := n.NewResource("n1/a", 100)
	a2 := n.NewResource("n1/b", 100)
	b1 := n.NewResource("n2/a", 100)
	a1.SetDomain(1)
	a2.SetDomain(1)
	b1.SetDomain(2)
	if a1.Domain() != 1 || b1.Domain() != 2 {
		t.Fatal("SetDomain/Domain roundtrip failed")
	}

	// Phase 1: one flow per node — two components, each in its own domain.
	n.Start(1000, 0, []*Resource{a1, a2}, nil)
	n.Start(1000, 0, []*Resource{b1}, nil)
	if got := a1.comp.domTag(); got != 1 {
		t.Fatalf("intra-domain component folded to %d, want 1", got)
	}
	if got := b1.comp.domTag(); got != 2 {
		t.Fatalf("intra-domain component folded to %d, want 2", got)
	}
	if a1.comp == b1.comp {
		t.Fatal("disjoint flows merged")
	}

	// Phase 2: a bridging flow merges the components; the merge must bump
	// the epoch and collapse the domain to global.
	epoch0 := n.Epoch()
	bridge := n.Start(1e6, 0, []*Resource{a2, b1}, nil)
	if a1.comp != b1.comp {
		t.Fatal("bridging flow did not merge components")
	}
	if got := a1.comp.domTag(); got != 0 {
		t.Fatalf("cross-domain component folded to %d, want 0 (global)", got)
	}
	if n.Epoch() == epoch0 {
		t.Fatal("merge did not bump the component-structure epoch")
	}

	// Phase 3: drop the bridge; the lazy split at the next sync must
	// re-fold each surviving part to its own domain and bump the epoch.
	// (Force the sync directly — running to completion would release the
	// components before we can inspect them.)
	epoch1 := n.Epoch()
	bridge.Abort()
	n.sync()
	if n.Epoch() == epoch1 {
		t.Fatal("split did not bump the component-structure epoch")
	}
	if a1.comp == nil || b1.comp == nil {
		t.Fatal("flows completed prematurely")
	}
	if a1.comp == b1.comp {
		t.Fatal("split did not separate the domains")
	}
	if got := a1.comp.domTag(); got != 1 {
		t.Fatalf("post-split domain %d, want 1", got)
	}
	if got := b1.comp.domTag(); got != 2 {
		t.Fatalf("post-split domain %d, want 2", got)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestPhasedSyncParallelFillEquivalence drives many disjoint per-domain
// components through completion churn in both engine modes and requires
// identical completion times and identical recompute counters — the
// parallel fill fans the same pure per-component work out to goroutines, so
// nothing observable may change.
func TestPhasedSyncParallelFillEquivalence(t *testing.T) {
	type outcome struct {
		times []float64
		stats RecomputeStats
	}
	run := func(parallel bool) outcome {
		e := des.New()
		n := NewNet(e)
		const doms = 9
		if parallel {
			e.SetPartition(staticPartition{doms: doms, look: 0.5})
			e.SetMode(des.ModeParallel)
		}
		times := make([]float64, 0, doms*3)
		for d := 0; d < doms; d++ {
			r1 := n.NewResource("a", 100)
			r2 := n.NewResource("b", 100)
			r1.SetDomain(int32(d) + 1)
			r2.SetDomain(int32(d) + 1)
			for k := 0; k < 3; k++ {
				size := float64(400 + 100*k + 10*d)
				n.Start(size, 0, []*Resource{r1, r2}, func() {
					times = append(times, e.Now())
				})
			}
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		st := n.Stats()
		return outcome{times: times, stats: st}
	}
	serial := run(false)
	par := run(true)
	if len(serial.times) != len(par.times) {
		t.Fatalf("completion count %d vs %d", len(serial.times), len(par.times))
	}
	for i := range serial.times {
		if serial.times[i] != par.times[i] {
			t.Fatalf("completion %d: %x (serial) vs %x (parallel)", i, serial.times[i], par.times[i])
		}
	}
	if serial.stats != par.stats {
		t.Fatalf("recompute stats diverged:\nserial   %v\nparallel %v", serial.stats, par.stats)
	}
}

type staticPartition struct {
	doms int
	look float64
}

func (s staticPartition) Domains() int       { return s.doms }
func (s staticPartition) Lookahead() float64 { return s.look }
func (s staticPartition) Epoch() uint64      { return 0 }
