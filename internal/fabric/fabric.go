// Package fabric is a flow-level ("fluid") simulator for shared transport
// resources: network links, NICs, memory buses and per-core copy engines.
//
// A Flow moves a number of bytes across an ordered multiset of Resources.
// At every instant, active flows share each resource max-min fairly: rates
// are computed by progressive filling, honoring per-flow rate caps and
// resource multiplicity (a flow whose path lists a resource twice — e.g. a
// local memory copy that both reads and writes the same bus — consumes twice
// its rate there). Completions are delivered as events on the owning
// des.Engine, so fabric transfers compose with any other simulated activity.
//
// The model captures the first-order performance effects the HierKNEM paper
// is about: NIC serialization when many cores on one node talk to the
// network, the memory-bus hot spot on a leader core serving many one-sided
// copies, and the overlap (or lack of it) between intra-node copies and
// inter-node transfers.
//
// # Incremental recomputation
//
// Max-min rates only couple flows that share a resource (directly or
// transitively), so the active flows and resources partition into connected
// components, and the unique max-min allocation of the whole fabric is the
// union of the per-component allocations. The Net maintains that partition
// incrementally: starting a flow merges the components its path touches,
// finishing or aborting one marks its component for a local re-partition,
// and each event re-runs progressive filling only over the affected
// component(s). Untouched components keep their rates and their already
// armed completion timers.
//
// Three invariants make the incremental mode *bit-identical* (in virtual
// time) to recomputing everything on every event, not merely close:
//
//  1. Progressive filling is a pure function of a component's membership
//     (flow paths and rate caps), insensitive to iteration order, so a
//     refill of an untouched component reproduces its rates exactly.
//  2. A flow's progress is closed-form — done(t) = done0 + rate·(t−since)
//     — and (done0, since) advance only when the flow's rate changes, so
//     how often a component is visited cannot perturb its arithmetic.
//  3. Completion deadlines are absolute times computed once per rate
//     change, and a component's timer is left untouched when its earliest
//     deadline is unchanged.
//
// ModeGlobal re-derives the partition and refills every component on every
// event; by the invariants above it produces the same event sequence as
// ModeIncremental and serves as the reference for the equivalence tests.
// The shadow checker (see shadow.go) additionally cross-checks every sync
// against a from-scratch partition and against the seed's one-pass global
// filling algorithm.
//
// The implementation is allocation-light: flows and resources live in flat
// per-component slices and the progressive-filling pass reuses scratch state
// on the resources themselves, because benchmark workloads recompute
// allocations tens of thousands of times.
package fabric

import (
	"fmt"
	"math"
	"sort"

	"hierknem/internal/des"
	"hierknem/internal/san"
)

// Resource is a capacity-limited transport element (link direction, NIC
// queue, memory bus, copy engine). Create resources with Net.NewResource.
type Resource struct {
	Name     string
	Capacity float64 // bytes per second

	load  float64 // current aggregate consumption, bytes/s
	since float64 // virtual time load was last integrated

	// BytesServed integrates load over time: total bytes that crossed
	// this resource. BusyTime integrates the saturation fraction. Both
	// are integrated lazily — up to date whenever the resource is idle
	// (and therefore at end of run); mid-run readers see values as of
	// the owning component's last recompute.
	BytesServed float64
	BusyTime    float64

	comp *component // owning component; nil while idle
	ridx int        // position in comp.res

	// recompute scratch
	resid float64
	wsum  float64
	uf    int32 // union-find scratch for component splitting

	// dom is the PDES domain this resource belongs to (its topology
	// node; 0 = global, e.g. a switch backplane). Components fold member
	// resources' domains to tag their completion timers; a component
	// spanning several domains collapses to the global domain. Set once
	// at build time, so it survives Reset.
	dom int32
}

// SetDomain assigns the resource's PDES domain (0 = global).
func (r *Resource) SetDomain(d int32) { r.dom = d }

// Domain returns the resource's PDES domain.
func (r *Resource) Domain() int32 { return r.dom }

// Load returns the resource's current aggregate consumption in bytes/s.
func (r *Resource) Load() float64 { return r.load }

// Utilization returns BytesServed normalized by capacity*elapsed, i.e. the
// average fraction of the resource's capacity used over [0, now].
func (r *Resource) Utilization(elapsed float64) float64 {
	if elapsed <= 0 {
		return 0
	}
	return r.BytesServed / (r.Capacity * elapsed)
}

// integrate accrues BytesServed/BusyTime at the current load up to now.
func (r *Resource) integrate(now float64) {
	if dt := now - r.since; dt > 0 {
		r.BytesServed += r.load * dt
		r.BusyTime += (r.load / r.Capacity) * dt
	}
	r.since = now
}

// Flow is an in-flight transfer.
type Flow struct {
	ID      uint64
	Size    float64 // bytes
	RateCap float64 // bytes/s; 0 means unlimited
	Path    []*Resource
	// Class labels the traffic kind ("net", "copy", "compute", ...) for
	// the overlap accounting; empty means unclassified. It is fixed at
	// Start time (use StartClassed): the Net keeps per-class counts.
	Class string

	OnComplete func()

	owner *Net
	comp  *component // owning component; nil when detached
	cidx  int        // position in comp.flows

	// Progress is closed-form: done(t) = done0 + rate·(t−since). The
	// pair (done0, since) is re-anchored only when rate changes, and
	// deadline (the absolute completion time) is computed at the same
	// moment — so progress arithmetic is independent of how often the
	// owning component is recomputed.
	done0    float64
	since    float64
	rate     float64
	deadline float64

	prevRate  float64 // fill scratch: rate before the current refill
	frozen    bool    // fill scratch
	completed bool
	aborted   bool

	// pooled marks records created by the void-returning StartAfter entry
	// points: no caller can retain a handle to them, so the record returns
	// to the Net's free list at completion. installFn is built once per
	// record lifetime and survives recycling, so steady-state flow startup
	// allocates nothing. shard pins the record to the free-list shard it
	// was drawn from: alloc and recycle often run under different ambient
	// domains (StartAfter fires under the sender's event, completion under
	// the fabric's shared timer), and releasing to the ambient shard would
	// migrate records between shards until every shard minted its own
	// working set.
	pooled    bool
	shard     uint32
	installFn func()

	// pathBuf backs Path for StartAfterPath2 flows, so the ubiquitous
	// two-resource copy path (read side, write side) needs no per-call
	// slice. Only the record's own entry point writes it; externally
	// provided paths are never copied in, so shared cached slices (e.g.
	// the MPI layer's net paths) stay aliased, not duplicated.
	pathBuf [2]*Resource
}

// Rate returns the flow's current allocated rate in bytes/s.
func (f *Flow) Rate() float64 { return f.rate }

// Done returns the bytes transferred so far.
func (f *Flow) Done() float64 {
	if f.owner == nil || f.comp == nil {
		return f.done0
	}
	return f.doneAt(f.owner.eng.Now())
}

func (f *Flow) doneAt(now float64) float64 {
	d := f.done0 + f.rate*(now-f.since)
	if d > f.Size {
		d = f.Size
	}
	return d
}

// Completed reports whether the flow finished normally.
func (f *Flow) Completed() bool { return f.completed }

// Mode selects how the Net recomputes allocations after each event.
type Mode int

const (
	// ModeIncremental (the default) recomputes only the connected
	// component(s) touched by the event.
	ModeIncremental Mode = iota
	// ModeGlobal re-partitions and refills every component on every
	// event — the reference the equivalence tests compare against.
	ModeGlobal
)

func (m Mode) String() string {
	if m == ModeGlobal {
		return "global"
	}
	return "incremental"
}

// Net owns a set of resources and active flows on one des.Engine.
type Net struct {
	eng        *des.Engine
	comps      []*component // active components, unordered (swap-delete)
	dirty      []*component // components awaiting recompute at the next sync
	resources  []*Resource
	nFlows     int
	nextID     uint64
	nextCompID uint64

	mode          Mode
	syncScheduled bool
	syncFn        func() // the sync event body, built once in NewNet
	stats         RecomputeStats
	shadow        func(format string, args ...any)

	// flowShards is the recycled pooled-record free list (see Flow.pooled),
	// sharded by ambient engine domain so concurrent dispatch contexts never
	// contend on a single head; each shard's slice header sits on its own
	// cache line. Shard choice only decides which dead record a StartAfter
	// reuses — flow IDs are assigned at install — so it never shows in the
	// event log.
	flowShards [nFlowShards]flowShard
	finScr     []*Flow // onCompletionTimer scratch, reused across firings

	// epoch counts component-structure changes (merges and splits): the
	// engine's parallel mode re-derives its lookahead whenever the epoch
	// moves, since a merge or split may change which links cross domains.
	epoch uint64

	// Phase-B scratch for the phased sync: components awaiting fill, and
	// per-worker stats for the parallel fill (see parfill.go).
	fillScr     []*component
	fillStatScr []RecomputeStats

	// san, when non-nil, tracks pooled flow records (hiersan). Nil-guarded
	// at every hook so the disabled hot path stays allocation-free.
	san *san.Sanitizer

	// Overlap accounting: virtual time during which at least one flow of
	// a class was active, and during which two classes were concurrently
	// active (key "a|b" with a < b). This is how experiments quantify the
	// paper's central claim — intra-node copies overlapping inter-node
	// transfers. Maintained from per-class active counts, integrated
	// whenever a count changes.
	classBusy   map[string]float64
	overlapBusy map[string]float64
	classCount  map[string]int
	lastClass   float64  // virtual time of the last class integration
	classScr    []string // scratch (reused across integrations)
}

// NewNet creates an empty fabric bound to eng.
func NewNet(eng *des.Engine) *Net {
	n := &Net{
		eng:         eng,
		classBusy:   make(map[string]float64),
		overlapBusy: make(map[string]float64),
		classCount:  make(map[string]int),
	}
	n.syncFn = func() {
		n.syncScheduled = false
		n.sync()
	}
	return n
}

// SetSanitizer attaches (or, with nil, detaches) a hiersan runtime that
// audits the pooled flow free list.
func (n *Net) SetSanitizer(s *san.Sanitizer) { n.san = s }

// SetMode selects the recompute mode; the next sync applies it.
func (n *Net) SetMode(m Mode) { n.mode = m }

// Mode returns the current recompute mode.
func (n *Net) Mode() Mode { return n.mode }

// Stats returns the recompute counters accumulated so far.
func (n *Net) Stats() RecomputeStats {
	s := n.stats
	s.Components = len(n.comps)
	return s
}

// Components returns the number of currently active flow components.
func (n *Net) Components() int { return len(n.comps) }

// Epoch returns the component-structure epoch: it advances on every
// component merge and split, signalling the engine's conservative parallel
// mode to re-derive its lookahead.
func (n *Net) Epoch() uint64 { return n.epoch }

// Reset returns the fabric to its pristine post-NewNet state while keeping
// the expensive arenas warm: the resource set itself, the flow free list and
// the completion scratch survive, so a reused fabric allocates nothing on
// its next run. Identifier counters restart at zero — flow IDs only ever
// feed the (ID-ordered) progressive-filling tie-breaks within one run, so
// restarting them reproduces a fresh fabric's allocation decisions exactly.
// Reset panics if flows are still in flight; callers reset the owning
// engine first, so no sync or completion event can be pending either.
func (n *Net) Reset() {
	if n.nFlows > 0 {
		panic(fmt.Sprintf("fabric: Reset with %d flow(s) in flight", n.nFlows))
	}
	n.comps = n.comps[:0]
	n.dirty = n.dirty[:0]
	n.nextID = 0
	n.nextCompID = 0
	n.syncScheduled = false
	n.stats = RecomputeStats{}
	n.epoch = 0
	for _, r := range n.resources {
		r.load = 0
		r.since = 0
		r.BytesServed = 0
		r.BusyTime = 0
		r.comp = nil
		r.ridx = 0
		r.resid = 0
		r.wsum = 0
		r.uf = 0
	}
	clear(n.classBusy)
	clear(n.overlapBusy)
	clear(n.classCount)
	n.lastClass = 0
	n.classScr = n.classScr[:0]
}

// EnableShadow turns on the always-on-in-tests cross-check: after every
// sync the Net re-derives the component partition and all rates from
// scratch and compares them against the incrementally maintained state
// (exactly), and against the seed's one-pass global filling (within a tight
// relative tolerance — its fp delta sequence differs). onMismatch receives
// a description of any divergence; nil means panic, which is what the tests
// want.
func (n *Net) EnableShadow(onMismatch func(format string, args ...any)) {
	if onMismatch == nil {
		onMismatch = func(format string, args ...any) {
			panic("fabric shadow: " + fmt.Sprintf(format, args...))
		}
	}
	n.shadow = onMismatch
}

// ClassBusyTime returns the virtual time during which at least one flow of
// the class was active.
func (n *Net) ClassBusyTime(class string) float64 {
	n.advanceClasses()
	return n.classBusy[class]
}

// OverlapTime returns the virtual time during which flows of both classes
// were concurrently active.
func (n *Net) OverlapTime(a, b string) float64 {
	n.advanceClasses()
	if a > b {
		a, b = b, a
	}
	return n.overlapBusy[a+"|"+b]
}

// Engine returns the underlying event engine.
func (n *Net) Engine() *des.Engine { return n.eng }

// Resources returns all resources created on this fabric.
func (n *Net) Resources() []*Resource { return n.resources }

// NewResource registers a resource with the given capacity in bytes/s.
func (n *Net) NewResource(name string, capacity float64) *Resource {
	if capacity <= 0 || math.IsNaN(capacity) || math.IsInf(capacity, 0) {
		panic(fmt.Sprintf("fabric: resource %q capacity must be positive and finite, got %g", name, capacity))
	}
	r := &Resource{Name: name, Capacity: capacity}
	n.resources = append(n.resources, r)
	return r
}

const byteEps = 1e-6 // bytes: a flow within this of its size is complete

// Start installs a flow of size bytes over path and returns it. onComplete
// fires (as an engine event) when the last byte arrives. A flow must have a
// non-empty path or a positive rate cap; otherwise its rate would be
// unbounded. Zero-size flows complete at the current time.
func (n *Net) Start(size float64, rateCap float64, path []*Resource, onComplete func()) *Flow {
	return n.start("", size, rateCap, path, onComplete)
}

// StartClassed is Start with a traffic-class label for overlap accounting.
func (n *Net) StartClassed(class string, size, rateCap float64, path []*Resource, onComplete func()) *Flow {
	return n.start(class, size, rateCap, path, onComplete)
}

func (n *Net) start(class string, size, rateCap float64, path []*Resource, onComplete func()) *Flow {
	checkFlowArgs(size, rateCap, path)
	f := &Flow{
		Size:       size,
		RateCap:    rateCap,
		Path:       path,
		Class:      class,
		OnComplete: onComplete,
		owner:      n,
		cidx:       -1,
	}
	n.install(f)
	return f
}

func checkFlowArgs(size, rateCap float64, path []*Resource) {
	if size < 0 || math.IsNaN(size) {
		panic(fmt.Sprintf("fabric: invalid flow size %g", size))
	}
	if len(path) == 0 && rateCap <= 0 {
		panic("fabric: flow needs a path or a rate cap")
	}
}

// install assigns the flow its ID and puts it in service. IDs are assigned
// here — after any StartAfter delay — so concurrent flows sort in
// installation order regardless of which entry point created the record.
func (n *Net) install(f *Flow) {
	f.ID = n.nextID
	n.nextID++
	if f.Size <= byteEps {
		f.done0 = f.Size
		f.completed = true
		cb := f.OnComplete
		if f.pooled {
			n.recycleFlow(f)
		}
		if cb != nil {
			n.eng.AtShared(n.eng.Now(), cb)
		}
		return
	}
	n.attach(f)
	n.requestSync()
}

// nFlowShards is the shard count of the flow free list; a power of two so
// the domain-keyed index is a mask.
const nFlowShards = 8

// flowShard is one free-list head, padded to a cache line so adjacent
// shards never false-share.
type flowShard struct {
	free []*Flow
	_    [64 - 24]byte
}

// poolShard maps the ambient engine domain to a free-list shard. The key is
// part of the deterministic engine state, so replays reuse records in the
// same order.
func (n *Net) poolShard() uint32 {
	return uint32(n.eng.CurDomain()) & (nFlowShards - 1)
}

// allocFlow pops a recycled record or mints a pooled one. Pooled records are
// only reachable through the void-returning StartAfter entry points, so no
// caller can hold a reference past completion. The record remembers its
// shard so recycleFlow returns it where it came from (see Flow.shard).
func (n *Net) allocFlow() *Flow {
	var f *Flow
	idx := n.poolShard()
	sh := &n.flowShards[idx]
	if k := len(sh.free) - 1; k >= 0 {
		f = sh.free[k]
		sh.free[k] = nil
		sh.free = sh.free[:k]
	} else {
		f = &Flow{owner: n, cidx: -1, pooled: true, shard: idx}
		f.installFn = func() { n.install(f) }
	}
	if n.san != nil {
		n.san.PoolAlloc(san.KindFlow, f, "")
	}
	return f
}

// recycleFlow returns a pooled record to the free list, clearing references
// so recycled flows do not pin paths or callbacks.
func (n *Net) recycleFlow(f *Flow) {
	if n.san != nil {
		n.san.PoolRelease(san.KindFlow, f, "")
	}
	f.Path = nil
	f.pathBuf = [2]*Resource{}
	f.Class = ""
	f.OnComplete = nil
	f.comp = nil
	f.cidx = -1
	f.done0 = 0
	f.since = 0
	f.rate = 0
	f.deadline = 0
	f.prevRate = 0
	f.frozen = false
	f.completed = false
	f.aborted = false
	sh := &n.flowShards[f.shard]
	sh.free = append(sh.free, f)
}

// StartAfter installs the flow after a fixed latency (e.g. a message's wire
// or rendezvous latency).
func (n *Net) StartAfter(delay, size, rateCap float64, path []*Resource, onComplete func()) {
	n.StartAfterClassed("", delay, size, rateCap, path, onComplete)
}

// StartAfterClassed is StartAfter with a traffic-class label. Unlike Start,
// it does not return the flow — which is what lets it recycle the record
// (and its delayed-install closure) through the Net's free list.
func (n *Net) StartAfterClassed(class string, delay, size, rateCap float64, path []*Resource, onComplete func()) {
	checkFlowArgs(size, rateCap, path)
	f := n.allocFlow()
	f.Size = size
	f.RateCap = rateCap
	f.Path = path
	f.Class = class
	f.OnComplete = onComplete
	if delay <= 0 {
		n.install(f)
		return
	}
	n.eng.AfterShared(delay, f.installFn)
}

// StartAfterPath2 is StartAfterClassed specialized to the two-resource path
// every intra-node copy reduces to (a read side and a write side). The pooled
// record's own backing array holds the pair, so starting such a flow
// allocates nothing in steady state.
func (n *Net) StartAfterPath2(class string, delay, size, rateCap float64, r1, r2 *Resource, onComplete func()) {
	f := n.allocFlow()
	f.pathBuf[0], f.pathBuf[1] = r1, r2
	f.Size = size
	f.RateCap = rateCap
	f.Path = f.pathBuf[:2]
	f.Class = class
	f.OnComplete = onComplete
	checkFlowArgs(size, rateCap, f.Path)
	if delay <= 0 {
		n.install(f)
		return
	}
	n.eng.AfterShared(delay, f.installFn)
}

// Abort removes an in-flight flow without firing OnComplete.
func (f *Flow) Abort() {
	if f.completed || f.aborted || f.comp == nil {
		return
	}
	f.aborted = true
	n := f.owner
	now := n.eng.Now()
	f.done0 = f.doneAt(now)
	f.since = now
	n.detach(f)
	n.requestSync()
}

// ActiveFlows returns the number of in-flight flows.
func (n *Net) ActiveFlows() int { return n.nFlows }

// advanceClasses integrates class-activity time up to engine-now at the
// current per-class counts. Called before any count changes.
func (n *Net) advanceClasses() {
	now := n.eng.Now()
	dt := now - n.lastClass
	if dt <= 0 {
		n.lastClass = now
		return
	}
	n.classScr = n.classScr[:0]
	for class, cnt := range n.classCount {
		if cnt > 0 {
			n.classScr = append(n.classScr, class)
		}
	}
	sort.Strings(n.classScr)
	for i, a := range n.classScr {
		n.classBusy[a] += dt
		for _, b := range n.classScr[i+1:] {
			n.overlapBusy[a+"|"+b] += dt
		}
	}
	n.lastClass = now
}

// requestSync coalesces recomputation: all adds/removes within one virtual
// instant trigger a single recompute pass over the dirty components.
func (n *Net) requestSync() {
	if n.syncScheduled {
		return
	}
	n.syncScheduled = true
	n.eng.AtShared(n.eng.Now(), n.syncFn)
}

// sync recomputes every dirty component (all of them in ModeGlobal), then
// runs the shadow cross-check when enabled.
//
// The pass is phased so the expensive part can fan out: (A) membership —
// destroy empty components and re-partition fragmented ones, serially,
// collecting the components that need a refill; (B) fill — progressive
// filling of each collected component, in parallel when the engine runs in
// parallel mode and enough components queued up (filling is a pure
// per-component function touching only that component's flows and
// resources, the confinement the confine analyzer proves); (C) completion
// timers, serially in collection order. Only phase C schedules events, and
// its order matches the old fused per-component loop, so the phased pass
// consumes the exact same sequence numbers — the event log is unchanged.
func (n *Net) sync() {
	n.stats.Syncs++
	if n.mode == ModeGlobal {
		for _, c := range n.comps {
			c.splitFlag = true
			n.markDirty(c)
		}
	}
	fills := n.fillScr[:0]
	for i := 0; i < len(n.dirty); i++ {
		c := n.dirty[i]
		if c.dead || !c.dirtyFlag {
			continue
		}
		c.dirtyFlag = false
		if len(c.flows) == 0 {
			n.destroyComponent(c)
			continue
		}
		if c.splitFlag {
			c.splitFlag = false
			if parts := n.repartition(c); parts != nil {
				fills = append(fills, parts...)
				continue
			}
		}
		fills = append(fills, c)
	}
	for i := range n.dirty {
		n.dirty[i] = nil
	}
	n.dirty = n.dirty[:0]
	if n.eng.Mode() == des.ModeParallel && len(fills) >= parFillMin {
		n.fillParallel(fills)
	} else {
		for _, c := range fills {
			n.fill(c)
		}
	}
	for i, c := range fills {
		n.scheduleCompletion(c)
		fills[i] = nil
	}
	n.fillScr = fills[:0]
	if n.shadow != nil {
		n.runShadow()
	}
}

// onCompletionTimer handles the completion timer of one component: flows
// whose deadline has arrived complete now.
func (n *Net) onCompletionTimer(c *component) {
	c.timer = des.Timer{} // fired: drop the stale handle
	now := n.eng.Now()
	finished := n.finScr[:0]
	for _, f := range c.flows {
		if f.deadline <= now {
			finished = append(finished, f)
		}
	}
	if len(finished) == 0 {
		n.finScr = finished
		// Defensive: the timer fires at the minimum deadline, so some
		// flow must qualify; re-arm rather than stall if not.
		n.scheduleCompletion(c)
		return
	}
	// Deterministic callback order.
	sortFlows(finished)
	for _, f := range finished {
		f.done0 = f.Size
		f.since = now
		n.detach(f)
		f.completed = true
	}
	n.stats.Completions += uint64(len(finished))
	// Recycle before firing the callback: a callback that starts a new
	// pooled flow may reuse this very record, which is safe because the
	// flow is already detached and its callback extracted.
	for i, f := range finished {
		cb := f.OnComplete
		if f.pooled {
			n.recycleFlow(f)
		}
		finished[i] = nil
		if cb != nil {
			cb()
		}
	}
	n.finScr = finished[:0]
	n.requestSync()
}

// scheduleCompletion (re)arms the completion timer of one component for its
// earliest deadline. The timer is left untouched when that deadline is
// unchanged, so a refill that does not alter the component's rates does not
// perturb the engine's event sequence — the keystone of ModeGlobal and
// ModeIncremental producing identical runs.
func (n *Net) scheduleCompletion(c *component) {
	next := math.Inf(1)
	for _, f := range c.flows {
		if f.deadline < next {
			next = f.deadline
		}
	}
	if math.IsInf(next, 1) {
		if len(c.flows) > 0 {
			panic("fabric: active flows but no positive rates; simulation would stall")
		}
		c.timer.Cancel()
		return
	}
	if !c.timer.Stopped() && c.timerAt == next {
		return
	}
	c.timer.Cancel()
	if now := n.eng.Now(); next < now {
		next = now
	}
	c.timerAt = next
	c.timer = n.eng.AtDomainShared(c.domTag(), next, func() { n.onCompletionTimer(c) })
}

func sortFlows(fs []*Flow) {
	// insertion sort by ID; completion batches are small
	for i := 1; i < len(fs); i++ {
		for j := i; j > 0 && fs[j].ID < fs[j-1].ID; j-- {
			fs[j], fs[j-1] = fs[j-1], fs[j]
		}
	}
}
