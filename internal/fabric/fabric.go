// Package fabric is a flow-level ("fluid") simulator for shared transport
// resources: network links, NICs, memory buses and per-core copy engines.
//
// A Flow moves a number of bytes across an ordered multiset of Resources.
// At every instant, active flows share each resource max-min fairly: rates
// are computed by progressive filling, honoring per-flow rate caps and
// resource multiplicity (a flow whose path lists a resource twice — e.g. a
// local memory copy that both reads and writes the same bus — consumes twice
// its rate there). Completions are delivered as events on the owning
// des.Engine, so fabric transfers compose with any other simulated activity.
//
// The model captures the first-order performance effects the HierKNEM paper
// is about: NIC serialization when many cores on one node talk to the
// network, the memory-bus hot spot on a leader core serving many one-sided
// copies, and the overlap (or lack of it) between intra-node copies and
// inter-node transfers.
//
// The implementation is allocation-light: flows and resources live in flat
// slices and the progressive-filling pass reuses scratch state on the
// resources themselves, because benchmark workloads recompute allocations
// tens of thousands of times.
package fabric

import (
	"fmt"
	"math"

	"hierknem/internal/des"
)

// Resource is a capacity-limited transport element (link direction, NIC
// queue, memory bus, copy engine). Create resources with Net.NewResource.
type Resource struct {
	Name     string
	Capacity float64 // bytes per second

	load float64 // current aggregate consumption, bytes/s

	// BytesServed integrates load over time: total bytes that crossed
	// this resource. BusyTime integrates the saturation fraction.
	BytesServed float64
	BusyTime    float64

	// recompute scratch
	resid   float64
	wsum    float64
	touched bool
}

// Load returns the resource's current aggregate consumption in bytes/s.
func (r *Resource) Load() float64 { return r.load }

// Utilization returns BytesServed normalized by capacity*elapsed, i.e. the
// average fraction of the resource's capacity used over [0, now].
func (r *Resource) Utilization(elapsed float64) float64 {
	if elapsed <= 0 {
		return 0
	}
	return r.BytesServed / (r.Capacity * elapsed)
}

// Flow is an in-flight transfer.
type Flow struct {
	ID      uint64
	Size    float64 // bytes
	RateCap float64 // bytes/s; 0 means unlimited
	Path    []*Resource
	// Class labels the traffic kind ("net", "copy", "compute", ...) for
	// the overlap accounting; empty means unclassified.
	Class string

	OnComplete func()

	owner     *Net
	idx       int // position in owner.flows; -1 when detached
	done      float64
	rate      float64
	frozen    bool // recompute scratch
	completed bool
	aborted   bool
}

// Rate returns the flow's current allocated rate in bytes/s.
func (f *Flow) Rate() float64 { return f.rate }

// Done returns the bytes transferred so far (as of the last fabric update).
func (f *Flow) Done() float64 { return f.done }

// Completed reports whether the flow finished normally.
func (f *Flow) Completed() bool { return f.completed }

// Net owns a set of resources and active flows on one des.Engine.
type Net struct {
	eng        *des.Engine
	flows      []*Flow
	resources  []*Resource
	active     []*Resource // resources carrying load since last recompute
	lastUpdate float64
	nextID     uint64

	timer         *des.Timer
	syncScheduled bool

	// Overlap accounting: virtual time during which at least one flow of
	// a class was active, and during which two classes were concurrently
	// active (key "a|b" with a < b). This is how experiments quantify the
	// paper's central claim — intra-node copies overlapping inter-node
	// transfers.
	classBusy   map[string]float64
	overlapBusy map[string]float64
	classScr    []string // scratch (reused across advances)
}

// NewNet creates an empty fabric bound to eng.
func NewNet(eng *des.Engine) *Net {
	return &Net{
		eng:         eng,
		classBusy:   make(map[string]float64),
		overlapBusy: make(map[string]float64),
	}
}

// ClassBusyTime returns the virtual time during which at least one flow of
// the class was active.
func (n *Net) ClassBusyTime(class string) float64 { return n.classBusy[class] }

// OverlapTime returns the virtual time during which flows of both classes
// were concurrently active.
func (n *Net) OverlapTime(a, b string) float64 {
	if a > b {
		a, b = b, a
	}
	return n.overlapBusy[a+"|"+b]
}

// Engine returns the underlying event engine.
func (n *Net) Engine() *des.Engine { return n.eng }

// Resources returns all resources created on this fabric.
func (n *Net) Resources() []*Resource { return n.resources }

// NewResource registers a resource with the given capacity in bytes/s.
func (n *Net) NewResource(name string, capacity float64) *Resource {
	if capacity <= 0 || math.IsNaN(capacity) || math.IsInf(capacity, 0) {
		panic(fmt.Sprintf("fabric: resource %q capacity must be positive and finite, got %g", name, capacity))
	}
	r := &Resource{Name: name, Capacity: capacity}
	n.resources = append(n.resources, r)
	return r
}

const byteEps = 1e-6 // bytes: a flow within this of its size is complete

// Start installs a flow of size bytes over path and returns it. onComplete
// fires (as an engine event) when the last byte arrives. A flow must have a
// non-empty path or a positive rate cap; otherwise its rate would be
// unbounded. Zero-size flows complete at the current time.
func (n *Net) Start(size float64, rateCap float64, path []*Resource, onComplete func()) *Flow {
	if size < 0 || math.IsNaN(size) {
		panic(fmt.Sprintf("fabric: invalid flow size %g", size))
	}
	if len(path) == 0 && rateCap <= 0 {
		panic("fabric: flow needs a path or a rate cap")
	}
	f := &Flow{
		ID:         n.nextID,
		Size:       size,
		RateCap:    rateCap,
		Path:       path,
		OnComplete: onComplete,
		owner:      n,
		idx:        -1,
	}
	n.nextID++
	if size <= byteEps {
		f.completed = true
		if onComplete != nil {
			n.eng.At(n.eng.Now(), onComplete)
		}
		return f
	}
	n.advance()
	f.idx = len(n.flows)
	n.flows = append(n.flows, f)
	n.requestSync()
	return f
}

// StartClassed is Start with a traffic-class label for overlap accounting.
func (n *Net) StartClassed(class string, size, rateCap float64, path []*Resource, onComplete func()) *Flow {
	f := n.Start(size, rateCap, path, onComplete)
	f.Class = class
	return f
}

// StartAfter installs the flow after a fixed latency (e.g. a message's wire
// or rendezvous latency).
func (n *Net) StartAfter(delay, size, rateCap float64, path []*Resource, onComplete func()) {
	n.StartAfterClassed("", delay, size, rateCap, path, onComplete)
}

// StartAfterClassed is StartAfter with a traffic-class label.
func (n *Net) StartAfterClassed(class string, delay, size, rateCap float64, path []*Resource, onComplete func()) {
	if delay <= 0 {
		n.StartClassed(class, size, rateCap, path, onComplete)
		return
	}
	n.eng.After(delay, func() { n.StartClassed(class, size, rateCap, path, onComplete) })
}

// Abort removes an in-flight flow without firing OnComplete.
func (f *Flow) Abort() {
	if f.completed || f.aborted || f.idx < 0 {
		return
	}
	f.aborted = true
	n := f.owner
	n.advance()
	n.remove(f)
	n.requestSync()
}

// remove detaches flow f from the active set (swap-delete).
func (n *Net) remove(f *Flow) {
	last := len(n.flows) - 1
	other := n.flows[last]
	n.flows[f.idx] = other
	other.idx = f.idx
	n.flows[last] = nil
	n.flows = n.flows[:last]
	f.idx = -1
	f.rate = 0
}

// advance accrues progress for all flows at current rates up to engine-now.
func (n *Net) advance() {
	now := n.eng.Now()
	dt := now - n.lastUpdate
	if dt <= 0 {
		n.lastUpdate = now
		return
	}
	n.classScr = n.classScr[:0]
	for _, f := range n.flows {
		f.done += f.rate * dt
		if f.done > f.Size {
			f.done = f.Size
		}
		if f.Class != "" && !containsStr(n.classScr, f.Class) {
			n.classScr = append(n.classScr, f.Class)
		}
	}
	for i, a := range n.classScr {
		n.classBusy[a] += dt
		for _, b := range n.classScr[i+1:] {
			lo, hi := a, b
			if lo > hi {
				lo, hi = hi, lo
			}
			n.overlapBusy[lo+"|"+hi] += dt
		}
	}
	for _, r := range n.active {
		r.BytesServed += r.load * dt
		r.BusyTime += (r.load / r.Capacity) * dt
	}
	n.lastUpdate = now
}

func containsStr(s []string, v string) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// requestSync coalesces recomputation: all adds/removes within one virtual
// instant trigger a single progressive-filling pass.
func (n *Net) requestSync() {
	if n.syncScheduled {
		return
	}
	n.syncScheduled = true
	n.eng.At(n.eng.Now(), func() {
		n.syncScheduled = false
		n.recompute()
		n.scheduleCompletion()
	})
}

// recompute assigns max-min fair rates to all active flows by progressive
// filling: raise every unfrozen flow's rate uniformly until a flow hits its
// cap or a resource saturates; freeze those and repeat.
func (n *Net) recompute() {
	// Clear loads of previously active resources.
	for _, r := range n.active {
		r.load = 0
	}
	n.active = n.active[:0]
	if len(n.flows) == 0 {
		return
	}

	for _, f := range n.flows {
		f.frozen = false
		for _, r := range f.Path {
			if !r.touched {
				r.touched = true
				r.resid = r.Capacity
				r.wsum = 0
				n.active = append(n.active, r)
			}
			r.wsum++
		}
	}

	unfrozen := len(n.flows)
	level := 0.0
	const relEps = 1e-9
	for unfrozen > 0 {
		delta := math.Inf(1)
		for _, r := range n.active {
			if r.wsum > relEps {
				if d := r.resid / r.wsum; d < delta {
					delta = d
				}
			}
		}
		for _, f := range n.flows {
			if !f.frozen && f.RateCap > 0 {
				if d := f.RateCap - level; d < delta {
					delta = d
				}
			}
		}
		if math.IsInf(delta, 1) {
			// Flows with no constraining resource and no cap; unreachable
			// given Start's validation, but guard anyway.
			for _, f := range n.flows {
				if !f.frozen {
					f.frozen = true
					f.rate = level
				}
			}
			break
		}
		if delta < 0 {
			delta = 0
		}
		level += delta
		for _, r := range n.active {
			r.resid -= delta * r.wsum
		}

		frozeAny := false
		for _, f := range n.flows {
			if f.frozen {
				continue
			}
			capped := f.RateCap > 0 && level >= f.RateCap*(1-relEps)
			saturated := false
			if !capped {
				for _, r := range f.Path {
					if r.resid <= r.Capacity*relEps {
						saturated = true
						break
					}
				}
			}
			if capped || saturated {
				f.frozen = true
				f.rate = level
				unfrozen--
				for _, r := range f.Path {
					r.wsum--
				}
				frozeAny = true
			}
		}
		if !frozeAny {
			// Numerical stalemate: freeze everything at the current level.
			for _, f := range n.flows {
				if !f.frozen {
					f.frozen = true
					f.rate = level
					unfrozen--
				}
			}
		}
	}

	for _, r := range n.active {
		r.touched = false
		r.load = 0
	}
	for _, f := range n.flows {
		for _, r := range f.Path {
			r.load += f.rate
		}
	}
}

// scheduleCompletion (re)arms the single completion timer for the earliest
// finishing flow.
func (n *Net) scheduleCompletion() {
	if n.timer != nil {
		n.timer.Cancel()
		n.timer = nil
	}
	next := math.Inf(1)
	for _, f := range n.flows {
		if f.rate <= 0 {
			continue
		}
		t := (f.Size - f.done) / f.rate
		if t < next {
			next = t
		}
	}
	if math.IsInf(next, 1) {
		if len(n.flows) > 0 {
			panic("fabric: active flows but no positive rates; simulation would stall")
		}
		return
	}
	if next < 0 {
		next = 0
	}
	n.timer = n.eng.After(next, n.onCompletionTimer)
}

func (n *Net) onCompletionTimer() {
	n.timer = nil
	n.advance()
	var finished []*Flow
	for _, f := range n.flows {
		if f.Size-f.done <= byteEps {
			finished = append(finished, f)
		}
	}
	// Deterministic callback order.
	sortFlows(finished)
	for _, f := range finished {
		n.remove(f)
		f.completed = true
	}
	for _, f := range finished {
		if f.OnComplete != nil {
			f.OnComplete()
		}
	}
	n.recompute()
	n.scheduleCompletion()
}

// ActiveFlows returns the number of in-flight flows.
func (n *Net) ActiveFlows() int { return len(n.flows) }

func sortFlows(fs []*Flow) {
	// insertion sort by ID; completion batches are small
	for i := 1; i < len(fs); i++ {
		for j := i; j > 0 && fs[j].ID < fs[j-1].ID; j-- {
			fs[j], fs[j-1] = fs[j-1], fs[j]
		}
	}
}
