package fabric

import (
	"math"

	"hierknem/internal/des"
)

// component is one connected component of the flow/resource graph: the unit
// of incremental recomputation. Every active flow and every resource on an
// active flow's path belongs to exactly one component; max-min allocation
// never couples flows across components, so each component fills, advances
// and fires completions independently.
//
// Merges are eager (a new flow bridging components absorbs the smaller into
// the larger); splits are lazy (a removal marks splitFlag and the next sync
// re-partitions the component with a local union-find).
//
// The hierflow marker makes each component a confinement domain: the
// confine analyzer proves no state leaks between components outside the
// //hierflow:sync membership APIs — the static precondition for giving
// every component its own event queue under conservative PDES.
//
//hierflow:component
type component struct {
	id    uint64
	cpos  int // position in Net.comps
	flows []*Flow
	res   []*Resource

	timer   des.Timer // completion timer for the earliest deadline
	timerAt float64   // absolute time the timer is armed for

	dirtyFlag bool // queued for recompute at the next sync
	splitFlag bool // membership may have fragmented (a flow left)
	dead      bool // absorbed or destroyed; skip if found in the dirty queue

	// dom folds the member resources' PDES domains: -1 while no resource
	// joined, the common domain while all members agree, 0 (global) once
	// the component spans domains. Tags the completion timer so it stages
	// under the right per-domain queue in parallel mode.
	dom int32
}

// mergeDom folds two domain tags: unset adopts the other side, agreement
// keeps the domain, conflict collapses to the global domain 0.
func mergeDom(a, b int32) int32 {
	switch {
	case a < 0:
		return b
	case b < 0 || a == b:
		return a
	default:
		return 0
	}
}

// domTag is the component's domain for event tagging: the folded domain,
// or the global domain while unset (e.g. a pathless, rate-capped flow).
func (c *component) domTag() int32 {
	if c.dom < 0 {
		return 0
	}
	return c.dom
}

func (n *Net) newComponent() *component {
	c := &component{id: n.nextCompID, cpos: len(n.comps), dom: -1}
	n.nextCompID++
	n.comps = append(n.comps, c)
	if len(n.comps) > n.stats.PeakComponents {
		n.stats.PeakComponents = len(n.comps)
	}
	return c
}

func (n *Net) markDirty(c *component) {
	if !c.dirtyFlag {
		c.dirtyFlag = true
		n.dirty = append(n.dirty, c)
	}
}

func (n *Net) removeComp(c *component) {
	last := len(n.comps) - 1
	other := n.comps[last]
	n.comps[c.cpos] = other
	other.cpos = c.cpos
	n.comps[last] = nil
	n.comps = n.comps[:last]
	c.cpos = -1
	c.dead = true
}

// attach inserts a new flow: it joins the component owning its path's
// resources, eagerly merging if the path bridges several.
func (n *Net) attach(f *Flow) {
	n.advanceClasses()
	if f.Class != "" {
		n.classCount[f.Class]++
	}
	n.nFlows++
	now := n.eng.Now()
	f.since = now
	f.deadline = math.Inf(1)

	var target *component
	for _, r := range f.Path {
		c := r.comp
		if c == nil || c == target {
			continue
		}
		if target == nil {
			target = c
			continue
		}
		a, b := target, c
		if len(a.flows)+len(a.res) < len(b.flows)+len(b.res) {
			a, b = b, a
		}
		n.absorb(a, b)
		target = a
	}
	if target == nil {
		target = n.newComponent()
	}
	for _, r := range f.Path {
		if r.comp == nil {
			r.comp = target
			r.ridx = len(target.res)
			r.since = now
			target.res = append(target.res, r)
			target.dom = mergeDom(target.dom, r.dom)
		}
	}
	f.comp = target
	f.cidx = len(target.flows)
	target.flows = append(target.flows, f)
	n.markDirty(target)
}

// absorb merges component b into a (caller picks a as the larger side).
//
//hierflow:sync designated membership transfer: the merge retargets every flow and resource of b onto a and kills b, under the engine's single-threaded sync — the one place cross-component stores are the point
func (n *Net) absorb(a, b *component) {
	n.stats.Merges++
	n.epoch++
	a.dom = mergeDom(a.dom, b.dom)
	for _, f := range b.flows {
		f.comp = a
		f.cidx = len(a.flows)
		a.flows = append(a.flows, f)
	}
	for _, r := range b.res {
		r.comp = a
		r.ridx = len(a.res)
		a.res = append(a.res, r)
	}
	a.splitFlag = a.splitFlag || b.splitFlag
	b.flows = nil
	b.res = nil
	b.timer.Cancel()
	n.removeComp(b)
}

// detach removes a flow from its component (swap-delete) and marks the
// component for a lazy split check at the next sync.
func (n *Net) detach(f *Flow) {
	n.advanceClasses()
	if f.Class != "" {
		n.classCount[f.Class]--
	}
	n.nFlows--
	c := f.comp
	last := len(c.flows) - 1
	other := c.flows[last]
	c.flows[f.cidx] = other
	other.cidx = f.cidx
	c.flows[last] = nil
	c.flows = c.flows[:last]
	f.comp = nil
	f.cidx = -1
	f.rate = 0
	c.splitFlag = true
	n.markDirty(c)
}

func (n *Net) releaseResource(r *Resource) {
	r.integrate(n.eng.Now())
	r.load = 0
	r.comp = nil
	r.ridx = -1
}

func (n *Net) destroyComponent(c *component) {
	now := n.eng.Now()
	for _, r := range c.res {
		r.integrate(now)
		r.load = 0
		r.comp = nil
		r.ridx = -1
	}
	c.res = nil
	c.flows = nil
	c.timer.Cancel()
	n.removeComp(c)
}

// repartition re-derives the connected components of c's membership with a
// local union-find over its resources. It returns nil when the component is
// still connected (the common case: a completed flow's peers share its
// links); otherwise it returns the resulting parts, the first of which
// reuses c's shell — and therefore c's armed timer, which stays valid when
// the surviving minimum deadline is unchanged.
func (n *Net) repartition(c *component) []*component {
	n.stats.Repartitions++
	res := c.res
	for i, r := range res {
		r.uf = int32(i)
	}
	find := func(i int32) int32 {
		for res[i].uf != i {
			res[i].uf = res[res[i].uf].uf
			i = res[i].uf
		}
		return i
	}
	for _, f := range c.flows {
		if len(f.Path) == 0 {
			continue
		}
		n.stats.ResourceVisits += uint64(len(f.Path))
		r0 := find(f.Path[0].uf)
		for _, r := range f.Path[1:] {
			if r1 := find(r.uf); r1 != r0 {
				res[r1].uf = r0
			}
		}
	}
	// Flatten: r.uf becomes r's root. The grouping below compacts res in
	// place, so it must not chase parent chains through the array anymore.
	for i := range res {
		res[i].uf = find(int32(i))
	}

	// Connected fast path: all flows share one root. Pathless flows are
	// always their own group (they can only be sole occupants — nothing
	// ever merges into a component without resources).
	single := true
	root0 := int32(-1)
	for _, f := range c.flows {
		if len(f.Path) == 0 {
			single = len(c.flows) == 1
			break
		}
		rt := f.Path[0].uf
		if root0 < 0 {
			root0 = rt
		} else if rt != root0 {
			single = false
			break
		}
	}
	if single {
		// Drop resources no flow references anymore. An unused resource
		// was never united, so it is its own singleton root ≠ root0.
		kept := c.res[:0]
		for _, r := range res {
			if root0 >= 0 && r.uf == root0 {
				r.ridx = len(kept)
				kept = append(kept, r)
			} else {
				n.releaseResource(r)
			}
		}
		c.res = kept
		return nil
	}

	n.stats.Splits++
	n.epoch++
	type grp struct {
		flows []*Flow
		res   []*Resource
	}
	var groups []*grp
	idxOf := make(map[int32]int)
	for _, f := range c.flows {
		if len(f.Path) == 0 {
			groups = append(groups, &grp{flows: []*Flow{f}})
			continue
		}
		rt := f.Path[0].uf
		gi, ok := idxOf[rt]
		if !ok {
			gi = len(groups)
			idxOf[rt] = gi
			groups = append(groups, &grp{})
		}
		groups[gi].flows = append(groups[gi].flows, f)
	}
	for _, r := range res {
		if gi, ok := idxOf[r.uf]; ok {
			groups[gi].res = append(groups[gi].res, r)
		} else {
			n.releaseResource(r)
		}
	}
	parts := make([]*component, 0, len(groups))
	for gi, g := range groups {
		p := c
		if gi > 0 {
			p = n.newComponent()
		}
		p.flows = g.flows
		p.res = g.res
		// Re-fold the part's domain from scratch: a split may leave a
		// formerly cross-domain component entirely inside one domain.
		p.dom = -1
		for i, f := range g.flows {
			f.comp = p
			f.cidx = i
		}
		for i, r := range g.res {
			r.comp = p
			r.ridx = i
			p.dom = mergeDom(p.dom, r.dom)
		}
		parts = append(parts, p)
	}
	return parts
}

// fill assigns max-min fair rates to the component's flows by progressive
// filling; see fillInto.
func (n *Net) fill(c *component) { n.fillInto(c, &n.stats) }

// fillInto is the progressive-filling pass: raise every unfrozen flow's
// rate uniformly until a flow hits its cap or a resource saturates; freeze
// those and repeat. The result is a pure function of the component's
// membership: every step is a min over a set or an independent per-element
// update, so iteration order cannot change the outcome — the property the
// incremental/global equivalence rests on. It touches only c's own flows
// and resources, so the phased sync can fill disjoint components on
// concurrent workers; st receives the work counters (the worker's private
// struct in that case, merged afterwards — the counters are sums, so the
// totals come out identical to a serial pass).
func (n *Net) fillInto(c *component, st *RecomputeStats) {
	now := n.eng.Now()
	st.Fills++
	for _, r := range c.res {
		r.integrate(now)
		r.resid = r.Capacity
		r.wsum = 0
	}
	for _, f := range c.flows {
		f.prevRate = f.rate
		f.frozen = false
		for _, r := range f.Path {
			r.wsum++
		}
	}
	st.ResourceVisits += uint64(len(c.res))
	st.FlowVisits += uint64(len(c.flows))

	unfrozen := len(c.flows)
	level := 0.0
	const relEps = 1e-9
	for unfrozen > 0 {
		st.Rounds++
		delta := math.Inf(1)
		for _, r := range c.res {
			if r.wsum > relEps {
				if d := r.resid / r.wsum; d < delta {
					delta = d
				}
			}
		}
		st.ResourceVisits += uint64(len(c.res))
		for _, f := range c.flows {
			if !f.frozen && f.RateCap > 0 {
				if d := f.RateCap - level; d < delta {
					delta = d
				}
			}
		}
		st.FlowVisits += uint64(len(c.flows))
		if math.IsInf(delta, 1) {
			// Flows with no constraining resource and no cap; unreachable
			// given Start's validation, but guard anyway.
			for _, f := range c.flows {
				if !f.frozen {
					f.frozen = true
					f.rate = level
				}
			}
			break
		}
		if delta < 0 {
			delta = 0
		}
		level += delta
		for _, r := range c.res {
			r.resid -= delta * r.wsum
		}
		st.ResourceVisits += uint64(len(c.res))

		frozeAny := false
		for _, f := range c.flows {
			if f.frozen {
				continue
			}
			capped := f.RateCap > 0 && level >= f.RateCap*(1-relEps)
			saturated := false
			if !capped {
				for _, r := range f.Path {
					if r.resid <= r.Capacity*relEps {
						saturated = true
						break
					}
				}
			}
			if capped || saturated {
				f.frozen = true
				f.rate = level
				unfrozen--
				for _, r := range f.Path {
					r.wsum--
				}
				frozeAny = true
			}
		}
		if !frozeAny {
			// Numerical stalemate: freeze everything at the current level.
			for _, f := range c.flows {
				if !f.frozen {
					f.frozen = true
					f.rate = level
					unfrozen--
				}
			}
		}
	}

	// Write new loads, and re-anchor progress and deadline for flows whose
	// rate changed. Flows whose rate came out identical keep their anchor
	// and deadline bit-for-bit, so refilling an untouched component is a
	// no-op in virtual time.
	for _, r := range c.res {
		r.load = 0
	}
	for _, f := range c.flows {
		for _, r := range f.Path {
			r.load += f.rate
		}
		if f.rate != f.prevRate {
			f.done0 = f.doneAtRate(now, f.prevRate)
			f.since = now
			if f.rate > 0 {
				f.deadline = now + (f.Size-f.done0)/f.rate
			} else {
				f.deadline = math.Inf(1)
			}
		}
	}
}

// doneAtRate is doneAt with an explicit rate (the pre-refill rate, used
// when re-anchoring progress at a rate change).
func (f *Flow) doneAtRate(now, rate float64) float64 {
	d := f.done0 + rate*(now-f.since)
	if d > f.Size {
		d = f.Size
	}
	return d
}
