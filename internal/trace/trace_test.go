package trace

import (
	"strings"
	"testing"

	"hierknem/internal/buffer"
	"hierknem/internal/mpi"
	"hierknem/internal/topology"
)

func runTraffic(t *testing.T) *topology.Machine {
	t.Helper()
	m, err := topology.Build(topology.Spec{
		Name: "tracetest", Nodes: 2, SocketsPerNode: 1, CoresPerSocket: 2,
		MemBandwidth: 100, CoreCopyBandwidth: 40, L3Bandwidth: 80,
		L3Size: 1 << 20, ShmLatency: 0.5,
		NetBandwidth: 10, NetLatency: 1, EagerThreshold: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := topology.ByCore(m, 4)
	w, err := mpi.NewWorld(m, b, mpi.Config{})
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(p *mpi.Proc) {
		c := w.WorldComm()
		if p.Rank() == 0 {
			p.Send(c, buffer.NewPhantom(100), 2, 0) // inter-node
		}
		if p.Rank() == 2 {
			p.Recv(c, buffer.NewPhantom(100), 0, 0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSnapshotAccountsTraffic(t *testing.T) {
	m := runTraffic(t)
	stats := Snapshot(m)
	if len(stats) == 0 {
		t.Fatal("empty snapshot")
	}
	// The busiest resource carried the 100-byte transfer.
	if stats[0].BytesServed < 100-1e-6 {
		t.Fatalf("top resource served %g bytes, want >= 100", stats[0].BytesServed)
	}
	// Sorted descending.
	for i := 1; i < len(stats); i++ {
		if stats[i].BytesServed > stats[i-1].BytesServed {
			t.Fatal("snapshot not sorted by bytes served")
		}
	}
}

func TestTotalsByClass(t *testing.T) {
	m := runTraffic(t)
	totals := Totals(m)
	if totals["nic"] < 200-1e-3 { // both NICs carried the 100-byte flow
		t.Fatalf("nic total = %g, want ~200", totals["nic"])
	}
	if totals["mem"] < 200-1e-3 { // src + dst memory buses
		t.Fatalf("mem total = %g, want ~200", totals["mem"])
	}
}

func TestReportFormat(t *testing.T) {
	m := runTraffic(t)
	rep := Report(m, 3)
	lines := strings.Split(strings.TrimSpace(rep), "\n")
	if len(lines) != 4 { // header + 3 rows
		t.Fatalf("report has %d lines:\n%s", len(lines), rep)
	}
	if !strings.Contains(lines[0], "resource") {
		t.Fatalf("missing header: %q", lines[0])
	}
}

func TestMaxUtilization(t *testing.T) {
	m := runTraffic(t)
	best, ok := MaxUtilization(m)
	if !ok {
		t.Fatal("no resources")
	}
	// The half-duplex NIC at 10 B/s moving 100 bytes dominates the run,
	// so its utilization should be substantial.
	if !strings.Contains(best.Name, "nic") {
		t.Fatalf("bottleneck = %q, want a NIC", best.Name)
	}
	if best.Utilization <= 0.5 {
		t.Fatalf("bottleneck utilization %g, want > 0.5", best.Utilization)
	}
}

func TestEmptyMachineSnapshot(t *testing.T) {
	m, err := topology.Build(topology.Spec{
		Name: "idle", Nodes: 1, SocketsPerNode: 1, CoresPerSocket: 1,
		MemBandwidth: 1, CoreCopyBandwidth: 1, NetBandwidth: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range Snapshot(m) {
		if s.BytesServed != 0 || s.Utilization != 0 {
			t.Fatalf("idle machine reports activity: %+v", s)
		}
	}
	if _, ok := MaxUtilization(m); !ok {
		t.Fatal("expected resources to exist")
	}
}
