package trace

import (
	"strings"
	"testing"

	"hierknem/internal/fabric"
	"hierknem/internal/topology"
)

// Synthetic-timeline tests: instead of measuring a collective, drive the
// fabric with hand-placed rate-capped flows whose activity intervals are
// exact binary fractions, and assert the overlap accounting to the bit.
// Rate caps of 1.0 B/s make every completion time equal to the flow size.

func syntheticMachine(t *testing.T) *topology.Machine {
	t.Helper()
	m, err := topology.Build(topology.Spec{
		Name: "synth", Nodes: 1, SocketsPerNode: 1, CoresPerSocket: 2,
		MemBandwidth: 10e9, CoreCopyBandwidth: 3e9, L3Bandwidth: 6e9,
		L3Size: 12 << 20, ShmLatency: 1e-6,
		NetBandwidth: 1e9, NetLatency: 10e-6, NetFullDuplex: true,
		EagerThreshold: 4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// at schedules a pathless classed flow: active exactly [when, when+size).
func at(m *topology.Machine, when float64, class string, size float64) {
	m.Eng.At(when, func() {
		m.Fab.StartClassed(class, size, 1.0, nil, nil)
	})
}

func TestOverlapExactSyntheticTimeline(t *testing.T) {
	m := syntheticMachine(t)
	// net:  [0,2)         [4,4.5)
	// copy:    [1,3)        [4.25,5.25)
	// both: [1,2)=1       [4.25,4.5)=0.25
	at(m, 0, "net", 2)
	at(m, 1, "copy", 2)
	at(m, 4, "net", 0.5)
	at(m, 4.25, "copy", 1)
	if err := m.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	o := MeasureOverlap(m)
	if o.NetBusy != 2.5 {
		t.Errorf("NetBusy = %g, want exactly 2.5", o.NetBusy)
	}
	if o.CopyBusy != 3.0 {
		t.Errorf("CopyBusy = %g, want exactly 3.0", o.CopyBusy)
	}
	if o.Both != 1.25 {
		t.Errorf("Both = %g, want exactly 1.25", o.Both)
	}
	if got, want := o.HiddenFraction(), 1.25/3.0; got != want {
		t.Errorf("HiddenFraction = %g, want %g", got, want)
	}
}

// Concurrent flows of one class must not double-count busy time.
func TestOverlapConcurrentSameClassCountsOnce(t *testing.T) {
	m := syntheticMachine(t)
	// net: [0,2) and [1,1.5) nested inside it; busy time is 2, not 2.5.
	at(m, 0, "net", 2)
	at(m, 1, "net", 0.5)
	// copy: [0.5,1.25) — overlap with net is the full 0.75.
	at(m, 0.5, "copy", 0.75)
	if err := m.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	o := MeasureOverlap(m)
	if o.NetBusy != 2.0 {
		t.Errorf("NetBusy = %g, want exactly 2.0 (nested flow double-counted?)", o.NetBusy)
	}
	if o.CopyBusy != 0.75 {
		t.Errorf("CopyBusy = %g, want exactly 0.75", o.CopyBusy)
	}
	if o.Both != 0.75 {
		t.Errorf("Both = %g, want exactly 0.75", o.Both)
	}
}

// Back-to-back flows with a gap: the gap must not count.
func TestOverlapGapsExcluded(t *testing.T) {
	m := syntheticMachine(t)
	at(m, 0, "net", 1)    // [0,1)
	at(m, 2, "net", 1)    // [2,3)
	at(m, 0.5, "copy", 3) // [0.5,3.5): overlaps [0.5,1) and [2,3)
	if err := m.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	o := MeasureOverlap(m)
	if o.NetBusy != 2.0 {
		t.Errorf("NetBusy = %g, want exactly 2.0", o.NetBusy)
	}
	if o.Both != 1.5 {
		t.Errorf("Both = %g, want exactly 1.5", o.Both)
	}
	if o.HiddenFraction() != 0.5 {
		t.Errorf("HiddenFraction = %g, want exactly 0.5", o.HiddenFraction())
	}
}

func TestZeroActivityOverlap(t *testing.T) {
	m := syntheticMachine(t)
	if err := m.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	o := MeasureOverlap(m)
	if o.NetBusy != 0 || o.CopyBusy != 0 || o.Both != 0 {
		t.Fatalf("idle machine reports activity: %+v", o)
	}
	if o.HiddenFraction() != 0 {
		t.Fatalf("HiddenFraction on idle machine = %g", o.HiddenFraction())
	}
}

// FabricStats and RecomputeReport surface the allocator counters.
func TestFabricStatsReport(t *testing.T) {
	m := syntheticMachine(t)
	r := m.Fab.Resources()
	if len(r) == 0 {
		t.Fatal("machine has no resources")
	}
	m.Eng.At(0, func() {
		m.Fab.StartClassed("copy", 1e6, 0, []*fabric.Resource{r[0]}, nil)
	})
	if err := m.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	st := FabricStats(m)
	if st.Syncs == 0 || st.Fills == 0 || st.Completions != 1 {
		t.Fatalf("implausible counters: %v", st)
	}
	rep := RecomputeReport(m)
	for _, frag := range []string{"incremental", "res-visits", "events="} {
		if !strings.Contains(rep, frag) {
			t.Fatalf("report missing %q:\n%s", frag, rep)
		}
	}
	m.Fab.SetMode(fabric.ModeGlobal)
	if !strings.Contains(RecomputeReport(m), "global") {
		t.Fatal("report does not reflect the global mode")
	}
}
