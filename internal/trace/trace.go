// Package trace reports on the simulated hardware after a run: which
// resources moved how many bytes, how saturated they were, and where the
// hot spots sit. It is how the repository's experiments diagnose effects
// like the leader memory-bus bottleneck of the paper's Figure 2 or the NIC
// serialization behind Figure 3's flat-algorithm collapse.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"hierknem/internal/fabric"
	"hierknem/internal/topology"
)

// ResourceStat is one resource's activity over [0, now].
type ResourceStat struct {
	Name        string
	Capacity    float64 // bytes/s
	BytesServed float64
	Utilization float64 // BytesServed / (Capacity * elapsed)
}

// Snapshot captures the per-resource statistics of a machine, sorted by
// bytes served (descending, ties by name for determinism).
func Snapshot(m *topology.Machine) []ResourceStat {
	elapsed := m.Eng.Now()
	rs := m.Fab.Resources()
	out := make([]ResourceStat, 0, len(rs))
	for _, r := range rs {
		out = append(out, ResourceStat{
			Name:        r.Name,
			Capacity:    r.Capacity,
			BytesServed: r.BytesServed,
			Utilization: r.Utilization(elapsed),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].BytesServed != out[j].BytesServed {
			return out[i].BytesServed > out[j].BytesServed
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Totals aggregates bytes served by resource class, keyed by the suffix of
// the resource name ("mem", "l3", "nic", "nic-tx", "nic-rx", "backplane").
func Totals(m *topology.Machine) map[string]float64 {
	totals := map[string]float64{}
	for _, r := range m.Fab.Resources() {
		idx := strings.LastIndex(r.Name, "/")
		class := r.Name[idx+1:]
		totals[class] += r.BytesServed
	}
	return totals
}

// Report renders the top-n busiest resources as an aligned table.
func Report(m *topology.Machine, top int) string {
	stats := Snapshot(m)
	if top > 0 && top < len(stats) {
		stats = stats[:top]
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-20s %14s %14s %8s\n", "resource", "served (MB)", "cap (MB/s)", "util")
	for _, s := range stats {
		fmt.Fprintf(&b, "%-20s %14.1f %14.0f %7.1f%%\n",
			s.Name, s.BytesServed/1e6, s.Capacity/1e6, 100*s.Utilization)
	}
	return b.String()
}

// Overlap reports the intra/inter overlap statistics of a run: how much
// virtual time each traffic class was active and how much of the intra-node
// copy time was hidden under inter-node transfers — the paper's central
// design goal ("perfect overlap of intra- and inter-node communications").
type Overlap struct {
	NetBusy  float64 // time with >= 1 inter-node transfer in flight
	CopyBusy float64 // time with >= 1 intra-node copy in flight
	Both     float64 // time with both concurrently in flight
}

// HiddenFraction is the share of intra-node copy time overlapped by
// inter-node transfers (0 when no copies ran).
func (o Overlap) HiddenFraction() float64 {
	if o.CopyBusy <= 0 {
		return 0
	}
	return o.Both / o.CopyBusy
}

// MeasureOverlap reads the machine's class-activity integrals.
func MeasureOverlap(m *topology.Machine) Overlap {
	return Overlap{
		NetBusy:  m.Fab.ClassBusyTime("net"),
		CopyBusy: m.Fab.ClassBusyTime("copy"),
		Both:     m.Fab.OverlapTime("net", "copy"),
	}
}

// FabricStats returns the allocator's recompute counters: how many
// progressive-filling passes ran, how many resources and flows they visited,
// and how the flow/resource graph partitioned into connected components.
// Comparing these between fabric.ModeIncremental and fabric.ModeGlobal is
// how the benchmarks quantify the incremental allocator's savings.
func FabricStats(m *topology.Machine) fabric.RecomputeStats {
	return m.Fab.Stats()
}

// RecomputeReport renders the recompute counters plus the derived per-event
// costs (resource visits and flow visits per processed event).
func RecomputeReport(m *topology.Machine) string {
	s := FabricStats(m)
	ev := m.Eng.Processed()
	var b strings.Builder
	fmt.Fprintf(&b, "fabric recompute (%s mode)\n", m.Fab.Mode())
	fmt.Fprintf(&b, "  %s\n", s.String())
	if ev > 0 {
		fmt.Fprintf(&b, "  events=%d res-visits/event=%.2f flow-visits/event=%.2f\n",
			ev, float64(s.ResourceVisits)/float64(ev), float64(s.FlowVisits)/float64(ev))
	}
	return b.String()
}

// MaxUtilization returns the highest-utilization resource — the system
// bottleneck over the whole run.
func MaxUtilization(m *topology.Machine) (ResourceStat, bool) {
	var best ResourceStat
	found := false
	for _, s := range Snapshot(m) {
		if !found || s.Utilization > best.Utilization {
			best = s
			found = true
		}
	}
	return best, found
}
