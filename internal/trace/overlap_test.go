package trace

import (
	"testing"

	"hierknem/internal/buffer"
	"hierknem/internal/core"
	"hierknem/internal/modules"
	"hierknem/internal/mpi"
	"hierknem/internal/topology"
)

// paper-shaped mini cluster: 8 Ethernet nodes of 2x6 cores.
func overlapMachine(t *testing.T) (*topology.Machine, *mpi.World) {
	t.Helper()
	m, err := topology.Build(topology.Spec{
		Name: "ovl", Nodes: 8, SocketsPerNode: 2, CoresPerSocket: 6,
		MemBandwidth: 10e9, CoreCopyBandwidth: 3e9, L3Bandwidth: 6e9,
		L3TotalBandwidth: 30e9, L3Size: 12 << 20, ShmLatency: 1e-6,
		NetBandwidth: 125e6, NetLatency: 50e-6, NetFullDuplex: true,
		EagerThreshold: 4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := topology.ByCore(m, 96)
	if err != nil {
		t.Fatal(err)
	}
	w, err := mpi.NewWorld(m, b, mpi.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return m, w
}

func bcast2MB(t *testing.T, w *mpi.World, mod modules.Module) {
	t.Helper()
	err := w.Run(func(p *mpi.Proc) {
		c := w.WorldComm()
		mod.Bcast(p, c, buffer.NewPhantom(2<<20), 0)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// The paper's central claim, measured: HierKNEM hides intra-node copies
// under inter-node forwarding; the sequential two-level Hierarch cannot.
func TestHierKNEMOverlapsCopiesUnderNetwork(t *testing.T) {
	pl := core.PipelineEthernet()
	mHK, wHK := overlapMachine(t)
	bcast2MB(t, wHK, core.New(core.Options{BcastPipeline: pl.Bcast}))
	hk := MeasureOverlap(mHK)

	mHier, wHier := overlapMachine(t)
	bcast2MB(t, wHier, modules.Hierarch(modules.Quirks{}))
	hier := MeasureOverlap(mHier)

	if hk.CopyBusy <= 0 || hier.CopyBusy <= 0 {
		t.Fatalf("no copy activity recorded: hk=%+v hier=%+v", hk, hier)
	}
	if hk.HiddenFraction() < 0.9 {
		t.Fatalf("hierknem hides only %.0f%% of copy time under the network, want >= 90%%",
			100*hk.HiddenFraction())
	}
	if hier.HiddenFraction() > hk.HiddenFraction() {
		t.Fatalf("hierarch (%.0f%%) should not overlap better than hierknem (%.0f%%)",
			100*hier.HiddenFraction(), 100*hk.HiddenFraction())
	}
	t.Logf("hidden copy fraction: hierknem %.1f%%, hierarch %.1f%%",
		100*hk.HiddenFraction(), 100*hier.HiddenFraction())
}

func TestOverlapAccountingBasics(t *testing.T) {
	m, w := overlapMachine(t)
	bcast2MB(t, w, core.New(core.Options{}))
	o := MeasureOverlap(m)
	if o.Both > o.NetBusy+1e-12 || o.Both > o.CopyBusy+1e-12 {
		t.Fatalf("overlap exceeds class busy times: %+v", o)
	}
	if o.NetBusy <= 0 {
		t.Fatal("no network activity recorded")
	}
	elapsed := m.Eng.Now()
	if o.NetBusy > elapsed+1e-12 || o.CopyBusy > elapsed+1e-12 {
		t.Fatalf("class busy time exceeds elapsed time %g: %+v", elapsed, o)
	}
}
