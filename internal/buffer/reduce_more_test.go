package buffer

import (
	"math"
	"testing"
	"testing/quick"
)

func TestReduceFloat32(t *testing.T) {
	mk := func(v []float32) *Buffer {
		data := make([]byte, 4*len(v))
		b := NewReal(data)
		for i, x := range v {
			bits := math.Float32bits(x)
			data[4*i] = byte(bits)
			data[4*i+1] = byte(bits >> 8)
			data[4*i+2] = byte(bits >> 16)
			data[4*i+3] = byte(bits >> 24)
		}
		return b
	}
	rd := func(b *Buffer, i int) float32 {
		d := b.Data()
		bits := uint32(d[4*i]) | uint32(d[4*i+1])<<8 | uint32(d[4*i+2])<<16 | uint32(d[4*i+3])<<24
		return math.Float32frombits(bits)
	}
	dst := mk([]float32{1.5, -2})
	src := mk([]float32{2.5, 8})
	Reduce(OpSum, Float32, dst, src)
	if rd(dst, 0) != 4 || rd(dst, 1) != 6 {
		t.Fatalf("float32 sum = %v, %v", rd(dst, 0), rd(dst, 1))
	}
	dst2 := mk([]float32{3, 4})
	src2 := mk([]float32{5, 2})
	Reduce(OpMax, Float32, dst2, src2)
	if rd(dst2, 0) != 5 || rd(dst2, 1) != 4 {
		t.Fatalf("float32 max = %v, %v", rd(dst2, 0), rd(dst2, 1))
	}
}

func TestReduceInt32(t *testing.T) {
	mk := func(v []int32) *Buffer {
		data := make([]byte, 4*len(v))
		for i, x := range v {
			u := uint32(x)
			data[4*i] = byte(u)
			data[4*i+1] = byte(u >> 8)
			data[4*i+2] = byte(u >> 16)
			data[4*i+3] = byte(u >> 24)
		}
		return NewReal(data)
	}
	rd := func(b *Buffer, i int) int32 {
		d := b.Data()
		return int32(uint32(d[4*i]) | uint32(d[4*i+1])<<8 | uint32(d[4*i+2])<<16 | uint32(d[4*i+3])<<24)
	}
	dst := mk([]int32{-5, 1 << 20})
	src := mk([]int32{3, 1 << 20})
	Reduce(OpSum, Int32, dst, src)
	if rd(dst, 0) != -2 || rd(dst, 1) != 1<<21 {
		t.Fatalf("int32 sum = %v, %v", rd(dst, 0), rd(dst, 1))
	}
	dstm := mk([]int32{-5, 9})
	srcm := mk([]int32{-7, 12})
	Reduce(OpMin, Int32, dstm, srcm)
	if rd(dstm, 0) != -7 || rd(dstm, 1) != 9 {
		t.Fatalf("int32 min = %v, %v", rd(dstm, 0), rd(dstm, 1))
	}
}

func TestReduceProdFloat64(t *testing.T) {
	dst := Float64s([]float64{2, -3, 0.5})
	src := Float64s([]float64{4, 2, 8})
	Reduce(OpProd, Float64, dst, src)
	got := AsFloat64s(dst)
	want := []float64{8, -6, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("prod = %v, want %v", got, want)
		}
	}
}

// Property: reduction operators are commutative over int64 buffers:
// op(a, b) == op(b, a) elementwise.
func TestQuickReduceCommutative(t *testing.T) {
	f := func(a, b []int64, opSel uint8) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		a, b = a[:n], b[:n]
		op := []Op{OpSum, OpProd, OpMax, OpMin}[opSel%4]

		ab := Int64s(append([]int64(nil), a...))
		Reduce(op, Int64, ab, Int64s(b))
		ba := Int64s(append([]int64(nil), b...))
		Reduce(op, Int64, ba, Int64s(a))
		x, y := AsInt64s(ab), AsInt64s(ba)
		for i := 0; i < n; i++ {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: max/min are idempotent: op(a, a) == a.
func TestQuickReduceIdempotent(t *testing.T) {
	f := func(a []int64, useMax bool) bool {
		op := OpMin
		if useMax {
			op = OpMax
		}
		dst := Int64s(append([]int64(nil), a...))
		Reduce(op, Int64, dst, Int64s(a))
		got := AsInt64s(dst)
		for i := range a {
			if got[i] != a[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestByteSumWraps(t *testing.T) {
	dst := NewReal([]byte{250})
	src := NewReal([]byte{10})
	Reduce(OpSum, Byte, dst, src)
	if dst.Data()[0] != 4 { // 260 mod 256
		t.Fatalf("byte sum = %d, want 4 (wraparound)", dst.Data()[0])
	}
}
