// Package buffer provides the message payloads moved by the simulated MPI
// runtime.
//
// Buffers come in two flavors. Real buffers carry actual bytes, so
// correctness tests can verify that a collective delivers bit-identical data
// and that reductions compute the right values. Phantom buffers carry only a
// size: benchmark runs over 768 ranks and multi-megabyte messages would
// otherwise need gigabytes of host memory. Both flavors cost identical
// virtual time — the simulator charges transfers by size, never by content.
package buffer

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync/atomic"
)

var nextID atomic.Uint64

// Buffer is a (possibly phantom) contiguous message buffer. A Buffer created
// by Slice shares the parent's identity (for cache-residency modeling) and,
// when real, the parent's backing bytes.
type Buffer struct {
	id   uint64
	off  int64
	size int64
	data []byte // nil for phantom buffers
}

// NewReal wraps data in a real buffer.
func NewReal(data []byte) *Buffer {
	return &Buffer{id: nextID.Add(1), size: int64(len(data)), data: data}
}

// NewPhantom creates a size-only buffer.
func NewPhantom(size int64) *Buffer {
	if size < 0 {
		panic(fmt.Sprintf("buffer: negative size %d", size))
	}
	return &Buffer{id: nextID.Add(1), size: size}
}

// ID identifies the allocation; slices of one buffer share it.
func (b *Buffer) ID() uint64 { return b.id }

// Off returns the window's byte offset within its backing allocation.
// Slices report offsets in the allocation's coordinate space, so two views
// of one buffer can be compared for byte overlap (hiersan's conflict
// windows are keyed on (ID, Off, Len)).
func (b *Buffer) Off() int64 { return b.off }

// Len returns the buffer length in bytes.
func (b *Buffer) Len() int64 { return b.size }

// Phantom reports whether the buffer carries no real bytes.
func (b *Buffer) Phantom() bool { return b.data == nil }

// Data returns the live byte window, or nil for phantom buffers.
func (b *Buffer) Data() []byte {
	if b.data == nil {
		return nil
	}
	return b.data[b.off : b.off+b.size]
}

// Slice returns a view of n bytes starting at off, sharing identity and
// backing storage with b.
// Slice must stay within the compiler's inlining budget: collectives carve a
// segment header on every hop, and only an inlined Slice lets escape
// analysis keep those headers on the caller's stack. Hence the unsigned
// bounds check (off < 0, n < 0 and off+n > size in two compares) and the
// constant panic string — a formatted message would cost a call and push the
// function past the budget.
func (b *Buffer) Slice(off, n int64) *Buffer {
	if uint64(off) > uint64(b.size) || uint64(n) > uint64(b.size-off) {
		panic("buffer: slice bounds out of range")
	}
	return &Buffer{id: b.id, off: b.off + off, size: n, data: b.data}
}

// CopyFrom copies src's bytes into b when both are real; phantom endpoints
// make it a size-checked no-op. Sizes must match.
func (b *Buffer) CopyFrom(src *Buffer) {
	if b.size != src.size {
		panic(fmt.Sprintf("buffer: copy size mismatch %d != %d", b.size, src.size))
	}
	if b.data == nil || src.data == nil {
		return
	}
	copy(b.Data(), src.Data())
}

// Datatype describes the element type of a buffer for reductions.
type Datatype int

const (
	Byte Datatype = iota
	Int32
	Int64
	Float32
	Float64
)

// Size returns the element size in bytes.
func (d Datatype) Size() int64 {
	switch d {
	case Byte:
		return 1
	case Int32, Float32:
		return 4
	case Int64, Float64:
		return 8
	default:
		panic(fmt.Sprintf("buffer: unknown datatype %d", d))
	}
}

func (d Datatype) String() string {
	switch d {
	case Byte:
		return "byte"
	case Int32:
		return "int32"
	case Int64:
		return "int64"
	case Float32:
		return "float32"
	case Float64:
		return "float64"
	default:
		return fmt.Sprintf("datatype(%d)", int(d))
	}
}

// Op is a reduction operator.
type Op int

const (
	OpSum Op = iota
	OpProd
	OpMax
	OpMin
)

func (o Op) String() string {
	switch o {
	case OpSum:
		return "sum"
	case OpProd:
		return "prod"
	case OpMax:
		return "max"
	case OpMin:
		return "min"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// Reduce applies dst = op(dst, src) elementwise. Phantom operands make it a
// size-checked no-op (the simulator still charges compute time for it).
func Reduce(op Op, dtype Datatype, dst, src *Buffer) {
	if dst.size != src.size {
		panic(fmt.Sprintf("buffer: reduce size mismatch %d != %d", dst.size, src.size))
	}
	if dst.size%dtype.Size() != 0 {
		panic(fmt.Sprintf("buffer: %d bytes not a multiple of %s", dst.size, dtype))
	}
	if dst.data == nil || src.data == nil {
		return
	}
	d, s := dst.Data(), src.Data()
	es := int(dtype.Size())
	for i := 0; i+es <= len(d); i += es {
		reduceElem(op, dtype, d[i:i+es], s[i:i+es])
	}
}

func reduceElem(op Op, dtype Datatype, d, s []byte) {
	switch dtype {
	case Byte:
		d[0] = byte(applyI(op, int64(d[0]), int64(s[0])))
	case Int32:
		v := applyI(op, int64(int32(binary.LittleEndian.Uint32(d))), int64(int32(binary.LittleEndian.Uint32(s))))
		binary.LittleEndian.PutUint32(d, uint32(int32(v)))
	case Int64:
		v := applyI(op, int64(binary.LittleEndian.Uint64(d)), int64(binary.LittleEndian.Uint64(s)))
		binary.LittleEndian.PutUint64(d, uint64(v))
	case Float32:
		v := applyF(op, float64(math.Float32frombits(binary.LittleEndian.Uint32(d))),
			float64(math.Float32frombits(binary.LittleEndian.Uint32(s))))
		binary.LittleEndian.PutUint32(d, math.Float32bits(float32(v)))
	case Float64:
		v := applyF(op, math.Float64frombits(binary.LittleEndian.Uint64(d)),
			math.Float64frombits(binary.LittleEndian.Uint64(s)))
		binary.LittleEndian.PutUint64(d, math.Float64bits(v))
	}
}

func applyI(op Op, a, b int64) int64 {
	switch op {
	case OpSum:
		return a + b
	case OpProd:
		return a * b
	case OpMax:
		if a > b {
			return a
		}
		return b
	case OpMin:
		if a < b {
			return a
		}
		return b
	}
	panic("buffer: unknown op")
}

func applyF(op Op, a, b float64) float64 {
	switch op {
	case OpSum:
		return a + b
	case OpProd:
		return a * b
	case OpMax:
		return math.Max(a, b)
	case OpMin:
		return math.Min(a, b)
	}
	panic("buffer: unknown op")
}

// Float64s wraps a []float64 as a real buffer (little-endian layout).
func Float64s(v []float64) *Buffer {
	data := make([]byte, 8*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(data[8*i:], math.Float64bits(x))
	}
	return NewReal(data)
}

// AsFloat64s decodes a real buffer as []float64.
func AsFloat64s(b *Buffer) []float64 {
	data := b.Data()
	if data == nil {
		return nil
	}
	out := make([]float64, len(data)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[8*i:]))
	}
	return out
}

// Int64s wraps a []int64 as a real buffer.
func Int64s(v []int64) *Buffer {
	data := make([]byte, 8*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(data[8*i:], uint64(x))
	}
	return NewReal(data)
}

// AsInt64s decodes a real buffer as []int64.
func AsInt64s(b *Buffer) []int64 {
	data := b.Data()
	if data == nil {
		return nil
	}
	out := make([]int64, len(data)/8)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(data[8*i:]))
	}
	return out
}
