package buffer

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestRealBufferRoundTrip(t *testing.T) {
	b := NewReal([]byte{1, 2, 3, 4})
	if b.Phantom() {
		t.Fatal("real buffer reported phantom")
	}
	if b.Len() != 4 {
		t.Fatalf("Len = %d, want 4", b.Len())
	}
	if !bytes.Equal(b.Data(), []byte{1, 2, 3, 4}) {
		t.Fatalf("Data = %v", b.Data())
	}
}

func TestPhantomBuffer(t *testing.T) {
	b := NewPhantom(1 << 30) // no allocation
	if !b.Phantom() || b.Len() != 1<<30 || b.Data() != nil {
		t.Fatal("phantom buffer misbehaves")
	}
}

func TestSliceSharesIdentityAndStorage(t *testing.T) {
	b := NewReal(make([]byte, 10))
	s := b.Slice(2, 4)
	if s.ID() != b.ID() {
		t.Fatal("slice has different ID")
	}
	s.Data()[0] = 42
	if b.Data()[2] != 42 {
		t.Fatal("slice does not alias parent storage")
	}
	s2 := s.Slice(1, 2)
	s2.Data()[0] = 7
	if b.Data()[3] != 7 {
		t.Fatal("nested slice offset wrong")
	}
}

func TestSliceBoundsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range slice did not panic")
		}
	}()
	NewReal(make([]byte, 4)).Slice(2, 3)
}

func TestCopyFrom(t *testing.T) {
	src := NewReal([]byte{9, 8, 7})
	dst := NewReal(make([]byte, 3))
	dst.CopyFrom(src)
	if !bytes.Equal(dst.Data(), []byte{9, 8, 7}) {
		t.Fatalf("copy failed: %v", dst.Data())
	}
	// Phantom endpoints: size-checked no-op.
	NewPhantom(3).CopyFrom(src)
	dst.CopyFrom(NewPhantom(3))
}

func TestCopySizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("size mismatch did not panic")
		}
	}()
	NewPhantom(2).CopyFrom(NewPhantom(3))
}

func TestDatatypeSizes(t *testing.T) {
	cases := map[Datatype]int64{Byte: 1, Int32: 4, Int64: 8, Float32: 4, Float64: 8}
	for d, want := range cases {
		if d.Size() != want {
			t.Errorf("%v.Size() = %d, want %d", d, d.Size(), want)
		}
	}
}

func TestReduceSumFloat64(t *testing.T) {
	dst := Float64s([]float64{1, 2, 3})
	src := Float64s([]float64{10, 20, 30})
	Reduce(OpSum, Float64, dst, src)
	got := AsFloat64s(dst)
	want := []float64{11, 22, 33}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sum = %v, want %v", got, want)
		}
	}
}

func TestReduceOpsInt64(t *testing.T) {
	cases := []struct {
		op   Op
		want []int64
	}{
		{OpSum, []int64{5, 5}},
		{OpProd, []int64{6, 4}},
		{OpMax, []int64{3, 4}},
		{OpMin, []int64{2, 1}},
	}
	for _, c := range cases {
		dst := Int64s([]int64{2, 4})
		src := Int64s([]int64{3, 1})
		Reduce(c.op, Int64, dst, src)
		got := AsInt64s(dst)
		for i := range c.want {
			if got[i] != c.want[i] {
				t.Errorf("%v = %v, want %v", c.op, got, c.want)
			}
		}
	}
}

func TestReduceMinFloatAndByte(t *testing.T) {
	dst := Float64s([]float64{1.5, -2})
	src := Float64s([]float64{0.5, -1})
	Reduce(OpMin, Float64, dst, src)
	got := AsFloat64s(dst)
	if got[0] != 0.5 || got[1] != -2 {
		t.Fatalf("min = %v", got)
	}
	bd := NewReal([]byte{5, 200})
	bs := NewReal([]byte{7, 100})
	Reduce(OpMax, Byte, bd, bs)
	if bd.Data()[0] != 7 || bd.Data()[1] != 200 {
		t.Fatalf("byte max = %v", bd.Data())
	}
}

func TestReducePhantomNoop(t *testing.T) {
	dst := NewPhantom(16)
	src := NewPhantom(16)
	Reduce(OpSum, Float64, dst, src) // must not panic
}

func TestReduceAlignmentPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("misaligned reduce did not panic")
		}
	}()
	Reduce(OpSum, Float64, NewReal(make([]byte, 12)), NewReal(make([]byte, 12)))
}

func TestFloat64sRoundTrip(t *testing.T) {
	v := []float64{3.14, -2.71, 0, 1e300}
	got := AsFloat64s(Float64s(v))
	for i := range v {
		if got[i] != v[i] {
			t.Fatalf("roundtrip = %v, want %v", got, v)
		}
	}
}

func TestDistinctIDs(t *testing.T) {
	a, b := NewPhantom(1), NewPhantom(1)
	if a.ID() == b.ID() {
		t.Fatal("two buffers share an ID")
	}
}

// Property: sum-reduce over int64 equals elementwise Go addition.
func TestQuickReduceSumMatchesGo(t *testing.T) {
	f := func(a, b []int64) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		a, b = a[:n], b[:n]
		dst := Int64s(a)
		Reduce(OpSum, Int64, dst, Int64s(b))
		got := AsInt64s(dst)
		for i := 0; i < n; i++ {
			if got[i] != a[i]+b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: slicing then copying reassembles the original (segmented
// pipeline transfers must be lossless).
func TestQuickSegmentedCopyLossless(t *testing.T) {
	f := func(data []byte, seg8 uint8) bool {
		if len(data) == 0 {
			return true
		}
		seg := int64(seg8)%int64(len(data)) + 1
		src := NewReal(data)
		dst := NewReal(make([]byte, len(data)))
		for off := int64(0); off < src.Len(); off += seg {
			n := seg
			if off+n > src.Len() {
				n = src.Len() - off
			}
			dst.Slice(off, n).CopyFrom(src.Slice(off, n))
		}
		return bytes.Equal(dst.Data(), data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
