// Package phasesafe defines the guard-elision manifest: the artifact by
// which the static phasesafe analyzer (internal/lint) hands its
// whole-program confinement proof to the runtime (internal/mpi).
//
// The analyzer proves, per EnterNodePhase/ExitNodePhase region, that every
// message the region can emit stays on the executing node and under the
// fabric-bypass cutoff. hierlint -manifest serializes the proved regions —
// along with content hashes of every source file the proof depends on —
// into a manifest file. At startup under HIERKNEM_GUARDS=elide the runtime
// loads the manifest, re-hashes the recorded sources, and only if every
// hash still matches does it skip the per-message confinement guards inside
// the named regions. Any drift (edited file, missing manifest, tampered
// entry) falls back loudly to checked mode: the proof is only as good as
// its staleness rule.
//
// This package deliberately imports neither the linter nor the runtime, so
// both can depend on it.
package phasesafe

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Schema identifies the manifest layout; loaders reject anything else.
const Schema = "hierknem/phasesafe/v1"

// EnvPath overrides where the runtime looks for the manifest.
const EnvPath = "HIERKNEM_GUARD_MANIFEST"

// Region names one proved EnterNodePhase/ExitNodePhase region by the
// runtime name of its enclosing function (the format runtime.CallersFrames
// reports, e.g. "hierknem/internal/core.(*Module).bcastSmall") plus the
// bracket's source position for human consumption.
type Region struct {
	Func string `json:"func"`
	File string `json:"file"`
	Line int    `json:"line"`
}

// Manifest is the proof artifact. Regions lists every proved bracket;
// Sources maps module-relative file paths to sha256 hex digests of their
// content at proof time — the region files themselves plus the runtime
// guard surface the proof reasons about. MinEager is the smallest eager
// threshold the proof is valid for and Cutoff the shared-memory copy cutoff
// it assumed; the runtime refuses to elide under a configuration outside
// those bounds. Hash is a self-hash over the canonical encoding of
// everything else, so a truncated or hand-edited manifest never validates.
type Manifest struct {
	Schema   string            `json:"schema"`
	Module   string            `json:"module"`
	MinEager int64             `json:"minEager"`
	Cutoff   int64             `json:"cutoff"`
	Regions  []Region          `json:"regions"`
	Sources  map[string]string `json:"sources"`
	Hash     string            `json:"hash"`
}

// Normalize sorts Regions so encoding is deterministic regardless of the
// order the driver collected them in (map iteration over Sources is handled
// by encoding/json, which sorts object keys).
func (m *Manifest) Normalize() {
	sort.Slice(m.Regions, func(i, j int) bool {
		a, b := m.Regions[i], m.Regions[j]
		if a.Func != b.Func {
			return a.Func < b.Func
		}
		if a.File != b.File {
			return a.File < b.File
		}
		return a.Line < b.Line
	})
}

// ComputeHash returns the self-hash: sha256 over the canonical JSON
// encoding of the manifest with Hash cleared.
func (m *Manifest) ComputeHash() string {
	cp := *m
	cp.Hash = ""
	cp.Normalize()
	b, err := json.Marshal(&cp)
	if err != nil {
		// Marshal of this struct cannot fail; keep the signature simple.
		panic(err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// HashFile returns the sha256 hex digest of a file's content.
func HashFile(path string) (string, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// Write normalizes, stamps the self-hash and persists atomically (write to
// a temp file in the target directory, then rename).
func (m *Manifest) Write(path string) error {
	m.Normalize()
	m.Hash = m.ComputeHash()
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, "manifest-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return err
	}
	return nil
}

// Load reads a manifest and checks its schema and self-hash. It does NOT
// check source freshness — that is Validate, which needs the module root.
func Load(path string) (*Manifest, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("phasesafe manifest %s: %v", path, err)
	}
	if m.Schema != Schema {
		return nil, fmt.Errorf("phasesafe manifest %s: schema %q, want %q", path, m.Schema, Schema)
	}
	if got := m.ComputeHash(); got != m.Hash {
		return nil, fmt.Errorf("phasesafe manifest %s: self-hash mismatch (corrupt or hand-edited)", path)
	}
	return &m, nil
}

// Validate re-hashes every recorded source file under root and fails on the
// first drift: a proof over yesterday's sources says nothing about today's
// build, so staleness is an error, never a warning.
func (m *Manifest) Validate(root string) error {
	// Deterministic error selection: check files in sorted order.
	files := make([]string, 0, len(m.Sources))
	for f := range m.Sources {
		files = append(files, f)
	}
	sort.Strings(files)
	for _, f := range files {
		got, err := HashFile(filepath.Join(root, filepath.FromSlash(f)))
		if err != nil {
			return fmt.Errorf("phasesafe manifest: source %s: %v", f, err)
		}
		if got != m.Sources[f] {
			return fmt.Errorf("phasesafe manifest is stale: %s changed since the proof was emitted (re-run hierlint -manifest)", f)
		}
	}
	return nil
}

// DefaultPath is where hierlint writes the manifest and where the runtime
// looks first: alongside the analysis cache, under the module root.
func DefaultPath(root string) string {
	return filepath.Join(root, ".hierlint-cache", "phasesafe.manifest")
}

// Path resolves the manifest location for a module rooted at root, honoring
// the HIERKNEM_GUARD_MANIFEST override.
func Path(root string) string {
	if p := os.Getenv(EnvPath); p != "" {
		return p
	}
	return DefaultPath(root)
}

// ModuleRoot walks up from dir (or the working directory if dir is empty)
// to the nearest go.mod, the anchor for manifest-relative source paths.
func ModuleRoot(dir string) (string, error) {
	if dir == "" {
		wd, err := os.Getwd()
		if err != nil {
			return "", err
		}
		dir = wd
	}
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("phasesafe: no go.mod above %s", dir)
		}
		dir = parent
	}
}
