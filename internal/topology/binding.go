package topology

import (
	"fmt"
	"sort"
)

// Binding maps MPI ranks to global core ids. The paper evaluates the default
// uniform "by core" strategy, the round-robin "by node" strategy, and the
// irregular placements produced by tools like MPIPP (modeled here as custom
// permutations).
type Binding struct {
	Name   string
	CoreOf []int // rank -> global core id
}

// NP returns the number of bound processes.
func (b *Binding) NP() int { return len(b.CoreOf) }

// Core returns the core a rank is bound to.
func (b *Binding) Core(m *Machine, rank int) *Core { return m.Core(b.CoreOf[rank]) }

// Validate checks that the binding is injective and within machine range.
func (b *Binding) Validate(m *Machine) error {
	seen := make(map[int]bool, len(b.CoreOf))
	for rank, gid := range b.CoreOf {
		if gid < 0 || gid >= m.Spec.TotalCores() {
			return fmt.Errorf("topology: binding %s: rank %d bound to core %d, machine has %d cores",
				b.Name, rank, gid, m.Spec.TotalCores())
		}
		if seen[gid] {
			return fmt.Errorf("topology: binding %s: core %d bound twice", b.Name, gid)
		}
		seen[gid] = true
	}
	return nil
}

// ByCore builds the default binding: sequential ranks fill the cores of a
// node before moving to the next node.
func ByCore(m *Machine, np int) (*Binding, error) {
	if np > m.Spec.TotalCores() {
		return nil, fmt.Errorf("topology: %d processes > %d cores", np, m.Spec.TotalCores())
	}
	b := &Binding{Name: "bycore", CoreOf: make([]int, np)}
	for r := 0; r < np; r++ {
		b.CoreOf[r] = r
	}
	return b, nil
}

// ByNode builds the round-robin binding: one process per node per round,
// skipping nodes whose cores are exhausted, exactly as the paper describes.
func ByNode(m *Machine, np int) (*Binding, error) {
	total := m.Spec.TotalCores()
	if np > total {
		return nil, fmt.Errorf("topology: %d processes > %d cores", np, total)
	}
	cpn := m.Spec.CoresPerNode()
	used := make([]int, m.Spec.Nodes) // next free core index per node
	b := &Binding{Name: "bynode", CoreOf: make([]int, np)}
	r := 0
	for r < np {
		for ni := 0; ni < m.Spec.Nodes && r < np; ni++ {
			if used[ni] >= cpn {
				continue
			}
			b.CoreOf[r] = ni*cpn + used[ni]
			used[ni]++
			r++
		}
	}
	return b, nil
}

// ByCorePPN builds the binding used by the paper's per-node scaling studies
// (Figures 2 and 7): sequential ranks fill exactly ppn cores per node before
// moving to the next node, leaving the remaining cores idle.
func ByCorePPN(m *Machine, np, ppn int) (*Binding, error) {
	if ppn <= 0 || ppn > m.Spec.CoresPerNode() {
		return nil, fmt.Errorf("topology: ppn %d out of range [1,%d]", ppn, m.Spec.CoresPerNode())
	}
	if np > ppn*m.Spec.Nodes {
		return nil, fmt.Errorf("topology: %d processes > %d nodes x %d ppn", np, m.Spec.Nodes, ppn)
	}
	cpn := m.Spec.CoresPerNode()
	b := &Binding{Name: fmt.Sprintf("bycore-ppn%d", ppn), CoreOf: make([]int, np)}
	for r := 0; r < np; r++ {
		node := r / ppn
		slot := r % ppn
		b.CoreOf[r] = node*cpn + slot
	}
	return b, nil
}

// Custom builds a binding from an explicit rank -> core table.
func Custom(name string, coreOf []int) *Binding {
	c := make([]int, len(coreOf))
	copy(c, coreOf)
	return &Binding{Name: name, CoreOf: c}
}

// RanksByNode groups ranks by the node their core lives on, each group in
// ascending rank order. The outer slice is indexed by node id; nodes with no
// ranks have empty groups.
func (b *Binding) RanksByNode(m *Machine) [][]int {
	groups := make([][]int, m.Spec.Nodes)
	for rank, gid := range b.CoreOf {
		ni := m.Core(gid).NodeID
		groups[ni] = append(groups[ni], rank)
	}
	return groups
}

// Leaders returns, for every node hosting at least one rank, that node's
// lowest rank — the inter-node leader — in node-id order.
func (b *Binding) Leaders(m *Machine) []int {
	var leaders []int
	for _, ranks := range b.RanksByNode(m) {
		if len(ranks) > 0 {
			leaders = append(leaders, ranks[0])
		}
	}
	return leaders
}

// PhysicalOrder returns all ranks sorted by physical position: node id, then
// socket id, then core index. This is the order HierKNEM uses to build its
// topology-aware ring, so that only set-boundary edges cross slow links.
func (b *Binding) PhysicalOrder(m *Machine) []int {
	ranks := make([]int, b.NP())
	for i := range ranks {
		ranks[i] = i
	}
	sort.SliceStable(ranks, func(i, j int) bool {
		a, c := m.Core(b.CoreOf[ranks[i]]), m.Core(b.CoreOf[ranks[j]])
		if a.NodeID != c.NodeID {
			return a.NodeID < c.NodeID
		}
		if a.Socket.ID != c.Socket.ID {
			return a.Socket.ID < c.Socket.ID
		}
		return a.Local < c.Local
	})
	return ranks
}

// CrossNodeEdges counts how many consecutive pairs in ring order (including
// the wrap-around edge) connect different nodes — the paper's measure of
// how topology-(un)aware a logical ring is.
func CrossNodeEdges(m *Machine, b *Binding, order []int) int {
	n := len(order)
	if n < 2 {
		return 0
	}
	cross := 0
	for i := 0; i < n; i++ {
		a := m.Core(b.CoreOf[order[i]])
		c := m.Core(b.CoreOf[order[(i+1)%n]])
		if a.NodeID != c.NodeID {
			cross++
		}
	}
	return cross
}
