package topology

import (
	"testing"
	"testing/quick"
)

func testSpec(nodes, sockets, cores int) Spec {
	return Spec{
		Name:              "test",
		Nodes:             nodes,
		SocketsPerNode:    sockets,
		CoresPerSocket:    cores,
		MemBandwidth:      10e9,
		CoreCopyBandwidth: 3e9,
		L3Bandwidth:       8e9,
		L3Size:            12 << 20,
		ShmLatency:        1e-6,
		NetBandwidth:      125e6,
		NetLatency:        50e-6,
		NetFullDuplex:     false,
		EagerThreshold:    4096,
	}
}

func mustBuild(t *testing.T, s Spec) *Machine {
	t.Helper()
	m, err := Build(s)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestBuildShape(t *testing.T) {
	m := mustBuild(t, testSpec(4, 2, 3))
	if len(m.Nodes) != 4 {
		t.Fatalf("nodes = %d, want 4", len(m.Nodes))
	}
	if got := m.Spec.TotalCores(); got != 24 {
		t.Fatalf("total cores = %d, want 24", got)
	}
	// Global core ids are dense and consistent.
	for gid := 0; gid < 24; gid++ {
		c := m.Core(gid)
		if c.GID != gid {
			t.Fatalf("core %d has GID %d", gid, c.GID)
		}
		wantNode := gid / 6
		if c.NodeID != wantNode {
			t.Fatalf("core %d on node %d, want %d", gid, c.NodeID, wantNode)
		}
	}
}

func TestBuildValidation(t *testing.T) {
	bad := testSpec(0, 2, 3)
	if _, err := Build(bad); err == nil {
		t.Fatal("Build accepted zero nodes")
	}
	bad = testSpec(2, 2, 3)
	bad.MemBandwidth = -1
	if _, err := Build(bad); err == nil {
		t.Fatal("Build accepted negative bandwidth")
	}
}

func TestHalfVsFullDuplexNIC(t *testing.T) {
	s := testSpec(2, 1, 2)
	s.NetFullDuplex = false
	m := mustBuild(t, s)
	if m.Nodes[0].NicTx != m.Nodes[0].NicRx {
		t.Fatal("half-duplex NIC should alias TX and RX")
	}
	s.NetFullDuplex = true
	m = mustBuild(t, s)
	if m.Nodes[0].NicTx == m.Nodes[0].NicRx {
		t.Fatal("full-duplex NIC should have distinct TX and RX")
	}
}

func TestDistanceLevels(t *testing.T) {
	m := mustBuild(t, testSpec(2, 2, 2))
	// node0: socket0 {0,1} socket1 {2,3}; node1: {4,5},{6,7}
	cases := []struct{ a, b, want int }{
		{0, 0, DistSameCore},
		{0, 1, DistSameSocket},
		{0, 2, DistSameNode},
		{0, 3, DistSameNode},
		{0, 4, DistRemote},
		{3, 7, DistRemote},
	}
	for _, c := range cases {
		if got := Distance(m.Core(c.a), m.Core(c.b)); got != c.want {
			t.Errorf("Distance(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestByCoreBinding(t *testing.T) {
	m := mustBuild(t, testSpec(2, 1, 4))
	b, err := ByCore(m, 6)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Validate(m); err != nil {
		t.Fatal(err)
	}
	// Ranks 0-3 on node 0, ranks 4-5 on node 1.
	for r := 0; r < 4; r++ {
		if b.Core(m, r).NodeID != 0 {
			t.Fatalf("rank %d not on node 0", r)
		}
	}
	for r := 4; r < 6; r++ {
		if b.Core(m, r).NodeID != 1 {
			t.Fatalf("rank %d not on node 1", r)
		}
	}
}

func TestByNodeBinding(t *testing.T) {
	m := mustBuild(t, testSpec(3, 1, 2))
	b, err := ByNode(m, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Validate(m); err != nil {
		t.Fatal(err)
	}
	wantNodes := []int{0, 1, 2, 0, 1}
	for r, want := range wantNodes {
		if got := b.Core(m, r).NodeID; got != want {
			t.Fatalf("rank %d on node %d, want %d", r, got, want)
		}
	}
}

func TestByNodeSkipsExhaustedNodes(t *testing.T) {
	// Asymmetric usage is impossible with identical nodes, but the full
	// machine forces wraparound with skipping when np == total.
	m := mustBuild(t, testSpec(2, 1, 3))
	b, err := ByNode(m, 6)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Validate(m); err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	for r := 0; r < 6; r++ {
		counts[b.Core(m, r).NodeID]++
	}
	if counts[0] != 3 || counts[1] != 3 {
		t.Fatalf("per-node counts = %v, want 3 each", counts)
	}
}

func TestBindingOverflow(t *testing.T) {
	m := mustBuild(t, testSpec(2, 1, 2))
	if _, err := ByCore(m, 5); err == nil {
		t.Fatal("ByCore accepted np > cores")
	}
	if _, err := ByNode(m, 5); err == nil {
		t.Fatal("ByNode accepted np > cores")
	}
}

func TestValidateRejectsDuplicates(t *testing.T) {
	m := mustBuild(t, testSpec(2, 1, 2))
	b := Custom("dup", []int{0, 0})
	if err := b.Validate(m); err == nil {
		t.Fatal("Validate accepted duplicate core binding")
	}
	b = Custom("oob", []int{0, 99})
	if err := b.Validate(m); err == nil {
		t.Fatal("Validate accepted out-of-range core")
	}
}

func TestLeadersAndGroups(t *testing.T) {
	m := mustBuild(t, testSpec(3, 1, 2))
	b, _ := ByNode(m, 6)
	groups := b.RanksByNode(m)
	if len(groups) != 3 {
		t.Fatalf("groups = %d, want 3", len(groups))
	}
	// bynode: node0 {0,3}, node1 {1,4}, node2 {2,5}
	if groups[0][0] != 0 || groups[0][1] != 3 {
		t.Fatalf("node0 ranks = %v", groups[0])
	}
	leaders := b.Leaders(m)
	want := []int{0, 1, 2}
	for i := range want {
		if leaders[i] != want[i] {
			t.Fatalf("leaders = %v, want %v", leaders, want)
		}
	}
}

func TestPhysicalOrderClusters(t *testing.T) {
	m := mustBuild(t, testSpec(2, 2, 2))
	b, _ := ByNode(m, 8)
	order := b.PhysicalOrder(m)
	// Consecutive entries must never go backwards in (node, socket).
	for i := 1; i < len(order); i++ {
		a := b.Core(m, order[i-1])
		c := b.Core(m, order[i])
		if a.NodeID > c.NodeID {
			t.Fatalf("physical order visits node %d after %d", c.NodeID, a.NodeID)
		}
		if a.NodeID == c.NodeID && a.Socket.ID > c.Socket.ID {
			t.Fatalf("physical order visits socket %d after %d on node %d",
				c.Socket.ID, a.Socket.ID, a.NodeID)
		}
	}
}

func TestCrossNodeEdges(t *testing.T) {
	m := mustBuild(t, testSpec(4, 1, 4))
	b, _ := ByCore(m, 16)

	rankOrder := make([]int, 16)
	for i := range rankOrder {
		rankOrder[i] = i
	}
	// by-core: rank order already clusters nodes -> 4 crossing edges.
	if got := CrossNodeEdges(m, b, rankOrder); got != 4 {
		t.Fatalf("bycore rank-ring crossings = %d, want 4", got)
	}

	bn, _ := ByNode(m, 16)
	// by-node binding with rank-ordered ring: every edge crosses nodes.
	if got := CrossNodeEdges(m, bn, rankOrder); got != 16 {
		t.Fatalf("bynode rank-ring crossings = %d, want 16", got)
	}
	// ...but the physical order restores the minimum.
	if got := CrossNodeEdges(m, bn, bn.PhysicalOrder(m)); got != 4 {
		t.Fatalf("bynode physical-ring crossings = %d, want 4", got)
	}
}

func TestCacheTouchAndResidency(t *testing.T) {
	m := mustBuild(t, testSpec(1, 1, 2))
	s := m.Nodes[0].Sockets[0]
	s.Touch(1, 4<<20)
	if !s.Resident(1) {
		t.Fatal("buffer 1 should be resident")
	}
	// Oversized buffers are never resident.
	s.Touch(2, 64<<20)
	if s.Resident(2) {
		t.Fatal("oversized buffer marked resident")
	}
	// Filling the cache evicts the oldest entry.
	s.Touch(3, 6<<20)
	s.Touch(4, 6<<20) // 4+6+6 > 12 MB: buffer 1 evicted
	if s.Resident(1) {
		t.Fatal("buffer 1 should have been evicted")
	}
	if !s.Resident(4) {
		t.Fatal("buffer 4 should be resident")
	}
}

func TestReadBandwidthUsesL3WhenResident(t *testing.T) {
	m := mustBuild(t, testSpec(1, 1, 2))
	s := m.Nodes[0].Sockets[0]
	spec := &m.Spec
	if got := s.ReadBandwidth(spec, 7); got != spec.CoreCopyBandwidth {
		t.Fatalf("cold read bw = %g, want core ceiling %g", got, spec.CoreCopyBandwidth)
	}
	s.Touch(7, 1<<20)
	if got := s.ReadBandwidth(spec, 7); got != spec.L3Bandwidth {
		t.Fatalf("warm read bw = %g, want L3 %g", got, spec.L3Bandwidth)
	}
}

// Property: ByCore and ByNode always produce valid (injective, in-range)
// bindings whose physical order has the minimal number of cross-node ring
// edges (= number of occupied nodes, when more than one node is occupied).
func TestQuickBindingsValid(t *testing.T) {
	f := func(nodes8, socks8, cores8, np16 uint8) bool {
		nodes := int(nodes8%6) + 1
		socks := int(socks8%3) + 1
		cores := int(cores8%4) + 1
		total := nodes * socks * cores
		np := int(np16)%total + 1
		m, err := Build(testSpec(nodes, socks, cores))
		if err != nil {
			return false
		}
		for _, mk := range []func(*Machine, int) (*Binding, error){ByCore, ByNode} {
			b, err := mk(m, np)
			if err != nil || b.Validate(m) != nil {
				return false
			}
			occupied := 0
			for _, g := range b.RanksByNode(m) {
				if len(g) > 0 {
					occupied++
				}
			}
			cross := CrossNodeEdges(m, b, b.PhysicalOrder(m))
			if occupied == 1 && cross != 0 {
				return false
			}
			if occupied > 1 && cross != occupied {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
