package topology

import (
	"testing"
	"testing/quick"
)

func TestByCorePPNLayout(t *testing.T) {
	m := mustBuild(t, testSpec(4, 2, 3)) // 6 cores per node
	b, err := ByCorePPN(m, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Validate(m); err != nil {
		t.Fatal(err)
	}
	// ppn=2: ranks 0,1 -> node0 cores 0,1; ranks 2,3 -> node1 cores 6,7...
	wantCores := []int{0, 1, 6, 7, 12, 13, 18, 19}
	for r, want := range wantCores {
		if b.CoreOf[r] != want {
			t.Fatalf("rank %d on core %d, want %d", r, b.CoreOf[r], want)
		}
	}
}

func TestByCorePPNBounds(t *testing.T) {
	m := mustBuild(t, testSpec(2, 1, 4))
	if _, err := ByCorePPN(m, 4, 0); err == nil {
		t.Fatal("accepted ppn=0")
	}
	if _, err := ByCorePPN(m, 4, 5); err == nil {
		t.Fatal("accepted ppn > cores per node")
	}
	if _, err := ByCorePPN(m, 9, 4); err == nil {
		t.Fatal("accepted np > nodes*ppn")
	}
}

func TestByCorePPNUniformContiguous(t *testing.T) {
	m := mustBuild(t, testSpec(3, 2, 4))
	b, err := ByCorePPN(m, 9, 3)
	if err != nil {
		t.Fatal(err)
	}
	groups := b.RanksByNode(m)
	for ni, g := range groups {
		if len(g) != 3 {
			t.Fatalf("node %d has %d ranks, want 3", ni, len(g))
		}
		for i := 1; i < len(g); i++ {
			if g[i] != g[i-1]+1 {
				t.Fatalf("node %d ranks not contiguous: %v", ni, g)
			}
		}
	}
}

// Property: ByCorePPN is always valid and places rank r on node r/ppn.
func TestQuickByCorePPN(t *testing.T) {
	f := func(nodes8, socks8, cores8, ppn8 uint8) bool {
		nodes := int(nodes8%5) + 1
		socks := int(socks8%2) + 1
		cores := int(cores8%4) + 1
		cpn := socks * cores
		ppn := int(ppn8)%cpn + 1
		np := ppn * nodes
		m, err := Build(testSpec(nodes, socks, cores))
		if err != nil {
			return false
		}
		b, err := ByCorePPN(m, np, ppn)
		if err != nil || b.Validate(m) != nil {
			return false
		}
		for r := 0; r < np; r++ {
			if b.Core(m, r).NodeID != r/ppn {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
