// Package topology models the hardware of a many-core cluster: nodes,
// sockets (NUMA domains), cores, caches, NICs and the inter-node network —
// each backed by fabric resources — together with process-to-core bindings
// and physical-distance queries.
//
// The model mirrors the machines in the HierKNEM paper: Grid'5000's Stremi
// and Parapluie clusters (32 nodes, 2× AMD Opteron 6164 HE, 12 cores per
// socket, one NUMA domain per socket with a 12 MB L3), interconnected by
// Gigabit Ethernet or InfiniBand 20G.
package topology

import (
	"fmt"

	"hierknem/internal/des"
	"hierknem/internal/fabric"
)

// Spec declares a cluster's hardware parameters. Bandwidths are bytes/s,
// latencies seconds, sizes bytes.
type Spec struct {
	Name           string
	Nodes          int
	SocketsPerNode int
	CoresPerSocket int

	// Intra-node memory system.
	MemBandwidth      float64 // per-socket (NUMA) memory bus
	CoreCopyBandwidth float64 // single-core copy engine ceiling
	L3Bandwidth       float64 // per-core copy ceiling when the source is L3-resident
	L3TotalBandwidth  float64 // aggregate per-socket L3 read bandwidth (0: 3x MemBandwidth)
	L3Size            int64   // per-socket last-level cache
	ShmLatency        float64 // per-operation intra-node latency

	// Inter-node network.
	NetBandwidth   float64 // per NIC per direction
	NetLatency     float64 // one-way small-message latency
	NetFullDuplex  bool    // false: TX and RX share one NIC resource
	NetPerMsgCPU   float64 // per-message software/driver overhead on the sender core
	BackplaneBW    float64 // optional switch backplane capacity; 0 = non-blocking
	EagerThreshold int64   // p2p eager/rendezvous switch (bytes)
}

// Validate reports the first problem with the spec.
func (s *Spec) Validate() error {
	switch {
	case s.Nodes <= 0:
		return fmt.Errorf("topology: %s: Nodes = %d", s.Name, s.Nodes)
	case s.SocketsPerNode <= 0:
		return fmt.Errorf("topology: %s: SocketsPerNode = %d", s.Name, s.SocketsPerNode)
	case s.CoresPerSocket <= 0:
		return fmt.Errorf("topology: %s: CoresPerSocket = %d", s.Name, s.CoresPerSocket)
	case s.MemBandwidth <= 0, s.CoreCopyBandwidth <= 0, s.NetBandwidth <= 0:
		return fmt.Errorf("topology: %s: bandwidths must be positive", s.Name)
	case s.NetLatency < 0 || s.ShmLatency < 0:
		return fmt.Errorf("topology: %s: latencies must be non-negative", s.Name)
	}
	return nil
}

// CoresPerNode returns SocketsPerNode * CoresPerSocket.
func (s *Spec) CoresPerNode() int { return s.SocketsPerNode * s.CoresPerSocket }

// TotalCores returns the cluster-wide core count.
func (s *Spec) TotalCores() int { return s.Nodes * s.CoresPerNode() }

// Machine is a built cluster: every hardware element holds its fabric
// resources and the whole machine shares one event engine.
type Machine struct {
	Spec  Spec
	Eng   *des.Engine
	Fab   *fabric.Net
	Nodes []*Node

	// Backplane is non-nil when Spec.BackplaneBW > 0; every inter-node
	// flow crosses it, modeling an oversubscribed switch.
	Backplane *fabric.Resource

	cores []*Core // flat index by global core id
}

// Node is one compute node with its NIC(s).
type Node struct {
	ID      int
	Sockets []*Socket

	// NicTx/NicRx are the per-direction NIC resources. With a half-duplex
	// network they alias the same resource.
	NicTx, NicRx *fabric.Resource
}

// Socket is a NUMA domain: a memory bus shared by its cores plus an L3 cache
// with its own (higher-bandwidth) read port.
type Socket struct {
	ID     int // socket index within node
	NodeID int
	MemBus *fabric.Resource
	L3Bus  *fabric.Resource
	Cores  []*Core

	l3 *cacheState
}

// Core is one processor core.
type Core struct {
	GID    int // global core id
	NodeID int
	Socket *Socket
	Local  int // index within socket
}

// Build constructs a Machine (engine, fabric, resources) from a spec.
func Build(spec Spec) (*Machine, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	eng := des.New()
	fab := fabric.NewNet(eng)
	m := &Machine{Spec: spec, Eng: eng, Fab: fab}
	if spec.BackplaneBW > 0 {
		m.Backplane = fab.NewResource(spec.Name+"/backplane", spec.BackplaneBW)
	}
	gid := 0
	for ni := 0; ni < spec.Nodes; ni++ {
		node := &Node{ID: ni}
		// PDES domain = node index + 1; the backplane keeps the global
		// domain 0 (it couples every node). A NIC belongs to its node:
		// an inter-node flow spans two NIC domains and so collapses its
		// component to the global domain, which is exactly the
		// conservative treatment cross-domain traffic needs.
		dom := int32(ni) + 1
		if spec.NetFullDuplex {
			node.NicTx = fab.NewResource(fmt.Sprintf("n%d/nic-tx", ni), spec.NetBandwidth)
			node.NicRx = fab.NewResource(fmt.Sprintf("n%d/nic-rx", ni), spec.NetBandwidth)
		} else {
			nic := fab.NewResource(fmt.Sprintf("n%d/nic", ni), spec.NetBandwidth)
			node.NicTx, node.NicRx = nic, nic
		}
		node.NicTx.SetDomain(dom)
		node.NicRx.SetDomain(dom)
		l3bw := spec.L3TotalBandwidth
		if l3bw == 0 {
			l3bw = 3 * spec.MemBandwidth
		}
		for si := 0; si < spec.SocketsPerNode; si++ {
			sock := &Socket{
				ID:     si,
				NodeID: ni,
				MemBus: fab.NewResource(fmt.Sprintf("n%d/s%d/mem", ni, si), spec.MemBandwidth),
				L3Bus:  fab.NewResource(fmt.Sprintf("n%d/s%d/l3", ni, si), l3bw),
				l3:     newCacheState(spec.L3Size),
			}
			sock.MemBus.SetDomain(dom)
			sock.L3Bus.SetDomain(dom)
			for ci := 0; ci < spec.CoresPerSocket; ci++ {
				core := &Core{GID: gid, NodeID: ni, Socket: sock, Local: ci}
				sock.Cores = append(sock.Cores, core)
				m.cores = append(m.cores, core)
				gid++
			}
			node.Sockets = append(node.Sockets, sock)
		}
		m.Nodes = append(m.Nodes, node)
	}
	return m, nil
}

// Reset returns the machine to its pristine post-Build state for reuse by a
// consecutive same-spec run: the engine clock and queues, the fabric's
// counters and resource integrals, and every socket's L3 residency tracker
// are cleared, while the built structure — nodes, sockets, cores, fabric
// resources — and all warm pools survive. Buffer ids are process-globally
// unique and new buffers start cold, so clearing residency reproduces a
// fresh machine's cache behavior exactly.
func (m *Machine) Reset() {
	m.Eng.Reset()
	m.Fab.Reset()
	for _, node := range m.Nodes {
		for _, sock := range node.Sockets {
			c := sock.l3
			c.used = 0
			clear(c.resident)
			c.order = c.order[:0]
		}
	}
}

// Partition exposes the machine's PDES decomposition to the engine's
// conservative parallel mode: one domain per node, with the window
// lookahead equal to the inter-node one-way latency — no event scheduled
// from one node can affect another node sooner than one network latency
// away. The epoch mirrors the fabric's component-structure epoch, so a
// component merge or split invalidates the cached lookahead.
func (m *Machine) Partition() des.Partition { return machinePartition{m} }

type machinePartition struct{ m *Machine }

func (p machinePartition) Domains() int       { return p.m.Spec.Nodes }
func (p machinePartition) Lookahead() float64 { return p.m.Spec.NetLatency }
func (p machinePartition) Epoch() uint64      { return p.m.Fab.Epoch() }

// Core returns the core with global id gid.
func (m *Machine) Core(gid int) *Core {
	if gid < 0 || gid >= len(m.cores) {
		panic(fmt.Sprintf("topology: core id %d out of range [0,%d)", gid, len(m.cores)))
	}
	return m.cores[gid]
}

// Distance levels between two cores, ordered by increasing cost.
const (
	DistSameCore   = 0
	DistSameSocket = 1
	DistSameNode   = 2
	DistRemote     = 3
)

// Distance returns the physical distance level between two cores.
func Distance(a, b *Core) int {
	switch {
	case a == b:
		return DistSameCore
	case a.Socket == b.Socket:
		return DistSameSocket
	case a.NodeID == b.NodeID:
		return DistSameNode
	default:
		return DistRemote
	}
}

// cacheState tracks which buffers are L3-resident on a socket, with a
// trivial capacity-bounded FIFO eviction. It exists to reproduce the IMB
// root-rotation cache effect in the paper's Figure 6(a).
type cacheState struct {
	capacity int64
	used     int64
	resident map[uint64]int64
	order    []uint64
}

func newCacheState(capacity int64) *cacheState {
	return &cacheState{capacity: capacity, resident: make(map[uint64]int64)}
}

// Touch marks buffer id as resident with the given footprint, evicting the
// oldest entries when over capacity. Streams larger than half the cache are
// never considered resident: a working set that large evicts itself (and
// everything else) while being written, so subsequent readers hit DRAM.
func (s *Socket) Touch(id uint64, bytes int64) {
	c := s.l3
	if c.capacity <= 0 || bytes > c.capacity/2 {
		delete(c.resident, id)
		return
	}
	if old, ok := c.resident[id]; ok {
		c.used -= old
	} else {
		c.order = append(c.order, id)
	}
	c.resident[id] = bytes
	c.used += bytes
	for c.used > c.capacity && len(c.order) > 0 {
		victim := c.order[0]
		c.order = c.order[1:]
		if victim == id {
			// Never evict the entry just touched; rotate it to the back.
			// Touch guarantees bytes <= capacity, so some other entry
			// must exist while used > capacity.
			c.order = append(c.order, victim)
			continue
		}
		if sz, ok := c.resident[victim]; ok {
			c.used -= sz
			delete(c.resident, victim)
		}
	}
}

// Resident reports whether buffer id is L3-resident on this socket.
func (s *Socket) Resident(id uint64) bool {
	_, ok := s.l3.resident[id]
	return ok
}

// ResidentSpan returns the resident footprint recorded for buffer id, or 0.
func (s *Socket) ResidentSpan(id uint64) int64 {
	return s.l3.resident[id]
}

// ReadBandwidth returns the copy-source bandwidth ceiling for a core reading
// buffer id: L3 bandwidth when resident, the core copy ceiling otherwise.
func (s *Socket) ReadBandwidth(spec *Spec, id uint64) float64 {
	if s.Resident(id) && spec.L3Bandwidth > spec.CoreCopyBandwidth {
		return spec.L3Bandwidth
	}
	return spec.CoreCopyBandwidth
}

// ReadSide resolves where a read of n bytes of buffer id on this socket is
// served from: the L3 port when the region's resident footprint covers the
// read, the memory bus otherwise. It returns the source resource and the
// per-core rate ceiling for the reading core (higher for same-socket
// L3 hits).
func (s *Socket) ReadSide(spec *Spec, id uint64, n int64, readerSameSocket bool) (*fabric.Resource, float64) {
	if id != 0 && n > 0 && s.ResidentSpan(id) >= n {
		rate := spec.CoreCopyBandwidth
		if readerSameSocket && spec.L3Bandwidth > rate {
			rate = spec.L3Bandwidth
		}
		return s.L3Bus, rate
	}
	return s.MemBus, spec.CoreCopyBandwidth
}
