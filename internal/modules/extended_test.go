package modules

import (
	"bytes"
	"fmt"
	"testing"

	"hierknem/internal/buffer"
	"hierknem/internal/coll"
	"hierknem/internal/mpi"
)

func TestModulesScatterConformance(t *testing.T) {
	for _, mod := range allModules() {
		for _, bind := range []string{"bycore", "bynode"} {
			for _, block := range []int{64, 5000, 70000} {
				for _, root := range []int{0, 5} {
					name := fmt.Sprintf("%s/%s/%dB/root%d", mod.Name(), bind, block, root)
					t.Run(name, func(t *testing.T) {
						const np = 12
						w := labWorld(t, 3, 1, 4, bind, np)
						bad := 0
						err := w.Run(func(p *mpi.Proc) {
							c := w.WorldComm()
							me := c.Rank(p)
							var sbuf *buffer.Buffer
							if me == root {
								all := make([]byte, block*np)
								for r := 0; r < np; r++ {
									copy(all[r*block:(r+1)*block], pattern(r, block))
								}
								sbuf = buffer.NewReal(all)
							}
							rbuf := buffer.NewReal(make([]byte, block))
							mod.Scatter(p, c, sbuf, rbuf, root)
							if !bytes.Equal(rbuf.Data(), pattern(me, block)) {
								bad++
							}
						})
						if err != nil {
							t.Fatal(err)
						}
						if bad != 0 {
							t.Fatalf("%d ranks got wrong blocks", bad)
						}
					})
				}
			}
		}
	}
}

func TestModulesGatherConformance(t *testing.T) {
	for _, mod := range allModules() {
		for _, bind := range []string{"bycore", "bynode"} {
			for _, block := range []int{64, 5000, 70000} {
				for _, root := range []int{0, 7} {
					name := fmt.Sprintf("%s/%s/%dB/root%d", mod.Name(), bind, block, root)
					t.Run(name, func(t *testing.T) {
						const np = 12
						w := labWorld(t, 3, 1, 4, bind, np)
						var got []byte
						err := w.Run(func(p *mpi.Proc) {
							c := w.WorldComm()
							me := c.Rank(p)
							sbuf := buffer.NewReal(pattern(me, block))
							var rbuf *buffer.Buffer
							if me == root {
								rbuf = buffer.NewReal(make([]byte, block*np))
							}
							mod.Gather(p, c, sbuf, rbuf, root)
							if me == root {
								got = append([]byte(nil), rbuf.Data()...)
							}
						})
						if err != nil {
							t.Fatal(err)
						}
						for r := 0; r < np; r++ {
							if !bytes.Equal(got[r*block:(r+1)*block], pattern(r, block)) {
								t.Fatalf("block %d wrong at root", r)
							}
						}
					})
				}
			}
		}
	}
}

func TestModulesAllreduceConformance(t *testing.T) {
	for _, mod := range allModules() {
		for _, bind := range []string{"bycore", "bynode"} {
			for _, elems := range []int{32, 1000, 50000} {
				name := fmt.Sprintf("%s/%s/%delems", mod.Name(), bind, elems)
				t.Run(name, func(t *testing.T) {
					const np = 12
					w := labWorld(t, 3, 1, 4, bind, np)
					want := make([]int64, elems)
					for r := 0; r < np; r++ {
						for i := range want {
							want[i] += int64(r*7 + i)
						}
					}
					bad := 0
					err := w.Run(func(p *mpi.Proc) {
						c := w.WorldComm()
						me := c.Rank(p)
						vals := make([]int64, elems)
						for i := range vals {
							vals[i] = int64(me*7 + i)
						}
						sbuf := buffer.Int64s(vals)
						rbuf := buffer.Int64s(make([]int64, elems))
						mod.Allreduce(p, c, coll.ReduceArgs{Op: buffer.OpSum, Dtype: buffer.Int64}, sbuf, rbuf)
						got := buffer.AsInt64s(rbuf)
						for i := range want {
							if got[i] != want[i] {
								bad++
								break
							}
						}
					})
					if err != nil {
						t.Fatal(err)
					}
					if bad != 0 {
						t.Fatalf("%d ranks computed wrong allreduce", bad)
					}
				})
			}
		}
	}
}

// Scatter and Gather must also survive degenerate layouts.
func TestExtendedDegenerateLayouts(t *testing.T) {
	const block = 3000
	layouts := []struct {
		name         string
		nodes, cores int
		np           int
		bind         string
	}{
		{"single-node", 1, 8, 8, "bycore"},
		{"one-per-node", 4, 2, 4, "bynode"},
		{"partial", 3, 4, 7, "bycore"},
	}
	for _, mod := range allModules() {
		for _, lay := range layouts {
			t.Run(fmt.Sprintf("%s/%s", mod.Name(), lay.name), func(t *testing.T) {
				w := labWorld(t, lay.nodes, 1, lay.cores, lay.bind, lay.np)
				bad := 0
				err := w.Run(func(p *mpi.Proc) {
					c := w.WorldComm()
					me := c.Rank(p)
					var sbuf *buffer.Buffer
					if me == 0 {
						all := make([]byte, block*lay.np)
						for r := 0; r < lay.np; r++ {
							copy(all[r*block:(r+1)*block], pattern(r, block))
						}
						sbuf = buffer.NewReal(all)
					}
					rbuf := buffer.NewReal(make([]byte, block))
					mod.Scatter(p, c, sbuf, rbuf, 0)
					if !bytes.Equal(rbuf.Data(), pattern(me, block)) {
						bad++
					}
					// Round-trip: gather the scattered blocks back.
					var gbuf *buffer.Buffer
					if me == 0 {
						gbuf = buffer.NewReal(make([]byte, block*lay.np))
					}
					mod.Gather(p, c, rbuf, gbuf, 0)
					if me == 0 && sbuf != nil && !bytes.Equal(gbuf.Data(), sbuf.Data()) {
						bad++
					}
				})
				if err != nil {
					t.Fatal(err)
				}
				if bad != 0 {
					t.Fatalf("%d failures", bad)
				}
			})
		}
	}
}
