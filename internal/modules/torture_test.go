package modules

import (
	"bytes"
	"math/rand"
	"testing"

	"hierknem/internal/buffer"
	"hierknem/internal/coll"
	"hierknem/internal/core"
	"hierknem/internal/mpi"
)

// TestTortureRandomSequences drives every module through random sequences
// of collectives (random ops, sizes, roots) on a single world — the pattern
// real applications produce — and verifies data after every operation.
// It exercises blackboard-key sequencing, hierarchy caching, tag reuse and
// repeated Split correctness.
func TestTortureRandomSequences(t *testing.T) {
	mods := []Module{
		Tuned(Quirks{}),
		Hierarch(Quirks{}),
		MPICH2(Quirks{}),
		MVAPICH2(),
		core.New(core.Options{}),
		core.New(core.Options{CacheTopology: true}),
	}
	for mi, mod := range mods {
		name := mod.Name()
		if mi == 5 {
			name += "-cached"
		}
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(42 + mi)))
			const np = 12
			w := labWorld(t, 3, 1, 4, "bycore", np)
			for step := 0; step < 12; step++ {
				op := rng.Intn(4)
				size := []int{64, 2000, 9000, 40000}[rng.Intn(4)]
				root := rng.Intn(np)
				var failures int
				err := w.Run(func(p *mpi.Proc) {
					c := w.WorldComm()
					me := c.Rank(p)
					switch op {
					case 0: // bcast
						want := pattern(step, size)
						var buf *buffer.Buffer
						if me == root {
							buf = buffer.NewReal(append([]byte(nil), want...))
						} else {
							buf = buffer.NewReal(make([]byte, size))
						}
						mod.Bcast(p, c, buf, root)
						if !bytes.Equal(buf.Data(), want) {
							failures++
						}
					case 1: // reduce
						elems := size / 8
						vals := make([]int64, elems)
						for i := range vals {
							vals[i] = int64(me*step + i)
						}
						sbuf := buffer.Int64s(vals)
						var rbuf *buffer.Buffer
						if me == root {
							rbuf = buffer.Int64s(make([]int64, elems))
						}
						mod.Reduce(p, c, coll.ReduceArgs{Op: buffer.OpSum, Dtype: buffer.Int64}, sbuf, rbuf, root)
						if me == root {
							got := buffer.AsInt64s(rbuf)
							for i := range got {
								want := int64(0)
								for r := 0; r < np; r++ {
									want += int64(r*step + i)
								}
								if got[i] != want {
									failures++
									break
								}
							}
						}
					case 2: // allgather
						sbuf := buffer.NewReal(pattern(me+step, size))
						rbuf := buffer.NewReal(make([]byte, size*np))
						mod.Allgather(p, c, sbuf, rbuf)
						for r := 0; r < np; r++ {
							if !bytes.Equal(rbuf.Data()[r*size:(r+1)*size], pattern(r+step, size)) {
								failures++
								break
							}
						}
					case 3: // allreduce
						elems := size / 8
						vals := make([]int64, elems)
						for i := range vals {
							vals[i] = int64(me ^ (i + step))
						}
						sbuf := buffer.Int64s(vals)
						rbuf := buffer.Int64s(make([]int64, elems))
						mod.Allreduce(p, c, coll.ReduceArgs{Op: buffer.OpSum, Dtype: buffer.Int64}, sbuf, rbuf)
						got := buffer.AsInt64s(rbuf)
						for i := range got {
							want := int64(0)
							for r := 0; r < np; r++ {
								want += int64(r ^ (i + step))
							}
							if got[i] != want {
								failures++
								break
							}
						}
					}
				})
				if err != nil {
					t.Fatalf("step %d (op %d size %d root %d): %v", step, op, size, root, err)
				}
				if failures != 0 {
					t.Fatalf("step %d (op %d size %d root %d): %d ranks wrong", step, op, size, root, failures)
				}
			}
		})
	}
}

// TestTortureSubCommunicators runs collectives on split sub-communicators
// (odd/even ranks), which cross node boundaries irregularly.
func TestTortureSubCommunicators(t *testing.T) {
	for _, mod := range allModules() {
		t.Run(mod.Name(), func(t *testing.T) {
			const np = 12
			w := labWorld(t, 3, 1, 4, "bycore", np)
			const size = 12000
			bad := 0
			err := w.Run(func(p *mpi.Proc) {
				world := w.WorldComm()
				me := world.Rank(p)
				sub := world.Split(p, me%2, me)
				want := pattern(me%2, size)
				var buf *buffer.Buffer
				if sub.Rank(p) == 0 {
					buf = buffer.NewReal(append([]byte(nil), want...))
				} else {
					buf = buffer.NewReal(make([]byte, size))
				}
				mod.Bcast(p, sub, buf, 0)
				if !bytes.Equal(buf.Data(), want) {
					bad++
				}
				// And an allgather on the sub-communicator.
				sbuf := buffer.NewReal(pattern(me, 777))
				rbuf := buffer.NewReal(make([]byte, 777*sub.Size()))
				mod.Allgather(p, sub, sbuf, rbuf)
				for r := 0; r < sub.Size(); r++ {
					worldRank := sub.WorldRank(r)
					if !bytes.Equal(rbuf.Data()[r*777:(r+1)*777], pattern(worldRank, 777)) {
						bad++
						break
					}
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			if bad != 0 {
				t.Fatalf("%d failures on sub-communicators", bad)
			}
		})
	}
}
