package modules

import (
	"fmt"

	"hierknem/internal/buffer"
	"hierknem/internal/coll"
	"hierknem/internal/mpi"
	"hierknem/internal/shm"
	"hierknem/internal/topology"
)

// smShare is a blackboard record describing a buffer sitting in a shared
// segment: who owns it and which NUMA socket it lives on.
type smShare struct {
	buf  *buffer.Buffer
	sock *topology.Socket
}

// The three sm* helpers below are the shared intra-node stretches of every
// classic two-level personality (hierarch, MVAPICH2). Each is node-confined
// by construction — blackboard posts, intra-node barriers and shared-segment
// copies among the ranks of one node — so when the message is small enough
// for the fabric bypass, every participant (the leader included; the
// brackets must be collective) wraps the whole stretch in EnterNodePhase/
// ExitNodePhase and the parallel engine runs the node on its own worker.

// smBcastIntra is the legacy shared-memory intra-node broadcast: the leader
// (lcomm rank 0) copies the whole message into the shared segment
// (copy-in, charged to the leader), then every non-leader copies it out
// (copy-out, concurrent). The leader is busy for the full copy-in and blocked
// until the slowest copy-out finishes — the serialization HierKNEM removes.
func smBcastIntra(p *mpi.Proc, lcomm *mpi.Comm, buf *buffer.Buffer) {
	if lcomm.Size() <= 1 {
		return
	}
	bracket := p.PhaseEligible(lcomm, buf.Len())
	if bracket {
		p.EnterNodePhase()
	}
	key := fmt.Sprintf("smbcast/%d", lcomm.Seq(p))
	m := p.World().Machine
	if lcomm.Rank(p) == 0 {
		shm.Copy(p.DES(), m, p.Core(), p.Core().Socket, p.Core().Socket, buf.Len(), buf.ID())
		lcomm.BBPost(p, key, smShare{buf: buf, sock: p.Core().Socket})
		lcomm.Barrier(p) // release readers
		lcomm.Barrier(p) // wait for readers to finish
		lcomm.BBClear(key)
	} else {
		lcomm.Barrier(p)
		sh := lcomm.BBWait(p, key).(smShare)
		shm.CopyBuffer(p.DES(), m, p.Core(), sh.sock, p.Core().Socket, sh.buf, buf)
		lcomm.Barrier(p)
	}
	if bracket {
		p.ExitNodePhase()
	}
}

// smReduceIntra is the legacy shared-memory intra-node reduction: every
// non-leader copies its contribution into the shared segment, then the
// leader folds the contributions in sequentially — (k-1) reductions on the
// leader's core, the hot spot the paper's Figure 4 discussion blames.
// The reduced result lands in acc (leader only); acc must already contain
// the leader's own contribution.
func smReduceIntra(p *mpi.Proc, lcomm *mpi.Comm, a coll.ReduceArgs, sbuf, acc *buffer.Buffer) {
	if lcomm.Size() <= 1 {
		return
	}
	// acc is nil off the leader and sbuf-sized on it, so the extra conjunct
	// never changes the bracket decision; it is what bounds the fold's
	// accumulator for the phasesafe proof.
	bracket := p.PhaseEligible(lcomm, sbuf.Len()) &&
		(acc == nil || p.PhaseEligible(lcomm, acc.Len()))
	if bracket {
		p.EnterNodePhase()
	}
	seq := lcomm.Seq(p)
	m := p.World().Machine
	me := lcomm.Rank(p)
	if me != 0 {
		// copy-in my contribution (bounce buffer in my socket).
		shm.Copy(p.DES(), m, p.Core(), p.Core().Socket, p.Core().Socket, sbuf.Len(), sbuf.ID())
		lcomm.BBPost(p, fmt.Sprintf("smreduce/%d/%d", seq, me), smShare{buf: sbuf, sock: p.Core().Socket})
		lcomm.Barrier(p) // contributions ready
		lcomm.Barrier(p) // leader done
	} else {
		lcomm.Barrier(p)
		for r := 1; r < lcomm.Size(); r++ {
			key := fmt.Sprintf("smreduce/%d/%d", seq, r)
			sh := lcomm.BBWait(p, key).(smShare)
			p.ReduceLocal(a.Op, a.Dtype, acc, sh.buf)
			lcomm.BBClear(key)
		}
		lcomm.Barrier(p)
	}
	if bracket {
		p.ExitNodePhase()
	}
}

// smGatherIntra gathers every member's block into the leader's rbuf
// (rank-order layout within the node group): members copy-in, the leader
// copies each block out sequentially.
func smGatherIntra(p *mpi.Proc, lcomm *mpi.Comm, sbuf, rbuf *buffer.Buffer) {
	if lcomm.Size() <= 1 {
		if lcomm.Rank(p) == 0 {
			rbuf.Slice(0, sbuf.Len()).CopyFrom(sbuf)
		}
		return
	}
	block := sbuf.Len()
	bracket := p.PhaseEligible(lcomm, block)
	if bracket {
		p.EnterNodePhase()
	}
	seq := lcomm.Seq(p)
	m := p.World().Machine
	me := lcomm.Rank(p)
	if me != 0 {
		shm.Copy(p.DES(), m, p.Core(), p.Core().Socket, p.Core().Socket, block, sbuf.ID())
		lcomm.BBPost(p, fmt.Sprintf("smgather/%d/%d", seq, me), smShare{buf: sbuf, sock: p.Core().Socket})
		lcomm.Barrier(p)
		lcomm.Barrier(p)
	} else {
		rbuf.Slice(0, block).CopyFrom(sbuf)
		lcomm.Barrier(p)
		for r := 1; r < lcomm.Size(); r++ {
			key := fmt.Sprintf("smgather/%d/%d", seq, r)
			sh := lcomm.BBWait(p, key).(smShare)
			dst := rbuf.Slice(int64(r)*block, block)
			shm.CopyBuffer(p.DES(), m, p.Core(), sh.sock, p.Core().Socket, sh.buf, dst)
			lcomm.BBClear(key)
		}
		lcomm.Barrier(p)
	}
	if bracket {
		p.ExitNodePhase()
	}
}
