package modules

import (
	"hierknem/internal/buffer"
	"hierknem/internal/coll"
	"hierknem/internal/mpi"
)

// MPICH2Module models MPICH2 1.4's flat collectives: the Thakur–Gropp
// algorithm selection with no topology awareness (multicore nodes treated as
// plain SMPs through the Nemesis/KNEM channel, which our mpi layer already
// models at the p2p level).
type MPICH2Module struct {
	Q Quirks

	BcastBinomialMax int64 // below: always binomial
	BcastLongMin     int64 // above: scatter + ring allgather
	ReduceSmallMax   int64 // below: binomial; above: Rabenseifner
	AllgatherRDMax   int64 // below (total): recursive doubling; above: ring
}

// MPICH2 returns the module with MPICH2 1.4 defaults (12 KiB / 512 KiB
// bcast switches, 2 KiB reduce switch, 80 KiB allgather switch).
func MPICH2(q Quirks) *MPICH2Module {
	return &MPICH2Module{
		Q:                q,
		BcastBinomialMax: 12 << 10,
		BcastLongMin:     512 << 10,
		ReduceSmallMax:   2 << 10,
		AllgatherRDMax:   80 << 10,
	}
}

func (m *MPICH2Module) Name() string { return "mpich2" }

func isPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// Bcast follows MPIR_Bcast's decision tree: binomial below the medium
// threshold; scatter + allgather for medium sizes only on power-of-two
// communicators (binomial otherwise — the case that hits 768 ranks); and
// scatter + ring allgather for long messages on any size.
func (m *MPICH2Module) Bcast(p *mpi.Proc, c *mpi.Comm, buf *buffer.Buffer, root int) {
	n := buf.Len()
	switch {
	case n < m.BcastBinomialMax || c.Size() < 8:
		coll.BcastBinomial(p, c, buf, root)
	case n < m.BcastLongMin && !isPow2(c.Size()):
		coll.BcastBinomial(p, c, buf, root)
	default:
		coll.BcastScatterAllgather(p, c, buf, root)
	}
}

func (m *MPICH2Module) Reduce(p *mpi.Proc, c *mpi.Comm, a coll.ReduceArgs, sbuf, rbuf *buffer.Buffer, root int) {
	if sbuf.Len() < m.ReduceSmallMax {
		coll.ReduceBinomial(p, c, a, sbuf, rbuf, root)
		return
	}
	coll.ReduceRabenseifner(p, c, a, sbuf, rbuf, root)
}

func (m *MPICH2Module) Allgather(p *mpi.Proc, c *mpi.Comm, sbuf, rbuf *buffer.Buffer) {
	if rbuf.Len() < m.AllgatherRDMax {
		coll.AllgatherRecursiveDoubling(p, c, sbuf, rbuf)
		return
	}
	coll.AllgatherRing(p, c, sbuf, rbuf, nil, !m.Q.SerializedRing)
}
