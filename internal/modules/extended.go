package modules

import (
	"hierknem/internal/buffer"
	"hierknem/internal/coll"
	"hierknem/internal/mpi"
)

// Extension operations (Scatter, Gather, Allreduce) for the baseline
// personalities, following each library's published algorithm selection.

// --- Tuned ---

// Scatter uses a binomial tree (Open MPI's default beyond tiny comms).
func (t *TunedModule) Scatter(p *mpi.Proc, c *mpi.Comm, sbuf, rbuf *buffer.Buffer, root int) {
	if c.Size() < 4 {
		coll.ScatterLinear(p, c, sbuf, rbuf, root)
		return
	}
	coll.ScatterBinomial(p, c, sbuf, rbuf, root)
}

// Gather uses a binomial tree.
func (t *TunedModule) Gather(p *mpi.Proc, c *mpi.Comm, sbuf, rbuf *buffer.Buffer, root int) {
	if c.Size() < 4 {
		coll.GatherLinearRooted(p, c, sbuf, rbuf, root)
		return
	}
	coll.GatherBinomial(p, c, sbuf, rbuf, root)
}

// Allreduce uses recursive doubling for small messages and the
// reduce-scatter + allgather ring for large ones (rank order, topology
// oblivious).
func (t *TunedModule) Allreduce(p *mpi.Proc, c *mpi.Comm, a coll.ReduceArgs, sbuf, rbuf *buffer.Buffer) {
	if sbuf.Len() < 64<<10 {
		coll.AllreduceRecursiveDoubling(p, c, a, sbuf, rbuf)
		return
	}
	coll.AllreduceRing(p, c, a, sbuf, rbuf, nil)
}

// --- Hierarch ---

// Scatter: Open MPI's hierarch implements no Scatter; fall back to Tuned.
func (h *HierarchModule) Scatter(p *mpi.Proc, c *mpi.Comm, sbuf, rbuf *buffer.Buffer, root int) {
	h.fallback.Scatter(p, c, sbuf, rbuf, root)
}

// Gather: likewise a fallback.
func (h *HierarchModule) Gather(p *mpi.Proc, c *mpi.Comm, sbuf, rbuf *buffer.Buffer, root int) {
	h.fallback.Gather(p, c, sbuf, rbuf, root)
}

// Allreduce composes the hierarchical Reduce with the hierarchical Bcast —
// the two non-overlapping phases the component is built from.
func (h *HierarchModule) Allreduce(p *mpi.Proc, c *mpi.Comm, a coll.ReduceArgs, sbuf, rbuf *buffer.Buffer) {
	h.Reduce(p, c, a, sbuf, rbuf, 0)
	h.Bcast(p, c, rbuf, 0)
}

// --- MPICH2 ---

// Scatter uses the binomial tree (MPIR_Scatter).
func (m *MPICH2Module) Scatter(p *mpi.Proc, c *mpi.Comm, sbuf, rbuf *buffer.Buffer, root int) {
	coll.ScatterBinomial(p, c, sbuf, rbuf, root)
}

// Gather uses the binomial tree (MPIR_Gather).
func (m *MPICH2Module) Gather(p *mpi.Proc, c *mpi.Comm, sbuf, rbuf *buffer.Buffer, root int) {
	coll.GatherBinomial(p, c, sbuf, rbuf, root)
}

// Allreduce follows MPIR_Allreduce: recursive doubling below 2 KiB,
// Rabenseifner's reduce-scatter + allgather above.
func (m *MPICH2Module) Allreduce(p *mpi.Proc, c *mpi.Comm, a coll.ReduceArgs, sbuf, rbuf *buffer.Buffer) {
	if sbuf.Len() < 2<<10 {
		coll.AllreduceRecursiveDoubling(p, c, a, sbuf, rbuf)
		return
	}
	coll.AllreduceRing(p, c, a, sbuf, rbuf, nil)
}

// --- MVAPICH2 ---

// Scatter: two-level — the root scatters node blocks to leaders, leaders
// fan out through the shared segment.
func (m *MVAPICH2Module) Scatter(p *mpi.Proc, c *mpi.Comm, sbuf, rbuf *buffer.Buffer, root int) {
	// MVAPICH2's SMP-aware scatter needs the same contiguous layout as
	// its allgather; fall back to the flat binomial otherwise.
	coll.ScatterBinomial(p, c, sbuf, rbuf, root)
}

// Gather uses the flat binomial (MVAPICH2 1.7 had no SMP-aware gather).
func (m *MVAPICH2Module) Gather(p *mpi.Proc, c *mpi.Comm, sbuf, rbuf *buffer.Buffer, root int) {
	coll.GatherBinomial(p, c, sbuf, rbuf, root)
}

// Allreduce: shared-memory intra-node reduce to leaders, inter-node
// allreduce among leaders, shared-memory broadcast — the classic SMP-aware
// design, phases sequential.
func (m *MVAPICH2Module) Allreduce(p *mpi.Proc, c *mpi.Comm, a coll.ReduceArgs, sbuf, rbuf *buffer.Buffer) {
	m.Reduce(p, c, a, sbuf, rbuf, 0)
	m.Bcast(p, c, rbuf, 0)
}
