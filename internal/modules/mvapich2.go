package modules

import (
	"hierknem/internal/buffer"
	"hierknem/internal/coll"
	"hierknem/internal/hier"
	"hierknem/internal/mpi"
)

// MVAPICH2Module models MVAPICH2 1.7's SMP-aware designs: two-level Bcast
// and Reduce through shared-memory leaders (copy-in/copy-out, phases not
// overlapped) and a leader-based Allgather. Its InfiniBand point-to-point
// stack has none of Open MPI's reduction quirk, which is why the paper's
// Figure 4(b) shows it winning large reductions.
type MVAPICH2Module struct {
	BcastBinomialMax int64
	BcastChainSeg    int64
	ReduceChainMin   int64
	ReduceChainSeg   int64
}

// MVAPICH2 returns the module with MVAPICH2 1.7-like defaults.
func MVAPICH2() *MVAPICH2Module {
	return &MVAPICH2Module{
		BcastBinomialMax: 8 << 10,
		BcastChainSeg:    64 << 10,
		ReduceChainMin:   256 << 10,
		ReduceChainSeg:   64 << 10,
	}
}

func (m *MVAPICH2Module) Name() string { return "mvapich2" }

// Bcast: leaders over the network, then the shared-memory fan-out. Like
// Hierarch, phases are sequential — MVAPICH2's advantage over Open MPI's
// hierarch is only its better-matched inter-node tuning.
func (m *MVAPICH2Module) Bcast(p *mpi.Proc, c *mpi.Comm, buf *buffer.Buffer, root int) {
	hy := hier.Build(p, c, root)
	if hy.IsLeader && hy.LLComm.Size() > 1 {
		if buf.Len() < m.BcastBinomialMax {
			coll.BcastBinomial(p, hy.LLComm, buf, hy.RootNodeIndex)
		} else {
			coll.BcastChain(p, hy.LLComm, buf, hy.RootNodeIndex, m.BcastChainSeg)
		}
	}
	smBcastIntra(p, hy.LComm, buf)
}

// Reduce: shared-memory reduction to leaders, then an inter-node reduction
// (binomial below ReduceChainMin, pipelined chain above), quirk-free — the
// clean InfiniBand reduction path that lets MVAPICH2 win Figure 4(b)'s
// large-message regime. Small messages use the leader-serial shared-segment
// reduction; large ones MVAPICH2's knomial pipelined intra-node scheme
// (modeled as a segmented fan-in-1 chain).
func (m *MVAPICH2Module) Reduce(p *mpi.Proc, c *mpi.Comm, a coll.ReduceArgs, sbuf, rbuf *buffer.Buffer, root int) {
	hy := hier.Build(p, c, root)
	isRoot := c.Rank(p) == root
	large := sbuf.Len() >= m.ReduceChainMin

	var acc *buffer.Buffer
	if hy.IsLeader {
		if isRoot {
			acc = rbuf
		} else {
			acc = coll.Like(sbuf, sbuf.Len())
		}
		acc.CopyFrom(sbuf)
	}
	if large && hy.LComm.Size() > 1 {
		coll.ReduceChain(p, hy.LComm, a, sbuf, acc, 0, m.ReduceChainSeg)
	} else {
		smReduceIntra(p, hy.LComm, a, sbuf, acc)
	}
	if hy.IsLeader && hy.LLComm.Size() > 1 {
		var out *buffer.Buffer
		if isRoot {
			out = rbuf
		}
		if large {
			coll.ReduceChain(p, hy.LLComm, a, acc, out, hy.RootNodeIndex, m.ReduceChainSeg)
		} else {
			coll.ReduceBinomial(p, hy.LLComm, a, acc, out, hy.RootNodeIndex)
		}
	}
}

// Allgather: leader-based three-step scheme — gather into leaders, ring
// exchange of node blocks among leaders, shared-memory broadcast of the full
// result. The leader's memory bus is the hot spot at high core counts,
// which is exactly what Figure 5 penalizes it for.
func (m *MVAPICH2Module) Allgather(p *mpi.Proc, c *mpi.Comm, sbuf, rbuf *buffer.Buffer) {
	hy := hier.Build(p, c, 0)
	lcomm := hy.LComm
	block := sbuf.Len()

	// Layout requirement: the three-step scheme assembles each node's
	// contributions as one block, which matches rbuf's comm-rank layout
	// only when every node hosts a contiguous, equal-size rank range
	// (by-core binding with full nodes). Otherwise fall back to a flat
	// ring: this is the "topology-unaware" penalty Figure 6(b) shows for
	// MVAPICH2-style designs.
	if !nodeLayoutUniform(c) {
		coll.AllgatherRing(p, c, sbuf, rbuf, nil, true)
		return
	}

	myBase := c.Rank(p) - lcomm.Rank(p) // comm rank of my node's first rank
	nodeBlock := rbuf.Slice(int64(myBase)*block, block*int64(lcomm.Size()))
	// Step 1: gather into the leader's section of rbuf (leader's rbuf is
	// the live one; non-leaders gather into a scratch view shared via the
	// leader — modeled by smGatherIntra writing the leader's buffer).
	smGatherIntra(p, lcomm, sbuf, nodeBlock)

	// Step 2: leaders exchange node blocks over a ring.
	if hy.IsLeader && hy.LLComm.Size() > 1 {
		leaderRingAllgather(p, hy, rbuf, block*int64(lcomm.Size()))
	}

	// Step 3: leaders fan the full result out locally.
	smBcastIntra(p, lcomm, rbuf)
}

// nodeLayoutUniform reports whether each node's comm ranks form one
// contiguous range and all ranges have equal length.
func nodeLayoutUniform(c *mpi.Comm) bool {
	lastNode := -1
	runLen := 0
	firstLen := -1
	flush := func() bool {
		if runLen == 0 {
			return true
		}
		if firstLen == -1 {
			firstLen = runLen
		}
		return runLen == firstLen
	}
	for r := 0; r < c.Size(); r++ {
		n := c.Proc(r).Core().NodeID
		if n != lastNode {
			if n < lastNode || !flush() {
				return false
			}
			lastNode = n
			runLen = 0
		}
		runLen++
	}
	return flush()
}

// leaderRingAllgather exchanges equal-size node blocks among leaders; each
// leader's block sits at its node's base offset in rbuf.
func leaderRingAllgather(p *mpi.Proc, hy *hier.Hierarchy, rbuf *buffer.Buffer, nodeBytes int64) {
	ll := hy.LLComm
	size := ll.Size()
	me := ll.Rank(p)
	const tagBase = 1 << 23
	for s := 0; s < size-1; s++ {
		sendIdx := (me - s + size) % size
		recvIdx := (me - s - 1 + 2*size) % size
		sb := rbuf.Slice(int64(sendIdx)*nodeBytes, nodeBytes)
		rb := rbuf.Slice(int64(recvIdx)*nodeBytes, nodeBytes)
		right := (me + 1) % size
		left := (me - 1 + size) % size
		r := p.Irecv(ll, rb, left, tagBase+s)
		sr := p.Isend(ll, sb, right, tagBase+s)
		p.Wait(r)
		p.Wait(sr)
	}
}
