package modules

import (
	"hierknem/internal/buffer"
	"hierknem/internal/coll"
	"hierknem/internal/mpi"
)

// TunedModule approximates Open MPI 1.5's "tuned" component: a fixed
// decision table keyed on message size and communicator size, with no
// knowledge of the physical topology. Thresholds follow
// coll_tuned_decision_fixed's structure (values rounded to this simulator's
// granularity).
type TunedModule struct {
	Q Quirks

	// Decision thresholds (bytes), exported for ablation studies.
	BcastBinomialMax  int64 // below: whole-message binomial
	BcastBinTreeMax   int64 // below: segmented binary tree
	BcastTreeSeg      int64 // binary-tree segment size
	BcastChainSeg     int64 // chain pipeline segment size
	ReduceBinomialMax int64 // below: whole-message binomial
	ReduceChainSeg    int64 // chain segment size above it
	AllgatherRDMax    int64 // below (total bytes): recursive doubling
}

// Tuned returns the module with Open MPI 1.5-like defaults.
func Tuned(q Quirks) *TunedModule {
	return &TunedModule{
		Q:                 q,
		BcastBinomialMax:  2 << 10,
		BcastBinTreeMax:   512 << 10,
		BcastTreeSeg:      32 << 10,
		BcastChainSeg:     128 << 10,
		ReduceBinomialMax: 512 << 10,
		ReduceChainSeg:    128 << 10,
		AllgatherRDMax:    80 << 10,
	}
}

func (t *TunedModule) Name() string { return "tuned" }

// Bcast selects binomial, segmented binary tree, or pipelined chain by
// message size — over raw MPI ranks, oblivious to node boundaries.
func (t *TunedModule) Bcast(p *mpi.Proc, c *mpi.Comm, buf *buffer.Buffer, root int) {
	switch n := buf.Len(); {
	case n < t.BcastBinomialMax || c.Size() < 4:
		coll.BcastBinomial(p, c, buf, root)
	case n < t.BcastBinTreeMax:
		coll.BcastBinaryTree(p, c, buf, root, t.BcastTreeSeg)
	default:
		coll.BcastChain(p, c, buf, root, t.BcastChainSeg)
	}
}

// Reduce selects binomial or pipelined chain, both paying the stack's
// per-hop reduction quirk when configured.
func (t *TunedModule) Reduce(p *mpi.Proc, c *mpi.Comm, a coll.ReduceArgs, sbuf, rbuf *buffer.Buffer, root int) {
	if sbuf.Len() < t.ReduceBinomialMax || c.Size() < 4 {
		coll.ReduceBinomialOverhead(p, c, a, sbuf, rbuf, root, t.Q.ReducePerHop)
		return
	}
	coll.ReduceChainOverhead(p, c, a, sbuf, rbuf, root, t.ReduceChainSeg, t.Q.ReducePerHop)
}

// Allgather uses recursive doubling for small totals and the rank-ordered
// ring for large ones. The ring's duplex behavior follows the TCP quirk.
func (t *TunedModule) Allgather(p *mpi.Proc, c *mpi.Comm, sbuf, rbuf *buffer.Buffer) {
	if rbuf.Len() < t.AllgatherRDMax {
		coll.AllgatherRecursiveDoubling(p, c, sbuf, rbuf)
		return
	}
	coll.AllgatherRing(p, c, sbuf, rbuf, nil, !t.Q.SerializedRing)
}
