package modules

import (
	"bytes"
	"fmt"
	"testing"

	"hierknem/internal/buffer"
	"hierknem/internal/coll"
	"hierknem/internal/core"
	"hierknem/internal/mpi"
	"hierknem/internal/topology"
)

func labSpec(nodes, sockets, cores int) topology.Spec {
	return topology.Spec{
		Name:              "lab",
		Nodes:             nodes,
		SocketsPerNode:    sockets,
		CoresPerSocket:    cores,
		MemBandwidth:      10e9,
		CoreCopyBandwidth: 3e9,
		L3Bandwidth:       6e9,
		L3Size:            12 << 20,
		ShmLatency:        1e-6,
		NetBandwidth:      1e9,
		NetLatency:        10e-6,
		NetFullDuplex:     true,
		EagerThreshold:    4096,
	}
}

func labWorld(t *testing.T, nodes, sockets, cores int, bind string, np int) *mpi.World {
	t.Helper()
	m, err := topology.Build(labSpec(nodes, sockets, cores))
	if err != nil {
		t.Fatal(err)
	}
	var b *topology.Binding
	switch bind {
	case "bycore":
		b, err = topology.ByCore(m, np)
	case "bynode":
		b, err = topology.ByNode(m, np)
	default:
		t.Fatalf("unknown binding %s", bind)
	}
	if err != nil {
		t.Fatal(err)
	}
	w, err := mpi.NewWorld(m, b, mpi.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func allModules() []Module {
	return []Module{
		Tuned(Quirks{}),
		Hierarch(Quirks{}),
		MPICH2(Quirks{}),
		MVAPICH2(),
		core.New(core.Options{}),
	}
}

func pattern(rank, n int) []byte {
	d := make([]byte, n)
	for i := range d {
		d[i] = byte((rank*37 + i*11 + 5) % 251)
	}
	return d
}

func TestModulesBcastConformance(t *testing.T) {
	sizes := []int{100, 5000, 70000, 600000}
	for _, mod := range allModules() {
		for _, bind := range []string{"bycore", "bynode"} {
			for _, size := range sizes {
				for _, root := range []int{0, 5} {
					name := fmt.Sprintf("%s/%s/%dB/root%d", mod.Name(), bind, size, root)
					t.Run(name, func(t *testing.T) {
						w := labWorld(t, 3, 1, 4, bind, 12)
						want := pattern(99, size)
						bad := 0
						err := w.Run(func(p *mpi.Proc) {
							c := w.WorldComm()
							var buf *buffer.Buffer
							if c.Rank(p) == root {
								buf = buffer.NewReal(append([]byte(nil), want...))
							} else {
								buf = buffer.NewReal(make([]byte, size))
							}
							mod.Bcast(p, c, buf, root)
							if !bytes.Equal(buf.Data(), want) {
								bad++
							}
						})
						if err != nil {
							t.Fatal(err)
						}
						if bad != 0 {
							t.Fatalf("%d ranks received wrong data", bad)
						}
					})
				}
			}
		}
	}
}

func TestModulesReduceConformance(t *testing.T) {
	sizes := []int{64, 1024, 8192, 100000} // element counts (int64)
	for _, mod := range allModules() {
		for _, bind := range []string{"bycore", "bynode"} {
			for _, elems := range sizes {
				for _, root := range []int{0, 7} {
					name := fmt.Sprintf("%s/%s/%delems/root%d", mod.Name(), bind, elems, root)
					t.Run(name, func(t *testing.T) {
						const np = 12
						w := labWorld(t, 3, 1, 4, bind, np)
						want := make([]int64, elems)
						for r := 0; r < np; r++ {
							for i := range want {
								want[i] += int64(r + i)
							}
						}
						var got []int64
						err := w.Run(func(p *mpi.Proc) {
							c := w.WorldComm()
							me := c.Rank(p)
							vals := make([]int64, elems)
							for i := range vals {
								vals[i] = int64(me + i)
							}
							sbuf := buffer.Int64s(vals)
							var rbuf *buffer.Buffer
							if me == root {
								rbuf = buffer.Int64s(make([]int64, elems))
							}
							mod.Reduce(p, c, coll.ReduceArgs{Op: buffer.OpSum, Dtype: buffer.Int64}, sbuf, rbuf, root)
							if me == root {
								got = buffer.AsInt64s(rbuf)
							}
						})
						if err != nil {
							t.Fatal(err)
						}
						for i := range want {
							if got[i] != want[i] {
								t.Fatalf("elem %d = %d, want %d", i, got[i], want[i])
							}
						}
					})
				}
			}
		}
	}
}

func TestModulesAllgatherConformance(t *testing.T) {
	blocks := []int{128, 4096, 60000}
	for _, mod := range allModules() {
		for _, bind := range []string{"bycore", "bynode"} {
			for _, block := range blocks {
				name := fmt.Sprintf("%s/%s/%dB", mod.Name(), bind, block)
				t.Run(name, func(t *testing.T) {
					const np = 12
					w := labWorld(t, 3, 1, 4, bind, np)
					bad := 0
					err := w.Run(func(p *mpi.Proc) {
						c := w.WorldComm()
						me := c.Rank(p)
						sbuf := buffer.NewReal(pattern(me, block))
						rbuf := buffer.NewReal(make([]byte, block*np))
						mod.Allgather(p, c, sbuf, rbuf)
						for r := 0; r < np; r++ {
							if !bytes.Equal(rbuf.Data()[r*block:(r+1)*block], pattern(r, block)) {
								bad++
							}
						}
					})
					if err != nil {
						t.Fatal(err)
					}
					if bad != 0 {
						t.Fatalf("%d blocks wrong", bad)
					}
				})
			}
		}
	}
}

// Hierarchical modules must also work when some nodes host a single rank
// and when the communicator covers a single node.
func TestModulesDegenerateLayouts(t *testing.T) {
	layouts := []struct {
		name                  string
		nodes, sockets, cores int
		np                    int
		bind                  string
	}{
		{"single-node", 1, 2, 4, 8, "bycore"},
		{"one-per-node", 4, 1, 4, 4, "bynode"},
		{"uneven", 3, 1, 4, 7, "bycore"}, // node2 hosts none, node1 partial
		{"two-ranks", 2, 1, 2, 2, "bynode"},
	}
	const size = 50000
	for _, mod := range allModules() {
		for _, lay := range layouts {
			t.Run(fmt.Sprintf("%s/%s", mod.Name(), lay.name), func(t *testing.T) {
				w := labWorld(t, lay.nodes, lay.sockets, lay.cores, lay.bind, lay.np)
				want := pattern(1, size)
				bad := 0
				err := w.Run(func(p *mpi.Proc) {
					c := w.WorldComm()
					var buf *buffer.Buffer
					if c.Rank(p) == 0 {
						buf = buffer.NewReal(append([]byte(nil), want...))
					} else {
						buf = buffer.NewReal(make([]byte, size))
					}
					mod.Bcast(p, c, buf, 0)
					if !bytes.Equal(buf.Data(), want) {
						bad++
					}
				})
				if err != nil {
					t.Fatal(err)
				}
				if bad != 0 {
					t.Fatalf("%d ranks wrong", bad)
				}
			})
		}
	}
}

// Reduce on degenerate layouts.
func TestModulesDegenerateReduce(t *testing.T) {
	for _, mod := range allModules() {
		for _, lay := range []struct {
			name        string
			nodes, np   int
			coresPerNod int
		}{
			{"single-node", 1, 6, 6},
			{"one-per-node", 3, 3, 2},
			{"two-per-node", 3, 6, 2},
		} {
			t.Run(fmt.Sprintf("%s/%s", mod.Name(), lay.name), func(t *testing.T) {
				w := labWorld(t, lay.nodes, 1, lay.coresPerNod, "bycore", lay.np)
				const elems = 2000
				want := make([]int64, elems)
				for r := 0; r < lay.np; r++ {
					for i := range want {
						want[i] += int64(r*3 + i)
					}
				}
				var got []int64
				err := w.Run(func(p *mpi.Proc) {
					c := w.WorldComm()
					me := c.Rank(p)
					vals := make([]int64, elems)
					for i := range vals {
						vals[i] = int64(me*3 + i)
					}
					sbuf := buffer.Int64s(vals)
					var rbuf *buffer.Buffer
					if me == 0 {
						rbuf = buffer.Int64s(make([]int64, elems))
					}
					mod.Reduce(p, c, coll.ReduceArgs{Op: buffer.OpSum, Dtype: buffer.Int64}, sbuf, rbuf, 0)
					if me == 0 {
						got = buffer.AsInt64s(rbuf)
					}
				})
				if err != nil {
					t.Fatal(err)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("elem %d = %d, want %d", i, got[i], want[i])
					}
				}
			})
		}
	}
}

// Repeated collectives on the same world must keep working (blackboard keys,
// Seq counters, comm caching).
func TestModulesRepeatedOps(t *testing.T) {
	for _, mod := range allModules() {
		t.Run(mod.Name(), func(t *testing.T) {
			w := labWorld(t, 2, 1, 3, "bycore", 6)
			const size = 20000
			for iter := 0; iter < 3; iter++ {
				want := pattern(iter, size)
				bad := 0
				err := w.Run(func(p *mpi.Proc) {
					c := w.WorldComm()
					var buf *buffer.Buffer
					if c.Rank(p) == iter%6 {
						buf = buffer.NewReal(append([]byte(nil), want...))
					} else {
						buf = buffer.NewReal(make([]byte, size))
					}
					mod.Bcast(p, c, buf, iter%6)
					if !bytes.Equal(buf.Data(), want) {
						bad++
					}
				})
				if err != nil {
					t.Fatal(err)
				}
				if bad != 0 {
					t.Fatalf("iter %d: %d ranks wrong", iter, bad)
				}
			}
		})
	}
}
