package modules

import (
	"hierknem/internal/buffer"
	"hierknem/internal/coll"
	"hierknem/internal/hier"
	"hierknem/internal/mpi"
)

// HierarchModule models Open MPI's "hierarch" collective component: a
// classic two-level composition where the inter-node phase (among leaders)
// and the intra-node shared-memory phase run back to back with no overlap,
// and intra-node movement uses the copy-in/copy-out segment. It is the
// "less integrated" hierarchical design the paper contrasts HierKNEM with.
type HierarchModule struct {
	Q Quirks

	// Inter-node (leader) layer thresholds — the layer reuses Tuned-style
	// algorithms, tuned independently of the intra layer (that mismatch is
	// the point).
	BcastBinomialMax int64
	BcastChainSeg    int64
	ReduceChainMin   int64
	ReduceChainSeg   int64

	fallback *TunedModule // hierarch has no Allgather; Open MPI falls back
}

// Hierarch returns the module with defaults mirroring Open MPI 1.5.
func Hierarch(q Quirks) *HierarchModule {
	return &HierarchModule{
		Q:                q,
		BcastBinomialMax: 8 << 10,
		BcastChainSeg:    128 << 10,
		ReduceChainMin:   512 << 10,
		ReduceChainSeg:   128 << 10,
		fallback:         Tuned(q),
	}
}

func (h *HierarchModule) Name() string { return "hierarch" }

// Bcast: leaders broadcast over the inter-node communicator (whole
// operation), then each leader fans the message out inside its node. The
// two phases are strictly sequential: T = T_inter + T_intra.
func (h *HierarchModule) Bcast(p *mpi.Proc, c *mpi.Comm, buf *buffer.Buffer, root int) {
	hy := hier.Build(p, c, root)
	if hy.IsLeader && hy.LLComm.Size() > 1 {
		if buf.Len() < h.BcastBinomialMax {
			coll.BcastBinomial(p, hy.LLComm, buf, hy.RootNodeIndex)
		} else {
			coll.BcastChain(p, hy.LLComm, buf, hy.RootNodeIndex, h.BcastChainSeg)
		}
	}
	smBcastIntra(p, hy.LComm, buf)
}

// Reduce: intra-node shared-memory reduction to each leader (the leader
// folds every local contribution in sequentially), then an inter-node
// reduction among leaders. Strictly sequential phases.
func (h *HierarchModule) Reduce(p *mpi.Proc, c *mpi.Comm, a coll.ReduceArgs, sbuf, rbuf *buffer.Buffer, root int) {
	hy := hier.Build(p, c, root)
	isRoot := c.Rank(p) == root

	var acc *buffer.Buffer
	if hy.IsLeader {
		if isRoot {
			acc = rbuf
		} else {
			acc = coll.Like(sbuf, sbuf.Len())
		}
		acc.CopyFrom(sbuf)
	}
	smReduceIntra(p, hy.LComm, a, sbuf, acc)
	if hy.IsLeader && hy.LLComm.Size() > 1 {
		var out *buffer.Buffer
		if isRoot {
			out = rbuf
			// inter-node phase reduces into a temp then writes rbuf to
			// avoid self-aliasing acc==rbuf in the algorithms; acc is
			// already rbuf here, and the algorithms accept that (sbuf is
			// read before rbuf is written per segment). Pass acc as sbuf.
		} else {
			out = nil
		}
		if sbuf.Len() >= h.ReduceChainMin {
			coll.ReduceChainOverhead(p, hy.LLComm, a, acc, out, hy.RootNodeIndex, h.ReduceChainSeg, h.Q.ReducePerHop)
		} else {
			coll.ReduceBinomialOverhead(p, hy.LLComm, a, acc, out, hy.RootNodeIndex, h.Q.ReducePerHop)
		}
	}
}

// Allgather is not implemented by the hierarch component (the paper omits
// it from Figure 5 for that reason); Open MPI falls back to Tuned.
func (h *HierarchModule) Allgather(p *mpi.Proc, c *mpi.Comm, sbuf, rbuf *buffer.Buffer) {
	h.fallback.Allgather(p, c, sbuf, rbuf)
}
