// Package modules implements the collective "personalities" the HierKNEM
// paper benchmarks against, each reproducing the algorithm-selection
// behavior of a real MPI library of the era:
//
//   - Tuned     — Open MPI 1.5's topology-unaware decision-table module
//   - Hierarch  — Open MPI's two-level leader module (copy-in/copy-out
//     intra-node phases, no inter/intra overlap)
//   - MPICH2    — MPICH2 1.4's flat Thakur–Gropp algorithms
//   - MVAPICH2  — MVAPICH2 1.7's SMP-aware two-level designs
//
// The HierKNEM module itself lives in internal/core; it satisfies the same
// Module interface.
//
// Quirks encode measured software artifacts the paper reports: the serialized
// send/recv progress of the TCP stack (Tuned Allgather's ~50% Ethernet loss,
// section IV-F) and the per-send reduction penalty of Open MPI on InfiniBand
// (section IV-E's 515 µs vs 281 µs profile).
package modules

import (
	"hierknem/internal/buffer"
	"hierknem/internal/coll"
	"hierknem/internal/mpi"
)

// Module is the common interface of every collective component. Beyond the
// paper's three evaluated operations (Bcast, Reduce, Allgather) it covers
// the extension set a production release ships: Scatter, Gather and
// Allreduce.
type Module interface {
	Name() string
	Bcast(p *mpi.Proc, c *mpi.Comm, buf *buffer.Buffer, root int)
	Reduce(p *mpi.Proc, c *mpi.Comm, a coll.ReduceArgs, sbuf, rbuf *buffer.Buffer, root int)
	Allgather(p *mpi.Proc, c *mpi.Comm, sbuf, rbuf *buffer.Buffer)
	// Scatter distributes root's sbuf (size*block, comm-rank order) so
	// each rank receives its block in rbuf.
	Scatter(p *mpi.Proc, c *mpi.Comm, sbuf, rbuf *buffer.Buffer, root int)
	// Gather collects every rank's sbuf block into root's rbuf
	// (comm-rank order).
	Gather(p *mpi.Proc, c *mpi.Comm, sbuf, rbuf *buffer.Buffer, root int)
	// Allreduce leaves the full reduction in every rank's rbuf.
	Allreduce(p *mpi.Proc, c *mpi.Comm, a coll.ReduceArgs, sbuf, rbuf *buffer.Buffer)
}

// Quirks model measured software artifacts of specific stacks on specific
// networks.
type Quirks struct {
	// SerializedRing makes ring exchanges progress send-then-receive
	// instead of full duplex (single-threaded TCP progress engines).
	SerializedRing bool
	// ReducePerHop is an extra sender CPU cost per message on the
	// reduction path (Open MPI's Tuned reduce defect on InfiniBand).
	ReducePerHop float64
}
