// Package san is hiersan, the simulator's opt-in dynamic sanitizer. It
// checks the hazards that happen in *virtual* time on a single scheduler
// goroutine — invisible to go test -race by construction — and that the
// static hierlint analyzers can only approximate:
//
//   - Pool provenance. The des engine, the mpi layer and the fabric recycle
//     records (events, envelopes, postings, flows) through free lists. A
//     generation record is kept per pooled object, so a double release or a
//     use after release trips immediately, with the offender's rank and the
//     virtual time of both touches, instead of corrupting an unrelated
//     message several events later.
//
//   - Virtual-time buffer conflicts. Collectives and KNEM devices register
//     (rank, buffer, [off,end), vtime-interval, R/W) access windows. Two
//     windows conflict when they touch overlapping bytes of one allocation
//     from different ranks, at least one writes, and no virtual-time
//     synchronization edge (message completion, barrier release, wake,
//     blackboard post) orders them. This is exactly the single-copy overlap
//     hazard HierKNEM's algorithms must avoid: a kernel-assisted copy
//     reading a buffer in the same window another rank writes it.
//
// The checker is an interval-overlap detector, not a full happens-before
// engine: windows that completed strictly in the virtual past are excused
// (the clock itself orders them), windows completed at the *current* instant
// need a sync edge recorded at that instant, and two windows in flight
// simultaneously always conflict. Sync edges are therefore instant-scoped: a
// union-find over rank identities that resets whenever the clock advances.
//
// A Sanitizer schedules no events and never advances the clock, so an
// enabled run is event-for-event and tick-for-tick identical to a disabled
// one; every hook in the instrumented packages is nil-guarded, so a
// disabled run adds no allocations to the hot path either. Enable per world
// with World.EnableSanitizer, or for a whole test run with HIERSAN=1.
package san

import (
	"fmt"
	"os"
	"sync"
)

// Kinds of pooled records tracked by the provenance checker.
const (
	KindEvent    = "des.event"
	KindEnvelope = "mpi.envelope"
	KindPosting  = "mpi.posting"
	KindFlow     = "fabric.flow"
)

// EnvEnabled reports whether the HIERSAN environment variable asks for the
// sanitizer (mpi.NewWorld consults it). Only the literal "1" enables.
func EnvEnabled() bool { return os.Getenv("HIERSAN") == "1" }

// poolRec is the provenance record of one pooled object.
type poolRec struct {
	kind string
	live bool
	gen  uint64 // allocation count; bumped on every reuse
	at   float64
	who  string
}

// window is one registered buffer access. Slots are handle-indexed and
// reused through a free list; a closed window survives only until the clock
// leaves the instant it closed at.
type window struct {
	rank  int
	who   string
	buf   uint64
	off   int64
	end   int64
	write bool
	begin float64
	inUse bool
	open  bool
}

// Sanitizer is one world's dynamic checker. The zero value is not usable;
// create one with New. Every public hook takes an internal mutex: in the
// engine's parallel mode, pool and access hooks fire concurrently from
// in-window worker goroutines, and the checker's state (provenance map,
// window table, union-find) is global to the world. Within a window the
// engine clock is frozen at the window floor, so all in-phase accesses stamp
// the same instant — cross-rank ordering inside a window comes from the sync
// edges the engine records on every wake and outbox handoff, exactly the
// instant-scoped edges the conflict rule already consumes. Serial mode pays
// one uncontended lock per hook, and the disabled hot path (nil-guarded at
// every call site) still pays nothing.
type Sanitizer struct {
	mu          sync.Mutex
	now         func() float64
	onViolation func(msg string)
	violations  int

	pool map[any]*poolRec

	windows []window
	free    []int
	recent  []int // windows closed at lastNow, freed when the clock moves

	// Instant-scoped synchronization: union-find over rank identities,
	// valid only at lastNow.
	lastNow float64
	parent  map[int]int
}

// New creates a sanitizer reading virtual time through now (typically
// Engine.Now). Violations panic by default; see SetOnViolation.
func New(now func() float64) *Sanitizer {
	return &Sanitizer{
		now:    now,
		pool:   make(map[any]*poolRec),
		parent: make(map[int]int),
	}
}

// SetOnViolation replaces the violation handler (default: panic). Fault-
// injection tests install a collector; nil restores the panic.
func (s *Sanitizer) SetOnViolation(fn func(msg string)) { s.onViolation = fn }

// Violations returns the number of violations reported so far.
func (s *Sanitizer) Violations() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.violations
}

// Reset clears all provenance records, access windows and sync edges,
// matching a World/Engine reset. The violation handler survives.
func (s *Sanitizer) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	clear(s.pool)
	s.windows = s.windows[:0]
	s.free = s.free[:0]
	s.recent = s.recent[:0]
	clear(s.parent)
	s.lastNow = 0
}

func (s *Sanitizer) violate(format string, args ...any) {
	s.violations++
	msg := fmt.Sprintf(format, args...)
	if s.onViolation != nil {
		s.onViolation(msg)
		return
	}
	panic(msg)
}

// advance lazily reacts to clock movement: windows closed at the previous
// instant become ordered by virtual time itself and are dropped, and the
// instant's sync edges expire with them.
func (s *Sanitizer) advance() float64 {
	now := s.now()
	if now != s.lastNow {
		for _, h := range s.recent {
			if !s.windows[h].open {
				s.windows[h].inUse = false
				s.free = append(s.free, h)
			}
		}
		s.recent = s.recent[:0]
		if len(s.parent) > 0 {
			clear(s.parent)
		}
		s.lastNow = now
	}
	return now
}

// PoolAlloc records that a pooled record of the given kind entered service.
// who names the acting rank ("" for engine-level records).
func (s *Sanitizer) PoolAlloc(kind string, rec any, who string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.advance()
	pr := s.pool[rec]
	if pr == nil {
		s.pool[rec] = &poolRec{kind: kind, live: true, gen: 1, at: now, who: who}
		return
	}
	if pr.live {
		s.violate("san: alloc of live %s (gen %d) by %s at t=%g: allocated by %s at t=%g",
			pr.kind, pr.gen, orEngine(who), now, orEngine(pr.who), pr.at)
	}
	pr.live = true
	pr.gen++
	pr.at = now
	pr.who = who
}

// PoolRelease records that a pooled record left service (returned to its
// free list). Releasing a record that is not live is the double-release bug
// class and fires a violation.
func (s *Sanitizer) PoolRelease(kind string, rec any, who string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.advance()
	pr := s.pool[rec]
	if pr == nil {
		// Record predates the sanitizer (pools warm before attach); adopt
		// it in the released state so its next life is tracked.
		s.pool[rec] = &poolRec{kind: kind, at: now, who: who}
		return
	}
	if !pr.live {
		s.violate("san: double release of %s (gen %d) by %s at t=%g: already released by %s at t=%g",
			pr.kind, pr.gen, orEngine(who), now, orEngine(pr.who), pr.at)
		return
	}
	pr.live = false
	pr.at = now
	pr.who = who
}

// PoolUse asserts that a pooled record is in service. Unknown records (never
// seen by the sanitizer) pass; a known record in the released state is the
// use-after-release bug class.
func (s *Sanitizer) PoolUse(rec any, who string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.advance()
	pr := s.pool[rec]
	if pr == nil || pr.live {
		return
	}
	s.violate("san: use after release of %s (gen %d) by %s at t=%g: released by %s at t=%g",
		pr.kind, pr.gen, orEngine(who), now, orEngine(pr.who), pr.at)
}

func orEngine(who string) string {
	if who == "" {
		return "engine"
	}
	return who
}

// BeginAccess opens an access window: rank (a des proc identity) touches
// bytes [off, off+n) of allocation buf from the current instant until the
// matching EndAccess, reading or writing. It returns a handle for EndAccess;
// zero-length windows are not tracked and return -1. Conflicts are reported
// against every overlapping window of another rank that is still in flight,
// or that closed at the current instant without a sync edge to rank.
func (s *Sanitizer) BeginAccess(rank int, who string, buf uint64, off, n int64, write bool) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n <= 0 {
		return -1
	}
	now := s.advance()
	end := off + n
	for h := range s.windows {
		w := &s.windows[h]
		if !w.inUse || w.buf != buf || w.rank == rank {
			continue
		}
		if !(w.write || write) || off >= w.end || w.off >= end {
			continue
		}
		if !w.open && s.synced(w.rank, rank) {
			continue // closed this instant, ordered by a recorded sync edge
		}
		state := "still in flight (begun at"
		if !w.open {
			state = "unsynchronized, closed this instant (begun at"
		}
		s.violate("san: conflicting buffer access at t=%g: %s %ss buf %d [%d,%d) while %s's %s of [%d,%d) is %s t=%g): no virtual-time sync edge orders them",
			now, who, rw(write), buf, off, end, w.who, rw(w.write), w.off, w.end, state, w.begin)
	}
	var h int
	if k := len(s.free) - 1; k >= 0 {
		h = s.free[k]
		s.free = s.free[:k]
	} else {
		h = len(s.windows)
		s.windows = append(s.windows, window{})
	}
	s.windows[h] = window{rank: rank, who: who, buf: buf, off: off, end: end,
		write: write, begin: now, inUse: true, open: true}
	return h
}

func rw(write bool) string {
	if write {
		return "write"
	}
	return "read"
}

// EndAccess closes the window behind handle h (from BeginAccess; -1 is a
// no-op). The window stays visible to conflict checks until the clock
// leaves the current instant.
func (s *Sanitizer) EndAccess(h int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if h < 0 {
		return
	}
	s.advance()
	if h >= len(s.windows) || !s.windows[h].inUse || !s.windows[h].open {
		return
	}
	s.windows[h].open = false
	s.recent = append(s.recent, h)
}

// SyncEdge records that ranks a and b synchronized at the current instant
// (a message completion, a barrier release, a direct wake): accesses one of
// them completed at this instant are ordered before accesses the other
// begins at this instant. Edges are transitive within the instant and
// expire when the clock advances.
func (s *Sanitizer) SyncEdge(a, b int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if a == b {
		return
	}
	s.advance()
	ra, rb := s.find(a), s.find(b)
	if ra != rb {
		s.parent[ra] = rb
	}
}

func (s *Sanitizer) find(x int) int {
	r := x
	for {
		p, ok := s.parent[r]
		if !ok || p == r {
			break
		}
		r = p
	}
	for x != r {
		next := s.parent[x]
		s.parent[x] = r
		x = next
	}
	return r
}

func (s *Sanitizer) synced(a, b int) bool { return s.find(a) == s.find(b) }
