package san

import (
	"strings"
	"testing"
)

// harness wires a sanitizer to a manual clock and a violation collector.
type harness struct {
	s    *Sanitizer
	t    float64
	msgs []string
}

func newHarness() *harness {
	h := &harness{}
	h.s = New(func() float64 { return h.t })
	h.s.SetOnViolation(func(msg string) { h.msgs = append(h.msgs, msg) })
	return h
}

func (h *harness) expect(t *testing.T, n int, substrs ...string) {
	t.Helper()
	if len(h.msgs) != n {
		t.Fatalf("violations = %d, want %d: %q", len(h.msgs), n, h.msgs)
	}
	for _, sub := range substrs {
		found := false
		for _, m := range h.msgs {
			if strings.Contains(m, sub) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("no violation mentions %q: %q", sub, h.msgs)
		}
	}
}

type fake struct{ _ int }

func TestPoolDoubleRelease(t *testing.T) {
	h := newHarness()
	rec := &fake{}
	h.s.PoolAlloc(KindEvent, rec, "")
	h.t = 1.5
	h.s.PoolRelease(KindEvent, rec, "")
	h.s.PoolRelease(KindEvent, rec, "")
	h.expect(t, 1, "double release of des.event", "t=1.5", "gen 1", "engine")
}

func TestPoolUseAfterRelease(t *testing.T) {
	h := newHarness()
	rec := &fake{}
	h.s.PoolAlloc(KindEnvelope, rec, "rank0")
	h.s.PoolRelease(KindEnvelope, rec, "rank0")
	h.t = 2
	h.s.PoolUse(rec, "rank3")
	h.expect(t, 1, "use after release of mpi.envelope", "rank3", "t=2", "released by rank0 at t=0")
}

func TestPoolAllocOfLive(t *testing.T) {
	h := newHarness()
	rec := &fake{}
	h.s.PoolAlloc(KindFlow, rec, "")
	h.s.PoolAlloc(KindFlow, rec, "")
	h.expect(t, 1, "alloc of live fabric.flow")
}

func TestPoolHealthyLifecycle(t *testing.T) {
	h := newHarness()
	rec := &fake{}
	for i := 0; i < 5; i++ {
		h.s.PoolAlloc(KindPosting, rec, "rank1")
		h.s.PoolUse(rec, "rank1")
		h.s.PoolRelease(KindPosting, rec, "rank1")
		h.t++
	}
	// Releases of records the sanitizer never saw allocated (pool warm
	// before attach) are adopted, not flagged.
	h.s.PoolRelease(KindPosting, &fake{}, "rank1")
	h.expect(t, 0)
}

func TestConflictInFlightOverlap(t *testing.T) {
	h := newHarness()
	h.s.BeginAccess(0, "rank0", 7, 0, 100, true)
	h.s.BeginAccess(1, "rank1", 7, 50, 100, false)
	h.expect(t, 1, "conflicting buffer access", "rank0", "rank1", "buf 7", "still in flight")
}

func TestNoConflictDisjointOrReadOnlyOrSameRank(t *testing.T) {
	h := newHarness()
	h.s.BeginAccess(0, "rank0", 7, 0, 100, true)
	h.s.BeginAccess(1, "rank1", 7, 100, 50, true) // adjacent, not overlapping
	h.s.BeginAccess(2, "rank2", 9, 0, 100, true)  // other allocation
	h.s.BeginAccess(0, "rank0", 7, 0, 100, true)  // same rank
	h.s.BeginAccess(3, "rank3", 7, 0, 0, true)    // zero length
	a := h.s.BeginAccess(4, "rank4", 11, 0, 64, false)
	b := h.s.BeginAccess(5, "rank5", 11, 0, 64, false) // read/read
	h.s.EndAccess(a)
	h.s.EndAccess(b)
	h.expect(t, 0)
}

func TestConflictClosedSameInstantWithoutEdge(t *testing.T) {
	h := newHarness()
	hw := h.s.BeginAccess(0, "rank0", 7, 0, 100, true)
	h.t = 1
	h.s.EndAccess(hw)
	h.s.BeginAccess(1, "rank1", 7, 0, 100, false)
	h.expect(t, 1, "closed this instant")
}

func TestSyncEdgeExcusesSameInstant(t *testing.T) {
	h := newHarness()
	hw := h.s.BeginAccess(0, "rank0", 7, 0, 100, true)
	h.t = 1
	h.s.EndAccess(hw)
	h.s.SyncEdge(0, 1)
	h.s.BeginAccess(1, "rank1", 7, 0, 100, false)
	h.expect(t, 0)
}

func TestSyncEdgeIsTransitiveWithinInstant(t *testing.T) {
	h := newHarness()
	hw := h.s.BeginAccess(0, "rank0", 7, 0, 100, true)
	h.t = 1
	h.s.EndAccess(hw)
	h.s.SyncEdge(0, 1) // parent -> leader
	h.s.SyncEdge(1, 2) // leader -> non-leader
	h.s.BeginAccess(2, "rank2", 7, 0, 100, false)
	h.expect(t, 0)
}

func TestSyncEdgeExpiresWhenClockAdvances(t *testing.T) {
	h := newHarness()
	h.s.SyncEdge(0, 1)
	h.t = 1
	hw := h.s.BeginAccess(0, "rank0", 7, 0, 100, true)
	h.s.EndAccess(hw)
	h.s.BeginAccess(1, "rank1", 7, 0, 100, false)
	h.expect(t, 1, "closed this instant")
}

func TestClosedWindowInThePastIsExcused(t *testing.T) {
	h := newHarness()
	hw := h.s.BeginAccess(0, "rank0", 7, 0, 100, true)
	h.s.EndAccess(hw)
	h.t = 1 // strictly later: the clock itself orders the accesses
	h.s.BeginAccess(1, "rank1", 7, 0, 100, true)
	h.expect(t, 0)
}

func TestWindowSlotsRecycle(t *testing.T) {
	h := newHarness()
	for i := 0; i < 100; i++ {
		w := h.s.BeginAccess(0, "rank0", 7, 0, 100, true)
		h.s.EndAccess(w)
		h.t++
		h.s.advance()
	}
	if got := len(h.s.windows); got != 1 {
		t.Fatalf("window slots = %d after serial reuse, want 1", got)
	}
	h.expect(t, 0)
}

func TestResetClearsState(t *testing.T) {
	h := newHarness()
	rec := &fake{}
	h.s.PoolAlloc(KindEvent, rec, "")
	h.s.BeginAccess(0, "rank0", 7, 0, 100, true)
	h.s.Reset()
	// Post-reset the old window is gone and the record's history forgotten.
	h.s.BeginAccess(1, "rank1", 7, 0, 100, true)
	h.s.PoolAlloc(KindEvent, rec, "")
	h.expect(t, 0)
}

func TestDefaultHandlerPanics(t *testing.T) {
	s := New(func() float64 { return 0 })
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic from default violation handler")
		}
		if !strings.Contains(r.(string), "double release") {
			t.Fatalf("panic = %v, want double-release message", r)
		}
	}()
	rec := &fake{}
	s.PoolAlloc(KindEvent, rec, "")
	s.PoolRelease(KindEvent, rec, "")
	s.PoolRelease(KindEvent, rec, "")
}

func TestEnvEnabled(t *testing.T) {
	t.Setenv("HIERSAN", "")
	if EnvEnabled() {
		t.Fatal("EnvEnabled with empty HIERSAN")
	}
	t.Setenv("HIERSAN", "0")
	if EnvEnabled() {
		t.Fatal("EnvEnabled with HIERSAN=0")
	}
	t.Setenv("HIERSAN", "1")
	if !EnvEnabled() {
		t.Fatal("!EnvEnabled with HIERSAN=1")
	}
}

func TestViolationsCounter(t *testing.T) {
	h := newHarness()
	rec := &fake{}
	h.s.PoolAlloc(KindEvent, rec, "")
	h.s.PoolRelease(KindEvent, rec, "")
	h.s.PoolRelease(KindEvent, rec, "")
	h.s.PoolRelease(KindEvent, rec, "")
	if h.s.Violations() != 2 {
		t.Fatalf("Violations() = %d, want 2", h.s.Violations())
	}
}
