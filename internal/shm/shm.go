// Package shm models intra-node shared-memory data movement.
//
// It provides the single primitive every intra-node transport reduces to: a
// core-driven memory copy between two NUMA sockets of the same node, costed
// on the machine's fabric (the copying core's bandwidth ceiling, plus load on
// the source and destination memory buses) and blocking the calling process
// for its duration.
//
// On top of it sit the two intra-node transports the paper contrasts:
//
//   - copy-in/copy-out: the legacy double-copy path through a bounce buffer
//     in a shared segment (two sequential Copy calls by two cores) — the
//     approach that keeps leader processes busy and serializes hierarchical
//     collectives;
//   - KNEM single-copy (package knem): one Copy charged to the requester,
//     freeing the owner entirely.
package shm

import (
	"fmt"

	"hierknem/internal/buffer"
	"hierknem/internal/des"
	"hierknem/internal/topology"
)

// SmallCopyCutoff is the size below which an intra-node copy may bypass the
// fabric: a sub-4 KiB copy lasts ~1 µs and contributes negligible bus load,
// while installing a flow for it costs a full max-min recomputation. It is
// also the node-phase bracketing bound — a confined copy must stay under it,
// because larger copies install fabric flows, which are global-domain state.
// The mpi layer and the collective personalities share this one constant so
// the bracket placement rule and the transport agree.
const SmallCopyCutoff = 4096

// Copy blocks p while core moves n bytes from srcSock memory to dstSock
// memory. srcBufID identifies the source allocation for L3-residency
// modeling (0 = never resident). The copy pays the machine's ShmLatency and
// then streams at the core's copy ceiling, subject to fair sharing of the
// source and destination memory buses. When source and destination are the
// same socket, the bus appears twice in the path and is charged twice
// (read + write).
//
// Inside a node phase (p confined) the copy may not install a fabric flow,
// so it charges the unloaded source-side rate directly — the same rate both
// engine modes compute, keeping serial and parallel logs hex-identical. A
// confined copy at or above SmallCopyCutoff panics: the bracket placement
// rule was violated upstream.
func Copy(p *des.Proc, m *topology.Machine, core *topology.Core, srcSock, dstSock *topology.Socket, n int64, srcBufID uint64) {
	if n <= 0 {
		p.Sleep(m.Spec.ShmLatency)
		return
	}
	srcRes, rate := srcSock.ReadSide(&m.Spec, srcBufID, n, core.Socket == srcSock)
	if p.Confined() {
		if n >= SmallCopyCutoff {
			panic(fmt.Sprintf("shm: %d-byte copy inside a node phase; confined copies must stay under the fabric bypass cutoff (%d)", n, SmallCopyCutoff))
		}
		p.Sleep(m.Spec.ShmLatency + float64(n)/rate)
		return
	}
	done := des.AwaitBegin(p, 1)
	m.Fab.StartAfterPath2("copy", m.Spec.ShmLatency, float64(n), rate, srcRes, dstSock.MemBus, done)
	des.AwaitEnd(p)
}

// CopyBuffer performs Copy for the byte range described by src and then
// moves the actual payload into dst (when both are real), marking dst
// resident in the destination socket's L3. It is the building block for both
// the bounce-buffer transport and KNEM.
func CopyBuffer(p *des.Proc, m *topology.Machine, core *topology.Core, srcSock, dstSock *topology.Socket, src, dst *buffer.Buffer) {
	Copy(p, m, core, srcSock, dstSock, src.Len(), src.ID())
	dst.CopyFrom(src)
	dstSock.Touch(dst.ID(), dst.Len())
}

// CopyInOut models the legacy two-copy shared-segment transport for one
// fragment: the sender's core copies src into a bounce buffer in its own
// socket, then the receiver's core copies the bounce buffer to dst. Both
// phases block p — use it when a single process (e.g. a Hierarch leader)
// performs the whole movement; transports that split the phases across
// sender and receiver call Copy twice themselves.
func CopyInOut(p *des.Proc, m *topology.Machine, srcCore, dstCore *topology.Core, src, dst *buffer.Buffer) {
	// copy-in: src memory -> bounce (sender's socket), by the sender core
	Copy(p, m, srcCore, srcCore.Socket, srcCore.Socket, src.Len(), src.ID())
	// copy-out: bounce -> dst memory, by the receiver core
	Copy(p, m, dstCore, srcCore.Socket, dstCore.Socket, src.Len(), 0)
	dst.CopyFrom(src)
	dstCore.Socket.Touch(dst.ID(), dst.Len())
}
