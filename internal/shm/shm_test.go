package shm

import (
	"bytes"
	"math"
	"testing"

	"hierknem/internal/buffer"
	"hierknem/internal/des"
	"hierknem/internal/topology"
)

func testMachine(t *testing.T) *topology.Machine {
	t.Helper()
	m, err := topology.Build(topology.Spec{
		Name:              "shmtest",
		Nodes:             1,
		SocketsPerNode:    2,
		CoresPerSocket:    2,
		MemBandwidth:      100, // tiny numbers for exact arithmetic
		CoreCopyBandwidth: 40,
		L3Bandwidth:       80,
		L3Size:            1 << 20,
		ShmLatency:        0.5,
		NetBandwidth:      10,
		NetLatency:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestCopyDuration(t *testing.T) {
	m := testMachine(t)
	s0, s1 := m.Nodes[0].Sockets[0], m.Nodes[0].Sockets[1]
	core := s0.Cores[0]
	var end float64
	m.Eng.Spawn("copier", func(p *des.Proc) {
		Copy(p, m, core, s0, s1, 40, 0)
		end = p.Now()
	})
	if err := m.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	// 0.5 latency + 40 bytes at core ceiling 40 B/s = 1.5 s
	if !almost(end, 1.5) {
		t.Fatalf("copy finished at %g, want 1.5", end)
	}
}

func TestSameSocketCopyChargesBusTwice(t *testing.T) {
	m := testMachine(t)
	s0 := m.Nodes[0].Sockets[0]
	// Four concurrent same-socket copies: each wants 40 B/s but consumes
	// 2x on the bus; bus 100 B/s -> each runs at 12.5 B/s effective.
	var last float64
	for i := 0; i < 4; i++ {
		core := s0.Cores[i%2]
		m.Eng.Spawn("c", func(p *des.Proc) {
			Copy(p, m, core, s0, s0, 100, 0)
			last = p.Now()
		})
	}
	if err := m.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	// rate per flow: bus carries 8 "shares" (4 flows x2); 100/8 = 12.5 B/s
	// 100 bytes / 12.5 = 8 s, + 0.5 latency.
	if !almost(last, 8.5) {
		t.Fatalf("copies finished at %g, want 8.5", last)
	}
}

func TestCrossSocketCopiesShareBothBuses(t *testing.T) {
	m := testMachine(t)
	s0, s1 := m.Nodes[0].Sockets[0], m.Nodes[0].Sockets[1]
	var last float64
	// Two cross-socket copies from s0 to s1: each capped by core at 40;
	// buses have 100 each so both copies run at 40.
	for i := 0; i < 2; i++ {
		core := s1.Cores[i]
		m.Eng.Spawn("c", func(p *des.Proc) {
			Copy(p, m, core, s0, s1, 80, 0)
			last = p.Now()
		})
	}
	if err := m.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !almost(last, 2.5) {
		t.Fatalf("copies finished at %g, want 2.5 (80/40 + 0.5)", last)
	}
}

func TestZeroByteCopyPaysLatencyOnly(t *testing.T) {
	m := testMachine(t)
	s0 := m.Nodes[0].Sockets[0]
	var end float64
	m.Eng.Spawn("c", func(p *des.Proc) {
		Copy(p, m, s0.Cores[0], s0, s0, 0, 0)
		end = p.Now()
	})
	if err := m.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !almost(end, 0.5) {
		t.Fatalf("zero copy finished at %g, want 0.5", end)
	}
}

func TestCopyBufferMovesDataAndWarmsCache(t *testing.T) {
	m := testMachine(t)
	s0, s1 := m.Nodes[0].Sockets[0], m.Nodes[0].Sockets[1]
	src := buffer.NewReal([]byte{1, 2, 3, 4})
	dst := buffer.NewReal(make([]byte, 4))
	m.Eng.Spawn("c", func(p *des.Proc) {
		CopyBuffer(p, m, s1.Cores[0], s0, s1, src, dst)
	})
	if err := m.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst.Data(), []byte{1, 2, 3, 4}) {
		t.Fatalf("dst = %v", dst.Data())
	}
	if !s1.Resident(dst.ID()) {
		t.Fatal("destination not L3-resident after copy")
	}
}

func TestL3ResidentSourceCopiesFaster(t *testing.T) {
	m := testMachine(t)
	s0 := m.Nodes[0].Sockets[0]
	src := buffer.NewReal(make([]byte, 80))
	s0.Touch(src.ID(), src.Len())
	var warm float64
	m.Eng.Spawn("c", func(p *des.Proc) {
		Copy(p, m, s0.Cores[0], s0, s0, src.Len(), src.ID())
		warm = p.Now()
	})
	if err := m.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	// warm read: served from the L3 port (default 3x mem bandwidth) at
	// the L3 per-core cap 80 B/s, writing through the 100 B/s mem bus:
	// 80/80 = 1.0 + 0.5 latency = 1.5
	if !almost(warm, 1.5) {
		t.Fatalf("warm copy at %g, want 1.5", warm)
	}
}

func TestCopyInOutDoubleCost(t *testing.T) {
	m := testMachine(t)
	s0 := m.Nodes[0].Sockets[0]
	src := buffer.NewReal([]byte{5, 6, 7, 8})
	dst := buffer.NewReal(make([]byte, 4))
	var end float64
	m.Eng.Spawn("c", func(p *des.Proc) {
		CopyInOut(p, m, s0.Cores[0], s0.Cores[1], src, dst)
		end = p.Now()
	})
	if err := m.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst.Data(), []byte{5, 6, 7, 8}) {
		t.Fatalf("dst = %v", dst.Data())
	}
	// Two sequential copies of 4 bytes at 40 B/s (0.1 each) + 2 latencies.
	if !almost(end, 1.2) {
		t.Fatalf("copy-in/copy-out finished at %g, want 1.2", end)
	}

	// Single-copy equivalent for comparison: one latency, one transfer.
	m2 := testMachine(t)
	t0 := m2.Nodes[0].Sockets[0]
	var single float64
	m2.Eng.Spawn("c", func(p *des.Proc) {
		Copy(p, m2, t0.Cores[1], t0, t0, 4, 0)
		single = p.Now()
	})
	if err := m2.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	if single >= end {
		t.Fatalf("single copy (%g) not cheaper than copy-in/copy-out (%g)", single, end)
	}
}
