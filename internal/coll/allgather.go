package coll

import (
	"hierknem/internal/buffer"
	"hierknem/internal/mpi"
)

// AllgatherRing exchanges blocks around a logical ring defined by order (a
// permutation of comm ranks; nil means rank order). After P-1 steps every
// rank holds all P blocks. rbuf is laid out in comm-rank order with each
// rank's contribution at rank*blockSize; sbuf is the caller's block.
//
// postRecvFirst selects full-duplex behavior: when true each step posts the
// receive before the send and both directions progress concurrently. When
// false the step models a transport whose single-threaded progress engine
// cannot drive both directions of a link efficiently (the TCP stacks of the
// paper's era): both operations are still posted — real rings do not
// deadlock — but each step with a remote neighbor pays an extra
// progress-engine penalty of one message time, halving effective cross-node
// throughput (the ~50% Tuned Allgather loss of section IV-F).
func AllgatherRing(p *mpi.Proc, c *mpi.Comm, sbuf, rbuf *buffer.Buffer, order []int, postRecvFirst bool) {
	size := c.Size()
	me := c.Rank(p)
	block := sbuf.Len()
	if rbuf.Len() != block*int64(size) {
		panic("coll: allgather rbuf size must be size*sbuf")
	}
	// Local copy of my own contribution.
	rbuf.Slice(int64(me)*block, block).CopyFrom(sbuf)
	if size == 1 {
		return
	}

	// Position in the ring.
	ring := order
	if ring == nil {
		ring = make([]int, size)
		for i := range ring {
			ring[i] = i
		}
	}
	posOf := make([]int, size)
	for i, r := range ring {
		posOf[r] = i
	}
	pos := posOf[me]
	right := ring[(pos+1)%size]
	left := ring[(pos-1+size)%size]

	// Progress-engine penalty for the serialized personality: one extra
	// message time per step touching a remote neighbor.
	var serialPenalty float64
	if !postRecvFirst {
		myNode := p.Core().NodeID
		remote := c.Proc(right).Core().NodeID != myNode ||
			c.Proc(left).Core().NodeID != myNode
		if remote {
			serialPenalty = float64(block) / p.World().Machine.Spec.NetBandwidth
		}
	}

	// At step s I send the block that originated at ring position
	// (pos-s) and receive the one from position (pos-s-1).
	for s := 0; s < size-1; s++ {
		sendOwner := ring[(pos-s+size)%size]
		recvOwner := ring[(pos-s-1+2*size)%size]
		sb := rbuf.Slice(int64(sendOwner)*block, block)
		rb := rbuf.Slice(int64(recvOwner)*block, block)
		tag := collTag + s
		r := p.Irecv(c, rb, left, tag)
		sReq := p.Isend(c, sb, right, tag)
		p.Wait(r)
		p.Wait(sReq)
		if serialPenalty > 0 {
			p.Compute(serialPenalty)
		}
	}
}

// AllgatherRecursiveDoubling implements the log2(P)-step doubling exchange
// for power-of-two communicators (falls back to the ring otherwise). At step
// k, ranks at distance 2^k exchange everything gathered so far.
func AllgatherRecursiveDoubling(p *mpi.Proc, c *mpi.Comm, sbuf, rbuf *buffer.Buffer) {
	size := c.Size()
	if size&(size-1) != 0 {
		AllgatherRing(p, c, sbuf, rbuf, nil, true)
		return
	}
	me := c.Rank(p)
	block := sbuf.Len()
	if rbuf.Len() != block*int64(size) {
		panic("coll: allgather rbuf size must be size*sbuf")
	}
	rbuf.Slice(int64(me)*block, block).CopyFrom(sbuf)
	// My gathered range grows by doubling; it is always the aligned chunk
	// containing me of width "have" ranks.
	have := 1
	for mask := 1; mask < size; mask <<= 1 {
		peer := me ^ mask
		myLo := int64(me&^(mask-1)) * block
		peerLo := int64(peer&^(mask-1)) * block
		n := int64(have) * block
		tag := collTag + have
		r := p.Irecv(c, rbuf.Slice(peerLo, n), peer, tag)
		s := p.Isend(c, rbuf.Slice(myLo, n), peer, tag)
		p.Wait(r)
		p.Wait(s)
		have *= 2
	}
}

// GatherLinear collects every rank's block at root (rank-order layout).
func GatherLinear(p *mpi.Proc, c *mpi.Comm, sbuf, rbuf *buffer.Buffer, root int) {
	me := c.Rank(p)
	block := sbuf.Len()
	if me != root {
		p.Send(c, sbuf, root, collTag)
		return
	}
	if rbuf.Len() != block*int64(c.Size()) {
		panic("coll: gather rbuf size must be size*sbuf")
	}
	rbuf.Slice(int64(root)*block, block).CopyFrom(sbuf)
	reqs := make([]*mpi.Request, 0, c.Size()-1)
	for r := 0; r < c.Size(); r++ {
		if r != root {
			reqs = append(reqs, p.Irecv(c, rbuf.Slice(int64(r)*block, block), r, collTag))
		}
	}
	p.WaitAll(reqs...)
}

// AllgatherGatherBcast is the naive composition: gather to rank 0, then
// broadcast the concatenation — the classic small-cluster baseline.
func AllgatherGatherBcast(p *mpi.Proc, c *mpi.Comm, sbuf, rbuf *buffer.Buffer, segSize int64) {
	GatherLinear(p, c, sbuf, rbuf, 0)
	BcastChain(p, c, rbuf, 0, segSize)
}
