// Package coll implements the classic collective-communication algorithm
// zoo over the simulated MPI runtime: linear, binomial-tree, pipelined-chain
// and split-binary broadcasts; linear, binomial, pipelined and
// Rabenseifner-style reductions; ring and recursive-doubling allgathers.
//
// These are the building blocks of the baseline "personalities"
// (internal/modules) the paper compares against — Open MPI Tuned, Open MPI
// Hierarch, MPICH2 and MVAPICH2 — and of the inter-node layer reused by
// HierKNEM itself (internal/core).
//
// All algorithms are SPMD: every member of the communicator calls the same
// function with the same arguments (modulo root-relative buffers), exactly
// like MPI collectives.
package coll

import (
	"hierknem/internal/buffer"
)

// collTag is the base of the tag space reserved for collective internals.
const collTag = 1 << 22

// Like allocates a scratch buffer matching b's realness: real buffers get
// real scratch (so data correctness is testable end to end), phantom buffers
// get phantom scratch.
func Like(b *buffer.Buffer, n int64) *buffer.Buffer {
	if b != nil && !b.Phantom() {
		return buffer.NewReal(make([]byte, n))
	}
	return buffer.NewPhantom(n)
}

// vrank computes the rank relative to root (MPI's classic trick so tree
// algorithms can treat root as rank 0).
func vrank(rank, root, size int) int { return (rank - root + size) % size }

// unvrank inverts vrank.
func unvrank(v, root, size int) int { return (v + root) % size }
