package coll

import (
	"hierknem/internal/buffer"
	"hierknem/internal/mpi"
)

// ReduceArgs bundles the invariant reduction parameters.
type ReduceArgs struct {
	Op    buffer.Op
	Dtype buffer.Datatype
}

// ReduceLinear has every rank send its buffer to the root, which applies the
// operator in rank order. rbuf is only significant at root; non-roots may
// pass nil.
func ReduceLinear(p *mpi.Proc, c *mpi.Comm, a ReduceArgs, sbuf, rbuf *buffer.Buffer, root int) {
	me := c.Rank(p)
	if me != root {
		p.Send(c, sbuf, root, collTag)
		return
	}
	rbuf.CopyFrom(sbuf)
	tmp := Like(sbuf, sbuf.Len())
	for r := 0; r < c.Size(); r++ {
		if r == root {
			continue
		}
		p.Recv(c, tmp, r, collTag)
		p.ReduceLocal(a.Op, a.Dtype, rbuf, tmp)
	}
}

// ReduceBinomial reduces up a binomial tree: log2(P) rounds, partial results
// combined pairwise toward the root.
func ReduceBinomial(p *mpi.Proc, c *mpi.Comm, a ReduceArgs, sbuf, rbuf *buffer.Buffer, root int) {
	ReduceBinomialOverhead(p, c, a, sbuf, rbuf, root, 0)
}

// ReduceBinomialOverhead is ReduceBinomial with an extra per-message sender
// CPU cost, used to model software stacks whose reduction path pays a
// per-send penalty (the Open MPI-on-InfiniBand defect the paper profiles in
// section IV-E). The penalty sits in the large-message RDMA pipeline
// protocol: the paper's Figure 4(b) shows it from 64 KB upward (HierKNEM
// "clearly dominates" 2-32 KB), so smaller messages are exempt.
func ReduceBinomialOverhead(p *mpi.Proc, c *mpi.Comm, a ReduceArgs, sbuf, rbuf *buffer.Buffer, root int, perHop float64) {
	if sbuf.Len() < ReduceDefectMin {
		perHop = 0
	}
	me := c.Rank(p)
	size := c.Size()
	v := vrank(me, root, size)

	// acc holds my partial result.
	var acc *buffer.Buffer
	if v == 0 {
		acc = rbuf
	} else {
		acc = Like(sbuf, sbuf.Len())
	}
	acc.CopyFrom(sbuf)

	tmp := Like(sbuf, sbuf.Len())
	mask := 1
	for mask < size {
		if v&mask != 0 {
			parent := unvrank(v^mask, root, size)
			if perHop > 0 {
				p.Compute(perHop)
			}
			p.Send(c, acc, parent, collTag)
			return
		}
		child := v | mask
		if child < size {
			p.Recv(c, tmp, unvrank(child, root, size), collTag)
			p.ReduceLocal(a.Op, a.Dtype, acc, tmp)
		}
		mask <<= 1
	}
}

// ReduceChain pipelines segments along the chain ... -> root: each rank
// receives a partial segment from its successor, folds in its own
// contribution, and forwards toward the root. Segment i+1 can be inbound
// while segment i is being reduced, hiding arithmetic behind transfers.
func ReduceChain(p *mpi.Proc, c *mpi.Comm, a ReduceArgs, sbuf, rbuf *buffer.Buffer, root int, segSize int64) {
	ReduceChainOverhead(p, c, a, sbuf, rbuf, root, segSize, 0)
}

// ReduceDefectMin is the message/segment size from which the modeled Open
// MPI reduction defect applies (calibrated to the paper's section IV-E
// profile and Figure 4(b) crossover).
const ReduceDefectMin = 64 << 10

// ReduceChainOverhead is ReduceChain with an extra per-segment sender CPU
// cost (see ReduceBinomialOverhead; segments below ReduceDefectMin are
// exempt).
func ReduceChainOverhead(p *mpi.Proc, c *mpi.Comm, a ReduceArgs, sbuf, rbuf *buffer.Buffer, root int, segSize int64, perHop float64) {
	if segSize > 0 && segSize < ReduceDefectMin {
		perHop = 0
	}
	me := c.Rank(p)
	size := c.Size()
	if size == 1 {
		rbuf.CopyFrom(sbuf)
		return
	}
	if segSize <= 0 {
		segSize = sbuf.Len()
	}
	nseg := mpi.CeilDiv(sbuf.Len(), segSize)
	if nseg == 0 {
		nseg = 1
	}
	v := vrank(me, root, size)
	// Chain: v=size-1 originates, data flows to v=0 (the root).
	fromPeer := v + 1 // my upstream in virtual ranks
	toPeer := v - 1

	var acc *buffer.Buffer
	if v == 0 {
		acc = rbuf
		acc.CopyFrom(sbuf)
	} else {
		acc = Like(sbuf, sbuf.Len())
		acc.CopyFrom(sbuf)
	}
	tmp := Like(sbuf, segSize)
	var pending []*mpi.Request
	for i := int64(0); i < nseg; i++ {
		off, n := mpi.SegmentBounds(sbuf.Len(), segSize, i)
		accSeg := acc.Slice(off, n)
		if v != size-1 {
			tseg := tmp.Slice(0, n)
			p.Recv(c, tseg, unvrank(fromPeer, root, size), collTag+int(i))
			p.ReduceLocal(a.Op, a.Dtype, accSeg, tseg)
		}
		if v != 0 {
			if perHop > 0 {
				p.Compute(perHop)
			}
			pending = append(pending, p.Isend(c, accSeg, unvrank(toPeer, root, size), collTag+int(i)))
			if len(pending) > 2 {
				p.Wait(pending[0])
				pending = pending[1:]
			}
		}
	}
	p.WaitAll(pending...)
}

// ReduceRabenseifner implements the reduce-scatter + binomial-gather scheme
// for large messages on power-of-two communicators, falling back to
// ReduceBinomial otherwise. Each rank ends the first phase owning the fully
// reduced 1/P slice of the buffer; the gather funnels slices to the root.
func ReduceRabenseifner(p *mpi.Proc, c *mpi.Comm, a ReduceArgs, sbuf, rbuf *buffer.Buffer, root int) {
	size := c.Size()
	if size&(size-1) != 0 || size == 1 || sbuf.Len() < int64(size) {
		ReduceBinomial(p, c, a, sbuf, rbuf, root)
		return
	}
	me := c.Rank(p)
	v := vrank(me, root, size)
	total := sbuf.Len()

	acc := Like(sbuf, total)
	acc.CopyFrom(sbuf)
	tmp := Like(sbuf, total)

	// Recursive halving reduce-scatter: after log2(P) steps, rank v owns
	// the reduced range [lo, lo+n). Splits stay element-aligned.
	es := a.Dtype.Size()
	lo, n := int64(0), total
	for mask := size / 2; mask >= 1; mask /= 2 {
		peerV := v ^ mask
		peer := unvrank(peerV, root, size)
		half := (n / 2 / es) * es
		var sendLo, sendN, keepLo, keepN int64
		if v&mask == 0 {
			// Keep lower half, send upper.
			sendLo, sendN = lo+half, n-half
			keepLo, keepN = lo, half
		} else {
			sendLo, sendN = lo, half
			keepLo, keepN = lo+half, n-half
		}
		p.SendRecv(c, acc.Slice(sendLo, sendN), peer, collTag,
			tmp.Slice(keepLo, keepN), peer, collTag)
		p.ReduceLocal(a.Op, a.Dtype, acc.Slice(keepLo, keepN), tmp.Slice(keepLo, keepN))
		lo, n = keepLo, keepN
	}

	// Gather the owned slices to the root. (The classic scheme uses a
	// binomial gatherv; a direct gatherv moves the same byte volume into
	// the root's link and keeps ownership bookkeeping simple.)
	if v != 0 {
		p.Send(c, acc.Slice(lo, n), unvrank(0, root, size), collTag+1)
		return
	}
	rbuf.Slice(lo, n).CopyFrom(acc.Slice(lo, n))
	for r := 1; r < size; r++ {
		rLo, rN := ownedRange(total, es, size, r)
		p.Recv(c, rbuf.Slice(rLo, rN), unvrank(r, root, size), collTag+1)
	}
}

// ownedRange reproduces the recursive-halving ownership of rank v with
// element-aligned splits of width es.
func ownedRange(total, es int64, size, v int) (int64, int64) {
	lo, n := int64(0), total
	for mask := size / 2; mask >= 1; mask /= 2 {
		half := (n / 2 / es) * es
		if v&mask == 0 {
			n = half
		} else {
			lo, n = lo+half, n-half
		}
	}
	return lo, n
}
