package coll

import (
	"hierknem/internal/buffer"
	"hierknem/internal/mpi"
)

// ScatterLinear has the root send each rank its block directly. sbuf is
// significant at root only (size*block bytes, comm-rank order); every rank
// receives its block in rbuf.
func ScatterLinear(p *mpi.Proc, c *mpi.Comm, sbuf, rbuf *buffer.Buffer, root int) {
	me := c.Rank(p)
	block := rbuf.Len()
	if me == root {
		reqs := make([]*mpi.Request, 0, c.Size()-1)
		for r := 0; r < c.Size(); r++ {
			if r == root {
				rbuf.CopyFrom(sbuf.Slice(int64(r)*block, block))
				continue
			}
			reqs = append(reqs, p.Isend(c, sbuf.Slice(int64(r)*block, block), r, collTag+20))
		}
		p.WaitAll(reqs...)
		return
	}
	p.Recv(c, rbuf, root, collTag+20)
}

// ScatterBinomial scatters down a binomial tree: the root sends half the
// blocks to its first child, a quarter to the next, and so on; inner ranks
// forward the sub-ranges they received. Total traffic is size*log(P) blocks
// on the root's links instead of size*(P-1) sends.
func ScatterBinomial(p *mpi.Proc, c *mpi.Comm, sbuf, rbuf *buffer.Buffer, root int) {
	size := c.Size()
	me := c.Rank(p)
	block := rbuf.Len()
	v := vrank(me, root, size)

	// staging holds the contiguous virtual-rank range [v, v+span) of
	// blocks this rank is responsible for.
	span := 1
	for span < size {
		span *= 2
	}
	var staging *buffer.Buffer
	if v == 0 {
		// Root re-orders blocks into virtual-rank order once.
		staging = Like(sbuf, int64(size)*block)
		for r := 0; r < size; r++ {
			staging.Slice(int64(vrank(r, root, size))*block, block).
				CopyFrom(sbuf.Slice(int64(r)*block, block))
		}
	} else {
		// Receive my sub-range from the parent.
		mask := 1
		for v&mask == 0 {
			mask <<= 1
		}
		parent := unvrank(v^mask, root, size)
		n := mask
		if v+n > size {
			n = size - v
		}
		staging = Like(rbuf, int64(n)*block)
		p.Recv(c, staging, parent, collTag+21)
		span = mask
	}

	// Forward upper halves to children.
	mask := span / 2
	if v == 0 {
		mask = 1
		for mask*2 < size {
			mask *= 2
		}
	}
	for ; mask >= 1; mask /= 2 {
		if v&mask != 0 {
			break
		}
		child := v | mask
		if child >= size || child == v {
			continue
		}
		n := mask
		if child+n > size {
			n = size - child
		}
		lo := int64(child-v) * block
		p.Send(c, staging.Slice(lo, int64(n)*block), unvrank(child, root, size), collTag+21)
	}
	rbuf.CopyFrom(staging.Slice(0, block))
}

// GatherBinomial gathers blocks up a binomial tree (the mirror of
// ScatterBinomial). rbuf is significant at root (size*block, comm-rank
// order).
func GatherBinomial(p *mpi.Proc, c *mpi.Comm, sbuf, rbuf *buffer.Buffer, root int) {
	size := c.Size()
	me := c.Rank(p)
	block := sbuf.Len()
	v := vrank(me, root, size)

	// staging accumulates the virtual-rank range [v, v+span).
	span := 1
	maxSpan := 1
	for maxSpan < size {
		maxSpan *= 2
	}
	staging := Like(sbuf, int64(maxSpan)*block)
	staging.Slice(0, block).CopyFrom(sbuf)

	mask := 1
	for mask < size {
		if v&mask != 0 {
			// Send my accumulated range to the parent and stop.
			parent := unvrank(v^mask, root, size)
			n := span
			if v+n > size {
				n = size - v
			}
			p.Send(c, staging.Slice(0, int64(n)*block), parent, collTag+22)
			return
		}
		child := v | mask
		if child < size {
			n := mask
			if child+n > size {
				n = size - child
			}
			p.Recv(c, staging.Slice(int64(mask)*block, int64(n)*block), unvrank(child, root, size), collTag+22)
			span = mask * 2
		}
		mask <<= 1
	}
	// Root: staging is in virtual-rank order; restore comm-rank order.
	for r := 0; r < size; r++ {
		rbuf.Slice(int64(r)*block, block).
			CopyFrom(staging.Slice(int64(vrank(r, root, size))*block, block))
	}
}

// GatherLinearRooted is GatherLinear with an arbitrary root (kept separate
// so existing call sites stay unchanged).
func GatherLinearRooted(p *mpi.Proc, c *mpi.Comm, sbuf, rbuf *buffer.Buffer, root int) {
	GatherLinear(p, c, sbuf, rbuf, root)
}

// AllreduceRecursiveDoubling performs the classic log2(P) exchange-and-fold
// allreduce for power-of-two communicators, falling back to reduce+bcast
// otherwise. Every rank ends with the full reduction in rbuf.
func AllreduceRecursiveDoubling(p *mpi.Proc, c *mpi.Comm, a ReduceArgs, sbuf, rbuf *buffer.Buffer) {
	size := c.Size()
	me := c.Rank(p)
	rbuf.CopyFrom(sbuf)
	if size == 1 {
		return
	}
	if size&(size-1) != 0 {
		ReduceBinomial(p, c, a, sbuf, rbuf, 0)
		BcastBinomial(p, c, rbuf, 0)
		return
	}
	tmp := Like(sbuf, sbuf.Len())
	for mask := 1; mask < size; mask <<= 1 {
		peer := me ^ mask
		r := p.Irecv(c, tmp, peer, collTag+23)
		s := p.Isend(c, rbuf, peer, collTag+23)
		p.Wait(r)
		p.Wait(s)
		p.ReduceLocal(a.Op, a.Dtype, rbuf, tmp)
	}
}

// AllreduceRing implements the bandwidth-optimal reduce-scatter + allgather
// ring (Rabenseifner's large-message allreduce as shipped by MPICH): 2(P-1)
// steps moving 2*S*(P-1)/P bytes per rank.
func AllreduceRing(p *mpi.Proc, c *mpi.Comm, a ReduceArgs, sbuf, rbuf *buffer.Buffer, order []int) {
	size := c.Size()
	me := c.Rank(p)
	rbuf.CopyFrom(sbuf)
	if size == 1 {
		return
	}
	total := sbuf.Len()
	es := a.Dtype.Size()
	// Element-aligned chunk boundaries.
	bounds := make([]int64, size+1)
	for i := 0; i <= size; i++ {
		bounds[i] = (total * int64(i) / int64(size)) / es * es
	}
	bounds[size] = total
	chunk := func(i int) (int64, int64) {
		i = ((i % size) + size) % size
		return bounds[i], bounds[i+1] - bounds[i]
	}

	ring := order
	if ring == nil {
		ring = make([]int, size)
		for i := range ring {
			ring[i] = i
		}
	}
	posOf := make([]int, size)
	for i, r := range ring {
		posOf[r] = i
	}
	pos := posOf[me]
	right := ring[(pos+1)%size]
	left := ring[(pos-1+size)%size]

	maxChunk := int64(0)
	for i := 0; i < size; i++ {
		if _, n := chunk(i); n > maxChunk {
			maxChunk = n
		}
	}
	tmp := Like(sbuf, maxChunk)

	// Phase 1: reduce-scatter around the ring. After step s, this rank
	// holds the partial sum of chunk (pos-s-1) over s+2 contributors; after
	// P-1 steps it owns the fully reduced chunk (pos+1).
	for s := 0; s < size-1; s++ {
		sendIdx := pos - s
		recvIdx := pos - s - 1
		sLo, sN := chunk(sendIdx)
		rLo, rN := chunk(recvIdx)
		tseg := tmp.Slice(0, rN)
		r := p.Irecv(c, tseg, left, collTag+24+s)
		sr := p.Isend(c, rbuf.Slice(sLo, sN), right, collTag+24+s)
		p.Wait(r)
		p.Wait(sr)
		p.ReduceLocal(a.Op, a.Dtype, rbuf.Slice(rLo, rN), tseg)
	}
	// Phase 2: allgather of the reduced chunks around the same ring.
	for s := 0; s < size-1; s++ {
		sendIdx := pos + 1 - s
		recvIdx := pos - s
		sLo, sN := chunk(sendIdx)
		rLo, rN := chunk(recvIdx)
		r := p.Irecv(c, rbuf.Slice(rLo, rN), left, collTag+500+s)
		sr := p.Isend(c, rbuf.Slice(sLo, sN), right, collTag+500+s)
		p.Wait(r)
		p.Wait(sr)
	}
}
