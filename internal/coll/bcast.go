package coll

import (
	"hierknem/internal/buffer"
	"hierknem/internal/mpi"
)

// BcastLinear has the root send the full buffer to every other rank, one
// Isend per peer. Simple, and optimal only for tiny communicators.
func BcastLinear(p *mpi.Proc, c *mpi.Comm, buf *buffer.Buffer, root int) {
	me := c.Rank(p)
	if me == root {
		reqs := make([]*mpi.Request, 0, c.Size()-1)
		for r := 0; r < c.Size(); r++ {
			if r != root {
				reqs = append(reqs, p.Isend(c, buf, r, collTag))
			}
		}
		p.WaitAll(reqs...)
		return
	}
	p.Recv(c, buf, root, collTag)
}

// BcastBinomial runs the classic binomial-tree broadcast: log2(P) rounds,
// each holder doubling the set of ranks that have the data.
func BcastBinomial(p *mpi.Proc, c *mpi.Comm, buf *buffer.Buffer, root int) {
	me := c.Rank(p)
	size := c.Size()
	v := vrank(me, root, size)

	// Receive once from the parent (unless root).
	if v != 0 {
		mask := 1
		for v&mask == 0 {
			mask <<= 1
		}
		parent := unvrank(v^mask, root, size)
		p.Recv(c, buf, parent, collTag)
	}
	// Forward to children.
	mask := 1
	for mask < size && v&(mask-1) == 0 {
		if v&mask != 0 {
			break
		}
		child := v | mask
		if child < size {
			p.Send(c, buf, unvrank(child, root, size), collTag)
		}
		mask <<= 1
	}
}

// BcastChain pipelines the message along the rank-ordered chain
// root -> root+1 -> ... in segments of segSize bytes: after the fan-in fills
// the pipe, every link streams concurrently at full bandwidth.
func BcastChain(p *mpi.Proc, c *mpi.Comm, buf *buffer.Buffer, root int, segSize int64) {
	me := c.Rank(p)
	size := c.Size()
	if size == 1 {
		return
	}
	if segSize <= 0 {
		segSize = buf.Len()
	}
	nseg := mpi.CeilDiv(buf.Len(), segSize)
	if nseg == 0 {
		nseg = 1
	}
	v := vrank(me, root, size)
	prev := unvrank(v-1, root, size)
	next := unvrank(v+1, root, size)
	last := v == size-1

	// Prepost the receive for the next segment before waiting on the
	// current one, so rendezvous transfers start without a handshake round
	// trip (real pipelined implementations prepost exactly like this).
	var recvReqs []*mpi.Request
	if v != 0 {
		recvReqs = make([]*mpi.Request, nseg)
		off, n := mpi.SegmentBounds(buf.Len(), segSize, 0)
		recvReqs[0] = p.Irecv(c, buf.Slice(off, n), prev, collTag)
	}
	var sendReqs []*mpi.Request
	for i := int64(0); i < nseg; i++ {
		off, n := mpi.SegmentBounds(buf.Len(), segSize, i)
		seg := buf.Slice(off, n)
		if v != 0 {
			if i+1 < nseg {
				noff, nn := mpi.SegmentBounds(buf.Len(), segSize, i+1)
				recvReqs[i+1] = p.Irecv(c, buf.Slice(noff, nn), prev, collTag+int(i+1))
			}
			p.Wait(recvReqs[i])
		}
		if !last {
			sendReqs = append(sendReqs, p.Isend(c, seg, next, collTag+int(i)))
			// Keep at most two sends in flight so the pipeline stays a
			// pipeline rather than an unbounded burst.
			if len(sendReqs) > 2 {
				p.Wait(sendReqs[0])
				sendReqs = sendReqs[1:]
			}
		}
	}
	p.WaitAll(sendReqs...)
}

// BcastBinaryTree pipelines segments down a balanced binary tree (heap
// numbering in virtual-rank space). Compared to the chain it halves the
// steady-state bandwidth (every inner node forwards each segment twice) but
// has logarithmic fan-in, which wins at mid message sizes — Open MPI Tuned's
// mid-size regime.
func BcastBinaryTree(p *mpi.Proc, c *mpi.Comm, buf *buffer.Buffer, root int, segSize int64) {
	size := c.Size()
	if size == 1 {
		return
	}
	me := c.Rank(p)
	v := vrank(me, root, size)
	if segSize <= 0 {
		segSize = buf.Len()
	}
	nseg := mpi.CeilDiv(buf.Len(), segSize)
	if nseg == 0 {
		nseg = 1
	}
	parent := unvrank((v-1)/2, root, size)
	children := make([]int, 0, 2)
	for _, cv := range []int{2*v + 1, 2*v + 2} {
		if cv < size {
			children = append(children, unvrank(cv, root, size))
		}
	}
	var pending []*mpi.Request
	for i := int64(0); i < nseg; i++ {
		off, n := mpi.SegmentBounds(buf.Len(), segSize, i)
		seg := buf.Slice(off, n)
		if v != 0 {
			p.Recv(c, seg, parent, collTag+int(i))
		}
		for _, ch := range children {
			pending = append(pending, p.Isend(c, seg, ch, collTag+int(i)))
		}
		if len(pending) > 4 {
			p.WaitAll(pending[:2]...)
			pending = pending[2:]
		}
	}
	p.WaitAll(pending...)
}

func emptyLike() *buffer.Buffer { return buffer.NewPhantom(0) }

// sendChain segments buf and returns the outstanding send requests.
func sendChain(p *mpi.Proc, c *mpi.Comm, buf *buffer.Buffer, dst int, segSize int64, tag int) []*mpi.Request {
	if segSize <= 0 || segSize >= buf.Len() {
		if buf.Len() == 0 {
			return nil
		}
		return []*mpi.Request{p.Isend(c, buf, dst, tag)}
	}
	nseg := mpi.CeilDiv(buf.Len(), segSize)
	reqs := make([]*mpi.Request, 0, nseg)
	for i := int64(0); i < nseg; i++ {
		off, n := mpi.SegmentBounds(buf.Len(), segSize, i)
		reqs = append(reqs, p.Isend(c, buf.Slice(off, n), dst, tag+int(i)))
	}
	return reqs
}

// recvChain receives the segmented counterpart of sendChain.
func recvChain(p *mpi.Proc, c *mpi.Comm, buf *buffer.Buffer, src int, segSize int64, tag int) {
	if segSize <= 0 || segSize >= buf.Len() {
		if buf.Len() == 0 {
			return
		}
		p.Recv(c, buf, src, tag)
		return
	}
	nseg := mpi.CeilDiv(buf.Len(), segSize)
	for i := int64(0); i < nseg; i++ {
		off, n := mpi.SegmentBounds(buf.Len(), segSize, i)
		p.Recv(c, buf.Slice(off, n), src, tag+int(i))
	}
}

// BcastScatterAllgather implements MPICH's large-message broadcast: scatter
// the buffer over a binomial tree, then ring-allgather the pieces (Thakur &
// Gropp). Block b ends up everywhere after P-1 ring steps.
func BcastScatterAllgather(p *mpi.Proc, c *mpi.Comm, buf *buffer.Buffer, root int) {
	size := c.Size()
	if size == 1 {
		return
	}
	me := c.Rank(p)
	v := vrank(me, root, size)
	total := buf.Len()
	block := mpi.CeilDiv(total, int64(size))

	// --- Scatter phase (binomial): rank v owns block v afterwards. ---
	// curLo/curN track the contiguous block range this rank currently holds.
	curLo, curN := int64(0), int64(0)
	if v == 0 {
		curLo, curN = 0, total
	} else {
		mask := 1
		for v&mask == 0 {
			mask <<= 1
		}
		parent := v ^ mask
		// The range a rank receives: [v*block, min(end of parent's span)).
		span := int64(mask) * block // size of my subtree's span
		curLo = int64(v) * block
		curN = span
		if curLo+curN > total {
			curN = total - curLo
		}
		if curN < 0 {
			curN = 0
		}
		if curN > 0 {
			p.Recv(c, buf.Slice(curLo, curN), unvrank(parent, root, size), collTag)
		} else {
			p.Recv(c, emptyLike(), unvrank(parent, root, size), collTag)
		}
	}
	// Send upper halves of my span to children.
	mask := 1
	for mask < size {
		if v&mask != 0 {
			break
		}
		child := v | mask
		if child < size {
			childLo := int64(child) * block
			childN := int64(mask) * block
			if childLo+childN > total {
				childN = total - childLo
			}
			if childN < 0 {
				childN = 0
			}
			if childN > 0 {
				p.Send(c, buf.Slice(childLo, childN), unvrank(child, root, size), collTag)
				curN = childLo - curLo
			} else {
				p.Send(c, emptyLike(), unvrank(child, root, size), collTag)
			}
		}
		mask <<= 1
	}

	// --- Ring allgather of the P blocks (in virtual-rank space). ---
	blockAt := func(i int) (int64, int64) {
		lo := int64(i) * block
		if lo >= total {
			return total, 0
		}
		n := block
		if lo+n > total {
			n = total - lo
		}
		return lo, n
	}
	right := unvrank((v+1)%size, root, size)
	left := unvrank((v-1+size)%size, root, size)
	for step := 0; step < size-1; step++ {
		sendIdx := (v - step + size) % size
		recvIdx := (v - step - 1 + size) % size
		sLo, sN := blockAt(sendIdx)
		rLo, rN := blockAt(recvIdx)
		sb := buf.Slice(sLo, sN)
		rb := buf.Slice(rLo, rN)
		p.SendRecv(c, sb, right, collTag+1+step, rb, left, collTag+1+step)
	}
}
