package coll

import "hierknem/internal/buffer"

// This file is the executable specification of the collectives: naive
// sequential references computed outside the simulator, against which every
// module personality is differentially tested (conformance_test.go at the
// repository root). Each function takes rank-indexed byte slices and
// returns what MPI semantics demand, with no algorithmic cleverness to
// share bugs with the implementations under test.

// RefBcast returns every rank's expected buffer after Bcast: a copy of the
// root's payload.
func RefBcast(inputs [][]byte, root int) [][]byte {
	out := make([][]byte, len(inputs))
	for r := range out {
		out[r] = append([]byte(nil), inputs[root]...)
	}
	return out
}

// RefReduce folds the rank buffers in ascending rank order with the given
// operator and returns the root's expected receive buffer. With
// non-commutative rounding (float sums) the fold order matters; the
// conformance tests therefore reduce integers, where every order agrees.
func RefReduce(a ReduceArgs, inputs [][]byte) []byte {
	acc := buffer.NewReal(append([]byte(nil), inputs[0]...))
	for _, in := range inputs[1:] {
		buffer.Reduce(a.Op, a.Dtype, acc, buffer.NewReal(append([]byte(nil), in...)))
	}
	return acc.Data()
}

// RefAllgather returns the buffer every rank must hold after Allgather: the
// rank blocks concatenated in rank order.
func RefAllgather(inputs [][]byte) []byte {
	var out []byte
	for _, in := range inputs {
		out = append(out, in...)
	}
	return out
}

// RefScatter splits the root's send buffer into len(inputs) equal blocks,
// block r being rank r's expected receive buffer.
func RefScatter(rootData []byte, np int) [][]byte {
	block := len(rootData) / np
	out := make([][]byte, np)
	for r := 0; r < np; r++ {
		out[r] = append([]byte(nil), rootData[r*block:(r+1)*block]...)
	}
	return out
}

// RefGather returns the root's expected receive buffer after Gather: the
// rank blocks concatenated in rank order (identical to RefAllgather, spelled
// separately so each collective has its own specification).
func RefGather(inputs [][]byte) []byte {
	return RefAllgather(inputs)
}
