package coll

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"hierknem/internal/buffer"
	"hierknem/internal/mpi"
	"hierknem/internal/topology"
)

func testWorld(t *testing.T, nodes, coresPerNode, np int) *mpi.World {
	t.Helper()
	m, err := topology.Build(topology.Spec{
		Name:              "colltest",
		Nodes:             nodes,
		SocketsPerNode:    1,
		CoresPerSocket:    coresPerNode,
		MemBandwidth:      10e9,
		CoreCopyBandwidth: 3e9,
		L3Bandwidth:       6e9,
		L3Size:            12 << 20,
		ShmLatency:        1e-6,
		NetBandwidth:      1e9,
		NetLatency:        10e-6,
		NetFullDuplex:     true,
		EagerThreshold:    4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := topology.ByCore(m, np)
	if err != nil {
		t.Fatal(err)
	}
	w, err := mpi.NewWorld(m, b, mpi.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// pattern fills deterministic per-rank test data.
func pattern(rank int, n int) []byte {
	d := make([]byte, n)
	for i := range d {
		d[i] = byte((rank*131 + i*7 + 3) % 251)
	}
	return d
}

type bcastAlg struct {
	name string
	run  func(p *mpi.Proc, c *mpi.Comm, buf *buffer.Buffer, root int)
}

func bcastAlgs() []bcastAlg {
	return []bcastAlg{
		{"linear", func(p *mpi.Proc, c *mpi.Comm, b *buffer.Buffer, root int) { BcastLinear(p, c, b, root) }},
		{"binomial", func(p *mpi.Proc, c *mpi.Comm, b *buffer.Buffer, root int) { BcastBinomial(p, c, b, root) }},
		{"chain", func(p *mpi.Proc, c *mpi.Comm, b *buffer.Buffer, root int) { BcastChain(p, c, b, root, 1000) }},
		{"chain-whole", func(p *mpi.Proc, c *mpi.Comm, b *buffer.Buffer, root int) { BcastChain(p, c, b, root, 0) }},
		{"bintree", func(p *mpi.Proc, c *mpi.Comm, b *buffer.Buffer, root int) { BcastBinaryTree(p, c, b, root, 1000) }},
		{"scatter-allgather", func(p *mpi.Proc, c *mpi.Comm, b *buffer.Buffer, root int) { BcastScatterAllgather(p, c, b, root) }},
	}
}

func TestBcastAlgorithmsDeliverEverywhere(t *testing.T) {
	for _, alg := range bcastAlgs() {
		for _, np := range []int{2, 3, 5, 8, 13} {
			for _, root := range []int{0, 1, np - 1} {
				name := fmt.Sprintf("%s/np%d/root%d", alg.name, np, root)
				t.Run(name, func(t *testing.T) {
					w := testWorld(t, 2, (np+1)/2, np)
					want := pattern(root, 10000)
					bad := 0
					err := w.Run(func(p *mpi.Proc) {
						c := w.WorldComm()
						var buf *buffer.Buffer
						if c.Rank(p) == root {
							buf = buffer.NewReal(append([]byte(nil), want...))
						} else {
							buf = buffer.NewReal(make([]byte, len(want)))
						}
						alg.run(p, c, buf, root)
						if !bytes.Equal(buf.Data(), want) {
							bad++
						}
					})
					if err != nil {
						t.Fatal(err)
					}
					if bad != 0 {
						t.Fatalf("%d ranks got wrong data", bad)
					}
				})
			}
		}
	}
}

func TestBcastSingleRankNoop(t *testing.T) {
	for _, alg := range bcastAlgs() {
		w := testWorld(t, 1, 1, 1)
		err := w.Run(func(p *mpi.Proc) {
			buf := buffer.NewReal(pattern(0, 64))
			alg.run(p, w.WorldComm(), buf, 0)
		})
		if err != nil {
			t.Fatalf("%s: %v", alg.name, err)
		}
	}
}

type reduceAlg struct {
	name string
	run  func(p *mpi.Proc, c *mpi.Comm, a ReduceArgs, sbuf, rbuf *buffer.Buffer, root int)
}

func reduceAlgs() []reduceAlg {
	return []reduceAlg{
		{"linear", func(p *mpi.Proc, c *mpi.Comm, a ReduceArgs, s, r *buffer.Buffer, root int) {
			ReduceLinear(p, c, a, s, r, root)
		}},
		{"binomial", func(p *mpi.Proc, c *mpi.Comm, a ReduceArgs, s, r *buffer.Buffer, root int) {
			ReduceBinomial(p, c, a, s, r, root)
		}},
		{"chain", func(p *mpi.Proc, c *mpi.Comm, a ReduceArgs, s, r *buffer.Buffer, root int) {
			ReduceChain(p, c, a, s, r, root, 800)
		}},
		{"rabenseifner", func(p *mpi.Proc, c *mpi.Comm, a ReduceArgs, s, r *buffer.Buffer, root int) {
			ReduceRabenseifner(p, c, a, s, r, root)
		}},
	}
}

func TestReduceAlgorithmsComputeSum(t *testing.T) {
	const elems = 500
	for _, alg := range reduceAlgs() {
		for _, np := range []int{2, 3, 4, 8, 9} {
			for _, root := range []int{0, np / 2} {
				name := fmt.Sprintf("%s/np%d/root%d", alg.name, np, root)
				t.Run(name, func(t *testing.T) {
					w := testWorld(t, 2, (np+1)/2, np)
					want := make([]int64, elems)
					for r := 0; r < np; r++ {
						for i := range want {
							want[i] += int64(r*1000 + i)
						}
					}
					var got []int64
					err := w.Run(func(p *mpi.Proc) {
						c := w.WorldComm()
						me := c.Rank(p)
						vals := make([]int64, elems)
						for i := range vals {
							vals[i] = int64(me*1000 + i)
						}
						sbuf := buffer.Int64s(vals)
						var rbuf *buffer.Buffer
						if me == root {
							rbuf = buffer.Int64s(make([]int64, elems))
						}
						alg.run(p, c, ReduceArgs{Op: buffer.OpSum, Dtype: buffer.Int64}, sbuf, rbuf, root)
						if me == root {
							got = buffer.AsInt64s(rbuf)
						}
					})
					if err != nil {
						t.Fatal(err)
					}
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("elem %d = %d, want %d", i, got[i], want[i])
						}
					}
				})
			}
		}
	}
}

func TestReduceMaxOp(t *testing.T) {
	w := testWorld(t, 2, 2, 4)
	var got []int64
	err := w.Run(func(p *mpi.Proc) {
		c := w.WorldComm()
		me := c.Rank(p)
		sbuf := buffer.Int64s([]int64{int64(me), int64(10 - me)})
		var rbuf *buffer.Buffer
		if me == 0 {
			rbuf = buffer.Int64s(make([]int64, 2))
		}
		ReduceBinomial(p, c, ReduceArgs{Op: buffer.OpMax, Dtype: buffer.Int64}, sbuf, rbuf, 0)
		if me == 0 {
			got = buffer.AsInt64s(rbuf)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 3 || got[1] != 10 {
		t.Fatalf("max = %v, want [3 10]", got)
	}
}

func TestAllgatherVariantsDeliverAllBlocks(t *testing.T) {
	const block = 600
	variants := []struct {
		name string
		run  func(p *mpi.Proc, c *mpi.Comm, s, r *buffer.Buffer)
	}{
		{"ring", func(p *mpi.Proc, c *mpi.Comm, s, r *buffer.Buffer) {
			AllgatherRing(p, c, s, r, nil, true)
		}},
		{"ring-serialized", func(p *mpi.Proc, c *mpi.Comm, s, r *buffer.Buffer) {
			AllgatherRing(p, c, s, r, nil, false)
		}},
		{"recursive-doubling", func(p *mpi.Proc, c *mpi.Comm, s, r *buffer.Buffer) {
			AllgatherRecursiveDoubling(p, c, s, r)
		}},
		{"gather-bcast", func(p *mpi.Proc, c *mpi.Comm, s, r *buffer.Buffer) {
			AllgatherGatherBcast(p, c, s, r, 1000)
		}},
	}
	for _, v := range variants {
		for _, np := range []int{2, 4, 5, 8} {
			t.Run(fmt.Sprintf("%s/np%d", v.name, np), func(t *testing.T) {
				w := testWorld(t, 2, (np+1)/2, np)
				bad := 0
				err := w.Run(func(p *mpi.Proc) {
					c := w.WorldComm()
					me := c.Rank(p)
					sbuf := buffer.NewReal(pattern(me, block))
					rbuf := buffer.NewReal(make([]byte, block*np))
					v.run(p, c, sbuf, rbuf)
					for r := 0; r < np; r++ {
						if !bytes.Equal(rbuf.Data()[r*block:(r+1)*block], pattern(r, block)) {
							bad++
						}
					}
				})
				if err != nil {
					t.Fatal(err)
				}
				if bad != 0 {
					t.Fatalf("%d blocks wrong", bad)
				}
			})
		}
	}
}

// Regression: the serialized-progress ring with rendezvous-size blocks and
// cross-node neighbors must not deadlock (a literal send-then-recv ordering
// would: every rank blocks in a rendezvous send).
func TestAllgatherRingSerializedRendezvousNoDeadlock(t *testing.T) {
	const block = 8192 // >= eager threshold: rendezvous path
	np := 8
	w := testWorld(t, 4, 2, np) // 2 ranks per node: cross-node ring edges
	bad := 0
	err := w.Run(func(p *mpi.Proc) {
		c := w.WorldComm()
		me := c.Rank(p)
		sbuf := buffer.NewReal(pattern(me, block))
		rbuf := buffer.NewReal(make([]byte, block*np))
		AllgatherRing(p, c, sbuf, rbuf, nil, false)
		for r := 0; r < np; r++ {
			if !bytes.Equal(rbuf.Data()[r*block:(r+1)*block], pattern(r, block)) {
				bad++
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if bad != 0 {
		t.Fatalf("%d blocks wrong", bad)
	}
}

// The serialized personality must actually cost more than the full-duplex
// ring when edges cross nodes.
func TestAllgatherRingSerializedPenalty(t *testing.T) {
	run := func(duplex bool) float64 {
		w := testWorld(t, 4, 2, 8)
		err := w.Run(func(p *mpi.Proc) {
			c := w.WorldComm()
			sbuf := buffer.NewPhantom(64 << 10)
			rbuf := buffer.NewPhantom(64 << 10 * 8)
			AllgatherRing(p, c, sbuf, rbuf, nil, duplex)
		})
		if err != nil {
			t.Fatal(err)
		}
		return w.Now()
	}
	if ser, dup := run(false), run(true); ser <= dup {
		t.Fatalf("serialized ring (%g) should be slower than duplex (%g)", ser, dup)
	}
}

func TestAllgatherRingCustomOrder(t *testing.T) {
	const block = 512
	np := 6
	w := testWorld(t, 2, 3, np)
	order := []int{0, 2, 4, 1, 3, 5} // arbitrary permutation
	bad := 0
	err := w.Run(func(p *mpi.Proc) {
		c := w.WorldComm()
		me := c.Rank(p)
		sbuf := buffer.NewReal(pattern(me, block))
		rbuf := buffer.NewReal(make([]byte, block*np))
		AllgatherRing(p, c, sbuf, rbuf, order, true)
		for r := 0; r < np; r++ {
			if !bytes.Equal(rbuf.Data()[r*block:(r+1)*block], pattern(r, block)) {
				bad++
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if bad != 0 {
		t.Fatalf("%d blocks wrong with custom ring order", bad)
	}
}

func TestGatherLinear(t *testing.T) {
	const block = 64
	np := 5
	w := testWorld(t, 1, 5, np)
	var got []byte
	err := w.Run(func(p *mpi.Proc) {
		c := w.WorldComm()
		me := c.Rank(p)
		sbuf := buffer.NewReal(pattern(me, block))
		var rbuf *buffer.Buffer
		if me == 2 {
			rbuf = buffer.NewReal(make([]byte, block*np))
		}
		GatherLinear(p, c, sbuf, rbuf, 2)
		if me == 2 {
			got = append([]byte(nil), rbuf.Data()...)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < np; r++ {
		if !bytes.Equal(got[r*block:(r+1)*block], pattern(r, block)) {
			t.Fatalf("block %d wrong", r)
		}
	}
}

// Chain should beat binomial for large pipelined messages on a chain of
// uniform links (steady-state bandwidth argument from the paper's related
// work), while binomial wins for small messages (latency argument).
func TestChainVsBinomialCrossover(t *testing.T) {
	run := func(alg bcastAlg, bytesN int64) float64 {
		w := testWorld(t, 8, 1, 8)
		start := w.Now()
		err := w.Run(func(p *mpi.Proc) {
			buf := buffer.NewPhantom(bytesN)
			alg.run(p, w.WorldComm(), buf, 0)
		})
		if err != nil {
			t.Fatal(err)
		}
		return w.Now() - start
	}
	chain := bcastAlg{"chain", func(p *mpi.Proc, c *mpi.Comm, b *buffer.Buffer, root int) {
		BcastChain(p, c, b, root, 64<<10)
	}}
	binomial := bcastAlgs()[1]

	bigChain := run(chain, 8<<20)
	bigBinom := run(binomial, 8<<20)
	if bigChain >= bigBinom {
		t.Fatalf("8MB: chain %.6gs not faster than binomial %.6gs", bigChain, bigBinom)
	}
	smallChain := run(chain, 256)
	smallBinom := run(binomial, 256)
	if smallBinom >= smallChain {
		t.Fatalf("256B: binomial %.6gs not faster than chain %.6gs", smallBinom, smallChain)
	}
}

// Property: broadcast delivers arbitrary payloads for arbitrary (np, root)
// with the binomial algorithm.
func TestQuickBinomialBcast(t *testing.T) {
	f := func(data []byte, np8, root8 uint8) bool {
		if len(data) == 0 {
			data = []byte{1}
		}
		np := int(np8)%9 + 2
		root := int(root8) % np
		w := testWorld(t, 2, (np+1)/2, np)
		ok := true
		err := w.Run(func(p *mpi.Proc) {
			c := w.WorldComm()
			var buf *buffer.Buffer
			if c.Rank(p) == root {
				buf = buffer.NewReal(append([]byte(nil), data...))
			} else {
				buf = buffer.NewReal(make([]byte, len(data)))
			}
			BcastBinomial(p, c, buf, root)
			if !bytes.Equal(buf.Data(), data) {
				ok = false
			}
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: ring allgather with a random ring order still delivers every
// block to every rank.
func TestQuickRingOrderInvariance(t *testing.T) {
	f := func(perm []uint8, np8 uint8) bool {
		np := int(np8)%7 + 2
		order := make([]int, np)
		for i := range order {
			order[i] = i
		}
		// Fisher-Yates driven by the fuzz input.
		for i := np - 1; i > 0 && len(perm) > 0; i-- {
			j := int(perm[i%len(perm)]) % (i + 1)
			order[i], order[j] = order[j], order[i]
		}
		const block = 40
		w := testWorld(t, 2, (np+1)/2, np)
		ok := true
		err := w.Run(func(p *mpi.Proc) {
			c := w.WorldComm()
			me := c.Rank(p)
			sbuf := buffer.NewReal(pattern(me, block))
			rbuf := buffer.NewReal(make([]byte, block*np))
			AllgatherRing(p, c, sbuf, rbuf, order, true)
			for r := 0; r < np; r++ {
				if !bytes.Equal(rbuf.Data()[r*block:(r+1)*block], pattern(r, block)) {
					ok = false
				}
			}
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestLikeMatchesRealness(t *testing.T) {
	if Like(buffer.NewReal([]byte{1}), 5).Phantom() {
		t.Fatal("Like(real) returned phantom")
	}
	if !Like(buffer.NewPhantom(1), 5).Phantom() {
		t.Fatal("Like(phantom) returned real")
	}
	if !Like(nil, 5).Phantom() {
		t.Fatal("Like(nil) returned real")
	}
}
