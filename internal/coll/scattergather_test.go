package coll

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"hierknem/internal/buffer"
	"hierknem/internal/mpi"
)

func TestScatterVariantsDeliverBlocks(t *testing.T) {
	variants := []struct {
		name string
		run  func(p *mpi.Proc, c *mpi.Comm, s, r *buffer.Buffer, root int)
	}{
		{"linear", ScatterLinear},
		{"binomial", ScatterBinomial},
	}
	const block = 700
	for _, v := range variants {
		for _, np := range []int{2, 3, 5, 8, 13} {
			for _, root := range []int{0, np - 1} {
				t.Run(fmt.Sprintf("%s/np%d/root%d", v.name, np, root), func(t *testing.T) {
					w := testWorld(t, 2, (np+1)/2, np)
					bad := 0
					err := w.Run(func(p *mpi.Proc) {
						c := w.WorldComm()
						me := c.Rank(p)
						var sbuf *buffer.Buffer
						if me == root {
							all := make([]byte, block*np)
							for r := 0; r < np; r++ {
								copy(all[r*block:(r+1)*block], pattern(r, block))
							}
							sbuf = buffer.NewReal(all)
						}
						rbuf := buffer.NewReal(make([]byte, block))
						v.run(p, c, sbuf, rbuf, root)
						if !bytes.Equal(rbuf.Data(), pattern(me, block)) {
							bad++
						}
					})
					if err != nil {
						t.Fatal(err)
					}
					if bad != 0 {
						t.Fatalf("%d ranks wrong", bad)
					}
				})
			}
		}
	}
}

func TestGatherBinomialCollectsBlocks(t *testing.T) {
	const block = 450
	for _, np := range []int{2, 4, 6, 9, 16} {
		for _, root := range []int{0, np / 2} {
			t.Run(fmt.Sprintf("np%d/root%d", np, root), func(t *testing.T) {
				w := testWorld(t, 2, (np+1)/2, np)
				var got []byte
				err := w.Run(func(p *mpi.Proc) {
					c := w.WorldComm()
					me := c.Rank(p)
					sbuf := buffer.NewReal(pattern(me, block))
					var rbuf *buffer.Buffer
					if me == root {
						rbuf = buffer.NewReal(make([]byte, block*np))
					}
					GatherBinomial(p, c, sbuf, rbuf, root)
					if me == root {
						got = append([]byte(nil), rbuf.Data()...)
					}
				})
				if err != nil {
					t.Fatal(err)
				}
				for r := 0; r < np; r++ {
					if !bytes.Equal(got[r*block:(r+1)*block], pattern(r, block)) {
						t.Fatalf("block %d wrong", r)
					}
				}
			})
		}
	}
}

func TestAllreduceVariantsComputeSum(t *testing.T) {
	variants := []struct {
		name string
		run  func(p *mpi.Proc, c *mpi.Comm, a ReduceArgs, s, r *buffer.Buffer)
	}{
		{"recursive-doubling", AllreduceRecursiveDoubling},
		{"ring", func(p *mpi.Proc, c *mpi.Comm, a ReduceArgs, s, r *buffer.Buffer) {
			AllreduceRing(p, c, a, s, r, nil)
		}},
	}
	for _, v := range variants {
		for _, np := range []int{2, 3, 4, 7, 8} {
			for _, elems := range []int{1, 5, 999} {
				t.Run(fmt.Sprintf("%s/np%d/%delems", v.name, np, elems), func(t *testing.T) {
					w := testWorld(t, 2, (np+1)/2, np)
					want := make([]int64, elems)
					for r := 0; r < np; r++ {
						for i := range want {
							want[i] += int64(r*13 + i)
						}
					}
					bad := 0
					err := w.Run(func(p *mpi.Proc) {
						c := w.WorldComm()
						me := c.Rank(p)
						vals := make([]int64, elems)
						for i := range vals {
							vals[i] = int64(me*13 + i)
						}
						sbuf := buffer.Int64s(vals)
						rbuf := buffer.Int64s(make([]int64, elems))
						v.run(p, c, ReduceArgs{Op: buffer.OpSum, Dtype: buffer.Int64}, sbuf, rbuf)
						got := buffer.AsInt64s(rbuf)
						for i := range want {
							if got[i] != want[i] {
								bad++
								break
							}
						}
					})
					if err != nil {
						t.Fatal(err)
					}
					if bad != 0 {
						t.Fatalf("%d ranks wrong", bad)
					}
				})
			}
		}
	}
}

func TestAllreduceRingCustomOrder(t *testing.T) {
	const np, elems = 6, 300
	w := testWorld(t, 2, 3, np)
	order := []int{5, 3, 1, 0, 2, 4}
	bad := 0
	err := w.Run(func(p *mpi.Proc) {
		c := w.WorldComm()
		me := c.Rank(p)
		vals := make([]int64, elems)
		for i := range vals {
			vals[i] = int64(me + 2*i)
		}
		sbuf := buffer.Int64s(vals)
		rbuf := buffer.Int64s(make([]int64, elems))
		AllreduceRing(p, c, ReduceArgs{Op: buffer.OpSum, Dtype: buffer.Int64}, sbuf, rbuf, order)
		got := buffer.AsInt64s(rbuf)
		for i := range got {
			want := int64(np*(np-1)/2) + int64(np*2*i)
			if got[i] != want {
				bad++
				break
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if bad != 0 {
		t.Fatalf("%d ranks wrong with custom ring order", bad)
	}
}

// Property: scatter-then-gather round-trips arbitrary buffers for random
// communicator sizes and roots.
func TestQuickScatterGatherRoundTrip(t *testing.T) {
	f := func(seed []byte, np8, root8 uint8) bool {
		np := int(np8)%10 + 2
		root := int(root8) % np
		const block = 50
		all := make([]byte, np*block)
		for i := range all {
			if len(seed) > 0 {
				all[i] = seed[i%len(seed)]
			}
			all[i] += byte(i)
		}
		w := testWorld(t, 2, (np+1)/2, np)
		ok := true
		err := w.Run(func(p *mpi.Proc) {
			c := w.WorldComm()
			me := c.Rank(p)
			var sbuf *buffer.Buffer
			if me == root {
				sbuf = buffer.NewReal(append([]byte(nil), all...))
			}
			rbuf := buffer.NewReal(make([]byte, block))
			ScatterBinomial(p, c, sbuf, rbuf, root)
			var gbuf *buffer.Buffer
			if me == root {
				gbuf = buffer.NewReal(make([]byte, np*block))
			}
			GatherBinomial(p, c, rbuf, gbuf, root)
			if me == root && !bytes.Equal(gbuf.Data(), all) {
				ok = false
			}
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: ring allreduce equals recursive-doubling allreduce (both equal
// the analytic sum) for random element counts.
func TestQuickAllreduceAgreement(t *testing.T) {
	f := func(elems16 uint16, np8 uint8) bool {
		np := int(np8)%7 + 2
		elems := int(elems16)%500 + 1
		for _, ring := range []bool{false, true} {
			w := testWorld(t, 2, (np+1)/2, np)
			ok := true
			err := w.Run(func(p *mpi.Proc) {
				c := w.WorldComm()
				me := c.Rank(p)
				vals := make([]int64, elems)
				for i := range vals {
					vals[i] = int64(me ^ i)
				}
				sbuf := buffer.Int64s(vals)
				rbuf := buffer.Int64s(make([]int64, elems))
				a := ReduceArgs{Op: buffer.OpSum, Dtype: buffer.Int64}
				if ring {
					AllreduceRing(p, c, a, sbuf, rbuf, nil)
				} else {
					AllreduceRecursiveDoubling(p, c, a, sbuf, rbuf)
				}
				got := buffer.AsInt64s(rbuf)
				for i := range got {
					var want int64
					for r := 0; r < np; r++ {
						want += int64(r ^ i)
					}
					if got[i] != want {
						ok = false
						break
					}
				}
			})
			if err != nil || !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
