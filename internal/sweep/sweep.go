// Package sweep executes independent simulation jobs on a bounded worker
// pool with deterministic, submission-ordered results.
//
// An experiment sweep — every figure of the paper's evaluation — is a grid
// of mutually independent DES runs: each data point builds (or reuses) a
// world, runs a collective benchmark in virtual time, and yields a
// structured result. Jobs therefore parallelize across host cores without
// touching the simulator's determinism: each job's engine is fully
// self-contained (see DESIGN.md §5.3), so the only ordering that could leak
// into output is the order results are *consumed* — and the Future API
// forces consumption to happen after Run, in whatever order the planner
// chose at submission time. Output is byte-identical at every -parallel
// level, including 1.
//
// Within one worker, consecutive jobs with the same world shape reuse the
// previous job's arena through World.Reset instead of rebuilding topology,
// fabric and process tables from scratch; a reset world replays
// bit-identically to a fresh one, so cache hits (which depend on the
// nondeterministic job-to-worker assignment) cannot perturb results.
//
// The typical driver shape:
//
//	s := sweep.New("hierbench", parallel, os.Stderr)
//	fut := sweep.Go(s, "fig3a/hierknem/8KB", func(c *sweep.Ctx) imb.Result {
//	        w := c.World(spec, "bycore", np)
//	        return imb.Bcast(w, mod, 8<<10, opts)
//	})
//	... more Go calls ...
//	if err := s.Run(); err != nil { ... }        // executes the pool
//	fmt.Println(fut.Get().AvgTime)               // render, submission order
package sweep

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"hierknem/internal/clusters"
	"hierknem/internal/des"
	"hierknem/internal/mpi"
	"hierknem/internal/topology"
)

// Sweep collects jobs during a serial planning phase and executes them with
// Run. Go and Run must be called from a single goroutine; only the job
// bodies run concurrently.
type Sweep struct {
	label    string
	parallel int
	progress io.Writer

	jobs       []job
	ran        bool
	engMode    des.EngineMode // engine mode every job's worlds run under
	engWorkers int            // phase worker count per world (0 = engine default)
	mu         sync.Mutex     // serializes progress writes
}

// SetEngineMode selects the engine mode (serial reference or conservative
// parallel) applied to every world the sweep's jobs obtain through Ctx.
// Call before Run.
func (s *Sweep) SetEngineMode(m des.EngineMode) { s.engMode = m }

// SetEngineWorkers fixes the in-window phase worker count applied to every
// world the sweep's jobs obtain through Ctx (0 keeps the engine default).
// Note the two parallelism axes are independent: the sweep's own pool runs
// whole simulations concurrently, the engine's workers split one
// simulation's windows.
func (s *Sweep) SetEngineWorkers(n int) { s.engWorkers = n }

type job struct {
	id string
	fn func(*Ctx)
}

// New creates an empty sweep. parallel is the worker count; values < 1
// select GOMAXPROCS. progress, when non-nil, receives a coarse
// `label: done/total` line (carriage-return refreshed) as jobs complete —
// drivers pass os.Stderr so it never mixes with result output.
func New(label string, parallel int, progress io.Writer) *Sweep {
	if parallel < 1 {
		parallel = runtime.GOMAXPROCS(0)
	}
	return &Sweep{label: label, parallel: parallel, progress: progress}
}

// Go submits a job and returns the Future that will hold its result. id
// names the data point (experiment/module/size) and is attached to the
// panic report if the job fails. Results are readable only after Run.
func Go[T any](s *Sweep, id string, fn func(*Ctx) T) *Future[T] {
	if s.ran {
		panic("sweep: Go after Run")
	}
	f := &Future[T]{s: s}
	s.jobs = append(s.jobs, job{id: id, fn: func(c *Ctx) { f.val = fn(c) }})
	return f
}

// Future holds one job's result once Run has completed.
type Future[T any] struct {
	s   *Sweep
	val T
}

// Get returns the job's result. It panics if the sweep has not run yet:
// rendering must happen strictly after the execution phase.
func (f *Future[T]) Get() T {
	if !f.s.ran {
		panic("sweep: Future.Get before Run")
	}
	return f.val
}

// Jobs returns the number of submitted jobs.
func (s *Sweep) Jobs() int { return len(s.jobs) }

// Parallel returns the effective worker count.
func (s *Sweep) Parallel() int { return s.parallel }

// Run executes every submitted job and blocks until all complete. Each
// worker owns a private Ctx (world cache); jobs are handed out through a
// shared cursor, so the job-to-worker assignment is load-balanced and
// nondeterministic — which is safe precisely because jobs only communicate
// through their Futures. A panicking job is captured (with its id and
// stack) instead of crashing the pool; Run reports all captured panics and
// the surviving results must not be rendered.
//
// While more than one worker is live, the engine's process-global
// GOMAXPROCS pinning is suspended (des.SetHostPinning): the pin is a
// serial-throughput optimization that would otherwise throttle the host to
// one core and race between workers. The previous setting is restored
// before Run returns.
func (s *Sweep) Run() error {
	if s.ran {
		panic("sweep: Run called twice")
	}
	s.ran = true
	n := len(s.jobs)
	if n == 0 {
		return nil
	}
	workers := min(s.parallel, n)
	if workers > 1 {
		defer des.SetHostPinning(des.SetHostPinning(false))
	}
	var (
		cursor atomic.Int64
		done   atomic.Int64
		wg     sync.WaitGroup
	)
	panics := make([]error, n)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := &Ctx{worlds: make(map[worldKey]*mpi.World), engMode: s.engMode, engWorkers: s.engWorkers}
			for {
				i := int(cursor.Add(1)) - 1
				if i >= n {
					return
				}
				s.runJob(ctx, i, panics)
				s.tick(int(done.Add(1)), n)
			}
		}()
	}
	wg.Wait()
	return errors.Join(panics...)
}

// runJob executes job i on ctx, converting a panic into an error carrying
// the job id and stack.
func (s *Sweep) runJob(ctx *Ctx, i int, panics []error) {
	defer func() {
		if r := recover(); r != nil {
			panics[i] = fmt.Errorf("sweep: job %q panicked: %v\n%s", s.jobs[i].id, r, debug.Stack())
		}
	}()
	s.jobs[i].fn(ctx)
}

// tick refreshes the progress line after a job completes.
func (s *Sweep) tick(k, n int) {
	if s.progress == nil {
		return
	}
	s.mu.Lock()
	fmt.Fprintf(s.progress, "\r%s: %d/%d jobs", s.label, k, n)
	if k == n {
		fmt.Fprintln(s.progress)
	}
	s.mu.Unlock()
}

// worldKey identifies a world shape: same key ⇒ NewWorld would build an
// identical world, so a Reset world substitutes for a fresh one. Spec is a
// flat comparable struct, so the key is usable directly in a map.
type worldKey struct {
	spec    topology.Spec
	binding string
	np, ppn int
}

// Ctx is a worker's private job context. Its world cache is never shared:
// worlds hold engines, and engines are single-threaded by construction.
type Ctx struct {
	worlds     map[worldKey]*mpi.World
	engMode    des.EngineMode
	engWorkers int
}

// apply sets the sweep's engine mode and worker count on a world about to be
// handed to a job. Both survive Reset, so cached worlds only pay the switch
// once.
func (c *Ctx) apply(w *mpi.World) *mpi.World {
	if w.EngineMode() != c.engMode {
		w.SetEngineMode(c.engMode)
	}
	if c.engWorkers > 0 {
		w.SetEngineWorkers(c.engWorkers)
	}
	return w
}

// World returns a pristine world for spec with np ranks under the named
// binding ("bycore" or "bynode"), reusing (via World.Reset) the world a
// previous job with the same shape built on this worker. Construction
// failure panics — the pool captures it with the job id attached.
func (c *Ctx) World(spec topology.Spec, binding string, np int) *mpi.World {
	key := worldKey{spec: spec, binding: binding, np: np}
	if w := c.worlds[key]; w != nil {
		w.Reset()
		return c.apply(w)
	}
	w, err := clusters.NewWorld(spec, binding, np)
	if err != nil {
		panic(err)
	}
	c.worlds[key] = w
	return c.apply(w)
}

// WorldPPN returns a pristine world with exactly ppn ranks on each node of
// spec, cached like World.
func (c *Ctx) WorldPPN(spec topology.Spec, ppn int) *mpi.World {
	key := worldKey{spec: spec, np: ppn * spec.Nodes, ppn: ppn}
	if w := c.worlds[key]; w != nil {
		w.Reset()
		return c.apply(w)
	}
	m, err := topology.Build(spec)
	if err != nil {
		panic(err)
	}
	b, err := topology.ByCorePPN(m, ppn*spec.Nodes, ppn)
	if err != nil {
		panic(err)
	}
	w, err := mpi.NewWorld(m, b, clusters.Config(&spec))
	if err != nil {
		panic(err)
	}
	c.worlds[key] = w
	return c.apply(w)
}
