// Package knem simulates the KNEM Linux kernel module: single-copy,
// one-sided intra-node data movement with direction control.
//
// A process registers a buffer with its node's device and receives a cookie;
// any process on the same node holding the cookie can then Get (read) from
// or Put (write) to the registered region, subject to the access rights
// granted at registration. The defining property — the one HierKNEM exploits
// — is that the copy is executed by the *requesting* core: the buffer's
// owner spends no cycles, so a leader can keep forwarding on the network
// while every non-leader pulls its own data.
package knem

import (
	"fmt"

	"hierknem/internal/buffer"
	"hierknem/internal/des"
	"hierknem/internal/san"
	"hierknem/internal/shm"
	"hierknem/internal/topology"
)

// Rights restricts what cookie holders may do with a region, mirroring
// KNEM's direction control.
type Rights int

const (
	// RightRead allows Get (remote process reads the region).
	RightRead Rights = 1 << iota
	// RightWrite allows Put (remote process writes the region).
	RightWrite
)

// Cookie identifies a registered region on one node's device.
type Cookie uint64

// Stats aggregates device activity for the trace layer.
type Stats struct {
	Registrations   int64
	Deregistrations int64
	Gets, Puts      int64
	BytesCopied     int64
}

type region struct {
	buf    *buffer.Buffer
	owner  *topology.Core
	rights Rights
}

// Device is one node's KNEM kernel module instance.
type Device struct {
	nodeID  int
	machine *topology.Machine
	regions map[Cookie]*region
	next    Cookie
	stats   Stats

	// san, when non-nil, receives buffer access windows for every Get/Put
	// (hiersan's single-copy overlap check). Nil-guarded: a disabled
	// device adds no work to the copy path.
	san *san.Sanitizer
}

// NewDevice creates the device for node nodeID of m.
func NewDevice(m *topology.Machine, nodeID int) *Device {
	return &Device{nodeID: nodeID, machine: m, regions: make(map[Cookie]*region), next: 1}
}

// NodeID returns the node this device serves.
func (d *Device) NodeID() int { return d.nodeID }

// SetSanitizer attaches (or, with nil, detaches) a hiersan runtime that
// checks Get/Put copies for virtual-time buffer conflicts.
func (d *Device) SetSanitizer(s *san.Sanitizer) { d.san = s }

// Reset drops all registrations and counters, returning the device to its
// post-NewDevice state for reuse by a consecutive run on the same machine.
// Cookies restart at 1, matching a fresh device cookie-for-cookie.
func (d *Device) Reset() {
	clear(d.regions)
	d.next = 1
	d.stats = Stats{}
}

// Stats returns a copy of the device counters.
func (d *Device) Stats() Stats { return d.stats }

// Register pins buf (owned by the process on owner) into the device and
// returns its cookie. The registration itself is cheap; its cost is paid by
// the caller as part of the surrounding protocol (a Sleep of ShmLatency,
// matching a syscall + page pinning).
func (d *Device) Register(buf *buffer.Buffer, owner *topology.Core, rights Rights) Cookie {
	if owner.NodeID != d.nodeID {
		panic(fmt.Sprintf("knem: registering buffer owned by node %d core on node %d device",
			owner.NodeID, d.nodeID))
	}
	ck := d.next
	d.next++
	d.regions[ck] = &region{buf: buf, owner: owner, rights: rights}
	d.stats.Registrations++
	return ck
}

// Deregister unpins a region. Outstanding cookies become invalid.
func (d *Device) Deregister(ck Cookie) error {
	if _, ok := d.regions[ck]; !ok {
		return fmt.Errorf("knem: deregister of unknown cookie %d on node %d", ck, d.nodeID)
	}
	delete(d.regions, ck)
	d.stats.Deregistrations++
	return nil
}

func (d *Device) lookup(ck Cookie, want Rights, requester *topology.Core) (*region, error) {
	if requester.NodeID != d.nodeID {
		return nil, fmt.Errorf("knem: cross-node access: requester on node %d, device on node %d",
			requester.NodeID, d.nodeID)
	}
	reg, ok := d.regions[ck]
	if !ok {
		return nil, fmt.Errorf("knem: unknown cookie %d on node %d", ck, d.nodeID)
	}
	if reg.rights&want == 0 {
		return nil, fmt.Errorf("knem: cookie %d does not grant %s access", ck, rightsName(want))
	}
	return reg, nil
}

func rightsName(r Rights) string {
	switch r {
	case RightRead:
		return "read"
	case RightWrite:
		return "write"
	default:
		return fmt.Sprintf("rights(%d)", int(r))
	}
}

// Get copies dst.Len() bytes starting at offset off of the registered region
// into dst. The copy is one-sided: it blocks only p (the requester, running
// on requester's core); the region owner is not involved. Returns an error
// for bad cookies, rights, bounds or cross-node access.
func (d *Device) Get(p *des.Proc, requester *topology.Core, ck Cookie, off int64, dst *buffer.Buffer) error {
	reg, err := d.lookup(ck, RightRead, requester)
	if err != nil {
		return err
	}
	if off < 0 || off+dst.Len() > reg.buf.Len() {
		return fmt.Errorf("knem: get [%d:%d] outside region of %d bytes", off, off+dst.Len(), reg.buf.Len())
	}
	src := reg.buf.Slice(off, dst.Len())
	hr, hw := -1, -1
	if d.san != nil {
		// Both windows belong to the requester: the copy is one-sided,
		// executed entirely by the requesting core.
		hr = d.san.BeginAccess(p.ID(), p.Name(), src.ID(), src.Off(), src.Len(), false)
		hw = d.san.BeginAccess(p.ID(), p.Name(), dst.ID(), dst.Off(), dst.Len(), true)
	}
	shm.CopyBuffer(p, d.machine, requester, reg.owner.Socket, requester.Socket, src, dst)
	if d.san != nil {
		d.san.EndAccess(hr)
		d.san.EndAccess(hw)
	}
	d.stats.Gets++
	d.stats.BytesCopied += dst.Len()
	return nil
}

// Put copies src into the registered region at offset off. Like Get it is
// one-sided, blocking only the requester.
func (d *Device) Put(p *des.Proc, requester *topology.Core, ck Cookie, off int64, src *buffer.Buffer) error {
	reg, err := d.lookup(ck, RightWrite, requester)
	if err != nil {
		return err
	}
	if off < 0 || off+src.Len() > reg.buf.Len() {
		return fmt.Errorf("knem: put [%d:%d] outside region of %d bytes", off, off+src.Len(), reg.buf.Len())
	}
	dst := reg.buf.Slice(off, src.Len())
	hr, hw := -1, -1
	if d.san != nil {
		hr = d.san.BeginAccess(p.ID(), p.Name(), src.ID(), src.Off(), src.Len(), false)
		hw = d.san.BeginAccess(p.ID(), p.Name(), dst.ID(), dst.Off(), dst.Len(), true)
	}
	shm.CopyBuffer(p, d.machine, requester, requester.Socket, reg.owner.Socket, src, dst)
	if d.san != nil {
		d.san.EndAccess(hr)
		d.san.EndAccess(hw)
	}
	d.stats.Puts++
	d.stats.BytesCopied += src.Len()
	return nil
}

// Devices builds one device per node of m.
func Devices(m *topology.Machine) []*Device {
	ds := make([]*Device, m.Spec.Nodes)
	for i := range ds {
		ds[i] = NewDevice(m, i)
	}
	return ds
}
