package knem

import (
	"bytes"
	"math"
	"testing"

	"hierknem/internal/buffer"
	"hierknem/internal/des"
	"hierknem/internal/topology"
)

func testMachine(t *testing.T, nodes int) *topology.Machine {
	t.Helper()
	m, err := topology.Build(topology.Spec{
		Name:              "knemtest",
		Nodes:             nodes,
		SocketsPerNode:    1,
		CoresPerSocket:    4,
		MemBandwidth:      100,
		CoreCopyBandwidth: 40,
		L3Bandwidth:       80,
		L3Size:            1 << 20,
		ShmLatency:        0.5,
		NetBandwidth:      10,
		NetLatency:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRegisterGetDeliversData(t *testing.T) {
	m := testMachine(t, 1)
	d := NewDevice(m, 0)
	owner := m.Core(0)
	reader := m.Core(1)
	src := buffer.NewReal([]byte{10, 20, 30, 40})
	ck := d.Register(src, owner, RightRead)
	dst := buffer.NewReal(make([]byte, 4))
	m.Eng.Spawn("reader", func(p *des.Proc) {
		if err := d.Get(p, reader, ck, 0, dst); err != nil {
			t.Error(err)
		}
	})
	if err := m.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst.Data(), []byte{10, 20, 30, 40}) {
		t.Fatalf("dst = %v", dst.Data())
	}
	s := d.Stats()
	if s.Gets != 1 || s.BytesCopied != 4 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestGetWithOffset(t *testing.T) {
	m := testMachine(t, 1)
	d := NewDevice(m, 0)
	src := buffer.NewReal([]byte{1, 2, 3, 4, 5, 6})
	ck := d.Register(src, m.Core(0), RightRead)
	dst := buffer.NewReal(make([]byte, 2))
	m.Eng.Spawn("r", func(p *des.Proc) {
		if err := d.Get(p, m.Core(1), ck, 3, dst); err != nil {
			t.Error(err)
		}
	})
	if err := m.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst.Data(), []byte{4, 5}) {
		t.Fatalf("dst = %v, want [4 5]", dst.Data())
	}
}

func TestPutWritesRegion(t *testing.T) {
	m := testMachine(t, 1)
	d := NewDevice(m, 0)
	region := buffer.NewReal(make([]byte, 4))
	ck := d.Register(region, m.Core(0), RightWrite)
	src := buffer.NewReal([]byte{7, 8})
	m.Eng.Spawn("w", func(p *des.Proc) {
		if err := d.Put(p, m.Core(2), ck, 1, src); err != nil {
			t.Error(err)
		}
	})
	if err := m.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(region.Data(), []byte{0, 7, 8, 0}) {
		t.Fatalf("region = %v", region.Data())
	}
}

func TestRightsEnforced(t *testing.T) {
	m := testMachine(t, 1)
	d := NewDevice(m, 0)
	buf := buffer.NewReal(make([]byte, 4))
	ckR := d.Register(buf, m.Core(0), RightRead)
	ckW := d.Register(buf, m.Core(0), RightWrite)
	m.Eng.Spawn("p", func(p *des.Proc) {
		if err := d.Put(p, m.Core(1), ckR, 0, buffer.NewReal([]byte{1})); err == nil {
			t.Error("Put allowed on read-only cookie")
		}
		if err := d.Get(p, m.Core(1), ckW, 0, buffer.NewReal(make([]byte, 1))); err == nil {
			t.Error("Get allowed on write-only cookie")
		}
	})
	if err := m.Eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestBoundsChecked(t *testing.T) {
	m := testMachine(t, 1)
	d := NewDevice(m, 0)
	ck := d.Register(buffer.NewReal(make([]byte, 4)), m.Core(0), RightRead|RightWrite)
	m.Eng.Spawn("p", func(p *des.Proc) {
		if err := d.Get(p, m.Core(1), ck, 2, buffer.NewReal(make([]byte, 3))); err == nil {
			t.Error("out-of-bounds Get allowed")
		}
		if err := d.Put(p, m.Core(1), ck, -1, buffer.NewReal(make([]byte, 1))); err == nil {
			t.Error("negative-offset Put allowed")
		}
	})
	if err := m.Eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDeregisterInvalidatesCookie(t *testing.T) {
	m := testMachine(t, 1)
	d := NewDevice(m, 0)
	ck := d.Register(buffer.NewReal(make([]byte, 4)), m.Core(0), RightRead)
	if err := d.Deregister(ck); err != nil {
		t.Fatal(err)
	}
	if err := d.Deregister(ck); err == nil {
		t.Fatal("double deregister allowed")
	}
	m.Eng.Spawn("p", func(p *des.Proc) {
		if err := d.Get(p, m.Core(1), ck, 0, buffer.NewReal(make([]byte, 1))); err == nil {
			t.Error("Get on deregistered cookie allowed")
		}
	})
	if err := m.Eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCrossNodeAccessRejected(t *testing.T) {
	m := testMachine(t, 2)
	d0 := NewDevice(m, 0)
	ck := d0.Register(buffer.NewReal(make([]byte, 4)), m.Core(0), RightRead)
	remote := m.Core(4) // node 1
	m.Eng.Spawn("p", func(p *des.Proc) {
		if err := d0.Get(p, remote, ck, 0, buffer.NewReal(make([]byte, 1))); err == nil {
			t.Error("cross-node Get allowed")
		}
	})
	if err := m.Eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRegisterWrongNodePanics(t *testing.T) {
	m := testMachine(t, 2)
	d0 := NewDevice(m, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("cross-node Register did not panic")
		}
	}()
	d0.Register(buffer.NewReal(make([]byte, 1)), m.Core(4), RightRead)
}

// The paper's central mechanism: N non-leaders each Get their fragment
// concurrently, and the owner process is never blocked. Total time should be
// bounded by bus contention, not by N sequential owner-side copies.
func TestConcurrentGetsAreOneSided(t *testing.T) {
	m := testMachine(t, 1)
	d := NewDevice(m, 0)
	src := buffer.NewReal(make([]byte, 120))
	ck := d.Register(src, m.Core(0), RightRead)

	ownerFreeAt := -1.0
	m.Eng.Spawn("owner", func(p *des.Proc) {
		// The owner does no copy work; it is immediately free.
		ownerFreeAt = p.Now()
	})
	var last float64
	for i := 1; i < 4; i++ {
		core := m.Core(i)
		m.Eng.Spawn("reader", func(p *des.Proc) {
			dst := buffer.NewReal(make([]byte, 120))
			if err := d.Get(p, core, ck, 0, dst); err != nil {
				t.Error(err)
			}
			last = p.Now()
		})
	}
	if err := m.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	if ownerFreeAt != 0 {
		t.Fatalf("owner blocked until %g", ownerFreeAt)
	}
	// 3 same-socket copies, each double-charging the 100 B/s bus: 6 shares
	// -> 16.67 B/s each; 120 bytes -> 7.2 s + 0.5 latency.
	if math.Abs(last-7.7) > 1e-9 {
		t.Fatalf("concurrent gets done at %g, want 7.7", last)
	}
}

func TestDevicesBuildsOnePerNode(t *testing.T) {
	m := testMachine(t, 3)
	ds := Devices(m)
	if len(ds) != 3 {
		t.Fatalf("devices = %d, want 3", len(ds))
	}
	for i, d := range ds {
		if d.NodeID() != i {
			t.Fatalf("device %d has node id %d", i, d.NodeID())
		}
	}
}
