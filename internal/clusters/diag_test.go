package clusters

import (
	"fmt"
	"testing"

	"hierknem/internal/buffer"
	"hierknem/internal/mpi"
)

func TestDiagHierknemBcast(t *testing.T) {
	spec := Parapluie(32)
	mod := HierKNEM(&spec)
	w, err := NewWorld(spec, "bycore", 768)
	if err != nil {
		t.Fatal(err)
	}
	var marks []string
	err = w.Run(func(p *mpi.Proc) {
		c := w.WorldComm()
		buf := buffer.NewPhantom(64 << 10)
		t0 := p.Now()
		mod.Bcast(p, c, buf, 0)
		el := p.Now() - t0
		r := c.Rank(p)
		if r%24 == 0 && r < 240 || r == 767 || r == 1 {
			marks = append(marks, fmt.Sprintf("rank%d(node%d): %.1fus", r, p.Core().NodeID, el*1e6))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range marks {
		t.Log(m)
	}
}
