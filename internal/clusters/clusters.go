// Package clusters provides calibrated models of the two Grid'5000 clusters
// in the paper's evaluation, plus the per-cluster module line-ups
// (libraries × quirks) used in each figure.
//
// Both clusters have 32 nodes of two AMD Opteron 6164 HE twelve-core CPUs;
// each socket is a NUMA domain with a 12 MB L3. Stremi is interconnected
// with Gigabit Ethernet, Parapluie with InfiniBand 20G. Hardware numbers are
// calibrated to that era: ~3 GB/s single-core copy bandwidth, ~10 GB/s
// per-socket memory bandwidth, 125 MB/s / ~50 µs GigE, 1.9 GB/s / ~5 µs IB.
package clusters

import (
	"fmt"

	"hierknem/internal/core"
	"hierknem/internal/modules"
	"hierknem/internal/mpi"
	"hierknem/internal/topology"
)

// Stremi returns the Ethernet cluster spec with the given node count
// (the paper uses 32; smaller values scale experiments down).
func Stremi(nodes int) topology.Spec {
	return topology.Spec{
		Name:              "stremi",
		Nodes:             nodes,
		SocketsPerNode:    2,
		CoresPerSocket:    12,
		MemBandwidth:      10e9,
		CoreCopyBandwidth: 3e9,
		L3Bandwidth:       6e9,
		L3TotalBandwidth:  30e9,
		L3Size:            12 << 20,
		ShmLatency:        1e-6,
		NetBandwidth:      125e6,
		NetLatency:        50e-6,
		NetFullDuplex:     true,
		EagerThreshold:    4096,
	}
}

// Parapluie returns the InfiniBand 20G cluster spec.
func Parapluie(nodes int) topology.Spec {
	s := Stremi(nodes)
	s.Name = "parapluie"
	s.NetBandwidth = 1.9e9
	s.NetLatency = 5e-6
	return s
}

// OMPIReducePerHopIB is the per-send CPU penalty of Open MPI's reduction
// path on InfiniBand, calibrated from the paper's profile (515 µs vs 281 µs
// for a 64 KB reduce over 32 flat ranks, section IV-E).
const OMPIReducePerHopIB = 45e-6

// Ethernet reports whether a spec is the GigE personality (selects quirks
// and pipeline tables).
func Ethernet(spec *topology.Spec) bool { return spec.NetBandwidth < 500e6 }

// Config returns the software-stack configuration of a cluster: the
// per-message rendezvous protocol cost is calibrated so the pipeline-size
// sweep reproduces the paper's Figure 1 U-curve (64 KB optimum on
// InfiniBand; small segments latency-dominated).
func Config(spec *topology.Spec) mpi.Config {
	if Ethernet(spec) {
		// TCP stacks pay more per message, but the slow wire dominates:
		// small pipeline segments stay attractive (Table I's 16 KB).
		return mpi.Config{RendezvousCPU: 15e-6}
	}
	return mpi.Config{RendezvousCPU: 12e-6}
}

// HierKNEM builds the paper's module for the given cluster, applying
// Table I's pipeline sizes and the stack quirks of its Open MPI host.
func HierKNEM(spec *topology.Spec) *core.Module {
	opt := core.Options{}
	if Ethernet(spec) {
		pl := core.PipelineEthernet()
		opt.BcastPipeline, opt.ReducePipeline = pl.Bcast, pl.Reduce
	} else {
		pl := core.PipelineIB()
		opt.BcastPipeline, opt.ReducePipeline = pl.Bcast, pl.Reduce
		opt.ReducePerHop = OMPIReducePerHopIB
	}
	return core.New(opt)
}

// Lineup returns the modules compared on a cluster, in the order the
// paper's figures plot them: HierKNEM, Tuned, Hierarch, then MPICH2
// (Ethernet) or MVAPICH2 (InfiniBand).
func Lineup(spec *topology.Spec) []modules.Module {
	if Ethernet(spec) {
		q := modules.Quirks{SerializedRing: true}
		return []modules.Module{
			HierKNEM(spec),
			modules.Tuned(q),
			modules.Hierarch(q),
			modules.MPICH2(q),
		}
	}
	q := modules.Quirks{ReducePerHop: OMPIReducePerHopIB}
	return []modules.Module{
		HierKNEM(spec),
		modules.Tuned(q),
		modules.Hierarch(q),
		modules.MVAPICH2(),
	}
}

// NewWorld builds a machine + world for a spec with np ranks under the named
// binding ("bycore" or "bynode").
func NewWorld(spec topology.Spec, binding string, np int) (*mpi.World, error) {
	m, err := topology.Build(spec)
	if err != nil {
		return nil, err
	}
	var b *topology.Binding
	switch binding {
	case "bycore":
		b, err = topology.ByCore(m, np)
	case "bynode":
		b, err = topology.ByNode(m, np)
	default:
		return nil, fmt.Errorf("clusters: unknown binding %q", binding)
	}
	if err != nil {
		return nil, err
	}
	return mpi.NewWorld(m, b, Config(&spec))
}
