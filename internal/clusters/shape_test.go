package clusters

import (
	"os"
	"testing"
	"time"

	"hierknem/internal/imb"
)

// TestShapeProbe is a development-time scale probe, enabled with
// HIERKNEM_PROBE=1; the real experiment drivers live in cmd/hierbench and
// the top-level benchmarks.
func TestShapeProbe(t *testing.T) {
	if os.Getenv("HIERKNEM_PROBE") == "" {
		t.Skip("set HIERKNEM_PROBE=1 to run the scale probe")
	}
	for _, cluster := range []string{"stremi", "parapluie"} {
		spec := Stremi(32)
		if cluster == "parapluie" {
			spec = Parapluie(32)
		}
		for _, size := range []int64{8 << 10, 64 << 10, 256 << 10, 2 << 20, 8 << 20} {
			for _, mod := range Lineup(&spec) {
				w, err := NewWorld(spec, "bycore", 768)
				if err != nil {
					t.Fatal(err)
				}
				t0 := time.Now() //lint:ignore determinism host wall-clock measures the test's own runtime, not simulated time
				r := imb.Bcast(w, mod, size, imb.Opts{Iterations: 2, Warmup: 1, RotateRoot: true})
				//lint:ignore determinism host wall-clock measures the test's own runtime, not simulated time
				t.Logf("%-10s wall=%8v %v", cluster, time.Since(t0).Round(time.Millisecond), r)
			}
		}
	}
}
