package clusters

import (
	"testing"

	"hierknem/internal/imb"
)

func TestSpecsMatchPaperHardware(t *testing.T) {
	s := Stremi(32)
	if s.Nodes != 32 || s.SocketsPerNode != 2 || s.CoresPerSocket != 12 {
		t.Fatalf("stremi shape: %+v", s)
	}
	if s.CoresPerNode() != 24 || s.TotalCores() != 768 {
		t.Fatalf("stremi core counts wrong")
	}
	if s.L3Size != 12<<20 {
		t.Fatalf("L3 = %d, want 12MB (Opteron 6164 HE)", s.L3Size)
	}
	p := Parapluie(32)
	if p.NetBandwidth <= s.NetBandwidth {
		t.Fatal("IB should be faster than GigE")
	}
	if p.NetLatency >= s.NetLatency {
		t.Fatal("IB should have lower latency than GigE")
	}
}

func TestEthernetPredicate(t *testing.T) {
	s, p := Stremi(4), Parapluie(4)
	if !Ethernet(&s) {
		t.Fatal("stremi should be Ethernet")
	}
	if Ethernet(&p) {
		t.Fatal("parapluie should not be Ethernet")
	}
}

func TestLineupComposition(t *testing.T) {
	s := Stremi(4)
	names := map[string]bool{}
	for _, m := range Lineup(&s) {
		names[m.Name()] = true
	}
	for _, want := range []string{"hierknem", "tuned", "hierarch", "mpich2"} {
		if !names[want] {
			t.Fatalf("stremi lineup missing %s (have %v)", want, names)
		}
	}
	if names["mvapich2"] {
		t.Fatal("mvapich2 should only appear on InfiniBand")
	}
	p := Parapluie(4)
	names = map[string]bool{}
	for _, m := range Lineup(&p) {
		names[m.Name()] = true
	}
	if !names["mvapich2"] || names["mpich2"] {
		t.Fatalf("parapluie lineup wrong: %v", names)
	}
	if Lineup(&p)[0].Name() != "hierknem" {
		t.Fatal("hierknem should lead the lineup")
	}
}

func TestConfigQuirksByNetwork(t *testing.T) {
	s, p := Stremi(4), Parapluie(4)
	if Config(&s).RendezvousCPU <= Config(&p).RendezvousCPU {
		t.Fatal("TCP per-message cost should exceed IB's")
	}
}

func TestNewWorldBindings(t *testing.T) {
	s := Stremi(2)
	for _, binding := range []string{"bycore", "bynode"} {
		w, err := NewWorld(s, binding, 48)
		if err != nil {
			t.Fatal(err)
		}
		if w.Size() != 48 {
			t.Fatalf("size = %d", w.Size())
		}
	}
	if _, err := NewWorld(s, "bogus", 4); err == nil {
		t.Fatal("accepted unknown binding")
	}
	if _, err := NewWorld(s, "bycore", 1000); err == nil {
		t.Fatal("accepted oversubscription")
	}
}

// The headline sanity check at a scale fast enough for the unit suite:
// HierKNEM must beat every baseline for a mid-size Ethernet broadcast.
func TestHierKNEMWinsMidSizeEthernet(t *testing.T) {
	spec := Stremi(4)
	var hk, worst float64
	for i, mod := range Lineup(&spec) {
		w, err := NewWorld(spec, "bycore", 96)
		if err != nil {
			t.Fatal(err)
		}
		r := imb.Bcast(w, mod, 128<<10, imb.Opts{Iterations: 2, Warmup: 1})
		if i == 0 {
			hk = r.AvgTime
		} else if r.AvgTime > worst {
			worst = r.AvgTime
		}
		if i > 0 && r.AvgTime <= hk {
			t.Fatalf("%s (%g) not slower than hierknem (%g)", mod.Name(), r.AvgTime, hk)
		}
	}
	if worst/hk < 2 {
		t.Fatalf("hierknem advantage only %.1fx over the worst baseline", worst/hk)
	}
}
