package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// AtomicFieldAnalyzer proves the third PDES precondition at struct-field
// granularity, extending runisolation (which covers package-level vars):
// a field of a package-local struct that is reachable from more than one
// goroutine-spawning context, with at least one write, must be atomic,
// mutex-guarded, channel-typed, or suppressed with a reasoned
// //lint:ignore.
//
// A context is a syntactic concurrency domain: the plain body of a
// function declaration, or the body of a goroutine — a `go func(){...}`
// literal, or a declared function that some `go` statement spawns. A
// single go statement inside a loop is still one context (the spawned
// workers race with each other only through whatever the body touches,
// which the body's own accesses already witness); the analyzer fires only
// when a goroutine context and at least one other context both reach the
// field and someone writes it.
//
// Escapes:
//   - fields whose type lives in sync or sync/atomic (Mutex, WaitGroup,
//     atomic.Int64, ...) are self-synchronizing;
//   - channel-typed fields synchronize by construction;
//   - fields of a struct that also carries a sync.Mutex/RWMutex are
//     assumed guarded by it (the lock discipline itself is a runtime
//     concern — HIERSAN's department, not lint's);
//   - a `go` statement marked //hierflow:serial <reason> (baton passing:
//     the spawner provably does not run concurrently with the spawnee,
//     as in the DES engine's one-runnable-process handoff) does not open
//     a context.
var AtomicFieldAnalyzer = &Analyzer{
	Name: "atomicfield",
	Doc:  "forbid non-atomic, unguarded struct fields written across goroutine-spawning contexts",
	Applies: func(pkgPath string) bool {
		if strings.HasSuffix(pkgPath, "internal/lint") {
			// The analysis framework runs on the host and analyzes ASTs
			// concurrently under its own discipline; it is not simulation
			// state.
			return false
		}
		return internalOnly(pkgPath)
	},
	Run: runAtomicField,
}

// afAccess accumulates one field's observed accesses.
type afAccess struct {
	obj      *types.Var
	contexts map[int]bool // context ids that touch the field
	goCtx    bool         // at least one context is a goroutine body
	written  bool
	firstPos token.Pos
}

func runAtomicField(pass *Pass) {
	info := pass.Info()

	// Pass 1: which declared functions are spawned by an (unmarked) go
	// statement, and which go-literal bodies open goroutine contexts.
	spawned := map[types.Object]bool{} // declared funcs run as goroutines
	goLits := map[*ast.FuncLit]bool{}  // literals spawned by go statements
	for _, f := range pass.Files() {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if pass.Flow.Markers.SerialGo(pass.Fset().Position(g.Pos())) {
				return true // spawner-serialized: same context
			}
			switch fn := ast.Unparen(g.Call.Fun).(type) {
			case *ast.FuncLit:
				goLits[fn] = true
			case *ast.Ident:
				if o := info.ObjectOf(fn); o != nil {
					spawned[o] = true
				}
			case *ast.SelectorExpr:
				if o := info.ObjectOf(fn.Sel); o != nil {
					spawned[o] = true
				}
			}
			return true
		})
	}

	// Pass 2: record field accesses per context. Context ids: one per
	// function declaration body, one per spawned go literal.
	fields := map[*types.Var]*afAccess{}
	nextCtx := 0
	for _, f := range pass.Files() {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			declCtx := nextCtx
			nextCtx++
			declIsGo := false
			if o := info.Defs[fd.Name]; o != nil && spawned[o] {
				declIsGo = true
			}
			var walk func(n ast.Node, ctx int, ctxIsGo bool)
			walk = func(n ast.Node, ctx int, ctxIsGo bool) {
				ast.Inspect(n, func(m ast.Node) bool {
					if lit, ok := m.(*ast.FuncLit); ok && goLits[lit] {
						litCtx := nextCtx
						nextCtx++
						walk(lit.Body, litCtx, true)
						return false
					}
					sel, ok := m.(*ast.SelectorExpr)
					if !ok {
						return true
					}
					s, ok := info.Selections[sel]
					if !ok || s.Kind() != types.FieldVal {
						return true
					}
					v, ok := s.Obj().(*types.Var)
					if !ok || v.Pkg() != pass.Types() {
						return true
					}
					a := fields[v]
					if a == nil {
						a = &afAccess{obj: v, contexts: map[int]bool{}, firstPos: v.Pos()}
						fields[v] = a
					}
					a.contexts[ctx] = true
					a.goCtx = a.goCtx || ctxIsGo
					return true
				})
			}
			walk(fd.Body, declCtx, declIsGo)
		}
	}

	// Pass 3: mark writes (independent of context — one writer anywhere is
	// enough once two contexts share the field).
	for _, f := range pass.Files() {
		markWrite := func(e ast.Expr) {
			for {
				switch x := ast.Unparen(e).(type) {
				case *ast.IndexExpr:
					e = x.X
					continue
				case *ast.SliceExpr:
					e = x.X
					continue
				case *ast.StarExpr:
					e = x.X
					continue
				}
				break
			}
			sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
			if !ok {
				return
			}
			s, ok := info.Selections[sel]
			if !ok || s.Kind() != types.FieldVal {
				return
			}
			if v, ok := s.Obj().(*types.Var); ok {
				if a := fields[v]; a != nil {
					a.written = true
				}
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					markWrite(lhs)
				}
			case *ast.IncDecStmt:
				markWrite(n.X)
			case *ast.UnaryExpr:
				if n.Op == token.AND {
					markWrite(n.X) // address escape: assume it will be written
				}
			}
			return true
		})
	}

	var flagged []*afAccess
	for _, a := range fields {
		if len(a.contexts) >= 2 && a.goCtx && a.written && !afExempt(a.obj) {
			flagged = append(flagged, a)
		}
	}
	sort.Slice(flagged, func(i, j int) bool { return flagged[i].firstPos < flagged[j].firstPos })
	for _, a := range flagged {
		owner := ""
		if named := afOwner(pass.Types(), a.obj); named != "" {
			owner = named + "."
		}
		pass.Reportf(a.firstPos,
			"field %s%s is written and reachable from %d goroutine-spawning contexts without atomic, mutex, or channel protection",
			owner, a.obj.Name(), len(a.contexts))
	}
}

// afExempt reports whether the field is self-synchronizing (sync /
// sync/atomic typed, channel typed) or lives in a struct that carries a
// mutex.
func afExempt(v *types.Var) bool {
	t := v.Type()
	if isSyncType(t) {
		return true
	}
	if _, ok := t.Underlying().(*types.Chan); ok {
		return true
	}
	// Mutex-carrying struct: find the named type owning this field and
	// look for a sync.Mutex/RWMutex sibling.
	if st := afStruct(v); st != nil {
		for i := 0; i < st.NumFields(); i++ {
			ft := st.Field(i).Type()
			if p, ok := ft.(*types.Pointer); ok {
				ft = p.Elem()
			}
			if n, ok := ft.(*types.Named); ok && n.Obj().Pkg() != nil &&
				n.Obj().Pkg().Path() == "sync" &&
				(n.Obj().Name() == "Mutex" || n.Obj().Name() == "RWMutex") {
				return true
			}
		}
	}
	return false
}

// isSyncType reports whether t's named type lives in sync or sync/atomic.
func isSyncType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	path := n.Obj().Pkg().Path()
	return path == "sync" || path == "sync/atomic"
}

// afStruct returns the struct type the field belongs to, by scanning the
// package scope's named struct types (types.Var has no owner pointer).
func afStruct(v *types.Var) *types.Struct {
	if v.Pkg() == nil {
		return nil
	}
	scope := v.Pkg().Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == v {
				return st
			}
		}
	}
	return nil
}

// afOwner returns the named type owning the field, for the message.
func afOwner(pkg *types.Package, v *types.Var) string {
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == v {
				return tn.Name()
			}
		}
	}
	return ""
}
