package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"hierknem/internal/lint/flow"
)

// PhasesafeAnalyzer proves node-phase confinement: every call inside an
// EnterNodePhase/ExitNodePhase region must be statically unable to violate
// the promise the bracket makes (see internal/mpi/confine.go) — no sends to
// communicators not proved intra-node, no wildcard receives on them, no
// Split, no direct fabric flows, and no payload that reaches the eager
// threshold / fabric bypass cutoff the runtime guards enforce.
//
// The proof composes three layers:
//
//   - Axioms at the communication API boundary (flow/confinefacts.go) state
//     each primitive's obligations: which arguments must be intra-node
//     communicators, which sizes must stay under flow.ConfineCutoff.
//
//   - Interprocedural summaries (Fact.MayCrossNodeSend &c., computed to a
//     fixed point over the call graph) either root those obligations in a
//     callee's parameters — so the call site inherits them — or collapse
//     them into May* bits when no parameter bounds them.
//
//   - A lexical region walk (modeled on the bracket analyzer) discharges
//     the obligations from the bracket's own guard: the shipped idiom
//     `bracket := p.PhaseEligible(c, n); if bracket { p.EnterNodePhase() }`
//     proves c intra-node and n under the cutoff for the whole region, and
//     `x == nil || p.PhaseEligible(c, x.Len())` proves x's length bounded
//     (nil carries no bytes). An unconditional bracket in an unexported
//     function borrows the intersection of its in-package call sites'
//     guards; in an exported function it is unprovable and reported.
//
// A region whose every call is discharged is recorded as a RegionFact in
// the package's hierflow fact set; the driver assembles those into the
// guard-elision manifest the runtime consumes (HIERKNEM_GUARDS=elide).
// Everything here under-approximates: a provably safe finding takes
// //lint:ignore phasesafe <reason>.
var PhasesafeAnalyzer = &Analyzer{
	Name:    "phasesafe",
	Doc:     "proves EnterNodePhase/ExitNodePhase regions unable to violate node-phase confinement; reports the offending call chain otherwise",
	Applies: internalOnly,
	Run:     runPhasesafe,
}

const (
	phaseEligibleID = "(*hierknem/internal/mpi.Proc).PhaseEligible"
	enterPhaseID    = "(*hierknem/internal/mpi.Proc).EnterNodePhase"
	exitPhaseID     = "(*hierknem/internal/mpi.Proc).ExitNodePhase"
	commSplitID     = "(*hierknem/internal/mpi.Comm).Split"
	bbWaitID        = "(*hierknem/internal/mpi.Comm).BBWait"
	bufLenID        = "(*hierknem/internal/buffer.Buffer).Len"
)

func runPhasesafe(pass *Pass) {
	if pass.Pkg.Variant != "" {
		return // proofs (and elision) are per plain package; test variants add no regions
	}
	for _, fi := range pass.Flow.Funcs {
		if fi.Decl == nil || fi.Decl.Body == nil {
			continue
		}
		w := &psChecker{pass: pass, fi: fi}
		w.stmts(fi.Decl.Body.List)
		if w.deferExit {
			for _, r := range w.open {
				w.record(r)
			}
		}
		// Without a deferred exit, a still-open region is a bracket
		// imbalance — the bracket analyzer reports it; nothing is recorded.
	}
}

// regionCtx is what one region's guard has proved, keyed by the source form
// (types.ExprString) of the proved expression: communicators proved
// intra-node, int expressions proved under the cutoff, and buffers whose
// length is proved under the cutoff (or that are proved nil).
type regionCtx struct {
	comms map[string]bool
	sizes map[string]bool
	bufs  map[string]bool
}

func newRegionCtx() *regionCtx {
	return &regionCtx{comms: map[string]bool{}, sizes: map[string]bool{}, bufs: map[string]bool{}}
}

// psRegion is one open bracket: the enter call, what its guard proved, and
// the checker's report count at entry (unchanged at exit = region proved).
type psRegion struct {
	enter *ast.CallExpr
	ctx   *regionCtx
	mark  int
}

// psChecker walks one function body, mirroring the bracket analyzer's
// lexical abstract interpretation, and checks every call made while a
// region is open against the innermost region's proved context.
type psChecker struct {
	pass      *Pass
	fi        *flow.FuncInfo
	open      []psRegion
	deferExit bool
	reports   int

	seeds     *regionCtx // call-site seeds for unconditional brackets
	seedsDone bool
}

func (w *psChecker) reportf(pos token.Pos, format string, args ...any) {
	w.reports++
	w.pass.Reportf(pos, format, args...)
}

// ctx returns the innermost open region's context, or nil outside regions.
func (w *psChecker) ctx() *regionCtx {
	if len(w.open) == 0 {
		return nil
	}
	return w.open[len(w.open)-1].ctx
}

func (w *psChecker) record(r psRegion) {
	if w.reports > r.mark {
		return // something inside was reported: not proved
	}
	pos := w.pass.Fset().Position(r.enter.Pos())
	w.pass.Flow.Own.Regions = append(w.pass.Flow.Own.Regions, flow.RegionFact{
		Func: flow.RuntimeFuncName(w.fi.Obj),
		File: pos.Filename,
		Line: pos.Line,
	})
}

func (w *psChecker) stmts(list []ast.Stmt) {
	for _, stmt := range list {
		if c, _, enter, ok := guardedBracket(stmt); ok {
			if enter {
				ctx := newRegionCtx()
				w.seedGuardIn(w.fi, ctx, stmt.(*ast.IfStmt).Cond, 0)
				w.open = append(w.open, psRegion{enter: c, ctx: ctx, mark: w.reports})
			} else {
				w.pop()
			}
			continue
		}
		if c, enter, ok := bracketCall(stmt); ok {
			if enter {
				w.open = append(w.open, psRegion{enter: c, ctx: w.callSiteSeeds(c), mark: w.reports})
			} else {
				w.pop()
			}
			continue
		}
		switch s := stmt.(type) {
		case *ast.DeferStmt:
			if sel, ok := ast.Unparen(s.Call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "ExitNodePhase" {
				w.deferExit = true
				continue
			}
			w.inspect(s)
		case *ast.IfStmt:
			w.inspect(s.Init)
			w.inspect(s.Cond)
			w.branch(s.Body.List)
			switch e := s.Else.(type) {
			case *ast.BlockStmt:
				w.branch(e.List)
			case *ast.IfStmt:
				w.branch([]ast.Stmt{e})
			}
		case *ast.ForStmt:
			w.inspect(s.Init)
			w.inspect(s.Cond)
			w.inspect(s.Post)
			w.branch(s.Body.List)
		case *ast.RangeStmt:
			w.inspect(s.X)
			w.branch(s.Body.List)
		case *ast.SwitchStmt:
			w.inspect(s.Init)
			w.inspect(s.Tag)
			for _, cc := range s.Body.List {
				if cl, ok := cc.(*ast.CaseClause); ok {
					for _, e := range cl.List {
						w.inspect(e)
					}
					w.branch(cl.Body)
				}
			}
		case *ast.TypeSwitchStmt:
			w.inspect(s.Init)
			w.inspect(s.Assign)
			for _, cc := range s.Body.List {
				if cl, ok := cc.(*ast.CaseClause); ok {
					w.branch(cl.Body)
				}
			}
		case *ast.SelectStmt:
			for _, cc := range s.Body.List {
				if cl, ok := cc.(*ast.CommClause); ok {
					w.branch(cl.Body)
				}
			}
		case *ast.BlockStmt:
			w.stmts(s.List)
		case *ast.LabeledStmt:
			w.stmts([]ast.Stmt{s.Stmt})
		default:
			w.inspect(stmt)
		}
	}
}

// branch walks nested control flow; regions that both open and close inside
// it are recorded by pop, and the entry state is restored afterwards (the
// bracket analyzer reports any imbalance).
func (w *psChecker) branch(list []ast.Stmt) {
	saved := append([]psRegion(nil), w.open...)
	w.stmts(list)
	w.open = saved
}

func (w *psChecker) pop() {
	if len(w.open) == 0 {
		return // bracket analyzer reports the unmatched exit
	}
	top := w.open[len(w.open)-1]
	w.open = w.open[:len(w.open)-1]
	w.record(top)
}

// callSiteSeeds builds the proved context of an unconditional bracket from
// the function's in-package call sites: what every enclosing caller guard
// proves about the arguments, translated to parameter names and intersected
// across sites. Exported functions have invisible callers, so nothing is
// provable and the enter itself is reported.
func (w *psChecker) callSiteSeeds(c *ast.CallExpr) *regionCtx {
	if w.fi.Obj.Exported() {
		w.reportf(c.Pos(),
			"unconditional EnterNodePhase in exported function %s: call-site guards outside the package are invisible to the proof",
			w.fi.Obj.Name())
		return newRegionCtx()
	}
	if w.seedsDone {
		return w.seeds
	}
	w.seedsDone = true
	params := paramNames(w.fi.Decl)
	var acc *regionCtx
	for _, caller := range w.pass.Flow.Funcs {
		if caller == w.fi || caller.Decl == nil {
			continue
		}
		for _, call := range caller.Calls {
			if call.Callee != w.fi.Obj {
				continue
			}
			site := newRegionCtx()
			for _, cond := range enclosingConds(caller.Decl, call.Expr.Pos()) {
				w.seedGuardIn(caller, site, cond, 0)
			}
			tr := w.translateSeeds(caller, site, call.Expr, params)
			if acc == nil {
				acc = tr
			} else {
				acc = intersectCtx(acc, tr)
			}
		}
	}
	if acc == nil {
		acc = newRegionCtx() // no call sites: nothing proved
	}
	w.seeds = acc
	return acc
}

// translateSeeds maps what a call site's guards prove about the argument
// expressions onto the callee's parameter names, including field paths
// (caller-proved "hy.LComm" where the argument is "hy" seeds "hy.LComm"
// under the callee's name for that parameter).
func (w *psChecker) translateSeeds(caller *flow.FuncInfo, site *regionCtx, call *ast.CallExpr, params []string) *regionCtx {
	out := newRegionCtx()
	for j, name := range params {
		if name == "" || j >= len(call.Args) {
			continue
		}
		arg := call.Args[j]
		argStr := types.ExprString(ast.Unparen(arg))
		if w.provenCommIn(caller, site, arg, 0) {
			out.comms[name] = true
		}
		if ok, _, _ := w.boundedBufIn(caller, site, arg, 0); ok {
			out.bufs[name] = true
		}
		if ok, _, _ := w.boundedSizeIn(caller, site, arg, 0); ok {
			out.sizes[name] = true
		}
		for s := range site.comms {
			if strings.HasPrefix(s, argStr+".") {
				out.comms[name+s[len(argStr):]] = true
			}
		}
		for s := range site.sizes {
			if strings.HasPrefix(s, argStr+".") {
				out.sizes[name+s[len(argStr):]] = true
			}
		}
		for s := range site.bufs {
			if strings.HasPrefix(s, argStr+".") {
				out.bufs[name+s[len(argStr):]] = true
			}
		}
	}
	return out
}

// enclosingConds collects the conditions of every if statement whose then
// branch lexically contains pos — the guards known true at that call site.
func enclosingConds(fd *ast.FuncDecl, pos token.Pos) []ast.Expr {
	var conds []ast.Expr
	ast.Inspect(fd, func(n ast.Node) bool {
		if is, ok := n.(*ast.IfStmt); ok && is.Body.Pos() <= pos && pos < is.Body.End() {
			conds = append(conds, is.Cond)
		}
		return true
	})
	return conds
}

func paramNames(fd *ast.FuncDecl) []string {
	var names []string
	if fd.Type.Params == nil {
		return nil
	}
	for _, f := range fd.Type.Params.List {
		if len(f.Names) == 0 {
			names = append(names, "")
			continue
		}
		for _, n := range f.Names {
			names = append(names, n.Name)
		}
	}
	return names
}

func intersectCtx(a, b *regionCtx) *regionCtx {
	out := newRegionCtx()
	for k := range a.comms {
		if b.comms[k] {
			out.comms[k] = true
		}
	}
	for k := range a.sizes {
		if b.sizes[k] {
			out.sizes[k] = true
		}
	}
	for k := range a.bufs {
		if b.bufs[k] {
			out.bufs[k] = true
		}
	}
	return out
}

// seedGuardIn interprets one guard condition known true: conjunctions seed
// both sides, PhaseEligible(c, n) proves c intra-node and n (and n's buffer
// root) bounded, a guard variable seeds through its single definition, and
// the nil-tolerant disjunction `x == nil || p.PhaseEligible(c, x.Len())`
// proves only x bounded (the communicator may be unchecked on the nil arm).
func (w *psChecker) seedGuardIn(fi *flow.FuncInfo, ctx *regionCtx, cond ast.Expr, depth int) {
	if cond == nil || depth > 8 {
		return
	}
	info := w.pass.Info()
	cond = ast.Unparen(cond)
	switch e := cond.(type) {
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LAND:
			w.seedGuardIn(fi, ctx, e.X, depth+1)
			w.seedGuardIn(fi, ctx, e.Y, depth+1)
		case token.LOR:
			if b := w.nilComparand(e.X); b != nil && w.phaseEligibleBounds(e.Y, b) {
				ctx.bufs[types.ExprString(b)] = true
			}
		}
	case *ast.Ident:
		v, ok := w.pass.ObjectOf(e).(*types.Var)
		if !ok {
			return
		}
		ds := fi.DefsBefore(v, e.Pos())
		if len(ds) == 1 && ds[0].RHS != nil && !ds[0].Range && !ds[0].Augmented {
			w.seedGuardIn(fi, ctx, ds[0].RHS, depth+1)
		}
	case *ast.CallExpr:
		fn := flow.CalleeFunc(info, e)
		if fn == nil || flow.FuncID(fn) != phaseEligibleID || len(e.Args) != 2 {
			return
		}
		w.markComm(fi, ctx, e.Args[0], depth)
		w.markSize(fi, ctx, e.Args[1], depth)
	}
}

// markComm records e (and, through single definitions, what it was assigned
// from) as a proved intra-node communicator.
func (w *psChecker) markComm(fi *flow.FuncInfo, ctx *regionCtx, e ast.Expr, depth int) {
	if e == nil || depth > 8 {
		return
	}
	e = ast.Unparen(e)
	ctx.comms[types.ExprString(e)] = true
	if id, ok := e.(*ast.Ident); ok {
		if v, ok := w.pass.ObjectOf(id).(*types.Var); ok {
			ds := fi.DefsBefore(v, id.Pos())
			if len(ds) == 1 && ds[0].RHS != nil && !ds[0].Range && !ds[0].Augmented {
				w.markComm(fi, ctx, ds[0].RHS, depth+1)
			}
		}
	}
}

// markSize records a guard's size expression as bounded, closing over single
// definitions, and roots X.Len() sizes in their buffer.
func (w *psChecker) markSize(fi *flow.FuncInfo, ctx *regionCtx, e ast.Expr, depth int) {
	if e == nil || depth > 8 {
		return
	}
	e = ast.Unparen(e)
	ctx.sizes[types.ExprString(e)] = true
	switch x := e.(type) {
	case *ast.CallExpr:
		info := w.pass.Info()
		if fn := flow.CalleeFunc(info, x); fn != nil && flow.FuncID(fn) == bufLenID {
			w.markBuf(fi, ctx, flow.ReceiverExpr(info, x), depth+1)
		}
	case *ast.Ident:
		if v, ok := w.pass.ObjectOf(x).(*types.Var); ok {
			ds := fi.DefsBefore(v, x.Pos())
			if len(ds) == 1 && ds[0].RHS != nil && !ds[0].Range && !ds[0].Augmented {
				w.markSize(fi, ctx, ds[0].RHS, depth+1)
			}
		}
	}
}

func (w *psChecker) markBuf(fi *flow.FuncInfo, ctx *regionCtx, e ast.Expr, depth int) {
	if e == nil || depth > 8 {
		return
	}
	e = ast.Unparen(e)
	ctx.bufs[types.ExprString(e)] = true
	if id, ok := e.(*ast.Ident); ok {
		if v, ok := w.pass.ObjectOf(id).(*types.Var); ok {
			ds := fi.DefsBefore(v, id.Pos())
			if len(ds) == 1 && ds[0].RHS != nil && !ds[0].Range && !ds[0].Augmented {
				w.markBuf(fi, ctx, ds[0].RHS, depth+1)
			}
		}
	}
}

// nilComparand matches `x == nil` (either side) and returns x.
func (w *psChecker) nilComparand(e ast.Expr) ast.Expr {
	b, ok := ast.Unparen(e).(*ast.BinaryExpr)
	if !ok || b.Op != token.EQL {
		return nil
	}
	info := w.pass.Info()
	if tv, ok := info.Types[b.Y]; ok && tv.IsNil() {
		return ast.Unparen(b.X)
	}
	if tv, ok := info.Types[b.X]; ok && tv.IsNil() {
		return ast.Unparen(b.Y)
	}
	return nil
}

// phaseEligibleBounds matches `p.PhaseEligible(c, b.Len())` for the given b.
func (w *psChecker) phaseEligibleBounds(e, b ast.Expr) bool {
	info := w.pass.Info()
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	if fn := flow.CalleeFunc(info, call); fn == nil || flow.FuncID(fn) != phaseEligibleID {
		return false
	}
	lenCall, ok := ast.Unparen(call.Args[1]).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := flow.CalleeFunc(info, lenCall)
	if fn == nil || flow.FuncID(fn) != bufLenID {
		return false
	}
	recv := flow.ReceiverExpr(info, lenCall)
	return recv != nil && types.ExprString(ast.Unparen(recv)) == types.ExprString(b)
}

// inspect checks every call lexically under n against the innermost open
// region. Function literals are opaque to the lexical walk and reported.
func (w *psChecker) inspect(n ast.Node) {
	if n == nil || w.ctx() == nil {
		return
	}
	ast.Inspect(n, func(nd ast.Node) bool {
		switch x := nd.(type) {
		case *ast.FuncLit:
			w.reportf(x.Pos(), "function literal inside a node phase cannot be proved node-confined; hoist it above the bracket")
			return false
		case *ast.CallExpr:
			w.checkCall(x)
		}
		return true
	})
}

func (w *psChecker) checkCall(call *ast.CallExpr) {
	info := w.pass.Info()
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return // conversion
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.ObjectOf(id).(*types.Builtin); isBuiltin {
			return
		}
	}
	fn := flow.CalleeFunc(info, call)
	if fn == nil {
		w.reportf(call.Pos(), "indirect call inside a node phase cannot be proved node-confined")
		return
	}
	id := flow.FuncID(fn)
	if id == enterPhaseID || id == exitPhaseID || id == phaseEligibleID {
		return
	}
	cf := w.pass.Flow.FactFor(fn)
	name := w.shortFuncName(fn)
	ctx := w.ctx()

	if cf.MaySplit {
		if id == commSplitID {
			w.reportf(call.Pos(),
				"call to %s inside a node phase: Split rebuilds communicator membership and is never node-confined", name)
		} else {
			w.reportf(call.Pos(), "call to %s inside a node phase can split a communicator%s",
				name, w.chain(fn, func(f flow.Fact) bool { return f.MaySplit }))
		}
	}
	if cf.MayFabricTouch {
		w.reportf(call.Pos(), "call to %s inside a node phase can start a fabric flow; fabric state is global-domain%s",
			name, w.chain(fn, func(f flow.Fact) bool { return f.MayFabricTouch }))
	}
	if cf.MayCrossNodeSend {
		w.reportf(call.Pos(), "call to %s inside a node phase can send to a communicator not proved intra-node%s",
			name, w.chainComm(fn))
	}
	if cf.MayWildcardRecvMultiNode {
		w.reportf(call.Pos(), "call to %s inside a node phase can post a wildcard receive on a communicator not proved intra-node%s",
			name, w.chainComm(fn))
	}
	if cf.MaySendSizeUnbounded {
		w.reportf(call.Pos(), "call to %s inside a node phase can move a payload not proved under the eager/fabric cutoff (%d)%s",
			name, flow.ConfineCutoff, w.chainSize(fn))
	}
	for _, j := range cf.ConfineComms {
		arg := flow.CallArg(info, call, j)
		if arg == nil || w.provenCommIn(w.fi, ctx, arg, 0) {
			continue
		}
		if wildcardAt(info, call, cf) {
			w.reportf(call.Pos(),
				"call to %s inside a node phase: wildcard receive on communicator %q not proved intra-node%s",
				name, types.ExprString(ast.Unparen(arg)), w.chainComm(fn))
		} else {
			w.reportf(call.Pos(),
				"call to %s inside a node phase: communicator argument %q is not proved intra-node%s",
				name, types.ExprString(ast.Unparen(arg)), w.chainComm(fn))
		}
	}
	for _, j := range cf.ConfineSizes {
		arg := flow.CallArg(info, call, j)
		if arg == nil {
			continue
		}
		var ok, over bool
		var ov int64
		if tv, found := info.Types[arg]; found && flow.IsBuffer(tv.Type) {
			ok, ov, over = w.boundedBufIn(w.fi, ctx, arg, 0)
		} else {
			ok, ov, over = w.boundedSizeIn(w.fi, ctx, arg, 0)
		}
		if ok {
			continue
		}
		if over {
			w.reportf(call.Pos(),
				"call to %s inside a node phase: payload of %d bytes reaches the eager/fabric cutoff (%d)",
				name, ov, flow.ConfineCutoff)
		} else {
			w.reportf(call.Pos(),
				"call to %s inside a node phase: size %q is not proved under the eager/fabric cutoff (%d)%s",
				name, types.ExprString(ast.Unparen(arg)), flow.ConfineCutoff, w.chainSize(fn))
		}
	}
}

// wildcardAt reports whether the call passes a literal wildcard (AnySource)
// in one of the callee's wildcard source positions — report flavoring only;
// proving the communicator intra-node discharges the obligation either way.
func wildcardAt(info *types.Info, call *ast.CallExpr, cf flow.Fact) bool {
	for _, j := range cf.WildcardParams {
		if arg := flow.CallArg(info, call, j); arg != nil {
			if v, ok := flow.ConstInt(info, arg); ok && v < 0 {
				return true
			}
		}
	}
	return false
}

// provenCommIn reports whether e is proved intra-node under ctx: its source
// form was proved by a guard, or it is a variable whose every definition is.
func (w *psChecker) provenCommIn(fi *flow.FuncInfo, ctx *regionCtx, e ast.Expr, depth int) bool {
	if e == nil || depth > 8 {
		return false
	}
	e = ast.Unparen(e)
	if ctx.comms[types.ExprString(e)] {
		return true
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	v, ok := w.pass.ObjectOf(id).(*types.Var)
	if !ok {
		return false
	}
	ds := fi.DefsBefore(v, id.Pos())
	if len(ds) == 0 {
		return false
	}
	for _, d := range ds {
		if d.RHS == nil || d.Range || d.Augmented {
			return false // parameter binding or zero-value: not proved
		}
		if !w.provenCommIn(fi, ctx, d.RHS, depth+1) {
			return false
		}
	}
	return true
}

// boundedSizeIn reports whether an int expression is proved under the
// cutoff. over=true with the value means a compile-time constant at or above
// the cutoff — a definite violation rather than a proof gap.
func (w *psChecker) boundedSizeIn(fi *flow.FuncInfo, ctx *regionCtx, e ast.Expr, depth int) (ok bool, ov int64, over bool) {
	if e == nil || depth > 8 {
		return false, 0, false
	}
	e = ast.Unparen(e)
	info := w.pass.Info()
	if v, isConst := flow.ConstInt(info, e); isConst {
		if v >= 0 && v < flow.ConfineCutoff {
			return true, 0, false
		}
		return false, v, true
	}
	if ctx.sizes[types.ExprString(e)] {
		return true, 0, false
	}
	switch x := e.(type) {
	case *ast.Ident:
		v, isVar := w.pass.ObjectOf(x).(*types.Var)
		if !isVar {
			return false, 0, false
		}
		ds := fi.DefsBefore(v, x.Pos())
		if len(ds) == 0 {
			return false, 0, false
		}
		for _, d := range ds {
			if d.RHS == nil {
				if _, isParam := fi.ParamIndex(v); isParam {
					return false, 0, false
				}
				continue // zero-value declaration: 0 is bounded
			}
			if d.Range || d.Augmented {
				return false, 0, false
			}
			dok, dov, dover := w.boundedSizeIn(fi, ctx, d.RHS, depth+1)
			if !dok {
				return false, dov, dover
			}
		}
		return true, 0, false
	case *ast.CallExpr:
		if tv, found := info.Types[x.Fun]; found && tv.IsType() && len(x.Args) == 1 {
			return w.boundedSizeIn(fi, ctx, x.Args[0], depth+1)
		}
		if fn := flow.CalleeFunc(info, x); fn != nil && flow.FuncID(fn) == bufLenID {
			return w.boundedBufIn(fi, ctx, flow.ReceiverExpr(info, x), depth+1)
		}
	}
	return false, 0, false
}

// boundedBufIn reports whether a buffer expression's length is proved under
// the cutoff: nil literals, guard-proved buffers, variables whose every
// definition is proved, allocator/view results bounded by their size
// argument, and fields of a blackboard record fetched from a proved
// communicator (posted by a node member whose own bracket proved them —
// brackets are collective, so the poster ran the same guard).
func (w *psChecker) boundedBufIn(fi *flow.FuncInfo, ctx *regionCtx, e ast.Expr, depth int) (ok bool, ov int64, over bool) {
	if e == nil || depth > 8 {
		return false, 0, false
	}
	e = ast.Unparen(e)
	info := w.pass.Info()
	if tv, found := info.Types[e]; found && tv.IsNil() {
		return true, 0, false
	}
	if ctx.bufs[types.ExprString(e)] {
		return true, 0, false
	}
	switch x := e.(type) {
	case *ast.Ident:
		v, isVar := w.pass.ObjectOf(x).(*types.Var)
		if !isVar {
			return false, 0, false
		}
		ds := fi.DefsBefore(v, x.Pos())
		if len(ds) == 0 {
			return false, 0, false
		}
		for _, d := range ds {
			if d.RHS == nil {
				if _, isParam := fi.ParamIndex(v); isParam {
					return false, 0, false
				}
				continue // zero-value declaration: nil carries no bytes
			}
			if d.Range || d.Augmented {
				return false, 0, false
			}
			dok, dov, dover := w.boundedBufIn(fi, ctx, d.RHS, depth+1)
			if !dok {
				return false, dov, dover
			}
		}
		return true, 0, false
	case *ast.CallExpr:
		if fn := flow.CalleeFunc(info, x); fn != nil {
			if bl := w.pass.Flow.FactFor(fn).BufLen; len(bl) == 1 {
				return w.boundedSizeIn(fi, ctx, flow.CallArg(info, x, bl[0]), depth+1)
			}
		}
	case *ast.SelectorExpr:
		if w.bbTrusted(fi, ctx, x, depth) {
			return true, 0, false
		}
	}
	return false, 0, false
}

// bbTrusted recognizes sh.buf where every definition of sh is a type
// assertion over BBWait on a proved intra-node communicator.
func (w *psChecker) bbTrusted(fi *flow.FuncInfo, ctx *regionCtx, sel *ast.SelectorExpr, depth int) bool {
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return false
	}
	v, ok := w.pass.ObjectOf(id).(*types.Var)
	if !ok {
		return false
	}
	ds := fi.DefsBefore(v, id.Pos())
	if len(ds) == 0 {
		return false
	}
	info := w.pass.Info()
	for _, d := range ds {
		ta, ok := d.RHS.(*ast.TypeAssertExpr)
		if !ok {
			return false
		}
		call, ok := ast.Unparen(ta.X).(*ast.CallExpr)
		if !ok {
			return false
		}
		fn := flow.CalleeFunc(info, call)
		if fn == nil || flow.FuncID(fn) != bbWaitID {
			return false
		}
		if !w.provenCommIn(fi, ctx, flow.ReceiverExpr(info, call), depth+1) {
			return false
		}
	}
	return true
}

// chain reconstructs the call path from fn down to the primitive that makes
// the predicate hold, for the "(via a → b)" suffix of a report.
func (w *psChecker) chain(fn *types.Func, pred func(flow.Fact) bool) string {
	var parts []string
	cur := fn
	for i := 0; i < 4; i++ {
		fi := w.pass.Flow.FuncOf(cur)
		if fi == nil {
			break // crossed a package boundary: the name itself is the root
		}
		var next *types.Func
		for _, c := range fi.Calls {
			if c.Callee != nil && pred(w.pass.Flow.FactFor(c.Callee)) {
				next = c.Callee
				break
			}
		}
		if next == nil {
			break
		}
		parts = append(parts, w.shortFuncName(next))
		cur = next
	}
	if len(parts) == 0 {
		return ""
	}
	return " (via " + strings.Join(parts, " → ") + ")"
}

func (w *psChecker) chainComm(fn *types.Func) string {
	return w.chain(fn, func(f flow.Fact) bool {
		return len(f.ConfineComms) > 0 || f.MayCrossNodeSend || f.MayWildcardRecvMultiNode
	})
}

func (w *psChecker) chainSize(fn *types.Func) string {
	return w.chain(fn, func(f flow.Fact) bool {
		return len(f.ConfineSizes) > 0 || f.MaySendSizeUnbounded
	})
}

// shortFuncName trims module noise from a function name for reports: own
// package functions keep their bare name, everything else drops the
// "hierknem/internal/" prefix.
func (w *psChecker) shortFuncName(fn *types.Func) string {
	full := fn.FullName()
	if fn.Pkg() == w.pass.Types() {
		if trimmed := strings.TrimPrefix(full, fn.Pkg().Path()+"."); trimmed != full {
			return trimmed
		}
	}
	return strings.ReplaceAll(full, "hierknem/internal/", "")
}
