package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// BracketAnalyzer proves the node-phase bracketing discipline the parallel
// engine's collective brackets rely on: every EnterNodePhase is matched by
// an ExitNodePhase on every path out of the function, and brackets never
// nest (the engine panics on a nested enter, but only on the first run that
// actually reaches it — the analyzer catches the path that tests miss).
//
// The walk is a lexical abstract interpretation of the function body. Bare
// Enter/Exit calls push and pop an unconditional bracket; the shipped
// size-gated idiom
//
//	bracket := p.PhaseEligible(lcomm, n)
//	if bracket { p.EnterNodePhase() }
//	...
//	if bracket { p.ExitNodePhase() }
//
// is recognized structurally — an if whose body is exactly the bracket call
// pushes a guarded bracket keyed by the condition's source form, and the
// matching exit must close under the same key, so an exit guarded by a
// different condition than its enter is reported rather than assumed
// balanced. Branches of ordinary control flow (if/for/switch/select) must
// leave the bracket depth where they found it; a return while a bracket is
// open is a missing exit on that path. A deferred ExitNodePhase waives the
// per-path checks for its function. Like the other analyzers this
// under-approximates runtime reachability; a provably safe finding takes
// //lint:ignore bracket <reason>.
var BracketAnalyzer = &Analyzer{
	Name:    "bracket",
	Doc:     "flags unbalanced EnterNodePhase/ExitNodePhase brackets: nested enters, unmatched exits, and paths that leave a node phase open",
	Applies: internalOnly,
	Run:     runBracket,
}

func runBracket(pass *Pass) {
	for _, f := range pass.Files() {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				checkBrackets(pass, body)
			}
			return true // keep descending: literals nest inside declarations
		})
	}
}

// openBracket is one un-exited EnterNodePhase: where it was entered and the
// source form of its guard ("" for an unguarded enter).
type openBracket struct {
	pos   token.Pos
	guard string
}

// bracketWalk carries the abstract state of one function body.
type bracketWalk struct {
	pass      *Pass
	open      []openBracket
	deferExit bool // a deferred ExitNodePhase waives path checks
}

func checkBrackets(pass *Pass, body *ast.BlockStmt) {
	w := &bracketWalk{pass: pass}
	w.stmts(body.List)
	if w.deferExit {
		return
	}
	for _, ob := range w.open {
		pass.Reportf(ob.pos,
			"EnterNodePhase is not matched by an ExitNodePhase on every path out of the function")
	}
}

// bracketCall classifies stmt as a bare EnterNodePhase/ExitNodePhase call.
func bracketCall(stmt ast.Stmt) (call *ast.CallExpr, enter, ok bool) {
	es, isExpr := stmt.(*ast.ExprStmt)
	if !isExpr {
		return nil, false, false
	}
	c, isCall := es.X.(*ast.CallExpr)
	if !isCall {
		return nil, false, false
	}
	sel, isSel := ast.Unparen(c.Fun).(*ast.SelectorExpr)
	if !isSel {
		return nil, false, false
	}
	switch sel.Sel.Name {
	case "EnterNodePhase":
		return c, true, true
	case "ExitNodePhase":
		return c, false, true
	}
	return nil, false, false
}

// guardedBracket matches `if cond { p.EnterNodePhase() }` (no else, no init)
// and its exit twin, returning the condition's source form as the key.
func guardedBracket(stmt ast.Stmt) (call *ast.CallExpr, guard string, enter, ok bool) {
	is, isIf := stmt.(*ast.IfStmt)
	if !isIf || is.Else != nil || is.Init != nil || len(is.Body.List) != 1 {
		return nil, "", false, false
	}
	c, enter, ok := bracketCall(is.Body.List[0])
	if !ok {
		return nil, "", false, false
	}
	return c, types.ExprString(is.Cond), enter, true
}

// stmts walks one statement list, updating the open-bracket stack in source
// order. Nested control flow recurses through branch, which restores the
// entry depth afterwards — a branch that does not return must leave the
// bracket state as it found it.
func (w *bracketWalk) stmts(list []ast.Stmt) {
	for _, stmt := range list {
		if c, guard, enter, ok := guardedBracket(stmt); ok {
			w.apply(c, guard, enter)
			continue
		}
		if c, enter, ok := bracketCall(stmt); ok {
			w.apply(c, "", enter)
			continue
		}
		switch s := stmt.(type) {
		case *ast.ReturnStmt:
			if len(w.open) > 0 && !w.deferExit {
				w.pass.Reportf(s.Pos(),
					"return inside a node phase entered at line %d; this path is missing an ExitNodePhase",
					w.pass.Fset().Position(w.open[len(w.open)-1].pos).Line)
			}
		case *ast.DeferStmt:
			if sel, ok := ast.Unparen(s.Call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "ExitNodePhase" {
				w.deferExit = true
			}
		case *ast.IfStmt:
			w.branch(s.Body.List, s.Pos())
			switch e := s.Else.(type) {
			case *ast.BlockStmt:
				w.branch(e.List, e.Pos())
			case *ast.IfStmt:
				w.branch([]ast.Stmt{e}, e.Pos())
			}
		case *ast.ForStmt:
			w.branch(s.Body.List, s.Pos())
		case *ast.RangeStmt:
			w.branch(s.Body.List, s.Pos())
		case *ast.SwitchStmt:
			for _, cc := range s.Body.List {
				if cl, ok := cc.(*ast.CaseClause); ok {
					w.branch(cl.Body, cl.Pos())
				}
			}
		case *ast.TypeSwitchStmt:
			for _, cc := range s.Body.List {
				if cl, ok := cc.(*ast.CaseClause); ok {
					w.branch(cl.Body, cl.Pos())
				}
			}
		case *ast.SelectStmt:
			for _, cc := range s.Body.List {
				if cl, ok := cc.(*ast.CommClause); ok {
					w.branch(cl.Body, cl.Pos())
				}
			}
		case *ast.BlockStmt:
			w.stmts(s.List)
		case *ast.LabeledStmt:
			w.stmts([]ast.Stmt{s.Stmt})
		}
	}
}

// apply performs one enter or exit on the stack.
func (w *bracketWalk) apply(c *ast.CallExpr, guard string, enter bool) {
	if enter {
		if len(w.open) > 0 {
			w.pass.Reportf(c.Pos(),
				"nested EnterNodePhase: a node phase is already open since line %d (the engine panics on nested enters)",
				w.pass.Fset().Position(w.open[len(w.open)-1].pos).Line)
		}
		w.open = append(w.open, openBracket{pos: c.Pos(), guard: guard})
		return
	}
	if len(w.open) == 0 {
		w.pass.Reportf(c.Pos(), "ExitNodePhase without a matching EnterNodePhase on this path")
		return
	}
	top := w.open[len(w.open)-1]
	w.open = w.open[:len(w.open)-1]
	if top.guard != guard {
		w.pass.Reportf(c.Pos(),
			"ExitNodePhase guard %q does not match the EnterNodePhase guard %q from line %d; the bracket can open without closing (or close without opening)",
			guard, top.guard, w.pass.Fset().Position(top.pos).Line)
	}
}

// branch walks a nested control-flow body with the current state and
// requires it to restore the entry bracket depth: a branch may contain
// complete enter/exit pairs (and may return, which the return rule checks),
// but must not leave a phase open — or closed — for code after the branch.
func (w *bracketWalk) branch(list []ast.Stmt, pos token.Pos) {
	saved := append([]openBracket(nil), w.open...)
	w.stmts(list)
	if w.deferExit {
		return
	}
	if len(w.open) > len(saved) {
		ob := w.open[len(w.open)-1]
		w.pass.Reportf(ob.pos,
			"EnterNodePhase inside a conditional branch is not exited before the branch ends; code after the branch runs bracketed on some paths only")
	} else if len(w.open) < len(saved) {
		// The branch consumed an enclosing bracket: code after it runs
		// unbracketed on this path but bracketed on the fall-through path.
		w.pass.Reportf(pos,
			"this branch exits a node phase entered outside it; code after the branch is bracketed on some paths only")
	}
	w.open = saved
}
