package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrcheckAnalyzer flags discarded error returns from the simulator's own
// APIs (anything under this module: internal/mpi, internal/coll,
// internal/knem, the hierknem facade, ...). The runtime signals misuse —
// invalid bindings, failed KNEM cookie lookups, a deadlocked engine —
// exclusively through error values; dropping one turns a loud setup bug
// into a quietly wrong experiment.
//
// Only same-module callees are checked: stdlib error discipline is go vet's
// and the reviewer's business, but our own runtime's errors are invariants.
// A call used as a bare statement (including `go` and `defer` statements)
// whose results include an error is flagged. Assigning to blank (err
// position explicitly `_`) is treated as a deliberate, visible discard and
// is not flagged.
var ErrcheckAnalyzer = &Analyzer{
	Name: "errcheck",
	Doc:  "flag discarded error returns from module-internal APIs",
	Run:  runErrcheck,
}

func runErrcheck(pass *Pass) {
	info := pass.Info()
	module := modulePrefix(pass.Pkg.PkgPath)
	check := func(call *ast.CallExpr, how string) {
		fn, ok := calleeObj(info, call).(*types.Func)
		if !ok {
			return
		}
		path := pkgPathOf(fn)
		if path == "" || modulePrefix(path) != module {
			return
		}
		results := resultTypes(info, call)
		if results == nil {
			return
		}
		for i := 0; i < results.Len(); i++ {
			if isErrorType(results.At(i).Type()) {
				pass.Reportf(call.Pos(), "%s discards the error returned by %s.%s", how, shortPkg(path), fn.Name())
				return
			}
		}
	}

	for _, f := range pass.Files() {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ExprStmt:
				if call, ok := s.X.(*ast.CallExpr); ok {
					check(call, "statement")
				}
			case *ast.GoStmt:
				check(s.Call, "go statement")
			case *ast.DeferStmt:
				check(s.Call, "defer statement")
			}
			return true
		})
	}
}

// modulePrefix returns the leading path element — the module name for this
// repo's packages ("hierknem"), the domain for external ones.
func modulePrefix(path string) string {
	if i := strings.IndexByte(path, '/'); i >= 0 {
		return path[:i]
	}
	return path
}

// shortPkg renders an import path as its last element for messages.
func shortPkg(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
