package lint

import (
	"go/ast"
	"go/token"
)

// VtMonoAnalyzer proves the first PDES precondition: virtual time never
// moves backwards. A conservative parallel DES advances each component
// inside a bounded virtual-time window; an event scheduled in the past
// (before the window floor) is the one bug the engine cannot recover
// from, and in a sequential run it only manifests as a silently wrong
// timing curve.
//
// The analyzer inspects every call whose callee has a hierflow
// TimeSinkParams fact — the des schedule/timer primitives (Engine.At,
// Engine.After, Proc.Sleep) and, transitively, any helper whose parameter
// flows into one — and flags two derivations of the time argument:
//
//   - Subtraction against virtual now (t - Now(), transitively through
//     locals): if the minuend is not provably in the future the result is
//     negative and the schedule lands in the past. Compute durations the
//     other way around or re-derive the deadline.
//
//   - A value derived from now that was captured before a yield point
//     (Sleep/Park/Await, transitively) in the same function: now has
//     advanced across the yield, so the captured timestamp is stale and
//     any schedule computed from it can be in the past.
//
// Both rules are lexical approximations of the runtime ordering (the
// house style: under-approximate, suppressible). A finding that is safe
// by construction takes //lint:ignore vtmono <reason>.
var VtMonoAnalyzer = &Analyzer{
	Name:    "vtmono",
	Doc:     "flags schedule/timer time arguments that can derive from stale or subtracted virtual-now reads",
	Applies: internalOnly,
	Run:     runVtMono,
}

func runVtMono(pass *Pass) {
	in := pass.Flow
	for _, fi := range in.Funcs {
		yields := fi.YieldSites()
		for _, c := range fi.Calls {
			for _, arg := range in.SinkArgs(c) {
				callee := c.Callee.Name()

				// Rule: the argument derives from `x - now` somewhere.
				subSeed := func(e ast.Expr) bool {
					b, ok := e.(*ast.BinaryExpr)
					if !ok || b.Op != token.SUB {
						return false
					}
					tainted, _ := fi.Trace(b.Y, in.NowSeed)
					return tainted
				}
				if ok, _ := fi.Trace(arg, subSeed); ok {
					pass.Reportf(arg.Pos(),
						"time argument of %s derives from subtraction against virtual now; if now has passed the minuend this schedules in the past — derive the delay before reading now, or justify with //lint:ignore vtmono",
						callee)
					continue
				}

				// Rule: now was captured before a yield point that precedes
				// this schedule — the timestamp is stale by the yield's
				// virtual-time advance.
				if ok, origin := fi.Trace(arg, in.NowSeed); ok {
					for _, y := range yields {
						if origin < y && y < c.Expr.Pos() {
							pass.Reportf(arg.Pos(),
								"time argument of %s derives from virtual now captured before the yield at line %d; now has advanced across the yield, so this can schedule in the past",
								callee, in.Fset.Position(y).Line)
							break
						}
					}
				}
			}
		}
	}
}
