// Package lint is hierlint's analysis framework: a small, stdlib-only
// (go/ast + go/types) multi-analyzer pass that enforces the simulator's
// core invariants at analysis time instead of debugging time.
//
// The reproduction's claims rest on two properties the compiler cannot
// check:
//
//   - Determinism. Virtual time must come from the DES engine
//     (internal/des), never the host clock, and no unseeded randomness or
//     map-iteration-order-dependent output may leak into internal/.
//     Otherwise two runs of the same experiment diverge and the paper's
//     figures stop being reproducible.
//
//   - Liveness and hygiene of the simulated MPI layer. A leaked
//     Isend/Irecv request or a silently discarded error from the runtime
//     turns into a simulated deadlock or a dropped message that only
//     manifests as a subtly wrong timing curve.
//
// Each Analyzer inspects one invariant. Diagnostics can be suppressed with
// a trailing or preceding directive comment:
//
//	//lint:ignore <analyzer> <reason>
//
// which silences that analyzer on the directive's own line and on the line
// immediately below it. The reason is mandatory: a directive that does not
// say why the finding is safe suppresses nothing and is itself reported.
// See docs/STATIC_ANALYSIS.md for the catalogue.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"time"

	"hierknem/internal/lint/flow"
)

// Diagnostic is one finding, positioned in the analyzed source.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	Flow     *flow.Info // hierflow dataflow view of the same variant

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Fset, Files, Types and Info are shorthands into the loaded package.
func (p *Pass) Fset() *token.FileSet  { return p.Pkg.Fset }
func (p *Pass) Files() []*ast.File    { return p.Pkg.Files }
func (p *Pass) Types() *types.Package { return p.Pkg.Types }
func (p *Pass) Info() *types.Info     { return p.Pkg.TypesInfo }

// ObjectOf resolves the identifier via the package's type info.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object { return p.Pkg.TypesInfo.ObjectOf(id) }

// Analyzer is one invariant checker.
type Analyzer struct {
	Name string // short lowercase identifier, used in directives and output
	Doc  string // one-line description

	// Applies filters packages; nil means the analyzer runs everywhere.
	Applies func(pkgPath string) bool

	Run func(*Pass)
}

// Analyzers is the registry, in deterministic (registration) order.
var Analyzers = []*Analyzer{
	DeterminismAnalyzer,
	RequestHygieneAnalyzer,
	ErrcheckAnalyzer,
	BufferEscapeAnalyzer,
	RunIsolationAnalyzer,
	PoolReturnAnalyzer,
	TagSpaceAnalyzer,
	VtMonoAnalyzer,
	ConfineAnalyzer,
	AtomicFieldAnalyzer,
	BracketAnalyzer,
	PhasesafeAnalyzer,
}

// ByName returns the registered analyzer with that name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range Analyzers {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// internalOnly scopes an analyzer to the simulator core: any package with an
// internal/ path element. cmd/ and examples/ may talk to the host freely.
func internalOnly(pkgPath string) bool {
	return strings.Contains(pkgPath, "internal/")
}

// AnalyzerTiming is the wall-clock cost of one analyzer on one package
// variant, for the driver's -json timing output.
type AnalyzerTiming struct {
	Analyzer string  `json:"analyzer"`
	Millis   float64 `json:"millis"`
}

// Run applies each analyzer in as to pkg and returns the surviving
// diagnostics in deterministic order (see SortDiagnostics), with one
// "lint"-analyzer finding appended for every malformed //lint:ignore
// directive in the package.
func Run(pkg *Package, as []*Analyzer) []Diagnostic {
	diags, _, _ := RunVariant(pkg, as, nil)
	return diags
}

// RunVariant is Run with the interprocedural machinery exposed: imported
// seeds the package's hierflow facts with its dependencies' summaries, and
// the built flow.Info is returned so the driver can persist this package's
// own facts for its dependents. Malformed hierflow markers are reported
// under the "lint" pseudo-analyzer, exactly like malformed //lint:ignore
// directives. When the variant restricts reporting (Package.ReportFiles),
// diagnostics outside those files are dropped — the plain variant already
// reported them.
func RunVariant(pkg *Package, as []*Analyzer, imported *flow.FactSet) ([]Diagnostic, *flow.Info, []AnalyzerTiming) {
	fl := flow.Build(pkg.PkgPath, pkg.Fset, pkg.Files, pkg.Types, pkg.TypesInfo, imported)
	var diags []Diagnostic
	var timings []AnalyzerTiming
	for _, a := range as {
		if a.Applies != nil && !a.Applies(pkg.PkgPath) {
			continue
		}
		start := time.Now() //lint:ignore determinism wall-clock timing of the lint tooling itself, not simulation state
		pass := &Pass{Analyzer: a, Pkg: pkg, Flow: fl, diags: &diags}
		a.Run(pass)
		timings = append(timings, AnalyzerTiming{
			Analyzer: a.Name,
			Millis:   float64(time.Since(start)) / float64(time.Millisecond), //lint:ignore determinism wall-clock timing of the lint tooling itself, not simulation state
		})
	}
	for _, m := range fl.Markers.Malformed {
		diags = append(diags, Diagnostic{Pos: m.Pos, Analyzer: "lint", Message: m.Message})
	}
	dir := parseDirectives(pkg)
	kept := diags[:0]
	for _, d := range diags {
		if !dir.suppressed(d) {
			kept = append(kept, d)
		}
	}
	kept = append(kept, dir.malformed...)
	if pkg.ReportFiles != nil {
		filtered := kept[:0]
		for _, d := range kept {
			if pkg.ReportFiles[d.Pos.Filename] {
				filtered = append(filtered, d)
			}
		}
		kept = filtered
	}
	SortDiagnostics(kept)
	return kept, fl, timings
}

// SortDiagnostics orders findings by (file, line, analyzer, column, message)
// so hierlint's output is byte-stable across runs regardless of analyzer
// registration order or package load interleaving. The CLI applies it once
// more across all packages before printing.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
}

// pkgPathOf returns the import path of the package an object belongs to, or
// "" for builtins and package-less objects.
func pkgPathOf(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}

// calleeObj resolves the called function or method of call, seeing through
// parentheses; nil when the callee is not a named function (e.g. a func
// value or a conversion).
func calleeObj(info *types.Info, call *ast.CallExpr) types.Object {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if o, ok := info.ObjectOf(fn).(*types.Func); ok {
			return o
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fn]; ok {
			return sel.Obj() // method or field; fields filtered by caller
		}
		if o, ok := info.ObjectOf(fn.Sel).(*types.Func); ok {
			return o // package-qualified function
		}
	}
	return nil
}

// resultTypes returns the result tuple of the called signature, or nil.
func resultTypes(info *types.Info, call *ast.CallExpr) *types.Tuple {
	tv, ok := info.Types[call.Fun]
	if !ok {
		return nil
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return nil
	}
	return sig.Results()
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}
