package lint

// The incremental, parallel hierlint driver. Load (load.go) is the simple
// serial path; Analyze is what cmd/hierlint runs:
//
//   - Packages ("units": one source directory with its test variants) are
//     scheduled over a bounded worker pool in dependency order, so a
//     package always sees its in-module dependencies' hierflow facts.
//
//   - Each unit's result (diagnostics + facts) is cached on disk, keyed by
//     a content hash of everything that can change it: the tool and Go
//     versions, the analyzer selection, every source file's bytes, and the
//     *fact* hashes of the unit's in-module dependencies. Keying on
//     dependency facts instead of dependency sources is the early cutoff:
//     editing a function body in des without changing its summary does not
//     re-analyze the packages that import des.
//
//   - On a fully warm cache the driver never type-checks, never builds
//     export data, and runs zero analyzers — it lists the tree, hashes
//     files, and replays cached diagnostics.
//
// Output is deterministic regardless of worker interleaving: per-unit
// results are merged in listing order and globally re-sorted, so parallel
// runs are byte-identical to -parallel=1 runs.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"time"

	"hierknem/internal/lint/flow"
	"hierknem/internal/phasesafe"
)

// cacheSchema versions the cache entry layout; bump on incompatible change.
// 2: FactSet carries phasesafe RegionFacts.
const cacheSchema = 2

// Options configures one Analyze run.
type Options struct {
	Dir      string   // module directory to run in
	Patterns []string // go list patterns; default ./...

	Analyzers []*Analyzer // default: the full registry
	CacheDir  string      // "" disables the result cache
	Workers   int         // <=0: GOMAXPROCS, capped at 8

	// ManifestPath, when non-empty and the run includes the phasesafe
	// analyzer, asks Analyze to serialize the proved node-phase regions
	// into a guard-elision manifest at that path. The manifest is written
	// only when phasesafe reports nothing: a tree with confinement
	// findings has no proof to hand the runtime. Cached units contribute
	// their regions too — RegionFacts ride the cached fact sets.
	ManifestPath string
}

// UnitStat is one package's cost line for the -json timing output.
type UnitStat struct {
	Pkg       string           `json:"package"`
	CacheHit  bool             `json:"cacheHit"`
	Millis    float64          `json:"millis"`
	Analyzers []AnalyzerTiming `json:"analyzers,omitempty"`
}

// Stats summarizes one Analyze run.
type Stats struct {
	Units     int        `json:"units"`
	CacheHits int        `json:"cacheHits"`
	Analyzed  int        `json:"analyzed"`
	PerUnit   []UnitStat `json:"perUnit,omitempty"`
}

// cacheEntry is the persisted result of one unit under one cache key.
type cacheEntry struct {
	Schema   int           `json:"schema"`
	Diags    []Diagnostic  `json:"diags,omitempty"`
	Facts    *flow.FactSet `json:"facts,omitempty"`
	FactHash string        `json:"factHash"`
}

// unitState tracks one unit through the scheduler.
type unitState struct {
	meta *unitMeta
	deps []*unitState // in-module deps that are part of this run

	waiting int // unresolved deps; scheduler state, guarded by the run mutex

	// results, written once by the worker that owns the unit
	diags    []Diagnostic
	own      *flow.FactSet // this unit's own facts
	exported *flow.FactSet // own + transitive dep facts, what dependents import
	expHash  string
	stat     UnitStat
	err      error
}

// Analyze runs the analyzers over the matched packages with caching and
// bounded parallelism, returning globally sorted diagnostics.
func Analyze(opts Options) ([]Diagnostic, *Stats, error) {
	patterns := opts.Patterns
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	as := opts.Analyzers
	if as == nil {
		as = Analyzers
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
		if workers > 8 {
			workers = 8
		}
	}

	metas, err := listUnits(opts.Dir, patterns)
	if err != nil {
		return nil, nil, err
	}
	mod, err := modulePath(opts.Dir)
	if err != nil {
		return nil, nil, err
	}
	if opts.CacheDir != "" {
		if err := os.MkdirAll(opts.CacheDir, 0o755); err != nil {
			return nil, nil, err
		}
	}

	units := make(map[string]*unitState, len(metas))
	order := make([]*unitState, 0, len(metas))
	for _, m := range metas {
		u := &unitState{meta: m}
		units[m.ImportPath] = u
		order = append(order, u)
	}
	for _, u := range units {
		for _, dep := range unitDeps(u.meta) {
			if dep == u.meta.ImportPath {
				continue // xtest importing its own package
			}
			if d, ok := units[dep]; ok {
				u.deps = append(u.deps, d)
			}
		}
		sort.Slice(u.deps, func(i, j int) bool {
			return u.deps[i].meta.ImportPath < u.deps[j].meta.ImportPath
		})
		u.waiting = len(u.deps)
	}

	exp := newExportResolver(opts.Dir, patterns)

	var (
		mu    sync.Mutex
		ready []*unitState
		done  int
		wake  = sync.NewCond(&mu)
	)
	dependents := map[*unitState][]*unitState{}
	for _, u := range order {
		for _, d := range u.deps {
			dependents[d] = append(dependents[d], u)
		}
		if u.waiting == 0 {
			ready = append(ready, u)
		}
	}
	// Base import edges are acyclic by construction (the compiler rejects
	// import cycles); verify anyway so a listing anomaly surfaces as an
	// error instead of a scheduler deadlock.
	if err := checkAcyclic(order, dependents); err != nil {
		return nil, nil, err
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				for len(ready) == 0 && done < len(order) {
					wake.Wait()
				}
				if done == len(order) && len(ready) == 0 {
					mu.Unlock()
					return
				}
				u := ready[0]
				ready = ready[1:]
				mu.Unlock()

				analyzeUnit(u, opts.Dir, mod, as, opts.CacheDir, exp)

				mu.Lock()
				done++
				for _, dep := range dependents[u] {
					dep.waiting--
					if dep.waiting == 0 {
						ready = append(ready, dep)
					}
				}
				mu.Unlock()
				wake.Broadcast()
			}
		}()
	}
	wg.Wait()

	stats := &Stats{Units: len(order)}
	var all []Diagnostic
	for _, u := range order {
		if u.err != nil {
			return nil, nil, u.err
		}
		all = append(all, u.diags...)
		stats.PerUnit = append(stats.PerUnit, u.stat)
		if u.stat.CacheHit {
			stats.CacheHits++
		} else {
			stats.Analyzed++
		}
	}
	SortDiagnostics(all)

	if opts.ManifestPath != "" {
		if err := emitManifest(opts, mod, as, order, all); err != nil {
			return nil, nil, err
		}
	}
	return all, stats, nil
}

// pinnedManifestSources is the runtime guard surface the phasesafe proof
// reasons about beyond the region files themselves: the confinement guards
// being elided, the point-to-point and communicator layers that feed them,
// and the shared-memory cutoff constant. Editing any of these invalidates
// the proof even if no proved region moved.
var pinnedManifestSources = []string{
	"internal/mpi/comm.go",
	"internal/mpi/confine.go",
	"internal/mpi/p2p.go",
	"internal/shm/shm.go",
}

// emitManifest assembles the guard-elision manifest from the proved regions
// every unit's fact set carries. No-op (without touching an existing
// manifest) when phasesafe was not part of the run or reported findings.
func emitManifest(opts Options, mod string, as []*Analyzer, order []*unitState, all []Diagnostic) error {
	ran := false
	for _, a := range as {
		if a.Name == PhasesafeAnalyzer.Name {
			ran = true
		}
	}
	if !ran {
		return nil
	}
	for _, d := range all {
		if d.Analyzer == PhasesafeAnalyzer.Name {
			return nil // findings mean there is no whole-tree proof to emit
		}
	}
	root, err := filepath.Abs(opts.Dir)
	if err != nil {
		return err
	}
	m := &phasesafe.Manifest{
		Schema:   phasesafe.Schema,
		Module:   mod,
		MinEager: flow.ConfineCutoff,
		Cutoff:   flow.ConfineCutoff,
		Sources:  map[string]string{},
	}
	files := append([]string(nil), pinnedManifestSources...)
	for _, u := range order {
		if u.own == nil {
			continue
		}
		for _, r := range u.own.Regions {
			rel, err := filepath.Rel(root, r.File)
			if err != nil || filepath.IsAbs(rel) {
				rel = r.File // outside the module: record as-is
			}
			rel = filepath.ToSlash(rel)
			m.Regions = append(m.Regions, phasesafe.Region{Func: r.Func, File: rel, Line: r.Line})
			files = append(files, rel)
		}
	}
	for _, f := range files {
		if _, ok := m.Sources[f]; ok {
			continue
		}
		sum, err := phasesafe.HashFile(filepath.Join(root, filepath.FromSlash(f)))
		if err != nil {
			return fmt.Errorf("manifest source %s: %v", f, err)
		}
		m.Sources[f] = sum
	}
	return m.Write(opts.ManifestPath)
}

// unitDeps returns the unit's base-variant imports. Facts flow along base
// import edges only: test variants may import packages that import this one
// back (a legal test-only cycle in Go), so scheduling on test imports would
// deadlock. Test and xtest variants still see the base table, the imported
// facts of base deps, and their own base package's facts (merged in by
// analyzeUnit), which is what the PDES analyzers need in practice.
func unitDeps(m *unitMeta) []string {
	out := append([]string(nil), m.Imports...)
	sort.Strings(out)
	return out
}

// analyzeUnit resolves one unit: cache hit or full load + analyze.
// Dependencies are complete when this runs (scheduler invariant).
func analyzeUnit(u *unitState, dir, mod string, as []*Analyzer, cacheDir string, exp *exportResolver) {
	start := time.Now() //lint:ignore determinism wall-clock timing of the lint tooling itself, not simulation state
	u.stat.Pkg = u.meta.ImportPath

	defer func() {
		u.stat.Millis = float64(time.Since(start)) / float64(time.Millisecond) //lint:ignore determinism wall-clock timing of the lint tooling itself, not simulation state
		// exported facts: own + everything the dependencies export.
		u.exported = flow.NewFactSet()
		for _, d := range u.deps {
			u.exported.Merge(d.exported)
		}
		u.exported.Merge(u.own)
		u.expHash = u.exported.Hash()
	}()

	key, keyErr := unitKey(u, dir, mod, as)
	if cacheDir != "" && keyErr == nil {
		if e := readCache(cacheDir, key); e != nil {
			u.diags = e.Diags
			u.own = e.Facts
			if u.own == nil {
				u.own = flow.NewFactSet()
			}
			u.stat.CacheHit = true
			return
		}
	}

	imported := flow.NewFactSet()
	for _, d := range u.deps {
		imported.Merge(d.exported)
	}

	pkgs, err := loadUnit(u.meta, exp)
	if err != nil {
		u.err = err
		u.own = flow.NewFactSet()
		return
	}
	u.own = flow.NewFactSet()
	for _, pkg := range pkgs {
		diags, fl, timings := RunVariant(pkg, as, imported)
		u.diags = append(u.diags, diags...)
		u.stat.Analyzers = append(u.stat.Analyzers, timings...)
		if pkg.Variant == "" {
			u.own = fl.Own
			// Test variants call into this package: let them see its facts.
			imported.Merge(u.own)
		}
	}
	SortDiagnostics(u.diags)

	if cacheDir != "" && keyErr == nil {
		writeCache(cacheDir, key, &cacheEntry{
			Schema:   cacheSchema,
			Diags:    u.diags,
			Facts:    u.own,
			FactHash: u.own.Hash(),
		})
	}
}

// unitKey hashes everything that can change a unit's result: tool schema,
// Go version, module identity, unit path and directory, the analyzer
// selection (names and docs), every source file's content, and each
// in-module dependency's exported fact hash.
func unitKey(u *unitState, dir, mod string, as []*Analyzer) (string, error) {
	h := sha256.New()
	fmt.Fprintf(h, "schema %d\ngo %s\nmodule %s\nunit %s\ndir %s\n",
		cacheSchema, runtime.Version(), mod, u.meta.ImportPath, u.meta.Dir)
	for _, a := range as {
		fmt.Fprintf(h, "analyzer %s: %s\n", a.Name, a.Doc)
	}
	for _, group := range []struct {
		label string
		files []string
	}{
		{"go", u.meta.GoFiles},
		{"test", u.meta.TestGoFiles},
		{"xtest", u.meta.XTestGoFiles},
	} {
		for _, name := range group.files {
			b, err := os.ReadFile(filepath.Join(u.meta.Dir, name))
			if err != nil {
				return "", err
			}
			sum := sha256.Sum256(b)
			fmt.Fprintf(h, "%s %s %s\n", group.label, name, hex.EncodeToString(sum[:]))
		}
	}
	for _, d := range u.deps {
		fmt.Fprintf(h, "dep %s %s\n", d.meta.ImportPath, d.expHash)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// checkAcyclic runs Kahn's algorithm over the unit graph and errors if any
// unit is unreachable (an import cycle).
func checkAcyclic(order []*unitState, dependents map[*unitState][]*unitState) error {
	waiting := make(map[*unitState]int, len(order))
	var queue []*unitState
	for _, u := range order {
		waiting[u] = len(u.deps)
		if len(u.deps) == 0 {
			queue = append(queue, u)
		}
	}
	seen := 0
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		seen++
		for _, d := range dependents[u] {
			waiting[d]--
			if waiting[d] == 0 {
				queue = append(queue, d)
			}
		}
	}
	if seen != len(order) {
		var stuck []string
		for _, u := range order {
			if waiting[u] > 0 {
				stuck = append(stuck, u.meta.ImportPath)
			}
		}
		return fmt.Errorf("import cycle among packages: %v", stuck)
	}
	return nil
}

func cachePath(cacheDir, key string) string {
	return filepath.Join(cacheDir, key+".json")
}

func readCache(cacheDir, key string) *cacheEntry {
	b, err := os.ReadFile(cachePath(cacheDir, key))
	if err != nil {
		return nil
	}
	var e cacheEntry
	if json.Unmarshal(b, &e) != nil || e.Schema != cacheSchema {
		return nil
	}
	return &e
}

// writeCache persists atomically (rename) so concurrent workers and
// interrupted runs never leave a torn entry. Failures are ignored: the
// cache is an accelerator, not a correctness dependency.
func writeCache(cacheDir, key string, e *cacheEntry) {
	b, err := json.Marshal(e)
	if err != nil {
		return
	}
	tmp, err := os.CreateTemp(cacheDir, "tmp-*")
	if err != nil {
		return
	}
	name := tmp.Name()
	_, werr := tmp.Write(b)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(name)
		return
	}
	if os.Rename(name, cachePath(cacheDir, key)) != nil {
		os.Remove(name)
	}
}

// DefaultCacheDir returns the conventional on-disk cache location for a
// module rooted at dir.
func DefaultCacheDir(dir string) string {
	return filepath.Join(dir, ".hierlint-cache")
}
