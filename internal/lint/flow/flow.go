// Package flow is hierlint's interprocedural dataflow layer ("hierflow").
// It turns one type-checked package (go/ast + go/types, nothing else) into
// the three structures the PDES-precondition analyzers need:
//
//   - Def-use chains per function: every local variable's definition sites
//     (declaration, assignment, range binding, augmented assignment) in
//     lexical order, with position-ordered reaching-definition lookup — a
//     pruned SSA over the AST, precise enough for straight-line staleness
//     and derivation questions, conservative across branches and loops.
//
//   - A call graph: every static call site resolved to its *types.Func,
//     so properties can propagate through helpers instead of stopping at
//     the first function boundary.
//
//   - Summary facts per function (see facts.go), computed to a fixed
//     point over the in-package call graph and seeded from the facts of
//     imported packages, so the analysis is interprocedural across the
//     whole module while each package is still analyzed alone. Facts
//     serialize deterministically; the driver persists them per package
//     and feeds dependents, which is also what makes the result cache's
//     early cutoff sound for fact-dependent analyzers.
//
// Source markers (reason-mandatory, like //lint:ignore) declare the
// domain knowledge the analyzers check against:
//
//	//hierflow:component               on a type: its reachable state is
//	                                   one PDES partition cell (confine)
//	//hierflow:sync <reason>           on a func: designated cross-component
//	                                   membership/sync API (confine)
//	//hierflow:serial <reason>         on/above a go statement: the spawned
//	                                   goroutine is serialized with its
//	                                   spawner (atomicfield)
package flow

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Info is the dataflow view of one loaded package variant.
type Info struct {
	PkgPath   string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info

	Funcs []*FuncInfo // declaration order
	byObj map[*types.Func]*FuncInfo

	Markers  Markers
	Imported *FactSet // dependency facts; may be nil
	Own      *FactSet // this package's computed facts (base for export)
}

// FuncInfo is the def-use view of one function declaration, including any
// function literals nested in its body (their locals share the table —
// types.Var objects are unique, and positions stay lexically ordered).
type FuncInfo struct {
	info *Info
	Decl *ast.FuncDecl
	Obj  *types.Func

	Calls  []Call
	defs   map[*types.Var][]Def
	params map[*types.Var]int // signature param index; receiver = -1
}

// Call is one static call site inside a function.
type Call struct {
	Expr   *ast.CallExpr
	Callee *types.Func // nil for func values, conversions, builtins
}

// Def is one definition of a local variable.
type Def struct {
	Pos       token.Pos
	RHS       ast.Expr // nil for parameters and zero-value declarations
	Range     bool     // RHS is the container being ranged over
	Augmented bool     // op=, ++, --: the prior value flows into this def
}

// Build constructs the dataflow view and computes the package's summary
// facts to a fixed point. imported may be nil.
func Build(pkgPath string, fset *token.FileSet, files []*ast.File, tpkg *types.Package, tinfo *types.Info, imported *FactSet) *Info {
	in := &Info{
		PkgPath:   pkgPath,
		Fset:      fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: tinfo,
		byObj:     map[*types.Func]*FuncInfo{},
		Imported:  imported,
	}
	in.Markers = scanMarkers(fset, files, tinfo)
	for _, f := range files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := tinfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fi := buildFunc(in, fd, obj)
			in.Funcs = append(in.Funcs, fi)
			in.byObj[obj] = fi
		}
	}
	computeFacts(in)
	return in
}

// FuncOf returns the FuncInfo for a declared function, or nil.
func (in *Info) FuncOf(fn *types.Func) *FuncInfo { return in.byObj[fn] }

// buildFunc walks one declaration collecting defs and calls.
func buildFunc(in *Info, fd *ast.FuncDecl, obj *types.Func) *FuncInfo {
	fi := &FuncInfo{info: in, Decl: fd, Obj: obj,
		defs: map[*types.Var][]Def{}, params: map[*types.Var]int{}}
	info := in.TypesInfo

	bindField := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if v, ok := info.Defs[name].(*types.Var); ok {
					fi.defs[v] = append(fi.defs[v], Def{Pos: name.Pos()})
				}
			}
		}
	}
	if fd.Recv != nil {
		bindField(fd.Recv)
		for _, f := range fd.Recv.List {
			for _, name := range f.Names {
				if v, ok := info.Defs[name].(*types.Var); ok {
					fi.params[v] = -1
				}
			}
		}
	}
	bindField(fd.Type.Params)
	bindField(fd.Type.Results)
	if sig, ok := obj.Type().(*types.Signature); ok {
		for i := 0; i < sig.Params().Len(); i++ {
			fi.params[sig.Params().At(i)] = i
		}
	}

	addDef := func(id *ast.Ident, d Def) {
		if id == nil || id.Name == "_" {
			return
		}
		v, ok := info.Defs[id].(*types.Var)
		if !ok {
			v, ok = info.Uses[id].(*types.Var)
		}
		if !ok {
			return
		}
		d.Pos = id.Pos()
		fi.defs[v] = append(fi.defs[v], d)
	}

	ast.Inspect(fd, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			bindField(n.Type.Params)
			bindField(n.Type.Results)
		case *ast.GenDecl:
			if n.Tok != token.VAR {
				return true
			}
			for _, spec := range n.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					var rhs ast.Expr
					switch {
					case len(vs.Values) == len(vs.Names):
						rhs = vs.Values[i]
					case len(vs.Values) == 1:
						rhs = vs.Values[0]
					}
					addDef(name, Def{RHS: rhs})
				}
			}
		case *ast.AssignStmt:
			aug := n.Tok != token.ASSIGN && n.Tok != token.DEFINE
			for i, lhs := range n.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				var rhs ast.Expr
				switch {
				case len(n.Rhs) == len(n.Lhs):
					rhs = n.Rhs[i]
				case len(n.Rhs) == 1:
					rhs = n.Rhs[0]
				}
				addDef(id, Def{RHS: rhs, Augmented: aug})
			}
		case *ast.IncDecStmt:
			if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
				addDef(id, Def{Augmented: true})
			}
		case *ast.RangeStmt:
			if id, ok := n.Key.(*ast.Ident); ok {
				addDef(id, Def{RHS: n.X, Range: true})
			}
			if id, ok := n.Value.(*ast.Ident); ok {
				addDef(id, Def{RHS: n.X, Range: true})
			}
		case *ast.CallExpr:
			fi.Calls = append(fi.Calls, Call{Expr: n, Callee: CalleeFunc(info, n)})
		}
		return true
	})

	for v := range fi.defs {
		ds := fi.defs[v]
		sort.Slice(ds, func(i, j int) bool { return ds[i].Pos < ds[j].Pos })
	}
	return fi
}

// Reaching returns the last definition of v lexically before pos, or nil.
// This is the pruned-SSA approximation: exact on straight-line code,
// conservative across branches (the textually latest prior def wins) and
// loop back-edges (a later-in-body def does not reach an earlier use).
func (fi *FuncInfo) Reaching(v *types.Var, pos token.Pos) *Def {
	ds := fi.defs[v]
	i := sort.Search(len(ds), func(i int) bool { return ds[i].Pos >= pos })
	if i == 0 {
		return nil
	}
	return &ds[i-1]
}

// DefsBefore returns every definition of v lexically before pos. Checkers
// that must hold on all paths (phasesafe) use this instead of Reaching: a
// value is proved only when each definition that could reach the use is.
func (fi *FuncInfo) DefsBefore(v *types.Var, pos token.Pos) []Def {
	ds := fi.defs[v]
	i := sort.Search(len(ds), func(i int) bool { return ds[i].Pos >= pos })
	return ds[:i]
}

// Local reports whether v is one of the function's tracked locals.
func (fi *FuncInfo) Local(v *types.Var) bool { _, ok := fi.defs[v]; return ok }

// ParamIndex returns v's signature parameter index (receiver -1) and
// whether v is a parameter of the function.
func (fi *FuncInfo) ParamIndex(v *types.Var) (int, bool) { i, ok := fi.params[v]; return i, ok }

// CalleeFunc resolves the called function or method of a call expression,
// seeing through parentheses; nil when the callee is not a named function.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if o, ok := info.ObjectOf(fn).(*types.Func); ok {
			return o
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fn]; ok {
			if o, ok := sel.Obj().(*types.Func); ok {
				return o
			}
			return nil
		}
		if o, ok := info.ObjectOf(fn.Sel).(*types.Func); ok {
			return o
		}
	}
	return nil
}

// ReceiverExpr returns the receiver expression of a method call, or nil
// for package-level calls and func values.
func ReceiverExpr(info *types.Info, call *ast.CallExpr) ast.Expr {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if _, ok := info.Selections[sel]; !ok {
		return nil // package-qualified call: X is a package name
	}
	return sel.X
}

// ---- markers ----

// Marker directives carry domain knowledge into the analyzers. sync and
// serial markers are exemptions, so — like //lint:ignore — they must say
// why; a reasonless one declares nothing and is reported as malformed.
const (
	markerComponent = "//hierflow:component"
	markerSync      = "//hierflow:sync"
	markerSerial    = "//hierflow:serial"
)

// Malformed is a marker that cannot take effect (missing reason).
type Malformed struct {
	Pos     token.Position
	Message string
}

// Markers is one package's parsed hierflow directive table.
type Markers struct {
	confined  map[*types.TypeName]bool
	syncFns   map[*types.Func]bool
	serialGo  map[lineKey]bool
	Malformed []Malformed
}

type lineKey struct {
	file string
	line int
}

func scanMarkers(fset *token.FileSet, files []*ast.File, info *types.Info) Markers {
	m := Markers{
		confined: map[*types.TypeName]bool{},
		syncFns:  map[*types.Func]bool{},
		serialGo: map[lineKey]bool{},
	}
	hasMarker := func(cg *ast.CommentGroup, marker string) (found, reasoned bool) {
		if cg == nil {
			return false, false
		}
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, marker)
			if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
				continue
			}
			return true, strings.TrimSpace(rest) != ""
		}
		return false, false
	}
	for _, f := range files {
		for _, d := range f.Decls {
			switch d := d.(type) {
			case *ast.GenDecl:
				if d.Tok != token.TYPE {
					continue
				}
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					for _, cg := range []*ast.CommentGroup{d.Doc, ts.Doc, ts.Comment} {
						if found, _ := hasMarker(cg, markerComponent); found {
							if tn, ok := info.Defs[ts.Name].(*types.TypeName); ok {
								m.confined[tn] = true
							}
						}
					}
				}
			case *ast.FuncDecl:
				if found, reasoned := hasMarker(d.Doc, markerSync); found {
					if !reasoned {
						m.Malformed = append(m.Malformed, Malformed{
							Pos:     fset.Position(d.Pos()),
							Message: "//hierflow:sync without a reason exempts nothing: say why cross-component stores are safe here",
						})
						continue
					}
					if fn, ok := info.Defs[d.Name].(*types.Func); ok {
						m.syncFns[fn] = true
					}
				}
			}
		}
		// serial markers cover their own line and the line below, so both
		// trailing and preceding placement work (same contract as
		// //lint:ignore).
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, markerSerial)
				if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
					continue
				}
				pos := fset.Position(c.Pos())
				if strings.TrimSpace(rest) == "" {
					m.Malformed = append(m.Malformed, Malformed{
						Pos:     pos,
						Message: "//hierflow:serial without a reason exempts nothing: say why the goroutine is serialized with its spawner",
					})
					continue
				}
				m.serialGo[lineKey{pos.Filename, pos.Line}] = true
				m.serialGo[lineKey{pos.Filename, pos.Line + 1}] = true
			}
		}
	}
	return m
}

// SerialGo reports whether the go statement at pos is marked
// //hierflow:serial (spawner-serialized; not a concurrency context).
func (m Markers) SerialGo(pos token.Position) bool {
	return m.serialGo[lineKey{pos.Filename, pos.Line}]
}

// IsConfined reports whether t (or its pointee) is a confinement domain:
// marked //hierflow:component here, or exported as such by a dependency.
func (in *Info) IsConfined(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	tn := named.Obj()
	if in.Markers.confined[tn] {
		return true
	}
	if tn.Pkg() == nil {
		return false
	}
	id := tn.Pkg().Path() + "." + tn.Name()
	return in.Imported != nil && in.Imported.ConfinedTypes[id]
}

// SyncAPI reports whether fn is a designated cross-component sync API:
// marked //hierflow:sync here, or exported as such by a dependency.
func (in *Info) SyncAPI(fn *types.Func) bool {
	if fn == nil {
		return false
	}
	if in.Markers.syncFns[fn] {
		return true
	}
	return in.FactFor(fn).SyncAPI
}
