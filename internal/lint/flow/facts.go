package flow

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Fact is one function's exported summary: what the analyzers need to know
// about a call without seeing its body. Facts are computed per package to
// a fixed point over the in-package call graph, seeded from imported facts
// and the base table below, then persisted by the driver so dependents see
// through cross-package calls.
type Fact struct {
	// Yields: calling this function can suspend the calling process at a
	// virtual-time yield point (des Sleep/Park/Await, transitively).
	Yields bool `json:"yields,omitempty"`
	// NowResults: result indices whose value derives from virtual now.
	NowResults []int `json:"nowResults,omitempty"`
	// TimeSinkParams: parameter indices that flow into a schedule/timer
	// time argument (des At/After/Sleep, transitively).
	TimeSinkParams []int `json:"timeSinkParams,omitempty"`
	// CrossStores: (src, dst) parameter index pairs (receiver = -1) where
	// the value of src is stored into state reachable from dst.
	CrossStores [][2]int `json:"crossStores,omitempty"`
	// SyncAPI: designated cross-component sync API (//hierflow:sync).
	SyncAPI bool `json:"syncAPI,omitempty"`

	// ---- phasesafe confinement summary (see lint/phasesafe.go) ----
	//
	// The May* bits say a call can violate node-phase confinement no
	// matter what the caller proves about its arguments; the Confine*
	// index sets are the residual obligations a call site must discharge
	// (every listed communicator proved intra-node, every listed size
	// proved under the eager/fabric cutoff) for the call to be safe
	// inside an EnterNodePhase/ExitNodePhase region.

	// MayCrossNodeSend: a send or receive can reach a communicator the
	// caller cannot prove intra-node.
	MayCrossNodeSend bool `json:"mayCrossNodeSend,omitempty"`
	// MayWildcardRecvMultiNode: a wildcard (AnySource) receive can be
	// posted on a communicator not proved intra-node.
	MayWildcardRecvMultiNode bool `json:"mayWildcardRecvMultiNode,omitempty"`
	// MaySplit: can call (*mpi.Comm).Split (forbidden inside a phase).
	MaySplit bool `json:"maySplit,omitempty"`
	// MayFabricTouch: can start a fabric flow directly.
	MayFabricTouch bool `json:"mayFabricTouch,omitempty"`
	// MaySendSizeUnbounded: a guarded size reaches a value the caller
	// cannot bound under the eager threshold / fabric bypass cutoff.
	MaySendSizeUnbounded bool `json:"maySendSizeUnbounded,omitempty"`
	// ConfineComms: parameter indices (receiver = -1) that must be
	// intra-node communicators for the function to stay node-confined.
	ConfineComms []int `json:"confineComms,omitempty"`
	// ConfineSizes: parameter indices whose size quantity (the value of
	// an int parameter, the Len of a buffer parameter) must stay under
	// the eager/fabric cutoff.
	ConfineSizes []int `json:"confineSizes,omitempty"`
	// WildcardParams: source-rank parameter indices where AnySource
	// selects a wildcard receive (flavor of the report when the
	// corresponding communicator is unproven).
	WildcardParams []int `json:"wildcardParams,omitempty"`
	// BufLen: for a function returning a buffer, the parameter index
	// whose value is the returned buffer's length (singleton).
	BufLen []int `json:"bufLen,omitempty"`
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func (f Fact) empty() bool {
	return !f.Yields && !f.SyncAPI &&
		len(f.NowResults) == 0 && len(f.TimeSinkParams) == 0 && len(f.CrossStores) == 0 &&
		!f.MayCrossNodeSend && !f.MayWildcardRecvMultiNode && !f.MaySplit &&
		!f.MayFabricTouch && !f.MaySendSizeUnbounded &&
		len(f.ConfineComms) == 0 && len(f.ConfineSizes) == 0 &&
		len(f.WildcardParams) == 0 && len(f.BufLen) == 0
}

func (f Fact) equal(g Fact) bool {
	if f.Yields != g.Yields || f.SyncAPI != g.SyncAPI ||
		f.MayCrossNodeSend != g.MayCrossNodeSend ||
		f.MayWildcardRecvMultiNode != g.MayWildcardRecvMultiNode ||
		f.MaySplit != g.MaySplit || f.MayFabricTouch != g.MayFabricTouch ||
		f.MaySendSizeUnbounded != g.MaySendSizeUnbounded ||
		!intsEqual(f.NowResults, g.NowResults) ||
		!intsEqual(f.TimeSinkParams, g.TimeSinkParams) ||
		!intsEqual(f.ConfineComms, g.ConfineComms) ||
		!intsEqual(f.ConfineSizes, g.ConfineSizes) ||
		!intsEqual(f.WildcardParams, g.WildcardParams) ||
		!intsEqual(f.BufLen, g.BufLen) ||
		len(f.CrossStores) != len(g.CrossStores) {
		return false
	}
	for i := range f.CrossStores {
		if f.CrossStores[i] != g.CrossStores[i] {
			return false
		}
	}
	return true
}

// FactSet is the serializable fact table of one package (or the merged
// table of a package's dependencies). Function keys are types.Func
// FullName strings — e.g. "(*hierknem/internal/des.Proc).Sleep" — which
// are stable across loads; confined types are "pkgpath.TypeName".
type FactSet struct {
	Funcs         map[string]Fact `json:"funcs,omitempty"`
	ConfinedTypes map[string]bool `json:"confinedTypes,omitempty"`
	// Regions are the EnterNodePhase/ExitNodePhase regions the phasesafe
	// analyzer proved confinement-safe in this package, recorded so proofs
	// ride the driver's fact cache and feed the runtime guard manifest.
	Regions []RegionFact `json:"regions,omitempty"`
}

// RegionFact is one proved node-phase region: the containing function in
// runtime name format (e.g. "hierknem/internal/core.(*Module).Bcast"), the
// source file, and the EnterNodePhase line.
type RegionFact struct {
	Func string `json:"func"`
	File string `json:"file"`
	Line int    `json:"line"`
}

// NewFactSet returns an empty fact set.
func NewFactSet() *FactSet {
	return &FactSet{Funcs: map[string]Fact{}, ConfinedTypes: map[string]bool{}}
}

// Merge adds other's entries into fs (other wins on conflicts).
func (fs *FactSet) Merge(other *FactSet) {
	if other == nil {
		return
	}
	for k, v := range other.Funcs {
		fs.Funcs[k] = v
	}
	for k, v := range other.ConfinedTypes {
		fs.ConfinedTypes[k] = v
	}
	fs.Regions = append(fs.Regions, other.Regions...)
}

// Hash returns a content hash of the fact set's canonical JSON encoding.
// Go's JSON encoder emits map keys sorted, and every slice in a Fact is
// kept sorted by construction, so the hash is deterministic. The driver
// keys dependents' cache entries on this: a source change that leaves a
// package's facts identical does not invalidate its dependents (early
// cutoff).
func (fs *FactSet) Hash() string {
	b, err := json.Marshal(fs)
	if err != nil { // map[string]… of plain structs cannot fail to encode
		panic(err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// baseFacts axiomatizes the DES engine's primitives: the points where
// virtual time is read, where a process yields, and where a time argument
// is consumed. Everything else is derived from these by propagation.
//
//lint:ignore runisolation immutable axiom table: initialized here, only ever read
var baseFacts = map[string]Fact{
	"(*hierknem/internal/des.Proc).Now":        {NowResults: []int{0}},
	"(*hierknem/internal/des.Engine).Now":      {NowResults: []int{0}},
	"(*hierknem/internal/des.Proc).Sleep":      {Yields: true, TimeSinkParams: []int{0}},
	"(*hierknem/internal/des.Proc).Park":       {Yields: true},
	"hierknem/internal/des.Await":              {Yields: true},
	"hierknem/internal/des.AwaitAll":           {Yields: true},
	"hierknem/internal/des.AwaitEnd":           {Yields: true},
	"(*hierknem/internal/des.Engine).At":       {TimeSinkParams: []int{0}},
	"(*hierknem/internal/des.Engine).After":    {TimeSinkParams: []int{0}},
	"(*hierknem/internal/des.Engine).schedule": {TimeSinkParams: []int{0}},
}

// FuncID returns the stable cross-package identity of fn.
func FuncID(fn *types.Func) string { return fn.FullName() }

// FactFor returns the merged fact for fn: this package's computed facts,
// then imported facts, then the base table — with the confinement axiom
// table overlaid last, because the axioms model runtime guard semantics
// (path-sensitive branches like shm.Copy's fabric fallback) that the
// derivation cannot see.
func (in *Info) FactFor(fn *types.Func) Fact {
	if fn == nil {
		return Fact{}
	}
	id := FuncID(fn)
	f, found := Fact{}, false
	if in.Own != nil {
		f, found = in.Own.Funcs[id]
	}
	if !found && in.Imported != nil {
		f, found = in.Imported.Funcs[id]
	}
	if !found {
		f = baseFacts[id]
	}
	if ax, ok := confineAxioms[id]; ok {
		f.overlayConfine(ax)
	}
	return f
}

// overlayConfine replaces f's confinement summary with ax's, leaving the
// vtmono/confine/atomicfield fields alone. Axioms fully specify a
// function's confinement behavior, so the overlay is wholesale.
func (f *Fact) overlayConfine(ax Fact) {
	f.MayCrossNodeSend = ax.MayCrossNodeSend
	f.MayWildcardRecvMultiNode = ax.MayWildcardRecvMultiNode
	f.MaySplit = ax.MaySplit
	f.MayFabricTouch = ax.MayFabricTouch
	f.MaySendSizeUnbounded = ax.MaySendSizeUnbounded
	f.ConfineComms = ax.ConfineComms
	f.ConfineSizes = ax.ConfineSizes
	f.WildcardParams = ax.WildcardParams
	f.BufLen = ax.BufLen
}

// computeFacts iterates the per-function summaries to a fixed point. The
// lattice is finite (flags and index sets bounded by signature size) and
// every transfer is monotone, so iteration terminates; packages are small
// enough that the simple whole-package sweep is fast.
func computeFacts(in *Info) {
	own := NewFactSet()
	for tn := range in.Markers.confined {
		if tn.Pkg() != nil {
			own.ConfinedTypes[tn.Pkg().Path()+"."+tn.Name()] = true
		}
	}
	for fn := range in.Markers.syncFns {
		f := own.Funcs[FuncID(fn)]
		f.SyncAPI = true
		own.Funcs[FuncID(fn)] = f
	}
	in.Own = own

	for round := 0; round <= len(in.Funcs)+1; round++ {
		changed := false
		for _, fi := range in.Funcs {
			id := FuncID(fi.Obj)
			prev := own.Funcs[id]
			next := fi.computeFact()
			next.SyncAPI = prev.SyncAPI
			if !next.equal(prev) {
				if next.empty() {
					delete(own.Funcs, id)
				} else {
					own.Funcs[id] = next
				}
				changed = true
			}
		}
		if !changed {
			return
		}
	}
}

// NowSeed reports whether e is a direct virtual-now read: a call whose
// callee's fact says result 0 derives from now.
func (in *Info) NowSeed(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	fact := in.FactFor(CalleeFunc(in.TypesInfo, call))
	for _, i := range fact.NowResults {
		if i == 0 {
			return true
		}
	}
	return false
}

// SinkArgs returns the (argIndex, expr) pairs of c's time-sink arguments
// according to the callee's fact, or nil.
func (in *Info) SinkArgs(c Call) []ast.Expr {
	if c.Callee == nil {
		return nil
	}
	fact := in.FactFor(c.Callee)
	var out []ast.Expr
	for _, idx := range fact.TimeSinkParams {
		if idx >= 0 && idx < len(c.Expr.Args) {
			out = append(out, c.Expr.Args[idx])
		}
	}
	return out
}

// YieldSites returns the positions of calls in fi that can yield, sorted.
func (fi *FuncInfo) YieldSites() []token.Pos {
	var out []token.Pos
	for _, c := range fi.Calls {
		if c.Callee != nil && fi.info.FactFor(c.Callee).Yields {
			out = append(out, c.Expr.Pos())
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// computeFact derives one function's summary from its body under the
// current fact environment.
func (fi *FuncInfo) computeFact() Fact {
	var f Fact
	in := fi.info

	// Yields: any call to a yielding callee.
	for _, c := range fi.Calls {
		if c.Callee != nil && in.FactFor(c.Callee).Yields {
			f.Yields = true
			break
		}
	}

	// TimeSinkParams: a parameter that flows into a sink's time argument.
	sinkSeen := map[int]bool{}
	for _, c := range fi.Calls {
		for _, arg := range in.SinkArgs(c) {
			for v, idx := range fi.params {
				if idx < 0 || sinkSeen[idx] {
					continue
				}
				if _, basic := v.Type().Underlying().(*types.Basic); !basic {
					continue
				}
				seed := func(e ast.Expr) bool {
					id, ok := e.(*ast.Ident)
					return ok && in.TypesInfo.ObjectOf(id) == v
				}
				if ok, _ := fi.Trace(arg, seed); ok {
					sinkSeen[idx] = true
				}
			}
		}
	}
	for idx := range sinkSeen {
		f.TimeSinkParams = append(f.TimeSinkParams, idx)
	}
	sort.Ints(f.TimeSinkParams)

	// NowResults: a result position whose returned value derives from now.
	nResults := 0
	if sig, ok := fi.Obj.Type().(*types.Signature); ok {
		nResults = sig.Results().Len()
	}
	if nResults > 0 {
		nowSeen := map[int]bool{}
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false // a literal's returns are not the function's
			}
			ret, ok := n.(*ast.ReturnStmt)
			if !ok || len(ret.Results) == 0 {
				return true
			}
			for i, res := range ret.Results {
				if i >= nResults || nowSeen[i] {
					continue
				}
				if ok, _ := fi.Trace(res, in.NowSeed); ok {
					nowSeen[i] = true
				}
			}
			return true
		})
		for i := range nowSeen {
			f.NowResults = append(f.NowResults, i)
		}
		sort.Ints(f.NowResults)
	}

	// CrossStores: a store site whose dst and src root at two distinct
	// parameters couples the caller's arguments.
	pairSeen := map[[2]int]bool{}
	for _, site := range fi.ParamStores() {
		for d := range site.Dst {
			dIdx, dOK := fi.ParamIndex(d)
			if !dOK {
				continue
			}
			for s := range site.Src {
				sIdx, sOK := fi.ParamIndex(s)
				if !sOK || s == d {
					continue
				}
				pairSeen[[2]int{sIdx, dIdx}] = true
			}
		}
	}
	for p := range pairSeen {
		f.CrossStores = append(f.CrossStores, p)
	}
	sort.Slice(f.CrossStores, func(i, j int) bool {
		if f.CrossStores[i][0] != f.CrossStores[j][0] {
			return f.CrossStores[i][0] < f.CrossStores[j][0]
		}
		return f.CrossStores[i][1] < f.CrossStores[j][1]
	})

	fi.confineFact(&f)
	return f
}
