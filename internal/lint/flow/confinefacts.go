package flow

import (
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"
)

// ConfineCutoff is the static size bound the phasesafe proof is computed
// against: the default eager threshold (mpi.Config.EagerThreshold) and the
// fabric bypass cutoff (shm.SmallCopyCutoff) are both 4096, and the runtime
// confinement guards reject any in-phase transfer of >= this many bytes.
// The guard manifest records this value; a world configured with a smaller
// eager threshold refuses to elide against a proof computed at 4096.
const ConfineCutoff = 4096

// confineAxioms models the runtime confinement guards at the API boundary.
// Derived facts cannot see path-sensitive branches (shm.Copy only touches
// the fabric when the calling process is NOT confined; knem.Get copies
// exactly dst.Len() bytes), so the communication primitives are axiomatized
// and everything above them is derived. Entries here override the derived
// confinement summary wholesale (FactFor overlays them last).
//
//lint:ignore runisolation immutable axiom table: initialized here, only ever read
var confineAxioms = map[string]Fact{
	// Point-to-point: the communicator must be intra-node, the payload
	// bounded; a wildcard source on a multi-node communicator panics.
	"(*hierknem/internal/mpi.Proc).Isend": {ConfineComms: []int{0}, ConfineSizes: []int{1}},
	"(*hierknem/internal/mpi.Proc).Send":  {ConfineComms: []int{0}, ConfineSizes: []int{1}},
	"(*hierknem/internal/mpi.Proc).Irecv": {ConfineComms: []int{0}, ConfineSizes: []int{1}, WildcardParams: []int{2}},
	"(*hierknem/internal/mpi.Proc).Recv":  {ConfineComms: []int{0}, ConfineSizes: []int{1}, WildcardParams: []int{2}},
	"(*hierknem/internal/mpi.Proc).SendRecv": {
		ConfineComms: []int{0}, ConfineSizes: []int{1, 4}, WildcardParams: []int{5},
	},
	// Local reduction charges compute on both operand lengths under the
	// same in-phase size guard as the copies.
	"(*hierknem/internal/mpi.Proc).ReduceLocal": {ConfineSizes: []int{2, 3}},

	// Comm machinery: Split rebuilds membership (never node-confined);
	// Barrier is intra-node only when its receiver is; the blackboard is
	// shared memory plus park/wake — safe on any communicator.
	"(*hierknem/internal/mpi.Comm).Split":   {MaySplit: true},
	"(*hierknem/internal/mpi.Comm).Barrier": {ConfineComms: []int{-1}},
	"(*hierknem/internal/mpi.Comm).BBPost":  {},
	"(*hierknem/internal/mpi.Comm).BBWait":  {},
	"(*hierknem/internal/mpi.Comm).BBClear": {},
	"(*hierknem/internal/mpi.Comm).Seq":     {},

	// Shared-memory segment copies: n (resp. the source buffer's length)
	// must stay under the cutoff or the confined branch panics.
	"hierknem/internal/shm.Copy":       {ConfineSizes: []int{5}},
	"hierknem/internal/shm.CopyBuffer": {ConfineSizes: []int{5}},

	// Kernel-assisted single-copy: moves exactly the local buffer's
	// length (reg.buf.Slice(off, dst.Len())); registration is bookkeeping.
	"(*hierknem/internal/knem.Device).Get":        {ConfineSizes: []int{4}},
	"(*hierknem/internal/knem.Device).Put":        {ConfineSizes: []int{4}},
	"(*hierknem/internal/knem.Device).Register":   {},
	"(*hierknem/internal/knem.Device).Deregister": {},

	// Direct fabric flow starts are never node-confined.
	"(*hierknem/internal/fabric.Net).Start":             {MayFabricTouch: true},
	"(*hierknem/internal/fabric.Net).StartClassed":      {MayFabricTouch: true},
	"(*hierknem/internal/fabric.Net).StartAfter":        {MayFabricTouch: true},
	"(*hierknem/internal/fabric.Net).StartAfterClassed": {MayFabricTouch: true},
	"(*hierknem/internal/fabric.Net).StartAfterPath2":   {MayFabricTouch: true},

	// Scratch allocators and views: the result buffer's length is the
	// named size argument, which is how size facts flow through temps.
	"hierknem/internal/coll.Like":              {BufLen: []int{1}},
	"hierknem/internal/core.scratchLike":       {BufLen: []int{1}},
	"(*hierknem/internal/buffer.Buffer).Slice": {BufLen: []int{1}},
	"hierknem/internal/buffer.NewPhantom":      {BufLen: []int{0}},
}

const bufferLenID = "(*hierknem/internal/buffer.Buffer).Len"

// CallArg returns call's argument expression for a fact index: the receiver
// for -1, the positional argument otherwise, nil when out of range.
func CallArg(info *types.Info, call *ast.CallExpr, j int) ast.Expr {
	if j == -1 {
		return ReceiverExpr(info, call)
	}
	if j >= 0 && j < len(call.Args) {
		return call.Args[j]
	}
	return nil
}

// IsBuffer reports whether t is (a pointer to) buffer.Buffer.
func IsBuffer(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	tn := named.Obj()
	return tn.Pkg() != nil && tn.Pkg().Path() == "hierknem/internal/buffer" && tn.Name() == "Buffer"
}

// ConstInt returns e's compile-time integer value, if it has one.
func ConstInt(info *types.Info, e ast.Expr) (int64, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return 0, false
	}
	v := constant.ToInt(tv.Value)
	if v.Kind() != constant.Int {
		return 0, false
	}
	return constant.Int64Val(v)
}

// RuntimeFuncName converts a types.Func FullName to the name format
// runtime.CallersFrames reports, which is what the guard manifest keys
// elision on: "(*pkg/path.T).M" becomes "pkg/path.(*T).M" and
// "(pkg/path.T).M" becomes "pkg/path.T.M".
func RuntimeFuncName(fn *types.Func) string {
	full := fn.FullName()
	if !strings.HasPrefix(full, "(") {
		return full // plain function: pkg/path.F
	}
	end := strings.Index(full, ")")
	if end < 0 {
		return full
	}
	recv, method := full[1:end], full[end+1:] // method includes the leading "."
	ptr := strings.HasPrefix(recv, "*")
	if ptr {
		recv = recv[1:]
	}
	dot := strings.LastIndex(recv, ".")
	if dot < 0 {
		return full
	}
	pkg, typ := recv[:dot], recv[dot+1:]
	if ptr {
		return pkg + ".(*" + typ + ")" + method
	}
	return pkg + "." + typ + method
}

// confineFact derives fi's confinement summary from its calls under the
// current fact environment: obligations a call places on parameters
// propagate to the caller's own obligation sets, and obligations placed on
// anything the caller cannot root in a parameter become May* bits.
func (fi *FuncInfo) confineFact(f *Fact) {
	in := fi.info
	comms := map[int]bool{}
	sizes := map[int]bool{}
	wilds := map[int]bool{}
	for _, c := range fi.Calls {
		if c.Callee == nil {
			continue // indirect calls are reported by the region checker
		}
		cf := in.FactFor(c.Callee)
		f.MaySplit = f.MaySplit || cf.MaySplit
		f.MayFabricTouch = f.MayFabricTouch || cf.MayFabricTouch
		f.MayCrossNodeSend = f.MayCrossNodeSend || cf.MayCrossNodeSend
		f.MayWildcardRecvMultiNode = f.MayWildcardRecvMultiNode || cf.MayWildcardRecvMultiNode
		f.MaySendSizeUnbounded = f.MaySendSizeUnbounded || cf.MaySendSizeUnbounded

		for _, j := range cf.ConfineComms {
			ps, ok := fi.commParams(CallArg(in.TypesInfo, c.Expr, j), 0)
			if !ok {
				if callMayWildcard(in, c, cf) {
					f.MayWildcardRecvMultiNode = true
				} else {
					f.MayCrossNodeSend = true
				}
				continue
			}
			for k := range ps {
				comms[k] = true
			}
		}
		for _, j := range cf.ConfineSizes {
			arg := CallArg(in.TypesInfo, c.Expr, j)
			if arg == nil {
				continue
			}
			var ps map[int]bool
			var ok bool
			if tv, found := in.TypesInfo.Types[arg]; found && IsBuffer(tv.Type) {
				ps, ok = fi.bufParams(arg, 0)
			} else {
				ps, ok = fi.sizeParams(arg, 0)
			}
			if !ok {
				f.MaySendSizeUnbounded = true
				continue
			}
			for k := range ps {
				sizes[k] = true
			}
		}
		for _, j := range cf.WildcardParams {
			if arg := CallArg(in.TypesInfo, c.Expr, j); arg != nil {
				if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
					if v, ok := in.TypesInfo.ObjectOf(id).(*types.Var); ok {
						if idx, isParam := fi.ParamIndex(v); isParam {
							wilds[idx] = true
						}
					}
				}
			}
		}
	}
	f.ConfineComms = sortedKeys(comms)
	f.ConfineSizes = sortedKeys(sizes)
	f.WildcardParams = sortedKeys(wilds)
}

// callMayWildcard reports whether c can post a wildcard receive: any of the
// callee's wildcard params is AnySource (-1) or not statically known.
func callMayWildcard(in *Info, c Call, cf Fact) bool {
	for _, j := range cf.WildcardParams {
		arg := CallArg(in.TypesInfo, c.Expr, j)
		if arg == nil {
			continue
		}
		if v, ok := ConstInt(in.TypesInfo, arg); ok {
			if v < 0 {
				return true
			}
			continue
		}
		return true
	}
	return false
}

func sortedKeys(m map[int]bool) []int {
	if len(m) == 0 {
		return nil
	}
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// commParams roots a communicator expression in the function's parameters:
// the set of parameter indices the value can alias (receiver = -1), or
// !ok when any reaching definition escapes the parameter space.
func (fi *FuncInfo) commParams(e ast.Expr, depth int) (map[int]bool, bool) {
	if e == nil || depth > 8 {
		return nil, false
	}
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil, false
	}
	v, ok := fi.info.TypesInfo.ObjectOf(id).(*types.Var)
	if !ok {
		return nil, false
	}
	out := map[int]bool{}
	idx, isParam := fi.ParamIndex(v)
	if isParam {
		out[idx] = true
	}
	ds := fi.defs[v]
	if !isParam && len(ds) == 0 {
		return nil, false
	}
	for _, d := range ds {
		if d.RHS == nil {
			if isParam {
				continue // the parameter binding itself
			}
			return nil, false
		}
		if d.Range || d.Augmented {
			return nil, false
		}
		ps, ok := fi.commParams(d.RHS, depth+1)
		if !ok {
			return nil, false
		}
		for k := range ps {
			out[k] = true
		}
	}
	return out, true
}

// sizeParams roots an integer size expression: the empty set when it is a
// compile-time constant under the cutoff, the parameter indices whose size
// quantities bound it otherwise.
func (fi *FuncInfo) sizeParams(e ast.Expr, depth int) (map[int]bool, bool) {
	if e == nil || depth > 8 {
		return nil, false
	}
	e = ast.Unparen(e)
	in := fi.info
	if v, ok := ConstInt(in.TypesInfo, e); ok {
		if v >= 0 && v < ConfineCutoff {
			return map[int]bool{}, true
		}
		return nil, false
	}
	switch e := e.(type) {
	case *ast.Ident:
		v, ok := in.TypesInfo.ObjectOf(e).(*types.Var)
		if !ok {
			return nil, false
		}
		out := map[int]bool{}
		idx, isParam := fi.ParamIndex(v)
		if isParam {
			out[idx] = true
		}
		ds := fi.defs[v]
		if !isParam && len(ds) == 0 {
			return nil, false
		}
		for _, d := range ds {
			if d.RHS == nil {
				continue // parameter binding, or zero-value decl (0 is bounded)
			}
			if d.Range || d.Augmented {
				return nil, false
			}
			ps, ok := fi.sizeParams(d.RHS, depth+1)
			if !ok {
				return nil, false
			}
			for k := range ps {
				out[k] = true
			}
		}
		return out, true
	case *ast.CallExpr:
		// conversions (int64(n)) are transparent.
		if tv, ok := in.TypesInfo.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			return fi.sizeParams(e.Args[0], depth+1)
		}
		if fn := CalleeFunc(in.TypesInfo, e); fn != nil && FuncID(fn) == bufferLenID {
			return fi.bufParams(ReceiverExpr(in.TypesInfo, e), depth+1)
		}
	}
	return nil, false
}

// bufParams roots a buffer expression's LENGTH in the parameters: nil
// buffers carry no bytes, parameter buffers are bounded by themselves, and
// allocator/view results (BufLen facts) are bounded by their size argument.
func (fi *FuncInfo) bufParams(e ast.Expr, depth int) (map[int]bool, bool) {
	if e == nil || depth > 8 {
		return nil, false
	}
	e = ast.Unparen(e)
	in := fi.info
	if tv, ok := in.TypesInfo.Types[e]; ok && tv.IsNil() {
		return map[int]bool{}, true
	}
	switch e := e.(type) {
	case *ast.Ident:
		v, ok := in.TypesInfo.ObjectOf(e).(*types.Var)
		if !ok {
			return nil, false
		}
		out := map[int]bool{}
		idx, isParam := fi.ParamIndex(v)
		if isParam {
			out[idx] = true
		}
		ds := fi.defs[v]
		if !isParam && len(ds) == 0 {
			return nil, false
		}
		for _, d := range ds {
			if d.RHS == nil {
				continue // parameter binding, or zero-value decl (nil carries no bytes)
			}
			if d.Range || d.Augmented {
				return nil, false
			}
			ps, ok := fi.bufParams(d.RHS, depth+1)
			if !ok {
				return nil, false
			}
			for k := range ps {
				out[k] = true
			}
		}
		return out, true
	case *ast.CallExpr:
		if fn := CalleeFunc(in.TypesInfo, e); fn != nil {
			if bl := in.FactFor(fn).BufLen; len(bl) == 1 {
				return fi.sizeParams(CallArg(in.TypesInfo, e, bl[0]), depth+1)
			}
		}
	}
	return nil, false
}
