package flow

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Trace reports whether e's value can derive from an expression matched by
// seed, following the def-use chains through local variables, and returns
// the earliest (lexically first) origin position on any derivation path —
// the point the seeded value actually entered the computation, which is
// what staleness-across-yield checks need.
//
// Derivation follows: identifiers (via their reaching definition, plus the
// prior definition for augmented assignments), parentheses, unary +/-/*/&,
// binary operators, and range bindings (an element derives from its
// container). Calls derive only when seed says so (typically via a summary
// fact on the callee); struct fields and map/slice reads do not propagate
// taint — under-approximation is the house style for lint, and every
// analyzer finding is suppressible.
func (fi *FuncInfo) Trace(e ast.Expr, seed func(ast.Expr) bool) (bool, token.Pos) {
	t := &tracer{fi: fi, seed: seed, visiting: map[defKey]bool{}}
	return t.trace(e)
}

type defKey struct {
	v   *types.Var
	pos token.Pos
}

type tracer struct {
	fi       *FuncInfo
	seed     func(ast.Expr) bool
	visiting map[defKey]bool // cycle guard over (var, def) pairs
}

func minPos(a, b token.Pos) token.Pos {
	if !a.IsValid() || (b.IsValid() && b < a) {
		return b
	}
	return a
}

func (t *tracer) trace(e ast.Expr) (bool, token.Pos) {
	if e == nil {
		return false, token.NoPos
	}
	if t.seed(e) {
		return true, e.Pos()
	}
	switch e := e.(type) {
	case *ast.Ident:
		v, ok := t.fi.info.TypesInfo.ObjectOf(e).(*types.Var)
		if !ok || !t.fi.Local(v) {
			return false, token.NoPos
		}
		return t.traceDef(v, t.fi.Reaching(v, e.Pos()))
	case *ast.ParenExpr:
		return t.trace(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.SUB || e.Op == token.ADD || e.Op == token.AND {
			return t.trace(e.X)
		}
	case *ast.StarExpr:
		return t.trace(e.X)
	case *ast.BinaryExpr:
		lt, lp := t.trace(e.X)
		rt, rp := t.trace(e.Y)
		switch {
		case lt && rt:
			return true, minPos(lp, rp)
		case lt:
			return true, lp
		case rt:
			return true, rp
		}
	}
	return false, token.NoPos
}

func (t *tracer) traceDef(v *types.Var, d *Def) (bool, token.Pos) {
	if d == nil {
		return false, token.NoPos
	}
	k := defKey{v, d.Pos}
	if t.visiting[k] {
		return false, token.NoPos
	}
	t.visiting[k] = true
	defer delete(t.visiting, k)

	tainted, origin := false, token.NoPos
	if d.RHS != nil {
		tainted, origin = t.trace(d.RHS)
	}
	if d.Augmented {
		// The prior value flows into this definition (x += e, x++).
		if pt, pp := t.traceDef(v, t.fi.Reaching(v, d.Pos)); pt {
			tainted, origin = true, minPos(origin, pp)
		}
	}
	if tainted && !origin.IsValid() {
		origin = d.Pos
	}
	return tainted, origin
}

// ---- confined-value roots (confine analyzer + CrossStores facts) ----

// RootsOf computes the set of confinement roots e's value can be reachable
// from: the local variables of confined type (see Info.IsConfined) whose
// state the value derives from. Aliases (a := b) collapse onto the
// original root; values freshly constructed inside the function root at
// the variable they are bound to; scalar (basic-typed) expressions carry
// no roots — copying a number across components shares no mutable state.
func (fi *FuncInfo) RootsOf(e ast.Expr) map[*types.Var]bool {
	return fi.rootsOf(e, fi.confinedRoot, map[defKey]bool{})
}

// confinedRoot is the analyzer-side root predicate: locals of component
// type. paramRoot is the fact-side predicate: any parameter, so helper
// summaries (CrossStores) are computed without knowing the caller's
// confinement and apply wherever confined values are passed in.
func (fi *FuncInfo) confinedRoot(v *types.Var) bool { return fi.info.IsConfined(v.Type()) }
func (fi *FuncInfo) paramRoot(v *types.Var) bool    { _, ok := fi.params[v]; return ok }

func (fi *FuncInfo) rootsOf(e ast.Expr, pred func(*types.Var) bool, visiting map[defKey]bool) map[*types.Var]bool {
	if e == nil {
		return nil
	}
	info := fi.info.TypesInfo
	if tv, ok := info.Types[e]; ok && tv.Type != nil {
		if _, basic := tv.Type.Underlying().(*types.Basic); basic {
			return nil
		}
	}
	switch e := e.(type) {
	case *ast.Ident:
		v, ok := info.ObjectOf(e).(*types.Var)
		if !ok || !fi.Local(v) {
			return nil
		}
		d := fi.Reaching(v, e.Pos())
		if d != nil && (d.RHS != nil || d.Range) {
			k := defKey{v, d.Pos}
			if !visiting[k] {
				visiting[k] = true
				roots := fi.rootsOf(d.RHS, pred, visiting)
				delete(visiting, k)
				if len(roots) > 0 {
					return roots // alias / derived: keep the original roots
				}
			}
		}
		if pred(v) {
			return map[*types.Var]bool{v: true}
		}
		return nil
	case *ast.ParenExpr:
		return fi.rootsOf(e.X, pred, visiting)
	case *ast.StarExpr:
		return fi.rootsOf(e.X, pred, visiting)
	case *ast.UnaryExpr:
		return fi.rootsOf(e.X, pred, visiting)
	case *ast.SelectorExpr:
		return fi.rootsOf(e.X, pred, visiting)
	case *ast.IndexExpr:
		return fi.rootsOf(e.X, pred, visiting)
	case *ast.SliceExpr:
		return fi.rootsOf(e.X, pred, visiting)
	case *ast.CompositeLit:
		var out map[*types.Var]bool
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			out = unionRoots(out, fi.rootsOf(el, pred, visiting))
		}
		return out
	case *ast.CallExpr:
		// A call's result conservatively carries its arguments' (and
		// receiver's) roots: append, helpers returning a view, etc.
		var out map[*types.Var]bool
		if recv := ReceiverExpr(info, e); recv != nil {
			out = unionRoots(out, fi.rootsOf(recv, pred, visiting))
		}
		for _, arg := range e.Args {
			out = unionRoots(out, fi.rootsOf(arg, pred, visiting))
		}
		return out
	}
	return nil
}

func unionRoots(a, b map[*types.Var]bool) map[*types.Var]bool {
	if len(b) == 0 {
		return a
	}
	if a == nil {
		a = map[*types.Var]bool{}
	}
	for v := range b {
		a[v] = true
	}
	return a
}

// StoreSite is one statement that stores a value into state reachable from
// a confined root: Dst holds the roots of the store target's base, Src the
// roots of the stored value. A site with two distinct roots across Dst and
// Src is a cross-component store.
type StoreSite struct {
	Pos  token.Pos
	Dst  map[*types.Var]bool
	Src  map[*types.Var]bool
	Via  *types.Func // non-nil: implied by the callee's CrossStores fact
	Args [2]ast.Expr // for Via sites: the (src, dst) argument expressions
}

// ConfinedStores scans the function for stores into confined-rooted state:
// direct assignments through a selector/index chain, and calls whose callee
// has a CrossStores summary fact (the interprocedural case). ParamStores is
// the same scan rooted at the function's parameters instead — the transfer
// function that derives the function's own CrossStores fact.
func (fi *FuncInfo) ConfinedStores() []StoreSite { return fi.stores(fi.confinedRoot) }

// ParamStores returns the store sites rooted at parameters (see above).
func (fi *FuncInfo) ParamStores() []StoreSite { return fi.stores(fi.paramRoot) }

func (fi *FuncInfo) stores(pred func(*types.Var) bool) []StoreSite {
	rootsOf := func(e ast.Expr) map[*types.Var]bool {
		return fi.rootsOf(e, pred, map[defKey]bool{})
	}
	var sites []StoreSite
	ast.Inspect(fi.Decl, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				base := storeBase(lhs)
				if base == nil {
					continue
				}
				dst := rootsOf(base)
				if len(dst) == 0 {
					continue
				}
				var rhs ast.Expr
				switch {
				case len(n.Rhs) == len(n.Lhs):
					rhs = n.Rhs[i]
				case len(n.Rhs) == 1:
					rhs = n.Rhs[0]
				}
				src := rootsOf(rhs)
				if len(src) == 0 {
					continue
				}
				sites = append(sites, StoreSite{Pos: lhs.Pos(), Dst: dst, Src: src})
			}
		case *ast.CallExpr:
			callee := CalleeFunc(fi.info.TypesInfo, n)
			if callee == nil || fi.info.SyncAPI(callee) {
				return true
			}
			fact := fi.info.FactFor(callee)
			if len(fact.CrossStores) == 0 {
				return true
			}
			recv := ReceiverExpr(fi.info.TypesInfo, n)
			argAt := func(idx int) ast.Expr {
				if idx == -1 {
					return recv
				}
				if idx >= 0 && idx < len(n.Args) {
					return n.Args[idx]
				}
				return nil
			}
			for _, pair := range fact.CrossStores {
				srcArg, dstArg := argAt(pair[0]), argAt(pair[1])
				if srcArg == nil || dstArg == nil {
					continue
				}
				src, dst := rootsOf(srcArg), rootsOf(dstArg)
				if len(src) == 0 || len(dst) == 0 {
					continue
				}
				sites = append(sites, StoreSite{
					Pos: n.Pos(), Dst: dst, Src: src,
					Via: callee, Args: [2]ast.Expr{srcArg, dstArg},
				})
			}
		}
		return true
	})
	return sites
}

// storeBase returns the root expression of a store target that writes into
// an object's reachable state (selector or index chain), or nil for plain
// variable assignments.
func storeBase(lhs ast.Expr) ast.Expr {
	switch e := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		return e.X
	case *ast.IndexExpr:
		return e.X
	case *ast.StarExpr:
		return e.X
	}
	return nil
}

// DistinctRoots returns a pair of distinct roots across dst and src, if
// any — the witness that a store couples two confinement domains. The
// lexicographically first pair is chosen so diagnostics are deterministic.
func (s StoreSite) DistinctRoots() (dst, src *types.Var, ok bool) {
	for _, d := range sortedRoots(s.Dst) {
		for _, r := range sortedRoots(s.Src) {
			if d != r {
				return d, r, true
			}
		}
	}
	return nil, nil, false
}

func sortedRoots(m map[*types.Var]bool) []*types.Var {
	out := make([]*types.Var, 0, len(m))
	for v := range m {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name() != out[j].Name() {
			return out[i].Name() < out[j].Name()
		}
		return out[i].Pos() < out[j].Pos()
	})
	return out
}
