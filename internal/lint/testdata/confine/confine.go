// Package confine exercises the confine analyzer: stores that couple two
// //hierflow:component confinement domains outside //hierflow:sync APIs.
package confine

// cell is one partition domain.
//
//hierflow:component
type cell struct {
	items []*item
	peer  *cell
	name  string
}

type item struct{ n int }

// leakItem stores a value reachable from a into b's reachable set.
func leakItem(a, b *cell) {
	b.items = append(b.items, a.items[0]) // want `stores state reachable from component "a" into component "b"`
}

// aliasLeak aliases one component into another's field.
func aliasLeak(a, b *cell) {
	other := b
	a.peer = other // want `stores state reachable from component "b" into component "a"`
}

// put is an unmarked helper; its CrossStores fact says "param 1 is stored
// into param 0's reachable state".
func put(dst *cell, it *item) {
	dst.items = append(dst.items, it)
}

// throughHelper leaks interprocedurally via put's summary fact.
func throughHelper(a, b *cell) {
	put(b, a.items[0]) // want `call to put stores state reachable from component "a" into component "b"`
}

// adopt is the designated membership-transfer API.
//
//hierflow:sync membership transfer; exercised by the fixture only
func adopt(dst, src *cell) {
	dst.items = append(dst.items, src.items...)
	src.items = nil
}

// viaSync is clean: the transfer goes through the allowlisted API.
func viaSync(a, b *cell) {
	adopt(a, b)
}

// scalarCopy is clean: copying a scalar shares no mutable state.
func scalarCopy(a, b *cell) {
	b.name = a.name
	_ = a.items
}

// internalMove is clean: both sides root at the same component.
func internalMove(a *cell) {
	a.items = append(a.items, a.items[0])
	a.peer = a
}

// justified is clean: the coupling store is suppressed with a reason.
func justified(a, b *cell) {
	//lint:ignore confine read-only debug aliasing, never written through
	b.peer = a
}
