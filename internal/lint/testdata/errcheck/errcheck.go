// Package errcheck is a hierlint golden fixture for the errcheck analyzer:
// discarded error returns from module-internal APIs, alongside checked and
// deliberately-blanked calls that must not be flagged.
package errcheck

import (
	"fmt"

	"hierknem/internal/des"
	"hierknem/internal/topology"
)

// dropRun ignores the engine's deadlock/horizon report.
func dropRun(eng *des.Engine) {
	eng.Run() // want `statement discards the error returned by des\.Run`
}

// dropValidate ignores a spec validation failure.
func dropValidate(spec *topology.Spec) {
	spec.Validate() // want `statement discards the error returned by topology\.Validate`
}

// dropBuild ignores both results of a multi-return constructor.
func dropBuild(spec topology.Spec) {
	topology.Build(spec) // want `statement discards the error returned by topology\.Build`
}

// dropAsync loses errors behind go and defer statements.
func dropAsync(eng *des.Engine) {
	go eng.Run()    // want `go statement discards the error returned by des\.Run`
	defer eng.Run() // want `defer statement discards the error returned by des\.Run`
}

// checked is the expected shape: the error is propagated.
func checked(eng *des.Engine) error {
	if err := eng.Run(); err != nil {
		return err
	}
	return nil
}

// blanked is a visible, deliberate discard and is left alone.
func blanked(eng *des.Engine) {
	_ = eng.Run()
}

// stdlibIsNotOurs: fmt.Println also returns an error, but stdlib discipline
// is out of scope — only module APIs are invariants.
func stdlibIsNotOurs() {
	fmt.Println("timing table")
}
