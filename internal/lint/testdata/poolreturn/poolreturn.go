// Package poolreturn is a hierlint golden fixture for the pool-return
// analyzer: free-list allocations that never reach a release, and
// references used after their record was recycled, alongside clean
// lifecycles that must not be flagged.
package poolreturn

type rec struct {
	id   int
	next *rec
}

type pool struct {
	free []*rec
	live *rec
}

// allocRec is the free-list allocation shape the analyzer tracks: an
// in-module alloc* function returning a pointer.
func (pl *pool) allocRec() *rec {
	if n := len(pl.free); n > 0 {
		r := pl.free[n-1]
		pl.free = pl.free[:n-1]
		return r
	}
	return &rec{}
}

func (pl *pool) release(r *rec) {
	pl.free = append(pl.free, r)
}

func (r *rec) release() {}

func recycleRec(pl *pool, r *rec) {
	pl.free = append(pl.free, r)
}

func discard(pl *pool) {
	pl.allocRec() // want `pooled allocRec result discarded`
}

func blank(pl *pool) {
	_ = pl.allocRec() // want `pooled allocRec result assigned to blank`
}

// neverReleased initializes the record but neither releases nor hands it
// off: field writes alone are not consumption.
func neverReleased(pl *pool) {
	r := pl.allocRec() // want `pooled record from allocRec bound to r but never released or handed off`
	r.id = 7
	r.next = nil
}

func useAfterRelease(pl *pool) int {
	r := pl.allocRec()
	r.id = 1
	pl.release(r)
	return r.id // want `use of r after release`
}

func writeAfterMethodRelease(pl *pool) {
	r := pl.allocRec()
	r.release()
	r.id = 2 // want `use of r after release`
}

// cleanRelease is the canonical lifecycle: allocate, initialize, release.
func cleanRelease(pl *pool) {
	r := pl.allocRec()
	r.id = 3
	pl.release(r)
}

// cleanRecycle hands the record to a recycle* helper.
func cleanRecycle(pl *pool) {
	r := pl.allocRec()
	recycleRec(pl, r)
}

// cleanHandoff transfers the release obligation by storing the record.
func cleanHandoff(pl *pool) {
	r := pl.allocRec()
	pl.live = r
}

// cleanReturn transfers it by returning.
func cleanReturn(pl *pool) *rec {
	r := pl.allocRec()
	r.id = 4
	return r
}

// cleanReassign: a reassignment after release starts a fresh lifecycle, so
// the later uses are not use-after-release.
func cleanReassign(pl *pool) {
	r := pl.allocRec()
	pl.release(r)
	r = pl.allocRec()
	r.id = 5
	pl.release(r)
}

// Sharded free list: per-domain heads with cache-line padding, the shape
// the fabric flow pool and the mpi envelope pools take under parallel
// in-window execution. The analyzer must see through the shard selector:
// allocation and release both go via a *shard lvalue, not the pool itself.
type shard struct {
	free []*rec
	_    [64 - 24]byte
}

type shardedPool struct {
	shards [8]shard
	cur    int
}

func (pl *shardedPool) shard() *shard { return &pl.shards[pl.cur&7] }

// allocShardRec is the sharded allocation shape: pop from the selected
// shard's head, fall back to the heap.
func (pl *shardedPool) allocShardRec() *rec {
	sh := pl.shard()
	if n := len(sh.free); n > 0 {
		r := sh.free[n-1]
		sh.free = sh.free[:n-1]
		return r
	}
	return &rec{}
}

func (pl *shardedPool) release(r *rec) {
	sh := pl.shard()
	sh.free = append(sh.free, r)
}

func shardDiscard(pl *shardedPool) {
	pl.allocShardRec() // want `pooled allocShardRec result discarded`
}

func shardBlank(pl *shardedPool) {
	_ = pl.allocShardRec() // want `pooled allocShardRec result assigned to blank`
}

func shardNeverReleased(pl *shardedPool) {
	r := pl.allocShardRec() // want `pooled record from allocShardRec bound to r but never released or handed off`
	r.id = 8
}

func shardUseAfterRelease(pl *shardedPool) int {
	r := pl.allocShardRec()
	r.id = 9
	pl.release(r)
	return r.id // want `use of r after release`
}

// shardClean is the canonical sharded lifecycle: allocate from the shard,
// initialize, release back through the shard head.
func shardClean(pl *shardedPool) {
	r := pl.allocShardRec()
	r.id = 10
	pl.release(r)
}
