// Package tagspace is a hierlint golden fixture for the tag-space analyzer:
// point-to-point tags invented outside the algorithm's reserved range and
// colliding tag-base constants, alongside correctly derived tags that must
// not be flagged.
package tagspace

import (
	"hierknem/internal/buffer"
	"hierknem/internal/mpi"
)

// algTag is this fixture algorithm's reserved base: [1<<20, 1<<21).
const algTag = 1 << 20

const (
	otherTag = 1 << 18
	dupTag   = 1 << 18 // want `tag constant dupTag duplicates value 262144 of otherTag`
)

func inRange(p *mpi.Proc, c *mpi.Comm, b *buffer.Buffer) {
	p.Send(c, b, 1, algTag+3)
	p.Recv(c, b, 1, algTag+3)
}

func wildcardOK(p *mpi.Proc, c *mpi.Comm, b *buffer.Buffer) {
	p.Recv(c, b, mpi.AnySource, mpi.AnyTag)
}

func bareLiteral(p *mpi.Proc, c *mpi.Comm, b *buffer.Buffer) {
	p.Send(c, b, 1, 7) // want `tag 7 is outside every reserved tag range`
}

func outOfRange(p *mpi.Proc, c *mpi.Comm, b *buffer.Buffer) {
	p.Send(c, b, 1, algTag*2) // want `tag 2097152 is outside every reserved tag range`
}

// derived tags reference the base symbolically: exact values are not
// constant-foldable but the provenance is.
func derived(p *mpi.Proc, c *mpi.Comm, b *buffer.Buffer, s int) {
	r := p.Irecv(c, b, 1, algTag+s)
	tag := algTag + 2*s
	p.Send(c, b, 1, tag)
	p.Wait(r)
}

func underived(p *mpi.Proc, c *mpi.Comm, b *buffer.Buffer, s int) {
	t := 3 * s
	p.Send(c, b, 1, t) // want `tag variable t is not derived from a reserved tag base`
}

// viaParam trusts the caller: the parameter's producer is checked at its
// own call site.
func viaParam(p *mpi.Proc, c *mpi.Comm, b *buffer.Buffer, tag int) {
	p.Send(c, b, 1, tag)
}

func sendrecv(p *mpi.Proc, c *mpi.Comm, sb, rb *buffer.Buffer) {
	p.SendRecv(c, sb, 1, algTag+9, rb, 1, 5) // want `tag 5 is outside every reserved tag range`
}

// localBase reserves a range with a function-local constant, like the
// mvapich2 module's leader ring.
func localBase(p *mpi.Proc, c *mpi.Comm, b *buffer.Buffer, s int) {
	const tagRing = 1 << 19
	p.Send(c, b, 1, tagRing+s)
}
