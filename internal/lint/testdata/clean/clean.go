// Package clean is the hierlint golden fixture that must produce zero
// diagnostics under every analyzer: hygienic request lifecycles, checked
// errors, seeded randomness, sorted map output, and one deliberately
// suppressed violation exercising the //lint:ignore directive.
package clean

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"hierknem/internal/buffer"
	"hierknem/internal/des"
	"hierknem/internal/mpi"
)

// exchange is a fully hygienic ping-pong: post both, wait both.
func exchange(p *mpi.Proc, c *mpi.Comm, sb, rb *buffer.Buffer) {
	r := p.Irecv(c, rb, 1, 0)
	s := p.Isend(c, sb, 1, 0)
	p.Wait(r)
	p.Wait(s)
}

// run propagates the engine's error.
func run(eng *des.Engine) error {
	return eng.Run()
}

// seededDraw threads an explicit seed into a private generator.
func seededDraw(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}

// printSorted emits map contents in sorted-key order.
func printSorted(m map[string]float64) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("%s=%g\n", k, m[k])
	}
}

// hostPause genuinely wants the wall clock (host-side tooling); the
// directive records why and suppresses the determinism finding. Both
// placements are exercised: trailing on the offending line, and on the
// line immediately above it.
func hostPause() {
	time.Sleep(time.Millisecond) //lint:ignore determinism host-side fixture demonstrating trailing suppression
	//lint:ignore determinism preceding-line suppression of the line below
	time.Sleep(time.Microsecond)
}

// hits is host-side tooling state, never reachable from a simulation run;
// the directive records that and suppresses the run-isolation finding.
var hits int //lint:ignore runisolation host-side fixture counter, not simulation state

func recordHit() { hits++ }

// deadline schedules from a stale now read on purpose; the directive
// records why that is safe and suppresses the vtmono finding.
func deadline(e *des.Engine, p *des.Proc, fn func()) {
	horizon := p.Now() + 1e12
	p.Sleep(1)
	//lint:ignore vtmono horizon is beyond any reachable virtual time in the fixture
	e.At(horizon, fn)
}

// domain is a confinement cell for the suppressed confine case below.
//
//hierflow:component
type domain struct {
	refs []*domain
}

// inspectPeer aliases one domain into another read-only; the directive
// records that and suppresses the confine finding.
func inspectPeer(a, b *domain) {
	//lint:ignore confine read-only diagnostic alias, never written through
	a.refs = append(a.refs, b)
}

// probe is written by its goroutine and read ambiently, but the consumer
// provably waits for the channel first; the directive records that and
// suppresses the atomicfield finding.
type probe struct {
	//lint:ignore atomicfield read happens after the done-channel sync in sample
	val  int
	done chan struct{}
}

func sample(pr *probe) int {
	go func() {
		pr.val = 42
		close(pr.done)
	}()
	<-pr.done
	return pr.val
}
