// Package bufferescape is a hierlint golden fixture for the buffer-escape
// analyzer: payload buffers shared between a collective call and an
// unsynchronized goroutine, alongside synchronized and disjoint captures
// that must not be flagged.
package bufferescape

import (
	"hierknem/internal/buffer"
	"hierknem/internal/coll"
	"hierknem/internal/mpi"
)

// racyBuffer reads b concurrently with the broadcast that transports it.
func racyBuffer(p *mpi.Proc, c *mpi.Comm, b *buffer.Buffer) {
	go func() { // want `buffer b is passed to collective BcastBinomial and captured by this goroutine without synchronization`
		_ = b.Len()
	}()
	coll.BcastBinomial(p, c, b, 0)
}

// racySlice mutates the rank-order slice while the allgather walks it.
func racySlice(p *mpi.Proc, c *mpi.Comm, sb, rb *buffer.Buffer, order []int) {
	go func() { // want `buffer order is passed to collective AllgatherRing and captured by this goroutine without synchronization`
		order[0] = 0
	}()
	coll.AllgatherRing(p, c, sb, rb, order, false)
}

// syncedCapture shares b too, but the literal hands off through a channel:
// visible synchronization is trusted.
func syncedCapture(p *mpi.Proc, c *mpi.Comm, b *buffer.Buffer) {
	done := make(chan struct{})
	go func() {
		_ = b.Len()
		done <- struct{}{}
	}()
	coll.BcastBinomial(p, c, b, 0)
	<-done
}

// disjoint captures a slice the collective never sees.
func disjoint(p *mpi.Proc, c *mpi.Comm, b *buffer.Buffer, stats []int) {
	go func() {
		stats[0]++
	}()
	coll.BcastBinomial(p, c, b, 0)
}
