// Package phasesafe exercises the phasesafe analyzer: calls inside
// EnterNodePhase/ExitNodePhase regions that cannot be proved node-confined
// fire, guard-proven regions stay silent, and violations buried behind call
// chains are reported with the offending path.
package phasesafe

import (
	"hierknem/internal/buffer"
	"hierknem/internal/mpi"
)

// crossSend: an unconditional bracket in an unexported function with no
// callers proves nothing, so the in-region send's communicator is unproven.
func crossSend(p *mpi.Proc, c *mpi.Comm, buf *buffer.Buffer) {
	p.EnterNodePhase()
	p.Send(c, buf.Slice(0, 512), 1, 7) // want `communicator argument "c" is not proved intra-node`
	p.ExitNodePhase()
}

// wildcardRecv: a wildcard receive flavors the unproven-communicator report.
func wildcardRecv(p *mpi.Proc, c *mpi.Comm, buf *buffer.Buffer) {
	p.EnterNodePhase()
	p.Recv(c, buf.Slice(0, 512), mpi.AnySource, 7) // want `wildcard receive on communicator "c" not proved intra-node`
	p.ExitNodePhase()
}

// splitInPhase: Split is never node-confined, proved guard or not.
func splitInPhase(p *mpi.Proc, c *mpi.Comm, buf *buffer.Buffer) {
	bracket := p.PhaseEligible(c, buf.Len())
	if bracket {
		p.EnterNodePhase()
	}
	sub := c.Split(p, 0, 0) // want `Split rebuilds communicator membership and is never node-confined`
	_ = sub
	if bracket {
		p.ExitNodePhase()
	}
}

// oversized: a compile-time payload at or above the cutoff is a definite
// violation even though the communicator is guard-proven.
func oversized(p *mpi.Proc, c *mpi.Comm, buf *buffer.Buffer) {
	bracket := p.PhaseEligible(c, buf.Len())
	if bracket {
		p.EnterNodePhase()
	}
	p.Send(c, buf.Slice(0, 8192), 0, 7) // want `payload of 8192 bytes reaches the eager/fabric cutoff \(4096\)`
	if bracket {
		p.ExitNodePhase()
	}
}

// relayOnce/relayTwice bury a send two calls deep: the interprocedural
// summary roots the communicator obligation in the parameter chain, so the
// region check fires at the outer call with the full path.
func relayOnce(p *mpi.Proc, d *mpi.Comm, buf *buffer.Buffer) {
	p.Send(d, buf, 0, 7)
}

func relayTwice(p *mpi.Proc, d *mpi.Comm, buf *buffer.Buffer) {
	relayOnce(p, d, buf)
}

func chained(p *mpi.Proc, c, d *mpi.Comm, buf *buffer.Buffer) {
	bracket := p.PhaseEligible(c, buf.Len())
	if bracket {
		p.EnterNodePhase()
	}
	relayTwice(p, d, buf) // want `communicator argument "d" is not proved intra-node \(via relayOnce → \(\*mpi.Proc\).Send\)`
	if bracket {
		p.ExitNodePhase()
	}
}

// Exported: an unconditional bracket in an exported function has invisible
// call sites, so nothing is provable inside it.
func Exported(p *mpi.Proc, c *mpi.Comm) {
	p.EnterNodePhase() // want `unconditional EnterNodePhase in exported function Exported`
	c.Barrier(p)       // want `communicator argument "c" is not proved intra-node`
	p.ExitNodePhase()
}

// proven: the shipped guard idiom discharges every obligation — sends and
// receives on the guarded communicator with the guarded buffer, intra-node
// barriers — so the region is recorded and the analyzer stays silent.
func proven(p *mpi.Proc, c *mpi.Comm, buf *buffer.Buffer) {
	bracket := p.PhaseEligible(c, buf.Len())
	if bracket {
		p.EnterNodePhase()
	}
	p.Send(c, buf, 1, 7)
	p.Recv(c, buf, 2, 7)
	c.Barrier(p)
	if bracket {
		p.ExitNodePhase()
	}
}

// wrap mirrors the hierarchy struct: a guard proved on a field path
// ("hy.LComm") at the call site must translate into the callee.
type wrap struct{ LComm *mpi.Comm }

// fanout's bracket is unconditional; its only in-package call site guards
// the call, and the intersection of call-site guards proves the region.
func fanout(p *mpi.Proc, hy *wrap, buf *buffer.Buffer) {
	lcomm := hy.LComm
	p.EnterNodePhase()
	p.Send(lcomm, buf, 1, 7)
	lcomm.Barrier(p)
	p.ExitNodePhase()
}

func caller(p *mpi.Proc, hy *wrap, buf *buffer.Buffer) {
	if p.PhaseEligible(hy.LComm, buf.Len()) {
		fanout(p, hy, buf)
	}
}
