// Package ignorereason exercises hierlint's directive enforcement: a
// //lint:ignore without a reason (or without an analyzer name) suppresses
// nothing and is itself reported, while a well-formed directive still
// silences its line. Checked by a dedicated test, not the golden harness.
package ignorereason

import "time"

// reasonless: the directive names the analyzer but gives no reason, so the
// determinism finding on this line survives AND the directive is reported.
func reasonless() {
	time.Sleep(time.Millisecond) //lint:ignore determinism
}

// bare: no analyzer, no reason.
func bare() {
	//lint:ignore
	time.Sleep(time.Millisecond)
}

// excused: a well-formed suppression still works.
func excused() {
	time.Sleep(time.Millisecond) //lint:ignore determinism fixture demonstrates a well-formed suppression
}
