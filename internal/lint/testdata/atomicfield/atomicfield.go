// Package atomicfield exercises the atomicfield analyzer: struct fields
// written and reachable from more than one goroutine-spawning context
// without atomic, mutex, or channel protection.
package atomicfield

import (
	"sync"
	"sync/atomic"
)

type counter struct {
	n    int // want `field counter.n is written and reachable from 2 goroutine-spawning contexts`
	done chan struct{}
}

// spin races the ambient read against the goroutine's write.
func spin(c *counter) {
	go func() {
		c.n++
		close(c.done)
	}()
	_ = c.n
}

type gauge struct {
	level int // want `field gauge.level is written and reachable from 2 goroutine-spawning contexts`
}

func (g *gauge) work() { g.level++ }

// run spawns a declared method: its whole body is a goroutine context.
func run(g *gauge) {
	go g.work()
	_ = g.level
}

// guarded is clean: a mutex sibling marks the struct as lock-disciplined.
type guarded struct {
	mu sync.Mutex
	v  int
}

func bump(g *guarded) {
	go func() {
		g.mu.Lock()
		g.v++
		g.mu.Unlock()
	}()
	g.mu.Lock()
	_ = g.v
	g.mu.Unlock()
}

// counted is clean: the field is an atomic type.
type counted struct {
	hits atomic.Int64
}

func tally(c *counted) {
	go func() { c.hits.Add(1) }()
	_ = c.hits.Load()
}

// baton is clean: the spawn is marked serial (baton passing), so the
// goroutine body stays in the spawner's context.
type baton struct {
	seq int
}

func handoff(b *baton) {
	//hierflow:serial spawner parks before the spawnee runs (fixture mirror of the DES handoff)
	go func() { b.seq++ }()
	_ = b.seq
}

// solo is clean: only the one goroutine context ever touches the field,
// even though the spawn sits in a loop.
type solo struct {
	acc int
}

func fan(s *solo, n int) {
	for i := 0; i < n; i++ {
		go func() { s.acc++ }()
	}
}
