// Package markers exercises the hierflow marker contract: sync and serial
// markers are exemptions, so a reasonless one declares nothing and is
// reported as malformed (under the "lint" pseudo-analyzer, like a
// reasonless //lint:ignore).
package markers

//hierflow:component
type pod struct {
	links []*pod
}

// badSync carries a reasonless sync marker: it exempts nothing and is
// itself reported.
//
//hierflow:sync
func badSync(a, b *pod) {
	b.links = append(b.links, a)
}

// goodSync is a well-formed sync API: exempt, no findings.
//
//hierflow:sync fixture membership transfer, validated by golden test
func goodSync(a, b *pod) {
	b.links = append(b.links, a)
}

func spawn(done chan struct{}) {
	//hierflow:serial
	go func() { close(done) }()
}
