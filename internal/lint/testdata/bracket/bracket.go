// Package bracket exercises the bracket analyzer: unbalanced
// EnterNodePhase/ExitNodePhase pairs — a return path that skips the exit,
// nested enters, an exit with no enter, mismatched guards on the size-gated
// idiom, and a conditional branch that leaves a phase open. The balanced
// shapes the real collectives ship (bare pairs, guarded pairs, a deferred
// exit, pairs completed inside a leader branch) must stay silent.
package bracket

import (
	"hierknem/internal/buffer"
	"hierknem/internal/mpi"
)

// missingExitOnReturn forgets the exit on the early-return path.
func missingExitOnReturn(p *mpi.Proc, c *mpi.Comm, leader bool) {
	p.EnterNodePhase()
	if leader {
		c.Barrier(p)
		return // want `return inside a node phase entered at line 16`
	}
	c.Barrier(p)
	p.ExitNodePhase()
}

// nestedEnter opens a second phase inside the first; the engine panics on
// the first run that reaches this, the analyzer catches it statically.
func nestedEnter(p *mpi.Proc, c *mpi.Comm) {
	p.EnterNodePhase()
	c.Barrier(p)
	p.EnterNodePhase() // want `nested EnterNodePhase: a node phase is already open since line 28`
	c.Barrier(p)
	p.ExitNodePhase()
	p.ExitNodePhase()
}

// exitWithoutEnter pops a bracket that was never pushed.
func exitWithoutEnter(p *mpi.Proc, c *mpi.Comm) {
	c.Barrier(p)
	p.ExitNodePhase() // want `ExitNodePhase without a matching EnterNodePhase`
}

// guardMismatch gates the enter and the exit on different conditions, so
// the bracket can open without closing.
func guardMismatch(p *mpi.Proc, c *mpi.Comm, buf *buffer.Buffer) {
	bracket := p.PhaseEligible(c, buf.Len())
	other := buf.Len() < 512
	if bracket {
		p.EnterNodePhase()
	}
	c.Barrier(p)
	if other {
		p.ExitNodePhase() // want `ExitNodePhase guard "other" does not match the EnterNodePhase guard "bracket"`
	}
}

// neverExits opens a phase and falls off the end of the function.
func neverExits(p *mpi.Proc, c *mpi.Comm) {
	p.EnterNodePhase() // want `EnterNodePhase is not matched by an ExitNodePhase on every path out of the function`
	c.Barrier(p)
}

// branchLeak enters inside one branch only: code after the if runs
// bracketed on some paths and unbracketed on others.
func branchLeak(p *mpi.Proc, c *mpi.Comm, leader bool) {
	if leader {
		c.Barrier(p)
		p.EnterNodePhase() // want `EnterNodePhase inside a conditional branch is not exited before the branch ends`
	}
	c.Barrier(p)
	p.ExitNodePhase() // want `ExitNodePhase without a matching EnterNodePhase`
}

// --- balanced shapes: everything below must produce no findings ---

// barePair is the bcastSmall shape: unconditional collective bracket.
func barePair(p *mpi.Proc, c *mpi.Comm, leader bool) {
	p.EnterNodePhase()
	if leader {
		c.Barrier(p)
		c.Barrier(p)
	} else {
		c.Barrier(p)
	}
	p.ExitNodePhase()
}

// guardedPair is the shipped size-gated idiom, including an early return
// before the bracket opens.
func guardedPair(p *mpi.Proc, c *mpi.Comm, buf *buffer.Buffer) {
	if c.Size() <= 1 {
		return
	}
	bracket := p.PhaseEligible(c, buf.Len())
	if bracket {
		p.EnterNodePhase()
	}
	c.Barrier(p)
	if bracket {
		p.ExitNodePhase()
	}
}

// leaderBranches completes guarded pairs independently inside each branch,
// with a return from the leader arm — the Scatter/Gather shape.
func leaderBranches(p *mpi.Proc, c *mpi.Comm, buf *buffer.Buffer, leader bool) {
	bracket := p.PhaseEligible(c, buf.Len())
	if leader {
		if bracket {
			p.EnterNodePhase()
		}
		c.Barrier(p)
		if bracket {
			p.ExitNodePhase()
		}
		return
	}
	if bracket {
		p.EnterNodePhase()
	}
	c.Barrier(p)
	if bracket {
		p.ExitNodePhase()
	}
}

// deferredExit closes the phase however the function leaves.
func deferredExit(p *mpi.Proc, c *mpi.Comm, leader bool) {
	p.EnterNodePhase()
	defer p.ExitNodePhase()
	if leader {
		return
	}
	c.Barrier(p)
}

// loopInside keeps the bracket balance across iteration bodies.
func loopInside(p *mpi.Proc, c *mpi.Comm) {
	for i := 0; i < 4; i++ {
		p.EnterNodePhase()
		c.Barrier(p)
		p.ExitNodePhase()
	}
}
