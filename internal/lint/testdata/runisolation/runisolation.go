// Package runisolation is a hierlint golden fixture. Every line carrying a
// `// want` comment is a deliberate violation of the run-isolation
// analyzer; the remaining declarations are the sanctioned patterns that
// must not be flagged.
package runisolation

import (
	"math"
	"sync/atomic"
)

// counter is written by bump(): classic shared mutable state.
var counter int // want `package-level var counter is mutated at runtime`

// cache is a composite: mutable through the reference even without any
// assignment to the variable itself.
var cache = map[string]int{} // want `package-level var cache has a mutable \(composite\) type`

// history is appended to, which reassigns the slice header.
var history []float64 // want `package-level var history is mutated at runtime`

// leaked is never assigned, but its address escapes, so any caller can
// write it.
var leaked int // want `package-level var leaked is mutated at runtime`

// nextID is an atomic counter whose numeric value never influences a
// simulation result: exempt.
var nextID atomic.Uint64

// enabled is an atomic process-wide toggle: exempt.
var enabled atomic.Bool

// Inf is basic-typed and only ever read — a constant Go cannot spell
// `const`: exempt.
var Inf = math.Inf(1)

// scratch is reassigned inside a range clause.
var scratch int // want `package-level var scratch is mutated at runtime`

func bump() { counter++ }

func put(k string, v int) { cache[k] = v }

func record(x float64) { history = append(history, x) }

func addr() *int { return &leaked }

func next() uint64 { return nextID.Add(1) }

func on() bool { return enabled.Load() }

func sum(xs []int) (t float64) {
	for scratch = range xs {
		t += Inf
	}
	_ = scratch
	return t
}
