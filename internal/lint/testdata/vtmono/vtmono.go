// Package vtmono exercises the vtmono analyzer: schedule/timer time
// arguments deriving from subtraction against virtual now, or from a now
// read captured before a yield point.
package vtmono

import "hierknem/internal/des"

// subtractNow derives a delay by subtracting now from a deadline: if now
// has passed the deadline the schedule lands in the past.
func subtractNow(e *des.Engine, p *des.Proc, deadline float64, fn func()) {
	e.After(deadline-p.Now(), fn) // want `time argument of After derives from subtraction against virtual now`
}

// subtractThroughLocal routes the subtraction through a local variable;
// the def-use chain still sees it.
func subtractThroughLocal(e *des.Engine, p *des.Proc, deadline float64, fn func()) {
	remaining := deadline - p.Now()
	e.After(remaining, fn) // want `time argument of After derives from subtraction against virtual now`
}

// staleCapture reads now, yields, then schedules at the stale timestamp:
// now advanced across the Sleep, so the At target is in the past.
func staleCapture(e *des.Engine, p *des.Proc, fn func()) {
	t0 := p.Now()
	p.Sleep(5)
	e.At(t0, fn) // want `time argument of At derives from virtual now captured before the yield`
}

// staleAcrossAwait is the same staleness through the Await combinator.
func staleAcrossAwait(e *des.Engine, p *des.Proc, fn func()) {
	mark := p.Now() + 1
	des.Await(p, func(done func()) { done() })
	e.At(mark, fn) // want `time argument of At derives from virtual now captured before the yield`
}

// schedHelper forwards its argument to a sink; vtmono learns the
// TimeSinkParams fact and checks callers of the helper too.
func schedHelper(e *des.Engine, t float64, fn func()) {
	e.At(t, fn)
}

// transitiveSubtract hits the sink through the helper.
func transitiveSubtract(e *des.Engine, p *des.Proc, lead float64, fn func()) {
	schedHelper(e, lead-p.Now(), fn) // want `time argument of schedHelper derives from subtraction against virtual now`
}

// freshNow is clean: the timestamp is read and used with no yield between,
// and now is the minuend, not the subtrahend.
func freshNow(e *des.Engine, p *des.Proc, t0 float64, fn func()) {
	elapsed := p.Now() - t0
	_ = elapsed
	e.At(p.Now()+1, fn)
	e.After(2.5, fn)
}

// reRead is clean: now is re-read after the yield.
func reRead(e *des.Engine, p *des.Proc, fn func()) {
	p.Sleep(1)
	e.At(p.Now()+3, fn)
}

// justified is clean: the stale use is suppressed with a reason.
func justified(e *des.Engine, p *des.Proc, fn func()) {
	horizon := p.Now() + 1e9
	p.Sleep(1)
	//lint:ignore vtmono horizon is one wallclock-era beyond any reachable now
	e.At(horizon, fn)
}
