// Package requesthygiene is a hierlint golden fixture for the
// request-hygiene analyzer: leaked Isend/Irecv requests that no Wait can
// ever collect, alongside clean request lifecycles that must not be
// flagged.
package requesthygiene

import (
	"hierknem/internal/buffer"
	"hierknem/internal/mpi"
)

// discard drops the request on the floor as a bare statement.
func discard(p *mpi.Proc, c *mpi.Comm, b *buffer.Buffer) {
	p.Isend(c, b, 0, 1) // want `Isend request discarded: no Wait can ever collect it`
	p.Irecv(c, b, 0, 1) // want `Irecv request discarded: no Wait can ever collect it`
}

// blank spells the same leak with an explicit blank assignment.
func blank(p *mpi.Proc, c *mpi.Comm, b *buffer.Buffer) {
	_ = p.Irecv(c, b, 0, 2) // want `Irecv request assigned to blank: no Wait can ever collect it`
}

// pending demonstrates a request parked in a variable nothing ever reads.
var pending *mpi.Request

func leakToGlobal(p *mpi.Proc, c *mpi.Comm, b *buffer.Buffer) {
	pending = p.Isend(c, b, 0, 3) // want `Isend request bound to pending but never used`
}

// conditionalWait leaks on the slow path: when fast is false the request is
// never collected.
func conditionalWait(p *mpi.Proc, c *mpi.Comm, b *buffer.Buffer, fast bool) {
	r := p.Isend(c, b, 0, 4) // want `Isend request r is waited only inside a conditional branch`
	if fast {
		p.Wait(r)
	}
}

// cleanPair is the canonical lifecycle: post both, wait both.
func cleanPair(p *mpi.Proc, c *mpi.Comm, sb, rb *buffer.Buffer) {
	r := p.Irecv(c, rb, 0, 5)
	s := p.Isend(c, sb, 0, 5)
	p.Wait(r)
	p.Wait(s)
}

// cleanFanout accumulates requests through append and collects them with
// WaitAll: passing the request to any call counts as consumption.
func cleanFanout(p *mpi.Proc, c *mpi.Comm, b *buffer.Buffer) {
	var rs []*mpi.Request
	for dst := 0; dst < 4; dst++ {
		rs = append(rs, p.Isend(c, b, dst, 6))
	}
	p.WaitAll(rs...)
}

// cleanGuarded waits under a branch but also mentions the request in the
// condition: polling and nil-guard patterns are trusted.
func cleanGuarded(p *mpi.Proc, c *mpi.Comm, b *buffer.Buffer) {
	r := p.Irecv(c, b, mpi.AnySource, mpi.AnyTag)
	if r != nil {
		p.Wait(r)
	}
}

// cleanBothArms waits on every path of an if/else.
func cleanBothArms(p *mpi.Proc, c *mpi.Comm, b *buffer.Buffer, eager bool) {
	r := p.Isend(c, b, 0, 7)
	if eager {
		p.Wait(r)
	} else {
		p.WaitAll(r)
	}
}

// cleanReturned hands the request to the caller, who owns the Wait.
func cleanReturned(p *mpi.Proc, c *mpi.Comm, b *buffer.Buffer) *mpi.Request {
	return p.Irecv(c, b, 0, 8)
}
