// Package determinism is a hierlint golden fixture. Every line carrying a
// `// want` comment is a deliberate violation of the determinism analyzer;
// the remaining functions are clean counterparts that must not be flagged.
package determinism

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// wallClock reads and waits on the host clock three different ways.
func wallClock() float64 {
	start := time.Now()          // want `time\.Now depends on the host clock`
	time.Sleep(time.Millisecond) // want `time\.Sleep depends on the host clock`
	return time.Since(start).Seconds() // want `time\.Since depends on the host clock`
}

// timerLeak uses the timer constructors.
func timerLeak() {
	t := time.NewTimer(time.Second) // want `time\.NewTimer depends on the host clock`
	<-t.C
	<-time.After(time.Second) // want `time\.After depends on the host clock`
}

// globalRand draws from the shared unseeded source.
func globalRand() int {
	rand.Shuffle(3, func(i, j int) {}) // want `rand\.Shuffle draws from the global unseeded source`
	return rand.Intn(10)               // want `rand\.Intn draws from the global unseeded source`
}

// seededRand constructs an explicit generator: the sanctioned pattern.
func seededRand(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}

// mapOrdered prints while ranging a map: emission order varies per run.
func mapOrdered(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want `fmt\.Println inside range over map emits in nondeterministic order`
	}
}

// mapSorted collects, sorts, then prints: deterministic and unflagged.
func mapSorted(m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Println(k, m[k])
	}
}

// durationMath uses time only for unit arithmetic, which is allowed: no
// clock is observed.
func durationMath(n int) time.Duration {
	return time.Duration(n) * time.Microsecond
}

// matchKey mirrors the MPI matching-index key: maps keyed by it hold
// order-sensitive matching queues and must never be ranged.
type matchKey struct{ ctx, src, tag int }

// indexWalk iterates a matching-index map: the per-key FIFOs carry the
// ordering guarantee, so walking the map injects map-iteration order into
// message matching.
func indexWalk(specific map[matchKey][]int) int {
	total := 0
	for _, q := range specific { // want `range over a matchKey-keyed matching index iterates in map order`
		total += len(q)
	}
	return total
}

// indexLookup accesses the index by key: the sanctioned pattern.
func indexLookup(specific map[matchKey][]int, k matchKey) []int {
	return specific[k]
}
