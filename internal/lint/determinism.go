package lint

import (
	"go/ast"
	"go/types"
)

// DeterminismAnalyzer enforces the simulator's foundational invariant:
// inside internal/, time is virtual and randomness is seeded. The DES
// engine (internal/des) is bit-for-bit deterministic precisely because no
// wall-clock reading, host sleep, global RNG draw, or map-iteration-ordered
// output can influence a run. Any of those would make the paper's
// experiments unreproducible from one invocation to the next.
//
// Three rules:
//
//  1. No wall-clock time: time.Now, time.Since, time.Until, time.Sleep,
//     time.Tick, time.After, time.AfterFunc, time.NewTimer, time.NewTicker
//     are forbidden. Virtual time comes from des.Engine / des.Proc.
//
//  2. No unseeded randomness: package-level math/rand (and math/rand/v2)
//     functions draw from a shared, unseeded global source. Construct an
//     explicit generator (rand.New(rand.NewSource(seed))) and thread the
//     seed from configuration.
//
//  3. No output ordered by map iteration: fmt.Print/Fprint-family calls
//     inside a `for range` over a map emit in a different order every run.
//     Collect keys, sort, then print.
//
//  4. No iteration over matching-index maps: the MPI matching layer keeps
//     per-(ctx, src, tag) queues in maps keyed by matchKey, and its order
//     guarantees live entirely in the per-queue FIFOs and posting
//     sequence numbers. Ranging over such a map in a dispatch path would
//     reintroduce map-iteration order into message matching — the exact
//     nondeterminism the index was designed out of. Matching-index maps
//     are accessed by key, never walked.
var DeterminismAnalyzer = &Analyzer{
	Name:    "determinism",
	Doc:     "forbid wall-clock time, unseeded randomness, and map-ordered output in internal/",
	Applies: internalOnly,
	Run:     runDeterminism,
}

// wallClockFuncs are the time package entry points that read or wait on the
// host clock. Pure conversions and constants (time.Duration, time.Unix) are
// allowed: they do not observe the clock.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"Tick": true, "After": true, "AfterFunc": true,
	"NewTimer": true, "NewTicker": true,
}

// seededRandCtors are the math/rand[/v2] constructors that build an
// explicitly seeded generator — the sanctioned path to randomness.
var seededRandCtors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// printFuncs are the fmt functions whose emission order is observable.
// Sprint-family is deliberately excluded: a string built inside the loop is
// frequently sorted or keyed afterwards.
var printFuncs = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

func runDeterminism(pass *Pass) {
	info := pass.Info()
	for id, obj := range info.Uses {
		fn, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
			continue
		}
		switch pkgPathOf(fn) {
		case "time":
			if wallClockFuncs[fn.Name()] {
				pass.Reportf(id.Pos(), "time.%s depends on the host clock; use virtual time from the DES engine (des.Proc.Now / des.Proc.Sleep)", fn.Name())
			}
		case "math/rand", "math/rand/v2":
			if !seededRandCtors[fn.Name()] {
				pass.Reportf(id.Pos(), "rand.%s draws from the global unseeded source; use rand.New(rand.NewSource(seed)) with a configured seed", fn.Name())
			}
		}
	}

	for _, f := range pass.Files() {
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := info.Types[rng.X]
			if !ok {
				return true
			}
			mp, isMap := tv.Type.Underlying().(*types.Map)
			if !isMap {
				return true
			}
			if named, ok := mp.Key().(*types.Named); ok && named.Obj().Name() == "matchKey" {
				pass.Reportf(rng.Pos(), "range over a matchKey-keyed matching index iterates in map order; matching queues must be accessed by key only")
			}
			ast.Inspect(rng.Body, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				obj := calleeObj(info, call)
				if fn, ok := obj.(*types.Func); ok && pkgPathOf(fn) == "fmt" && printFuncs[fn.Name()] {
					pass.Reportf(call.Pos(), "fmt.%s inside range over map emits in nondeterministic order; sort the keys first", fn.Name())
				}
				return true
			})
			return true
		})
	}
}
