package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// TagSpaceAnalyzer enforces the simulator's tag-space partitioning. Each
// algorithm layer reserves a power-of-two base (collTag = 1<<22 for the
// collective library, hkTag = 1<<21 for the HierKNEM core, and so on) and
// must draw every point-to-point tag from [base, 2*base): the partition is
// what keeps a pipelined broadcast's segment tags from matching a
// concurrently running reduce's chain tags on the same communicator. A tag
// invented outside the reserved range — a bare literal, or arithmetic from
// nothing — reintroduces exactly the cross-algorithm mismatch the bases
// exist to prevent, and it fails as a once-in-a-sweep wrong-payload, not a
// crash.
//
// Two checks:
//
//  1. Every tag argument of Isend/Irecv/Send/Recv/SendRecv on mpi.Proc must
//     be derived from a reserved base: a constant in some base's [b, 2b)
//     range, an expression referencing a base constant, or a local variable
//     assigned from one. mpi.AnyTag (-1) is exempt. Parameters are trusted —
//     the caller is checked at its own site.
//
//  2. Tag-named package-level constants must have pairwise-distinct values;
//     two algorithms declaring the same base silently share a tag space.
//
// A base is a constant whose name starts with "tag" or contains "Tag" and
// whose value is a power of two >= 1<<16 (below that sits application tag
// space). Scoped to the algorithm packages; the mpi runtime's own internals
// are out of scope.
var TagSpaceAnalyzer = &Analyzer{
	Name:    "tagspace",
	Doc:     "enforce per-algorithm reserved tag ranges and distinct tag constants",
	Applies: tagSpaceApplies,
	Run:     runTagSpace,
}

func tagSpaceApplies(pkgPath string) bool {
	for _, p := range []string{"internal/coll", "internal/core", "internal/modules", "internal/hier"} {
		if strings.HasSuffix(pkgPath, p) {
			return true
		}
	}
	return strings.HasSuffix(pkgPath, "testdata/tagspace")
}

// tagNamed is the base-name predicate. Deliberately prefix/camel-case:
// a case-insensitive substring match would catch "stage" and "vantage".
func tagNamed(name string) bool {
	return strings.HasPrefix(name, "tag") || strings.Contains(name, "Tag")
}

// tagConst is one tag-named constant declaration, in source order.
type tagConst struct {
	obj  *types.Const
	name string
	val  int64
	id   *ast.Ident
}

// tagConsts walks the package's const declarations (package-level and
// function-local) in file order, collecting tag-named integer constants.
// AST order, not a Defs map range, so diagnostics stay deterministic.
func tagConsts(pass *Pass) []tagConst {
	info := pass.Info()
	var out []tagConst
	for _, f := range pass.Files() {
		ast.Inspect(f, func(n ast.Node) bool {
			gd, ok := n.(*ast.GenDecl)
			if !ok {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					c, ok := info.Defs[name].(*types.Const)
					if !ok || !tagNamed(c.Name()) {
						continue
					}
					if v, exact := constant.Int64Val(constant.ToInt(c.Val())); exact {
						out = append(out, tagConst{obj: c, name: c.Name(), val: v, id: name})
					}
				}
			}
			return true
		})
	}
	return out
}

// isTagBase reports whether a constant qualifies as a reserved base:
// power of two, at or above 1<<16.
func isTagBase(v int64) bool {
	return v >= 1<<16 && v&(v-1) == 0
}

// inReservedRange reports whether v falls in some base's [b, 2b).
func inReservedRange(v int64, bases []int64) bool {
	for _, b := range bases {
		if v >= b && v < 2*b {
			return true
		}
	}
	return false
}

// tagArgIndexes maps a p2p method name to the indexes of its tag arguments.
func tagArgIndexes(name string) []int {
	switch name {
	case "Isend", "Irecv", "Send", "Recv":
		return []int{3}
	case "SendRecv":
		return []int{3, 6}
	}
	return nil
}

func runTagSpace(pass *Pass) {
	info := pass.Info()
	consts := tagConsts(pass)

	// Check 2: package-level tag constants must be pairwise distinct.
	pkgScope := pass.Types().Scope()
	var seen []tagConst
	for _, c := range consts {
		if c.obj.Parent() != pkgScope {
			continue
		}
		for _, prev := range seen {
			if prev.val == c.val {
				pass.Reportf(c.id.Pos(), "tag constant %s duplicates value %d of %s: algorithm tag spaces must be distinct", c.name, c.val, prev.name)
				break
			}
		}
		seen = append(seen, c)
	}

	// The reserved bases visible anywhere in this package (local consts
	// included: a function-scoped base reserves its range just as well).
	var bases []int64
	baseObjs := map[*types.Const]bool{}
	for _, c := range consts {
		if isTagBase(c.val) {
			bases = append(bases, c.val)
			baseObjs[c.obj] = true
		}
	}

	// Check 1: every tag argument at every p2p call site.
	for _, f := range pass.Files() {
		for _, fd := range funcBodies(f) {
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn, ok := calleeObj(info, call).(*types.Func)
				if !ok || !strings.HasSuffix(pkgPathOf(fn), "internal/mpi") {
					return true
				}
				for _, idx := range tagArgIndexes(fn.Name()) {
					if idx < len(call.Args) {
						checkTagArg(pass, info, fd, bases, baseObjs, call.Args[idx])
					}
				}
				return true
			})
		}
	}
}

// checkTagArg validates one tag argument expression.
func checkTagArg(pass *Pass, info *types.Info, fd *ast.FuncDecl, bases []int64, baseObjs map[*types.Const]bool, arg ast.Expr) {
	// Constant-folded value: exact range check. AnyTag (-1) is exempt.
	if tv, ok := info.Types[arg]; ok && tv.Value != nil {
		if v, exact := constant.Int64Val(constant.ToInt(tv.Value)); exact {
			if v == -1 || inReservedRange(v, bases) {
				return
			}
			pass.Reportf(arg.Pos(), "tag %d is outside every reserved tag range: draw tags from the algorithm's base constant", v)
			return
		}
		return
	}
	// Expression referencing a base constant (collTag+int(i), hkTag+2000+s).
	if refsTagBase(info, baseObjs, arg) {
		return
	}
	// A lone variable: trace its assignments inside this function.
	if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
		v, ok := info.Uses[id].(*types.Var)
		if !ok {
			return
		}
		derived, found := varDerivedFromBase(info, fd, v, bases, baseObjs)
		if !found {
			return // parameter, closure capture or range var: trust the producer
		}
		if !derived {
			pass.Reportf(arg.Pos(), "tag variable %s is not derived from a reserved tag base", v.Name())
		}
		return
	}
	// Compound expression with no base reference: accept a tag-carrying
	// variable inside it (tag+int(i), where tag is a trusted parameter or a
	// base-derived local); offsets like the loop counter need no provenance.
	ok := false
	bad := ""
	ast.Inspect(arg, func(n ast.Node) bool {
		id, isID := n.(*ast.Ident)
		if !isID {
			return true
		}
		if v, isVar := info.Uses[id].(*types.Var); isVar && tagNamed(v.Name()) {
			derived, found := varDerivedFromBase(info, fd, v, bases, baseObjs)
			if !found || derived {
				ok = true
			} else if bad == "" {
				bad = v.Name()
			}
		}
		return true
	})
	if ok {
		return
	}
	if bad != "" {
		pass.Reportf(arg.Pos(), "tag variable %s is not derived from a reserved tag base", bad)
		return
	}
	pass.Reportf(arg.Pos(), "tag expression does not reference any reserved tag base constant")
}

// refsTagBase reports whether expr mentions one of the package's reserved
// base constants.
func refsTagBase(info *types.Info, baseObjs map[*types.Const]bool, expr ast.Expr) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if c, ok := info.Uses[id].(*types.Const); ok && baseObjs[c] {
				found = true
			}
		}
		return !found
	})
	return found
}

// varDerivedFromBase scans the function for assignments defining v. found
// reports whether any defining assignment exists in fd at all; derived
// reports whether every one of them draws from a reserved base (by value or
// by reference).
func varDerivedFromBase(info *types.Info, fd *ast.FuncDecl, v *types.Var, bases []int64, baseObjs map[*types.Const]bool) (derived, found bool) {
	derived = true
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || (info.Defs[id] != v && info.Uses[id] != v) {
				continue
			}
			if i >= len(as.Rhs) {
				continue // multi-value RHS (call/range): cannot trace, trust it
			}
			found = true
			rhs := as.Rhs[i]
			if tv, ok := info.Types[rhs]; ok && tv.Value != nil {
				if val, exact := constant.Int64Val(constant.ToInt(tv.Value)); exact {
					if val != -1 && !inReservedRange(val, bases) {
						derived = false
					}
					continue
				}
			}
			if !refsTagBase(info, baseObjs, rhs) {
				derived = false
			}
		}
		return true
	})
	if !found {
		return false, false
	}
	return derived, true
}
