package lint

// ConfineAnalyzer proves the second PDES precondition: state reachable
// from one fabric component never leaks into another component's
// reachable set except through a designated sync API. Per-component event
// queues are only sound if the components share no mutable state; one
// aliased slice or flow record silently couples two partitions and the
// parallel run diverges from the sequential one.
//
// Confinement domains are declared at the type: //hierflow:component on a
// type definition makes every value of that type (or pointer to it) a
// root, here and in every importing package (the marker travels in the
// package's hierflow facts). The analyzer roots every store target and
// stored value at the confined locals they derive from — following
// aliases, selector/index chains, composite literals and call results —
// and flags any store whose destination and source root at two distinct
// components. Calls are checked interprocedurally: a callee whose
// CrossStores fact says "parameter i is stored into parameter j's
// reachable state" is treated as that store at the call site.
//
// Deliberate membership transfer (attach/absorb/repartition) is the
// allowlist: mark the function //hierflow:sync <reason>. A sync API's own
// body is exempt and calls to it are not traversed. The reason is
// mandatory — a reasonless marker declares nothing and is reported.
var ConfineAnalyzer = &Analyzer{
	Name:    "confine",
	Doc:     "forbids stores that couple two //hierflow:component domains outside //hierflow:sync APIs",
	Applies: internalOnly,
	Run:     runConfine,
}

func runConfine(pass *Pass) {
	in := pass.Flow
	for _, fi := range in.Funcs {
		if in.SyncAPI(fi.Obj) {
			continue // designated membership API: cross-stores are its job
		}
		for _, site := range fi.ConfinedStores() {
			dst, src, ok := site.DistinctRoots()
			if !ok {
				continue
			}
			if site.Via != nil {
				pass.Reportf(site.Pos,
					"call to %s stores state reachable from component %q into component %q's reachable set; route the transfer through a //hierflow:sync API",
					site.Via.Name(), src.Name(), dst.Name())
				continue
			}
			pass.Reportf(site.Pos,
				"stores state reachable from component %q into component %q's reachable set; cross-component transfer must go through a //hierflow:sync API",
				src.Name(), dst.Name())
		}
	}
}
