package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// RunIsolationAnalyzer enforces the invariant behind the parallel sweep
// runner (internal/sweep): simulations running on concurrent goroutines
// must share no mutable state. Every engine, world, pool and cache lives
// behind a *World or *Engine, so any number of simulations can run side by
// side and each stays bit-for-bit identical to a solo run. A package-level
// variable written at runtime punches a hole in that isolation twice over:
// it is a data race under -race, and — even when the race is benign — a
// cross-run information channel that can make run N's result depend on how
// many siblings ran before it.
//
// Two exemptions:
//
//   - sync/atomic types (atomic.Bool, atomic.Uint64, ...). These are
//     race-free by construction and sanctioned for values whose numeric
//     identity is immaterial to simulation results — opaque ID counters
//     (buffer.nextID) and process-wide toggles (des host pinning).
//
//   - effectively constant basic-typed vars: a var of basic type that is
//     never assigned outside its declaration, never incremented, and never
//     has its address taken is a constant in all but spelling
//     (e.g. asp.Inf = math.Inf(1), which Go cannot declare `const`).
//     The analysis sees one package at a time, so this exemption trusts
//     that no other package writes an exported var — true today because
//     flagging is per-declaration and every internal package is scanned.
//
// Composite-typed vars (maps, slices, pointers, structs) get no
// effectively-constant exemption: they can be mutated through the
// reference without any assignment to the variable itself.
//
// internal/lint itself is excluded: the analyzer registry and keyword
// tables are write-once composites, and the linter never runs inside a
// simulation.
var RunIsolationAnalyzer = &Analyzer{
	Name: "runisolation",
	Doc:  "forbid non-atomic package-level mutable state shared across concurrent simulations",
	Applies: func(pkgPath string) bool {
		if strings.HasSuffix(pkgPath, "internal/lint") {
			return false
		}
		return internalOnly(pkgPath)
	},
	Run: runRunIsolation,
}

func runRunIsolation(pass *Pass) {
	info := pass.Info()

	// Package-level var objects, keyed for the write scan.
	type varDecl struct {
		name *ast.Ident
		obj  *types.Var
	}
	var decls []varDecl
	declared := map[*types.Var]bool{}
	for _, f := range pass.Files() {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs := spec.(*ast.ValueSpec)
				for _, name := range vs.Names {
					if name.Name == "_" {
						continue
					}
					obj, ok := info.Defs[name].(*types.Var)
					if !ok {
						continue
					}
					decls = append(decls, varDecl{name, obj})
					declared[obj] = true
				}
			}
		}
	}
	if len(decls) == 0 {
		return
	}

	// Scan the whole package for writes to (or addresses of) those vars.
	// The declaration itself is a ValueSpec, not an AssignStmt, so any
	// assignment found here is a runtime mutation.
	written := map[*types.Var]bool{}
	markIdent := func(e ast.Expr) {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			if v, ok := info.Uses[id].(*types.Var); ok && declared[v] {
				written[v] = true
			}
		}
	}
	for _, f := range pass.Files() {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					markIdent(lhs)
				}
			case *ast.IncDecStmt:
				markIdent(n.X)
			case *ast.UnaryExpr:
				if n.Op == token.AND {
					markIdent(n.X)
				}
			case *ast.RangeStmt:
				if n.Tok == token.ASSIGN {
					markIdent(n.Key)
					if n.Value != nil {
						markIdent(n.Value)
					}
				}
			}
			return true
		})
	}

	for _, d := range decls {
		if isAtomicType(d.obj.Type()) {
			continue
		}
		_, basic := d.obj.Type().Underlying().(*types.Basic)
		if basic && !written[d.obj] {
			continue // effectively constant
		}
		what := "is mutated at runtime"
		if !written[d.obj] {
			what = "has a mutable (composite) type"
		}
		pass.Reportf(d.name.Pos(),
			"package-level var %s %s and is shared across concurrently running simulations; move it into World/Engine state or use sync/atomic",
			d.name.Name, what)
	}
}

// isAtomicType reports whether t is (a pointer to) a named type from
// sync/atomic.
func isAtomicType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return pkgPathOf(named.Obj()) == "sync/atomic"
}
