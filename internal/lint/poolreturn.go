package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// PoolReturnAnalyzer guards the simulator's free-list discipline. The hot
// layers (des events, mpi envelopes/postings, fabric flows) recycle records
// through explicit alloc/release pairs instead of the garbage collector;
// an allocation that never reaches a release is a slow pool leak that erodes
// the zero-alloc steady state, and a reference used after its release is the
// exact aliasing bug hiersan's pool-provenance checker catches at run time —
// this analyzer catches the locally-decidable cases at analysis time.
//
// For every call to an in-module `alloc*` function returning a pointer:
//
//  1. Result discarded as a bare statement — the record can never be
//     released back to its free list.
//
//  2. Result assigned to blank (_) — same leak, spelled explicitly.
//
//  3. Result bound to a variable that is never consumed. Writing the
//     record's own fields (r.x = v) and reassigning the variable do not
//     count: a record that is only initialized but never released, stored,
//     passed or returned is still leaked.
//
// And for each release of a tracked variable — r.release(), release(r), or
// recycle*(r) — any later use of the variable in the same statement list
// (before a reassignment) is flagged: the record may already be re-issued
// to another caller.
//
// The analysis is conservative: passing the record to any call, storing it
// anywhere, or returning it counts as a hand-off that transfers the release
// obligation.
var PoolReturnAnalyzer = &Analyzer{
	Name:    "poolreturn",
	Doc:     "flag pooled alloc* results that never reach a release, and uses after release",
	Applies: internalOnly,
	Run:     runPoolReturn,
}

// isPoolAlloc reports whether call invokes an in-module function or method
// named alloc* whose first result is a pointer — the free-list allocation
// shape used by des, mpi and fabric.
func isPoolAlloc(info *types.Info, call *ast.CallExpr) (*types.Func, bool) {
	fn, ok := calleeObj(info, call).(*types.Func)
	if !ok {
		return nil, false
	}
	if !strings.HasPrefix(fn.Name(), "alloc") {
		return nil, false
	}
	if !strings.HasPrefix(pkgPathOf(fn), "hierknem") {
		return nil, false
	}
	res := fn.Type().(*types.Signature).Results()
	if res.Len() == 0 {
		return nil, false
	}
	if _, ok := res.At(0).Type().Underlying().(*types.Pointer); !ok {
		return nil, false
	}
	return fn, true
}

// isReleaseOf reports whether call releases the record held by obj: either a
// method call obj.release(), or any call named exactly "release" or prefixed
// "recycle" that takes obj as an argument.
func isReleaseOf(info *types.Info, call *ast.CallExpr, obj types.Object) bool {
	fn, ok := calleeObj(info, call).(*types.Func)
	if !ok {
		return false
	}
	if fn.Name() != "release" && !strings.HasPrefix(fn.Name(), "recycle") {
		return false
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && info.Uses[id] == obj {
			return true // obj.release()
		}
	}
	for _, arg := range call.Args {
		if id, ok := ast.Unparen(arg).(*ast.Ident); ok && info.Uses[id] == obj {
			return true // release(obj) / pool.release(obj) / recycleX(obj)
		}
	}
	return false
}

func runPoolReturn(pass *Pass) {
	info := pass.Info()
	for _, f := range pass.Files() {
		for _, fd := range funcBodies(f) {
			checkPoolReturns(pass, info, fd)
		}
	}
}

func checkPoolReturns(pass *Pass, info *types.Info, fd *ast.FuncDecl) {
	// Pass 1: classify each alloc* call by how its result is received.
	type tracked struct {
		obj  types.Object
		call *ast.CallExpr
		name string // the alloc function's name
	}
	var vars []tracked

	inspectStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn, ok := isPoolAlloc(info, call)
		if !ok || len(stack) == 0 {
			return true
		}
		switch parent := stack[len(stack)-1].(type) {
		case *ast.ExprStmt:
			pass.Reportf(call.Pos(), "pooled %s result discarded: the record can never be released back to its free list", fn.Name())
		case *ast.AssignStmt:
			for i, rhs := range parent.Rhs {
				if rhs != call || i >= len(parent.Lhs) {
					continue
				}
				lhs, ok := parent.Lhs[i].(*ast.Ident)
				if !ok {
					break // field/index store: the record escapes, hand-off assumed
				}
				if lhs.Name == "_" {
					pass.Reportf(call.Pos(), "pooled %s result assigned to blank: the record can never be released back to its free list", fn.Name())
					break
				}
				if obj := info.ObjectOf(lhs); obj != nil {
					vars = append(vars, tracked{obj: obj, call: call, name: fn.Name()})
				}
			}
		}
		return true
	})

	// Pass 2: audit each tracked variable. A use is a consumption unless it
	// is a reassignment target or a write to one of the record's own fields.
	for _, t := range vars {
		consumed := false
		var releases []*ast.CallExpr
		inspectStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok && isReleaseOf(info, call, t.obj) {
				releases = append(releases, call)
				consumed = true
				return true
			}
			id, ok := n.(*ast.Ident)
			if !ok || info.Uses[id] != t.obj {
				return true
			}
			if isAssignLHS(id, stack) || isOwnFieldWrite(id, stack) {
				return true
			}
			consumed = true
			return true
		})
		if !consumed {
			pass.Reportf(t.call.Pos(), "pooled record from %s bound to %s but never released or handed off: free-list leak", t.name, t.obj.Name())
			continue
		}
		for _, rel := range releases {
			checkUseAfterRelease(pass, info, fd, t.obj, rel)
		}
	}
}

// isOwnFieldWrite reports whether id is the base of a field write like
// id.field = v — initialization of the record, not a hand-off.
func isOwnFieldWrite(id *ast.Ident, stack []ast.Node) bool {
	if len(stack) < 2 {
		return false
	}
	sel, ok := stack[len(stack)-1].(*ast.SelectorExpr)
	if !ok || ast.Unparen(sel.X) != ast.Expr(id) {
		return false
	}
	as, ok := stack[len(stack)-2].(*ast.AssignStmt)
	if !ok {
		return false
	}
	for _, lhs := range as.Lhs {
		if lhs == ast.Expr(sel) {
			return true
		}
	}
	return false
}

// checkUseAfterRelease scans the statement list containing the release call
// for later uses of obj, stopping at a reassignment (the variable then holds
// a fresh record).
func checkUseAfterRelease(pass *Pass, info *types.Info, fd *ast.FuncDecl, obj types.Object, rel *ast.CallExpr) {
	// Find the innermost block and the index of the statement holding rel.
	var block *ast.BlockStmt
	idx := -1
	inspectStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		b, ok := n.(*ast.BlockStmt)
		if !ok || !within(b, rel) {
			return true
		}
		for i, st := range b.List {
			if within(st, rel) {
				block, idx = b, i // keep narrowing: innermost block wins
				break
			}
		}
		return true
	})
	if block == nil {
		return
	}
	for _, st := range block.List[idx+1:] {
		if reassigns(info, st, obj) {
			return
		}
		var after *ast.Ident
		ast.Inspect(st, func(n ast.Node) bool {
			if after != nil {
				return false
			}
			if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
				after = id
			}
			return after == nil
		})
		if after != nil {
			pass.Reportf(after.Pos(), "use of %s after release: the record may already be recycled to another caller", obj.Name())
			return
		}
	}
}

// reassigns reports whether the statement (at its top level) assigns a fresh
// value to obj.
func reassigns(info *types.Info, st ast.Stmt, obj types.Object) bool {
	as, ok := st.(*ast.AssignStmt)
	if !ok {
		return false
	}
	for _, lhs := range as.Lhs {
		if id, ok := lhs.(*ast.Ident); ok {
			if info.Uses[id] == obj || info.Defs[id] == obj {
				return true
			}
		}
	}
	return false
}
