package lint_test

import (
	"regexp"
	"strings"
	"testing"

	"hierknem/internal/lint"
)

// wantRe extracts the backquoted pattern of a `// want `...`` comment.
var wantRe = regexp.MustCompile("// want `([^`]+)`")

// expectation is one `// want` annotation in a fixture file.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// TestAnalyzersGolden runs each analyzer alone against its fixture package
// and requires an exact correspondence between diagnostics and `// want`
// annotations — at least one of each, so an analyzer that silently stops
// firing fails loudly.
func TestAnalyzersGolden(t *testing.T) {
	for _, a := range lint.Analyzers {
		t.Run(a.Name, func(t *testing.T) {
			runGolden(t, []*lint.Analyzer{a}, "./testdata/"+a.Name, true)
		})
	}
}

// TestCleanFixture runs every analyzer over the clean package: zero
// diagnostics expected, including the suppressed violation inside (which
// exercises the //lint:ignore path).
func TestCleanFixture(t *testing.T) {
	runGolden(t, lint.Analyzers, "./testdata/clean", false)
}

// TestByName covers registry lookup.
func TestByName(t *testing.T) {
	for _, name := range []string{"determinism", "requesthygiene", "errcheck", "bufferescape", "runisolation", "poolreturn", "tagspace", "vtmono", "confine", "atomicfield", "bracket", "phasesafe"} {
		if lint.ByName(name) == nil {
			t.Errorf("ByName(%q) = nil, want analyzer", name)
		}
	}
	if lint.ByName("nope") != nil {
		t.Error("ByName(nope) should be nil")
	}
}

func runGolden(t *testing.T, analyzers []*lint.Analyzer, pattern string, wantFindings bool) {
	t.Helper()
	pkgs, err := lint.Load(".", pattern)
	if err != nil {
		t.Fatalf("Load(%q): %v", pattern, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("Load(%q) = %d packages, want 1", pattern, len(pkgs))
	}
	pkg := pkgs[0]

	wants := collectWants(t, pkg)
	diags := lint.Run(pkg, analyzers)

	if wantFindings && (len(wants) == 0 || len(diags) == 0) {
		t.Fatalf("fixture %s: %d expectations, %d diagnostics — golden fixtures must fire", pattern, len(wants), len(diags))
	}

	var unexpected []string
	for _, d := range diags {
		ok := false
		for _, w := range wants {
			if w.file == d.Pos.Filename && w.line == d.Pos.Line && w.pattern.MatchString(d.Message) {
				w.matched = true
				ok = true
				break
			}
		}
		if !ok {
			unexpected = append(unexpected, d.String())
		}
	}
	for _, d := range unexpected {
		t.Errorf("unexpected diagnostic: %s", d)
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.pattern)
		}
	}
}

// collectWants parses `// want` annotations out of a loaded package.
func collectWants(t *testing.T, pkg *lint.Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					if strings.HasPrefix(c.Text, "// want ") {
						t.Fatalf("malformed want comment: %s", c.Text)
					}
					continue
				}
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("bad want pattern %q: %v", m[1], err)
				}
				pos := pkg.Fset.Position(c.Pos())
				wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, pattern: re})
			}
		}
	}
	return wants
}

// TestSuppressionReasonRequired pins the directive contract: a reasonless
// //lint:ignore suppresses nothing (the underlying finding survives) and is
// itself reported as a malformed directive, while a well-formed one still
// silences its line.
func TestSuppressionReasonRequired(t *testing.T) {
	pkgs, err := lint.Load(".", "./testdata/ignorereason")
	if err != nil {
		t.Fatal(err)
	}
	diags := lint.Run(pkgs[0], []*lint.Analyzer{lint.ByName("determinism")})

	var malformed, determinism []lint.Diagnostic
	for _, d := range diags {
		switch d.Analyzer {
		case "lint":
			malformed = append(malformed, d)
		case "determinism":
			determinism = append(determinism, d)
		default:
			t.Errorf("unexpected analyzer %q in %s", d.Analyzer, d)
		}
	}
	// Two malformed directives: the reasonless one and the bare one.
	if len(malformed) != 2 {
		t.Fatalf("got %d malformed-directive findings, want 2: %v", len(malformed), diags)
	}
	if !strings.Contains(malformed[0].Message, "missing analyzer name and reason") &&
		!strings.Contains(malformed[1].Message, "missing analyzer name and reason") {
		t.Errorf("no finding mentions the bare directive: %v", malformed)
	}
	found := false
	for _, d := range malformed {
		if strings.Contains(d.Message, "without a reason suppresses nothing") {
			found = true
		}
	}
	if !found {
		t.Errorf("no finding rejects the reasonless directive: %v", malformed)
	}
	// Two determinism findings survive (reasonless + bare lines); the
	// well-formed suppression in excused() removes the third.
	if len(determinism) != 2 {
		t.Fatalf("got %d determinism findings, want 2 (reasonless directives must not suppress): %v", len(determinism), diags)
	}
}

// TestMarkerReasonRequired pins the hierflow marker contract, mirroring
// TestSuppressionReasonRequired: //hierflow:sync and //hierflow:serial are
// exemptions, so a reasonless one declares nothing and is reported as
// malformed under the "lint" pseudo-analyzer, while the well-formed sync
// marker in the same fixture passes silently.
func TestMarkerReasonRequired(t *testing.T) {
	pkgs, err := lint.Load(".", "./testdata/markers")
	if err != nil {
		t.Fatal(err)
	}
	diags := lint.Run(pkgs[0], nil)
	if len(diags) != 2 {
		t.Fatalf("got %d findings, want 2 malformed markers: %v", len(diags), diags)
	}
	var sawSync, sawSerial bool
	for _, d := range diags {
		if d.Analyzer != "lint" {
			t.Errorf("marker finding under analyzer %q, want lint: %s", d.Analyzer, d)
		}
		if strings.Contains(d.Message, "hierflow:sync without a reason") {
			sawSync = true
		}
		if strings.Contains(d.Message, "hierflow:serial without a reason") {
			sawSerial = true
		}
	}
	if !sawSync || !sawSerial {
		t.Errorf("missing malformed-marker findings (sync=%v serial=%v): %v", sawSync, sawSerial, diags)
	}
}

// TestSortDiagnostics pins the report ordering: (file, line, analyzer,
// column, message), so hierlint output is byte-stable across runs.
func TestSortDiagnostics(t *testing.T) {
	mk := func(file string, line, col int, an, msg string) lint.Diagnostic {
		d := lint.Diagnostic{Analyzer: an, Message: msg}
		d.Pos.Filename, d.Pos.Line, d.Pos.Column = file, line, col
		return d
	}
	in := []lint.Diagnostic{
		mk("b.go", 1, 1, "determinism", "z"),
		mk("a.go", 9, 2, "tagspace", "m"),
		mk("a.go", 9, 1, "poolreturn", "m"),
		mk("a.go", 9, 2, "poolreturn", "b"),
		mk("a.go", 9, 2, "poolreturn", "a"),
		mk("a.go", 3, 7, "errcheck", "x"),
	}
	lint.SortDiagnostics(in)
	want := []string{
		"a.go:3:7: [errcheck] x",
		"a.go:9:1: [poolreturn] m",
		"a.go:9:2: [poolreturn] a",
		"a.go:9:2: [poolreturn] b",
		"a.go:9:2: [tagspace] m",
		"b.go:1:1: [determinism] z",
	}
	for i, d := range in {
		if d.String() != want[i] {
			t.Errorf("position %d: got %s, want %s", i, d.String(), want[i])
		}
	}
}

// TestDiagnosticString pins the CLI output format
// (file:line:col: [analyzer] message) so scripts can rely on it.
func TestDiagnosticString(t *testing.T) {
	pkgs, err := lint.Load(".", "./testdata/errcheck")
	if err != nil {
		t.Fatal(err)
	}
	diags := lint.Run(pkgs[0], []*lint.Analyzer{lint.ByName("errcheck")})
	if len(diags) == 0 {
		t.Fatal("errcheck fixture produced no diagnostics")
	}
	got := diags[0].String()
	re := regexp.MustCompile(`^.+\.go:\d+:\d+: \[errcheck\] .+$`)
	if !re.MatchString(got) {
		t.Errorf("Diagnostic.String() = %q, want file:line:col: [analyzer] message", got)
	}
}
