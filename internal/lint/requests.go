package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// RequestHygieneAnalyzer guards the simulated MPI layer's liveness: every
// request returned by Isend/Irecv must be able to reach a Wait. A request
// that is discarded (or waited only on some control-flow paths) is exactly
// the bug class that deadlocks a simulated collective or silently drops a
// message — the timing curves keep coming out, just wrong.
//
// Three escalating checks on each Isend/Irecv call:
//
//  1. Result discarded outright (expression statement) — the request can
//     never be waited.
//
//  2. Result assigned to blank (_) — same leak, spelled explicitly.
//
//  3. Result bound to a variable that is never mentioned again, or whose
//     every subsequent use sits inside an else-less `if` body or a switch
//     case while the variable appears in no condition — on the fall-through
//     path the request leaks.
//
// The analysis is intentionally conservative: passing the request to any
// call (WaitAll, append, a helper), returning it, or storing it anywhere
// counts as consumption. Genuine fire-and-forget sends (eager-buffered
// semantics) should collect the request with WaitAll at a barrier, or carry
// a //lint:ignore requesthygiene directive explaining why the leak is safe.
var RequestHygieneAnalyzer = &Analyzer{
	Name: "requesthygiene",
	Doc:  "flag Isend/Irecv requests that can never reach a Wait",
	Run:  runRequestHygiene,
}

// isRequestCall reports whether call is p.Isend(...) or p.Irecv(...) from
// the simulated MPI runtime.
func isRequestCall(info *types.Info, call *ast.CallExpr) bool {
	fn, ok := calleeObj(info, call).(*types.Func)
	if !ok {
		return false
	}
	if fn.Name() != "Isend" && fn.Name() != "Irecv" {
		return false
	}
	return strings.HasSuffix(pkgPathOf(fn), "internal/mpi")
}

func runRequestHygiene(pass *Pass) {
	info := pass.Info()
	for _, f := range pass.Files() {
		for _, fd := range funcBodies(f) {
			checkRequests(pass, info, fd)
		}
	}
}

func checkRequests(pass *Pass, info *types.Info, fd *ast.FuncDecl) {
	// Pass 1: find request-creating calls and classify their context.
	type tracked struct {
		obj  types.Object // variable the request was bound to
		call *ast.CallExpr
		name string // Isend or Irecv
	}
	var vars []tracked

	inspectStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isRequestCall(info, call) {
			return true
		}
		name := calleeObj(info, call).Name()
		if len(stack) == 0 {
			return true
		}
		switch parent := stack[len(stack)-1].(type) {
		case *ast.ExprStmt:
			pass.Reportf(call.Pos(), "%s request discarded: no Wait can ever collect it (simulated request leak)", name)
		case *ast.AssignStmt:
			// Locate which LHS this call feeds. Isend/Irecv return one
			// value, so in a multi-assign the positions correspond.
			for i, rhs := range parent.Rhs {
				if rhs != call {
					continue
				}
				if i >= len(parent.Lhs) {
					break
				}
				lhs, ok := parent.Lhs[i].(*ast.Ident)
				if !ok {
					break // field/index store: the request escapes, assume consumed
				}
				if lhs.Name == "_" {
					pass.Reportf(call.Pos(), "%s request assigned to blank: no Wait can ever collect it", name)
					break
				}
				if obj := info.ObjectOf(lhs); obj != nil {
					vars = append(vars, tracked{obj: obj, call: call, name: name})
				}
			}
		}
		return true
	})

	// Pass 2: audit each tracked variable's uses across the whole body
	// (nested closures included).
	for _, t := range vars {
		var uses []struct {
			id    *ast.Ident
			stack []ast.Node
		}
		inCond := false
		inspectStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || info.Uses[id] != t.obj {
				return true
			}
			if isAssignLHS(id, stack) {
				return true // reassignment target, not a consumption
			}
			if identInCondition(id, stack) {
				inCond = true
			}
			uses = append(uses, struct {
				id    *ast.Ident
				stack []ast.Node
			}{id, append([]ast.Node(nil), stack...)})
			return true
		})

		if len(uses) == 0 {
			pass.Reportf(t.call.Pos(), "%s request bound to %s but never used: no Wait can ever collect it", t.name, t.obj.Name())
			continue
		}
		if inCond {
			continue // polled (r.Done() loops) or nil-guarded; trust it
		}
		allConditional := true
		for _, u := range uses {
			if !conditionalUse(u.id, u.stack, t.call) {
				allConditional = false
				break
			}
		}
		if allConditional {
			pass.Reportf(t.call.Pos(), "%s request %s is waited only inside a conditional branch: on the fall-through path it leaks", t.name, t.obj.Name())
		}
	}
}

// identInCondition reports whether id appears in the condition expression of
// an enclosing if/for/switch — evidence of polling or guarding, which pass 2
// treats as deliberate.
func identInCondition(id *ast.Ident, stack []ast.Node) bool {
	for _, n := range stack {
		var cond ast.Expr
		switch s := n.(type) {
		case *ast.IfStmt:
			cond = s.Cond
		case *ast.ForStmt:
			cond = s.Cond
		case *ast.SwitchStmt:
			cond = s.Tag
		}
		if cond != nil && cond.Pos() <= id.Pos() && id.End() <= cond.End() {
			return true
		}
	}
	return false
}

// conditionalUse reports whether the use's nearest branching ancestor (above
// the defining call's statement) is an else-less if body or a switch case —
// i.e. there is a path around it.
func conditionalUse(id *ast.Ident, stack []ast.Node, defCall *ast.CallExpr) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch s := stack[i].(type) {
		case *ast.IfStmt:
			// Only the body is conditional; and an if/else covers both arms.
			if s.Else == nil && within(s.Body, id) && !within(s, defCall) {
				return true
			}
		case *ast.CaseClause, *ast.CommClause:
			if !within(s, defCall) {
				return true
			}
		}
	}
	return false
}

// isAssignLHS reports whether id is an assignment target.
func isAssignLHS(id *ast.Ident, stack []ast.Node) bool {
	if len(stack) == 0 {
		return false
	}
	as, ok := stack[len(stack)-1].(*ast.AssignStmt)
	if !ok {
		return false
	}
	for _, lhs := range as.Lhs {
		if lhs == ast.Expr(id) {
			return true
		}
	}
	return false
}
