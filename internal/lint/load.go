package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
)

// Package is one loaded, parsed and type-checked package variant. A source
// directory yields up to three variants, mirroring how the go tool builds
// test binaries:
//
//	""      the plain package (GoFiles)
//	"test"  the in-package test variant (GoFiles + TestGoFiles, compiled
//	        together — test files see unexported identifiers)
//	"xtest" the external test package (XTestGoFiles, package foo_test)
//
// PkgPath is the directory's import path for every variant, so
// Analyzer.Applies scoping (path substrings and suffixes) treats test code
// exactly like the code it tests. ReportFiles, when non-nil, restricts
// which files' diagnostics this variant reports: the test variant reports
// only its _test.go files, since the base files were already reported by
// the plain variant.
type Package struct {
	PkgPath     string
	Variant     string
	Dir         string
	Fset        *token.FileSet
	Files       []*ast.File
	ReportFiles map[string]bool
	Types       *types.Package
	TypesInfo   *types.Info
}

// unitMeta is the subset of `go list -json` output the loader needs.
type unitMeta struct {
	ImportPath   string
	Dir          string
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
	Imports      []string
	TestImports  []string
	XTestImports []string
	Error        *struct{ Err string }
}

// listUnits lists the packages matching patterns. dir anchors the `go`
// invocation, so patterns may be relative (./...) or explicit directories —
// including testdata fixture directories, which the Go tool skips during
// pattern expansion but accepts when named outright.
func listUnits(dir string, patterns []string) ([]*unitMeta, error) {
	args := append([]string{"list",
		"-json=ImportPath,Dir,GoFiles,TestGoFiles,XTestGoFiles,Imports,TestImports,XTestImports,Error"},
		patterns...)
	out, err := runGo(dir, args...)
	if err != nil {
		return nil, err
	}
	dec := json.NewDecoder(strings.NewReader(out))
	var metas []*unitMeta
	for dec.More() {
		var m unitMeta
		if err := dec.Decode(&m); err != nil {
			return nil, fmt.Errorf("go list -json: %w", err)
		}
		metas = append(metas, &m)
	}
	return metas, nil
}

// modulePath returns the import path of dir's main module.
func modulePath(dir string) (string, error) {
	out, err := runGo(dir, "list", "-m", "-f", "{{.Path}}")
	if err != nil {
		return "", err
	}
	return strings.TrimSpace(out), nil
}

// exportResolver locates (building on first use) the compiled export data
// of the targets' full dependency closure, including test-only
// dependencies (-test). The build is lazy: a fully cache-hit driver run
// never needs export data at all, which is what keeps warm `hierlint ./...`
// runs cheap as the tree grows.
type exportResolver struct {
	dir      string
	patterns []string

	once sync.Once
	m    map[string]string
	err  error
}

func newExportResolver(dir string, patterns []string) *exportResolver {
	return &exportResolver{dir: dir, patterns: patterns}
}

func (r *exportResolver) build() {
	args := append([]string{"list", "-deps", "-test", "-export", "-f", "{{.ImportPath}}\t{{.Export}}"}, r.patterns...)
	out, err := runGo(r.dir, args...)
	if err != nil {
		r.err = err
		return
	}
	r.m = map[string]string{}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		path, file, ok := strings.Cut(line, "\t")
		if !ok || file == "" {
			continue
		}
		if _, exists := r.m[path]; !exists {
			r.m[path] = file
		}
	}
}

// lookup returns an export-data reader for path, for importer.ForCompiler.
func (r *exportResolver) lookup(path string) (io.ReadCloser, error) {
	r.once.Do(r.build)
	if r.err != nil {
		return nil, r.err
	}
	file, ok := r.m[path]
	if !ok || file == "" {
		return nil, fmt.Errorf("no export data for %q", path)
	}
	return os.Open(file)
}

// unitImporter resolves imports for one unit's type-checks: in-memory
// packages first (the xtest variant must see the freshly type-checked test
// variant of its own directory, exported test helpers included), compiled
// export data for everything else.
type unitImporter struct {
	exp   types.Importer
	local map[string]*types.Package
}

func (u *unitImporter) Import(path string) (*types.Package, error) {
	if p := u.local[path]; p != nil {
		return p, nil
	}
	return u.exp.Import(path)
}

// loadUnit parses and type-checks every variant of one listed package.
// Each unit owns its FileSet, so units load concurrently without sharing.
func loadUnit(m *unitMeta, exp *exportResolver) ([]*Package, error) {
	if m.Error != nil {
		return nil, fmt.Errorf("go list: %s: %s", m.ImportPath, m.Error.Err)
	}
	fset := token.NewFileSet()
	imp := &unitImporter{
		exp:   importer.ForCompiler(fset, "gc", exp.lookup),
		local: map[string]*types.Package{},
	}
	parse := func(names []string) ([]*ast.File, error) {
		var files []*ast.File
		for _, name := range names {
			f, err := parser.ParseFile(fset, filepath.Join(m.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		return files, nil
	}
	check := func(path string, files []*ast.File) (*types.Package, *types.Info, error) {
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Scopes:     map[ast.Node]*types.Scope{},
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(path, fset, files, info)
		if err != nil {
			return nil, nil, fmt.Errorf("typecheck %s: %w", path, err)
		}
		return tpkg, info, nil
	}
	fileSet := func(names []string) map[string]bool {
		s := make(map[string]bool, len(names))
		for _, name := range names {
			s[filepath.Join(m.Dir, name)] = true
		}
		return s
	}

	var pkgs []*Package
	baseFiles, err := parse(m.GoFiles)
	if err != nil {
		return nil, err
	}
	if len(baseFiles) > 0 {
		tpkg, info, err := check(m.ImportPath, baseFiles)
		if err != nil {
			return nil, err
		}
		imp.local[m.ImportPath] = tpkg
		pkgs = append(pkgs, &Package{
			PkgPath: m.ImportPath, Variant: "", Dir: m.Dir,
			Fset: fset, Files: baseFiles, Types: tpkg, TypesInfo: info,
		})
	}
	if len(m.TestGoFiles) > 0 {
		testFiles, err := parse(m.TestGoFiles)
		if err != nil {
			return nil, err
		}
		all := append(append([]*ast.File{}, baseFiles...), testFiles...)
		tpkg, info, err := check(m.ImportPath, all)
		if err != nil {
			return nil, err
		}
		imp.local[m.ImportPath] = tpkg // xtest sees test-variant exports
		pkgs = append(pkgs, &Package{
			PkgPath: m.ImportPath, Variant: "test", Dir: m.Dir,
			Fset: fset, Files: all, ReportFiles: fileSet(m.TestGoFiles),
			Types: tpkg, TypesInfo: info,
		})
	}
	if len(m.XTestGoFiles) > 0 {
		xFiles, err := parse(m.XTestGoFiles)
		if err != nil {
			return nil, err
		}
		tpkg, info, err := check(m.ImportPath+"_test", xFiles)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, &Package{
			PkgPath: m.ImportPath, Variant: "xtest", Dir: m.Dir,
			Fset: fset, Files: xFiles, Types: tpkg, TypesInfo: info,
		})
	}
	return pkgs, nil
}

// Load lists, parses and type-checks the packages matching patterns —
// every variant, test files included — resolving imports (stdlib and
// module-internal alike) through the build cache's compiled export data.
// Only the `go` tool itself is shelled out to; the analysis is pure
// go/ast + go/types. The incremental, parallel entry point is Analyze
// (driver.go); Load is the simple serial path used by tests and fixtures.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	metas, err := listUnits(dir, patterns)
	if err != nil {
		return nil, err
	}
	exp := newExportResolver(dir, patterns)
	var pkgs []*Package
	for _, m := range metas {
		ps, err := loadUnit(m, exp)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, ps...)
	}
	return pkgs, nil
}

func runGo(dir string, args ...string) (string, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return "", fmt.Errorf("go %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	return stdout.String(), nil
}
