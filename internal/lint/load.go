package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, parsed and type-checked Go package.
type Package struct {
	PkgPath   string
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File // non-test files only, in go list order
	Types     *types.Package
	TypesInfo *types.Info
}

// listedPkg is the subset of `go list -json` output the loader needs.
type listedPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Error      *struct{ Err string }
	DepsErrors []struct{ Err string }
}

// Load lists, parses and type-checks the packages matching patterns,
// resolving every import (stdlib and module-internal alike) through the
// build cache's compiled export data. dir anchors the `go` invocations, so
// patterns may be relative (./...) or explicit directories — including
// testdata fixture directories, which the Go tool skips during pattern
// expansion but accepts when named outright.
//
// Only the `go` tool itself is shelled out to; the analysis is pure
// go/ast + go/types.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	exports, err := exportMap(dir, patterns)
	if err != nil {
		return nil, err
	}
	metas, err := listPackages(dir, patterns)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	// One shared importer so every target sees the same *types.Package for
	// a given dependency (object identity matters when comparing APIs).
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})

	var pkgs []*Package
	for _, m := range metas {
		if m.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", m.ImportPath, m.Error.Err)
		}
		var files []*ast.File
		for _, name := range m.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(m.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		if len(files) == 0 {
			continue
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Scopes:     map[ast.Node]*types.Scope{},
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(m.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("typecheck %s: %w", m.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			PkgPath:   m.ImportPath,
			Dir:       m.Dir,
			Fset:      fset,
			Files:     files,
			Types:     tpkg,
			TypesInfo: info,
		})
	}
	return pkgs, nil
}

// exportMap builds (if needed) and locates the compiled export data of the
// targets' full dependency closure: import path -> export file.
func exportMap(dir string, patterns []string) (map[string]string, error) {
	args := append([]string{"list", "-deps", "-export", "-f", "{{.ImportPath}}\t{{.Export}}"}, patterns...)
	out, err := runGo(dir, args...)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		path, file, ok := strings.Cut(line, "\t")
		if !ok {
			continue
		}
		exports[path] = file
	}
	return exports, nil
}

// listPackages returns the metadata of the target packages themselves.
func listPackages(dir string, patterns []string) ([]*listedPkg, error) {
	args := append([]string{"list", "-json=ImportPath,Dir,GoFiles,Error,DepsErrors"}, patterns...)
	out, err := runGo(dir, args...)
	if err != nil {
		return nil, err
	}
	dec := json.NewDecoder(strings.NewReader(out))
	var metas []*listedPkg
	for dec.More() {
		var m listedPkg
		if err := dec.Decode(&m); err != nil {
			return nil, fmt.Errorf("go list -json: %w", err)
		}
		metas = append(metas, &m)
	}
	return metas, nil
}

func runGo(dir string, args ...string) (string, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return "", fmt.Errorf("go %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	return stdout.String(), nil
}
