package lint_test

import (
	"os"
	"path/filepath"
	"testing"

	"hierknem/internal/lint"
)

// writeTree scaffolds a throwaway Go module for driver tests: hermetic (no
// dependency on the hierknem tree), so cache behavior is exercised without
// coupling the test to real-package contents.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const cacheGoMod = "module cachetest\n\ngo 1.24\n"

// cacheBaseSrc marks Cell as a component and exposes a helper whose
// CrossStores fact says "param 1 is stored into param 0's reachable set" —
// the cross-package fact the dependent package's analysis hinges on.
const cacheBaseSrc = `// Package base is a driver-test fixture.
package base

// Cell is a confinement domain.
//
//hierflow:component
type Cell struct {
	Items []*Item
}

// Item is payload.
type Item struct{ N int }

// Put stores it into dst's reachable set.
func Put(dst *Cell, it *Item) {
	dst.Items = append(dst.Items, it)
}
`

// cacheBaseUnmarked is the same package without the component marker: the
// fact set differs (no confined type), so swapping between the two changes
// the base package's fact hash and must invalidate dependents.
const cacheBaseUnmarked = `// Package base is a driver-test fixture.
package base

// Cell is a confinement domain (unmarked in this variant).
type Cell struct {
	Items []*Item
}

// Item is payload.
type Item struct{ N int }

// Put stores it into dst's reachable set.
func Put(dst *Cell, it *Item) {
	dst.Items = append(dst.Items, it)
}
`

const cacheAppSrc = `// Package app is a driver-test fixture dependent.
package app

import "cachetest/internal/base"

// Leak moves an item across components through the helper.
func Leak(a, b *base.Cell) {
	base.Put(b, a.Items[0])
}
`

func cacheTree(t *testing.T, baseSrc string) string {
	return writeTree(t, map[string]string{
		"go.mod":                cacheGoMod,
		"internal/base/base.go": baseSrc,
		"internal/app/app.go":   cacheAppSrc,
	})
}

func analyzeTree(t *testing.T, dir, cacheDir string, workers int) ([]lint.Diagnostic, *lint.Stats) {
	t.Helper()
	diags, stats, err := lint.Analyze(lint.Options{
		Dir:      dir,
		CacheDir: cacheDir,
		Workers:  workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	return diags, stats
}

func hitByPkg(stats *lint.Stats) map[string]bool {
	m := map[string]bool{}
	for _, u := range stats.PerUnit {
		m[u.Pkg] = u.CacheHit
	}
	return m
}

// TestDriverCacheIdenticalTree pins the warm-cache contract: a second run
// over an untouched tree re-analyzes zero packages and reproduces the
// diagnostics exactly.
func TestDriverCacheIdenticalTree(t *testing.T) {
	dir := cacheTree(t, cacheBaseSrc)
	cache := filepath.Join(dir, ".cache")

	cold, coldStats := analyzeTree(t, dir, cache, 0)
	if coldStats.CacheHits != 0 || coldStats.Analyzed != coldStats.Units {
		t.Fatalf("cold run: %d hits, %d analyzed of %d units — want all analyzed", coldStats.CacheHits, coldStats.Analyzed, coldStats.Units)
	}
	if len(cold) == 0 {
		t.Fatal("fixture tree should produce confine findings (cross-package fact check)")
	}

	warm, warmStats := analyzeTree(t, dir, cache, 0)
	if warmStats.Analyzed != 0 || warmStats.CacheHits != warmStats.Units {
		t.Fatalf("warm run: %d analyzed, %d hits of %d units — want zero re-analysis", warmStats.Analyzed, warmStats.CacheHits, warmStats.Units)
	}
	if len(warm) != len(cold) {
		t.Fatalf("warm diagnostics differ: %d vs %d", len(warm), len(cold))
	}
	for i := range warm {
		if warm[i].String() != cold[i].String() {
			t.Errorf("diag %d: warm %q != cold %q", i, warm[i], cold[i])
		}
	}
}

// TestDriverCacheInvalidation pins the two invalidation granularities:
// a comment-only edit re-analyzes just the touched package (its facts are
// unchanged, so dependents early-cut), while a fact-changing edit (removing
// the component marker) re-analyzes the dependents too.
func TestDriverCacheInvalidation(t *testing.T) {
	dir := cacheTree(t, cacheBaseSrc)
	cache := filepath.Join(dir, ".cache")
	basePath := filepath.Join(dir, "internal/base/base.go")

	diags, _ := analyzeTree(t, dir, cache, 0)
	if len(diags) == 0 {
		t.Fatal("marked fixture should produce confine findings")
	}

	// Comment-only edit: base misses, app early-cuts on the fact hash.
	if err := os.WriteFile(basePath, []byte(cacheBaseSrc+"\n// trailing comment\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, stats := analyzeTree(t, dir, cache, 0)
	hits := hitByPkg(stats)
	if hits["cachetest/internal/base"] {
		t.Error("base should re-analyze after a source edit")
	}
	if !hits["cachetest/internal/app"] {
		t.Error("app should cache-hit: the edit did not change base's facts (early cutoff)")
	}

	// Fact-changing edit: the marker disappears, base's fact hash changes,
	// app must re-analyze — and its findings disappear with the marker.
	if err := os.WriteFile(basePath, []byte(cacheBaseUnmarked), 0o644); err != nil {
		t.Fatal(err)
	}
	diags, stats = analyzeTree(t, dir, cache, 0)
	hits = hitByPkg(stats)
	if hits["cachetest/internal/base"] || hits["cachetest/internal/app"] {
		t.Errorf("both packages should re-analyze after a fact change, got hits %v", hits)
	}
	if len(diags) != 0 {
		t.Errorf("unmarked tree should be clean, got %v", diags)
	}
}

// TestDriverParallelMatchesSerial pins determinism: the merged output of a
// parallel run is byte-identical to a serial run, mirroring the
// isolation_test.go pattern of comparing runs under different interleaving.
func TestDriverParallelMatchesSerial(t *testing.T) {
	dir := cacheTree(t, cacheBaseSrc)

	serial, _ := analyzeTree(t, dir, "", 1)
	parallel, _ := analyzeTree(t, dir, "", 8)

	if len(serial) == 0 {
		t.Fatal("fixture tree should produce findings")
	}
	if len(serial) != len(parallel) {
		t.Fatalf("parallel found %d diagnostics, serial %d", len(parallel), len(serial))
	}
	for i := range serial {
		if serial[i].String() != parallel[i].String() {
			t.Errorf("diag %d: parallel %q != serial %q", i, parallel[i], serial[i])
		}
	}
}
