package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// BufferEscapeAnalyzer flags a buffer that is simultaneously handed to a
// collective and captured by a `go` statement's function literal with no
// synchronization inside the literal. The DES engine runs simulated ranks
// cooperatively — exactly one goroutine is runnable at a time — so process
// code is lock-free *by construction*. A raw `go` literal escapes that
// construction: it runs concurrently with the engine, and if it shares a
// payload buffer with an in-flight collective the result is a data race on
// simulated payload (caught only probabilistically by -race, and never by
// the simulator itself, whose timing stays plausible while the data rots).
//
// A capture is excused when the literal body visibly synchronizes: any
// channel operation, select statement, or call into package sync counts.
// Everything else gets flagged at the `go` statement.
var BufferEscapeAnalyzer = &Analyzer{
	Name: "bufferescape",
	Doc:  "flag buffers shared between a collective call and an unsynchronized goroutine",
	Run:  runBufferEscape,
}

func runBufferEscape(pass *Pass) {
	info := pass.Info()
	for _, f := range pass.Files() {
		for _, fd := range funcBodies(f) {
			checkBufferEscape(pass, info, fd)
		}
	}
}

// isBufferish reports whether t is shared mutable payload: a slice, or a
// pointer to the simulator's buffer.Buffer.
func isBufferish(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Slice:
		return true
	case *types.Pointer:
		if named, ok := u.Elem().(*types.Named); ok {
			obj := named.Obj()
			return obj.Name() == "Buffer" && strings.HasSuffix(pkgPathOf(obj), "internal/buffer")
		}
	}
	return false
}

// isCollectiveCall reports whether call enters the collective layer:
// internal/coll, internal/core (HierKNEM itself), or internal/modules (the
// baseline personalities).
func isCollectiveCall(info *types.Info, call *ast.CallExpr) bool {
	fn, ok := calleeObj(info, call).(*types.Func)
	if !ok {
		return false
	}
	path := pkgPathOf(fn)
	for _, suffix := range []string{"internal/coll", "internal/core", "internal/modules"} {
		if strings.HasSuffix(path, suffix) {
			return true
		}
	}
	return false
}

func checkBufferEscape(pass *Pass, info *types.Info, fd *ast.FuncDecl) {
	// Buffers passed to collectives anywhere in this function.
	collectiveArgs := map[types.Object]string{} // object -> callee name
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isCollectiveCall(info, call) {
			return true
		}
		callee := calleeObj(info, call).Name()
		for _, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
				if obj := info.ObjectOf(id); obj != nil && isBufferish(obj.Type()) {
					collectiveArgs[obj] = callee
				}
			}
		}
		return true
	})
	if len(collectiveArgs) == 0 {
		return
	}

	// go-statement literals capturing one of those buffers, unsynchronized.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit)
		if !ok {
			return true
		}
		if literalSynchronizes(info, lit) {
			return true
		}
		reported := map[types.Object]bool{}
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			id, ok := m.(*ast.Ident)
			if !ok {
				return true
			}
			obj := info.Uses[id]
			if obj == nil || reported[obj] {
				return true
			}
			callee, shared := collectiveArgs[obj]
			// Captured means declared outside the literal.
			declaredInside := lit.Pos() <= obj.Pos() && obj.Pos() <= lit.End()
			if shared && !declaredInside {
				reported[obj] = true
				pass.Reportf(gs.Pos(), "buffer %s is passed to collective %s and captured by this goroutine without synchronization (payload race)", obj.Name(), callee)
			}
			return true
		})
		return true
	})
}

// literalSynchronizes reports whether the literal body contains any visible
// synchronization: channel send/receive, select, or a call into package
// sync (Mutex, WaitGroup, Once, ...).
func literalSynchronizes(info *types.Info, lit *ast.FuncLit) bool {
	synced := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.SendStmt, *ast.SelectStmt:
			synced = true
		case *ast.UnaryExpr:
			if s.Op == token.ARROW {
				synced = true
			}
		case *ast.CallExpr:
			if fn, ok := calleeObj(info, s).(*types.Func); ok {
				if p := pkgPathOf(fn); p == "sync" || p == "sync/atomic" {
					synced = true
				}
			}
		}
		return !synced
	})
	return synced
}
