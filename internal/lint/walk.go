package lint

import "go/ast"

// inspectStack walks the tree rooted at n, calling fn for every node with
// the stack of enclosing nodes (outermost first, not including the node
// itself). Returning false prunes the subtree.
func inspectStack(n ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(n, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		ok := fn(n, stack)
		stack = append(stack, n)
		if !ok {
			// Still pushed; Inspect will send the matching nil pop only if
			// we return true, so pop eagerly and prune.
			stack = stack[:len(stack)-1]
		}
		return ok
	})
}

// funcBodies yields every function body in the file: declarations and,
// through normal traversal inside them, any nested literals are part of the
// same subtree (callers walk the whole body).
func funcBodies(f *ast.File) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			out = append(out, fd)
		}
	}
	return out
}

// within reports whether pos lies inside node's source range.
func within(node ast.Node, pos ast.Node) bool {
	return node.Pos() <= pos.Pos() && pos.End() <= node.End()
}
