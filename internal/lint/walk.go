package lint

import (
	"fmt"
	"go/ast"
	"strings"
)

// inspectStack walks the tree rooted at n, calling fn for every node with
// the stack of enclosing nodes (outermost first, not including the node
// itself). Returning false prunes the subtree.
func inspectStack(n ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(n, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		ok := fn(n, stack)
		stack = append(stack, n)
		if !ok {
			// Still pushed; Inspect will send the matching nil pop only if
			// we return true, so pop eagerly and prune.
			stack = stack[:len(stack)-1]
		}
		return ok
	})
}

// funcBodies yields every function body in the file: declarations and,
// through normal traversal inside them, any nested literals are part of the
// same subtree (callers walk the whole body).
func funcBodies(f *ast.File) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			out = append(out, fd)
		}
	}
	return out
}

// within reports whether pos lies inside node's source range.
func within(node ast.Node, pos ast.Node) bool {
	return node.Pos() <= pos.Pos() && pos.End() <= node.End()
}

// ignoreDirective is the comment prefix that suppresses a finding.
const ignoreDirective = "//lint:ignore"

type ignoreKey struct {
	file string
	line int
}

// directives is one package's parsed suppression table plus the findings for
// malformed directives. A directive must name an analyzer (or "all") AND give
// a reason; a suppression that cannot say why the finding is safe suppresses
// nothing and is itself reported, so reasonless ignores cannot accumulate.
type directives struct {
	ignored   map[ignoreKey]map[string]bool // file:line -> analyzer set ("all" wildcard)
	malformed []Diagnostic
}

// parseDirectives scans every comment of the package once, for all analyzers.
// A well-formed `//lint:ignore <analyzer> <reason>` covers its own line and
// the line immediately below it, so trailing and preceding placement both
// work.
func parseDirectives(pkg *Package) directives {
	var d directives
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, ignoreDirective)
				if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
					continue // not a directive (or a longer word sharing the prefix)
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(rest)
				switch len(fields) {
				case 0:
					d.malformed = append(d.malformed, Diagnostic{Pos: pos, Analyzer: "lint",
						Message: "malformed //lint:ignore: missing analyzer name and reason"})
				case 1:
					d.malformed = append(d.malformed, Diagnostic{Pos: pos, Analyzer: "lint",
						Message: fmt.Sprintf("//lint:ignore %s without a reason suppresses nothing: say why the finding is safe", fields[0])})
				default:
					if d.ignored == nil {
						d.ignored = map[ignoreKey]map[string]bool{}
					}
					for _, line := range []int{pos.Line, pos.Line + 1} {
						k := ignoreKey{pos.Filename, line}
						if d.ignored[k] == nil {
							d.ignored[k] = map[string]bool{}
						}
						d.ignored[k][fields[0]] = true
					}
				}
			}
		}
	}
	return d
}

// suppressed reports whether diag is covered by a well-formed directive.
func (d directives) suppressed(diag Diagnostic) bool {
	set := d.ignored[ignoreKey{diag.Pos.Filename, diag.Pos.Line}]
	return set != nil && (set[diag.Analyzer] || set["all"])
}
