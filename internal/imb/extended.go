package imb

import (
	"hierknem/internal/buffer"
	"hierknem/internal/coll"
	"hierknem/internal/modules"
	"hierknem/internal/mpi"
)

// Allreduce benchmarks MPI_Allreduce (sum over float64).
func Allreduce(w *mpi.World, mod modules.Module, bytes int64, opts Opts) Result {
	np := w.Size()
	sbufs := make([]*buffer.Buffer, np)
	rbufs := make([]*buffer.Buffer, np)
	for i := range sbufs {
		sbufs[i] = opts.newBuf(bytes)
		rbufs[i] = opts.newBuf(bytes)
	}
	a := coll.ReduceArgs{Op: buffer.OpSum, Dtype: buffer.Float64}
	avg, min, max, iters := timeOp(w, opts, func(p *mpi.Proc, c *mpi.Comm, it int) {
		mod.Allreduce(p, c, a, sbufs[c.Rank(p)], rbufs[c.Rank(p)])
	})
	return Result{
		Op: "allreduce", Module: mod.Name(), Bytes: bytes, Iterations: iters,
		AvgTime: avg, MinTime: min, MaxTime: max,
		AggBW: AggregateBW("allreduce", np, bytes, avg),
	}
}

// Scatter benchmarks MPI_Scatter; bytes is the per-rank block size.
func Scatter(w *mpi.World, mod modules.Module, bytes int64, opts Opts) Result {
	np := w.Size()
	sbufs := make([]*buffer.Buffer, np)
	rbufs := make([]*buffer.Buffer, np)
	for i := range sbufs {
		sbufs[i] = opts.newBuf(bytes * int64(np))
		rbufs[i] = opts.newBuf(bytes)
	}
	avg, min, max, iters := timeOp(w, opts, func(p *mpi.Proc, c *mpi.Comm, it int) {
		root := 0
		if opts.RotateRoot {
			root = it % np
		}
		mod.Scatter(p, c, sbufs[c.Rank(p)], rbufs[c.Rank(p)], root)
	})
	return Result{
		Op: "scatter", Module: mod.Name(), Bytes: bytes, Iterations: iters,
		AvgTime: avg, MinTime: min, MaxTime: max,
		AggBW: AggregateBW("scatter", np, bytes, avg),
	}
}

// Gather benchmarks MPI_Gather; bytes is the per-rank block size.
func Gather(w *mpi.World, mod modules.Module, bytes int64, opts Opts) Result {
	np := w.Size()
	sbufs := make([]*buffer.Buffer, np)
	rbufs := make([]*buffer.Buffer, np)
	for i := range sbufs {
		sbufs[i] = opts.newBuf(bytes)
		rbufs[i] = opts.newBuf(bytes * int64(np))
	}
	avg, min, max, iters := timeOp(w, opts, func(p *mpi.Proc, c *mpi.Comm, it int) {
		root := 0
		if opts.RotateRoot {
			root = it % np
		}
		mod.Gather(p, c, sbufs[c.Rank(p)], rbufs[c.Rank(p)], root)
	})
	return Result{
		Op: "gather", Module: mod.Name(), Bytes: bytes, Iterations: iters,
		AvgTime: avg, MinTime: min, MaxTime: max,
		AggBW: AggregateBW("gather", np, bytes, avg),
	}
}
