// Package imb reimplements the measurement methodology of the Intel MPI
// Benchmarks (IMB-3.2) used in the paper's evaluation: per-operation timing
// loops with a barrier before each iteration, the maximum time across ranks
// as the per-iteration result, and — for rooted operations — the root
// rotating across ranks every iteration (the detail behind the cache-reuse
// effect in Figure 6(a)).
package imb

import (
	"fmt"

	"hierknem/internal/buffer"
	"hierknem/internal/coll"
	"hierknem/internal/modules"
	"hierknem/internal/mpi"
)

// Result is one benchmark measurement.
type Result struct {
	Op         string
	Module     string
	Bytes      int64 // message size (per-rank contribution for Allgather)
	Iterations int
	AvgTime    float64 // mean of per-iteration max-across-ranks times (s)
	MinTime    float64
	MaxTime    float64
	AggBW      float64 // aggregate bandwidth, bytes/s (see AggregateBW)
}

func (r Result) String() string {
	return fmt.Sprintf("%-10s %-9s %10d B  avg %12.3f us  aggBW %10.1f MB/s",
		r.Op, r.Module, r.Bytes, r.AvgTime*1e6, r.AggBW/1e6)
}

// TableRow renders the measurement as one row of the IMB table format
// (cmd/imb): bytes, reps, min/max/avg microseconds, aggregate MB/s.
// Rendering is split from measuring so sweep drivers can run data points
// out of order and still emit rows in table order.
func (r Result) TableRow() string {
	return fmt.Sprintf("%12d %10d %12.2f %12.2f %12.2f %14.1f",
		r.Bytes, r.Iterations, r.MinTime*1e6, r.MaxTime*1e6, r.AvgTime*1e6, r.AggBW/1e6)
}

// KnownOp reports whether RunOp can dispatch op. Drivers validate op lists
// before submitting sweep jobs so an unknown name fails fast, not mid-pool.
func KnownOp(op string) bool {
	switch op {
	case "bcast", "reduce", "allgather", "allreduce", "scatter", "gather":
		return true
	}
	return false
}

// RunOp dispatches the named collective benchmark — one sweep data point —
// on w. It reports an error for an unknown operation name.
func RunOp(w *mpi.World, mod modules.Module, op string, bytes int64, opts Opts) (Result, error) {
	switch op {
	case "bcast":
		return Bcast(w, mod, bytes, opts), nil
	case "reduce":
		return Reduce(w, mod, bytes, opts), nil
	case "allgather":
		return Allgather(w, mod, bytes, opts), nil
	case "allreduce":
		return Allreduce(w, mod, bytes, opts), nil
	case "scatter":
		return Scatter(w, mod, bytes, opts), nil
	case "gather":
		return Gather(w, mod, bytes, opts), nil
	default:
		return Result{}, fmt.Errorf("imb: unknown op %q", op)
	}
}

// AggregateBW computes the paper's "aggregate bandwidth" metric: total bytes
// delivered cluster-wide per second of operation time.
//
//	Bcast / Reduce: (P-1) ranks each consuming/producing S bytes
//	Allgather:      P ranks each receiving (P-1) remote blocks of S bytes
func AggregateBW(op string, np int, bytes int64, avgTime float64) float64 {
	if avgTime <= 0 {
		return 0
	}
	switch op {
	case "allgather":
		return float64(np) * float64(np-1) * float64(bytes) / avgTime
	default:
		return float64(np-1) * float64(bytes) / avgTime
	}
}

// Opts configures a benchmark run.
type Opts struct {
	Iterations int  // timing iterations (default 4)
	Warmup     int  // untimed warmup iterations (default 1; -1 disables)
	RotateRoot bool // IMB default for rooted ops: root = iteration % P
	Real       bool // use real payload buffers (default phantom: size-only)
}

func (o Opts) withDefaults() Opts {
	if o.Iterations == 0 {
		o.Iterations = 4
	}
	if o.Warmup == 0 {
		o.Warmup = 1
	}
	if o.Warmup < 0 {
		o.Warmup = 0
	}
	return o
}

func (o Opts) newBuf(n int64) *buffer.Buffer {
	if o.Real {
		return buffer.NewReal(make([]byte, n))
	}
	return buffer.NewPhantom(n)
}

// timeOp runs the op loop and reduces per-iteration times (max over ranks).
func timeOp(w *mpi.World, opts Opts, body func(p *mpi.Proc, c *mpi.Comm, iter int)) (avg, min, max float64, iters int) {
	opts = opts.withDefaults()
	total := opts.Warmup + opts.Iterations
	perIter := make([]float64, total) // max across ranks
	err := w.Run(func(p *mpi.Proc) {
		c := w.WorldComm()
		for it := 0; it < total; it++ {
			c.Barrier(p)
			t0 := p.Now()
			body(p, c, it)
			el := p.Now() - t0
			if el > perIter[it] {
				perIter[it] = el
			}
		}
	})
	if err != nil {
		panic(fmt.Sprintf("imb: benchmark run failed: %v", err))
	}
	timed := perIter[opts.Warmup:]
	min, max = timed[0], timed[0]
	var sum float64
	for _, t := range timed {
		sum += t
		if t < min {
			min = t
		}
		if t > max {
			max = t
		}
	}
	return sum / float64(len(timed)), min, max, len(timed)
}

// Bcast benchmarks MPI_Bcast for one module and message size.
func Bcast(w *mpi.World, mod modules.Module, bytes int64, opts Opts) Result {
	np := w.Size()
	bufs := make([]*buffer.Buffer, np)
	for i := range bufs {
		bufs[i] = opts.newBuf(bytes)
	}
	avg, min, max, iters := timeOp(w, opts, func(p *mpi.Proc, c *mpi.Comm, it int) {
		root := 0
		if opts.RotateRoot {
			root = it % np
		}
		mod.Bcast(p, c, bufs[c.Rank(p)], root)
	})
	return Result{
		Op: "bcast", Module: mod.Name(), Bytes: bytes, Iterations: iters,
		AvgTime: avg, MinTime: min, MaxTime: max,
		AggBW: AggregateBW("bcast", np, bytes, avg),
	}
}

// Reduce benchmarks MPI_Reduce (sum over float64).
func Reduce(w *mpi.World, mod modules.Module, bytes int64, opts Opts) Result {
	np := w.Size()
	sbufs := make([]*buffer.Buffer, np)
	rbufs := make([]*buffer.Buffer, np)
	for i := range sbufs {
		sbufs[i] = opts.newBuf(bytes)
		rbufs[i] = opts.newBuf(bytes)
	}
	a := coll.ReduceArgs{Op: buffer.OpSum, Dtype: buffer.Float64}
	avg, min, max, iters := timeOp(w, opts, func(p *mpi.Proc, c *mpi.Comm, it int) {
		root := 0
		if opts.RotateRoot {
			root = it % np
		}
		mod.Reduce(p, c, a, sbufs[c.Rank(p)], rbufs[c.Rank(p)], root)
	})
	return Result{
		Op: "reduce", Module: mod.Name(), Bytes: bytes, Iterations: iters,
		AvgTime: avg, MinTime: min, MaxTime: max,
		AggBW: AggregateBW("reduce", np, bytes, avg),
	}
}

// Allgather benchmarks MPI_Allgather; bytes is the per-rank contribution.
func Allgather(w *mpi.World, mod modules.Module, bytes int64, opts Opts) Result {
	np := w.Size()
	sbufs := make([]*buffer.Buffer, np)
	rbufs := make([]*buffer.Buffer, np)
	for i := range sbufs {
		sbufs[i] = opts.newBuf(bytes)
		rbufs[i] = opts.newBuf(bytes * int64(np))
	}
	avg, min, max, iters := timeOp(w, opts, func(p *mpi.Proc, c *mpi.Comm, it int) {
		mod.Allgather(p, c, sbufs[c.Rank(p)], rbufs[c.Rank(p)])
	})
	return Result{
		Op: "allgather", Module: mod.Name(), Bytes: bytes, Iterations: iters,
		AvgTime: avg, MinTime: min, MaxTime: max,
		AggBW: AggregateBW("allgather", np, bytes, avg),
	}
}
