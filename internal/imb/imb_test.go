package imb

import (
	"math"
	"strings"
	"testing"

	"hierknem/internal/core"
	"hierknem/internal/modules"
	"hierknem/internal/mpi"
	"hierknem/internal/topology"
)

func testWorld(t *testing.T, nodes, cores, np int) *mpi.World {
	t.Helper()
	m, err := topology.Build(topology.Spec{
		Name: "imbtest", Nodes: nodes, SocketsPerNode: 1, CoresPerSocket: cores,
		MemBandwidth: 10e9, CoreCopyBandwidth: 3e9, L3Bandwidth: 6e9,
		L3Size: 12 << 20, ShmLatency: 1e-6,
		NetBandwidth: 1e9, NetLatency: 10e-6, NetFullDuplex: true,
		EagerThreshold: 4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := topology.ByCore(m, np)
	if err != nil {
		t.Fatal(err)
	}
	w, err := mpi.NewWorld(m, b, mpi.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestBcastResultSane(t *testing.T) {
	w := testWorld(t, 2, 4, 8)
	r := Bcast(w, core.New(core.Options{}), 64<<10, Opts{Iterations: 3, Warmup: 1})
	if r.Op != "bcast" || r.Module != "hierknem" || r.Bytes != 64<<10 {
		t.Fatalf("metadata wrong: %+v", r)
	}
	if r.Iterations != 3 {
		t.Fatalf("iterations = %d", r.Iterations)
	}
	if r.AvgTime <= 0 || r.MinTime <= 0 || r.MaxTime < r.AvgTime || r.AvgTime < r.MinTime {
		t.Fatalf("times inconsistent: %+v", r)
	}
	want := AggregateBW("bcast", 8, 64<<10, r.AvgTime)
	if math.Abs(r.AggBW-want) > 1e-6*want {
		t.Fatalf("AggBW = %g, want %g", r.AggBW, want)
	}
}

func TestReduceAndAllgatherRun(t *testing.T) {
	mods := []modules.Module{core.New(core.Options{}), modules.Tuned(modules.Quirks{})}
	for _, mod := range mods {
		w := testWorld(t, 2, 4, 8)
		r := Reduce(w, mod, 32<<10, Opts{Iterations: 2, Warmup: 1})
		if r.Op != "reduce" || r.AvgTime <= 0 {
			t.Fatalf("%s reduce: %+v", mod.Name(), r)
		}
		w2 := testWorld(t, 2, 4, 8)
		r2 := Allgather(w2, mod, 16<<10, Opts{Iterations: 2, Warmup: 1})
		if r2.Op != "allgather" || r2.AvgTime <= 0 {
			t.Fatalf("%s allgather: %+v", mod.Name(), r2)
		}
	}
}

func TestAggregateBWFormulas(t *testing.T) {
	if got := AggregateBW("bcast", 10, 100, 1); got != 900 {
		t.Fatalf("bcast agg = %g, want 900", got)
	}
	if got := AggregateBW("allgather", 10, 100, 1); got != 9000 {
		t.Fatalf("allgather agg = %g, want 9000", got)
	}
	if got := AggregateBW("reduce", 10, 100, 0); got != 0 {
		t.Fatalf("zero-time agg = %g", got)
	}
}

func TestRotateRootChangesTiming(t *testing.T) {
	// With root rotation the first iterations have different roots; on an
	// asymmetric topology this shows up as MaxTime > MinTime.
	w := testWorld(t, 2, 4, 8)
	r := Bcast(w, core.New(core.Options{}), 256<<10, Opts{Iterations: 8, Warmup: 0, RotateRoot: true})
	if r.MaxTime <= r.MinTime {
		t.Logf("rotation produced uniform times (possible but unusual): %+v", r)
	}
	// Fixed root must be deterministic: min == max.
	w2 := testWorld(t, 2, 4, 8)
	r2 := Bcast(w2, core.New(core.Options{}), 256<<10, Opts{Iterations: 4, Warmup: 1})
	if math.Abs(r2.MaxTime-r2.MinTime) > 1e-12+1e-6*r2.MaxTime {
		t.Fatalf("fixed-root iterations differ: min %g max %g", r2.MinTime, r2.MaxTime)
	}
}

func TestWarmupExcluded(t *testing.T) {
	// The warmup iteration (cold caches, first-touch) must not contribute
	// to the reported average: compare against a run with warmup counted.
	w := testWorld(t, 2, 4, 8)
	withWarm := Bcast(w, core.New(core.Options{}), 128<<10, Opts{Iterations: 3, Warmup: 1})
	if withWarm.Iterations != 3 {
		t.Fatalf("iterations = %d, want 3 (warmup excluded)", withWarm.Iterations)
	}
}

func TestRealBuffersMode(t *testing.T) {
	w := testWorld(t, 2, 2, 4)
	r := Bcast(w, core.New(core.Options{}), 8<<10, Opts{Iterations: 2, Warmup: 1, Real: true})
	if r.AvgTime <= 0 {
		t.Fatalf("real-mode run produced %+v", r)
	}
}

func TestResultString(t *testing.T) {
	r := Result{Op: "bcast", Module: "hierknem", Bytes: 1024, AvgTime: 1e-3, AggBW: 5e8}
	s := r.String()
	for _, frag := range []string{"bcast", "hierknem", "1024"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("String() = %q missing %q", s, frag)
		}
	}
}
