// Unit tests for parallel in-window phase execution: confined processes
// running concurrently on workers must replay the serial engine hex-exactly,
// cross-window machinery (outbox merge, deferred cancels) must be invisible
// in the committed log, and every coupling escape hatch must panic loudly.
package des

import (
	"fmt"
	"testing"
)

// phaseWorkload drives three confined processes through enough rounds of
// sleeps and own-domain timers to cross several lookahead windows. Confined
// rounds record into per-domain slices (each touched only by its owning
// worker); the shared log is only appended from serial context, after
// ExitConfined.
func phaseWorkload(t *testing.T, eng *Engine) []string {
	t.Helper()
	const doms = 3
	perDom := make([][]string, doms)
	var log []string
	for d := 0; d < doms; d++ {
		d := d
		p := eng.Spawn(fmt.Sprintf("dom%d", d+1), func(p *Proc) {
			p.EnterConfined(int32(d) + 1)
			for i := 0; i < 6; i++ {
				fired := false
				tm := p.After(3e-4, func() { fired = true })
				p.Sleep(2e-4 * float64(d+1)) // fast and slow sleep paths
				if i%2 == 0 {
					tm.Cancel() // own-domain cancel, in or out of phase
				}
				p.Sleep(3e-4)
				perDom[d] = append(perDom[d], fmt.Sprintf("d%d i%d fired=%v %s", d, i, fired, hexT(p.Now())))
			}
			p.ExitConfined(5e-4)
			log = append(log, fmt.Sprintf("exit d%d %s", d, hexT(p.Now())))
		})
		p.SetDomain(int32(d) + 1)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	for d := 0; d < doms; d++ {
		log = append(log, perDom[d]...)
	}
	log = append(log, fmt.Sprintf("final %s seq=%d processed=%d", hexT(eng.Now()), eng.seq, eng.Processed()))
	return log
}

func parallelEngine(doms int, look float64, workers int) *Engine {
	eng := New()
	eng.SetPartition(&stubPartition{doms: doms, look: look})
	eng.SetMode(ModeParallel)
	if workers > 0 {
		eng.SetWorkers(workers)
	}
	return eng
}

// TestPhaseExecutionHexIdentical is the unit-level tentpole gate: the
// confined workload must replay the serial engine hex-exactly — including
// the final event sequence counter, so seq-block preallocation provably
// assigns the same sequence numbers serial dispatch would — at every worker
// count, and actually execute phases whenever two or more workers exist.
func TestPhaseExecutionHexIdentical(t *testing.T) {
	want := phaseWorkload(t, New())
	for _, workers := range []int{1, 2, 3, 8} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			eng := parallelEngine(3, 5e-4, workers)
			diffLog(t, "phase vs serial", want, phaseWorkload(t, eng))
			ws := eng.WindowStats()
			if workers == 1 {
				if ws.Windows != 0 {
					t.Fatalf("one-worker engine ran window machinery: %+v", ws)
				}
				return
			}
			if ws.Windows == 0 || ws.Phases == 0 || ws.PhaseEv == 0 {
				t.Fatalf("no parallel phase executed: %+v", ws)
			}
		})
	}
}

// TestPhaseOutboxBeyondHorizon pins the outbox path: a confined timer set
// farther ahead than the lookahead cannot stay in the phase's private
// window, so it rides a worker outbox to the coordinator and fires — at the
// serial engine's exact instant — in a later window.
func TestPhaseOutboxBeyondHorizon(t *testing.T) {
	run := func(eng *Engine) []string {
		perDom := make([][]string, 2)
		for d := 0; d < 2; d++ {
			d := d
			p := eng.Spawn(fmt.Sprintf("dom%d", d+1), func(p *Proc) {
				p.EnterConfined(int32(d) + 1)
				// 4x the lookahead: staged via the outbox mid-phase. The
				// callback reads the phase-aware Proc clock — Engine.Now is
				// deliberately frozen at the floor while workers run.
				p.After(2e-3, func() {
					perDom[d] = append(perDom[d], fmt.Sprintf("far d%d %s", d, hexT(p.Now())))
				})
				for i := 0; i < 8; i++ {
					p.Sleep(4e-4)
				}
				p.ExitConfined(5e-4)
			})
			p.SetDomain(int32(d) + 1)
		}
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		var log []string
		for d := 0; d < 2; d++ {
			log = append(log, perDom[d]...)
		}
		return append(log, fmt.Sprintf("final %s %d", hexT(eng.Now()), eng.Processed()))
	}
	want := run(New())
	if len(want) != 3 {
		t.Fatalf("far timers fired %d times, want 2: %v", len(want)-1, want)
	}
	eng := parallelEngine(2, 5e-4, 2)
	diffLog(t, "outbox", want, run(eng))
	if ws := eng.WindowStats(); ws.Phases == 0 {
		t.Fatalf("no phase executed: %+v", ws)
	}
}

// TestPhaseDeferredCrossDomainCancel pins the deferred-cancel path: a
// confined process cancels, mid-phase, a timer staged under another domain
// in a future window. The cancel must win (the callback never fires) and
// the log must stay hex-identical to serial, where the cancel is immediate.
func TestPhaseDeferredCrossDomainCancel(t *testing.T) {
	run := func(eng *Engine) []string {
		var log []string
		// Victim timer: staged under domain 2, far beyond every phase the
		// canceller executes in.
		doomed := eng.AtDomain(2, 6e-3, func() { log = append(log, "SHOULD NOT FIRE") })
		for d := 0; d < 2; d++ {
			d := d
			p := eng.Spawn(fmt.Sprintf("dom%d", d+1), func(p *Proc) {
				p.EnterConfined(int32(d) + 1)
				for i := 0; i < 6; i++ {
					p.Sleep(4e-4)
					if d == 0 && i == 3 {
						// ~1.6e-3: several windows in, inside a phase when
						// one is eligible.
						doomed.Cancel()
					}
				}
				p.ExitConfined(5e-4)
				log = append(log, fmt.Sprintf("exit d%d %s", d, hexT(p.Now())))
			})
			p.SetDomain(int32(d) + 1)
		}
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return append(log, fmt.Sprintf("final %s %d", hexT(eng.Now()), eng.Processed()))
	}
	want := run(New())
	for _, e := range want {
		if e == "SHOULD NOT FIRE" {
			t.Fatalf("serial reference fired the cancelled timer: %v", want)
		}
	}
	eng := parallelEngine(2, 5e-4, 2)
	diffLog(t, "deferred cancel", want, run(eng))
	if ws := eng.WindowStats(); ws.Phases == 0 {
		t.Fatalf("no phase executed — the cancel was never deferred: %+v", ws)
	}
}

// TestPhaseCouplingPanics pins the loud-failure guards: from inside a
// parallel window phase, every operation that would couple domains — an
// ambient-domain At, a Shared schedule, a Spawn — panics instead of
// diverging silently.
func TestPhaseCouplingPanics(t *testing.T) {
	for _, tc := range []struct {
		name string
		op   func(p *Proc)
	}{
		{"engine At", func(p *Proc) { p.eng.At(p.eng.Now()+1e-5, func() {}) }},
		{"shared After", func(p *Proc) { p.eng.AfterShared(1e-5, func() {}) }},
		{"spawn", func(p *Proc) { p.eng.Spawn("late", func(*Proc) {}) }},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			eng := parallelEngine(2, 5e-4, 2)
			panicked := 0
			for d := 0; d < 2; d++ {
				d := d
				p := eng.Spawn(fmt.Sprintf("dom%d", d+1), func(p *Proc) {
					p.EnterConfined(int32(d) + 1)
					for i := 0; i < 6; i++ {
						p.Sleep(4e-4)
						if d == 0 && i == 3 && eng.InWorkerPhase() {
							func() {
								defer func() {
									if recover() != nil {
										panicked++
									}
								}()
								tc.op(p)
							}()
						}
					}
					p.ExitConfined(5e-4)
				})
				p.SetDomain(int32(d) + 1)
			}
			if err := eng.Run(); err != nil {
				t.Fatal(err)
			}
			if ws := eng.WindowStats(); ws.Phases == 0 {
				t.Fatalf("no phase executed — guard never probed: %+v", ws)
			}
			if panicked != 1 {
				t.Fatalf("%s inside a phase panicked %d times, want 1", tc.name, panicked)
			}
		})
	}
}

// TestSetWorkersValidation pins SetWorkers' contract: negative counts and
// mid-run calls panic; 0 resolves to the host-derived default, clamped to
// [2, 8].
func TestSetWorkersValidation(t *testing.T) {
	eng := New()
	mustPanic := func(label string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", label)
			}
		}()
		fn()
	}
	mustPanic("SetWorkers(-1)", func() { eng.SetWorkers(-1) })
	if w := eng.Workers(); w < 2 || w > 8 {
		t.Fatalf("default Workers() = %d, want 2..8", w)
	}
	eng.SetWorkers(5)
	if w := eng.Workers(); w != 5 {
		t.Fatalf("Workers() = %d after SetWorkers(5)", w)
	}
	eng.Spawn("probe", func(p *Proc) {
		mustPanic("SetWorkers mid-run", func() { eng.SetWorkers(3) })
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestPhaseResetReplay resets a phased engine and requires hex-identical
// replays, with the worker count surviving the reset.
func TestPhaseResetReplay(t *testing.T) {
	eng := parallelEngine(3, 5e-4, 3)
	want := phaseWorkload(t, eng)
	if ws := eng.WindowStats(); ws.Phases == 0 {
		t.Fatalf("no phase executed: %+v", ws)
	}
	for i := 0; i < 3; i++ {
		eng.Reset()
		if eng.Workers() != 3 {
			t.Fatal("Reset dropped the worker count")
		}
		diffLog(t, fmt.Sprintf("phase reset replay %d", i), want, phaseWorkload(t, eng))
	}
}

// TestRunOnWorkersFanOut pins the shared fan-out primitive: every worker
// index runs exactly once, and a worker panic propagates to the caller.
func TestRunOnWorkersFanOut(t *testing.T) {
	hit := make([]int, 6)
	RunOnWorkers(len(hit), func(w int) { hit[w]++ })
	for w, n := range hit {
		if n != 1 {
			t.Fatalf("worker %d ran %d times", w, n)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("worker panic did not propagate")
		}
	}()
	RunOnWorkers(3, func(w int) {
		if w == 1 {
			panic("boom")
		}
	})
}

// mixedWorkload interleaves two confined domain processes with an
// unconfined residue process whose sleeps land inside the same windows, then
// parks the confined processes and wakes them from a global timer — the
// population shape PR 8's all-or-nothing census always rejected. Mixed
// windows must carve the confined prefixes into phases around the residue
// while the committed log stays hex-identical to serial.
func mixedWorkload(t *testing.T, eng *Engine) []string {
	t.Helper()
	perDom := make([][]string, 2)
	var log []string
	var procs []*Proc
	for d := 0; d < 2; d++ {
		d := d
		p := eng.Spawn(fmt.Sprintf("dom%d", d+1), func(p *Proc) {
			p.EnterConfined(int32(d) + 1)
			for i := 0; i < 10; i++ {
				p.Sleep(2e-4)
				perDom[d] = append(perDom[d], fmt.Sprintf("d%d i%d %s", d, i, hexT(p.Now())))
			}
			// Park confined; a residue timer wakes both at once, so the
			// resumes enter the coordinator bucket and the mid-window census
			// must collect them from there.
			p.Park()
			for i := 0; i < 4; i++ {
				p.Sleep(1.5e-4)
				perDom[d] = append(perDom[d], fmt.Sprintf("d%d w%d %s", d, i, hexT(p.Now())))
			}
			p.ExitConfined(5e-4)
			log = append(log, fmt.Sprintf("exit d%d %s", d, hexT(p.Now())))
		})
		p.SetDomain(int32(d) + 1)
		procs = append(procs, p)
	}
	eng.Spawn("residue", func(p *Proc) {
		for i := 0; i < 8; i++ {
			p.Sleep(3e-4)
			log = append(log, fmt.Sprintf("res i%d %s", i, hexT(p.Now())))
		}
	})
	eng.AtDomain(0, 3.1e-3, func() {
		for _, p := range procs {
			p.Wake()
		}
		log = append(log, "wakes "+hexT(eng.Now()))
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	for d := range perDom {
		log = append(log, perDom[d]...)
	}
	return append(log, fmt.Sprintf("final %s seq=%d processed=%d", hexT(eng.Now()), eng.seq, eng.Processed()))
}

// TestMixedWindowConfinedPlusResidue is the mixed-window tentpole gate at
// the unit level: windows holding both confined and residue events must
// still execute parallel phases (PR 8 serialized every such window) and
// replay the serial log hex-exactly at every worker count.
func TestMixedWindowConfinedPlusResidue(t *testing.T) {
	want := mixedWorkload(t, New())
	for _, workers := range []int{2, 3, 8} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			eng := parallelEngine(2, 5e-4, workers)
			diffLog(t, "mixed window", want, mixedWorkload(t, eng))
			ws := eng.WindowStats()
			if ws.Phases == 0 || ws.PhasedWindows == 0 {
				t.Fatalf("mixed windows never phased: %+v", ws)
			}
			if ws.PhasedWindows > ws.Windows {
				t.Fatalf("phased-window count exceeds window count: %+v", ws)
			}
		})
	}
}

// TestMixedWindowCancelFrozenResidue pins the deferred-cancel path mixed
// windows added: a confined process cancels, from inside a phase, a timer
// frozen in the coordinator's run queue as residue of the same window. The
// cancel must defer to the barrier and win (the callback never fires), and
// the log must stay hex-identical to serial, where the cancel is immediate.
func TestMixedWindowCancelFrozenResidue(t *testing.T) {
	sawFrozen := false
	run := func(eng *Engine, probe bool) []string {
		var log []string
		doomed := eng.AtDomain(0, 1.05e-3, func() { log = append(log, "SHOULD NOT FIRE") })
		for d := 0; d < 2; d++ {
			d := d
			p := eng.Spawn(fmt.Sprintf("dom%d", d+1), func(p *Proc) {
				p.EnterConfined(int32(d) + 1)
				for i := 0; i < 8; i++ {
					p.Sleep(2e-4)
					if d == 0 && i == 2 {
						if probe && eng.InWorkerPhase() &&
							doomed.ev.gen == doomed.gen && doomed.ev.inDom == -1 && doomed.ev.idx >= 0 {
							sawFrozen = true
						}
						doomed.Cancel()
					}
				}
				p.ExitConfined(5e-4)
				log = append(log, fmt.Sprintf("exit d%d %s", d, hexT(p.Now())))
			})
			p.SetDomain(int32(d) + 1)
		}
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return append(log, fmt.Sprintf("final %s %d pending=%d", hexT(eng.Now()), eng.Processed(), eng.Pending()))
	}
	want := run(New(), false)
	for _, e := range want {
		if e == "SHOULD NOT FIRE" {
			t.Fatalf("serial reference fired the cancelled timer: %v", want)
		}
	}
	eng := parallelEngine(2, 5e-4, 2)
	diffLog(t, "frozen-residue cancel", want, run(eng, true))
	if ws := eng.WindowStats(); ws.Phases == 0 {
		t.Fatalf("no phase executed: %+v", ws)
	}
	if !sawFrozen {
		t.Fatal("the cancel never observed the timer frozen in the run queue mid-phase — the test no longer exercises the deferred residue-cancel path")
	}
}

// TestMixedWindowEpochBumpFromResidue pins lookahead re-derivation against
// mixed windows: a residue callback merges "fabric components" mid-run (the
// partition bumps its epoch and changes its lookahead), and the next window
// must pick the new width up while phases keep executing and the log stays
// hex-identical to serial (which ignores the partition entirely).
func TestMixedWindowEpochBumpFromResidue(t *testing.T) {
	run := func(eng *Engine, part *stubPartition) []string {
		perDom := make([][]string, 2)
		var log []string
		for d := 0; d < 2; d++ {
			d := d
			p := eng.Spawn(fmt.Sprintf("dom%d", d+1), func(p *Proc) {
				p.EnterConfined(int32(d) + 1)
				for i := 0; i < 12; i++ {
					p.Sleep(2e-4)
					perDom[d] = append(perDom[d], fmt.Sprintf("d%d i%d %s", d, i, hexT(p.Now())))
				}
				p.ExitConfined(6e-4)
				log = append(log, fmt.Sprintf("exit d%d %s", d, hexT(p.Now())))
			})
			p.SetDomain(int32(d) + 1)
		}
		eng.AtDomain(0, 1.1e-3, func() {
			if part != nil {
				part.epoch++
				part.look = 3e-4
			}
			log = append(log, "merge "+hexT(eng.Now()))
		})
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		for d := range perDom {
			log = append(log, perDom[d]...)
		}
		return append(log, fmt.Sprintf("final %s %d", hexT(eng.Now()), eng.Processed()))
	}
	want := run(New(), nil)
	part := &stubPartition{doms: 2, look: 5e-4}
	eng := New()
	eng.SetPartition(part)
	eng.SetMode(ModeParallel)
	eng.SetWorkers(2)
	diffLog(t, "epoch bump", want, run(eng, part))
	ws := eng.WindowStats()
	if ws.Phases == 0 || ws.PhasedWindows == 0 {
		t.Fatalf("no phase executed across the epoch bump: %+v", ws)
	}
	if ws.Lookahead != 3e-4 {
		t.Fatalf("lookahead not re-derived after the epoch bump: %+v", ws)
	}
}

// TestPhaseWakeUnconfinedPanics pins the mixed-window soundness guard: a
// confined process waking an unconfined one from inside a phase would create
// residue below the phase bound, so it must panic with OpConfine instead.
func TestPhaseWakeUnconfinedPanics(t *testing.T) {
	eng := parallelEngine(2, 5e-4, 2)
	var leader *Proc
	leader = eng.Spawn("leader", func(p *Proc) {
		p.Park() // unconfined, parked for the duration
	})
	panicked := 0
	for d := 0; d < 2; d++ {
		d := d
		p := eng.Spawn(fmt.Sprintf("dom%d", d+1), func(p *Proc) {
			p.EnterConfined(int32(d) + 1)
			for i := 0; i < 6; i++ {
				p.Sleep(4e-4)
				if d == 0 && i == 3 && eng.InWorkerPhase() {
					func() {
						defer func() {
							if r := recover(); r != nil {
								if _, ok := r.(*CausalityError); !ok {
									t.Errorf("wake of unconfined proc panicked with %v, want *CausalityError", r)
								}
								panicked++
							}
						}()
						leader.Wake()
					}()
				}
			}
			p.ExitConfined(5e-4)
			if d == 0 {
				leader.Wake() // release the parked leader from serial context
			}
		})
		p.SetDomain(int32(d) + 1)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if ws := eng.WindowStats(); ws.Phases == 0 {
		t.Fatalf("no phase executed — guard never probed: %+v", ws)
	}
	if panicked != 1 {
		t.Fatalf("in-phase wake of an unconfined process panicked %d times, want 1", panicked)
	}
}

// TestConfinementBracketBalance pins the loud unbalanced-bracket contract
// backing the hierlint bracket analyzer: nested enters and an exit without a
// matching enter panic at the call site.
func TestConfinementBracketBalance(t *testing.T) {
	eng := New()
	nested, bare := false, false
	eng.Spawn("probe", func(p *Proc) {
		p.EnterConfined(1)
		func() {
			defer func() { nested = recover() != nil }()
			p.EnterConfined(2)
		}()
		p.ExitConfined(0)
		func() {
			defer func() { bare = recover() != nil }()
			p.ExitConfined(0)
		}()
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !nested {
		t.Fatal("nested EnterConfined did not panic")
	}
	if !bare {
		t.Fatal("ExitConfined without a matching EnterConfined did not panic")
	}
}
