package des

// Await runs start, which kicks off an asynchronous activity and receives a
// completion callback, then parks p until that callback fires. The callback
// may fire before start returns (zero-duration activities); Await handles
// that via the engine's latched-wake semantics. The callback must be invoked
// from engine context (an event or another process), and exactly once.
func Await(p *Proc, start func(done func())) {
	AwaitAll(p, 1, start)
}

// AwaitAll parks p until all n completion callbacks handed to start have
// fired. start receives a single done function that must be called exactly n
// times (from engine context).
//
// The done function and its counter live on the process, not on the call: a
// process is parked for the duration of an await, so it can never have two in
// flight, and the steady-state await path allocates nothing.
func AwaitAll(p *Proc, n int, start func(done func())) {
	start(AwaitBegin(p, n))
	AwaitEnd(p)
}

// AwaitBegin arms an await of n completions and returns the done callback to
// hand to the asynchronous activity; the caller starts the activity itself
// and then calls AwaitEnd. This split form exists for hot paths where the
// start closure passed to Await/AwaitAll would be a per-call allocation.
func AwaitBegin(p *Proc, n int) func() {
	p.awaitRemaining = n
	return p.awaitDone
}

// AwaitEnd parks p until every completion armed by AwaitBegin has fired.
func AwaitEnd(p *Proc) {
	for p.awaitRemaining > 0 {
		p.Park()
	}
}
