package des

// Await runs start, which kicks off an asynchronous activity and receives a
// completion callback, then parks p until that callback fires. The callback
// may fire before start returns (zero-duration activities); Await handles
// that via the engine's latched-wake semantics. The callback must be invoked
// from engine context (an event or another process).
func Await(p *Proc, start func(done func())) {
	finished := false
	start(func() {
		finished = true
		p.Wake()
	})
	for !finished {
		p.Park()
	}
}

// AwaitAll parks p until all n completion callbacks handed to start have
// fired. start receives a single done function that must be called exactly n
// times (from engine context).
func AwaitAll(p *Proc, n int, start func(done func())) {
	remaining := n
	start(func() {
		remaining--
		if remaining == 0 {
			p.Wake()
		}
	})
	for remaining > 0 {
		p.Park()
	}
}
