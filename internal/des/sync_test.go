package des

import (
	"testing"
)

func TestAwaitCompletesAfterCallback(t *testing.T) {
	e := New()
	var resumedAt float64 = -1
	e.Spawn("w", func(p *Proc) {
		Await(p, func(done func()) {
			e.After(3, done)
		})
		resumedAt = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if resumedAt != 3 {
		t.Fatalf("resumed at %g, want 3", resumedAt)
	}
}

func TestAwaitImmediateCompletion(t *testing.T) {
	// The callback may fire before start returns (zero-duration activity).
	e := New()
	finished := false
	e.Spawn("w", func(p *Proc) {
		Await(p, func(done func()) {
			done() // immediate, from engine context via the latched wake
		})
		finished = true
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !finished {
		t.Fatal("Await never returned")
	}
}

func TestAwaitAllWaitsForEveryCallback(t *testing.T) {
	e := New()
	var resumedAt float64 = -1
	e.Spawn("w", func(p *Proc) {
		AwaitAll(p, 3, func(done func()) {
			e.After(1, done)
			e.After(5, done)
			e.After(2, done)
		})
		resumedAt = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if resumedAt != 5 {
		t.Fatalf("resumed at %g, want 5 (the slowest callback)", resumedAt)
	}
}

func TestAwaitSequentialActivities(t *testing.T) {
	e := New()
	var marks []float64
	e.Spawn("w", func(p *Proc) {
		for i := 0; i < 3; i++ {
			Await(p, func(done func()) { e.After(2, done) })
			marks = append(marks, p.Now())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 4, 6}
	for i := range want {
		if marks[i] != want[i] {
			t.Fatalf("marks = %v, want %v", marks, want)
		}
	}
}

func TestCancelTimerWhileRunning(t *testing.T) {
	e := New()
	fired := false
	var tm Timer
	tm = e.After(5, func() { fired = true })
	e.After(1, func() { tm.Cancel() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("cancelled timer fired")
	}
	if e.Now() != 5 {
		// The cancelled event still advances the queue pop but must not run.
		t.Logf("final time %g", e.Now())
	}
}

func TestSpawnStorm(t *testing.T) {
	// Processes spawning processes spawning processes — the engine must
	// drain them all deterministically.
	e := New()
	count := 0
	var spawn func(depth int)
	spawn = func(depth int) {
		e.Spawn("s", func(p *Proc) {
			p.Sleep(0.001)
			count++
			if depth < 5 {
				spawn(depth + 1)
				spawn(depth + 1)
			}
		})
	}
	spawn(0)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if count != 63 { // 2^6 - 1 nodes of the spawn tree
		t.Fatalf("count = %d, want 63", count)
	}
}
