package des

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"testing"
)

// stubPartition is a mutable Partition for unit tests.
type stubPartition struct {
	doms  int
	look  float64
	epoch uint64
}

func (s *stubPartition) Domains() int       { return s.doms }
func (s *stubPartition) Lookahead() float64 { return s.look }
func (s *stubPartition) Epoch() uint64      { return s.epoch }

func hexT(x float64) string { return strconv.FormatFloat(x, 'x', -1, 64) }

// pdesWorkload drives a small multi-domain program on eng and returns its
// event log: every observable instant rendered hex-exact, so string
// equality is bit equality. The program exercises sleeps (fast and slow
// paths), cross-domain wakes, callback timers, cancellation, and zero-time
// events.
func pdesWorkload(t *testing.T, eng *Engine) []string {
	t.Helper()
	var log []string
	emit := func(tag string) { log = append(log, tag+" "+hexT(eng.Now())) }

	var procs []*Proc
	for d := 0; d < 3; d++ {
		d := d
		p := eng.Spawn(fmt.Sprintf("dom%d", d+1), func(p *Proc) {
			for i := 0; i < 4; i++ {
				p.Sleep(1e-3 * float64(d+1))
				emit(fmt.Sprintf("slept d%d i%d", d, i))
			}
			p.Park()
			emit(fmt.Sprintf("woken d%d", d))
		})
		p.SetDomain(int32(d) + 1)
		procs = append(procs, p)
	}
	// Cross-domain timers, including one at a window-boundary-ish instant
	// and one cancelled before it can fire.
	eng.AtDomain(2, 2.5e-3, func() { emit("timer d2") })
	doomed := eng.AtDomain(3, 7e-3, func() { emit("SHOULD NOT FIRE") })
	eng.AtDomain(1, 3e-3, func() {
		doomed.Cancel()
		emit("cancelled d3 timer from d1")
	})
	// Wake every parked proc once the timers have played out.
	eng.AtDomain(0, 9e-3, func() {
		for _, p := range procs {
			p.Wake()
		}
		emit("wakes issued")
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	log = append(log, fmt.Sprintf("final %s seq=%d processed=%d pending=%d",
		hexT(eng.Now()), eng.seq, eng.Processed(), eng.Pending()))
	return log
}

func diffLog(t *testing.T, label string, want, got []string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: log length %d, want %d\nwant %v\ngot  %v", label, len(got), len(want), want, got)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: log entry %d differs:\n  want %s\n  got  %s", label, i, want[i], got[i])
		}
	}
}

// TestPDESDifferentialWorkload runs the same program serially and in
// parallel mode and requires hex-identical event logs, with the window
// machinery demonstrably engaged.
func TestPDESDifferentialWorkload(t *testing.T) {
	serial := pdesWorkload(t, New())

	eng := New()
	eng.SetPartition(&stubPartition{doms: 3, look: 5e-4})
	eng.SetMode(ModeParallel)
	diffLog(t, "parallel vs serial", serial, pdesWorkload(t, eng))

	ws := eng.WindowStats()
	if ws.Windows == 0 || ws.Collected == 0 {
		t.Fatalf("parallel run never exercised the window machinery: %+v", ws)
	}
	if ws.Staged != 0 {
		t.Fatalf("events still staged after Run: %+v", ws)
	}
}

// TestPDESWindowEdgeCases pins the window-advancement corner cases: a
// single-domain partition degenerates to the serial engine, simultaneous
// cross-domain events at the window boundary dispatch in (time, seq) order,
// and cancelling an event staged in another domain's future window removes
// it immediately.
func TestPDESWindowEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		run  func(t *testing.T, eng *Engine, parallel bool) []string
		part *stubPartition
		// wantWindows constrains the window counter after the parallel
		// run: -1 means "at least one".
		wantWindows int
	}{
		{
			name: "single-domain degenerates to serial",
			part: &stubPartition{doms: 1, look: 1e-6},
			run: func(t *testing.T, eng *Engine, parallel bool) []string {
				var log []string
				for i := 0; i < 5; i++ {
					at := float64(i) * 1e-3
					eng.At(at, func() { log = append(log, hexT(eng.Now())) })
				}
				if parallel {
					if st := eng.WindowStats(); st.Staged != 0 {
						t.Fatalf("degenerate partition staged %d event(s)", st.Staged)
					}
				}
				if err := eng.Run(); err != nil {
					t.Fatal(err)
				}
				return log
			},
			wantWindows: 0,
		},
		{
			name: "simultaneous cross-domain events at the window boundary",
			part: &stubPartition{doms: 2, look: 1e-3},
			run: func(t *testing.T, eng *Engine, parallel bool) []string {
				var log []string
				// Both domains schedule events at exactly t = lookahead
				// (the first window's horizon) and at the horizon of the
				// window after it. Scheduling order fixes seq order; the
				// dispatch order must follow it exactly.
				for _, at := range []float64{1e-3, 1e-3, 2e-3, 2e-3} {
					at := at
					for dom := int32(1); dom <= 2; dom++ {
						dom := dom
						eng.AtDomain(dom, at, func() {
							log = append(log, fmt.Sprintf("d%d %s", dom, hexT(eng.Now())))
						})
					}
				}
				if err := eng.Run(); err != nil {
					t.Fatal(err)
				}
				return log
			},
			wantWindows: -1,
		},
		{
			name: "cancel of an event in another domain's future window",
			part: &stubPartition{doms: 2, look: 1e-4},
			run: func(t *testing.T, eng *Engine, parallel bool) []string {
				var log []string
				// The domain-2 timer sits far beyond the first window.
				doomed := eng.AtDomain(2, 5e-2, func() { log = append(log, "SHOULD NOT FIRE") })
				if parallel {
					if st := eng.WindowStats(); st.Staged != 1 {
						t.Fatalf("far-future timer not staged: %+v", st)
					}
				}
				before := eng.Pending()
				eng.AtDomain(1, 1e-3, func() {
					doomed.Cancel()
					log = append(log, "cancelled "+hexT(eng.Now()))
				})
				if eng.Pending() != before+1 {
					t.Fatalf("Pending %d, want %d", eng.Pending(), before+1)
				}
				if err := eng.Run(); err != nil {
					t.Fatal(err)
				}
				if eng.Pending() != 0 {
					t.Fatalf("Pending %d after Run, want 0", eng.Pending())
				}
				return log
			},
			wantWindows: -1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			serial := tc.run(t, New(), false)

			eng := New()
			eng.SetPartition(tc.part)
			eng.SetMode(ModeParallel)
			diffLog(t, "parallel vs serial", serial, tc.run(t, eng, true))

			ws := eng.WindowStats()
			switch {
			case tc.wantWindows == 0 && ws.Windows != 0:
				t.Fatalf("windows = %d, want 0 (degenerate)", ws.Windows)
			case tc.wantWindows == -1 && ws.Windows == 0:
				t.Fatalf("windows = 0, want > 0: %+v", ws)
			}
		})
	}
}

// TestCausalityErrorBadLookahead pins the fault fixture for a zero or
// negative lookahead link: Run must refuse to start with a typed
// CausalityError naming the offending value, not silently reorder.
func TestCausalityErrorBadLookahead(t *testing.T) {
	for _, look := range []float64{0, -1e-6, math.NaN()} {
		eng := New()
		eng.SetPartition(&stubPartition{doms: 4, look: look})
		eng.SetMode(ModeParallel)
		eng.Spawn("p", func(p *Proc) { p.Sleep(1e-3) })
		err := eng.Run()
		var ce *CausalityError
		if !errors.As(err, &ce) {
			t.Fatalf("lookahead %g: Run returned %v, want *CausalityError", look, err)
		}
		if ce.Op != OpLookahead {
			t.Fatalf("lookahead %g: Op = %q, want %q", look, ce.Op, OpLookahead)
		}
		if !(ce.Lookahead == look || (math.IsNaN(look) && math.IsNaN(ce.Lookahead))) {
			t.Fatalf("lookahead %g: error records %g", look, ce.Lookahead)
		}
	}
}

// TestCausalityErrorLookaheadInvalidatedMidRun seeds a partition whose
// lookahead collapses to zero mid-run (epoch bump, as a fabric merge/split
// would signal): the next window advance must surface the CausalityError
// through Run instead of opening a zero-width window.
func TestCausalityErrorLookaheadInvalidatedMidRun(t *testing.T) {
	part := &stubPartition{doms: 2, look: 1e-3}
	eng := New()
	eng.SetPartition(part)
	eng.SetMode(ModeParallel)
	// The staged far-future event forces a window advance after the first
	// callback has poisoned the partition.
	eng.AtDomain(2, 5e-2, func() {})
	eng.AtDomain(1, 5e-4, func() {
		part.look = 0
		part.epoch++
	})
	err := eng.Run()
	var ce *CausalityError
	if !errors.As(err, &ce) {
		t.Fatalf("Run returned %v, want *CausalityError", err)
	}
	if ce.Op != OpLookahead || ce.Lookahead != 0 {
		t.Fatalf("got %+v, want Op=%q Lookahead=0", ce, OpLookahead)
	}
}

// TestCausalityErrorScheduleBehindFloor pins the fault fixture for an event
// scheduled behind its component's window floor: the typed panic must name
// the domain and the offending virtual time.
func TestCausalityErrorScheduleBehindFloor(t *testing.T) {
	eng := New()
	eng.SetPartition(&stubPartition{doms: 3, look: 1e-3})
	eng.SetMode(ModeParallel)
	var ce *CausalityError
	eng.At(2e-3, func() {
		defer func() {
			r := recover()
			var ok bool
			if ce, ok = r.(*CausalityError); !ok {
				panic(r)
			}
		}()
		eng.AtDomain(2, 1e-3, func() {}) // behind now (= 2e-3): causality violation
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if ce == nil {
		t.Fatal("scheduling behind the window floor did not panic with a CausalityError")
	}
	if ce.Op != OpSchedule || ce.Domain != 2 || ce.At != 1e-3 {
		t.Fatalf("got %+v, want Op=%q Domain=2 At=1e-3", ce, OpSchedule)
	}
	if ce.Floor > ce.At+1e-3 {
		t.Fatalf("recorded floor %g implausible for violation at %g", ce.Floor, ce.At)
	}
	if got := ce.Error(); got == "" {
		t.Fatal("empty CausalityError message")
	}
}

// TestSetModeFlushesStagedEvents flips an engine with staged events back to
// serial mode and requires every event to survive (promoted to the run
// queue) and fire in order.
func TestSetModeFlushesStagedEvents(t *testing.T) {
	eng := New()
	eng.SetPartition(&stubPartition{doms: 2, look: 1e-6})
	eng.SetMode(ModeParallel)
	var log []float64
	for i := 5; i > 0; i-- {
		at := float64(i) * 1e-3
		eng.AtDomain(int32(i%2)+1, at, func() { log = append(log, eng.Now()) })
	}
	if st := eng.WindowStats(); st.Staged != 5 {
		t.Fatalf("staged %d, want 5", st.Staged)
	}
	if eng.Pending() != 5 {
		t.Fatalf("Pending %d, want 5", eng.Pending())
	}
	eng.SetMode(ModeSerial)
	if eng.Pending() != 5 {
		t.Fatalf("Pending %d after flush, want 5", eng.Pending())
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(log) != 5 {
		t.Fatalf("%d events fired, want 5", len(log))
	}
	for i := 1; i < len(log); i++ {
		if log[i-1] >= log[i] {
			t.Fatalf("events out of order after mode flip: %v", log)
		}
	}
}

// TestPDESResetReplay resets a parallel-mode engine and requires the replay
// to be hex-identical, with the mode and partition surviving the reset.
func TestPDESResetReplay(t *testing.T) {
	eng := New()
	eng.SetPartition(&stubPartition{doms: 3, look: 5e-4})
	eng.SetMode(ModeParallel)
	want := pdesWorkload(t, eng)
	for i := 0; i < 3; i++ {
		eng.Reset()
		if eng.Mode() != ModeParallel {
			t.Fatal("Reset dropped parallel mode")
		}
		diffLog(t, fmt.Sprintf("reset replay %d", i), want, pdesWorkload(t, eng))
	}
}

// TestParallelPromotionLargeFanout forces the concurrent promotion path
// (many domains, hundreds of staged events) and checks dispatch order
// against the serial engine.
func TestParallelPromotionLargeFanout(t *testing.T) {
	const doms = 12
	const perDom = 40
	const look = 1e-3
	build := func(eng *Engine) []string {
		var log []string
		for d := int32(1); d <= doms; d++ {
			d := d
			for i := 0; i < perDom; i++ {
				// Deterministic pseudo-scatter of times well past the
				// first window, interleaved across domains.
				at := 1e-3 + float64((i*doms+int(d))%97)*1e-4
				eng.AtDomain(d, at, func() {
					log = append(log, fmt.Sprintf("d%d %s", d, hexT(eng.Now())))
				})
			}
		}
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return log
	}
	serial := build(New())
	eng := New()
	eng.SetPartition(&stubPartition{doms: doms, look: look})
	eng.SetMode(ModeParallel)
	diffLog(t, "large fanout", serial, build(eng))
	ws := eng.WindowStats()
	if ws.Collected != doms*perDom {
		t.Fatalf("promoted %d events, want %d: %+v", ws.Collected, doms*perDom, ws)
	}
	if ws.Windows < 2 {
		t.Fatalf("only %d window(s) opened: %+v", ws.Windows, ws)
	}
}
