// In-window parallel event execution for the conservative engine.
//
// PR 7's window machinery staged and promoted events in per-domain heaps but
// still dispatched every promoted event from one goroutine. This file adds
// the execution half of the conservative protocol: runs of confined events
// are handed to workers that each run a private dispatch loop — a per-domain
// now-bucket + heap, a per-domain baton so a domain's process goroutines
// resume on their owning worker, and a per-domain free list shard so
// concurrent allocation never contends on one pool head.
//
// # Eligibility (the mixed-window confinement census)
//
// A phase executes the maximal prefix of the window's remaining population
// that is provably independent per domain. The census computes the residue
// bound B — the least (time, seq) of any event that must dispatch serially:
// a global-domain event, a *Shared event (the fabric schedules all of its
// events as shared: its sync/fill/completion machinery reads and writes
// cross-domain state), or a resume of a process that has not declared
// confinement (Proc.EnterConfined). Every confined event strictly below B
// joins its domain's phase set; everything else is the residue, which stays
// in the coordinator's run queue and dispatches serially after the phase
// barrier. A phase runs when at least two domains contribute (and the
// resolved worker count is at least two, and no MaxTime horizon can trip
// inside the window); B = +Inf — no residue at all — recovers the PR 8
// whole-window phase as a special case.
//
// The census runs at window open and re-arms after each serially dispatched
// residue event, so one window can interleave several phase rounds with
// residue stretches (a leader's inter-node sends between two bracketed
// intra-node stretches, for instance).
//
// Soundness of the prefix: confined code cannot create work below B outside
// its own phase set — same-domain sub-horizon events stay in the private
// queue and are dispatched in-phase, beyond-horizon events ride the outbox
// (and the horizon is above every in-window bound), and waking or scheduling
// for an unconfined process from inside a phase panics. The phase therefore
// executes exactly the events the serial engine would have dispatched before
// B, in the same per-domain order.
//
// Eligibility is a prediction; the runtime backstop is that engine entry
// points reject cross-domain work during a phase with a typed
// CausalityError (OpConfine) instead of diverging silently.
//
// # Determinism: provisional seq blocks + barrier-time renumbering
//
// Events allocated inside a phase draw provisional sequence numbers from a
// per-domain block (provSeqBase | local counter). Within one domain the
// local allocation order equals the serial engine's allocation order
// restricted to that domain (confined execution is independent), and every
// provisional seq compares greater than every pre-window (real) seq, so each
// worker's local (time, seq) dispatch order equals the serial dispatch order
// restricted to its domain.
//
// At the window barrier the coordinator reconstructs the full serial
// interleaving: each worker logged its dispatches as (at, seq, nAlloc)
// records, and merging the per-domain record streams by (time, resolved seq)
// replays the exact order the serial engine would have dispatched the same
// events in. Walking that merge while handing out real sequence numbers — in
// allocation order within each dispatch — assigns every in-phase allocation
// the very seq the serial engine would have given it. A stream head is
// always resolvable: an in-phase event is allocated during an earlier
// dispatch of its own domain's stream, so by the time its record reaches the
// head, its final seq is known. Surviving events (per-worker outboxes of
// beyond-horizon work) are rewritten to their final seqs and merged into the
// coordinator's staging heaps, so the committed event log — and every
// downstream (time, seq) tie-break — is hex-identical to serial by
// construction.
//
// The Sleep lone-runner fast path is replicated per worker with the same
// observables (one seq, one processed event, clock movement) plus a
// synthetic dispatch record at the elided resume's (time, seq), so the
// renumbering attributes the sleeper's subsequent allocations to exactly the
// position the serial engine would.
package des

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"hierknem/internal/san"
)

// provSeqBase is the base of every provisional in-phase sequence block. Real
// seqs count events since Reset and stay far below 1<<63, so every
// provisional seq compares greater than every real seq — which is the serial
// order, since in-window allocations happen after all pre-window ones.
const provSeqBase = uint64(1) << 63

// outboxIdx marks an event parked in a worker outbox (neither heap, bucket,
// nor staging).
const outboxIdx = -3

// wsQueuedDom is the event.inDom sentinel for an event sitting in a domain
// worker's private heap during a phase. With mixed windows both a worker
// queue and the frozen coordinator run queue hold events with idx >= 0, so
// Timer.Cancel needs the marker to pick the right heap. Never visible
// outside a phase: pop and the barrier leftover flush restore -1.
const wsQueuedDom int32 = -2

// maxCensusFails bounds failed census attempts per window. Each failure
// costs a run-queue drain and restore, and a failed census can only flip to
// success after a residue dispatch raises the bound or changes the
// population, so the census re-arms per residue dispatch but gives up for
// the window after this many misses.
const maxCensusFails = 8

// dispRec is one worker dispatch, logged for the barrier-time renumbering:
// the dispatched event's (time, seq) and the number of sequence numbers the
// dispatch's execution consumed (event allocations plus Sleep fast paths).
type dispRec struct {
	at     float64
	seq    uint64 // provisional (>= provSeqBase) or real
	nAlloc uint32
}

// wstate is one domain's private dispatch state during a parallel phase.
// Exactly one worker goroutine (or a process goroutine it handed the baton
// to) touches a wstate at a time; distinct domains' wstates are disjoint.
type wstate struct {
	e      *Engine
	dom    int32
	active bool // begin..merge; read-only while workers run

	now       float64
	queue     eventHeap
	bucket    []*event
	bucketPos int
	processed uint64

	// boundAt/boundSeq is the phase's residue bound B: the private dispatch
	// loop stops before the first event at or beyond it, and the barrier
	// flushes whatever remains to the coordinator. +Inf when the window has
	// no residue (the PR 8 whole-window phase).
	boundAt  float64
	boundSeq uint64

	// pool is this domain's event free-list shard: in-phase allocation and
	// release never touch the engine's global pool, so workers do not
	// contend on one head.
	pool []*event

	// allocs counts in-phase sequence consumptions; allocation k carries
	// provisional seq provSeqBase+k and finals[k] receives its real seq at
	// the barrier.
	allocs      uint64
	finals      []uint64
	allocCursor int

	disp   []dispRec
	outbox []*event

	current  *Proc
	mainWake chan struct{}

	// pad keeps adjacent wstates' hot heads (pool, queue, bucket) out of
	// one cache line: workers hammer their own shard while neighbors do
	// the same.
	_ [64]byte
}

// SetWorkers fixes the number of workers parallel phases fan out to. n == 0
// (the default) resolves to min(GOMAXPROCS, 8) but at least 2, so the window
// machinery stays exercised even on one-core hosts. n == 1 disables
// in-window parallelism entirely: the engine degenerates to the serial
// organization (no staging, no windows, host pinning re-enabled), which is
// the small-host fast path — parallel mode at one worker tracks serial
// throughput and allocation behavior. Must not be called mid-Run.
func (e *Engine) SetWorkers(n int) {
	if e.running {
		panic("des: SetWorkers during Run")
	}
	if n < 0 {
		panic(fmt.Sprintf("des: SetWorkers(%d)", n))
	}
	e.workersReq = n
	if e.par != nil {
		e.initParallel()
	}
}

// Workers returns the resolved phase worker count.
func (e *Engine) Workers() int { return resolveWorkers(e.workersReq) }

func resolveWorkers(req int) int {
	if req > 0 {
		return req
	}
	n := runtime.GOMAXPROCS(0)
	if n > parCollectMaxProcs {
		n = parCollectMaxProcs
	}
	if n < 2 {
		n = 2
	}
	return n
}

// InWorkerPhase reports whether a parallel in-window phase is executing.
// Layers above the engine (mpi, fabric) consult it to reject cross-domain
// operations from confined code with a typed error instead of racing.
func (e *Engine) InWorkerPhase() bool {
	p := e.par
	return p != nil && p.inPhase
}

// EnterConfined declares that the process will, until ExitConfined, touch
// only state belonging to domain dom (>= 1): no cross-domain messages, no
// global-domain scheduling, no fabric flows. Windows whose runnable events
// all belong to confined processes execute their domains on parallel
// workers; the declaration is checked at runtime by the engine and the
// layers above it, so a violation is a loud CausalityError, never a silent
// divergence.
func (p *Proc) EnterConfined(dom int32) {
	if dom < 1 {
		panic(fmt.Sprintf("des: EnterConfined(%d): confined domains are >= 1", dom))
	}
	if p.confined {
		panic(fmt.Sprintf("des: EnterConfined(%d): process %s is already confined to domain %d (nested confinement brackets are unbalanced)", dom, p.name, p.dom))
	}
	p.dom = dom
	p.confined = true
}

// ExitConfined leaves the confined region. The process pays delay seconds of
// virtual time — the caller passes its partition's lookahead (the mpi layer
// passes the network latency) — which pushes the unconfined continuation
// beyond the current window horizon in every engine mode, so the exit is
// observed by other domains only across a window boundary and the event log
// stays mode-independent. After the delay the process is re-homed to the
// global domain. In parallel mode the delay must be at least the lookahead;
// a shorter exit would re-enter the running window unconfined and is
// rejected by the schedule path with a CausalityError.
func (p *Proc) ExitConfined(delay float64) {
	if !p.confined {
		panic("des: ExitConfined on process " + p.name + " without a matching EnterConfined (confinement brackets are unbalanced)")
	}
	p.confined = false
	p.Sleep(delay)
	p.dom = 0
}

// Confined reports the process's confinement declaration.
func (p *Proc) Confined() bool { return p.confined }

// wsFor returns the domain's wstate; bounds are the caller's invariant.
func (p *parstate) wsFor(dom int32) *wstate { return &p.ws[dom] }

// phaseWS returns the domain's wstate when that domain is part of the
// running phase, nil otherwise. Engine entry points reached from worker
// context use it to turn cross-domain operations — waking or scheduling for
// a process homed outside the phase's active domains — into a typed error
// instead of a data race on a foreign domain's queues.
func (p *parstate) phaseWS(dom int32) *wstate {
	if dom >= 1 && int(dom) < len(p.ws) {
		if ws := &p.ws[dom]; ws.active {
			return ws
		}
	}
	return nil
}

// confineViolation builds the OpConfine error for a cross-domain operation
// observed inside a running phase.
func (p *parstate) confineViolation(dom int32, at float64) *CausalityError {
	return &CausalityError{Op: OpConfine, Domain: dom, At: at, Floor: p.floor, Lookahead: p.look}
}

// ensureWS sizes the per-domain wstate table to match the staging heaps.
func (e *Engine) ensureWS(n int) {
	p := e.par
	if len(p.ws) >= n {
		return
	}
	ws := make([]wstate, n)
	copy(ws, p.ws)
	p.ws = ws
}

// domListed reports whether dom is in the pending phase's active set.
func (p *parstate) domListed(dom int32) bool {
	for _, d := range p.activeScratch {
		if d == dom {
			return true
		}
	}
	return false
}

// phaseEvent reports whether the event may execute inside a parallel phase:
// a live, non-shared event of a non-global domain whose target process (for
// resumes) or scheduling process (for confined Proc.After callbacks) has
// declared confinement.
func phaseEvent(ev *event) bool {
	if ev.shared || ev.dom < 1 || ev.dead() {
		return false
	}
	if pr := ev.proc; pr != nil {
		return pr.confined
	}
	return ev.confined
}

// censusScratch runs the mixed-window confinement census over the collected
// scratch. It computes the residue bound B — the least (time, seq) of any
// event that must dispatch serially — and carves the phase population: every
// confined event strictly below B. When at least two domains contribute, the
// residue moves to the run queue, the phase sets stay in scr, activeScratch
// lists the contributing domains, the bound is stored for the worker loops,
// and the census reports true. Otherwise everything stays in scr (the caller
// restores or promotes it) and the per-window failure budget is charged.
//
// The scratch must hold no dead events: staging heaps never do (Cancel
// removes staged events eagerly), and censusFromQueue recycles dead bucket
// entries while collecting. A dead event here would define a spurious bound.
func (e *Engine) censusScratch() bool {
	p := e.par
	bAt, bSeq := math.Inf(1), ^uint64(0)
	for di := range p.scr {
		for _, ev := range p.scr[di] {
			if di >= 1 && phaseEvent(ev) {
				continue
			}
			if ev.at < bAt || (ev.at == bAt && ev.seq < bSeq) {
				bAt, bSeq = ev.at, ev.seq
			}
		}
	}
	below := func(ev *event) bool {
		return ev.at < bAt || (ev.at == bAt && ev.seq < bSeq)
	}
	active := p.activeScratch[:0]
	for di := 1; di < len(p.scr); di++ {
		for _, ev := range p.scr[di] {
			if phaseEvent(ev) && below(ev) {
				active = append(active, int32(di))
				break
			}
		}
	}
	p.activeScratch = active
	if len(active) < 2 {
		p.censusFails++
		if p.censusFails >= maxCensusFails {
			p.censusOK = false
		}
		return false
	}
	for di := range p.scr {
		scr := p.scr[di]
		keep := scr[:0]
		for _, ev := range scr {
			if di >= 1 && phaseEvent(ev) && below(ev) {
				keep = append(keep, ev)
			} else {
				e.queue.push(ev)
			}
		}
		for i := len(keep); i < len(scr); i++ {
			scr[i] = nil
		}
		p.scr[di] = keep
	}
	p.boundAt, p.boundSeq = bAt, bSeq
	return true
}

// censusFromQueue re-runs the confinement census mid-window: the run queue
// and now-bucket are collected into the promotion scratch by domain (dead
// bucket entries are recycled on the way) and censusScratch partitions them
// exactly as at window open. On failure everything returns to the run queue;
// the restore is order-exact because the heap's (time, seq) order is the
// dispatch order — the now-bucket is an optimization, not an ordering
// domain: every bucket event carries a larger seq than any queued event at
// the same instant.
func (e *Engine) censusFromQueue() bool {
	p := e.par
	for _, ev := range e.bucket[e.bucketPos:] {
		if ev.dead() {
			e.release(ev)
			continue
		}
		e.bucketLive--
		ev.idx = -1
		di := int(ev.dom)
		if di < 0 || di >= len(p.scr) {
			di = 0
		}
		p.scr[di] = append(p.scr[di], ev)
	}
	e.bucket = e.bucket[:0]
	e.bucketPos = 0
	for len(e.queue) > 0 {
		ev := e.queue.popMin()
		di := int(ev.dom)
		if di < 0 || di >= len(p.scr) {
			di = 0
		}
		p.scr[di] = append(p.scr[di], ev)
	}
	if e.censusScratch() {
		return true
	}
	e.restoreScratch()
	return false
}

// runPhase executes one window's domains on parallel workers and merges the
// results so the engine state afterwards is exactly what serial dispatch of
// the same window would have produced. Must run on a goroutine no phase
// worker can try to resume (Run's goroutine, an exited process, or the
// dedicated handoff goroutine dispatch spawns).
func (e *Engine) runPhase(active []int32) {
	p := e.par
	e.ensureWS(len(p.heaps))
	for _, d := range active {
		ws := p.wsFor(d)
		ws.begin(e, d, p.floor, p.scr[d], p.boundAt, p.boundSeq)
	}
	nw := p.workers
	if nw > len(active) {
		nw = len(active)
	}
	if cap(p.panics) < nw {
		p.panics = make([]any, nw)
	}
	panics := p.panics[:nw]
	for i := range panics {
		panics[i] = nil
	}
	p.inPhase = true
	var (
		cursor atomic.Int64
		wg     sync.WaitGroup
	)
	for w := 0; w < nw; w++ {
		wg.Add(1)
		//hierflow:serial phase workers own disjoint domains (claimed via the atomic cursor); each domain's events, processes and pool shard are touched by exactly one worker at a time, and the coordinator only resumes after wg.Wait
		go func(wi int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panics[wi] = r
				}
			}()
			for {
				k := int(cursor.Add(1)) - 1
				if k >= len(active) {
					return
				}
				p.wsFor(active[k]).run()
			}
		}(w)
	}
	wg.Wait()
	p.inPhase = false
	for _, r := range panics {
		if r != nil {
			panic(r)
		}
	}
	e.mergePhase(active)
	for _, d := range active {
		p.scr[d] = p.scr[d][:0]
	}
	p.phases++
	if !p.winPhased {
		p.winPhased = true
		p.phasedWindows++
	}
}

// begin seeds the domain's private queue with its phase set and arms the
// residue bound the private dispatch loop must stop at.
func (ws *wstate) begin(e *Engine, dom int32, floor float64, scr []*event, bAt float64, bSeq uint64) {
	ws.e = e
	ws.dom = dom
	ws.active = true
	ws.now = floor
	ws.boundAt = bAt
	ws.boundSeq = bSeq
	ws.processed = 0
	ws.allocs = 0
	ws.allocCursor = 0
	ws.disp = ws.disp[:0]
	ws.outbox = ws.outbox[:0]
	ws.current = nil
	if ws.mainWake == nil {
		ws.mainWake = make(chan struct{})
	}
	for i, ev := range scr {
		ev.inDom = wsQueuedDom
		ws.queue.push(ev)
		scr[i] = nil
	}
}

// run drains the domain's private queue on the worker goroutine, handing the
// baton to resumed process goroutines exactly like the serial engine does.
func (ws *wstate) run() {
	if !ws.dispatch(nil) {
		<-ws.mainWake
	}
}

// beforeBound reports whether the event dispatches strictly before the
// phase's residue bound. Provisional seqs compare correctly: an in-phase
// allocation's final seq is drawn after every pre-phase seq including the
// bound's, so for provisional events the comparison reduces to at < boundAt
// — which is what the huge provisional seq yields.
func (ws *wstate) beforeBound(ev *event) bool {
	return ev.at < ws.boundAt || (ev.at == ws.boundAt && ev.seq < ws.boundSeq)
}

// pop mirrors Engine.pop on the domain's private two-tier queue, stopping at
// the residue bound: a live head at or beyond B stays queued (the barrier
// flushes it to the coordinator) and the phase drains.
func (ws *wstate) pop() *event {
	if ws.bucketPos < len(ws.bucket) {
		if len(ws.queue) > 0 && ws.queue[0].at <= ws.now {
			if !ws.beforeBound(ws.queue[0]) {
				return nil
			}
			ev := ws.queue.popMin()
			ev.inDom = -1
			return ev
		}
		ev := ws.bucket[ws.bucketPos]
		if !ev.dead() && !ws.beforeBound(ev) {
			return nil
		}
		ws.bucket[ws.bucketPos] = nil
		ws.bucketPos++
		if ws.bucketPos == len(ws.bucket) {
			ws.bucket = ws.bucket[:0]
			ws.bucketPos = 0
		}
		ev.idx = -1
		return ev
	}
	if len(ws.queue) > 0 {
		if !ws.beforeBound(ws.queue[0]) {
			return nil
		}
		ev := ws.queue.popMin()
		ev.inDom = -1
		return ev
	}
	return nil
}

// dispatch is the per-domain dispatch loop: the serial engine's loop over
// the domain's private queue. self is the process parking on this call (nil
// for the worker goroutine). Returns true when the caller keeps the baton.
func (ws *wstate) dispatch(self *Proc) bool {
	for {
		ev := ws.pop()
		if ev == nil {
			if self == nil {
				return true // the worker keeps the baton at drain
			}
			ws.mainWake <- struct{}{}
			return false
		}
		if ev.dead() {
			ws.release(ev)
			continue
		}
		if ev.at < ws.now {
			panic("des: time went backwards (phase worker)")
		}
		ws.now = ev.at
		ws.processed++
		ws.disp = append(ws.disp, dispRec{at: ev.at, seq: ev.seq})
		if p := ev.proc; p != nil {
			gen := ev.parkGen
			ws.release(ev)
			if !p.done && p.parkedFlag && p.parkGen == gen {
				ws.current = p
				if p == self {
					return true
				}
				p.resume <- struct{}{}
				return false
			}
			continue
		}
		fn := ev.fn
		ws.release(ev)
		ws.current = nil
		fn()
	}
}

// alloc draws an event record from the domain's pool shard with the next
// provisional sequence number, charging the consumption to the current
// dispatch record.
func (ws *wstate) alloc(at float64) *event {
	var ev *event
	if n := len(ws.pool); n > 0 {
		ev = ws.pool[n-1]
		ws.pool[n-1] = nil
		ws.pool = ws.pool[:n-1]
	} else {
		ev = &event{}
	}
	ev.at = at
	ev.seq = provSeqBase + ws.allocs
	ev.inDom = -1
	ev.shared = false
	ev.confined = false
	ws.allocs++
	ws.disp[len(ws.disp)-1].nAlloc++
	if s := ws.e.san; s != nil {
		s.PoolAlloc(san.KindEvent, ev, "")
	}
	return ev
}

// release returns an event record to the domain's pool shard.
func (ws *wstate) release(ev *event) {
	if s := ws.e.san; s != nil {
		s.PoolRelease(san.KindEvent, ev, "")
	}
	ev.fn = nil
	ev.proc = nil
	ev.gen++
	ev.idx = -1
	ws.pool = append(ws.pool, ev)
}

// schedule enqueues an event at absolute time t for domain dom from inside
// the phase. Same-domain events below the horizon go to the private queue;
// events at or beyond the horizon — including the global-domain resume an
// ExitConfined schedules — park in the outbox for the barrier merge. A
// below-horizon event for another domain is a confinement violation.
func (ws *wstate) schedule(t float64, dom int32) *event {
	par := ws.e.par
	if dom == ws.dom && t < par.horizon {
		ev := ws.alloc(t)
		ev.dom = dom
		if t == ws.now {
			ev.idx = bucketIdx
			ws.bucket = append(ws.bucket, ev)
		} else {
			if t < ws.now {
				panic(fmt.Sprintf("des: scheduling event at %g before now %g", t, ws.now))
			}
			ev.inDom = wsQueuedDom
			ws.queue.push(ev)
		}
		return ev
	}
	if t >= par.horizon {
		ev := ws.alloc(t)
		ev.dom = dom
		ev.idx = outboxIdx
		ws.outbox = append(ws.outbox, ev)
		return ev
	}
	panic(par.confineViolation(dom, t))
}

// resumeEventFor mirrors Engine.resumeEventFor on the domain queue.
func (ws *wstate) resumeEventFor(p *Proc, gen uint64, t float64) {
	ev := ws.schedule(t, p.dom)
	ev.proc = p
	ev.parkGen = gen
}

// sleep is Proc.Sleep routed to the owning domain. The lone-runner fast path
// consumes the same observables as the serial engine (one seq, one processed
// event, clock movement) and logs a synthetic dispatch record at the elided
// resume's (time, seq) so the barrier renumbering attributes the sleeper's
// subsequent allocations to the serial position.
func (ws *wstate) sleep(p *Proc, d float64) {
	t := ws.now + d
	e := ws.e
	// t < boundAt keeps the fast path below the residue bound: at or beyond
	// it, the serial engine may interleave residue work before the resume,
	// so the resume must materialize (it becomes a bound-stopped leftover
	// the coordinator dispatches in true order). Strict comparison suffices:
	// at t == boundAt the resume's final seq is above the bound's.
	if ws.bucketPos == len(ws.bucket) &&
		(len(ws.queue) == 0 || ws.queue[0].at > t) &&
		t < ws.boundAt &&
		t < e.par.horizon &&
		!(e.MaxTime > 0 && t > e.MaxTime) {
		seq := provSeqBase + ws.allocs
		ws.allocs++
		ws.disp[len(ws.disp)-1].nAlloc++
		ws.disp = append(ws.disp, dispRec{at: t, seq: seq})
		ws.processed++
		ws.now = t
		return
	}
	ws.resumeEventFor(p, p.parkGen+1, t)
	p.park(false)
}

// cancelInPhase handles Timer.Cancel while workers run. Events in a private
// queue, bucket or outbox are cancelled directly (the canceller executes on
// that domain's worker — holding a Timer to another domain's event inside a
// confined region is itself a confinement violation, backstopped by the race
// detector); coordinator state — staged heaps and, under mixed windows, the
// frozen run queue holding the residue — is read-only while workers run, so
// those cancels defer to the barrier, where the gen guard makes stale
// cancels inert.
func (e *Engine) cancelInPhase(ev *event, gen uint64) {
	if ev.gen != gen {
		return
	}
	par := e.par
	switch {
	case ev.inDom == wsQueuedDom:
		ws := par.wsFor(ev.dom)
		ws.queue.removeAt(ev.idx)
		ws.release(ev)
	case ev.inDom >= 0, ev.idx >= 0:
		par.defMu.Lock()
		par.defCancels = append(par.defCancels, defCancel{ev: ev, gen: gen})
		par.defMu.Unlock()
	case ev.idx == outboxIdx, ev.idx == bucketIdx:
		// Marked dead in place; the bucket drain or the barrier's outbox
		// sweep recycles the record. The coordinator bucket is empty during
		// a phase (the census collects it), so bucketIdx here is always a
		// worker bucket.
		ev.fn = nil
		ev.proc = nil
	}
}

// defCancel is a Timer.Cancel of a coordinator-owned event — staged in a
// domain heap or frozen in the run queue as mixed-window residue — issued
// from inside a phase and deferred to the barrier (coordinator queues are
// frozen while workers run). Application order is irrelevant: each entry is
// gen-guarded, staged events are unordered until promotion, and a frozen
// residue event cannot fire before the barrier applies the cancel.
type defCancel struct {
	ev  *event
	gen uint64
}

// phaseHead is a replay-merge stream head: one domain's next undispatched
// log record.
type phaseHead struct {
	ws  *wstate
	idx int
}

// mergePhase commits a finished phase: deferred cancels apply, the serial
// interleaving is replayed to renumber in-phase allocations, outboxes merge
// into the staging heaps under their final seqs, and the engine's clock,
// sequence and processed counters advance to exactly the serial values.
func (e *Engine) mergePhase(active []int32) {
	p := e.par
	for _, dc := range p.defCancels {
		ev := dc.ev
		if ev.gen != dc.gen {
			continue
		}
		switch {
		case ev.inDom >= 0:
			p.heaps[ev.inDom].removeAt(ev.idx)
			p.staged--
			ev.inDom = -1
			e.release(ev)
		case ev.idx >= 0:
			// Mixed-window residue frozen in the run queue.
			e.queue.removeAt(ev.idx)
			e.release(ev)
		}
	}
	p.defCancels = p.defCancels[:0]

	// Replay: merge the per-domain dispatch streams by (time, resolved seq),
	// assigning real seqs to in-phase allocations in serial order.
	heads := p.headScratch[:0]
	resolve := func(ws *wstate, seq uint64) uint64 {
		if seq < provSeqBase {
			return seq
		}
		return ws.finals[seq-provSeqBase]
	}
	less := func(a, b phaseHead) bool {
		ra, rb := a.ws.disp[a.idx], b.ws.disp[b.idx]
		if ra.at != rb.at {
			return ra.at < rb.at
		}
		return resolve(a.ws, ra.seq) < resolve(b.ws, rb.seq)
	}
	var (
		maxNow     = e.now
		lastDom    = e.curDom
		dispatched uint64
	)
	for _, d := range active {
		ws := p.wsFor(d)
		if uint64(cap(ws.finals)) < ws.allocs {
			ws.finals = make([]uint64, ws.allocs)
		}
		ws.finals = ws.finals[:ws.allocs]
		e.processed += ws.processed
		dispatched += uint64(len(ws.disp))
		if ws.now > maxNow {
			maxNow = ws.now
		}
		if len(ws.disp) > 0 {
			heads = append(heads, phaseHead{ws: ws, idx: 0})
			up := len(heads) - 1
			for up > 0 && less(heads[up], heads[(up-1)/2]) {
				heads[up], heads[(up-1)/2] = heads[(up-1)/2], heads[up]
				up = (up - 1) / 2
			}
		}
	}
	siftDown := func() {
		i, n := 0, len(heads)
		for {
			l, r, m := 2*i+1, 2*i+2, i
			if l < n && less(heads[l], heads[m]) {
				m = l
			}
			if r < n && less(heads[r], heads[m]) {
				m = r
			}
			if m == i {
				return
			}
			heads[i], heads[m] = heads[m], heads[i]
			i = m
		}
	}
	seq := e.seq
	var lastWS *wstate
	for len(heads) > 0 {
		h := &heads[0]
		rec := h.ws.disp[h.idx]
		for j := uint32(0); j < rec.nAlloc; j++ {
			h.ws.finals[h.ws.allocCursor] = seq
			h.ws.allocCursor++
			seq++
		}
		lastWS = h.ws
		h.idx++
		if h.idx == len(h.ws.disp) {
			n := len(heads) - 1
			heads[0] = heads[n]
			heads = heads[:n]
		}
		siftDown()
	}
	p.headScratch = heads[:0]
	e.seq = seq
	e.now = maxNow
	if lastWS != nil {
		lastDom = lastWS.dom
	}
	e.curDom = lastDom
	e.current = nil
	p.phaseEvents += dispatched

	// Outboxes: rewrite surviving events to their final seqs and stage them
	// for later windows; recycle events cancelled in place.
	for _, d := range active {
		ws := p.wsFor(d)
		for i, ev := range ws.outbox {
			ws.outbox[i] = nil
			if ev.dead() {
				ws.release(ev)
				continue
			}
			ev.seq = ws.finals[ev.seq-provSeqBase]
			e.stage(ev, ev.dom)
		}
		ws.outbox = ws.outbox[:0]
		// Bound-stopped leftovers: in-phase work at or beyond the residue
		// bound that the private loop could not dispatch. Finalize the seqs
		// and hand the events to the coordinator's run queue — order is
		// preserved because every leftover's (time, final seq) is at or
		// above the bound, and its time is at or above maxNow (workers only
		// advanced their clocks below the bound).
		for len(ws.queue) > 0 {
			ev := ws.queue.popMin()
			ev.inDom = -1
			if ev.seq >= provSeqBase {
				ev.seq = ws.finals[ev.seq-provSeqBase]
			}
			e.queue.push(ev)
		}
		for i, ev := range ws.bucket[ws.bucketPos:] {
			ws.bucket[ws.bucketPos+i] = nil
			if ev.dead() {
				ws.release(ev)
				continue
			}
			if ev.seq >= provSeqBase {
				ev.seq = ws.finals[ev.seq-provSeqBase]
			}
			ev.idx = -1
			e.queue.push(ev)
		}
		ws.bucket = ws.bucket[:0]
		ws.bucketPos = 0
		ws.active = false
	}
	p.refreshDomMin()
}

// RunOnWorkers runs fn(workerIndex) on n concurrent goroutines and waits for
// all of them — the engine's shared fan-out primitive. The window phase's
// siblings reuse it (the fabric's parallel fill folds its private barrier
// onto this) so the repository has one worker fan-out shape. Panics in
// workers are re-raised on the caller after the join.
func RunOnWorkers(n int, fn func(worker int)) {
	if n <= 1 {
		fn(0)
		return
	}
	var wg sync.WaitGroup
	panics := make([]any, n)
	for w := 0; w < n; w++ {
		wg.Add(1)
		//hierflow:serial fan-out workers receive disjoint work by index from the caller's closure and the caller only resumes after wg.Wait
		go func(wi int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panics[wi] = r
				}
			}()
			fn(wi)
		}(w)
	}
	wg.Wait()
	for _, r := range panics {
		if r != nil {
			panic(r)
		}
	}
}
