// Conservative parallel mode (PDES) for the engine.
//
// The serial engine dispatches the globally least (time, seq) event from one
// queue. Parallel mode keeps that dispatch order bit-for-bit — it is the
// correctness contract every equivalence suite rests on — but reorganizes
// the *queues* around the fabric's domain partition so that independent
// per-domain work can proceed on multiple host cores:
//
//   - Every event carries a domain tag (a fabric component / topology node,
//     0 = the global domain for setup, control-plane and cross-domain
//     traffic). Events scheduled beyond the current window horizon are
//     staged in per-domain heaps instead of the run queue.
//
//   - The run queue only ever holds the current bounded virtual-time window
//     [floor, floor+L), where the lookahead L is the minimum inter-domain
//     link latency exported by the Partition. When the window drains, the
//     engine advances: the new floor is the least staged time, and every
//     staged event below the new horizon is promoted into the run queue.
//     Promotion drains each domain's heap independently (in parallel when
//     the window is large), then merges deterministically — the run queue
//     orders by (time, seq) regardless of insertion order.
//
//   - Within a window the dispatch loop is exactly the serial engine. An
//     event staged for a later window can never precede one in the current
//     window: staging requires t >= horizon, promotion happens only at a
//     drained queue, and the horizon never decreases (each new horizon is
//     min-staged + L with L > 0, and min-staged is at or above the old
//     horizon). Determinism therefore holds *by construction*; domain tags
//     only steer which staging heap an event waits in, never when it runs.
//
// The window protocol is the classic conservative (Chandy–Misra–Bryant)
// synchronization with link-latency lookahead, collapsed onto a shared-
// memory engine: the window barrier is the queue drain, and the "null
// messages" are unnecessary because every domain's staging heap is visible
// to the single dispatcher. Lookahead is re-read whenever the partition
// epoch moves (fabric component merges/splits invalidate it), and a
// non-positive lookahead surfaces as a CausalityError instead of a silently
// wrong window: with more than one domain, zero lookahead would force
// zero-width windows and the conservative protocol cannot advance.
package des

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// EngineMode selects how the engine organizes its event queues.
type EngineMode int

const (
	// ModeSerial is the reference engine: one queue, one window, no
	// staging. The default.
	ModeSerial EngineMode = iota
	// ModeParallel stages far-future events in per-domain heaps and
	// advances through bounded virtual-time windows. Dispatch order is
	// bit-identical to ModeSerial.
	ModeParallel
)

func (m EngineMode) String() string {
	if m == ModeParallel {
		return "parallel"
	}
	return "serial"
}

// Partition describes the domain decomposition parallel mode stages events
// by. Implemented by topology.Machine (one domain per node; domain 0 is the
// implicit global domain for cross-domain and control traffic).
type Partition interface {
	// Domains returns the number of non-global domains. A partition with
	// fewer than two domains degenerates parallel mode to the serial
	// engine (everything routes to the run queue, no windows).
	Domains() int
	// Lookahead returns the minimum virtual-time latency of any
	// inter-domain link: the window width. Must be positive whenever
	// Domains() > 1; Run refuses to start (and advancement refuses to
	// continue) with a CausalityError otherwise.
	Lookahead() float64
	// Epoch is bumped by the partition whenever its component structure
	// merges or splits; the engine re-reads Lookahead when it changes.
	Epoch() uint64
}

// Causality-violation operations, recorded in CausalityError.Op.
const (
	// OpSchedule: an event was scheduled behind the engine clock (and
	// therefore behind the current window floor).
	OpSchedule = "schedule"
	// OpLookahead: the partition reported a non-positive lookahead while
	// more than one domain is active.
	OpLookahead = "lookahead"
	// OpConfine: an operation inside a parallel window phase coupled two
	// domains — scheduling below the horizon for a foreign domain, waking a
	// process homed outside the phase's active domains, or entering the
	// engine through a non-confined API (At/After/AtDomain) from worker
	// context.
	OpConfine = "confine"
)

// CausalityError reports a conservative-PDES precondition violation: an
// event scheduled behind its window floor, or a window width (lookahead)
// that cannot advance virtual time. It names the offending domain and
// virtual time so the report points at the component, not just the symptom.
type CausalityError struct {
	Op        string  // OpSchedule or OpLookahead
	Domain    int32   // offending domain (component) tag; -1 when global
	At        float64 // offending virtual time (the scheduled t, or now)
	Floor     float64 // window floor in force at the violation
	Lookahead float64 // lookahead in force (OpLookahead: the bad value)
}

func (c *CausalityError) Error() string {
	if c.Op == OpLookahead {
		return fmt.Sprintf(
			"des: causality: non-positive lookahead %g at t=%g; conservative windows cannot advance across >1 domains",
			c.Lookahead, c.At)
	}
	if c.Op == OpConfine {
		return fmt.Sprintf(
			"des: causality: operation touching domain %d at t=%g from inside a parallel window [%g, %g) couples another domain; confined code may only act on its own domain below the horizon",
			c.Domain, c.At, c.Floor, c.Floor+c.Lookahead)
	}
	return fmt.Sprintf(
		"des: causality: domain %d event at t=%g scheduled behind window floor %g",
		c.Domain, c.At, c.Floor)
}

// parstate is the parallel-mode queue organization: per-domain staging
// heaps plus the current window bounds. Created by SetMode(ModeParallel),
// nil in serial mode (the serial hot path pays one nil check).
type parstate struct {
	look  float64 // window width: min inter-domain latency
	epoch uint64  // partition epoch look was derived at

	floor   float64 // current window floor
	horizon float64 // current window horizon (exclusive); never decreases

	heaps  []eventHeap // staging heap per domain; index 0 = global domain
	scr    [][]*event  // per-domain promotion scratch (parallel drain)
	staged int         // events currently staged across all heaps
	domMin float64     // conservative lower bound of staged times (see Sleep)

	// degenerate marks a configuration that cannot window usefully — a
	// partition with fewer than two domains, or an explicit one-worker
	// engine: the horizon pins to +Inf and everything routes to the run
	// queue (the small-host fast path, no staging or outbox machinery).
	degenerate bool

	windows   uint64 // window advances performed
	collected uint64 // events promoted out of staging heaps

	// In-window parallel execution (parexec.go).
	workers       int      // resolved phase worker count
	inPhase       bool     // a phase is executing (set before fan-out, cleared after join)
	ws            []wstate // per-domain worker dispatch state; index 0 unused
	activeScratch []int32  // census scratch: the pending phase's active domains
	headScratch   []phaseHead

	// Mixed-window census state. censusOK marks the current window as
	// phase-capable (enough workers, no MaxTime trip inside it); censusArmed
	// asks the dispatch loop to re-census when the next event is confined —
	// armed after each serially dispatched residue event, so one window can
	// run several phase rounds. censusFails is the per-window failure budget
	// (maxCensusFails). boundAt/boundSeq is the pending phase's residue
	// bound; winPhased flags that the current window ran at least one round.
	censusOK    bool
	censusArmed bool
	censusFails int
	boundAt     float64
	boundSeq    uint64
	winPhased   bool

	// defMu guards defCancels: Timer.Cancel of a coordinator-staged event
	// issued from a phase worker defers to the barrier (the staging heaps
	// are frozen while workers run).
	defMu      sync.Mutex
	defCancels []defCancel

	panics []any // per-worker panic capture, re-raised after the join

	phases        uint64 // parallel phase rounds executed (a mixed window can run several)
	phaseEvents   uint64 // events dispatched inside phases
	phasedWindows uint64 // windows that executed at least one phase round
}

// Window-advance outcomes (Engine.advanceWindow).
const (
	windowNone     = iota // nothing staged, or a lookahead error (runErr set)
	windowAdvanced        // promoted serially; keep dispatching
	windowPhase           // census passed; scr + activeScratch carry the phase sets, the residue is queued
)

// Parallel promotion thresholds: below these, goroutine fan-out costs more
// than the serial drain of a few heap entries.
const (
	parCollectMinHeaps  = 2
	parCollectMinStaged = 128
	parCollectMaxProcs  = 8
)

// SetMode switches the engine between the serial reference and the
// conservative parallel organization. Must not be called mid-Run. Switching
// to ModeParallel derives the window state from the partition installed via
// SetPartition; switching back promotes every staged event into the run
// queue, so no event is ever lost across a mode flip. Reset preserves the
// mode: a reset world replays in whatever mode it was left in.
func (e *Engine) SetMode(m EngineMode) {
	if e.running {
		panic("des: SetMode during Run")
	}
	if m == e.mode {
		return
	}
	e.mode = m
	if m == ModeParallel {
		e.initParallel()
		return
	}
	e.flushStaged()
	e.par = nil
}

// Mode returns the engine's current execution mode.
func (e *Engine) Mode() EngineMode { return e.mode }

// SetPartition installs (or, with nil, removes) the domain partition
// parallel mode stages events by. In serial mode the partition is inert.
// Must not be called mid-Run.
func (e *Engine) SetPartition(p Partition) {
	if e.running {
		panic("des: SetPartition during Run")
	}
	e.partition = p
	if e.par != nil {
		e.initParallel()
	}
}

// PartitionInstalled returns the installed partition, or nil.
func (e *Engine) PartitionInstalled() Partition { return e.partition }

// initParallel (re)derives the parallel queue state from the installed
// partition. Any already-staged events are promoted to the run queue first,
// so re-partitioning cannot strand an event in a vanishing heap.
func (e *Engine) initParallel() {
	e.flushStaged()
	p := e.par
	if p == nil {
		p = &parstate{}
		e.par = p
	}
	doms := 0
	if e.partition != nil {
		doms = e.partition.Domains()
	}
	p.workers = resolveWorkers(e.workersReq)
	p.degenerate = doms <= 1 || p.workers < 2
	n := doms + 1 // heap 0 is the global domain
	if cap(p.heaps) >= n {
		p.heaps = p.heaps[:n]
	} else {
		p.heaps = make([]eventHeap, n)
	}
	if cap(p.scr) >= n {
		p.scr = p.scr[:n]
	} else {
		scr := make([][]*event, n)
		copy(scr, p.scr)
		p.scr = scr
	}
	p.staged = 0
	p.domMin = math.Inf(1)
	p.floor = e.now
	p.windows = 0
	p.collected = 0
	p.phases = 0
	p.phaseEvents = 0
	p.phasedWindows = 0
	p.inPhase = false
	p.censusOK = false
	p.censusArmed = false
	p.censusFails = 0
	p.boundAt = math.Inf(1)
	p.boundSeq = ^uint64(0)
	p.winPhased = false
	p.activeScratch = p.activeScratch[:0]
	p.defCancels = p.defCancels[:0]
	p.epoch = 0
	p.look = math.Inf(1)
	if p.degenerate {
		p.horizon = math.Inf(1)
		return
	}
	p.look = e.partition.Lookahead()
	p.epoch = e.partition.Epoch()
	if !(p.look > 0) { // catches <= 0 and NaN
		// Leave the horizon pinned at now so nothing is mis-staged;
		// Run surfaces the CausalityError before dispatching.
		p.horizon = e.now
		return
	}
	p.horizon = e.now + p.look
}

// flushStaged promotes every staged event into the run queue.
func (e *Engine) flushStaged() {
	p := e.par
	if p == nil || p.staged == 0 {
		return
	}
	for di := range p.heaps {
		h := &p.heaps[di]
		for len(*h) > 0 {
			ev := h.popMin()
			ev.inDom = -1
			e.queue.push(ev)
		}
	}
	p.staged = 0
	p.domMin = math.Inf(1)
}

// checkLookahead validates the partition's lookahead at Run entry,
// refreshing the cached window width. Returns the CausalityError to refuse
// the run with, or nil.
func (e *Engine) checkLookahead() *CausalityError {
	p := e.par
	if p == nil || p.degenerate || e.partition == nil {
		return nil
	}
	l := e.partition.Lookahead()
	if !(l > 0) {
		return &CausalityError{Op: OpLookahead, Domain: -1, At: e.now, Floor: p.floor, Lookahead: l}
	}
	if l != p.look {
		p.look = l
		if h := e.now + l; h > p.horizon {
			p.horizon = h
			e.promoteBelow(p.horizon)
		}
	}
	p.epoch = e.partition.Epoch()
	return nil
}

// stage parks an event in its domain's staging heap until the window
// machinery promotes it. dom is clamped into the heap range (unknown or
// out-of-range domains stage globally).
func (e *Engine) stage(ev *event, dom int32) {
	p := e.par
	di := int(dom)
	if di < 0 || di >= len(p.heaps) {
		di = 0
	}
	ev.inDom = int32(di)
	p.heaps[di].push(ev)
	p.staged++
	if ev.at < p.domMin {
		p.domMin = ev.at
	}
}

// advanceWindow opens the next virtual-time window once the current one has
// drained: the new floor is the least staged time across all domains, the
// new horizon floor+lookahead, and every staged event below the horizon is
// collected. Returns windowAdvanced when the window's events were promoted
// into the run queue (serial dispatch), windowPhase when the confinement
// census passed — the window sits in the promotion scratch and the caller
// must execute it through runPhase on a safe goroutine — and windowNone at
// true end-of-run or when a stale partition invalidates the lookahead (the
// latter also sets runErr).
//
// Monotonicity argument: every staged event satisfied t >= horizon when it
// was staged, so floor >= the old horizon, and with lookahead > 0 the new
// horizon strictly exceeds the old. Promoted events therefore always land
// in the strict future of the clock — the serial dispatch invariant "time
// never goes backwards" carries over unchanged.
func (e *Engine) advanceWindow() int {
	p := e.par
	if p.staged == 0 {
		return windowNone
	}
	// Fabric component merges/splits bump the partition epoch; re-derive
	// the lookahead before trusting a window width computed from a stale
	// component structure.
	if !p.degenerate && e.partition != nil {
		if ep := e.partition.Epoch(); ep != p.epoch {
			p.epoch = ep
			l := e.partition.Lookahead()
			if !(l > 0) {
				e.runErr = &CausalityError{Op: OpLookahead, Domain: -1, At: e.now, Floor: p.floor, Lookahead: l}
				return windowNone
			}
			p.look = l
		}
	}
	floor := math.Inf(1)
	for di := range p.heaps {
		if h := p.heaps[di]; len(h) > 0 && h[0].at < floor {
			floor = h[0].at
		}
	}
	p.floor = floor
	if h := floor + p.look; h > p.horizon {
		p.horizon = h
	}
	p.windows++
	p.winPhased = false
	p.censusFails = 0
	p.censusArmed = false
	// A window whose horizon could trip MaxTime must dispatch serially so
	// Run can abort mid-window and surface the error.
	p.censusOK = p.workers >= 2 && !(e.MaxTime > 0 && p.horizon > e.MaxTime)
	if p.censusOK {
		e.collectBelow(p.horizon)
		// Everything collected leaves staging on every path — into phase
		// sets, or into the run queue as residue or restored scratch — so
		// the accounting happens here, once.
		total := 0
		for di := range p.scr {
			total += len(p.scr[di])
		}
		p.staged -= total
		p.collected += uint64(total)
		if e.censusScratch() {
			p.refreshDomMin()
			return windowPhase
		}
		e.restoreScratch()
		p.refreshDomMin()
		return windowAdvanced
	}
	e.promoteBelow(p.horizon)
	return windowAdvanced
}

// promoteBelow moves every staged event with time below h into the run
// queue and refreshes the staged-minimum cache. The merge order is
// irrelevant: the run queue orders by (time, seq) however events arrive.
func (e *Engine) promoteBelow(h float64) {
	p := e.par
	if p.staged == 0 {
		return
	}
	e.collectBelow(h)
	e.promoteScratch()
	p.refreshDomMin()
}

// collectBelow drains each domain heap's below-h prefix into that domain's
// promotion scratch slice — concurrently for large windows. Workers touch
// disjoint heaps and disjoint event records, and the caller only proceeds
// after the barrier, so the collection is race-free and order-independent.
// staged/collected accounting is the consumer's job (promoteScratch, or
// advanceWindow's census path).
func (e *Engine) collectBelow(h float64) {
	p := e.par
	busy := 0
	for di := range p.heaps {
		if hp := p.heaps[di]; len(hp) > 0 && hp[0].at < h {
			busy++
		}
	}
	if busy >= parCollectMinHeaps && p.staged >= parCollectMinStaged {
		workers := p.workers
		if workers < 2 {
			workers = 2
		}
		if workers > len(p.heaps) {
			workers = len(p.heaps)
		}
		var (
			cursor atomic.Int64
			wg     sync.WaitGroup
		)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			//hierflow:serial window-promotion workers own disjoint domain heaps (claimed via the atomic cursor) and the spawner only resumes after wg.Wait, so no record is shared between contexts
			go func() {
				defer wg.Done()
				for {
					di := int(cursor.Add(1)) - 1
					if di >= len(p.heaps) {
						return
					}
					hp := &p.heaps[di]
					scr := p.scr[di][:0]
					for len(*hp) > 0 && (*hp)[0].at < h {
						ev := hp.popMin()
						ev.inDom = -1
						scr = append(scr, ev)
					}
					p.scr[di] = scr
				}
			}()
		}
		wg.Wait()
		return
	}
	for di := range p.heaps {
		hp := &p.heaps[di]
		scr := p.scr[di][:0]
		for len(*hp) > 0 && (*hp)[0].at < h {
			ev := hp.popMin()
			ev.inDom = -1
			scr = append(scr, ev)
		}
		p.scr[di] = scr
	}
}

// promoteScratch merges the collected promotion scratch into the run queue.
func (e *Engine) promoteScratch() {
	p := e.par
	for di := range p.scr {
		scr := p.scr[di]
		for i, ev := range scr {
			e.queue.push(ev)
			scr[i] = nil
		}
		p.staged -= len(scr)
		p.collected += uint64(len(scr))
		p.scr[di] = scr[:0]
	}
}

// restoreScratch returns collected events to the run queue without touching
// the staged/collected accounting: the failure paths of the census, whose
// callers either already accounted for the collection (advanceWindow) or
// collected from the run queue where no accounting applies (censusFromQueue).
func (e *Engine) restoreScratch() {
	p := e.par
	for di := range p.scr {
		scr := p.scr[di]
		for i, ev := range scr {
			e.queue.push(ev)
			scr[i] = nil
		}
		p.scr[di] = scr[:0]
	}
}

// refreshDomMin recomputes the conservative staged-minimum cache.
func (p *parstate) refreshDomMin() {
	p.domMin = math.Inf(1)
	for di := range p.heaps {
		if hp := p.heaps[di]; len(hp) > 0 && hp[0].at < p.domMin {
			p.domMin = hp[0].at
		}
	}
}

// AtDomain schedules fn at absolute time t on behalf of the given domain.
// It is At with an explicit domain tag, for callers (the fabric's
// completion timers) that know which component an event belongs to better
// than the ambient dispatch context does. The tag steers staging and
// causality reporting only; dispatch order is (time, seq) regardless.
//
// AtDomain (like At and After) is a coordinator-context API: calling it
// from inside a parallel window phase panics with an OpConfine
// CausalityError — confined code schedules through its process handle
// (Proc.After, Sleep, Wake), which routes to the owning domain's worker.
func (e *Engine) AtDomain(dom int32, t float64, fn func()) Timer {
	return e.atDomain(dom, t, fn, false)
}

// AtShared is At for events that read or write cross-domain state — the
// fabric's sync, fill and completion machinery. A shared event disqualifies
// its window from parallel execution: it always dispatches under the serial
// coordinator, whatever domain it is tagged with.
func (e *Engine) AtShared(t float64, fn func()) Timer {
	return e.atDomain(e.curDom, t, fn, true)
}

// AfterShared is After with the shared marking of AtShared.
func (e *Engine) AfterShared(d float64, fn func()) Timer {
	if d < 0 {
		panic(fmt.Sprintf("des: negative delay %g", d))
	}
	return e.atDomain(e.curDom, e.now+d, fn, true)
}

// AtDomainShared is AtDomain with the shared marking of AtShared.
func (e *Engine) AtDomainShared(dom int32, t float64, fn func()) Timer {
	return e.atDomain(dom, t, fn, true)
}

func (e *Engine) atDomain(dom int32, t float64, fn func(), shared bool) Timer {
	if p := e.par; p != nil && p.inPhase {
		panic(p.confineViolation(dom, t))
	}
	if t < e.now {
		if p := e.par; p != nil {
			panic(&CausalityError{Op: OpSchedule, Domain: dom, At: t, Floor: p.floor})
		}
		panic(fmt.Sprintf("des: scheduling event at %g before now %g", t, e.now))
	}
	if math.IsNaN(t) || math.IsInf(t, 0) {
		panic(fmt.Sprintf("des: scheduling event at non-finite time %g", t))
	}
	ev := e.schedule(t, dom)
	ev.fn = fn
	ev.shared = shared
	return Timer{eng: e, ev: ev, gen: ev.gen}
}

// SetDomain tags the process with its home domain (its core's node).
// Resume events the process schedules — sleeps, wakes — stage under this
// domain in parallel mode.
func (p *Proc) SetDomain(d int32) { p.dom = d }

// Domain returns the process's home domain tag.
func (p *Proc) Domain() int32 { return p.dom }

// CurDomain returns the ambient scheduling domain: the domain of the event
// the serial coordinator is currently dispatching (or last dispatched).
// Worker phases never execute fabric or other shared events, so callers that
// key pool shards on the ambient domain (the fabric's flow free list) only
// ever read it from coordinator context.
func (e *Engine) CurDomain() int32 { return e.curDom }

// WindowStats is a snapshot of the parallel-mode window machinery, for
// tests and benchmarks.
type WindowStats struct {
	Mode      EngineMode
	Domains   int     // staging heaps including the global domain
	Lookahead float64 // current window width
	Floor     float64 // current window floor
	Horizon   float64 // current window horizon
	Staged    int     // events currently staged
	Windows   uint64  // windows opened so far
	Collected uint64  // events promoted out of staging heaps so far
	Workers   int     // resolved phase worker count
	Phases    uint64  // parallel phase rounds executed (a mixed window can run several)
	PhaseEv   uint64  // events dispatched inside phases
	// PhasedWindows counts windows that executed at least one phase round;
	// PhasedWindows/Windows is the phased-window fraction the bench gates
	// report.
	PhasedWindows uint64
}

// WindowStats returns the current parallel-mode counters; the zero value in
// serial mode.
func (e *Engine) WindowStats() WindowStats {
	p := e.par
	if p == nil {
		return WindowStats{Mode: e.mode}
	}
	return WindowStats{
		Mode:          e.mode,
		Domains:       len(p.heaps),
		Lookahead:     p.look,
		Floor:         p.floor,
		Horizon:       p.horizon,
		Staged:        p.staged,
		Windows:       p.windows,
		Collected:     p.collected,
		Workers:       p.workers,
		Phases:        p.phases,
		PhaseEv:       p.phaseEvents,
		PhasedWindows: p.phasedWindows,
	}
}
