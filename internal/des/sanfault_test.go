package des

// Seeded-fault fixtures for the hiersan pool-provenance checker on the
// engine's event free list: planted double releases must fire, a MaxTime
// abort must leave the pool reusable (Reset routes leftovers through
// release, never raw appends), and the disabled sanitizer must add zero
// allocations to the warm schedule/cancel hot path.

import (
	"strings"
	"testing"

	"hierknem/internal/san"
)

// collectSan attaches a sanitizer whose violations are collected instead of
// panicking.
func collectSan(e *Engine) (*san.Sanitizer, *[]string) {
	var got []string
	s := san.New(e.Now)
	s.SetOnViolation(func(msg string) { got = append(got, msg) })
	e.SetSanitizer(s)
	return s, &got
}

func TestSanitizerCatchesEventDoubleRelease(t *testing.T) {
	e := New()
	_, got := collectSan(e)
	ev := e.alloc(0)
	e.release(ev)
	//lint:ignore poolreturn planted fault: the double release is exactly what the sanitizer must catch
	e.release(ev) // planted fault
	if len(*got) != 1 || !strings.Contains((*got)[0], "double release of des.event") {
		t.Fatalf("violations = %q, want exactly one double release of des.event", *got)
	}
}

// TestMaxTimeAbortDrainReleasesUnderSanitizer pins the drain-after-abort
// path: after a horizon abort, Reset must route every leftover event through
// release. If it fed the pool with raw appends instead, the next wave's
// allocations would trip the sanitizer's alloc-of-live check.
func TestMaxTimeAbortDrainReleasesUnderSanitizer(t *testing.T) {
	e := New()
	_, got := collectSan(e)
	e.MaxTime = 2
	e.After(1, func() {})
	e.After(5, func() { t.Error("event beyond the horizon fired") })
	e.After(9, func() { t.Error("event beyond the horizon fired") })
	if err := e.Run(); err == nil {
		t.Fatal("expected a horizon error from Run")
	}
	if e.Pending() == 0 {
		t.Fatal("expected leftover events after the abort")
	}
	e.Reset()
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d after Reset, want 0", e.Pending())
	}
	// Reuse the drained records: provenance must show them released.
	e.After(1, func() {})
	e.After(2, func() {})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(*got) != 0 {
		t.Fatalf("violations = %q, want none: drain must release leftovers", *got)
	}
}

// TestDisabledSanitizerAddsNoAllocs is the satellite guard for the
// off-by-default contract: with no sanitizer attached, a warm
// schedule/cancel cycle performs zero heap allocations.
func TestDisabledSanitizerAddsNoAllocs(t *testing.T) {
	e := New()
	e.After(1, func() {})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(1000, func() {
		tm := e.At(e.Now()+5, func() {})
		tm.Cancel()
	}); n != 0 {
		t.Fatalf("disabled-sanitizer hot path allocates %v per op, want 0", n)
	}
}
