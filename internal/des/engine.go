// Package des implements a deterministic discrete-event simulation engine.
//
// The engine advances a virtual clock through an event queue. Simulated
// processes are real goroutines that execute cooperatively: at any instant
// at most one process goroutine runs, and control passes between the engine
// and a process through a strict channel handoff. Because exactly one
// goroutine is ever runnable, process code needs no locking, and runs are
// bit-for-bit deterministic: ties in virtual time are broken by event
// sequence number.
//
// All interaction with the clock goes through events. A process blocks by
// parking (Park, Sleep) and is released by an event (a timer it scheduled, or
// a Wake issued by another process or callback). Wakeups are themselves
// events, so the order in which concurrently-unblocked processes resume is
// deterministic.
//
// The event queue is two-tiered. Events scheduled at the current timestamp —
// zero-sleeps, wakes, eager completions, the majority in collective inner
// loops — go to a FIFO "now-bucket"; only events in the strict future pay
// for the binary heap. Dispatch order is exactly (time, seq) either way: a
// heap event at the current timestamp was necessarily scheduled before the
// clock reached it, so its sequence number is smaller than that of any
// bucket event, and the bucket itself is FIFO in sequence order.
//
// Event records are recycled through a free list on the engine, and resume
// events carry their target process and park generation as typed fields
// instead of a capturing closure, so the steady-state Sleep/Park/Wake path
// allocates nothing.
package des

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync/atomic"

	"hierknem/internal/san"
)

// hostPinning gates the GOMAXPROCS(1) pinning in Run. Pinning is a
// process-global knob, so it is only safe — and only profitable — when one
// engine runs at a time; a parallel sweep runner disables it for the
// duration of its worker pool. Atomic because the sweep toggles it from the
// coordinating goroutine while no engine is mid-Run; it carries no
// simulation state, so runs stay isolated regardless of its value.
var hostPinning atomic.Bool

func init() { hostPinning.Store(true) }

// SetHostPinning enables or disables the single-P pinning Run applies for
// the duration of a simulation, returning the previous setting. Leave it on
// (the default) for serial workloads; turn it off while running engines on
// concurrent goroutines, where a shared GOMAXPROCS toggle would serialize
// the host and race against other runs.
func SetHostPinning(on bool) (previous bool) { return hostPinning.Swap(on) }

// Engine is a discrete-event simulation engine. The zero value is not usable;
// create one with New.
type Engine struct {
	now       float64
	seq       uint64
	processed uint64

	queue      eventHeap // events in the strict future (at insertion time)
	bucket     []*event  // FIFO of events at the current timestamp
	bucketPos  int       // next bucket entry to dispatch
	bucketLive int       // bucket entries not yet dispatched or cancelled
	pool       []*event  // free list of recycled event records

	// mainWake returns the baton to Run's goroutine when the queue drains
	// (or MaxTime trips) while a process goroutine is dispatching.
	mainWake chan struct{}
	runErr   error

	procs   []*Proc
	alive   int
	current *Proc
	running bool

	// MaxTime aborts Run once the virtual clock passes this horizon.
	// Zero means no horizon.
	MaxTime float64

	// Parallel-mode state (pdes.go). par is nil in serial mode, so the
	// serial hot path pays one nil check per schedule/pop. curDom is the
	// ambient domain tag: the domain of the event being dispatched, used
	// to tag events scheduled from callbacks. workersReq is the SetWorkers
	// request (0 = auto).
	mode       EngineMode
	partition  Partition
	par        *parstate
	curDom     int32
	workersReq int

	// san, when non-nil, receives pool-provenance and sync-edge hooks
	// (hiersan). Every hook site is nil-guarded so the disabled hot path
	// pays one predictable branch and zero allocations.
	san *san.Sanitizer
}

// New returns an empty engine with the virtual clock at zero.
func New() *Engine {
	return &Engine{mainWake: make(chan struct{})}
}

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// SetSanitizer attaches (or, with nil, detaches) a hiersan runtime. The
// sanitizer observes event-record recycling and Wake synchronization edges;
// it schedules nothing, so an instrumented run stays event-for-event
// identical to a bare one.
func (e *Engine) SetSanitizer(s *san.Sanitizer) { e.san = s }

// event is one scheduled occurrence. Exactly one of fn (callback event) and
// proc (typed resume event) is set while queued; both are nil once the event
// fired, was cancelled, or sits in the free list.
type event struct {
	at  float64
	seq uint64
	// gen is bumped every time the record is recycled; Timer handles
	// snapshot it so a handle to a fired event can never touch the
	// record's next life.
	gen     uint64
	fn      func()
	proc    *Proc  // non-nil: resume proc if it is still parked at parkGen
	parkGen uint64 // park generation the resume targets
	idx     int    // heap position; bucketIdx in the bucket; outboxIdx in a worker outbox; -1 detached
	dom     int32  // domain tag (parallel mode staging + causality reports)
	inDom   int32  // staging heap index while staged; -1 in queue/bucket
	// shared marks an event whose callback reads or writes cross-domain
	// state (scheduled via the *Shared variants — the fabric's machinery);
	// a window containing one never executes in parallel. confined marks a
	// callback event scheduled by a confined process through Proc.After —
	// the only fn events the census admits to a parallel phase (resume
	// events are judged by their process's declaration instead).
	shared   bool
	confined bool
}

// bucketIdx marks an event as living in the now-bucket rather than the heap.
const bucketIdx = -2

// dead reports that the event was cancelled in place.
func (ev *event) dead() bool { return ev.fn == nil && ev.proc == nil }

// alloc takes an event record from the free list (or allocates one) and
// stamps it with the next sequence number.
func (e *Engine) alloc(at float64) *event {
	var ev *event
	if n := len(e.pool); n > 0 {
		ev = e.pool[n-1]
		e.pool[n-1] = nil
		e.pool = e.pool[:n-1]
	} else {
		ev = &event{}
	}
	ev.at = at
	ev.seq = e.seq
	// Recycled and fresh records alike must start detached from the
	// staging heaps: the zero value 0 would read as "staged in heap 0".
	ev.inDom = -1
	ev.shared = false
	ev.confined = false
	e.seq++
	if e.san != nil {
		e.san.PoolAlloc(san.KindEvent, ev, "")
	}
	return ev
}

// release clears an event record and returns it to the free list. The
// generation bump invalidates any Timer handle still pointing here.
func (e *Engine) release(ev *event) {
	if e.san != nil {
		// Before the wipe, so a double release reports the record's
		// original generation and release time.
		e.san.PoolRelease(san.KindEvent, ev, "")
	}
	ev.fn = nil
	ev.proc = nil
	ev.gen++
	ev.idx = -1
	e.pool = append(e.pool, ev)
}

// schedule allocates an event at absolute time t for domain dom and
// enqueues it: the now-bucket for the current timestamp, the heap for the
// future — or, in parallel mode, the domain's staging heap when t lies at
// or beyond the current window horizon.
func (e *Engine) schedule(t float64, dom int32) *event {
	ev := e.alloc(t)
	ev.dom = dom
	if t == e.now {
		ev.idx = bucketIdx
		e.bucket = append(e.bucket, ev)
		e.bucketLive++
	} else if p := e.par; p != nil && t >= p.horizon {
		e.stage(ev, dom)
	} else {
		e.queue.push(ev)
	}
	return ev
}

// pop removes and returns the globally least (time, seq) event, or nil when
// none remain. While the bucket holds events, the clock cannot advance; a
// heap event at the current timestamp always precedes every bucket event
// because it was scheduled before the clock reached now (smaller seq).
func (e *Engine) pop() *event {
	if e.bucketPos < len(e.bucket) {
		if len(e.queue) > 0 && e.queue[0].at <= e.now {
			return e.queue.popMin()
		}
		ev := e.bucket[e.bucketPos]
		e.bucket[e.bucketPos] = nil
		e.bucketPos++
		if e.bucketPos == len(e.bucket) {
			e.bucket = e.bucket[:0]
			e.bucketPos = 0
		}
		if !ev.dead() {
			e.bucketLive--
		}
		ev.idx = -1
		return ev
	}
	if len(e.queue) > 0 {
		return e.queue.popMin()
	}
	return nil
}

// peek returns the event pop would return next without removing it, or nil
// when none remain. A dead bucket head is reported as-is: the caller treats
// it as not phase-eligible, and the subsequent pop releases it.
func (e *Engine) peek() *event {
	if e.bucketPos < len(e.bucket) {
		if len(e.queue) > 0 && e.queue[0].at <= e.now {
			return e.queue[0]
		}
		return e.bucket[e.bucketPos]
	}
	if len(e.queue) > 0 {
		return e.queue[0]
	}
	return nil
}

// Timer is a handle to a scheduled event that can be cancelled. Timers are
// plain values; the zero Timer is stopped. A Timer holds a generation
// snapshot, so handles to fired events are inert — they can never cancel
// the recycled record's next occupant.
type Timer struct {
	eng *Engine
	ev  *event
	gen uint64
}

// Cancel prevents the timer's callback from firing. Heap events are removed
// immediately (O(log n)), so heavily rescheduled timers (the fabric re-arms
// one completion timer per flow component) do not accumulate dead entries.
// Bucket events are marked dead in place (O(1)); the bucket drains within
// the current timestamp, so dead entries cannot pile up either. Cancelling
// an already fired or cancelled timer is a no-op. Cancel also drops the
// handle's references so a long-lived cancelled Timer does not pin the
// engine or its queues.
func (t *Timer) Cancel() {
	if t == nil || t.ev == nil {
		return
	}
	ev, eng := t.ev, t.eng
	t.ev = nil
	t.eng = nil
	if ev.gen != t.gen {
		return // already fired or recycled
	}
	if par := eng.par; par != nil && par.inPhase {
		eng.cancelInPhase(ev, t.gen)
		return
	}
	switch {
	case ev.inDom >= 0:
		// Staged in a parallel-mode domain heap — possibly a domain other
		// than the canceller's, in a future window. Removal is immediate
		// either way; the conservative domMin cache is left stale-low,
		// which can only force Sleep's slow path, never reorder dispatch.
		par := eng.par
		par.heaps[ev.inDom].removeAt(ev.idx)
		par.staged--
		ev.inDom = -1
		eng.release(ev)
	case ev.idx >= 0:
		eng.queue.removeAt(ev.idx)
		eng.release(ev)
	case ev.idx == bucketIdx:
		ev.fn = nil
		ev.proc = nil
		eng.bucketLive--
	}
}

// Stopped reports whether the timer was cancelled or already fired.
func (t *Timer) Stopped() bool { return t == nil || t.ev == nil || t.ev.gen != t.gen }

// At schedules fn to run at absolute virtual time t, tagged with the
// ambient domain (the domain of the event being dispatched). Scheduling in
// the past panics: it would silently corrupt causality.
func (e *Engine) At(t float64, fn func()) Timer {
	return e.AtDomain(e.curDom, t, fn)
}

// After schedules fn to run d seconds of virtual time from now.
func (e *Engine) After(d float64, fn func()) Timer {
	if d < 0 {
		panic(fmt.Sprintf("des: negative delay %g", d))
	}
	return e.At(e.now+d, fn)
}

// After schedules fn to run d seconds after the process's current time,
// tagged with the process's home domain. Unlike Engine.After it is valid
// from inside a parallel window phase: the event routes to the owning
// domain's private queue (or outbox, beyond the horizon), and its callback
// will execute on that domain's worker — so fn must touch only the
// process's own domain, like all confined code.
func (p *Proc) After(d float64, fn func()) Timer {
	if d < 0 {
		panic(fmt.Sprintf("des: negative delay %g", d))
	}
	e := p.eng
	if par := e.par; par != nil && par.inPhase {
		// The target must itself be confined: scheduling for an unconfined
		// process from inside a phase would create residue work below the
		// bound the phase was carved at (mixed windows execute exactly the
		// serial prefix before the bound, so confined code must not be able
		// to generate serial work inside it).
		ws := par.phaseWS(p.dom)
		if ws == nil || !p.confined {
			panic(par.confineViolation(p.dom, e.now+d))
		}
		ev := ws.schedule(ws.now+d, p.dom)
		ev.fn = fn
		ev.confined = true // in-phase by definition; keeps outboxed events eligible
		return Timer{eng: e, ev: ev, gen: ev.gen}
	}
	t := e.atDomain(p.dom, e.now+d, fn, false)
	t.ev.confined = p.confined
	return t
}

// Proc is a simulated process: a goroutine whose execution is interleaved
// with virtual time under engine control.
type Proc struct {
	eng    *Engine
	id     int
	name   string
	resume chan struct{}

	// parkGen counts parks; resume events carry the generation they
	// target so stale resumes (a Wake racing a timer, or vice versa)
	// are ignored instead of corrupting the handoff.
	parkGen     uint64
	parkedFlag  bool
	wakeable    bool
	pendingWake bool
	done        bool
	started     bool

	// dom is the process's home domain (SetDomain); its resume events
	// stage under this domain in parallel mode. 0 = global. confined is
	// the EnterConfined/ExitConfined declaration (parexec.go) that lets
	// windows of this process's events execute on parallel workers.
	dom      int32
	confined bool

	// awaitRemaining and awaitDone back Await/AwaitAll without a fresh
	// counter and closure per call: a process runs at most one await at a
	// time (it is parked for the duration), so one cached pair suffices.
	awaitRemaining int
	awaitDone      func()
}

// ID returns the process's spawn index, unique within its engine.
func (p *Proc) ID() int { return p.id }

// Name returns the name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine this process runs on.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current virtual time — during a parallel window phase,
// the process's own domain clock (the engine clock is frozen at the window
// floor while workers run).
func (p *Proc) Now() float64 {
	if par := p.eng.par; par != nil && par.inPhase {
		if ws := par.phaseWS(p.dom); ws != nil {
			return ws.now
		}
	}
	return p.eng.now
}

// Spawn creates a process that will start executing body at the current
// virtual time. body runs on its own goroutine under the engine's cooperative
// scheduler; when body returns the process terminates.
func (e *Engine) Spawn(name string, body func(*Proc)) *Proc {
	if par := e.par; par != nil && par.inPhase {
		panic("des: Spawn inside a parallel window phase")
	}
	p := &Proc{eng: e, id: len(e.procs), name: name, resume: make(chan struct{})}
	p.awaitDone = func() {
		p.awaitRemaining--
		if p.awaitRemaining == 0 {
			p.Wake()
		}
	}
	// A spawned process starts parked at generation 0; its start is an
	// ordinary typed resume event at the current time.
	p.parkedFlag = true
	e.procs = append(e.procs, p)
	e.alive++
	//hierflow:serial cooperative baton passing: exactly one process goroutine (or Run) executes at a time, handed off via the resume channels
	go func() {
		<-p.resume
		p.parkedFlag = false
		p.started = true
		body(p)
		p.done = true
		if par := e.par; par != nil && par.inPhase {
			// The alive counter and the global dispatch loop below are
			// coordinator state; a process must leave its confined region
			// (ExitConfined re-homes it through a serial window) before
			// returning. Unrecovered on purpose: this kills the run loudly.
			panic("des: process " + p.name + " exited inside a parallel window phase; call ExitConfined before returning")
		}
		e.alive--
		// The exiting goroutine carries the baton forward: it dispatches
		// until the baton moves to another process (or back to Run), then
		// dies. self is nil — a finished process cannot be resumed.
		e.dispatch(nil, false)
	}()
	e.resumeEventFor(p, 0, e.now)
	return p
}

// park yields control until a resume event targeting this park generation
// fires. The parking goroutine itself runs the engine's dispatch loop: if the
// next dispatch is this process's own resume, the baton never leaves this
// goroutine and no channel operation happens at all; otherwise the baton is
// handed directly to the resumed process and this goroutine blocks.
func (p *Proc) park(wakeable bool) {
	p.parkGen++
	p.parkedFlag = true
	p.wakeable = wakeable
	var kept bool
	if par := p.eng.par; par != nil && par.inPhase {
		// Inside a phase the baton is domain-local: the parking process
		// dispatches its own domain's private queue. If that drains, the
		// baton goes back to the owning worker and the process blocks —
		// its resume may arrive from this phase or a later window.
		ws := par.phaseWS(p.dom)
		if ws == nil {
			panic(par.confineViolation(p.dom, p.eng.now))
		}
		kept = ws.dispatch(p)
	} else {
		kept = p.eng.dispatch(p, false)
	}
	if !kept {
		<-p.resume
	}
	p.parkedFlag = false
	p.wakeable = false
}

// resumeEventFor schedules a typed resume of p at time t that is valid only
// for the park generation gen. No closure, no allocation in steady state:
// the target rides in the pooled event record itself.
func (e *Engine) resumeEventFor(p *Proc, gen uint64, t float64) {
	ev := e.schedule(t, p.dom)
	ev.proc = p
	ev.parkGen = gen
}

// Sleep suspends the process for d seconds of virtual time. A zero sleep is
// still a scheduling point: events already queued at the current timestamp
// run before the process resumes.
//
// Lone-runner fast path: when the now-bucket is drained and every heap event
// lies strictly after now+d, the resume event this Sleep would schedule is
// the unique minimum of the queue — the engine would dispatch it immediately
// and transfer straight back to this process. In that case the event and the
// double goroutine handoff are elided, and only their observable effects are
// replayed: one sequence number is consumed (tie-breaks downstream stay
// identical), the processed counter advances (events/op stays comparable
// across engine versions), and the clock moves to now+d. A pending MaxTime
// violation falls through to the slow path so Run can surface the error.
// No wake can target a running process (wakes on a running process only
// latch pendingWake), so skipping the park cannot drop a resume.
//
// In parallel mode the staged heaps are part of "the queue": the fast path
// additionally requires every staged event to lie strictly after t. The
// cached staged minimum is conservative (it can be stale-low after a
// cancel), which at worst forces the slow path — and the slow path is
// observationally identical (one sequence number, one processed event, same
// clock) whenever the resume is the global minimum, so a spurious slow trip
// cannot perturb the event log.
func (p *Proc) Sleep(d float64) {
	if d < 0 {
		panic(fmt.Sprintf("des: negative sleep %g", d))
	}
	e := p.eng
	if par := e.par; par != nil && par.inPhase {
		ws := par.phaseWS(p.dom)
		if ws == nil {
			panic(par.confineViolation(p.dom, e.now))
		}
		ws.sleep(p, d)
		return
	}
	t := e.now + d
	if e.bucketPos == len(e.bucket) &&
		(len(e.queue) == 0 || e.queue[0].at > t) &&
		(e.par == nil || e.par.domMin > t) &&
		!(e.MaxTime > 0 && t > e.MaxTime) {
		e.seq++
		e.processed++
		e.now = t
		e.curDom = p.dom
		return
	}
	e.resumeEventFor(p, p.parkGen+1, t)
	p.park(false)
}

// Park suspends the process until another process or event calls Wake. If a
// Wake was delivered since the last Park, Park consumes it and returns
// immediately (there are no lost-wakeup races: execution is single-threaded).
func (p *Proc) Park() {
	if p.pendingWake {
		p.pendingWake = false
		return
	}
	p.park(true)
	p.pendingWake = false
}

// Wake schedules the parked process to resume at the current virtual time.
// If the process is not parked (or is parked in Sleep), the wake is latched
// and consumed by its next Park. Wake must be called from engine context
// (another process's body or an event callback), never from outside Run.
func (p *Proc) Wake() {
	if p.done || p.pendingWake {
		return
	}
	if par := p.eng.par; par != nil && par.inPhase {
		// A wake issued from worker context must target a confined process
		// of a phase domain (in practice: the waker's own — confined code
		// only wakes node-local peers); anything else couples domains. The
		// confinement check is what makes mixed windows sound: waking an
		// unconfined process would create residue below the phase bound.
		ws := par.phaseWS(p.dom)
		if ws == nil || !p.confined {
			panic(par.confineViolation(p.dom, p.eng.now))
		}
		if s := p.eng.san; s != nil {
			if cur := ws.current; cur != nil && cur != p {
				s.SyncEdge(cur.id, p.id)
			}
		}
		p.pendingWake = true
		if p.parkedFlag && p.wakeable {
			ws.resumeEventFor(p, p.parkGen, ws.now)
		}
		return
	}
	if s := p.eng.san; s != nil {
		// A direct wake from a running process is a virtual-time
		// synchronization edge: the wakee resumes causally after the
		// waker's instant. Wakes issued from event callbacks (current is
		// nil there) are covered by the precise edges the mpi layer
		// records at transfer completion.
		if cur := p.eng.current; cur != nil && cur != p {
			s.SyncEdge(cur.id, p.id)
		}
	}
	p.pendingWake = true
	if p.parkedFlag && p.wakeable {
		p.eng.resumeEventFor(p, p.parkGen, p.eng.now)
	}
}

// DeadlockError reports that Run ran out of events while processes were still
// parked with no pending wakeups.
type DeadlockError struct {
	Time   float64
	Parked []string
}

func (d *DeadlockError) Error() string {
	return fmt.Sprintf("des: deadlock at t=%g: %d process(es) parked forever: %v",
		d.Time, len(d.Parked), d.Parked)
}

// Run executes events until none remain. It returns a *DeadlockError if
// processes are still alive when the queue drains, and an error if MaxTime is
// exceeded; otherwise nil.
//
// The engine has no scheduler goroutine of its own. A single "baton" moves
// between goroutines — Run's caller, parking processes, exiting processes —
// and whichever goroutine holds it executes the dispatch loop. Handing
// control to a process is then one channel send (the old engine-in-the-
// middle design paid a send plus a receive in each direction), and a process
// whose own resume event is the next dispatch keeps the baton without
// touching a channel at all.
func (e *Engine) Run() error {
	if e.running {
		panic("des: Run called reentrantly")
	}
	e.running = true
	defer func() { e.running = false }()
	// The simulation is strictly cooperative: exactly one goroutine is
	// runnable at any instant, and control bounces between goroutines
	// through unbuffered channels. Pinning to a single P for the duration
	// keeps every handoff on the local run queue — no idle-P wakeups, no
	// cross-P lock traffic, no spinning Ms — which is worth >10% of wall
	// time on collective-heavy workloads. Restored on exit; a no-op when
	// GOMAXPROCS is already 1. Skipped under SetHostPinning(false): the
	// knob is process-wide, so concurrent engines must leave it alone.
	// Parallel mode also skips it — window phases, promotion and the
	// fabric's parallel fill fan out across Ps mid-run — except at an
	// explicit one-worker configuration, which never fans out and wants
	// the serial engine's handoff locality back.
	if hostPinning.Load() && (e.par == nil || e.par.workers < 2) {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	}
	if ce := e.checkLookahead(); ce != nil {
		return ce
	}
	e.runErr = nil
	if !e.dispatch(nil, true) {
		// The baton left this goroutine; it comes back over mainWake when
		// the queue drains. The channel receive is the synchronization
		// edge ordering every dispatcher's writes before the reads below.
		<-e.mainWake
	}
	if e.runErr != nil {
		return e.runErr
	}
	if e.alive > 0 {
		var names []string
		for _, p := range e.procs {
			if !p.done && p.started {
				names = append(names, p.name)
			}
		}
		sort.Strings(names)
		return &DeadlockError{Time: e.now, Parked: names}
	}
	return nil
}

// dispatch executes events on the calling goroutine until the baton moves.
// self is the process parking on this call (nil for Run's goroutine and for
// exiting processes); onMain marks Run's goroutine. Returns true when the
// caller keeps the baton: a parking process whose own resume event was the
// next dispatch, or Run's goroutine when the queue drained before any
// handoff. In every other case the baton went to another goroutine — a
// resumed process, or Run via mainWake at drain — and a parking caller must
// block on its resume channel.
func (e *Engine) dispatch(self *Proc, onMain bool) bool {
	for {
		// Mixed-window census: when armed and the next dispatch would be a
		// confined event, try to carve the remaining window population into
		// per-domain phase sets below the residue bound. The census makes
		// progress either way — success dispatches at least the peeked event
		// inside the phase (an eligible global minimum is always below the
		// bound), failure disarms until a residue dispatch re-arms.
		if par := e.par; par != nil && par.censusArmed {
			if nxt := e.peek(); nxt != nil && phaseEvent(nxt) {
				par.censusArmed = false
				if e.censusFromQueue() {
					if self != nil && par.domListed(self.dom) {
						// Same handoff as the drain-time phase below: the
						// parking process's own domain is active, so a fresh
						// goroutine coordinates while it blocks on resume.
						//hierflow:serial phase handoff: the spawned goroutine becomes the sole coordinator/dispatcher while the parking process blocks on its resume channel; the baton moves exactly once
						go func() {
							e.runPhase(e.par.activeScratch)
							e.dispatch(nil, false)
						}()
						return false
					}
					e.runPhase(par.activeScratch)
					continue
				}
			}
		}
		ev := e.pop()
		if ev == nil {
			// Parallel mode: a drained run queue is the window barrier.
			// Open the next window if anything is staged, then resume.
			if e.par != nil {
				switch e.advanceWindow() {
				case windowAdvanced:
					continue
				case windowPhase:
					// The census passed: execute the window's domains on
					// parallel workers. The coordinating goroutine must not
					// be a process a worker could resume — a parking
					// process whose own domain is active would deadlock
					// (worker sends its resume while it sits in the phase
					// join). Hand such phases to a fresh goroutine that
					// coordinates and then carries the baton onward.
					if self != nil && e.par.domListed(self.dom) {
						//hierflow:serial phase handoff: the spawned goroutine becomes the sole coordinator/dispatcher while the parking process blocks on its resume channel; the baton moves exactly once
						go func() {
							e.runPhase(e.par.activeScratch)
							e.dispatch(nil, false)
						}()
						return false
					}
					e.runPhase(e.par.activeScratch)
					continue
				}
			}
			return e.finish(onMain)
		}
		if ev.dead() {
			e.release(ev) // cancelled in the bucket
			continue
		}
		if ev.at < e.now {
			panic("des: time went backwards")
		}
		e.now = ev.at
		if e.MaxTime > 0 && e.now > e.MaxTime {
			e.release(ev)
			e.runErr = fmt.Errorf("des: exceeded time horizon %g (now %g)", e.MaxTime, e.now)
			return e.finish(onMain)
		}
		e.processed++
		// A residue (non-confined) dispatch re-arms the census: executing
		// it can change the population's classification — raise the bound,
		// wake confined processes — so the next confined head is worth a
		// fresh census. Confined events dispatched serially (census failed)
		// change nothing a failed census didn't already see.
		if par := e.par; par != nil && par.censusOK && !par.censusArmed && !phaseEvent(ev) {
			par.censusArmed = true
		}
		if p := ev.proc; p != nil {
			gen := ev.parkGen
			e.release(ev)
			if !p.done && p.parkedFlag && p.parkGen == gen {
				e.current = p
				e.curDom = p.dom
				if p == self {
					return true
				}
				p.resume <- struct{}{}
				return false
			}
			continue
		}
		fn := ev.fn
		e.curDom = ev.dom
		e.release(ev)
		// No process is executing during a callback; clear current so
		// Wake's sanitizer edge cannot attribute the wake to whichever
		// process happened to run last.
		e.current = nil
		fn()
	}
}

// finish routes the baton back to Run's goroutine at end of dispatch. When
// the drain happens on Run's goroutine itself it just keeps the baton; a
// process goroutine signals mainWake (Run is guaranteed to be blocked on it:
// it handed the baton off earlier and only finish ever returns it).
func (e *Engine) finish(onMain bool) bool {
	if onMain {
		return true
	}
	e.mainWake <- struct{}{}
	return false
}

// Reset returns the engine to its pristine post-New state while keeping the
// event free list warm. All simulation state — clock, sequence counter,
// processed count, queues, process table, run error — is cleared, so a fresh
// set of Spawns followed by Run replays bit-identically to a run on a brand
// new engine: alloc fully re-stamps recycled records, and with seq back at
// zero every (time, seq) tie-break is reproduced exactly. Reset panics if
// called mid-Run or while spawned processes are still alive (their
// goroutines would outlive the state they reference).
func (e *Engine) Reset() {
	if e.running {
		panic("des: Reset called during Run")
	}
	if e.alive > 0 {
		panic(fmt.Sprintf("des: Reset with %d live process(es)", e.alive))
	}
	e.drainPending()
	e.now = 0
	e.seq = 0
	e.processed = 0
	e.procs = e.procs[:0]
	e.current = nil
	e.runErr = nil
	e.curDom = 0
	// Mode and partition survive Reset — a reset world replays in the
	// mode it was left in — but the window state re-derives from scratch.
	if e.par != nil {
		e.initParallel()
	}
}

// drainPending routes every still-queued event — leftovers after a MaxTime
// abort, plus bucket entries cancelled in place — through release. Going
// through release (never raw pool appends) keeps each record's generation
// counter, and the attached sanitizer's provenance, at exactly one release
// per allocation.
func (e *Engine) drainPending() {
	for _, ev := range e.queue {
		e.release(ev)
	}
	e.queue = e.queue[:0]
	for _, ev := range e.bucket[e.bucketPos:] {
		if ev != nil {
			e.release(ev) // cancelled-in-place entries are only recycled here
		}
	}
	e.bucket = e.bucket[:0]
	e.bucketPos = 0
	e.bucketLive = 0
	if p := e.par; p != nil && p.staged > 0 {
		for di := range p.heaps {
			h := &p.heaps[di]
			for len(*h) > 0 {
				ev := h.popMin()
				ev.inDom = -1
				e.release(ev)
			}
		}
		p.staged = 0
		p.domMin = math.Inf(1)
	}
}

// Pending returns the number of events currently scheduled, including any
// staged in parallel-mode domain heaps. Cancelled timers are removed
// (heap) or marked dead (bucket) eagerly and do not count.
func (e *Engine) Pending() int {
	n := len(e.queue) + e.bucketLive
	if e.par != nil {
		n += e.par.staged
	}
	return n
}

// Processed returns the number of events dispatched so far — the raw event
// throughput measure the fabric benchmarks report as events/sec.
func (e *Engine) Processed() uint64 { return e.processed }

// PoolSize returns the number of recycled event records currently in the
// free list (observability for tests and leak hunts).
func (e *Engine) PoolSize() int { return len(e.pool) }

// eventHeap is a 4-ary min-heap ordering events by (time, sequence). It is
// hand-rolled rather than container/heap: the comparisons inline, there are
// no interface dispatches, and the wider fan-out halves the tree depth — the
// heap is on the dispatch path of every strictly-future event.
type eventHeap []*event

// eventLess is the total dispatch order: time, ties broken by sequence.
func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (h *eventHeap) push(ev *event) {
	*h = append(*h, ev)
	h.up(len(*h) - 1)
}

// popMin removes and returns the least event.
func (h *eventHeap) popMin() *event {
	old := *h
	min := old[0]
	n := len(old) - 1
	last := old[n]
	old[n] = nil
	*h = old[:n]
	if n > 0 {
		old[0] = last
		last.idx = 0
		h.down(0)
	}
	min.idx = -1
	return min
}

// removeAt removes the event at heap position i (Timer.Cancel).
func (h *eventHeap) removeAt(i int) {
	old := *h
	n := len(old) - 1
	removed := old[i]
	last := old[n]
	old[n] = nil
	*h = old[:n]
	if i < n {
		old[i] = last
		last.idx = i
		if !h.down(i) {
			h.up(i)
		}
	}
	removed.idx = -1
}

func (h eventHeap) up(i int) {
	ev := h[i]
	for i > 0 {
		parent := (i - 1) / 4
		if !eventLess(ev, h[parent]) {
			break
		}
		h[i] = h[parent]
		h[i].idx = i
		i = parent
	}
	h[i] = ev
	ev.idx = i
}

// down sifts position i toward the leaves, reporting whether it moved.
func (h eventHeap) down(i int) bool {
	n := len(h)
	ev := h[i]
	start := i
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if eventLess(h[j], h[m]) {
				m = j
			}
		}
		if !eventLess(h[m], ev) {
			break
		}
		h[i] = h[m]
		h[i].idx = i
		i = m
	}
	h[i] = ev
	ev.idx = i
	return i != start
}
