// Package des implements a deterministic discrete-event simulation engine.
//
// The engine advances a virtual clock through a priority queue of events.
// Simulated processes are real goroutines that execute cooperatively: at any
// instant at most one process goroutine runs, and control passes between the
// engine and a process through a strict channel handoff. Because exactly one
// goroutine is ever runnable, process code needs no locking, and runs are
// bit-for-bit deterministic: ties in virtual time are broken by event
// sequence number.
//
// All interaction with the clock goes through events. A process blocks by
// parking (Park, Sleep) and is released by an event (a timer it scheduled, or
// a Wake issued by another process or callback). Wakeups are themselves
// events, so the order in which concurrently-unblocked processes resume is
// deterministic.
package des

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
)

// Engine is a discrete-event simulation engine. The zero value is not usable;
// create one with New.
type Engine struct {
	now       float64
	seq       uint64
	processed uint64
	queue     eventHeap
	parked    chan struct{} // handshake: a process signals it yielded control

	procs   []*Proc
	alive   int
	current *Proc
	running bool

	// MaxTime aborts Run once the virtual clock passes this horizon.
	// Zero means no horizon.
	MaxTime float64
}

// New returns an empty engine with the virtual clock at zero.
func New() *Engine {
	return &Engine{parked: make(chan struct{})}
}

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Timer is a handle to a scheduled event that can be cancelled.
type Timer struct{ ev *event }

// Cancel prevents the timer's callback from firing and removes the event
// from the engine's queue immediately, so heavily rescheduled timers (the
// fabric re-arms one completion timer per flow component) do not accumulate
// dead entries in the heap. Cancelling an already fired or cancelled timer
// is a no-op.
func (t *Timer) Cancel() {
	if t == nil || t.ev == nil || t.ev.fn == nil {
		return
	}
	t.ev.fn = nil
	if t.ev.idx >= 0 {
		heap.Remove(&t.ev.eng.queue, t.ev.idx)
	}
}

// Stopped reports whether the timer was cancelled or already fired.
func (t *Timer) Stopped() bool { return t == nil || t.ev == nil || t.ev.fn == nil }

type event struct {
	at  float64
	seq uint64
	fn  func()
	eng *Engine
	idx int // position in the engine's heap; -1 once popped or removed
}

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it would silently corrupt causality.
func (e *Engine) At(t float64, fn func()) *Timer {
	if t < e.now {
		panic(fmt.Sprintf("des: scheduling event at %g before now %g", t, e.now))
	}
	if math.IsNaN(t) || math.IsInf(t, 0) {
		panic(fmt.Sprintf("des: scheduling event at non-finite time %g", t))
	}
	ev := &event{at: t, seq: e.seq, fn: fn, eng: e}
	e.seq++
	heap.Push(&e.queue, ev)
	return &Timer{ev: ev}
}

// After schedules fn to run d seconds of virtual time from now.
func (e *Engine) After(d float64, fn func()) *Timer {
	if d < 0 {
		panic(fmt.Sprintf("des: negative delay %g", d))
	}
	return e.At(e.now+d, fn)
}

// Proc is a simulated process: a goroutine whose execution is interleaved
// with virtual time under engine control.
type Proc struct {
	eng    *Engine
	id     int
	name   string
	resume chan struct{}

	// parkGen counts parks; resume events capture the generation they
	// target so stale resumes (a Wake racing a timer, or vice versa)
	// are ignored instead of corrupting the handoff.
	parkGen     uint64
	parkedFlag  bool
	wakeable    bool
	pendingWake bool
	done        bool
	started     bool
}

// ID returns the process's spawn index, unique within its engine.
func (p *Proc) ID() int { return p.id }

// Name returns the name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine this process runs on.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current virtual time.
func (p *Proc) Now() float64 { return p.eng.now }

// Spawn creates a process that will start executing body at the current
// virtual time. body runs on its own goroutine under the engine's cooperative
// scheduler; when body returns the process terminates.
func (e *Engine) Spawn(name string, body func(*Proc)) *Proc {
	p := &Proc{eng: e, id: len(e.procs), name: name, resume: make(chan struct{})}
	e.procs = append(e.procs, p)
	e.alive++
	go func() {
		<-p.resume
		body(p)
		p.done = true
		e.alive--
		e.parked <- struct{}{}
	}()
	e.At(e.now, func() {
		p.started = true
		e.transfer(p)
	})
	return p
}

// transfer hands control to p and blocks the engine until p parks or exits.
func (e *Engine) transfer(p *Proc) {
	prev := e.current
	e.current = p
	p.resume <- struct{}{}
	<-e.parked
	e.current = prev
}

// park yields control back to the engine until a resume event targeting this
// park generation fires.
func (p *Proc) park(wakeable bool) {
	p.parkGen++
	p.parkedFlag = true
	p.wakeable = wakeable
	p.eng.parked <- struct{}{}
	<-p.resume
	p.parkedFlag = false
	p.wakeable = false
}

// resumeEventFor schedules a transfer at time t that is valid only for the
// park generation gen.
func (e *Engine) resumeEventFor(p *Proc, gen uint64, t float64) {
	e.At(t, func() {
		if !p.done && p.parkedFlag && p.parkGen == gen {
			e.transfer(p)
		}
	})
}

// Sleep suspends the process for d seconds of virtual time. A zero sleep is
// still a scheduling point: events already queued at the current timestamp
// run before the process resumes.
func (p *Proc) Sleep(d float64) {
	if d < 0 {
		panic(fmt.Sprintf("des: negative sleep %g", d))
	}
	e := p.eng
	e.resumeEventFor(p, p.parkGen+1, e.now+d)
	p.park(false)
}

// Park suspends the process until another process or event calls Wake. If a
// Wake was delivered since the last Park, Park consumes it and returns
// immediately (there are no lost-wakeup races: execution is single-threaded).
func (p *Proc) Park() {
	if p.pendingWake {
		p.pendingWake = false
		return
	}
	p.park(true)
	p.pendingWake = false
}

// Wake schedules the parked process to resume at the current virtual time.
// If the process is not parked (or is parked in Sleep), the wake is latched
// and consumed by its next Park. Wake must be called from engine context
// (another process's body or an event callback), never from outside Run.
func (p *Proc) Wake() {
	if p.done || p.pendingWake {
		return
	}
	p.pendingWake = true
	if p.parkedFlag && p.wakeable {
		p.eng.resumeEventFor(p, p.parkGen, p.eng.now)
	}
}

// DeadlockError reports that Run ran out of events while processes were still
// parked with no pending wakeups.
type DeadlockError struct {
	Time   float64
	Parked []string
}

func (d *DeadlockError) Error() string {
	return fmt.Sprintf("des: deadlock at t=%g: %d process(es) parked forever: %v",
		d.Time, len(d.Parked), d.Parked)
}

// Run executes events until none remain. It returns a *DeadlockError if
// processes are still alive when the queue drains, and an error if MaxTime is
// exceeded; otherwise nil.
func (e *Engine) Run() error {
	if e.running {
		panic("des: Run called reentrantly")
	}
	e.running = true
	defer func() { e.running = false }()
	for e.queue.Len() > 0 {
		ev := heap.Pop(&e.queue).(*event)
		if ev.fn == nil {
			continue // cancelled
		}
		if ev.at < e.now {
			panic("des: time went backwards")
		}
		e.now = ev.at
		if e.MaxTime > 0 && e.now > e.MaxTime {
			return fmt.Errorf("des: exceeded time horizon %g (now %g)", e.MaxTime, e.now)
		}
		fn := ev.fn
		ev.fn = nil
		e.processed++
		fn()
	}
	if e.alive > 0 {
		var names []string
		for _, p := range e.procs {
			if !p.done && p.started {
				names = append(names, p.name)
			}
		}
		sort.Strings(names)
		return &DeadlockError{Time: e.now, Parked: names}
	}
	return nil
}

// Pending returns the number of events currently scheduled. Cancelled
// timers are removed from the queue eagerly and do not count.
func (e *Engine) Pending() int { return e.queue.Len() }

// Processed returns the number of events dispatched so far — the raw event
// throughput measure the fabric benchmarks report as events/sec.
func (e *Engine) Processed() uint64 { return e.processed }

// eventHeap orders events by (time, sequence).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.idx = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.idx = -1
	*h = old[:n-1]
	return ev
}
