package des

import (
	"fmt"
	"testing"
)

// The tests in this file pin the engine's hot-path machinery: the event
// free list, the now-bucket's dispatch-order invariant, and the Sleep
// lone-runner fast path's observable bookkeeping.

func TestEventPoolRecyclesEvents(t *testing.T) {
	e := New()
	const n = 100
	for i := 0; i < n; i++ {
		e.After(float64(i+1), func() {})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d after run, want 0", e.Pending())
	}
	if e.PoolSize() == 0 {
		t.Fatal("PoolSize() = 0 after dispatching events; free list never fed")
	}
	// A second wave must reuse pooled records rather than grow the pool.
	grown := e.PoolSize()
	e.After(1, func() { e.At(e.Now(), func() {}) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.PoolSize() > grown {
		t.Fatalf("PoolSize() grew %d -> %d across an identical wave", grown, e.PoolSize())
	}
}

func TestCancelReturnsEventToPool(t *testing.T) {
	e := New()
	tm := e.After(5, func() { t.Fatal("cancelled timer fired") })
	before := e.PoolSize()
	tm.Cancel()
	if e.PoolSize() != before+1 {
		t.Fatalf("PoolSize() = %d after cancel, want %d", e.PoolSize(), before+1)
	}
	if !tm.Stopped() {
		t.Fatal("timer not Stopped() after cancel")
	}
	e.After(1, func() {})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestNowBucketDispatchOrder checks the two-tier queue's ordering contract:
// an event scheduled At(now) from inside a callback lands in the FIFO
// now-bucket, while events already in the heap for that same timestamp carry
// older sequence numbers — so the heap drains first and overall (time, seq)
// order is preserved exactly.
func TestNowBucketDispatchOrder(t *testing.T) {
	e := New()
	var got []string
	rec := func(s string) func() {
		return func() { got = append(got, s) }
	}
	e.At(1, func() {
		got = append(got, "A")
		// Bucketed: same timestamp, scheduled during dispatch.
		e.At(1, func() {
			got = append(got, "C")
			e.At(1, rec("D")) // bucket feeding itself stays FIFO
		})
	})
	e.At(1, rec("B")) // heap resident: older seq than C and D
	e.At(2, rec("E"))
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := "A B C D E"
	if s := fmt.Sprintf("%s %s %s %s %s", got[0], got[1], got[2], got[3], got[4]); s != want {
		t.Fatalf("dispatch order %q, want %q", s, want)
	}
}

// TestSleepFastPathBookkeeping: a lone sleeping process takes the elided
// resume path (no event, no handoff), but the observable counters — virtual
// time, processed events — must be indistinguishable from the slow path.
func TestSleepFastPathBookkeeping(t *testing.T) {
	e := New()
	const n = 50
	e.Spawn("sleeper", func(p *Proc) {
		for i := 0; i < n; i++ {
			p.Sleep(0.5)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Now() != n*0.5 {
		t.Fatalf("Now() = %g, want %g", e.Now(), n*0.5)
	}
	// One spawn event + one replayed event per sleep: the fast path must
	// keep Processed() identical to what a real resume event would record,
	// since events/op is the determinism canary in the benchmarks.
	if want := uint64(n + 1); e.Processed() != want {
		t.Fatalf("Processed() = %d, want %d", e.Processed(), want)
	}
}

// TestSleepSlowPathMatchesFastPath runs the same two-proc workload twice —
// once with a competing timer forcing the slow path, once without — and
// checks the time/ordering the sleeping proc observes is unaffected by which
// path fired.
func TestSleepSlowPathMatchesFastPath(t *testing.T) {
	run := func(withTimer bool) (times []float64, processed uint64) {
		e := New()
		if withTimer {
			// A far-future timer keeps the heap non-empty so Sleep cannot
			// elide its resume events.
			e.At(1e9, func() {})
		}
		e.Spawn("p", func(p *Proc) {
			for i := 0; i < 10; i++ {
				p.Sleep(1)
				times = append(times, p.Now())
			}
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return times, e.Processed()
	}
	fast, fastN := run(false)
	slow, slowN := run(true)
	for i := range fast {
		if fast[i] != slow[i] {
			t.Fatalf("step %d: fast path woke at %g, slow path at %g", i, fast[i], slow[i])
		}
	}
	// The slow run processes exactly one extra event: the far-future timer.
	if slowN != fastN+1 {
		t.Fatalf("Processed(): slow %d, fast %d, want slow = fast+1", slowN, fastN)
	}
}

// TestVacatedQueueSlotsAreNil: popping and removing events must nil the
// vacated slice slots so dead events are not pinned by the queue's backing
// array (satellite hygiene fix; this is white-box).
func TestVacatedQueueSlotsAreNil(t *testing.T) {
	e := New()
	timers := make([]Timer, 8)
	for i := range timers {
		timers[i] = e.After(float64(i+1), func() {})
	}
	for _, tm := range timers {
		tm.Cancel()
	}
	full := e.queue[:cap(e.queue)]
	for i := range full {
		if full[i] != nil {
			t.Fatalf("vacated backing slot %d not nilled", i)
		}
	}
}
