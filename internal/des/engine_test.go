package des

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestClockStartsAtZero(t *testing.T) {
	e := New()
	if e.Now() != 0 {
		t.Fatalf("Now() = %g, want 0", e.Now())
	}
}

func TestEventsFireInTimeOrder(t *testing.T) {
	e := New()
	var got []float64
	for _, d := range []float64{3, 1, 2, 0.5} {
		d := d
		e.At(d, func() { got = append(got, d) })
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []float64{0.5, 1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestTieBreakBySequence(t *testing.T) {
	e := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(1.0, func() { got = append(got, i) })
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events fired out of insertion order: %v", got)
		}
	}
}

func TestAfterAdvancesClock(t *testing.T) {
	e := New()
	var at float64
	e.After(2.5, func() { at = e.Now() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 2.5 {
		t.Fatalf("event fired at %g, want 2.5", at)
	}
}

func TestCancelledTimerDoesNotFire(t *testing.T) {
	e := New()
	fired := false
	tm := e.After(1, func() { fired = true })
	tm.Cancel()
	if !tm.Stopped() {
		t.Fatal("Stopped() = false after Cancel")
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("cancelled timer fired")
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := New()
	e.At(5, func() {
		defer func() {
			if recover() == nil {
				t.Error("At(past) did not panic")
			}
		}()
		e.At(1, func() {})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestProcSleepAdvancesTime(t *testing.T) {
	e := New()
	var marks []float64
	e.Spawn("p", func(p *Proc) {
		p.Sleep(1)
		marks = append(marks, p.Now())
		p.Sleep(2)
		marks = append(marks, p.Now())
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(marks) != 2 || marks[0] != 1 || marks[1] != 3 {
		t.Fatalf("marks = %v, want [1 3]", marks)
	}
}

func TestTwoProcsInterleaveDeterministically(t *testing.T) {
	run := func() []string {
		e := New()
		var log []string
		for _, n := range []string{"a", "b"} {
			n := n
			e.Spawn(n, func(p *Proc) {
				for i := 0; i < 3; i++ {
					log = append(log, fmt.Sprintf("%s%d@%g", n, i, p.Now()))
					p.Sleep(1)
				}
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return log
	}
	first := run()
	for trial := 0; trial < 20; trial++ {
		again := run()
		for i := range first {
			if first[i] != again[i] {
				t.Fatalf("nondeterministic interleaving: %v vs %v", first, again)
			}
		}
	}
}

func TestParkWake(t *testing.T) {
	e := New()
	var order []string
	var waiter *Proc
	waiter = e.Spawn("waiter", func(p *Proc) {
		order = append(order, "park")
		p.Park()
		order = append(order, fmt.Sprintf("woke@%g", p.Now()))
	})
	e.Spawn("waker", func(p *Proc) {
		p.Sleep(5)
		order = append(order, "wake")
		waiter.Wake()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"park", "wake", "woke@5"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestWakeBeforeParkIsLatched(t *testing.T) {
	e := New()
	var resumedAt float64 = -1
	var target *Proc
	target = e.Spawn("t", func(p *Proc) {
		p.Sleep(2) // wake arrives at t=1 while we are asleep, latched
		p.Park()   // consumes the latched wake without blocking
		resumedAt = p.Now()
	})
	e.Spawn("w", func(p *Proc) {
		p.Sleep(1)
		target.Wake()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if resumedAt != 2 {
		t.Fatalf("resumed at %g, want 2 (latched wake must not shorten sleep)", resumedAt)
	}
}

func TestWakeDoesNotInterruptSleep(t *testing.T) {
	e := New()
	var sleepEnd float64
	var target *Proc
	target = e.Spawn("t", func(p *Proc) {
		p.Sleep(10)
		sleepEnd = p.Now()
	})
	e.Spawn("w", func(p *Proc) {
		p.Sleep(1)
		target.Wake()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if sleepEnd != 10 {
		t.Fatalf("sleep ended at %g, want 10", sleepEnd)
	}
}

func TestDoubleWakeCoalesces(t *testing.T) {
	e := New()
	resumes := 0
	var target *Proc
	target = e.Spawn("t", func(p *Proc) {
		p.Park()
		resumes++
		p.Sleep(100) // would catch a stray second resume as early return
		resumes++
	})
	e.Spawn("w", func(p *Proc) {
		p.Sleep(1)
		target.Wake()
		target.Wake()
		target.Wake()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if resumes != 2 {
		t.Fatalf("resumes = %d, want 2", resumes)
	}
	if e.Now() != 101 {
		t.Fatalf("final time %g, want 101", e.Now())
	}
}

func TestDeadlockDetected(t *testing.T) {
	e := New()
	e.Spawn("stuck", func(p *Proc) { p.Park() })
	err := e.Run()
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
	if len(de.Parked) != 1 || de.Parked[0] != "stuck" {
		t.Fatalf("parked = %v, want [stuck]", de.Parked)
	}
}

func TestMaxTimeHorizon(t *testing.T) {
	e := New()
	e.MaxTime = 5
	e.Spawn("runaway", func(p *Proc) {
		for {
			p.Sleep(1)
		}
	})
	if err := e.Run(); err == nil {
		t.Fatal("expected horizon error")
	}
}

func TestManyProcsAllComplete(t *testing.T) {
	e := New()
	const n = 500
	count := 0
	for i := 0; i < n; i++ {
		i := i
		e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			p.Sleep(float64(i%7) * 0.001)
			count++
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("completed = %d, want %d", count, n)
	}
}

func TestSpawnFromProc(t *testing.T) {
	e := New()
	var childTime float64 = -1
	e.Spawn("parent", func(p *Proc) {
		p.Sleep(3)
		e.Spawn("child", func(c *Proc) {
			c.Sleep(1)
			childTime = c.Now()
		})
		p.Sleep(10)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if childTime != 4 {
		t.Fatalf("child finished at %g, want 4", childTime)
	}
}

func TestZeroSleepYields(t *testing.T) {
	e := New()
	var order []string
	e.Spawn("a", func(p *Proc) {
		order = append(order, "a1")
		p.Sleep(0)
		order = append(order, "a2")
	})
	e.Spawn("b", func(p *Proc) {
		order = append(order, "b1")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// b spawns after a but before a's zero-sleep resume event.
	want := []string{"a1", "b1", "a2"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// Property: for any set of event delays, events fire in sorted order and the
// clock ends at the maximum delay.
func TestQuickEventOrdering(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		e := New()
		var fired []float64
		var max float64
		for _, r := range raw {
			d := float64(r) / 100.0
			if d > max {
				max = d
			}
			e.At(d, func() { fired = append(fired, e.Now()) })
		}
		if err := e.Run(); err != nil {
			return false
		}
		if len(fired) != len(raw) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return e.Now() == max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: random sleep/park/wake workloads terminate with all procs done
// and identical event counts across two runs (determinism).
func TestQuickRandomWorkloadDeterministic(t *testing.T) {
	f := func(seed int64) bool {
		run := func() (float64, int) {
			rng := rand.New(rand.NewSource(seed))
			e := New()
			n := 2 + rng.Intn(6)
			procs := make([]*Proc, 0, n)
			finished := 0
			for i := 0; i < n; i++ {
				steps := 1 + rng.Intn(5)
				delays := make([]float64, steps)
				for j := range delays {
					delays[j] = float64(rng.Intn(100)) / 10
				}
				procs = append(procs, e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
					for _, d := range delays {
						p.Sleep(d)
						// wake everyone; latched wakes are consumed
						// harmlessly by the next Park-free flow
						for _, q := range procs[:len(procs)] {
							_ = q
						}
					}
					finished++
				}))
			}
			if err := e.Run(); err != nil {
				return -1, -1
			}
			return e.Now(), finished
		}
		t1, f1 := run()
		t2, f2 := run()
		return t1 == t2 && f1 == f2 && f1 >= 2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
