package core

import (
	"strconv"

	"hierknem/internal/buffer"
	"hierknem/internal/coll"
	"hierknem/internal/knem"
	"hierknem/internal/mpi"
)

// agShare is the 1st leader's blackboard record for the leader-based
// Allgather: its rbuf cookie, writable (step 1) and readable (step 3).
type agShare struct {
	dev *knem.Device
	ck  knem.Cookie
}

// Allgather implements section III-D: a leader-based algorithm for small
// nodes and a topology-aware ring for large NUMA nodes, selected by the
// processes-per-node count (or forced via Options.ForceAllgather, as in the
// Figure 2 study).
func (m *Module) Allgather(p *mpi.Proc, c *mpi.Comm, sbuf, rbuf *buffer.Buffer) {
	if c.Size() == 1 {
		rbuf.CopyFrom(sbuf)
		return
	}
	mode := m.Opt.ForceAllgather
	if mode == "" {
		if maxPPN(c) <= m.Opt.AllgatherLeaderMaxPPN {
			mode = "leader"
		} else {
			mode = "ring"
		}
	}
	if mode == "leader" && uniformContiguous(c) {
		m.allgatherLeader(p, c, sbuf, rbuf)
		return
	}
	// Topology-aware ring: the logical ring follows physical distance, so
	// only set-boundary edges cross slow links; receives are posted before
	// sends so both ring directions progress concurrently.
	order := physicalOrder(c)
	if m.Opt.RankOrderedRing {
		order = nil // ablation: topology-unaware rank order
	}
	coll.AllgatherRing(p, c, sbuf, rbuf, order, true)
}

// maxPPN returns the largest number of comm ranks hosted by one node.
func maxPPN(c *mpi.Comm) int {
	counts := map[int]int{}
	max := 0
	for r := 0; r < c.Size(); r++ {
		n := c.Proc(r).Core().NodeID
		counts[n]++
		if counts[n] > max {
			max = counts[n]
		}
	}
	return max
}

// uniformContiguous reports whether the comm's ranks form contiguous
// equal-length runs in ascending node order — the layout the leader-based
// algorithm's node-block arithmetic requires (node i's blocks at offset
// i*nodeBytes, with llcomm ordered by node id).
func uniformContiguous(c *mpi.Comm) bool {
	lastNode := -1
	runLen, firstLen := 0, -1
	flush := func() bool {
		if runLen == 0 {
			return true
		}
		if firstLen == -1 {
			firstLen = runLen
		}
		return runLen == firstLen
	}
	for r := 0; r < c.Size(); r++ {
		n := c.Proc(r).Core().NodeID
		if n != lastNode {
			if n < lastNode || !flush() {
				return false
			}
			lastNode = n
			runLen = 0
		}
		runLen++
	}
	return flush()
}

// allgatherLeader is the three-step leader-based algorithm with KNEM
// offload: (1) non-leaders push their blocks into the leader's rbuf with
// one-sided puts, (2) leaders exchange node blocks over the inter-node ring,
// (3) non-leaders pull the full result with one-sided gets. The leader only
// synchronizes around the one-sided phases, dedicating itself to the
// inter-node exchange — but every local byte still crosses the leader's
// memory bus, the hot spot that motivates the ring for large nodes.
func (m *Module) allgatherLeader(p *mpi.Proc, c *mpi.Comm, sbuf, rbuf *buffer.Buffer) {
	hy := m.hierarchy(p, c, 0)
	lcomm := hy.LComm
	block := sbuf.Len()
	spec := &p.World().Machine.Spec
	key := "hkag/" + strconv.Itoa(lcomm.Seq(p))

	nodeBytes := block * int64(lcomm.Size())
	nodes := hy.NodeCount
	me := hy.NodeIndex
	// Ring-arrival schedule: after inter-node step s, the block of node
	// recvIdx(s) is present in the local leader's rbuf. Known to every
	// local rank without communication.
	recvIdx := func(s int) int { return (me - s - 1 + 2*nodes) % nodes }

	// Step 1 — every local rank pushing its block into the leader's rbuf —
	// is node-confined: bracket it collectively when blocks fit the fabric
	// bypass. Steps 2-3 interleave the leader's inter-node ring with the
	// non-leaders' pulls of whole node blocks, so they stay unbracketed.
	bracket := p.PhaseEligible(lcomm, block)

	if hy.IsLeader {
		if bracket {
			p.EnterNodePhase()
		}
		dev := p.Knem()
		p.Compute(spec.ShmLatency)
		ck := dev.Register(rbuf, p.Core(), knem.RightRead|knem.RightWrite)
		lcomm.BBPost(p, key, agShare{dev: dev, ck: ck})
		// My own block goes straight into place.
		rbuf.Slice(int64(c.Rank(p))*block, block).CopyFrom(sbuf)
		lcomm.Barrier(p) // step 1 complete: all local blocks pushed
		if bracket {
			p.ExitNodePhase()
		}

		// Step 2 pipelined with step 3: after each ring exchange the
		// just-arrived node block is released to the local non-leaders,
		// who fetch it while the leader keeps exchanging.
		ll := hy.LLComm
		for s := 0; s < nodes-1; s++ {
			sendIdx := (me - s + nodes) % nodes
			sb := rbuf.Slice(int64(sendIdx)*nodeBytes, nodeBytes)
			rb := rbuf.Slice(int64(recvIdx(s))*nodeBytes, nodeBytes)
			right := (me + 1) % nodes
			left := (me - 1 + nodes) % nodes
			r := p.Irecv(ll, rb, left, hkTag+2000+s)
			sr := p.Isend(ll, sb, right, hkTag+2000+s)
			p.Wait(r)
			p.Wait(sr)
			lcomm.Barrier(p) // release block recvIdx(s)
		}
		lcomm.Barrier(p) // wait for the last fetches
		p.Compute(spec.ShmLatency)
		if err := dev.Deregister(ck); err != nil {
			panic(err)
		}
		lcomm.BBClear(key)
		return
	}

	// Non-leader.
	if bracket {
		p.EnterNodePhase()
	}
	p.Compute(spec.ShmLatency)
	sh := lcomm.BBWait(p, key).(agShare)
	// Step 1: push my block into the leader's rbuf (one-sided, offloaded).
	if err := sh.dev.Put(p.DES(), p.Core(), sh.ck, int64(c.Rank(p))*block, sbuf); err != nil {
		panic(err)
	}
	lcomm.Barrier(p)
	if bracket {
		p.ExitNodePhase()
	}
	// My own node's aggregate can be pulled right away; remote blocks as
	// they arrive (one-sided, overlapping the leader's ring).
	myNodeOff := int64(me) * nodeBytes
	if err := sh.dev.Get(p.DES(), p.Core(), sh.ck, myNodeOff, rbuf.Slice(myNodeOff, nodeBytes)); err != nil {
		panic(err)
	}
	for s := 0; s < nodes-1; s++ {
		lcomm.Barrier(p) // wait for block recvIdx(s)
		off := int64(recvIdx(s)) * nodeBytes
		if err := sh.dev.Get(p.DES(), p.Core(), sh.ck, off, rbuf.Slice(off, nodeBytes)); err != nil {
			panic(err)
		}
	}
	lcomm.Barrier(p)
}
