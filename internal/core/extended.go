package core

import (
	"strconv"

	"hierknem/internal/buffer"
	"hierknem/internal/coll"
	"hierknem/internal/knem"
	"hierknem/internal/mpi"
)

// Extension operations: the paper evaluates Bcast, Reduce and Allgather;
// a production HierKNEM would also ship Scatter, Gather and Allreduce built
// from the same ingredients — leader hierarchy, KNEM offload, and
// topology-derived layouts.

// Scatter distributes root's buffer hierarchically: node blocks travel to
// leaders over a binomial tree, then every non-leader pulls its own block
// with a one-sided KNEM get while leaders are already done. Irregular
// layouts fall back to the flat binomial scatter.
func (m *Module) Scatter(p *mpi.Proc, c *mpi.Comm, sbuf, rbuf *buffer.Buffer, root int) {
	if c.Size() == 1 {
		rbuf.CopyFrom(sbuf.Slice(0, rbuf.Len()))
		return
	}
	if !uniformContiguous(c) {
		coll.ScatterBinomial(p, c, sbuf, rbuf, root)
		return
	}
	hy := m.hierarchy(p, c, root)
	lcomm := hy.LComm
	block := rbuf.Len()
	nodeBytes := block * int64(lcomm.Size())
	spec := &p.World().Machine.Spec
	key := "hkscatter/" + strconv.Itoa(lcomm.Seq(p))

	// Position of this rank within its node's contiguous comm-rank block.
	// (lcomm rank order is reshuffled by root promotion, so derive the
	// block slot from the comm rank, which uniformContiguous guarantees.)
	pos := int64(c.Rank(p) % lcomm.Size())

	// The intra-node pull phase is node-confined: bracket it collectively
	// when per-rank blocks fit the fabric bypass. The leader enters after
	// its inter-node scatter; non-leaders enter immediately (they only park
	// on node-local state until the leader publishes the cookie).
	bracket := p.PhaseEligible(lcomm, block)

	if hy.IsLeader {
		// Inter-node phase: binomial scatter of node blocks over llcomm.
		staging := scratchLike(rbuf, nodeBytes)
		if hy.LLComm.Size() > 1 {
			var nodeSrc *buffer.Buffer
			if c.Rank(p) == root {
				nodeSrc = sbuf
			}
			coll.ScatterBinomial(p, hy.LLComm, nodeSrc, staging, hy.RootNodeIndex)
		} else {
			staging.CopyFrom(sbuf)
		}
		// Intra-node phase: publish the staging block, non-leaders pull.
		if bracket {
			p.EnterNodePhase()
		}
		dev := p.Knem()
		p.Compute(spec.ShmLatency)
		ck := dev.Register(staging, p.Core(), knem.RightRead)
		lcomm.BBPost(p, key, cookieShare{dev: dev, cookie: ck})
		rbuf.CopyFrom(staging.Slice(pos*block, block))
		lcomm.Barrier(p) // non-leaders may pull
		lcomm.Barrier(p) // pulls complete
		p.Compute(spec.ShmLatency)
		if err := dev.Deregister(ck); err != nil {
			panic(err)
		}
		lcomm.BBClear(key)
		if bracket {
			p.ExitNodePhase()
		}
		return
	}

	if bracket {
		p.EnterNodePhase()
	}
	p.Compute(spec.ShmLatency)
	sh := lcomm.BBWait(p, key).(cookieShare)
	lcomm.Barrier(p)
	if err := sh.dev.Get(p.DES(), p.Core(), sh.cookie, pos*block, rbuf); err != nil {
		panic(err)
	}
	lcomm.Barrier(p)
	if bracket {
		p.ExitNodePhase()
	}
}

// Gather is Scatter's mirror: non-leaders push their blocks into the
// leader's staging buffer with one-sided KNEM puts, then leaders gather node
// blocks to the root over a binomial tree.
func (m *Module) Gather(p *mpi.Proc, c *mpi.Comm, sbuf, rbuf *buffer.Buffer, root int) {
	if c.Size() == 1 {
		rbuf.Slice(0, sbuf.Len()).CopyFrom(sbuf)
		return
	}
	if !uniformContiguous(c) {
		coll.GatherBinomial(p, c, sbuf, rbuf, root)
		return
	}
	hy := m.hierarchy(p, c, root)
	lcomm := hy.LComm
	block := sbuf.Len()
	nodeBytes := block * int64(lcomm.Size())
	spec := &p.World().Machine.Spec
	key := "hkgather/" + strconv.Itoa(lcomm.Seq(p))
	pos := int64(c.Rank(p) % lcomm.Size())

	// The intra-node push phase is node-confined: bracket it collectively
	// when per-rank blocks fit the fabric bypass. The leader exits before
	// its inter-node gather.
	bracket := p.PhaseEligible(lcomm, block)

	if hy.IsLeader {
		staging := scratchLike(sbuf, nodeBytes)
		if bracket {
			p.EnterNodePhase()
		}
		dev := p.Knem()
		p.Compute(spec.ShmLatency)
		ck := dev.Register(staging, p.Core(), knem.RightWrite)
		lcomm.BBPost(p, key, cookieShare{dev: dev, cookie: ck})
		staging.Slice(pos*block, block).CopyFrom(sbuf)
		lcomm.Barrier(p) // wait for all pushes
		p.Compute(spec.ShmLatency)
		if err := dev.Deregister(ck); err != nil {
			panic(err)
		}
		lcomm.BBClear(key)
		if bracket {
			p.ExitNodePhase()
		}

		if hy.LLComm.Size() > 1 {
			var nodeDst *buffer.Buffer
			if c.Rank(p) == root {
				nodeDst = rbuf
			}
			coll.GatherBinomial(p, hy.LLComm, staging, nodeDst, hy.RootNodeIndex)
		} else if c.Rank(p) == root {
			rbuf.CopyFrom(staging)
		}
		return
	}

	if bracket {
		p.EnterNodePhase()
	}
	p.Compute(spec.ShmLatency)
	sh := lcomm.BBWait(p, key).(cookieShare)
	if err := sh.dev.Put(p.DES(), p.Core(), sh.cookie, pos*block, sbuf); err != nil {
		panic(err)
	}
	lcomm.Barrier(p)
	if bracket {
		p.ExitNodePhase()
	}
}

// Allreduce runs three phases: a binomial intra-node reduction to each
// leader (over KNEM-backed point-to-point), an inter-node allreduce among
// leaders (recursive doubling for small messages, reduce-scatter +
// allgather ring above 64 KiB), and a one-sided intra-node fan-out where
// every non-leader pulls the result concurrently.
func (m *Module) Allreduce(p *mpi.Proc, c *mpi.Comm, a coll.ReduceArgs, sbuf, rbuf *buffer.Buffer) {
	if c.Size() == 1 {
		rbuf.CopyFrom(sbuf)
		return
	}
	hy := m.hierarchy(p, c, 0)
	lcomm := hy.LComm
	spec := &p.World().Machine.Spec
	key := "hkallreduce/" + strconv.Itoa(lcomm.Seq(p))

	// Both intra-node phases are node-confined: bracket each collectively
	// when the message fits the fabric bypass (the inter-node allreduce in
	// between runs unbracketed, with the non-leaders parked on node-local
	// blackboard state).
	// rbuf is sbuf-sized on every rank, so the second conjunct never changes
	// the bracket decision; it is what bounds the phase-1 accumulator and
	// the phase-3 fetch target for the phasesafe proof.
	bracket := p.PhaseEligible(lcomm, sbuf.Len()) && p.PhaseEligible(lcomm, rbuf.Len())

	// Phase 1: intra-node reduction to the leader (lcomm rank 0).
	var acc *buffer.Buffer
	if hy.IsLeader {
		acc = rbuf
	}
	if bracket {
		p.EnterNodePhase()
	}
	if lcomm.Size() > 1 {
		coll.ReduceBinomial(p, lcomm, a, sbuf, acc, 0)
	} else if hy.IsLeader {
		acc.CopyFrom(sbuf)
	}
	if bracket {
		p.ExitNodePhase()
	}

	if hy.IsLeader {
		// Phase 2: inter-node allreduce among leaders.
		if hy.LLComm.Size() > 1 {
			tmp := scratchLike(sbuf, sbuf.Len())
			tmp.CopyFrom(acc)
			if sbuf.Len() < 64<<10 {
				coll.AllreduceRecursiveDoubling(p, hy.LLComm, a, tmp, acc)
			} else {
				coll.AllreduceRing(p, hy.LLComm, a, tmp, acc, nil)
			}
		}
		// Phase 3: publish; non-leaders pull.
		if lcomm.Size() > 1 {
			if bracket {
				p.EnterNodePhase()
			}
			dev := p.Knem()
			p.Compute(spec.ShmLatency)
			ck := dev.Register(acc, p.Core(), knem.RightRead)
			lcomm.BBPost(p, key, cookieShare{dev: dev, cookie: ck})
			lcomm.Barrier(p)
			lcomm.Barrier(p)
			p.Compute(spec.ShmLatency)
			if err := dev.Deregister(ck); err != nil {
				panic(err)
			}
			lcomm.BBClear(key)
			if bracket {
				p.ExitNodePhase()
			}
		}
		return
	}

	if bracket {
		p.EnterNodePhase()
	}
	p.Compute(spec.ShmLatency)
	sh := lcomm.BBWait(p, key).(cookieShare)
	lcomm.Barrier(p)
	if err := sh.dev.Get(p.DES(), p.Core(), sh.cookie, 0, rbuf); err != nil {
		panic(err)
	}
	lcomm.Barrier(p)
	if bracket {
		p.ExitNodePhase()
	}
}
