package core

import (
	"bytes"
	"fmt"
	"testing"

	"hierknem/internal/buffer"
	"hierknem/internal/coll"
	"hierknem/internal/imb"
	"hierknem/internal/modules"
	"hierknem/internal/mpi"
	"hierknem/internal/topology"
)

// miniCluster is a scaled-down Parapluie: 8 nodes x 2 sockets x 6 cores.
func miniCluster(ib bool) topology.Spec {
	s := topology.Spec{
		Name: "mini", Nodes: 8, SocketsPerNode: 2, CoresPerSocket: 6,
		MemBandwidth: 10e9, CoreCopyBandwidth: 3e9, L3Bandwidth: 6e9,
		L3TotalBandwidth: 30e9, L3Size: 12 << 20, ShmLatency: 1e-6,
		NetBandwidth: 1.9e9, NetLatency: 5e-6, NetFullDuplex: true,
		EagerThreshold: 4096,
	}
	if !ib {
		s.NetBandwidth = 125e6
		s.NetLatency = 50e-6
	}
	return s
}

func newWorld(t testing.TB, spec topology.Spec, binding string, np int) *mpi.World {
	t.Helper()
	m, err := topology.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	var b *topology.Binding
	if binding == "bynode" {
		b, err = topology.ByNode(m, np)
	} else {
		b, err = topology.ByCore(m, np)
	}
	if err != nil {
		t.Fatal(err)
	}
	w, err := mpi.NewWorld(m, b, mpi.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// ppnWorld builds a world with exactly ppn ranks on each of the spec's nodes.
func ppnWorld(t testing.TB, spec topology.Spec, ppn int) *mpi.World {
	t.Helper()
	m, err := topology.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := topology.ByCorePPN(m, ppn*spec.Nodes, ppn)
	if err != nil {
		t.Fatal(err)
	}
	w, err := mpi.NewWorld(m, b, mpi.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestSpanningTreeShapes(t *testing.T) {
	// Chain regime: deep pipelines.
	for v := 0; v < 8; v++ {
		parent, children := spanningTree(v, 8, 100)
		if v > 0 && parent != v-1 {
			t.Fatalf("chain parent(%d) = %d", v, parent)
		}
		if v < 7 && (len(children) != 1 || children[0] != v+1) {
			t.Fatalf("chain children(%d) = %v", v, children)
		}
		if v == 7 && len(children) != 0 {
			t.Fatalf("chain leaf has children %v", children)
		}
	}
	// Binomial regime: shallow pipelines. Verify it is a valid tree that
	// reaches everyone: simulate propagation rounds.
	for _, size := range []int{2, 3, 5, 8, 13, 32} {
		reached := map[int]bool{0: true}
		// children relationships
		for v := 0; v < size; v++ {
			parent, _ := spanningTree(v, size, 1)
			if v == 0 {
				continue
			}
			if parent < 0 || parent >= size || parent == v {
				t.Fatalf("size %d: bad parent(%d) = %d", size, v, parent)
			}
		}
		// walk from root
		frontier := []int{0}
		for len(frontier) > 0 {
			var next []int
			for _, v := range frontier {
				_, children := spanningTree(v, size, 1)
				for _, c := range children {
					if reached[c] {
						t.Fatalf("size %d: %d reached twice", size, c)
					}
					reached[c] = true
					next = append(next, c)
				}
			}
			frontier = next
		}
		if len(reached) != size {
			t.Fatalf("size %d: binomial tree reaches %d ranks", size, len(reached))
		}
	}
}

func TestPipelineTables(t *testing.T) {
	ib := PipelineIB()
	if ib.Bcast(1<<20) != 64<<10 || ib.Reduce(32<<20) != 64<<10 {
		t.Fatal("IB pipeline table wrong")
	}
	eth := PipelineEthernet()
	if eth.Bcast(256<<10) != 16<<10 {
		t.Fatalf("eth bcast small = %d", eth.Bcast(256<<10))
	}
	if eth.Bcast(1<<20) != 32<<10 {
		t.Fatalf("eth bcast large = %d", eth.Bcast(1<<20))
	}
	if eth.Reduce(1<<20) != 64<<10 || eth.Reduce(32<<20) != 1<<20 {
		t.Fatal("eth reduce table wrong")
	}
	if FixedPipeline(1234)(99) != 1234 {
		t.Fatal("FixedPipeline ignores its argument")
	}
}

func TestAllgatherSelection(t *testing.T) {
	// 2 ppn -> leader-based; 12 ppn -> ring. Verified via ForceAllgather
	// equivalence of virtual times.
	spec := miniCluster(true)
	run := func(force string, ppn int) float64 {
		w := ppnWorld(t, spec, ppn)
		mod := New(Options{ForceAllgather: force})
		r := imb.Allgather(w, mod, 64<<10, imb.Opts{Iterations: 2, Warmup: 1})
		return r.AvgTime
	}
	// Auto at 2 ppn equals forced leader mode.
	if a, l := run("", 2), run("leader", 2); a != l {
		t.Fatalf("auto(2ppn)=%g != leader=%g", a, l)
	}
	// Auto at 12 ppn equals forced ring mode.
	if a, r := run("", 12), run("ring", 12); a != r {
		t.Fatalf("auto(12ppn)=%g != ring=%g", a, r)
	}
}

// Figure 2's mechanism at mini scale: leader-based wins at 2 ppn, the ring
// wins at full nodes.
func TestAllgatherCrossover(t *testing.T) {
	spec := miniCluster(true)
	run := func(force string, ppn int) float64 {
		w := ppnWorld(t, spec, ppn)
		mod := New(Options{ForceAllgather: force})
		return imb.Allgather(w, mod, 512<<10, imb.Opts{Iterations: 2, Warmup: 1}).AvgTime
	}
	// At 2 ppn the paper reports a slight leader-based advantage; in this
	// model the two are within a few percent — assert competitiveness.
	if leader, ring := run("leader", 2), run("ring", 2); leader > ring*1.05 {
		t.Fatalf("2 ppn: leader-based (%g) should be within 5%% of ring (%g)", leader, ring)
	}
	// At full nodes the leader's memory bus is the hot spot and the ring
	// must win clearly.
	if leader, ring := run("leader", 12), run("ring", 12); ring >= leader*0.95 {
		t.Fatalf("12 ppn: ring (%g) should clearly beat leader-based (%g)", ring, leader)
	}
}

// The headline property (Figure 3): HierKNEM's overlap beats the sequential
// two-level Hierarch, which beats the flat Tuned module, for mid-size
// broadcasts on the Ethernet personality at full node population.
func TestBcastBeatsBaselines(t *testing.T) {
	spec := miniCluster(false)
	np := 96
	size := int64(256 << 10)
	pl := PipelineEthernet()
	time := func(mod modules.Module) float64 {
		w := newWorld(t, spec, "bycore", np)
		return imb.Bcast(w, mod, size, imb.Opts{Iterations: 2, Warmup: 1}).AvgTime
	}
	hk := time(New(Options{BcastPipeline: pl.Bcast, ReducePipeline: pl.Reduce}))
	hier := time(modules.Hierarch(modules.Quirks{}))
	tuned := time(modules.Tuned(modules.Quirks{}))
	if hk >= hier {
		t.Fatalf("hierknem (%g) not faster than hierarch (%g)", hk, hier)
	}
	if hier >= tuned {
		t.Fatalf("hierarch (%g) not faster than tuned (%g)", hier, tuned)
	}
	if tuned/hk < 3 {
		t.Fatalf("hierknem speedup over tuned only %.1fx", tuned/hk)
	}
}

// Figure 6's property: HierKNEM's performance is nearly binding-invariant
// while Tuned's allgather collapses under by-node placement.
func TestBindingInvariance(t *testing.T) {
	spec := miniCluster(true)
	np := 96
	size := int64(128 << 10)
	run := func(mod modules.Module, binding string) float64 {
		w := newWorld(t, spec, binding, np)
		return imb.Allgather(w, mod, size, imb.Opts{Iterations: 2, Warmup: 1}).AvgTime
	}
	hk := New(Options{})
	hkRatio := run(hk, "bynode") / run(hk, "bycore")
	if hkRatio > 1.3 {
		t.Fatalf("hierknem bynode/bycore = %.2f, want <= 1.3", hkRatio)
	}
	tuned := modules.Tuned(modules.Quirks{})
	tunedRatio := run(tuned, "bynode") / run(tuned, "bycore")
	if tunedRatio < 2 {
		t.Fatalf("tuned bynode/bycore = %.2f, want >= 2 (topology-unaware penalty)", tunedRatio)
	}
	if tunedRatio < hkRatio {
		t.Fatal("tuned should be more binding-sensitive than hierknem")
	}
}

// Figure 1's property: the pipeline size has a sweet spot — too small pays
// latency per segment, too large loses pipelining.
func TestPipelineSizeSweetSpot(t *testing.T) {
	spec := miniCluster(true)
	np := 96
	size := int64(4 << 20)
	time := func(seg int64) float64 {
		w := newWorld(t, spec, "bycore", np)
		mod := New(Options{BcastPipeline: FixedPipeline(seg)})
		return imb.Bcast(w, mod, size, imb.Opts{Iterations: 2, Warmup: 1}).AvgTime
	}
	mid := time(64 << 10)
	tiny := time(4 << 10)
	huge := time(4 << 20) // single segment: no pipelining at all
	if mid >= tiny {
		t.Fatalf("64KB pipeline (%g) should beat 4KB (%g)", mid, tiny)
	}
	if mid >= huge {
		t.Fatalf("64KB pipeline (%g) should beat whole-message (%g)", mid, huge)
	}
}

// Special case: all ranks on a single node — the broadcast must degenerate
// to the KNEM linear algorithm (every non-root fetches concurrently) and
// still deliver correct data.
func TestSingleNodeDegeneratesToKnemLinear(t *testing.T) {
	spec := miniCluster(true)
	spec.Nodes = 1
	w := newWorld(t, spec, "bycore", 12)
	mod := New(Options{})
	want := make([]byte, 100000)
	for i := range want {
		want[i] = byte(i * 7)
	}
	bad := 0
	err := w.Run(func(p *mpi.Proc) {
		c := w.WorldComm()
		var buf *buffer.Buffer
		if c.Rank(p) == 0 {
			buf = buffer.NewReal(append([]byte(nil), want...))
		} else {
			buf = buffer.NewReal(make([]byte, len(want)))
		}
		mod.Bcast(p, c, buf, 0)
		if !bytes.Equal(buf.Data(), want) {
			bad++
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if bad != 0 {
		t.Fatalf("%d ranks wrong", bad)
	}
}

// Special case: one rank per node — identical virtual time structure to a
// pure inter-node pipeline (lcomm barriers are no-ops).
func TestOneRankPerNodeMorphsToInterTree(t *testing.T) {
	spec := miniCluster(true)
	w := newWorld(t, spec, "bynode", 8)
	mod := New(Options{})
	r := imb.Bcast(w, mod, 1<<20, imb.Opts{Iterations: 2, Warmup: 1})
	// The broadcast must complete and beat a naive linear send of 7 full
	// copies (sanity bound on the degenerate path).
	naive := 7 * float64(1<<20) / spec.NetBandwidth
	if r.AvgTime >= naive {
		t.Fatalf("degenerate bcast %g slower than naive linear %g", r.AvgTime, naive)
	}
}

// Reduce correctness at mini-cluster scale with verification against the
// analytic expectation, exercising the double-leader pipeline.
func TestReducePipelineCorrect(t *testing.T) {
	spec := miniCluster(true)
	const np = 24
	w := newWorld(t, spec, "bycore", np)
	mod := New(Options{ReducePipeline: FixedPipeline(8 << 10)})
	const elems = 20000 // ~160KB: several segments
	var got []int64
	err := w.Run(func(p *mpi.Proc) {
		c := w.WorldComm()
		me := c.Rank(p)
		vals := make([]int64, elems)
		for i := range vals {
			vals[i] = int64(me + i)
		}
		sbuf := buffer.Int64s(vals)
		var rbuf *buffer.Buffer
		if me == 0 {
			rbuf = buffer.Int64s(make([]int64, elems))
		}
		mod.Reduce(p, c, coll.ReduceArgs{Op: buffer.OpSum, Dtype: buffer.Int64}, sbuf, rbuf, 0)
		if me == 0 {
			got = buffer.AsInt64s(rbuf)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < elems; i++ {
		want := int64(np*i) + int64(np*(np-1)/2)
		if got[i] != want {
			t.Fatalf("elem %d = %d, want %d", i, got[i], want)
		}
	}
}

// The offload claim: with HierKNEM the leader's broadcast-path time is
// bounded by inter-node forwarding, so adding more local ranks must not
// slow the collective much (the Figure 7(a) mechanism). Compare 2 ppn vs
// 12 ppn at constant node count on the Ethernet personality.
func TestCorePerNodeScalingEthernet(t *testing.T) {
	spec := miniCluster(false)
	size := int64(2 << 20)
	pl := PipelineEthernet()
	time := func(np int) float64 {
		w := newWorld(t, spec, "bycore", np)
		mod := New(Options{BcastPipeline: pl.Bcast})
		return imb.Bcast(w, mod, size, imb.Opts{Iterations: 2, Warmup: 1}).AvgTime
	}
	t2 := time(16)  // 2 ppn
	t12 := time(96) // 12 ppn
	if t12 > t2*1.35 {
		t.Fatalf("2MB bcast slowed from %g to %g with 6x more ranks per node; want near-constant", t2, t12)
	}
}

func TestModuleInterface(t *testing.T) {
	var _ modules.Module = New(Options{})
	if New(Options{}).Name() != "hierknem" {
		t.Fatal("wrong module name")
	}
}

func TestPhysicalOrderGroupsNodes(t *testing.T) {
	spec := miniCluster(true)
	w := newWorld(t, spec, "bynode", 32)
	err := w.Run(func(p *mpi.Proc) {
		c := w.WorldComm()
		if c.Rank(p) != 0 {
			return
		}
		order := physicalOrder(c)
		if len(order) != 32 {
			t.Errorf("order length %d", len(order))
		}
		// Node ids must be non-decreasing along the order.
		for i := 1; i < len(order); i++ {
			a := c.Proc(order[i-1]).Core().NodeID
			b := c.Proc(order[i]).Core().NodeID
			if b < a {
				t.Errorf("physical order visits node %d after %d", b, a)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestUniformContiguous(t *testing.T) {
	spec := miniCluster(true)
	wByCore := newWorld(t, spec, "bycore", 24)
	err := wByCore.Run(func(p *mpi.Proc) {
		if !uniformContiguous(wByCore.WorldComm()) {
			t.Error("bycore full nodes should be uniform-contiguous")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	wByNode := newWorld(t, spec, "bynode", 24)
	err = wByNode.Run(func(p *mpi.Proc) {
		if uniformContiguous(wByNode.WorldComm()) {
			t.Error("bynode interleaving should not be uniform-contiguous")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func ExampleModule() {
	spec := topology.Spec{
		Name: "example", Nodes: 2, SocketsPerNode: 1, CoresPerSocket: 4,
		MemBandwidth: 10e9, CoreCopyBandwidth: 3e9, NetBandwidth: 1e9,
		NetLatency: 10e-6, ShmLatency: 1e-6, EagerThreshold: 4096,
	}
	m, _ := topology.Build(spec)
	b, _ := topology.ByCore(m, 8)
	w, _ := mpi.NewWorld(m, b, mpi.Config{})
	mod := New(Options{})
	_ = w.Run(func(p *mpi.Proc) {
		c := w.WorldComm()
		buf := buffer.NewReal([]byte("hierknem!"))
		if c.Rank(p) != 0 {
			buf = buffer.NewReal(make([]byte, 9))
		}
		mod.Bcast(p, c, buf, 0)
		if c.Rank(p) == 7 {
			fmt.Printf("rank 7: %s\n", buf.Data())
		}
	})
	// Output: rank 7: hierknem!
}
