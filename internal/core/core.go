// Package core implements HierKNEM, the paper's contribution: an adaptive,
// kernel-assisted, topology-aware hierarchical collective framework.
//
// Three design elements distinguish it from the classic two-level modules in
// internal/modules:
//
//  1. Offload — intra-node data movement is performed by non-leader
//     processes through one-sided KNEM copies, so leaders spend no cycles on
//     local distribution;
//  2. Tight pipeline integration — the intra-node fan-out of segment i
//     overlaps the inter-node forwarding of segment i+1 (Broadcast), and the
//     intra-node reduction of segment i+1 overlaps the inter-node reduction
//     of segment i (Reduce, a double-leader scheme);
//  3. Topology awareness — leaders, rings and communicator layouts are
//     derived from the physical process-core binding, so performance is
//     stable under by-core, by-node or irregular placements.
//
// The algorithms adapt to degenerate layouts exactly as the paper describes:
// with all ranks on one node the Broadcast collapses into the KNEM-collective
// linear algorithm, and with one rank per node it morphs into the pure
// inter-node pipelined tree.
package core

import (
	"sort"

	"hierknem/internal/buffer"
	"hierknem/internal/hier"
	"hierknem/internal/mpi"
)

// PipelineFunc maps a total message size to the pipeline (segment) size the
// operation should use.
type PipelineFunc func(msgBytes int64) int64

// Options configure the HierKNEM module.
type Options struct {
	// BcastPipeline and ReducePipeline give the segment size per message
	// size; nil selects the InfiniBand defaults from Table I.
	BcastPipeline  PipelineFunc
	ReducePipeline PipelineFunc

	// AllgatherLeaderMaxPPN is the largest processes-per-node for which
	// the leader-based Allgather is selected; above it the topology-aware
	// ring is used (section III-D). Default 6.
	AllgatherLeaderMaxPPN int

	// ForceAllgather overrides the automatic selection: "leader" or
	// "ring" (used by the Figure 2 study). Empty means automatic.
	ForceAllgather string

	// RankOrderedRing is an ablation switch: build the Allgather ring in
	// MPI rank order instead of physical order, disabling the
	// topology-awareness this module exists for.
	RankOrderedRing bool

	// TopoDetectCost is the per-call CPU cost of constructing the
	// internal topology map (the overhead section IV-G quantifies; the
	// paper lists caching it as future work). Default 2 µs.
	TopoDetectCost float64

	// CacheTopology implements that future work: build the topological
	// map (and the hierarchy communicators) once per communicator at
	// first use and reuse it afterwards, eliminating the per-call
	// detection overhead measured in section IV-G.
	CacheTopology bool

	// ReducePerHop is inherited from the Open MPI stack HierKNEM is built
	// on: its inter-node reduction pays the same per-send penalty as
	// Tuned on InfiniBand (section IV-E explains HierKNEM cannot beat
	// MVAPICH2 there for this reason).
	ReducePerHop float64
}

func (o Options) withDefaults() Options {
	if o.BcastPipeline == nil {
		o.BcastPipeline = PipelineIB().Bcast
	}
	if o.ReducePipeline == nil {
		o.ReducePipeline = PipelineIB().Reduce
	}
	if o.AllgatherLeaderMaxPPN == 0 {
		o.AllgatherLeaderMaxPPN = 6
	}
	if o.TopoDetectCost == 0 {
		o.TopoDetectCost = 2e-6
	}
	return o
}

// Pipeline is a Table-I row: the tuned pipeline sizes of one cluster.
type Pipeline struct {
	Bcast  PipelineFunc
	Reduce PipelineFunc
}

// PipelineIB returns Table I's Parapluie (InfiniBand 20G) column: 64 KB for
// both operations at every size.
func PipelineIB() Pipeline {
	return Pipeline{
		Bcast:  func(int64) int64 { return 64 << 10 },
		Reduce: func(int64) int64 { return 64 << 10 },
	}
}

// PipelineEthernet returns Table I's Stremi (Gigabit Ethernet) column:
// Broadcast 16 KB below 512 KB and 32 KB above; Reduce 64 KB below 16 MB and
// 1 MB above.
func PipelineEthernet() Pipeline {
	return Pipeline{
		Bcast: func(n int64) int64 {
			if n < 512<<10 {
				return 16 << 10
			}
			return 32 << 10
		},
		Reduce: func(n int64) int64 {
			if n < 16<<20 {
				return 64 << 10
			}
			return 1 << 20
		},
	}
}

// FixedPipeline returns a constant segment size (used by the Figure 1 sweep).
func FixedPipeline(seg int64) PipelineFunc {
	return func(int64) int64 { return seg }
}

// Module is the HierKNEM collective component. It satisfies
// modules.Module.
type Module struct {
	Opt Options

	// hierCache holds per-(comm, root, rank) hierarchies when
	// Options.CacheTopology is set. The simulation is single-threaded
	// (one runnable process at a time), so a plain map suffices.
	hierCache map[hierKey]*hier.Hierarchy
}

type hierKey struct {
	comm *mpi.Comm
	root int
	rank int
}

// New creates a HierKNEM module.
func New(opt Options) *Module { return &Module{Opt: opt.withDefaults()} }

// hierarchy builds (or, with CacheTopology, reuses) the two-level structure
// for p on c, charging the topology-detection cost on construction only.
func (m *Module) hierarchy(p *mpi.Proc, c *mpi.Comm, root int) *hier.Hierarchy {
	if !m.Opt.CacheTopology {
		p.Compute(m.Opt.TopoDetectCost)
		return hier.Build(p, c, root)
	}
	key := hierKey{comm: c, root: root, rank: p.Rank()}
	if h, ok := m.hierCache[key]; ok {
		return h
	}
	p.Compute(m.Opt.TopoDetectCost)
	h := hier.Build(p, c, root)
	if m.hierCache == nil {
		m.hierCache = make(map[hierKey]*hier.Hierarchy)
	}
	m.hierCache[key] = h
	return h
}

func (m *Module) Name() string { return "hierknem" }

// hkTag is the base of HierKNEM's tag space.
const hkTag = 1 << 21

// physicalOrder returns comm ranks sorted by physical position (node,
// socket, core) — the construction behind HierKNEM's topology-aware ring.
func physicalOrder(c *mpi.Comm) []int {
	order := make([]int, c.Size())
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool {
		a := c.Proc(order[i]).Core()
		b := c.Proc(order[j]).Core()
		if a.NodeID != b.NodeID {
			return a.NodeID < b.NodeID
		}
		if a.Socket.ID != b.Socket.ID {
			return a.Socket.ID < b.Socket.ID
		}
		return a.Local < b.Local
	})
	return order
}

// segCount returns the number of pipeline segments for a message.
func segCount(total, seg int64) int64 {
	if total == 0 {
		return 1
	}
	n := mpi.CeilDiv(total, seg)
	if n == 0 {
		n = 1
	}
	return n
}

// scratchLike returns a scratch buffer matching b's realness.
func scratchLike(b *buffer.Buffer, n int64) *buffer.Buffer {
	if b != nil && !b.Phantom() {
		return buffer.NewReal(make([]byte, n))
	}
	return buffer.NewPhantom(n)
}
