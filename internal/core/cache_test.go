package core

import (
	"bytes"
	"testing"

	"hierknem/internal/buffer"
	"hierknem/internal/coll"
	"hierknem/internal/imb"
	"hierknem/internal/mpi"
)

// CacheTopology is the paper's stated future work: build the topology map
// once per communicator. It must not change results, and must remove the
// per-call detection cost.

func TestCacheTopologyCorrectAcrossOps(t *testing.T) {
	spec := miniCluster(true)
	w := newWorld(t, spec, "bycore", 24)
	mod := New(Options{CacheTopology: true})
	const size = 40000
	for iter := 0; iter < 3; iter++ {
		want := make([]byte, size)
		for i := range want {
			want[i] = byte(i * (iter + 3))
		}
		bad := 0
		err := w.Run(func(p *mpi.Proc) {
			c := w.WorldComm()
			var buf *buffer.Buffer
			if c.Rank(p) == 0 {
				buf = buffer.NewReal(append([]byte(nil), want...))
			} else {
				buf = buffer.NewReal(make([]byte, size))
			}
			mod.Bcast(p, c, buf, 0)
			if !bytes.Equal(buf.Data(), want) {
				bad++
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if bad != 0 {
			t.Fatalf("iter %d: %d ranks wrong", iter, bad)
		}
	}
}

func TestCacheTopologyMixedCollectives(t *testing.T) {
	spec := miniCluster(true)
	w := newWorld(t, spec, "bycore", 24)
	mod := New(Options{CacheTopology: true})
	const elems = 4000
	var got []int64
	err := w.Run(func(p *mpi.Proc) {
		c := w.WorldComm()
		me := c.Rank(p)
		// Bcast then Reduce on the same comm/root: the cached hierarchy
		// is shared; NewComm splits exactly once.
		b := buffer.NewPhantom(32 << 10)
		mod.Bcast(p, c, b, 0)

		vals := make([]int64, elems)
		for i := range vals {
			vals[i] = int64(me)
		}
		sbuf := buffer.Int64s(vals)
		var rbuf *buffer.Buffer
		if me == 0 {
			rbuf = buffer.Int64s(make([]int64, elems))
		}
		mod.Reduce(p, c, coll.ReduceArgs{Op: buffer.OpSum, Dtype: buffer.Int64}, sbuf, rbuf, 0)
		if me == 0 {
			got = buffer.AsInt64s(rbuf)
		}

		// And a second reduce, exercising the cached NewComm path.
		if me == 0 {
			rbuf = buffer.Int64s(make([]int64, elems))
		}
		mod.Reduce(p, c, coll.ReduceArgs{Op: buffer.OpSum, Dtype: buffer.Int64}, sbuf, rbuf, 0)
	})
	if err != nil {
		t.Fatal(err)
	}
	want := int64(24 * 23 / 2)
	for i := range got {
		if got[i] != want {
			t.Fatalf("elem %d = %d, want %d", i, got[i], want)
		}
	}
}

func TestCacheTopologyRemovesDetectionCost(t *testing.T) {
	spec := miniCluster(true)
	const detect = 500e-6 // exaggerated so the difference is unambiguous
	run := func(cache bool) float64 {
		w := newWorld(t, spec, "bycore", 96)
		mod := New(Options{TopoDetectCost: detect, CacheTopology: cache})
		r := imb.Bcast(w, mod, 64<<10, imb.Opts{Iterations: 4, Warmup: 1})
		return r.AvgTime
	}
	cached := run(true)
	uncached := run(false)
	// Uncached pays the detection cost every timed iteration; cached only
	// in the (excluded) warmup.
	if uncached-cached < detect/2 {
		t.Fatalf("caching saved only %.1fus of the %.1fus detection cost",
			(uncached-cached)*1e6, detect*1e6)
	}
}
