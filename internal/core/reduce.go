package core

import (
	"strconv"

	"hierknem/internal/buffer"
	"hierknem/internal/coll"
	"hierknem/internal/knem"
	"hierknem/internal/mpi"
)

// reduceShare is posted by the 1st leader: cookies for its send buffer
// (read access, fetched by the 2nd leader) and its staging buffer (write
// access, pushed by the 2nd leader).
type reduceShare struct {
	dev    *knem.Device
	sbufCk knem.Cookie
	tmpCk  knem.Cookie
	tmp    *buffer.Buffer
}

// Reduce implements Algorithm 2 of the paper: the double-leader pipelined
// reduction.
//
// On every node the 1st leader dedicates itself to the inter-node reduction
// while the 2nd leader drives the intra-node one: per pipeline segment it
// fetches the 1st leader's contribution with a one-sided KNEM get, folds in
// its own, runs the reduction over new_comm (all local ranks except the 1st
// leader), pushes the result into the 1st leader's staging buffer with a
// KNEM put, and notifies. The 1st leader then reduces that segment across
// nodes — so the intra-node reduction of segment i+1 overlaps the
// inter-node reduction of segment i.
func (m *Module) Reduce(p *mpi.Proc, c *mpi.Comm, a coll.ReduceArgs, sbuf, rbuf *buffer.Buffer, root int) {
	if c.Size() == 1 {
		rbuf.CopyFrom(sbuf)
		return
	}
	hy := m.hierarchy(p, c, root)
	seg := m.Opt.ReducePipeline(sbuf.Len())
	nseg := segCount(sbuf.Len(), seg)
	spec := &p.World().Machine.Spec
	lcomm := hy.LComm
	lrank := lcomm.Rank(p)
	isRoot := c.Rank(p) == root

	// Small messages (a single pipeline segment) take a lean path: the
	// double-leader machinery (registrations, notifications, new_comm)
	// costs more than it hides at these sizes. A plain binomial reduce to
	// the leader plus the inter-node reduction matches what the adaptive
	// framework selects below the pipelining regime.
	if nseg == 1 {
		var acc *buffer.Buffer
		if hy.IsLeader {
			if isRoot {
				acc = rbuf
			} else {
				acc = scratchLike(sbuf, sbuf.Len())
			}
		}
		// The intra-node reduction to the leader is node-confined: bracket
		// it (collectively — every lcomm member, leader included) when the
		// message fits the fabric bypass, so parallel windows run each
		// node's binomial fold on its own worker.
		// acc is nil off the leader and sbuf-sized on it, so the extra
		// conjunct never changes the bracket decision; it is what bounds
		// the fold's accumulator for the phasesafe proof.
		bracket := p.PhaseEligible(lcomm, sbuf.Len()) &&
			(acc == nil || p.PhaseEligible(lcomm, acc.Len()))
		if bracket {
			p.EnterNodePhase()
		}
		if lcomm.Size() > 1 {
			coll.ReduceBinomial(p, lcomm, a, sbuf, acc, 0)
		} else if hy.IsLeader {
			acc.CopyFrom(sbuf)
		}
		if bracket {
			p.ExitNodePhase()
		}
		if hy.IsLeader && hy.LLComm.Size() > 1 {
			var out *buffer.Buffer
			if isRoot {
				out = rbuf
			}
			coll.ReduceBinomialOverhead(p, hy.LLComm, a, acc, out,
				hy.RootNodeIndex, m.Opt.ReducePerHop)
		}
		return
	}

	newComm := hy.NewComm(p)
	key := "hkreduce/" + strconv.Itoa(lcomm.Seq(p))

	switch {
	case lrank == 0:
		// --- 1st leader ---
		dev := p.Knem()
		var tmp *buffer.Buffer
		haveSecond := lcomm.Size() >= 2
		p.Compute(spec.ShmLatency)
		var sh reduceShare
		if haveSecond {
			tmp = scratchLike(sbuf, sbuf.Len())
			sh = reduceShare{
				dev:    dev,
				sbufCk: dev.Register(sbuf, p.Core(), knem.RightRead),
				tmpCk:  dev.Register(tmp, p.Core(), knem.RightWrite),
				tmp:    tmp,
			}
			lcomm.BBPost(p, key, sh)
		} else {
			// Alone on the node: my contribution goes up directly.
			tmp = scratchLike(sbuf, sbuf.Len())
			tmp.CopyFrom(sbuf)
		}

		// Inter-node topology: like the Broadcast, deep pipelines reduce
		// along a fan-in-1 chain (the root ingests the data exactly once,
		// at full link bandwidth), shallow ones up a binomial tree.
		ll := hy.LLComm
		llSize := ll.Size()
		useChain := llSize > 1 && nseg >= chainMinSegs
		var chainV int // virtual position: data flows v=llSize-1 -> v=0 (root)
		var chainUp, chainDown int
		chainRecvs := false
		var partial [2]*buffer.Buffer
		var rreq [2]*mpi.Request
		if useChain {
			me := ll.Rank(p)
			chainV = (me - hy.RootNodeIndex + llSize) % llSize
			chainUp = (hy.RootNodeIndex + chainV + 1) % llSize   // my upstream
			chainDown = (hy.RootNodeIndex + chainV - 1) % llSize // toward root
			chainRecvs = chainV != llSize-1
			if chainRecvs {
				// Ping-pong prepost: one segment's receive always in
				// flight ahead of the pipeline, so rendezvous transfers
				// start without a handshake round trip.
				partial[0] = scratchLike(sbuf, seg)
				partial[1] = scratchLike(sbuf, seg)
				_, n0 := mpi.SegmentBounds(sbuf.Len(), seg, 0)
				rreq[0] = p.Irecv(ll, partial[0].Slice(0, n0), chainUp, hkTag+(1<<16))
			}
		}

		// Inter-node pipelined reduction: per segment, wait for the local
		// contribution, then reduce across leaders.
		for i := int64(0); i < nseg; i++ {
			off, n := mpi.SegmentBounds(sbuf.Len(), seg, i)
			if haveSecond {
				// Step 3: wait for the 2nd leader's push notification.
				p.Recv(lcomm, buffer.NewPhantom(0), 1, hkTag+1000+int(i))
			}
			var out *buffer.Buffer
			if isRoot {
				out = rbuf.Slice(off, n)
			}
			switch {
			case useChain:
				acc := tmp.Slice(off, n)
				perHop := m.Opt.ReducePerHop
				if n < coll.ReduceDefectMin {
					perHop = 0
				}
				if chainRecvs {
					if i+1 < nseg {
						_, nn := mpi.SegmentBounds(sbuf.Len(), seg, i+1)
						rreq[(i+1)%2] = p.Irecv(ll, partial[(i+1)%2].Slice(0, nn),
							chainUp, hkTag+(1<<16)+int(i+1))
					}
					p.Wait(rreq[i%2])
					p.ReduceLocal(a.Op, a.Dtype, acc, partial[i%2].Slice(0, n))
				}
				if chainV != 0 {
					if perHop > 0 {
						p.Compute(perHop)
					}
					p.Send(ll, acc, chainDown, hkTag+(1<<16)+int(i))
				} else if isRoot {
					out.CopyFrom(acc)
				}
			case llSize > 1:
				coll.ReduceBinomialOverhead(p, ll, a, tmp.Slice(off, n), out,
					hy.RootNodeIndex, m.Opt.ReducePerHop)
			case isRoot:
				out.CopyFrom(tmp.Slice(off, n))
			}
		}
		lcomm.Barrier(p)
		if haveSecond {
			p.Compute(spec.ShmLatency)
			if err := dev.Deregister(sh.sbufCk); err != nil {
				panic(err)
			}
			if err := dev.Deregister(sh.tmpCk); err != nil {
				panic(err)
			}
			lcomm.BBClear(key)
		}

	case lrank == 1:
		// --- 2nd leader ---
		p.Compute(spec.ShmLatency)
		sh := lcomm.BBWait(p, key).(reduceShare)
		fetch := scratchLike(sbuf, seg)
		for i := int64(0); i < nseg; i++ {
			off, n := mpi.SegmentBounds(sbuf.Len(), seg, i)
			fseg := fetch.Slice(0, n)
			// Step 9: fetch the 1st leader's segment (one-sided).
			if err := sh.dev.Get(p.DES(), p.Core(), sh.sbufCk, off, fseg); err != nil {
				panic(err)
			}
			// Step 10: fold in my own contribution.
			p.ReduceLocal(a.Op, a.Dtype, fseg, sbuf.Slice(off, n))
			// Step 11: intra-node reduction over new_comm (I am root 0).
			// A fan-in-1 chain keeps the 2nd leader's per-segment work
			// constant; consecutive segments pipeline down the chain.
			if newComm != nil && newComm.Size() > 1 {
				acc := scratchLike(sbuf, n)
				coll.ReduceChain(p, newComm, a, fseg, acc, 0, 0)
				fseg.CopyFrom(acc)
			}
			// Step 12: push the result into the 1st leader's staging
			// buffer (one-sided) and notify (step 13).
			if err := sh.dev.Put(p.DES(), p.Core(), sh.tmpCk, off, fseg); err != nil {
				panic(err)
			}
			p.Send(lcomm, buffer.NewPhantom(0), 0, hkTag+1000+int(i))
		}
		lcomm.Barrier(p)

	default:
		// --- non-leader: intra-node reduction participant (steps 17-19) ---
		for i := int64(0); i < nseg; i++ {
			off, n := mpi.SegmentBounds(sbuf.Len(), seg, i)
			coll.ReduceChain(p, newComm, a, sbuf.Slice(off, n), nil, 0, 0)
		}
		lcomm.Barrier(p)
	}
}
