package core

import (
	"strconv"

	"hierknem/internal/buffer"
	"hierknem/internal/hier"
	"hierknem/internal/knem"
	"hierknem/internal/mpi"
	"hierknem/internal/topology"
)

// cookieShare is the blackboard record a leader posts after registering its
// receive buffer with the node's KNEM device.
type cookieShare struct {
	dev    *knem.Device
	cookie knem.Cookie
}

// chainMinSegs is the pipeline depth from which the inter-node spanning
// tree degenerates into a chain: with enough segments in flight the chain's
// linear fan-in is amortized and every link streams at full bandwidth, while
// for few segments the binomial tree's logarithmic depth wins.
const chainMinSegs = 8

// spanningTree returns the parent and children of virtual rank v in the
// inter-node spanning tree: a binomial tree for shallow pipelines, a chain
// for deep ones.
func spanningTree(v, size int, nseg int64) (parent int, children []int) {
	if size <= 1 {
		return 0, nil
	}
	if nseg >= chainMinSegs {
		if v+1 < size {
			children = []int{v + 1}
		}
		if v > 0 {
			parent = v - 1
		}
		return parent, children
	}
	// Binomial tree.
	if v != 0 {
		mask := 1
		for v&mask == 0 {
			mask <<= 1
		}
		parent = v ^ mask
	}
	mask := 1
	for mask < size {
		if v&mask != 0 {
			break
		}
		if c := v | mask; c != v && c < size {
			children = append(children, c)
		}
		mask <<= 1
	}
	return parent, children
}

// Bcast implements Algorithm 1 of the paper.
//
// Leaders register the buffer with KNEM and forward pipeline segments along
// the inter-node spanning tree (a pipelined chain over the leader
// communicator); after forwarding each segment they synchronize with their
// node's non-leaders through an lcomm barrier, and the non-leaders fetch the
// segment with one-sided KNEM gets — overlapping intra-node distribution of
// segment i with inter-node forwarding of segment i+1. Non-leaders on the
// root's node fetch the whole message immediately (it is complete from the
// start).
//
// Degenerate layouts need no special code path: on a single node the
// spanning tree is empty and the algorithm is exactly the KNEM-collective
// linear broadcast; with one rank per node the lcomm barriers are no-ops and
// it is a pure inter-node pipelined tree.
func (m *Module) Bcast(p *mpi.Proc, c *mpi.Comm, buf *buffer.Buffer, root int) {
	if c.Size() == 1 {
		return
	}
	hy := m.hierarchy(p, c, root) // build (or reuse) the topology map
	seg := m.Opt.BcastPipeline(buf.Len())
	nseg := segCount(buf.Len(), seg)
	spec := &p.World().Machine.Spec

	lcomm := hy.LComm
	key := "hkbcast/" + strconv.Itoa(lcomm.Seq(p))
	onRootNode := hy.NodeIndex == hy.RootNodeIndex

	if nseg == 1 && p.PhaseEligible(lcomm, buf.Len()) {
		// Single-segment messages have no cross-segment overlap to preserve,
		// so the small path reorders to inter-node-then-intra-node and
		// brackets the intra-node fan-out as a node phase.
		m.bcastSmall(p, hy, buf, key, spec)
		return
	}

	if hy.IsLeader {
		// Register rbuf with the KNEM device; share the cookie with the
		// node's non-leaders (steps 2-3).
		dev := p.Knem()
		p.Compute(spec.ShmLatency) // registration syscall
		ck := dev.Register(buf, p.Core(), knem.RightRead)
		lcomm.BBPost(p, key, cookieShare{dev: dev, cookie: ck})

		ll := hy.LLComm
		llSize := ll.Size()
		me := ll.Rank(p)
		rootLL := hy.RootNodeIndex
		v := (me - rootLL + llSize) % llSize // virtual rank in the tree
		parentV, childrenV := spanningTree(v, llSize, nseg)
		parent := (rootLL + parentV) % llSize
		children := make([]int, len(childrenV))
		for i, cv := range childrenV {
			children[i] = (rootLL + cv) % llSize
		}

		// Prepost the first segment's receive (Algorithm 1, step 11),
		// then keep one receive ahead of the pipeline (step 13).
		var recvs []*mpi.Request
		if v != 0 {
			recvs = make([]*mpi.Request, nseg)
			off, n := mpi.SegmentBounds(buf.Len(), seg, 0)
			recvs[0] = p.Irecv(ll, buf.Slice(off, n), parent, hkTag)
		}
		var pending []*mpi.Request
		for i := int64(0); i < nseg; i++ {
			off, n := mpi.SegmentBounds(buf.Len(), seg, i)
			s := buf.Slice(off, n)
			if v != 0 {
				if i+1 < nseg {
					noff, nn := mpi.SegmentBounds(buf.Len(), seg, i+1)
					recvs[i+1] = p.Irecv(ll, buf.Slice(noff, nn), parent, hkTag+int(i+1))
				}
				p.Wait(recvs[i]) // step 14
			}
			for _, ch := range children {
				pending = append(pending, p.Isend(ll, s, ch, hkTag+int(i))) // step 15/21
			}
			if v != 0 && !onRootNode {
				// Notify non-leaders that segment i is available
				// (steps 16/22/29).
				lcomm.Barrier(p)
			}
			// Bound in-flight sends to keep pipeline semantics.
			for len(pending) > 2*len(children) {
				p.Wait(pending[0])
				pending = pending[1:]
			}
		}
		p.WaitAll(pending...)
		lcomm.Barrier(p) // final synchronization (step 32 / 45)
		p.Compute(spec.ShmLatency)
		if err := dev.Deregister(ck); err != nil {
			panic(err)
		}
		lcomm.BBClear(key)
		return
	}

	// Non-leader (steps 36-46).
	p.Compute(spec.ShmLatency) // cookie lookup
	sh := lcomm.BBWait(p, key).(cookieShare)
	if onRootNode {
		// The root holds the whole message already: fetch it in one
		// one-sided copy (step 38).
		if err := sh.dev.Get(p.DES(), p.Core(), sh.cookie, 0, buf); err != nil {
			panic(err)
		}
		lcomm.Barrier(p)
		return
	}
	for i := int64(0); i < nseg; i++ {
		lcomm.Barrier(p) // wait for the leader's notification (step 42)
		off, n := mpi.SegmentBounds(buf.Len(), seg, i)
		if err := sh.dev.Get(p.DES(), p.Core(), sh.cookie, off, buf.Slice(off, n)); err != nil {
			panic(err)
		}
	}
	lcomm.Barrier(p) // step 45
}

// bcastSmall is the single-segment Bcast restructured for node-phase
// bracketing. The general path interleaves inter-node forwarding with lcomm
// barriers, which pins every rank of the node to the leader's global-domain
// traffic; with one segment that interleaving buys nothing, so the leader
// first completes all inter-node forwarding, then the whole node — leader
// and non-leaders together, as the bracket placement rule requires — runs
// the KNEM linear fan-out inside EnterNodePhase/ExitNodePhase. Under the
// parallel engine each node's fan-out executes on its own worker; the serial
// engine treats the brackets as annotation plus the exit latency, keeping
// the two logs hex-identical.
func (m *Module) bcastSmall(p *mpi.Proc, hy *hier.Hierarchy, buf *buffer.Buffer, key string, spec *topology.Spec) {
	lcomm := hy.LComm
	if hy.IsLeader {
		ll := hy.LLComm
		if llSize := ll.Size(); llSize > 1 {
			me := ll.Rank(p)
			rootLL := hy.RootNodeIndex
			v := (me - rootLL + llSize) % llSize
			parentV, childrenV := spanningTree(v, llSize, 1)
			if v != 0 {
				p.Recv(ll, buf, (rootLL+parentV)%llSize, hkTag)
			}
			var pending []*mpi.Request
			for _, cv := range childrenV {
				pending = append(pending, p.Isend(ll, buf, (rootLL+cv)%llSize, hkTag))
			}
			p.WaitAll(pending...)
		}
	}

	// Node-confined intra-node fan-out: the leader registers the message and
	// publishes the cookie; every non-leader fetches it whole with a
	// one-sided get. One barrier fences the fetches before deregistration
	// (BBWait already orders each fetch after the post).
	p.EnterNodePhase()
	if hy.IsLeader {
		dev := p.Knem()
		p.Compute(spec.ShmLatency) // registration syscall
		ck := dev.Register(buf, p.Core(), knem.RightRead)
		lcomm.BBPost(p, key, cookieShare{dev: dev, cookie: ck})
		lcomm.Barrier(p) // fetches complete
		p.Compute(spec.ShmLatency)
		if err := dev.Deregister(ck); err != nil {
			panic(err)
		}
		lcomm.BBClear(key)
	} else {
		p.Compute(spec.ShmLatency) // cookie lookup
		sh := lcomm.BBWait(p, key).(cookieShare)
		if err := sh.dev.Get(p.DES(), p.Core(), sh.cookie, 0, buf); err != nil {
			panic(err)
		}
		lcomm.Barrier(p)
	}
	p.ExitNodePhase()
}
