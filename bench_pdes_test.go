// PDES scaling benchmarks: the Fig3a acceptance workload (32-node,
// 768-process Stremi broadcast, swept over message sizes) and a
// node-confined companion workload, run under both engine modes and a sweep
// of in-window worker counts. scripts/bench.sh runs the set as interleaved
// fresh-process passes and distills results/BENCH_pdes.json via
// cmd/benchjson's pdes schema (v4), comparing best-of-pass values:
//
//   - events/op must agree exactly between serial and every parallel
//     variant — the hex-identity canary in throughput form;
//   - mode=parallel/workers=1 (the degenerate engine with no window
//     machinery) must stay within the parity margin of serial, in both
//     events/sec and allocs/op — window support must cost nothing when
//     unused;
//   - workloads whose collectives bracket their intra-node stretches (the
//     small-message Fig3a sweep point, NodeLocal) must report a nonzero
//     phased-window fraction on every workers>=2 variant — phases execute on
//     goroutines regardless of host cores, so a zero here means the brackets
//     regressed, not that the host is small; on >=4-core hosts the fraction
//     must also clear -min-phased-fraction (>50% of windows phased);
//   - on hosts with >=4 cores the NodeLocal parallel engine must reach >=2x
//     the serial events/sec; below 4 cores the speedup and fraction gates are
//     recorded as waived, like the sweep gate.
//
// The Fig3a sweep carries both regimes: the small size rides the real
// HierKNEM bracketed path (single-segment Bcast, node-confined KNEM fan-out
// under EnterNodePhase/ExitNodePhase), so its windows execute on concurrent
// workers; the large size stays above the fabric-bypass cutoff, so its
// windows stay serial by census and measure pure window overhead. NodeLocal
// brackets all its traffic and is where the speedup bar binds.
package hierknem_test

import (
	"fmt"
	"testing"

	"hierknem"
	"hierknem/internal/imb"
)

// pdesVariants is the engine matrix every PDES benchmark sweeps: the serial
// reference, the parallel engine at its default worker count, and pinned
// worker counts for the scaling curve (1 = degenerate fast path).
var pdesVariants = []struct {
	name    string
	mode    hierknem.EngineMode
	workers int
	elide   bool
}{
	{"mode=serial", hierknem.EngineSerial, 0, false},
	{"mode=parallel", hierknem.EngineParallel, 0, false},
	{"mode=parallel/workers=1", hierknem.EngineParallel, 1, false},
	{"mode=parallel/workers=2", hierknem.EngineParallel, 2, false},
	{"mode=parallel/workers=4", hierknem.EngineParallel, 4, false},
	// The phasesafe payoff variant: same engine and default worker count as
	// mode=parallel, but the per-message confinement guards are elided
	// inside manifest-proved regions. events/op must match every other
	// variant exactly (elision removes assertions, not events); events/sec
	// against mode=parallel is the guard cost, distilled by cmd/benchjson's
	// pdes schema v4 as guardSpeedup.
	{"mode=parallel/guards=elided", hierknem.EngineParallel, 0, true},
}

// benchPDESVariants runs the workload under every engine variant on
// identically built worlds.
func benchPDESVariants(b *testing.B, spec hierknem.Spec, np int, run func(w *hierknem.World)) {
	for _, v := range pdesVariants {
		v := v
		b.Run(v.name, func(b *testing.B) {
			if v.elide {
				// Outside the timed region: the first manifest validation
				// hashes source files (and may re-run the analyzers).
				ensureManifest(b)
			}
			benchDES(b,
				func() (*hierknem.World, error) {
					w, err := hierknem.NewWorld(spec, "bycore", np)
					if err != nil {
						return nil, err
					}
					w.SetEngineMode(v.mode)
					if v.workers > 0 {
						w.SetEngineWorkers(v.workers)
					}
					if v.elide {
						if err := w.SetGuardMode(hierknem.GuardElided); err != nil {
							return nil, err
						}
					}
					return w, nil
				},
				run)
		})
	}
}

// BenchmarkPDESFig3aBcast768 measures the conservative-window engine
// against the serial reference on the paper's largest broadcast
// configuration, at two sweep points. size=2KB takes the real bracketed
// HierKNEM path — inter-node forwarding first, then every node's KNEM
// fan-out as a node phase — so its windows execute on concurrent workers
// and its phased-window fraction is gated (>0 always on workers>=2, >50% on
// >=4-core hosts). size=64KB is above the fabric-bypass cutoff: unbracketed
// global traffic, serial windows by census, so its interesting numbers are
// the identity canary and the workers=1 parity bar — window support must
// not tax the reference workload.
func BenchmarkPDESFig3aBcast768(b *testing.B) {
	spec := hierknem.Stremi(32)
	mod := hierknem.ForCluster(&spec)
	mod.Opt.CacheTopology = true
	np := spec.Nodes * spec.CoresPerNode()
	for _, size := range []int64{2 << 10, 64 << 10} {
		size := size
		b.Run(fmt.Sprintf("size=%dKB", size>>10), func(b *testing.B) {
			benchPDESVariants(b, spec, np, func(w *hierknem.World) {
				hierknem.BenchBcast(w, mod, size, imb.Opts{Iterations: 4, Warmup: 1})
			})
		})
	}
}

// BenchmarkPDESNodeLocal768 measures in-window parallel execution itself:
// 768 ranks on 32 nodes run bracketed node-confined rounds (sub-eager ring
// exchange, node barrier, window-crossing compute), so nearly every window
// past the first is a phase and the 32 node domains spread across the
// workers. This is the workload the >=2x speedup bar binds to on >=4-core
// hosts.
func BenchmarkPDESNodeLocal768(b *testing.B) {
	spec := hierknem.Stremi(32)
	np := spec.Nodes * spec.CoresPerNode()
	const rounds = 24
	benchPDESVariants(b, spec, np, func(w *hierknem.World) {
		if err := nodePhaseProg(w, rounds, nil); err != nil {
			b.Fatal(err)
		}
	})
}
