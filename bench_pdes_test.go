// PDES scaling benchmark: the Fig3a acceptance workload (32-node,
// 768-process Stremi broadcast) run under both engine modes. scripts/bench.sh
// runs the pair with -count and distills results/BENCH_pdes.json via
// cmd/benchjson's pdes schema: events/op must agree exactly between modes
// (the hex-identity canary in throughput form), and on hosts with >=4 cores
// the parallel engine must reach >=2x the serial events/sec; below 4 cores
// the speedup gate is recorded as waived, like the sweep gate.
package hierknem_test

import (
	"fmt"
	"testing"

	"hierknem"
	"hierknem/internal/imb"
)

// BenchmarkPDESFig3aBcast768 measures the conservative-window engine
// against the serial reference on the paper's largest broadcast
// configuration. Both sub-benchmarks build identical worlds; only the
// engine organization differs.
func BenchmarkPDESFig3aBcast768(b *testing.B) {
	spec := hierknem.Stremi(32)
	mod := hierknem.ForCluster(&spec)
	mod.Opt.CacheTopology = true
	np := spec.Nodes * spec.CoresPerNode()
	const size = 64 << 10
	for _, mode := range []struct {
		name string
		m    hierknem.EngineMode
	}{
		{"serial", hierknem.EngineSerial},
		{"parallel", hierknem.EngineParallel},
	} {
		mode := mode
		b.Run(fmt.Sprintf("mode=%s", mode.name), func(b *testing.B) {
			benchDES(b,
				func() (*hierknem.World, error) {
					w, err := hierknem.NewWorld(spec, "bycore", np)
					if err != nil {
						return nil, err
					}
					w.SetEngineMode(mode.m)
					return w, nil
				},
				func(w *hierknem.World) {
					hierknem.BenchBcast(w, mod, size, imb.Opts{Iterations: 4, Warmup: 1})
				})
		})
	}
}
