// PDES scaling benchmarks: the Fig3a acceptance workload (32-node,
// 768-process Stremi broadcast) and a node-confined companion workload, run
// under both engine modes and a sweep of in-window worker counts.
// scripts/bench.sh runs the set as interleaved fresh-process passes and
// distills results/BENCH_pdes.json via cmd/benchjson's pdes schema (v2),
// comparing best-of-pass values:
//
//   - events/op must agree exactly between serial and every parallel
//     variant — the hex-identity canary in throughput form;
//   - mode=parallel/workers=1 (the degenerate engine with no window
//     machinery) must stay within the parity margin of serial, in both
//     events/sec and allocs/op — window support must cost nothing when
//     unused;
//   - on hosts with >=4 cores the NodeLocal parallel engine must reach >=2x
//     the serial events/sec; below 4 cores the speedup gate is recorded as
//     waived, like the sweep gate.
//
// The speedup bar binds to NodeLocal, not Fig3a: collective workloads are
// not bracketed (confinement changes virtual-time behavior at the exit
// boundary, and the committed serial log is a baseline artifact), so Fig3a's
// windows stay serial by census and measure pure window overhead. NodeLocal
// brackets its traffic with EnterNodePhase, so its windows actually execute
// on concurrent workers.
package hierknem_test

import (
	"testing"

	"hierknem"
	"hierknem/internal/imb"
)

// pdesVariants is the engine matrix every PDES benchmark sweeps: the serial
// reference, the parallel engine at its default worker count, and pinned
// worker counts for the scaling curve (1 = degenerate fast path).
var pdesVariants = []struct {
	name    string
	mode    hierknem.EngineMode
	workers int
}{
	{"mode=serial", hierknem.EngineSerial, 0},
	{"mode=parallel", hierknem.EngineParallel, 0},
	{"mode=parallel/workers=1", hierknem.EngineParallel, 1},
	{"mode=parallel/workers=2", hierknem.EngineParallel, 2},
	{"mode=parallel/workers=4", hierknem.EngineParallel, 4},
}

// benchPDESVariants runs the workload under every engine variant on
// identically built worlds.
func benchPDESVariants(b *testing.B, spec hierknem.Spec, np int, run func(w *hierknem.World)) {
	for _, v := range pdesVariants {
		v := v
		b.Run(v.name, func(b *testing.B) {
			benchDES(b,
				func() (*hierknem.World, error) {
					w, err := hierknem.NewWorld(spec, "bycore", np)
					if err != nil {
						return nil, err
					}
					w.SetEngineMode(v.mode)
					if v.workers > 0 {
						w.SetEngineWorkers(v.workers)
					}
					return w, nil
				},
				run)
		})
	}
}

// BenchmarkPDESFig3aBcast768 measures the conservative-window engine
// against the serial reference on the paper's largest broadcast
// configuration. Its windows are serial (unbracketed global traffic), so
// the interesting numbers are the identity canary and the workers=1 parity
// bar: window support must not tax the reference workload.
func BenchmarkPDESFig3aBcast768(b *testing.B) {
	spec := hierknem.Stremi(32)
	mod := hierknem.ForCluster(&spec)
	mod.Opt.CacheTopology = true
	np := spec.Nodes * spec.CoresPerNode()
	const size = 64 << 10
	benchPDESVariants(b, spec, np, func(w *hierknem.World) {
		hierknem.BenchBcast(w, mod, size, imb.Opts{Iterations: 4, Warmup: 1})
	})
}

// BenchmarkPDESNodeLocal768 measures in-window parallel execution itself:
// 768 ranks on 32 nodes run bracketed node-confined rounds (sub-eager ring
// exchange, node barrier, window-crossing compute), so nearly every window
// past the first is a phase and the 32 node domains spread across the
// workers. This is the workload the >=2x speedup bar binds to on >=4-core
// hosts.
func BenchmarkPDESNodeLocal768(b *testing.B) {
	spec := hierknem.Stremi(32)
	np := spec.Nodes * spec.CoresPerNode()
	const rounds = 24
	benchPDESVariants(b, spec, np, func(w *hierknem.World) {
		if err := nodePhaseProg(w, rounds, nil); err != nil {
			b.Fatal(err)
		}
	})
}
