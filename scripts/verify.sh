#!/usr/bin/env bash
# verify.sh — the repository's full verification gate, identical to CI.
#
#   build     every package compiles
#   vet       the stock Go analyzers
#   hierlint  the simulator-invariant analyzers (cmd/hierlint):
#             determinism, requesthygiene, errcheck, bufferescape,
#             runisolation
#   test      the full suite under the race detector
#   fuzz      10s FuzzMatch smoke over the p2p matching machinery
#   bench     the perf harness (scripts/bench.sh): DES hot-path suite vs
#             checked-in baseline, fabric-allocator >=2x resource-visit
#             criterion, and the parallel sweep gate (byte-identical
#             serial/parallel stdout; >=3x speedup on >=4-core hosts)
#
# Run from anywhere; it anchors itself at the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> hierlint ./..."
go run ./cmd/hierlint ./...

echo "==> go test -race ./..."
go test -race ./...

echo "==> fuzz smoke (FuzzMatch, 10s)"
go test ./internal/mpi -run '^$' -fuzz '^FuzzMatch$' -fuzztime 10s

echo "==> bench (DES hot path + fabric allocator + parallel sweep)"
scripts/bench.sh

echo "verify: all gates passed"
