#!/usr/bin/env bash
# verify.sh — the repository's full verification gate, identical to CI.
#
#   build     every package compiles
#   vet       the stock Go analyzers
#   hierlint  the simulator-invariant analyzers (cmd/hierlint):
#             determinism, requesthygiene, errcheck, bufferescape,
#             runisolation, poolreturn, tagspace, bracket (balanced
#             EnterNodePhase/ExitNodePhase collective brackets), plus the
#             hierflow interprocedural PDES preconditions: vtmono, confine,
#             atomicfield, phasesafe (whole-program node-phase confinement
#             proof). Runs twice (cold-ish, then warm) with -manifest so a
#             clean tree emits the phasesafe guard-elision manifest, and
#             prints both timings so result-cache effectiveness stays
#             visible; also gates that all twelve analyzers are registered.
#   elide     the guard-elision soundness gate: TestGuardElision* re-runs
#             the bracketed-personality log comparisons with
#             HIERKNEM_GUARDS=elide against the manifest hierlint just
#             emitted, plus the fail-closed refusal matrix
#   test      the full suite under the race detector
#   pdes      the root conformance/equivalence/isolation suites rerun with
#             HIERKNEM_ENGINE=parallel (every world on the conservative
#             parallel engine) — the serial run just passed under `test`,
#             so any divergence the hex-exact log comparisons catch is the
#             parallel engine's. Runs under a GOMAXPROCS matrix {1, 4}: 1
#             pins the cooperative single-core interleaving (workers share
#             one core, phases still execute), 4 gives phase workers real
#             cores — the committed logs must not notice either way
#   san       the conformance/isolation suites under HIERSAN=1 (the hiersan
#             dynamic sanitizer) plus the seeded fault fixtures
#   fuzz      10s FuzzMatch smoke over the p2p matching machinery, then 10s
#             FuzzPDESDiff differential smoke (serial vs parallel engine)
#   bench     the perf harness (scripts/bench.sh): DES hot-path suite vs
#             checked-in baseline, fabric-allocator >=2x resource-visit
#             criterion, and the parallel sweep gate (byte-identical
#             serial/parallel stdout; >=3x speedup on >=4-core hosts)
#
# Run from anywhere; it anchors itself at the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> hierlint ./..."
go build -o /tmp/hierlint.verify ./cmd/hierlint
if [ "$(/tmp/hierlint.verify -list | wc -l)" -ne 12 ]; then
  echo "hierlint: expected 12 registered analyzers" >&2
  /tmp/hierlint.verify -list >&2
  exit 1
fi
t0=$(date +%s%N)
/tmp/hierlint.verify -manifest ./...
t1=$(date +%s%N)
/tmp/hierlint.verify -manifest ./...
t2=$(date +%s%N)
echo "hierlint timing: first run $(( (t1 - t0) / 1000000 ))ms, warm-cache run $(( (t2 - t1) / 1000000 ))ms"

echo "==> go test -race ./..."
go test -race ./...

echo "==> elide (guard elision: hex-identity + fail-closed refusals)"
go test . -count=1 -run 'TestGuardElision|TestGuardElideRefusals'

echo "==> pdes (HIERKNEM_ENGINE=parallel conformance + equivalence + isolation, GOMAXPROCS matrix)"
for procs in 1 4; do
  echo "    GOMAXPROCS=$procs"
  HIERKNEM_ENGINE=parallel GOMAXPROCS=$procs go test . -count=1 \
    -run 'Conformance|EngineMode|Isolation|ParallelRuns|WorldReset|NodePhase'
done

echo "==> san (HIERSAN=1 conformance + seeded faults)"
HIERSAN=1 go test ./... -run 'Conformance|Isolation'
HIERSAN=1 HIERKNEM_ENGINE=parallel go test . -run 'Conformance|EngineMode'
go test ./internal/des ./internal/mpi -run 'Sanitizer|StallAutopsy|MaxTimeAbort'

echo "==> fuzz smoke (FuzzMatch, 10s; FuzzPDESDiff, 10s)"
go test ./internal/mpi -run '^$' -fuzz '^FuzzMatch$' -fuzztime 10s
go test . -run '^$' -fuzz '^FuzzPDESDiff$' -fuzztime 10s

echo "==> bench (DES hot path + fabric allocator + parallel sweep)"
scripts/bench.sh

echo "verify: all gates passed"
