#!/usr/bin/env bash
# verify.sh — the repository's full verification gate, identical to CI.
#
#   build     every package compiles
#   vet       the stock Go analyzers
#   hierlint  the simulator-invariant analyzers (cmd/hierlint):
#             determinism, requesthygiene, errcheck, bufferescape
#   test      the full suite under the race detector
#
# Run from anywhere; it anchors itself at the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> hierlint ./..."
go run ./cmd/hierlint ./...

echo "==> go test -race ./..."
go test -race ./...

echo "verify: all gates passed"
