#!/usr/bin/env bash
# verify.sh — the repository's full verification gate, identical to CI.
#
#   build     every package compiles
#   vet       the stock Go analyzers
#   hierlint  the simulator-invariant analyzers (cmd/hierlint):
#             determinism, requesthygiene, errcheck, bufferescape
#   test      the full suite under the race detector
#   fuzz      10s FuzzMatch smoke over the p2p matching machinery
#   bench     the fabric-allocator harness (scripts/bench.sh), enforcing
#             the >=2x resource-visit criterion on the Fig3a sweep
#
# Run from anywhere; it anchors itself at the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> hierlint ./..."
go run ./cmd/hierlint ./...

echo "==> go test -race ./..."
go test -race ./...

echo "==> fuzz smoke (FuzzMatch, 10s)"
go test ./internal/mpi -run '^$' -fuzz '^FuzzMatch$' -fuzztime 10s

echo "==> bench (fabric allocator)"
scripts/bench.sh

echo "verify: all gates passed"
