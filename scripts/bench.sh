#!/usr/bin/env bash
# bench.sh — the reproducible performance harness.
#
# Four suites, each distilled to a checked-in JSON document via cmd/benchjson:
#
#   1. BenchmarkDES* (DES hot-path overhaul): event throughput and allocation
#      rate of the engine + matching layer, compared against the checked-in
#      pre-overhaul baseline (results/BASELINE_des.json, recorded from the
#      pre-overhaul tree pinned to the ModeGlobal fabric). Acceptance bar:
#      >=1.5x events/sec and >=2x fewer allocs/op on the Fig3a sweep, and
#      events/op identical to the baseline on every benchmark (determinism
#      canary). The DES suite runs FIRST, while the process and allocator
#      are quiet, because it measures wall-clock throughput.
#
#   2. BenchmarkFabric* (fabric allocator): Fig3a 768-rank broadcast sweep,
#      Fig5 768-rank Allgather, Table II ASP under both allocator modes;
#      incremental mode must perform >=2x fewer resource visits than global
#      mode on the Fig3a sweep.
#
#   3. Sweep harness (internal/sweep): `hierbench -exp all` timed serial
#      (-parallel 1) and parallel; the two stdouts must match byte for byte
#      (always enforced — parallelism must be invisible in the output), and
#      on hosts with >=4 cores the parallel run must be >=3x faster.
#
#   4. BenchmarkPDES* (conservative parallel DES engine): the Fig3a 768-rank
#      broadcast (swept over 2KB and 64KB) and the NodeLocal 768-rank
#      bracketed workload, each run under mode=serial, mode=parallel, a
#      workers={1,2,4} curve and mode=parallel/guards=elided (per-message
#      confinement guards elided inside phasesafe-proved regions; the suite
#      emits a fresh manifest first so the variant never trips the
#      fail-closed staleness check). events/op must agree exactly between
#      serial and every parallel variant, elided included (always enforced —
#      the parallel engine promises a hex-identical event log, and elision
#      removes assertions, not events); the elided variant's events/sec must
#      stay >= MIN_GUARD_SPEEDUP x the checked parallel twin's on >=4-core
#      hosts (waived below, like the other throughput bars), with the
#      measured guard_speedup recorded in the document; the workers=1
#      degenerate engine
#      must stay within 10% of serial events/sec and allocs/op on every host
#      (best-of-count values, so the bar measures engine overhead rather
#      than scheduler noise); the bracketed workloads (the 2KB Fig3a point
#      rides HierKNEM's node-phase-bracketed small-broadcast path, NodeLocal
#      brackets everything) must report a nonzero phased-window fraction on
#      every workers>=2 variant on every host — phases execute on goroutines
#      regardless of core count, so zero means the brackets regressed — and
#      >=50% of windows phased on >=4-core hosts; and on hosts with >=4
#      cores the NodeLocal parallel engine must reach >=2x the serial
#      events/sec, waived (and recorded as waived) on smaller hosts like the
#      sweep gate. The speedup bar binds to NodeLocal only: the 64KB Fig3a
#      point is above the fabric-bypass cutoff, so its windows are serial by
#      census and measure pure window overhead, and the 2KB point's phased
#      windows are gated by fraction, not wall clock.
#
# Environment knobs:
#   DES_COUNT        -count for the DES suite (default 3; the gate compares
#                    best-of-count, like the pdes suite)
#   MIN_SPEEDUP      enforced events/sec ratio vs. baseline (default 1.5)
#   MIN_ALLOC_RATIO  enforced allocs/op shrink factor (default 2)
#   BENCHTIME        fabric suite -benchtime (default 1x: one deterministic
#                    simulated run per configuration)
#   MIN_VISIT_RATIO  fabric enforced visit ratio (default 2)
#   SWEEP_ARGS       hierbench arguments for the sweep suite (default: the
#                    full evaluation at CI scale, see below)
#   SWEEP_WORKERS    -parallel for the parallel sweep run (default: nproc)
#   MIN_SWEEP_SPEEDUP  enforced sweep speedup at >=4 cores (default 3)
#   PDES_COUNT       interleaved fresh-process passes of the PDES suite
#                    (default 3; the pdes gates compare best-of-pass — max
#                    events/sec, min allocs/op — so shared-host noise can't
#                    fail the tight parity bar)
#   MIN_PDES_SPEEDUP enforced parallel-engine events/sec speedup at >=4
#                    cores (default 2)
#   MAX_PDES_PARITY  max fractional workers=1 overhead vs serial, both
#                    events/sec and allocs/op, every host (default 0.10)
#   MIN_PHASED_FRAC  enforced phased-window fraction on bracketed workloads
#                    at >=4 cores (default 0.5; nonzero binds on every host)
#   MIN_GUARD_SPEEDUP  floor on guards=elided events/sec relative to the
#                    checked parallel twin at >=4 cores (default 0.95; the
#                    events/op identity bar always binds)
set -euo pipefail
cd "$(dirname "$0")/.."

mkdir -p results

# Pin GC pacing for the wall-clock-sensitive suites: the pooled engine's
# live heap is small enough that the default pacer's minimum heap goal
# dominates the hot loop (see bench_des_test.go's benchGOGC). benchDES also
# pins in-process, so this export mainly keeps the recorded environment
# explicit and covers the child processes uniformly.
export GOGC="${GOGC:-400}"

echo "==> go test -bench BenchmarkDES (-count ${DES_COUNT:-3}, GOGC=$GOGC)"
go test -run '^$' -bench 'BenchmarkDES' -count "${DES_COUNT:-3}" -benchmem . |
    tee results/bench_des.txt

echo "==> benchjson -schema des -> results/BENCH_des.json"
go run ./cmd/benchjson \
    -schema des \
    -baseline results/BASELINE_des.json \
    -min-speedup "${MIN_SPEEDUP:-1.5}" \
    -min-alloc-ratio "${MIN_ALLOC_RATIO:-2}" \
    -enforce 'Fig3a' \
    -o results/BENCH_des.json < results/bench_des.txt

echo "==> go test -bench BenchmarkFabric (-benchtime ${BENCHTIME:-1x})"
go test -run '^$' -bench 'BenchmarkFabric' -benchtime "${BENCHTIME:-1x}" -benchmem . |
    tee results/bench_fabric.txt

echo "==> benchjson -> results/BENCH_fabric.json"
go run ./cmd/benchjson \
    -min-visit-ratio "${MIN_VISIT_RATIO:-2}" \
    -enforce 'Fig3a' \
    -o results/BENCH_fabric.json < results/bench_fabric.txt

SWEEP_ARGS=${SWEEP_ARGS:-"-exp all -nodes 4 -iters 2 -asp-n 256 -asp-nodes 4"}
SWEEP_WORKERS=${SWEEP_WORKERS:-$(nproc)}
echo "==> sweep harness: hierbench $SWEEP_ARGS, serial vs -parallel $SWEEP_WORKERS"
tmp=$(mktemp -d "${TMPDIR:-/tmp}/hierknem-sweep.XXXXXX")
trap 'rm -rf "$tmp"' EXIT
go build -o "$tmp/hierbench" ./cmd/hierbench

t0=$(date +%s.%N)
# shellcheck disable=SC2086  # SWEEP_ARGS is a word list by design
"$tmp/hierbench" $SWEEP_ARGS -parallel 1 > "$tmp/serial.txt"
t1=$(date +%s.%N)
"$tmp/hierbench" $SWEEP_ARGS -parallel "$SWEEP_WORKERS" > "$tmp/parallel.txt"
t2=$(date +%s.%N)

identical=""
if cmp -s "$tmp/serial.txt" "$tmp/parallel.txt"; then
    identical="-identical"
fi

echo "==> benchjson -schema sweep -> results/BENCH_sweep.json"
go run ./cmd/benchjson \
    -schema sweep \
    -sweep-command "hierbench $SWEEP_ARGS" \
    -serial-sec "$(awk "BEGIN{print $t1-$t0}")" \
    -parallel-sec "$(awk "BEGIN{print $t2-$t1}")" \
    -workers "$SWEEP_WORKERS" \
    -min-sweep-speedup "${MIN_SWEEP_SPEEDUP:-3}" \
    $identical \
    -o results/BENCH_sweep.json

# The PDES repetitions run as separate fresh go test processes, interleaved
# in time, rather than one -count run: whole benchmark processes land in
# fast or slow scheduling bands on shared hosts, and with -count every
# repetition of a variant sits in the same band, so a serial-vs-workers=1
# comparison could pit one band against the other. Fresh interleaved passes
# give every variant one sample per band; best-of-pass then compares like
# with like. (The DES baseline was recorded the same way.)
# The guards=elided variant refuses to run without a fresh phasesafe
# manifest (fail-closed: see internal/phasesafe). Emit one up front from the
# current tree so the PDES passes measure elision rather than re-running the
# analyzers inside the first pass's timing window.
echo "==> hierlint -manifest (phasesafe proof for the guards=elided variant)"
go run ./cmd/hierlint -manifest ./...

echo "==> go test -bench BenchmarkPDES (${PDES_COUNT:-3} interleaved passes, GOGC=$GOGC)"
: > results/bench_pdes.txt
for rep in $(seq "${PDES_COUNT:-3}"); do
    echo "--- pdes pass $rep"
    go test -run '^$' -bench 'BenchmarkPDES' -count 1 -benchmem . |
        tee -a results/bench_pdes.txt
done

echo "==> benchjson -schema pdes -> results/BENCH_pdes.json"
go run ./cmd/benchjson \
    -schema pdes \
    -min-pdes-speedup "${MIN_PDES_SPEEDUP:-2}" \
    -max-parity-overhead "${MAX_PDES_PARITY:-0.10}" \
    -min-phased-fraction "${MIN_PHASED_FRAC:-0.5}" \
    -min-guard-speedup "${MIN_GUARD_SPEEDUP:-0.95}" \
    -enforce 'Fig3a|NodeLocal' \
    -enforce-speedup 'NodeLocal' \
    -enforce-phased 'Fig3a.*size=2KB|NodeLocal' \
    -o results/BENCH_pdes.json < results/bench_pdes.txt

echo "bench: wrote results/BENCH_des.json, BENCH_fabric.json, BENCH_sweep.json and BENCH_pdes.json (criteria passed)"
