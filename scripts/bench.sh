#!/usr/bin/env bash
# bench.sh — the reproducible fabric-allocator performance harness.
#
# Runs the BenchmarkFabric* suite (Fig3a 768-rank broadcast sweep, Fig5
# 768-rank Allgather, Table II ASP) under both allocator modes and distills
# results/BENCH_fabric.json via cmd/benchjson, enforcing the acceptance
# criterion: incremental mode must perform >=2x fewer resource visits than
# global mode on the Fig3a sweep.
#
# Environment knobs:
#   BENCHTIME        go test -benchtime value (default 1x: one deterministic
#                    simulated run per configuration)
#   MIN_VISIT_RATIO  the enforced ratio (default 2)
set -euo pipefail
cd "$(dirname "$0")/.."

mkdir -p results

echo "==> go test -bench BenchmarkFabric (-benchtime ${BENCHTIME:-1x})"
go test -run '^$' -bench 'BenchmarkFabric' -benchtime "${BENCHTIME:-1x}" -benchmem . |
    tee results/bench_fabric.txt

echo "==> benchjson -> results/BENCH_fabric.json"
go run ./cmd/benchjson \
    -min-visit-ratio "${MIN_VISIT_RATIO:-2}" \
    -enforce 'Fig3a' \
    -o results/BENCH_fabric.json < results/bench_fabric.txt

echo "bench: wrote results/BENCH_fabric.json (criterion passed)"
