#!/usr/bin/env bash
# bench.sh — the reproducible performance harness.
#
# Two suites, each distilled to a checked-in JSON document via cmd/benchjson:
#
#   1. BenchmarkDES* (DES hot-path overhaul): event throughput and allocation
#      rate of the engine + matching layer, compared against the checked-in
#      pre-overhaul baseline (results/BASELINE_des.json, recorded from the
#      pre-overhaul tree pinned to the ModeGlobal fabric). Acceptance bar:
#      >=1.5x events/sec and >=2x fewer allocs/op on the Fig3a sweep, and
#      events/op identical to the baseline on every benchmark (determinism
#      canary). The DES suite runs FIRST, while the process and allocator
#      are quiet, because it measures wall-clock throughput.
#
#   2. BenchmarkFabric* (fabric allocator): Fig3a 768-rank broadcast sweep,
#      Fig5 768-rank Allgather, Table II ASP under both allocator modes;
#      incremental mode must perform >=2x fewer resource visits than global
#      mode on the Fig3a sweep.
#
# Environment knobs:
#   DES_COUNT        -count for the DES suite (default 3; means are compared)
#   MIN_SPEEDUP      enforced events/sec ratio vs. baseline (default 1.5)
#   MIN_ALLOC_RATIO  enforced allocs/op shrink factor (default 2)
#   BENCHTIME        fabric suite -benchtime (default 1x: one deterministic
#                    simulated run per configuration)
#   MIN_VISIT_RATIO  fabric enforced visit ratio (default 2)
set -euo pipefail
cd "$(dirname "$0")/.."

mkdir -p results

echo "==> go test -bench BenchmarkDES (-count ${DES_COUNT:-3})"
go test -run '^$' -bench 'BenchmarkDES' -count "${DES_COUNT:-3}" -benchmem . |
    tee results/bench_des.txt

echo "==> benchjson -schema des -> results/BENCH_des.json"
go run ./cmd/benchjson \
    -schema des \
    -baseline results/BASELINE_des.json \
    -min-speedup "${MIN_SPEEDUP:-1.5}" \
    -min-alloc-ratio "${MIN_ALLOC_RATIO:-2}" \
    -enforce 'Fig3a' \
    -o results/BENCH_des.json < results/bench_des.txt

echo "==> go test -bench BenchmarkFabric (-benchtime ${BENCHTIME:-1x})"
go test -run '^$' -bench 'BenchmarkFabric' -benchtime "${BENCHTIME:-1x}" -benchmem . |
    tee results/bench_fabric.txt

echo "==> benchjson -> results/BENCH_fabric.json"
go run ./cmd/benchjson \
    -min-visit-ratio "${MIN_VISIT_RATIO:-2}" \
    -enforce 'Fig3a' \
    -o results/BENCH_fabric.json < results/bench_fabric.txt

echo "bench: wrote results/BENCH_des.json and results/BENCH_fabric.json (criteria passed)"
