// Node-phase equivalence and scale tests: the confined intra-node workload
// that actually exercises parallel in-window execution. Ranks bracket their
// node-local stretch with EnterNodePhase/ExitNodePhase and stay under the
// eager threshold, so whole windows become phase-eligible and their nodes
// execute on concurrent workers — the event log must still be hex-identical
// to the serial reference at every worker count.
package hierknem_test

import (
	"fmt"
	"testing"

	"hierknem"
	"hierknem/internal/des"
	"hierknem/internal/mpi"
)

// nodePhaseProg runs rounds of bracketed node-local traffic on every rank:
// a sub-eager ring exchange on the prebuilt node communicator, a node
// barrier, then a compute stretch sized to carry the rank across window
// boundaries (0.4 network latencies per round, against a lookahead of one),
// so consecutive windows fill with nothing but confined events. Appends to
// log happen after ExitNodePhase — serial coordinator context.
func nodePhaseProg(w *hierknem.World, rounds int, log *[]string) error {
	np := w.Size()
	lat := w.Machine.Spec.NetLatency
	sb := phantomPerRank(np, 512)
	rb := phantomPerRank(np, 512)
	return w.Run(func(p *mpi.Proc) {
		nc := p.NodeComm()
		me := nc.Rank(p)
		n := nc.Size()
		wme := p.Rank()
		p.EnterNodePhase()
		for r := 0; r < rounds; r++ {
			if n > 1 {
				p.SendRecv(nc, sb[wme], (me+1)%n, 200+r, rb[wme], (me-1+n)%n, 200+r)
			}
			nc.Barrier(p)
			p.Compute(0.4 * lat)
		}
		p.ExitNodePhase()
		if log != nil {
			*log = append(*log, fmt.Sprintf("r%d done %s", wme, hexTime(p.Now())))
		}
	})
}

// nodePhaseLog builds a fresh world in the given mode (and, when workers > 0,
// the given phase worker count), runs the node-phase workload and returns
// the event log.
func nodePhaseLog(t testing.TB, mode hierknem.EngineMode, workers, rounds int) ([]string, *hierknem.World) {
	t.Helper()
	w, err := hierknem.NewWorldPPN(isoSpec(), isoPPN)
	if err != nil {
		t.Fatal(err)
	}
	w.SetEngineMode(mode)
	if workers > 0 {
		w.SetEngineWorkers(workers)
	}
	var log []string
	if err := nodePhaseProg(w, rounds, &log); err != nil {
		t.Fatal(err)
	}
	log = append(log, fmt.Sprintf("final %s %d", hexTime(w.Now()), w.Machine.Eng.Processed()))
	return log, w
}

// TestNodePhaseHexIdenticalAcrossWorkers is the tentpole gate for parallel
// in-window execution: the confined workload's event log must equal the
// serial reference log string-for-string at every worker count, from the
// degenerate one-worker engine through a worker surplus (8 workers for 3
// domains).
func TestNodePhaseHexIdenticalAcrossWorkers(t *testing.T) {
	const rounds = 12
	want, _ := nodePhaseLog(t, hierknem.EngineSerial, 0, rounds)
	for _, workers := range []int{1, 2, 3, 5, 8} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			got, w := nodePhaseLog(t, hierknem.EngineParallel, workers, rounds)
			diffLogs(t, fmt.Sprintf("node phase workers=%d", workers), want, got)
			ws := w.Machine.Eng.WindowStats()
			if workers >= 2 {
				if ws.Windows == 0 {
					t.Fatalf("parallel mode never advanced a window (stats %+v)", ws)
				}
				if ws.Phases == 0 || ws.PhaseEv == 0 {
					t.Fatalf("no window executed a parallel phase (stats %+v) — the confined workload is not phase-eligible", ws)
				}
			} else if ws.Windows != 0 || ws.Phases != 0 {
				t.Fatalf("one-worker engine ran window machinery (stats %+v) — the degenerate fast path is not engaged", ws)
			}
		})
	}
}

// TestNodePhaseConfinementEnforced pins the loud-failure contract: a
// bracketed rank that reaches across its node gets a typed
// *des.CausalityError (Op "confine") at the call site, not a silent
// divergence or an anonymous string panic — the PDES harness and the
// guard-elision machinery both key on the type. Every guard fires before
// any matching or fabric state mutates, so the rank recovers in place and
// exits its phase cleanly. The guards are mode-independent — this runs
// under the serial engine and protects the parallel one.
func TestNodePhaseConfinementEnforced(t *testing.T) {
	run := func(name string, body func(p *mpi.Proc, c *mpi.Comm)) {
		t.Run(name, func(t *testing.T) {
			w, err := hierknem.NewWorldPPN(isoSpec(), isoPPN)
			if err != nil {
				t.Fatal(err)
			}
			var recovered interface{}
			err = w.Run(func(p *mpi.Proc) {
				if p.Rank() != 0 {
					return
				}
				c := w.WorldComm()
				p.EnterNodePhase()
				func() {
					defer func() { recovered = recover() }()
					body(p, c)
				}()
				p.ExitNodePhase()
			})
			if err != nil {
				t.Fatal(err)
			}
			if recovered == nil {
				t.Fatalf("%s inside a node phase did not panic", name)
			}
			ce, ok := recovered.(*des.CausalityError)
			if !ok {
				t.Fatalf("%s panicked with %T (%v), want *des.CausalityError", name, recovered, recovered)
			}
			if ce.Op != des.OpConfine {
				t.Fatalf("%s panicked with Op %q, want %q", name, ce.Op, des.OpConfine)
			}
		})
	}
	run("cross-node send", func(p *mpi.Proc, c *mpi.Comm) {
		// Rank 0 is on node 0; the last rank is on the last node.
		p.Send(c, phantomPerRank(1, 64)[0], c.Size()-1, 7)
	})
	run("wildcard recv on a multi-node comm", func(p *mpi.Proc, c *mpi.Comm) {
		p.Recv(c, phantomPerRank(1, 64)[0], mpi.AnySource, 7)
	})
	run("over-cutoff send", func(p *mpi.Proc, c *mpi.Comm) {
		p.Send(p.NodeComm(), phantomPerRank(1, 8192)[0], 1, 7)
	})
	run("split", func(p *mpi.Proc, c *mpi.Comm) {
		p.NodeComm().Split(p, 0, 0)
	})
}

// TestPDESScale100xNodePhase is the 100x-paper-scale smoke: 3200 nodes at
// 24 ranks per node (76800 ranks) running bracketed node phases under the
// parallel engine. It proves window execution holds up at depth — thousands
// of simultaneously active domains per window — not that it is fast, so a
// handful of rounds suffices — but the bracket must span several lookahead
// windows (the first window is always serial: it carries the spawn
// resumes), so the round count is sized to push confined traffic well past
// the first horizon. Skipped under -short.
func TestPDESScale100xNodePhase(t *testing.T) {
	if testing.Short() {
		t.Skip("100x-scale smoke skipped in -short mode")
	}
	spec := hierknem.Stremi(3200)
	w, err := hierknem.NewWorldPPN(spec, 24)
	if err != nil {
		t.Fatal(err)
	}
	w.SetEngineMode(hierknem.EngineParallel)
	if err := nodePhaseProg(w, 6, nil); err != nil {
		t.Fatal(err)
	}
	ws := w.Machine.Eng.WindowStats()
	if ws.Windows == 0 || ws.Phases == 0 {
		t.Fatalf("100x scale run executed no parallel phases (stats %+v)", ws)
	}
	if w.Machine.Eng.Processed() == 0 {
		t.Fatal("no events processed")
	}
}
